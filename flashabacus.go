// Package flashabacus is the public API of the FlashAbacus reproduction: a
// self-governing flash-based accelerator for low-power systems (Zhang and
// Jung, EuroSys 2018), simulated end to end in Go.
//
// The accelerator couples eight lightweight VLIW processors with a 32 GB
// flash backbone. Kernels are offloaded as ELF-like kernel description
// tables and executed under one of four self-governing schedulers (static
// and dynamic inter-kernel, in-order and out-of-order intra-kernel) while
// Flashvisor virtualizes flash into the processors' address space and
// Storengine performs garbage collection and journaling off the critical
// path. A conventional accelerator-plus-NVMe-SSD baseline (SIMD) is
// modelled alongside for every comparison in the paper's evaluation.
//
// Quick start:
//
//	bundle, _ := flashabacus.Polybench("ATAX", 16)
//	result, _ := flashabacus.Run(context.Background(), flashabacus.IntraO3, bundle)
//	fmt.Println(result)
//
// Runs take a context.Context and abandon the simulation when it is
// cancelled, so paper-scale sweeps can be aborted cleanly. The full
// evaluation (every table and figure) regenerates through
// cmd/abacus-repro — concurrently across cores via its -jobs flag —
// and bench_test.go exposes one benchmark per experiment.
package flashabacus

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/imagestore"
	"repro/internal/kdt"
	"repro/internal/stats"
	"repro/internal/workload"
)

// System selects the accelerated-system configuration (§5 "Accelerators").
type System = core.System

// The five evaluated systems: the conventional baseline and the four
// FlashAbacus scheduling modes.
const (
	SIMD    = core.SIMD
	InterSt = core.InterSt
	InterDy = core.InterDy
	IntraIo = core.IntraIo
	IntraO3 = core.IntraO3
)

// Systems lists all five in the paper's presentation order.
var Systems = core.Systems

// Config is the device configuration; DefaultConfig returns the paper's
// Table 1 hardware with the chosen execution governor.
type Config = core.Config

// DefaultConfig returns the prototype configuration for a system.
func DefaultConfig(sys System) Config { return core.DefaultConfig(sys) }

// Device is an assembled accelerator. Populate inputs, offload apps, run.
type Device = core.Device

// New builds a device from a configuration.
func New(cfg Config) (*Device, error) { return core.New(cfg) }

// Result carries a run's measurements: throughput, latency distribution,
// utilization, energy decomposition, and optional time series.
type Result = stats.Result

// Bundle is a ready-to-run workload: applications to offload plus the
// input ranges to pre-populate.
type Bundle = workload.Bundle

// Table is a kernel description table — the executable object a host
// offloads (paper §4 "Kernel").
type Table = kdt.Table

// options applies the public scale knob to the default synthesis options —
// the one place the facade builds workload.Options.
func options(scale int64) workload.Options {
	o := workload.DefaultOptions()
	o.Scale = scale
	return o
}

// checkName rejects applications outside the constructor's own family, so
// Polybench cannot silently build a §5.6 workload or vice versa.
func checkName(family, name string, valid []string) error {
	for _, v := range valid {
		if v == name {
			return nil
		}
	}
	return fmt.Errorf("flashabacus: unknown %s application %q (valid: %s)",
		family, name, strings.Join(valid, ", "))
}

// Polybench builds the §5.1 homogeneous workload for one of the fourteen
// Table 2 applications (six kernel instances). scale divides the paper's
// input sizes; use 1 for paper scale, larger values for quick runs.
func Polybench(name string, scale int64) (*Bundle, error) {
	if err := checkName("PolyBench", name, workload.Names()); err != nil {
		return nil, err
	}
	return workload.Homogeneous(name, options(scale))
}

// Mix builds heterogeneous workload MXn (n in 1..14): six applications,
// four kernel instances each.
func Mix(n int, scale int64) (*Bundle, error) {
	return workload.Mix(n, options(scale))
}

// Bigdata builds the §5.6 workload for bfs, wc, nn, nw, or path.
func Bigdata(name string, scale int64) (*Bundle, error) {
	if err := checkName("bigdata", name, workload.BigdataNames()); err != nil {
		return nil, err
	}
	return workload.Homogeneous(name, options(scale))
}

// PolybenchNames returns the Table 2 application names.
func PolybenchNames() []string { return workload.Names() }

// BigdataNames returns the §5.6 application names.
func BigdataNames() []string { return workload.BigdataNames() }

// MixCount is the number of heterogeneous workloads.
const MixCount = workload.MixCount

// sharedImages is the process-wide device-image and probe cache behind the
// package-level entry points: Run, RunWithSeries, RunCluster, and
// RunTopology all fork copy-on-write snapshots from it, so repeated runs of
// the same synthesized bundle — across systems, card counts, policies, and
// topologies — skip the format/populate/offload lifecycle after the first.
// Hand-assembled bundles (empty workload key) bypass it. Results are
// byte-identical with or without the cache.
var sharedImages = cluster.NewImageCache()

// ImageStore is a persistent blob store for device images — the second
// cache level underneath the process-wide image cache. See OpenImageStore
// and WithImageStore.
type ImageStore = imagestore.Store

// CacheStats is a point-in-time snapshot of the image cache's behavior:
// hit/miss/eviction counters for the in-memory level and, when a store is
// attached, hit/miss/fill counters for the persistent level.
type CacheStats = cluster.CacheStats

// OpenImageStore opens (creating if needed) a filesystem-backed image store
// rooted at dir. maxBytes bounds the directory's total size with
// least-recently-used eviction; 0 selects a 1 GiB default.
func OpenImageStore(dir string, maxBytes int64) (ImageStore, error) {
	return imagestore.NewFSStore(dir, maxBytes)
}

// WithImageStore attaches a persistent image store underneath the
// process-wide cache: package-level runs consult it before building device
// images, and fresh builds are written back asynchronously. A second
// process pointed at the same store skips the build lifecycle entirely —
// near-zero cold start. Corrupt or stale entries fall back to a fresh
// build. Pass nil to detach.
func WithImageStore(st ImageStore) { sharedImages.SetStore(st) }

// FlushImageStore blocks until every asynchronous store fill issued by
// package-level runs has landed; call it before process exit so the store
// is warm for the next process.
func FlushImageStore() { sharedImages.FlushStore() }

// ImageCacheStats returns the process-wide image cache's counters.
func ImageCacheStats() CacheStats { return sharedImages.Stats() }

// Run executes a workload bundle on the named system with the default
// configuration and returns its measurements. Cancelling ctx abandons
// the simulation and returns the context's error.
func Run(ctx context.Context, sys System, b *Bundle) (*Result, error) {
	return experiments.RunBundleCached(ctx, sys, b, false, sharedImages)
}

// RunWithSeries additionally collects the Fig. 15 time series.
func RunWithSeries(ctx context.Context, sys System, b *Bundle) (*Result, error) {
	return experiments.RunBundleCached(ctx, sys, b, true, sharedImages)
}

// Policy selects how RunCluster's host-level dispatcher shards a workload
// across cards.
type Policy = cluster.Policy

// The two dispatch policies, mirroring the paper's governor families:
// static round-robin of applications (the InterSt analogue) and dynamic
// work-stealing of kernel instances (the InterDy analogue).
const (
	RoundRobin = cluster.RoundRobin
	WorkSteal  = cluster.WorkSteal
)

// Topology is a declarative cluster shape: a tree of host-side PCIe
// switches — each with its own bandwidth and dispatch latency — fanning
// out to cards that may each carry a geometry skew against the base card.
type Topology = cluster.Topology

// Switch is one host-side PCIe switch of a Topology and the cards behind it.
type Switch = cluster.Switch

// CardSkew expresses one card's deviation from the base configuration:
// flash channel count, superblock size, LWP count, and scratchpad size
// (zero inherits the base value; the geometry knobs — channels, pages per
// block, scratchpad — must be powers of two).
type CardSkew = core.CardSkew

// TopologyPresetNames lists the built-in topology presets ("sym", "skew",
// "2sw-skew") the -topology experiment sweeps.
var TopologyPresetNames = cluster.PresetNames

// TopologyPreset builds one of the named example topologies over the given
// total card count (even, >= 2).
func TopologyPreset(name string, cards int) (Topology, error) {
	return cluster.Preset(name, cards)
}

// ClusterOption customizes a RunCluster dispatch beyond the card count and
// policy.
type ClusterOption func(*cluster.Options)

// WithTopology dispatches over an explicit heterogeneous topology instead
// of the implicit single-switch array of identical cards; the devices
// argument of RunCluster is then ignored (the topology owns the shape).
func WithTopology(t Topology) ClusterOption {
	return func(o *cluster.Options) { o.Topology = t }
}

// WithClusterWorkers bounds how many card simulations run concurrently in
// wall clock (simulated time is unaffected; 0 means one per core).
func WithClusterWorkers(n int) ClusterOption {
	return func(o *cluster.Options) { o.Workers = n }
}

// FaultPlan is a deterministic fault-injection schedule for a cluster
// run: card deaths, switch flap/throttle windows, and flash wear, all
// triggered by simulated event time and derived from the plan's seed.
// The same plan and workload produce byte-identical results at any
// wall-clock parallelism; a nil or zero plan changes nothing.
type FaultPlan = faults.Plan

// FaultRecord is the per-fault accounting a faulted run reports in
// Result.Faults: what was injected, when the dispatcher noticed, how
// long recovery took, and what the fault cost.
type FaultRecord = stats.FaultRecord

// ParseFaultPlan parses the textual fault-plan format (one directive
// per line; see internal/faults for the grammar and testdata/*.plan
// under cmd/abacus-repro for examples).
func ParseFaultPlan(text []byte) (*FaultPlan, error) { return faults.Parse(text) }

// LoadFaultPlan reads and parses a fault-plan file.
func LoadFaultPlan(path string) (*FaultPlan, error) { return faults.Load(path) }

// FaultPresetNames lists the built-in fault scenarios ("cardloss",
// "flap", "wear") the -faults experiment sweeps.
var FaultPresetNames = faults.PresetNames

// FaultPreset returns a built-in fault plan by name.
func FaultPreset(name string) (*FaultPlan, error) { return faults.Preset(name) }

// WithFaultPlan injects the plan's faults into the cluster run. The
// dispatcher detects card deaths after the plan's heartbeat and
// re-dispatches lost work to survivors; switch windows stall or stretch
// transfers; flash wear adds deterministic read-retry latency. Each
// injected fault is accounted in Result.Faults.
func WithFaultPlan(p *FaultPlan) ClusterOption {
	return func(o *cluster.Options) { o.Faults = p }
}

// RunCluster shards one workload bundle across devices simulated FlashAbacus
// cards behind a shared host PCIe switch and returns the aggregated cluster
// measurements (summed throughput bytes, merged latencies, energy summed
// across cards). devices <= 1 runs the plain single-device path, identical
// to Run. Options extend the dispatch: WithTopology selects a multi-switch
// and/or geometry-skewed card tree (per-switch utilization then appears in
// Result.SwitchUtils); WithFaultPlan injects deterministic card, switch,
// and flash faults (per-fault accounting then appears in Result.Faults).
// Cancelling ctx abandons every in-flight card simulation and returns the
// context's error.
func RunCluster(ctx context.Context, sys System, devices int, policy Policy, b *Bundle, opts ...ClusterOption) (*Result, error) {
	o := cluster.Options{Policy: policy, Images: sharedImages}
	for _, f := range opts {
		f(&o)
	}
	if devices < 1 {
		devices = 1
	}
	cfg := core.DefaultConfig(sys)
	cfg.Devices = devices
	return cluster.Run(ctx, cfg, b, o)
}

// RunTopology dispatches one workload bundle over an explicit cluster
// topology: RunCluster with WithTopology, named for discoverability.
func RunTopology(ctx context.Context, sys System, topo Topology, policy Policy, b *Bundle) (*Result, error) {
	return experiments.RunTopology(ctx, sys, topo, policy, b, sharedImages)
}
