// Serving mode: start an in-process abacusd, submit a job, stream its
// result, and read the admission-control counters — the whole client
// lifecycle against a real listener on a loopback port.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	flashabacus "repro"
)

func main() {
	// A daemon on an ephemeral loopback port. In production this is
	// `abacusd -addr :8080`; here the server lives and dies with main.
	svc := flashabacus.NewService(flashabacus.ServiceConfig{Workers: 2})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: svc}
	go hs.Serve(ln)
	defer hs.Close()

	ctx := context.Background()
	client := flashabacus.NewServiceClient("http://"+ln.Addr().String(), "example")

	ids, err := client.Experiments(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server renders %d experiments: %s ...\n", len(ids), strings.Join(ids[:4], " "))

	// Submit one small job and stream the bytes as the render produces
	// them — they are exactly what `abacus-repro -experiment fig10a
	// -scale 256` prints.
	st, err := client.Submit(ctx, flashabacus.JobRequest{Experiment: "fig10a", Scale: 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s accepted (state %s)\n", st.ID, st.State)
	if _, err := client.Stream(ctx, st.ID, os.Stdout); err != nil {
		log.Fatal(err)
	}

	// A second identical submission hits the first job's warm caches.
	st2, err := client.Submit(ctx, flashabacus.JobRequest{Experiment: "fig10a", Scale: 256})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.Result(ctx, st2.ID); err != nil {
		log.Fatal(err)
	}
	fin, err := client.Status(ctx, st2.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat job %s: %s\n", fin.ID, fin.State)

	// The metrics endpoint exposes the admission and cache counters.
	scrape, err := client.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, "abacusd_jobs_total") ||
			strings.HasPrefix(line, "abacusd_image_cache_hits_total ") {
			fmt.Println(line)
		}
	}
}
