// Package polybench implements the fourteen PolyBench-derived kernels of
// Table 2 as real Go compute functions registered as FlashAbacus builtins,
// plus builders that package them into functional kernel description
// tables. The timing sweeps use workload descriptors; these functional
// kernels exist so the full pipeline — KDT offload, scheduling, Flashvisor
// mapping, garbage collection — can be verified against real numerics.
package polybench

import (
	"fmt"
	"math"

	"repro/internal/kdt"
	"repro/internal/kernel"
)

// Builtin ids (100 + Table 2 row index).
const (
	BuiltinATAX uint16 = 100 + iota
	BuiltinBICG
	Builtin2DCON
	BuiltinMVT
	BuiltinADI
	BuiltinFDTD
	BuiltinGESUM
	BuiltinSYRK
	Builtin3MM
	BuiltinCOVAR
	BuiltinGEMM
	Builtin2MM
	BuiltinSYR2K
	BuiltinCORR
	// BuiltinGEMMPart is the row-partitioned GEMM used to demonstrate
	// multi-screen functional execution.
	BuiltinGEMMPart
)

const (
	alpha = float32(1.5)
	beta  = float32(1.2)
)

type impl struct {
	id  uint16
	in  func(n int) int // input floats
	out func(n int) int // output floats
	fn  func(n int, in, out []float32)
}

var impls = map[string]impl{
	"ATAX":  {BuiltinATAX, func(n int) int { return n*n + n }, func(n int) int { return n }, atax},
	"BICG":  {BuiltinBICG, func(n int) int { return n*n + 2*n }, func(n int) int { return 2 * n }, bicg},
	"2DCON": {Builtin2DCON, func(n int) int { return n * n }, func(n int) int { return n * n }, conv2d},
	"MVT":   {BuiltinMVT, func(n int) int { return n*n + 4*n }, func(n int) int { return 2 * n }, mvt},
	"ADI":   {BuiltinADI, func(n int) int { return 3 * n * n }, func(n int) int { return 2 * n * n }, adi},
	"FDTD":  {BuiltinFDTD, func(n int) int { return 3*n*n + 4 }, func(n int) int { return n * n }, fdtd2d},
	"GESUM": {BuiltinGESUM, func(n int) int { return 2*n*n + n }, func(n int) int { return n }, gesummv},
	"SYRK":  {BuiltinSYRK, func(n int) int { return 2 * n * n }, func(n int) int { return n * n }, syrk},
	"3MM":   {Builtin3MM, func(n int) int { return 4 * n * n }, func(n int) int { return n * n }, mm3},
	"COVAR": {BuiltinCOVAR, func(n int) int { return n * n }, func(n int) int { return n * n }, covar},
	"GEMM":  {BuiltinGEMM, func(n int) int { return 3 * n * n }, func(n int) int { return n * n }, gemm},
	"2MM":   {Builtin2MM, func(n int) int { return 4 * n * n }, func(n int) int { return n * n }, mm2},
	"SYR2K": {BuiltinSYR2K, func(n int) int { return 3 * n * n }, func(n int) int { return n * n }, syr2k},
	"CORR":  {BuiltinCORR, func(n int) int { return n * n }, func(n int) int { return n * n }, corr},
}

func init() {
	for name, im := range impls {
		im := im
		kernel.RegisterBuiltin(im.id, name, func(ctx *kernel.ExecCtx) error {
			return runWhole(im, ctx)
		})
	}
	kernel.RegisterBuiltin(BuiltinGEMMPart, "GEMM-part", gemmPartitioned)
}

// runWhole decodes section 0, applies the kernel, and stores the result in
// section 1.
func runWhole(im impl, ctx *kernel.ExecCtx) error {
	n := int(ctx.Arg)
	if n <= 0 {
		return fmt.Errorf("polybench: non-positive problem size %d", n)
	}
	raw, ok := ctx.Sections[0]
	if !ok {
		return fmt.Errorf("polybench: input section missing")
	}
	in := kernel.BytesToF32(raw)
	if len(in) < im.in(n) {
		return fmt.Errorf("polybench: input has %d floats, need %d", len(in), im.in(n))
	}
	out := make([]float32, im.out(n))
	im.fn(n, in, out)
	ctx.Sections[1] = kernel.F32ToBytes(out)
	return nil
}

// --- the fourteen kernels ------------------------------------------------

// atax computes y = Aᵀ(A·x). Input: A (n×n) then x (n).
func atax(n int, in, out []float32) {
	a, x := in[:n*n], in[n*n:n*n+n]
	tmp := make([]float32, n)
	for i := 0; i < n; i++ {
		var s float32
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		tmp[i] = s
	}
	for j := 0; j < n; j++ {
		var s float32
		for i := 0; i < n; i++ {
			s += a[i*n+j] * tmp[i]
		}
		out[j] = s
	}
}

// bicg computes s = Aᵀ·r and q = A·p. Input: A, p (n), r (n); output s‖q.
func bicg(n int, in, out []float32) {
	a, p, r := in[:n*n], in[n*n:n*n+n], in[n*n+n:n*n+2*n]
	for j := 0; j < n; j++ {
		var s float32
		for i := 0; i < n; i++ {
			s += a[i*n+j] * r[i]
		}
		out[j] = s
	}
	for i := 0; i < n; i++ {
		var q float32
		for j := 0; j < n; j++ {
			q += a[i*n+j] * p[j]
		}
		out[n+i] = q
	}
}

// conv2d applies PolyBench's 3×3 stencil; borders stay zero.
func conv2d(n int, in, out []float32) {
	const (
		c11, c12, c13 = 0.2, 0.5, -0.8
		c21, c22, c23 = -0.3, 0.6, -0.9
		c31, c32, c33 = 0.4, 0.7, 0.1
	)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			out[i*n+j] = c11*in[(i-1)*n+j-1] + c12*in[(i-1)*n+j] + c13*in[(i-1)*n+j+1] +
				c21*in[i*n+j-1] + c22*in[i*n+j] + c23*in[i*n+j+1] +
				c31*in[(i+1)*n+j-1] + c32*in[(i+1)*n+j] + c33*in[(i+1)*n+j+1]
		}
	}
}

// mvt computes x1 += A·y1 and x2 += Aᵀ·y2. Input: A, x1, x2, y1, y2.
func mvt(n int, in, out []float32) {
	a := in[:n*n]
	x1 := in[n*n : n*n+n]
	x2 := in[n*n+n : n*n+2*n]
	y1 := in[n*n+2*n : n*n+3*n]
	y2 := in[n*n+3*n : n*n+4*n]
	for i := 0; i < n; i++ {
		s := x1[i]
		for j := 0; j < n; j++ {
			s += a[i*n+j] * y1[j]
		}
		out[i] = s
	}
	for i := 0; i < n; i++ {
		s := x2[i]
		for j := 0; j < n; j++ {
			s += a[j*n+i] * y2[j]
		}
		out[n+i] = s
	}
}

// adi performs one alternating-direction-implicit sweep over X using
// coefficient arrays A and B (PolyBench's forward substitutions), emitting
// the updated X and B planes.
func adi(n int, in, out []float32) {
	x := append([]float32(nil), in[:n*n]...)
	a := in[n*n : 2*n*n]
	b := append([]float32(nil), in[2*n*n:3*n*n]...)
	for i := 0; i < n; i++ {
		for j := 1; j < n; j++ {
			x[i*n+j] -= x[i*n+j-1] * a[i*n+j] / b[i*n+j-1]
			b[i*n+j] -= a[i*n+j] * a[i*n+j] / b[i*n+j-1]
		}
	}
	for j := 0; j < n; j++ {
		for i := 1; i < n; i++ {
			x[i*n+j] -= x[(i-1)*n+j] * a[i*n+j] / b[(i-1)*n+j]
			b[i*n+j] -= a[i*n+j] * a[i*n+j] / b[(i-1)*n+j]
		}
	}
	copy(out[:n*n], x)
	copy(out[n*n:], b)
}

// fdtd2d advances Yee's method two time steps over ex, ey, hz with the
// fict source vector (paper Fig. 6's kernel).
func fdtd2d(n int, in, out []float32) {
	ex := append([]float32(nil), in[:n*n]...)
	ey := append([]float32(nil), in[n*n:2*n*n]...)
	hz := append([]float32(nil), in[2*n*n:3*n*n]...)
	fict := in[3*n*n : 3*n*n+4]
	for t := 0; t < 2; t++ {
		for j := 0; j < n; j++ { // m0: fict into the first ey row
			ey[j] = fict[t]
		}
		for i := 1; i < n; i++ { // m1: field differentials
			for j := 0; j < n; j++ {
				ey[i*n+j] -= 0.5 * (hz[i*n+j] - hz[(i-1)*n+j])
			}
		}
		for i := 0; i < n; i++ {
			for j := 1; j < n; j++ {
				ex[i*n+j] -= 0.5 * (hz[i*n+j] - hz[i*n+j-1])
			}
		}
		for i := 0; i < n-1; i++ { // m2: output field
			for j := 0; j < n-1; j++ {
				hz[i*n+j] -= 0.7 * (ex[i*n+j+1] - ex[i*n+j] + ey[(i+1)*n+j] - ey[i*n+j])
			}
		}
	}
	copy(out, hz)
}

// gesummv computes y = α·A·x + β·B·x.
func gesummv(n int, in, out []float32) {
	a, b, x := in[:n*n], in[n*n:2*n*n], in[2*n*n:2*n*n+n]
	for i := 0; i < n; i++ {
		var sa, sb float32
		for j := 0; j < n; j++ {
			sa += a[i*n+j] * x[j]
			sb += b[i*n+j] * x[j]
		}
		out[i] = alpha*sa + beta*sb
	}
}

// syrk computes C = α·A·Aᵀ + β·C.
func syrk(n int, in, out []float32) {
	a, c := in[:n*n], in[n*n:2*n*n]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for k := 0; k < n; k++ {
				s += a[i*n+k] * a[j*n+k]
			}
			out[i*n+j] = alpha*s + beta*c[i*n+j]
		}
	}
}

func matmul(n int, a, b, dst []float32) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			dst[i*n+j] = s
		}
	}
}

// mm3 computes G = (A·B)·(C·D).
func mm3(n int, in, out []float32) {
	a, b, c, d := in[:n*n], in[n*n:2*n*n], in[2*n*n:3*n*n], in[3*n*n:4*n*n]
	e := make([]float32, n*n)
	f := make([]float32, n*n)
	matmul(n, a, b, e)
	matmul(n, c, d, f)
	matmul(n, e, f, out)
}

// covar computes the covariance matrix of an n×n data block (columns are
// variables).
func covar(n int, in, out []float32) {
	mean := make([]float32, n)
	for j := 0; j < n; j++ {
		var s float32
		for i := 0; i < n; i++ {
			s += in[i*n+j]
		}
		mean[j] = s / float32(n)
	}
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			var s float32
			for i := 0; i < n; i++ {
				s += (in[i*n+j] - mean[j]) * (in[i*n+k] - mean[k])
			}
			out[j*n+k] = s / float32(n-1)
		}
	}
}

// gemm computes C = α·A·B + β·C.
func gemm(n int, in, out []float32) {
	a, b, c := in[:n*n], in[n*n:2*n*n], in[2*n*n:3*n*n]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			out[i*n+j] = alpha*s + beta*c[i*n+j]
		}
	}
}

// mm2 computes D = α·(A·B)·C + β·D.
func mm2(n int, in, out []float32) {
	a, b, c, d := in[:n*n], in[n*n:2*n*n], in[2*n*n:3*n*n], in[3*n*n:4*n*n]
	tmp := make([]float32, n*n)
	matmul(n, a, b, tmp)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for k := 0; k < n; k++ {
				s += tmp[i*n+k] * c[k*n+j]
			}
			out[i*n+j] = alpha*s + beta*d[i*n+j]
		}
	}
}

// syr2k computes C = α·A·Bᵀ + α·B·Aᵀ + β·C.
func syr2k(n int, in, out []float32) {
	a, b, c := in[:n*n], in[n*n:2*n*n], in[2*n*n:3*n*n]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for k := 0; k < n; k++ {
				s += a[i*n+k]*b[j*n+k] + b[i*n+k]*a[j*n+k]
			}
			out[i*n+j] = alpha*s + beta*c[i*n+j]
		}
	}
}

// corr computes the correlation matrix of an n×n data block.
func corr(n int, in, out []float32) {
	mean := make([]float32, n)
	std := make([]float32, n)
	for j := 0; j < n; j++ {
		var s float32
		for i := 0; i < n; i++ {
			s += in[i*n+j]
		}
		mean[j] = s / float32(n)
	}
	for j := 0; j < n; j++ {
		var s float32
		for i := 0; i < n; i++ {
			d := in[i*n+j] - mean[j]
			s += d * d
		}
		std[j] = float32(math.Sqrt(float64(s / float32(n))))
		if std[j] < 1e-6 {
			std[j] = 1
		}
	}
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			var s float32
			for i := 0; i < n; i++ {
				s += (in[i*n+j] - mean[j]) * (in[i*n+k] - mean[k])
			}
			out[j*n+k] = s / (float32(n) * std[j] * std[k])
		}
	}
}

// gemmPartitioned computes rows [screen's share] of C = α·A·B + β·C,
// writing its slice into section 16+screen — the multi-screen functional
// demonstration.
func gemmPartitioned(ctx *kernel.ExecCtx) error {
	n := int(ctx.Arg)
	if n <= 0 || ctx.Screens <= 0 {
		return fmt.Errorf("polybench: bad partitioned gemm arg %d/%d", n, ctx.Screens)
	}
	in := kernel.BytesToF32(ctx.Sections[0])
	if len(in) < 3*n*n {
		return fmt.Errorf("polybench: partitioned gemm input too small")
	}
	a, b, c := in[:n*n], in[n*n:2*n*n], in[2*n*n:3*n*n]
	lo := ctx.Screen * n / ctx.Screens
	hi := (ctx.Screen + 1) * n / ctx.Screens
	out := make([]float32, (hi-lo)*n)
	for i := lo; i < hi; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			out[(i-lo)*n+j] = alpha*s + beta*c[i*n+j]
		}
	}
	ctx.Sections[uint8(16+ctx.Screen)] = kernel.F32ToBytes(out)
	return nil
}

// Names lists the functional kernels.
func Names() []string {
	out := make([]string, 0, len(impls))
	for _, n := range []string{"ATAX", "BICG", "2DCON", "MVT", "ADI", "FDTD", "GESUM",
		"SYRK", "3MM", "COVAR", "GEMM", "2MM", "SYR2K", "CORR"} {
		out = append(out, n)
	}
	return out
}

// Input generates the deterministic input block for a kernel at size n.
func Input(name string, n int) ([]float32, error) {
	im, ok := impls[name]
	if !ok {
		return nil, fmt.Errorf("polybench: unknown kernel %q", name)
	}
	return genFloats(name, im.in(n)), nil
}

// Reference runs the kernel directly (no device) and returns its output;
// integration tests compare flash contents against it.
func Reference(name string, n int, in []float32) ([]float32, error) {
	im, ok := impls[name]
	if !ok {
		return nil, fmt.Errorf("polybench: unknown kernel %q", name)
	}
	out := make([]float32, im.out(n))
	im.fn(n, in, out)
	return out, nil
}

// genFloats produces reproducible values in [0,1) from a name-seeded LCG.
func genFloats(seed string, n int) []float32 {
	var s uint64 = 0x9E3779B97F4A7C15
	for _, c := range seed {
		s = s*131 + uint64(c)
	}
	out := make([]float32, n)
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		out[i] = float32(s>>40) / float32(1<<24)
	}
	return out
}

// App builds a functional single-screen kernel description table for name
// at problem size n, reading input from inAddr and writing output to
// outAddr. It returns the table, the input payload to populate, and the
// output byte count.
func App(name string, n int, inAddr, outAddr int64) (*kdt.Table, []byte, int64, error) {
	im, ok := impls[name]
	if !ok {
		return nil, nil, 0, fmt.Errorf("polybench: unknown kernel %q", name)
	}
	in, err := Input(name, n)
	if err != nil {
		return nil, nil, 0, err
	}
	inBytes := int64(4 * len(in))
	outBytes := int64(4 * im.out(n))
	instr := int64(im.in(n)) * int64(n) / 2 // O(n³)-ish cost proxy
	if instr < 1000 {
		instr = 1000
	}
	tab := &kdt.Table{
		Name:     name,
		Sections: kdt.DefaultSections(0, inBytes),
		Microblocks: []kdt.Microblock{{Screens: []kdt.Screen{{Ops: []kdt.Op{
			{Kind: kdt.OpRead, Section: 0, FlashAddr: inAddr, Bytes: inBytes},
			{Kind: kdt.OpCompute, Instr: instr, MulMilli: 200, LdStMilli: 400},
			{Kind: kdt.OpExec, Section: 0, Builtin: im.id, Arg: uint32(n)},
			{Kind: kdt.OpWrite, Section: 1, FlashAddr: outAddr, Bytes: outBytes},
		}}}}},
	}
	tab.Sections[0].Size = tab.TextSize()
	return tab, kernel.F32ToBytes(in), outBytes, nil
}

// PartitionedGEMM builds the multi-screen functional GEMM: `screens`
// screens each compute a row band and write it to its own flash range.
func PartitionedGEMM(n, screens int, inAddr, outAddr int64) (*kdt.Table, []byte, int64, error) {
	if screens < 1 || n < screens {
		return nil, nil, 0, fmt.Errorf("polybench: bad partition %d screens for n=%d", screens, n)
	}
	in := genFloats("GEMM", 3*n*n)
	inBytes := int64(4 * len(in))
	mb := kdt.Microblock{}
	for s := 0; s < screens; s++ {
		lo := s * n / screens
		hi := (s + 1) * n / screens
		rows := int64(hi - lo)
		mb.Screens = append(mb.Screens, kdt.Screen{Ops: []kdt.Op{
			{Kind: kdt.OpRead, Section: 0, FlashAddr: inAddr, Bytes: inBytes},
			{Kind: kdt.OpCompute, Instr: int64(n) * int64(n) * rows, MulMilli: 250, LdStMilli: 375},
			{Kind: kdt.OpExec, Section: 0, Builtin: BuiltinGEMMPart, Arg: uint32(n)},
			{Kind: kdt.OpWrite, Section: uint8(16 + s), FlashAddr: outAddr + int64(lo)*int64(n)*4, Bytes: rows * int64(n) * 4},
		}})
	}
	tab := &kdt.Table{Name: "GEMM-part", Sections: kdt.DefaultSections(0, inBytes), Microblocks: []kdt.Microblock{mb}}
	tab.Sections[0].Size = tab.TextSize()
	return tab, kernel.F32ToBytes(in), int64(n) * int64(n) * 4, nil
}
