// Package kdt implements the kernel description table: the ELF-like
// executable object a host offloads to FlashAbacus (paper §4 "Kernel").
//
// A table carries the kernel's section layout (.text, .ddr3_arr, .heap,
// .stack — every address points into the target LWP's L2 except the data
// section, which Flashvisor manages) and the kernel body as an op bytecode
// organized into microblocks and screens. The wire format is little-endian
// with fixed-width ops and a trailing CRC-32, so a corrupted download is
// rejected before Flashvisor boots anything.
package kdt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Magic and version of the wire format.
const (
	Magic   = "KDT1"
	Version = 1
)

// OpKind discriminates bytecode operations.
type OpKind uint8

// The op bytecode. Read and Write map a data section onto flash backbone
// addresses through Flashvisor; Compute advances the VLIW cost model; Exec
// invokes a registered builtin against the data sections (functional runs).
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpCompute
	OpExec
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpCompute:
		return "COMPUTE"
	case OpExec:
		return "EXEC"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one bytecode operation. Instruction mixes are carried in millièmes
// so the wire format stays fixed-width.
type Op struct {
	Kind      OpKind
	Section   uint8  // data-section index for Read/Write/Exec
	Builtin   uint16 // builtin function id for Exec
	MulMilli  uint16 // multiply fraction × 1000 for Compute
	LdStMilli uint16 // load/store fraction × 1000 for Compute
	FlashAddr int64  // word-based flash backbone address for Read/Write
	Bytes     int64  // payload bytes for Read/Write
	Instr     int64  // instruction count for Compute
	Arg       uint32 // builtin argument
}

const opWireSize = 1 + 1 + 2 + 2 + 2 + 8 + 8 + 8 + 4 // 36 bytes

// Screen is an independently schedulable partition of a microblock.
type Screen struct {
	Ops []Op
}

// Microblock is a data-dependent group: microblock i+1 of a kernel may not
// start before every screen of microblock i has completed.
type Microblock struct {
	Screens []Screen
}

// Serial reports whether the microblock cannot be split (single screen).
func (m Microblock) Serial() bool { return len(m.Screens) == 1 }

// Section describes one loadable section.
type Section struct {
	Name string
	Addr uint64
	Size int64
}

// Standard section names.
const (
	SecText = ".text"
	SecData = ".ddr3_arr"
	SecHeap = ".heap"
	SecStak = ".stack"
)

// Table is a decoded kernel description table.
type Table struct {
	Name        string
	AppID       uint32
	KernelID    uint32
	Sections    []Section
	Microblocks []Microblock
}

// DefaultSections returns the canonical section layout for a kernel whose
// data section holds dataBytes. Text, heap, and stack live in the LWP's L2
// address range (paper §4: everything but the data section points at L2).
func DefaultSections(textBytes, dataBytes int64) []Section {
	const l2Base = 0x0080_0000
	return []Section{
		{Name: SecText, Addr: l2Base, Size: textBytes},
		{Name: SecData, Addr: 0x8000_0000, Size: dataBytes}, // DDR3L, Flashvisor-managed
		{Name: SecHeap, Addr: l2Base + 0x4_0000, Size: 128 * 1024},
		{Name: SecStak, Addr: l2Base + 0x6_0000, Size: 64 * 1024},
	}
}

// TextSize returns the encoded size of the op bytecode, which is what the
// .text section of an assembled table reports.
func (t *Table) TextSize() int64 {
	var n int64
	for _, mb := range t.Microblocks {
		for _, s := range mb.Screens {
			n += int64(len(s.Ops)) * opWireSize
		}
	}
	return n
}

// Validate checks structural invariants before encoding or execution.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("kdt: kernel has no name")
	}
	if len(t.Microblocks) == 0 {
		return fmt.Errorf("kdt: kernel %q has no microblocks", t.Name)
	}
	for i, mb := range t.Microblocks {
		if len(mb.Screens) == 0 {
			return fmt.Errorf("kdt: kernel %q microblock %d has no screens", t.Name, i)
		}
		for j, s := range mb.Screens {
			if len(s.Ops) == 0 {
				return fmt.Errorf("kdt: kernel %q microblock %d screen %d is empty", t.Name, i, j)
			}
			for _, op := range s.Ops {
				if err := validateOp(op); err != nil {
					return fmt.Errorf("kdt: kernel %q mb %d screen %d: %w", t.Name, i, j, err)
				}
			}
		}
	}
	return nil
}

func validateOp(op Op) error {
	switch op.Kind {
	case OpRead, OpWrite:
		if op.Bytes <= 0 {
			return fmt.Errorf("%v op with non-positive byte count %d", op.Kind, op.Bytes)
		}
		if op.FlashAddr < 0 {
			return fmt.Errorf("%v op with negative flash address", op.Kind)
		}
	case OpCompute:
		if op.Instr <= 0 {
			return fmt.Errorf("COMPUTE op with non-positive instruction count %d", op.Instr)
		}
		if op.MulMilli+op.LdStMilli > 1000 {
			return fmt.Errorf("COMPUTE op mix %d+%d exceeds 1000 millièmes", op.MulMilli, op.LdStMilli)
		}
	case OpExec:
		// Builtin 0 is reserved as "missing".
		if op.Builtin == 0 {
			return fmt.Errorf("EXEC op with reserved builtin id 0")
		}
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
	return nil
}

// Encode assembles the table into its wire format.
func (t *Table) Encode() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(t.Name) > 0xFFFF || len(t.Sections) > 0xFF || len(t.Microblocks) > 0xFFFF {
		return nil, fmt.Errorf("kdt: kernel %q exceeds format limits", t.Name)
	}
	var b []byte
	b = append(b, Magic...)
	b = le16(b, Version)
	b = le16(b, 0) // flags
	b = le16(b, uint16(len(t.Name)))
	b = append(b, t.Name...)
	b = le32(b, t.AppID)
	b = le32(b, t.KernelID)
	b = append(b, uint8(len(t.Sections)))
	for _, s := range t.Sections {
		if len(s.Name) > 0xFF {
			return nil, fmt.Errorf("kdt: section name %q too long", s.Name)
		}
		b = append(b, uint8(len(s.Name)))
		b = append(b, s.Name...)
		b = le64(b, s.Addr)
		b = le64(b, uint64(s.Size))
	}
	b = le16(b, uint16(len(t.Microblocks)))
	for _, mb := range t.Microblocks {
		if len(mb.Screens) > 0xFFFF {
			return nil, fmt.Errorf("kdt: too many screens")
		}
		b = le16(b, uint16(len(mb.Screens)))
		for _, s := range mb.Screens {
			if len(s.Ops) > 0xFFFF {
				return nil, fmt.Errorf("kdt: too many ops")
			}
			b = le16(b, uint16(len(s.Ops)))
			for _, op := range s.Ops {
				b = append(b, uint8(op.Kind), op.Section)
				b = le16(b, op.Builtin)
				b = le16(b, op.MulMilli)
				b = le16(b, op.LdStMilli)
				b = le64(b, uint64(op.FlashAddr))
				b = le64(b, uint64(op.Bytes))
				b = le64(b, uint64(op.Instr))
				b = le32(b, op.Arg)
			}
		}
	}
	b = le32(b, crc32.ChecksumIEEE(b))
	return b, nil
}

// Decode parses a wire blob, verifying magic, version, bounds, and CRC.
func Decode(b []byte) (*Table, error) {
	if len(b) < len(Magic)+2+2+2+4 {
		return nil, fmt.Errorf("kdt: blob too short (%d bytes)", len(b))
	}
	if string(b[:4]) != Magic {
		return nil, fmt.Errorf("kdt: bad magic %q", b[:4])
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("kdt: CRC mismatch")
	}
	r := reader{b: body, off: 4}
	ver := r.u16()
	if ver != Version {
		return nil, fmt.Errorf("kdt: unsupported version %d", ver)
	}
	r.u16() // flags
	t := &Table{}
	t.Name = string(r.bytes(int(r.u16())))
	t.AppID = r.u32()
	t.KernelID = r.u32()
	nSec := int(r.u8())
	t.Sections = make([]Section, 0, nSec)
	for i := 0; i < nSec; i++ {
		var s Section
		s.Name = string(r.bytes(int(r.u8())))
		s.Addr = r.u64()
		s.Size = int64(r.u64())
		t.Sections = append(t.Sections, s)
	}
	nMB := int(r.u16())
	t.Microblocks = make([]Microblock, 0, nMB)
	for i := 0; i < nMB; i++ {
		nScr := int(r.u16())
		mb := Microblock{Screens: make([]Screen, 0, nScr)}
		for j := 0; j < nScr; j++ {
			nOps := int(r.u16())
			scr := Screen{Ops: make([]Op, 0, nOps)}
			for k := 0; k < nOps; k++ {
				var op Op
				op.Kind = OpKind(r.u8())
				op.Section = r.u8()
				op.Builtin = r.u16()
				op.MulMilli = r.u16()
				op.LdStMilli = r.u16()
				op.FlashAddr = int64(r.u64())
				op.Bytes = int64(r.u64())
				op.Instr = int64(r.u64())
				op.Arg = r.u32()
				scr.Ops = append(scr.Ops, op)
			}
			mb.Screens = append(mb.Screens, scr)
		}
		t.Microblocks = append(t.Microblocks, mb)
	}
	if r.err != nil {
		return nil, fmt.Errorf("kdt: truncated table: %w", r.err)
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("kdt: %d trailing bytes", len(body)-r.off)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func le16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func le32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func le64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes(n int) []byte {
	if !r.need(n) {
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}
