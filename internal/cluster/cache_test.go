package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/kdt"
	"repro/internal/stats"
	"repro/internal/workload"
)

func testBundle(t *testing.T, scale int64) *workload.Bundle {
	t.Helper()
	o := workload.DefaultOptions()
	o.Scale = scale
	b, err := workload.Mix(1, o)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestImageCacheSingleFlight races many goroutines at one image key: they
// must all receive the same image (one build), and the cache must be safe
// under -race.
func TestImageCacheSingleFlight(t *testing.T) {
	c := NewImageCache()
	b := testBundle(t, 4096)
	cfg := core.DefaultConfig(core.IntraO3)

	const goroutines = 16
	imgs := make([]*core.Image, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			img, err := c.Populated(context.Background(), cfg, b)
			if err != nil {
				t.Error(err)
				return
			}
			imgs[g] = img
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if imgs[g] != imgs[0] {
			t.Fatalf("goroutine %d got a different image: single-flight broken", g)
		}
	}
}

// TestImageSharedAcrossGovernors pins the build-key sharing rule: the four
// FlashAbacus governors fork one image, the SIMD baseline gets its own.
func TestImageSharedAcrossGovernors(t *testing.T) {
	c := NewImageCache()
	b := testBundle(t, 4096)
	ctx := context.Background()
	var fa []*core.Image
	for _, sys := range core.FlashAbacusSystems {
		img, err := c.Populated(ctx, core.DefaultConfig(sys), b)
		if err != nil {
			t.Fatal(err)
		}
		fa = append(fa, img)
	}
	for i := 1; i < len(fa); i++ {
		if fa[i] != fa[0] {
			t.Errorf("governor %s does not share the FlashAbacus image", core.FlashAbacusSystems[i])
		}
	}
	simd, err := c.Populated(ctx, core.DefaultConfig(core.SIMD), b)
	if err != nil {
		t.Fatal(err)
	}
	if simd == fa[0] {
		t.Error("SIMD shares the FlashAbacus image despite routing populate elsewhere")
	}
}

// TestProbeMemoized proves the work-steal probe satellite: one simulation
// per (config, bundle, instance), shared by every later dispatch.
func TestProbeMemoized(t *testing.T) {
	c := NewImageCache()
	b := testBundle(t, 4096)
	cfg := core.DefaultConfig(core.IntraO3)
	var runs int32
	run := func(context.Context) (*stats.Result, error) {
		atomic.AddInt32(&runs, 1)
		return &stats.Result{Makespan: 42}, nil
	}
	for i := 0; i < 3; i++ {
		res, err := c.Probe(context.Background(), cfg, b, "ATAX#0", run)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != 42 {
			t.Fatal("wrong memoized result")
		}
	}
	if runs != 1 {
		t.Errorf("probe simulated %d times, want 1", runs)
	}
	// A different instance (or config) is its own probe.
	if _, err := c.Probe(context.Background(), cfg, b, "ATAX#1", run); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Workers = 3
	if _, err := c.Probe(context.Background(), other, b, "ATAX#0", run); err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Errorf("distinct probe keys simulated %d times, want 3", runs)
	}
}

// TestUnkeyedBundleBypassesCache: hand-assembled bundles (no content key)
// must never be cached — nothing ties their pointer to their content.
func TestUnkeyedBundleBypassesCache(t *testing.T) {
	c := NewImageCache()
	b := testBundle(t, 4096)
	b.Key = ""
	cfg := core.DefaultConfig(core.IntraO3)
	a1, err := c.Populated(context.Background(), cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Populated(context.Background(), cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Error("unkeyed bundle was cached")
	}
	var runs int32
	run := func(context.Context) (*stats.Result, error) {
		atomic.AddInt32(&runs, 1)
		return &stats.Result{}, nil
	}
	c.Probe(context.Background(), cfg, b, "x#0", run)
	c.Probe(context.Background(), cfg, b, "x#0", run)
	if runs != 2 {
		t.Errorf("unkeyed probe memoized (%d runs)", runs)
	}
}

// TestProbeCacheBounded: the shared public cache lives for the process, so
// arbitrary key churn must not grow it without bound.
func TestProbeCacheBounded(t *testing.T) {
	c := NewImageCache()
	b := testBundle(t, 4096)
	cfg := core.DefaultConfig(core.IntraO3)
	run := func(context.Context) (*stats.Result, error) { return &stats.Result{}, nil }
	for i := 0; i < maxCachedProbes+100; i++ {
		if _, err := c.Probe(context.Background(), cfg, b, fmt.Sprintf("inst#%d", i), run); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	n := len(c.probes.entries)
	c.mu.Unlock()
	if n > maxCachedProbes {
		t.Errorf("probe cache grew to %d entries, cap %d", n, maxCachedProbes)
	}
}

// tinyGeoConfig returns a config over a minimal flash geometry, so a few
// repeated populates exhaust the free pool and force foreground reclaims
// during setup.
func tinyGeoConfig() core.Config {
	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Flash.PackagesPerCh = 1
	cfg.Flash.DiesPerPkg = 1
	cfg.Flash.BlocksPerDie = 8
	cfg.Flash.PagesPerBlock = 8
	return cfg
}

// TestUnforkablePopulateFallsBack: a bundle whose populate triggers
// foreground reclaims leaves device state an image cannot capture (visor
// counters, erase counts, die timing). The cached path must detect that,
// refuse the snapshot, and fall back to the plain lifecycle with an
// identical result.
func TestUnforkablePopulateFallsBack(t *testing.T) {
	cfg := tinyGeoConfig()
	n, err := NewNode(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	logical := n.Device().Visor().FTL.LogicalBytes()
	full := workload.Range{Addr: 0, Bytes: logical}
	// A compute-only app, so the tiny logical space only has to absorb the
	// populate churn, not kernel data sections.
	tab := &kdt.Table{
		Name:     "spin",
		Sections: kdt.DefaultSections(128, 0),
		Microblocks: []kdt.Microblock{{Screens: []kdt.Screen{{Ops: []kdt.Op{
			{Kind: kdt.OpCompute, Instr: 10000, MulMilli: 150, LdStMilli: 300},
		}}}}},
	}
	b := &workload.Bundle{
		Name: "churn",
		Key:  "test/unforkable-churn", // keyed, so the cached path engages
		// Re-populating the full logical space invalidates every mapping
		// and allocates fresh groups until the pool runs dry mid-setup.
		Populate: []workload.Range{full, full, full},
		Apps:     []workload.App{{Name: "spin", Tables: []*kdt.Table{tab}}},
	}

	// The bundle really is unforkable: populate leaves reclaim state.
	probe, err := NewNode(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Populate(b.Populate); err != nil {
		t.Fatal(err)
	}
	if probe.Device().Visor().Stats().FGReclaims == 0 {
		t.Fatal("fixture did not trigger foreground reclaims; tighten the geometry")
	}
	if _, err := probe.Device().Snapshot(); !errors.Is(err, core.ErrUnforkable) {
		t.Fatalf("snapshot of reclaimed device: err = %v, want ErrUnforkable", err)
	}

	want, err := RunSingle(context.Background(), cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSingleCached(context.Background(), cfg, b, NewImageCache())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("unforkable fallback diverged from the plain lifecycle")
	}
}

// TestCachedClusterRunByteIdentical pins the whole point of the cache: a
// topology work-steal dispatch with image forks and memoized probes equals
// the uncached dispatch field for field — twice, so the second (fully
// cache-hot) dispatch is covered too.
func TestCachedClusterRunByteIdentical(t *testing.T) {
	b := testBundle(t, 2048)
	topo, err := Preset("2sw-skew", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.IntraO3)
	want, err := Run(context.Background(), cfg, b, Options{Policy: WorkSteal, Workers: 1, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewImageCache()
	for i := 0; i < 2; i++ {
		got, err := Run(context.Background(), cfg, b, Options{Policy: WorkSteal, Workers: 1, Topology: topo, Images: cache})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cached dispatch %d diverged from uncached", i)
		}
	}
}
