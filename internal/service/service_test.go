// In-package tests for the daemon's admission control: round-robin
// fairness, queue shedding, eager cancellation, deadlines, and request
// validation. The gate seam in Config lets these tests hold workers at
// a deterministic point, so dispatch order is asserted exactly rather
// than statistically.
package service

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer starts a Server behind a real listener and returns a
// client bound to it. Close and cleanup are registered on t.
func testServer(t *testing.T, cfg Config) (*Client, *Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Close()
		hs.Close()
	})
	return &Client{BaseURL: hs.URL, HTTPClient: hs.Client()}, s
}

// dispatchLog records the order the worker picks jobs up in.
type dispatchLog struct {
	mu      sync.Mutex
	clients []string
}

func (d *dispatchLog) add(c string) {
	d.mu.Lock()
	d.clients = append(d.clients, c)
	d.mu.Unlock()
}

func (d *dispatchLog) snapshot() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.clients...)
}

// plugGate blocks jobs from the "plug" client until release is closed
// (or the job is cancelled), records every dispatch, and optionally
// slows normal jobs down to build queue pressure.
func plugGate(log *dispatchLog, release <-chan struct{}, slow time.Duration) func(context.Context, *job) {
	return func(ctx context.Context, j *job) {
		log.add(j.client)
		if j.client == "plug" {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return
		}
		if slow > 0 {
			select {
			case <-time.After(slow):
			case <-ctx.Done():
			}
		}
	}
}

// submitT1 submits an instant (simulation-free) job for the client.
func submitT1(t *testing.T, c *Client, client string) JobStatus {
	t.Helper()
	st, err := c.Submit(context.Background(), JobRequest{Experiment: "t1", Client: client})
	if err != nil {
		t.Fatalf("submit for %s: %v", client, err)
	}
	return st
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, c *Client, id string, want ...JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want one of %v", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFairRoundRobin pins the scheduler's per-client fairness exactly:
// with the single worker held on a plug job, client A back-logs five
// jobs while B, C, and D submit one each; dispatch must lap the clients
// (A B C D) before returning to A's backlog, not drain A first.
func TestFairRoundRobin(t *testing.T) {
	log := &dispatchLog{}
	release := make(chan struct{})
	c, _ := testServer(t, Config{Workers: 1, QueueDepth: 16, gate: plugGate(log, release, 0)})

	plug := submitT1(t, c, "plug")
	waitState(t, c, plug.ID, StateRunning)

	var last JobStatus
	for i := 0; i < 5; i++ {
		last = submitT1(t, c, "A")
	}
	submitT1(t, c, "B")
	submitT1(t, c, "C")
	submitT1(t, c, "D")

	close(release)
	waitState(t, c, last.ID, StateDone)

	got := log.snapshot()
	want := []string{"plug", "A", "B", "C", "D", "A", "A", "A", "A"}
	if len(got) != len(want) {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestQueueShedding pins the admission bound: with the worker held and
// the queue full, a submit sheds with 429 and a Retry-After hint, and
// cancelling a queued job frees its slot immediately.
func TestQueueShedding(t *testing.T) {
	log := &dispatchLog{}
	release := make(chan struct{})
	c, _ := testServer(t, Config{Workers: 1, QueueDepth: 2, gate: plugGate(log, release, 0)})

	plug := submitT1(t, c, "plug")
	waitState(t, c, plug.ID, StateRunning)

	q1 := submitT1(t, c, "A")
	submitT1(t, c, "B")

	_, err := c.Submit(context.Background(), JobRequest{Experiment: "t1", Client: "C"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 429 {
		t.Fatalf("submit into full queue: got %v, want 429", err)
	}

	// Cancelling a queued job dequeues it eagerly, freeing a slot.
	st, err := c.Cancel(context.Background(), q1.ID)
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if st.State != StateCancelled || st.Seq != 0 || st.Bytes != 0 {
		t.Fatalf("cancelled queued job: state %s seq %d bytes %d, want cancelled/0/0", st.State, st.Seq, st.Bytes)
	}
	if _, err := c.Submit(context.Background(), JobRequest{Experiment: "t1", Client: "C"}); err != nil {
		t.Fatalf("submit after eager dequeue freed a slot: %v", err)
	}
	close(release)
}

// TestCancelRunning cancels the plug job mid-execution: its context
// must unwind the gate and the job must finalize as cancelled.
func TestCancelRunning(t *testing.T) {
	log := &dispatchLog{}
	release := make(chan struct{}) // never closed: only ctx unblocks
	c, _ := testServer(t, Config{Workers: 1, gate: plugGate(log, release, 0)})

	plug := submitT1(t, c, "plug")
	waitState(t, c, plug.ID, StateRunning)
	if _, err := c.Cancel(context.Background(), plug.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	st := waitState(t, c, plug.ID, StateCancelled)
	if st.Error == "" {
		t.Fatalf("cancelled running job has no error message")
	}
}

// TestDeadline pins the server-side deadline: a job whose gate consumes
// its whole budget fails with a deadline error, not done/cancelled.
func TestDeadline(t *testing.T) {
	gate := func(ctx context.Context, j *job) { <-ctx.Done() }
	c, _ := testServer(t, Config{Workers: 1, gate: gate})

	st, err := c.Submit(context.Background(), JobRequest{Experiment: "fig3d", TimeoutMS: 50, Client: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, c, st.ID, StateFailed)
	if !strings.Contains(fin.Error, "deadline exceeded") {
		t.Fatalf("deadline job error = %q, want deadline exceeded", fin.Error)
	}
}

// TestValidation walks the request validator's rejection surface; every
// case must come back 400 with a JSON error, never a 5xx or a panic.
func TestValidation(t *testing.T) {
	c, _ := testServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"malformed", `{`},
		{"unknown field", `{"experiments":"all"}`},
		{"trailing garbage", `{"experiment":"t1"} {"experiment":"t2"}`},
		{"bad experiment", `{"experiment":"fig99"}`},
		{"bad scale", `{"scale":-3}`},
		{"bad devices", `{"devices":1000000}`},
		{"negative timeout", `{"timeout_ms":-1}`},
		{"fault name without plan", `{"fault_name":"x"}`},
		{"bad fault plan", `{"fault_plan":"no such preset or grammar"}`},
		{"bad client", `{"client":"has spaces!"}`},
		{"wrong type", `{"scale":"big"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := DecodeJobRequest(strings.NewReader(tc.body))
			if err == nil {
				if _, err = req.Normalize(); err == nil {
					t.Fatalf("request %q validated, want error", tc.body)
				}
			}
			resp, herr := c.http().Post(c.url("/v1/jobs"), "application/json", strings.NewReader(tc.body))
			if herr != nil {
				t.Fatal(herr)
			}
			resp.Body.Close()
			if resp.StatusCode != 400 {
				t.Fatalf("POST %q: status %d, want 400", tc.body, resp.StatusCode)
			}
		})
	}

	// The empty object is a complete request: every field defaults.
	req, err := DecodeJobRequest(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	if req.Experiment != "all" || req.Scale != 16 || req.Devices != 1 {
		t.Fatalf("defaults = %+v, want all/16/1", req)
	}
}

// TestLoadConcurrent is the load test the issue names: 32 clients race
// 8 jobs each through a single-worker server with a bounded queue,
// while metrics scrapes run concurrently. Asserted: queue-depth
// shedding really happens (and retries recover from it), the first
// dispatch lap after the plug releases serves all 32 clients exactly
// once, every client's cancelled job finalizes correctly, and the final
// bookkeeping balances with zero failed jobs. Run under -race, the test
// is also the data-race check on the metrics and counter paths.
func TestLoadConcurrent(t *testing.T) {
	const clients = 32
	const jobsPer = 8

	log := &dispatchLog{}
	release := make(chan struct{})
	c, _ := testServer(t, Config{
		Workers: 1, QueueDepth: 64, RetainJobs: 1024,
		gate: plugGate(log, release, 3*time.Millisecond),
	})
	ctx := context.Background()

	names := make([]string, clients)
	for i := range names {
		names[i] = fmt.Sprintf("c%02d", i)
	}

	// Phase 1: hold the worker on a plug job, then queue every client's
	// head job. With the worker held, no dispatch happens, so the ring
	// order is exactly the submission order.
	plug := submitT1(t, c, "plug")
	waitState(t, c, plug.ID, StateRunning)
	ids := make([][]string, clients)
	for i, name := range names {
		ids[i] = append(ids[i], submitT1(t, c, name).ID)
	}

	// Phase 2: release the worker and race the remaining submissions,
	// cancellations, and metrics scrapes.
	close(release)

	var mu sync.Mutex
	sheds := 0
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := &Client{BaseURL: c.BaseURL, HTTPClient: c.HTTPClient, Name: names[i]}
			for k := 1; k < jobsPer; k++ {
				for {
					st, err := cl.Submit(ctx, JobRequest{Experiment: "t1"})
					if err == nil {
						mu.Lock()
						ids[i] = append(ids[i], st.ID)
						mu.Unlock()
						break
					}
					var se *StatusError
					if errors.As(err, &se) && se.Code == 429 {
						mu.Lock()
						sheds++
						mu.Unlock()
						time.Sleep(2 * time.Millisecond)
						continue
					}
					t.Errorf("client %s submit: %v", names[i], err)
					return
				}
				if k == 3 {
					mu.Lock()
					id := ids[i][3]
					mu.Unlock()
					if _, err := cl.Cancel(ctx, id); err != nil {
						t.Errorf("client %s cancel: %v", names[i], err)
					}
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			if _, err := c.Metrics(ctx); err != nil {
				t.Errorf("metrics scrape: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	// Drain: every job must reach a terminal state.
	states := map[JobState]int{}
	for i := range names {
		for k, id := range ids[i] {
			st := waitState(t, c, id, StateDone, StateFailed, StateCancelled)
			states[st.State]++
			if st.State == StateFailed {
				t.Errorf("job %s (client %s #%d) failed: %s", id, names[i], k, st.Error)
			}
			if k == 3 && st.State == StateCancelled && st.Seq == 0 && st.Bytes != 0 {
				t.Errorf("job %s cancelled before dispatch but has %d output bytes", id, st.Bytes)
			}
			if st.State == StateDone && st.Bytes == 0 {
				t.Errorf("job %s done with no output", id)
			}
		}
	}
	waitState(t, c, plug.ID, StateDone)

	// Shedding must have occurred and been survivable: every accepted
	// job finished, so accepted == done + cancelled with zero failures.
	if sheds == 0 {
		t.Errorf("no submissions shed: queue bound never engaged (depth 64, %d jobs)", clients*jobsPer)
	}
	if got := states[StateDone] + states[StateCancelled]; got != clients*jobsPer {
		t.Errorf("done %d + cancelled %d = %d, want %d", states[StateDone], states[StateCancelled], got, clients*jobsPer)
	}

	// Fairness: the first dispatch lap after the plug serves all 32
	// clients exactly once, whatever order their backlogs grew in.
	disp := log.snapshot()
	if len(disp) < 1+clients {
		t.Fatalf("only %d dispatches recorded, want at least %d", len(disp), 1+clients)
	}
	lap := map[string]int{}
	for _, client := range disp[1 : 1+clients] {
		lap[client]++
	}
	for _, name := range names {
		if lap[name] != 1 {
			t.Errorf("first lap served client %s %d times, want exactly once (lap: %v)", name, lap[name], disp[1:1+clients])
		}
	}

	// The scrape after the dust settles reflects the shed counter.
	scrape, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scrape, `abacusd_jobs_total{event="shed"}`) {
		t.Errorf("metrics scrape missing shed counter after %d sheds", sheds)
	}
}
