package core

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/flashvisor"
	"repro/internal/kdt"
)

// ImageData is the codec-visible flat decomposition of an Image: the FTL
// decomposition, the functional payload bases, and the offload replay
// records with each kernel re-encoded to its kdt wire bytes. Payload and
// segment slices alias the image's frozen state — both sides treat them as
// immutable.
type ImageData struct {
	FTL       flashvisor.FTLImageData
	FlashBase map[flash.PhysGroup][]byte
	HostBase  map[int64][]byte
	Apps      []ImageApp
}

// ImageApp is the serializable form of one recorded OffloadApp call: the
// kernels as kdt wire blobs plus the original wire sizes, which is all the
// replayed PCIe BAR timing depends on.
type ImageApp struct {
	Name     string
	Blobs    [][]byte
	WireLens []int64
}

// Data decomposes the image for serialization, re-encoding each offloaded
// kernel table to its deterministic kdt wire format.
func (img *Image) Data() (ImageData, error) {
	d := ImageData{
		FTL:       img.ftl.Data(),
		FlashBase: img.flashBase,
		HostBase:  img.hostBase,
	}
	for _, rec := range img.apps {
		app := ImageApp{Name: rec.name, WireLens: rec.wireLens}
		for ki, tab := range rec.tables {
			blob, err := tab.Encode()
			if err != nil {
				return ImageData{}, fmt.Errorf("core: encoding image app %s kernel %d: %w", rec.name, ki, err)
			}
			app.Blobs = append(app.Blobs, blob)
		}
		d.Apps = append(d.Apps, app)
	}
	return d, nil
}

// ImageFromData rebuilds an image from its decomposition under cfg — the
// configuration of the requester about to fork it, which must carry the
// same BuildKey the image was captured under (the store's fingerprint
// guarantees this; the geometry check below re-verifies the part that
// would corrupt a fork). Every kernel blob goes through the same kdt.Decode
// the offload path uses, so a decoded image replays offloads through
// identical device-side parsing.
func ImageFromData(cfg Config, d ImageData) (*Image, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if d.FTL.Geo != cfg.Flash {
		return nil, fmt.Errorf("core: image geometry %+v does not match config %+v", d.FTL.Geo, cfg.Flash)
	}
	ftl, err := flashvisor.FTLImageFromData(d.FTL)
	if err != nil {
		return nil, err
	}
	img := &Image{
		cfg:       cfg,
		key:       cfg.BuildKey(),
		ftl:       ftl,
		flashBase: d.FlashBase,
		hostBase:  d.HostBase,
	}
	for _, app := range d.Apps {
		if len(app.Blobs) != len(app.WireLens) {
			return nil, fmt.Errorf("core: image app %s has %d blobs but %d wire sizes", app.Name, len(app.Blobs), len(app.WireLens))
		}
		rec := offloadedApp{name: app.Name, wireLens: app.WireLens}
		for ki, blob := range app.Blobs {
			if app.WireLens[ki] <= 0 {
				return nil, fmt.Errorf("core: image app %s kernel %d has non-positive wire size", app.Name, ki)
			}
			tab, err := kdt.Decode(blob)
			if err != nil {
				return nil, fmt.Errorf("core: image app %s kernel %d: %w", app.Name, ki, err)
			}
			rec.tables = append(rec.tables, tab)
		}
		img.apps = append(img.apps, rec)
	}
	return img, nil
}
