// Command abacus-kdt assembles and inspects kernel description tables, the
// ELF-like executable objects FlashAbacus offloads (paper §4 "Kernel").
//
// Usage:
//
//	abacus-kdt -build ATAX -scale 16 -out atax.kdt   # assemble a table
//	abacus-kdt -dump atax.kdt                        # decode and print one
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/kdt"
	"repro/internal/units"
	"repro/internal/workload"
)

// options holds the parsed command line.
type options struct {
	build string
	out   string
	dump  string
	scale int64
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("abacus-kdt", flag.ContinueOnError)
	fs.StringVar(&o.build, "build", "", "assemble a table for this Table 2 application")
	fs.StringVar(&o.out, "out", "", "output file for -build")
	fs.StringVar(&o.dump, "dump", "", "decode and print a .kdt file")
	fs.Int64Var(&o.scale, "scale", 16, "input-size divisor for -build")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	if err := run(o.build, o.out, o.dump, o.scale); err != nil {
		fmt.Fprintln(os.Stderr, "abacus-kdt:", err)
		os.Exit(1)
	}
}

func run(build, out, dump string, scale int64) error {
	switch {
	case build != "":
		o := workload.DefaultOptions()
		o.Scale = scale
		b, err := workload.Homogeneous(build, o)
		if err != nil {
			return err
		}
		blob, err := b.Apps[0].Tables[0].Encode()
		if err != nil {
			return err
		}
		if out == "" {
			out = build + ".kdt"
		}
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", out, len(blob))
		return nil
	case dump != "":
		blob, err := os.ReadFile(dump)
		if err != nil {
			return err
		}
		tab, err := kdt.Decode(blob)
		if err != nil {
			return err
		}
		print(tab)
		return nil
	default:
		return fmt.Errorf("need -build NAME or -dump FILE")
	}
}

func print(t *kdt.Table) {
	fmt.Printf("kernel %q (app %d, kernel %d)\n", t.Name, t.AppID, t.KernelID)
	for _, s := range t.Sections {
		fmt.Printf("  section %-10s addr %#010x size %s\n", s.Name, s.Addr, units.FormatBytes(s.Size))
	}
	for mi, mb := range t.Microblocks {
		kind := "parallel"
		if mb.Serial() {
			kind = "serial"
		}
		fmt.Printf("  microblock %d (%s, %d screens)\n", mi, kind, len(mb.Screens))
		for si, scr := range mb.Screens {
			fmt.Printf("    screen %d:\n", si)
			for _, op := range scr.Ops {
				switch op.Kind {
				case kdt.OpRead, kdt.OpWrite:
					fmt.Printf("      %-7s sec=%d flash=%#x bytes=%s\n",
						op.Kind, op.Section, op.FlashAddr, units.FormatBytes(op.Bytes))
				case kdt.OpCompute:
					fmt.Printf("      %-7s instr=%d mul=%.1f%% ldst=%.1f%%\n",
						op.Kind, op.Instr, float64(op.MulMilli)/10, float64(op.LdStMilli)/10)
				case kdt.OpExec:
					fmt.Printf("      %-7s builtin=%d arg=%d\n", op.Kind, op.Builtin, op.Arg)
				}
			}
		}
	}
}
