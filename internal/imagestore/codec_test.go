package imagestore_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/imagestore"
	"repro/internal/workload"
)

// testImage builds a real populated+offloaded image the way the cache does:
// the heterogeneous MX1 bundle exercises every section of the wire format
// (mapping segments, flash payloads under the functional default, multiple
// offloaded apps with multiple kernels).
func testImage(t testing.TB, sys core.System) (*core.Image, core.Config) {
	t.Helper()
	cfg := core.DefaultConfig(sys)
	o := workload.DefaultOptions()
	o.Scale = 1024
	b, err := workload.Mix(1, o)
	if err != nil {
		t.Fatal(err)
	}
	img, err := cluster.NewImageCache().Offloaded(context.Background(), cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	return img, cfg
}

func TestCodecRoundTrip(t *testing.T) {
	for _, sys := range []core.System{core.IntraO3, core.SIMD} {
		t.Run(sys.String(), func(t *testing.T) {
			img, cfg := testImage(t, sys)
			blob, err := imagestore.Encode(img)
			if err != nil {
				t.Fatal(err)
			}
			// Deterministic: the same image encodes to the same bytes.
			blob2, err := imagestore.Encode(img)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatal("Encode is not deterministic")
			}
			dec, err := imagestore.Decode(cfg, blob)
			if err != nil {
				t.Fatal(err)
			}
			// decode(encode(img)) is deep-equal at the decomposition level
			// (raw Image internals hold COW bookkeeping that Data flattens).
			want, err := img.Data()
			if err != nil {
				t.Fatal(err)
			}
			got, err := dec.Data()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("decode(encode(img)) differs from img")
			}
			if dec.Apps() != img.Apps() {
				t.Fatalf("decoded image has %d apps, want %d", dec.Apps(), img.Apps())
			}
			// And the blob re-encodes to itself.
			reblob, err := imagestore.Encode(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reblob, blob) {
				t.Fatal("encode(decode(blob)) differs from blob")
			}
		})
	}
}

func TestDecodeTruncated(t *testing.T) {
	img, cfg := testImage(t, core.IntraO3)
	blob, err := imagestore.Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 4, 15, 16, 100, len(blob) / 2, len(blob) - 1} {
		if _, err := imagestore.Decode(cfg, blob[:n]); !errors.Is(err, imagestore.ErrCorrupt) {
			t.Errorf("Decode of %d-byte prefix: err = %v, want ErrCorrupt", n, err)
		}
	}
	// Appended garbage is corruption too — the envelope admits no slack.
	if _, err := imagestore.Decode(cfg, append(append([]byte(nil), blob...), 0)); !errors.Is(err, imagestore.ErrCorrupt) {
		t.Errorf("Decode with trailing byte: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeBitFlip(t *testing.T) {
	img, cfg := testImage(t, core.IntraO3)
	blob, err := imagestore.Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	// Every byte of the blob is covered by a check (magic, version,
	// structure, or a checksum): flip one bit at a spread of positions —
	// including header, section table, padding, and payload bytes — and
	// decoding must fail cleanly every time.
	step := len(blob)/512 + 1
	for pos := 0; pos < len(blob); pos += step {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0x10
		if _, err := imagestore.Decode(cfg, mut); !errors.Is(err, imagestore.ErrCorrupt) {
			t.Fatalf("flip at byte %d of %d: err = %v, want ErrCorrupt", pos, len(blob), err)
		}
	}
}

func TestDecodeVersionMismatch(t *testing.T) {
	img, cfg := testImage(t, core.IntraO3)
	blob, err := imagestore.Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	// A future codec bumps the version halfword at offset 4; such a blob
	// must be rejected as corrupt even with every checksum intact, so
	// fix up the whole-blob CRC path by only flipping the version bytes —
	// the version check runs before the CRC check.
	mut := append([]byte(nil), blob...)
	mut[4] = byte(imagestore.CodecVersion + 1)
	if _, err := imagestore.Decode(cfg, mut); !errors.Is(err, imagestore.ErrCorrupt) {
		t.Fatalf("version-bumped blob: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeGeometryMismatch(t *testing.T) {
	img, cfg := testImage(t, core.IntraO3)
	blob, err := imagestore.Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Flash.Channels *= 2
	if _, err := imagestore.Decode(other, blob); !errors.Is(err, imagestore.ErrCorrupt) {
		t.Fatalf("mismatched-geometry decode: err = %v, want ErrCorrupt", err)
	}
}

func TestFingerprint(t *testing.T) {
	k1 := core.DefaultConfig(core.IntraO3).BuildKey()
	k2 := core.DefaultConfig(core.SIMD).BuildKey()
	fps := map[string]bool{}
	for _, k := range []core.BuildKey{k1, k2} {
		for _, bundle := range []string{"mix/1@s1024/m8", "homog/ATAX@s1024/m8"} {
			for _, stage := range []string{"populated", "offloaded"} {
				fp := imagestore.Fingerprint(k, bundle, stage)
				if fps[fp] {
					t.Fatalf("fingerprint collision at (%+v, %s, %s)", k, bundle, stage)
				}
				fps[fp] = true
				if fp != imagestore.Fingerprint(k, bundle, stage) {
					t.Fatal("fingerprint not deterministic")
				}
			}
		}
	}
}

// FuzzImageCodec hammers Decode with mutated blobs: whatever the bytes, it
// must return a valid image or ErrCorrupt — never panic, never another
// error class.
func FuzzImageCodec(f *testing.F) {
	img, cfg := testImage(f, core.IntraO3)
	blob, err := imagestore.Encode(img)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:16])
	f.Add(blob[:len(blob)/2])
	f.Add([]byte("FAIM"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := imagestore.Decode(cfg, data)
		if err != nil {
			if !errors.Is(err, imagestore.ErrCorrupt) {
				t.Fatalf("Decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		// A successful decode must be internally consistent enough to
		// re-encode; round-tripping also exercises Data() on the result.
		if _, err := imagestore.Encode(dec); err != nil {
			t.Fatalf("re-encode of successfully decoded blob failed: %v", err)
		}
	})
}
