package cluster

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// benchScale mirrors the repo-level figure benches (Table 2 inputs / 128).
const benchScale = 128

func benchBundle(b *testing.B) *workload.Bundle {
	b.Helper()
	o := workload.DefaultOptions()
	o.Scale = benchScale
	bundle, err := workload.Mix(1, o)
	if err != nil {
		b.Fatal(err)
	}
	return bundle
}

// BenchmarkNodeStartupFresh measures the classic card-startup lifecycle a
// cluster dispatch pays per card: device build (FTL format) plus input
// population.
func BenchmarkNodeStartupFresh(b *testing.B) {
	bundle := benchBundle(b)
	cfg := core.DefaultConfig(core.IntraO3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := NewNode(0, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Populate(bundle.Populate); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNodeStartupFork measures the same startup through the image
// cache: one capture, then a copy-on-write fork per card.
func BenchmarkNodeStartupFork(b *testing.B) {
	bundle := benchBundle(b)
	cfg := core.DefaultConfig(core.IntraO3)
	images := NewImageCache()
	img, err := images.Populated(context.Background(), cfg, bundle)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewNodeFromImage(0, img, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkStealDispatch measures a full work-steal cluster dispatch —
// the probe-heaviest path: 24 standalone instance probes plus 8 cards per
// iteration when cold, one memoized probe set shared by every iteration
// when cached.
func BenchmarkWorkStealDispatch(b *testing.B) {
	bundle := benchBundle(b)
	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Devices = 8
	run := func(b *testing.B, images *ImageCache) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := Run(context.Background(), cfg, bundle, Options{Policy: WorkSteal, Workers: 1, Images: images})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.ThroughputMBps(), "MB/s")
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) { run(b, NewImageCache()) })
}
