package flashctrl

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/units"
)

func newComplex(t *testing.T) *Complex {
	t.Helper()
	bb, err := flash.NewBackbone(flash.DefaultGeometry(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig(), bb)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bb, _ := flash.NewBackbone(flash.DefaultGeometry(), flash.DefaultTiming())
	if _, err := New(Config{SRIOBW: 0, TagDepth: 1}, bb); err == nil {
		t.Error("zero SRIO accepted")
	}
	if _, err := New(Config{SRIOBW: 1, TagDepth: 0}, bb); err == nil {
		t.Error("zero tag depth accepted")
	}
}

func TestReadGroupAddsControllerAndLinkCosts(t *testing.T) {
	c := newComplex(t)
	done := c.ReadGroup(0, 0)
	raw := c.BB.Tim.ReadPage + c.BB.Tim.ChannelBW.DurationFor(2*c.BB.Geo.PageSize)
	srio := c.Cfg.SRIOBW.DurationFor(c.BB.Geo.GroupSize())
	want := c.Cfg.TagService + raw + srio
	if done != want {
		t.Errorf("read done %s, want %s", units.FormatDuration(done), units.FormatDuration(want))
	}
	if c.SRIOBytes() != c.BB.Geo.GroupSize() {
		t.Errorf("SRIO bytes = %d", c.SRIOBytes())
	}
}

func TestProgramGroupOrder(t *testing.T) {
	c := newComplex(t)
	done := c.ProgramGroup(0, 0)
	srio := c.Cfg.SRIOBW.DurationFor(c.BB.Geo.GroupSize())
	xfer := c.BB.Tim.ChannelBW.DurationFor(2 * c.BB.Geo.PageSize)
	want := srio + c.Cfg.TagService + xfer + c.BB.Tim.ProgramPage
	if done != want {
		t.Errorf("program done %s, want %s", units.FormatDuration(done), units.FormatDuration(want))
	}
}

func TestEraseSuper(t *testing.T) {
	c := newComplex(t)
	done := c.EraseSuper(0, 5)
	want := c.Cfg.TagService + c.BB.Tim.EraseBlock
	if done != want {
		t.Errorf("erase done %s, want %s", units.FormatDuration(done), units.FormatDuration(want))
	}
	if c.BB.EraseCount(5) != 1 {
		t.Error("erase not recorded")
	}
}

func TestMigrateStaysOffSRIO(t *testing.T) {
	c := newComplex(t)
	c.BB.Functional = true
	c.BB.Store(3, []byte{42})
	before := c.SRIOBytes()
	c.MigrateGroup(0, 3, 11)
	if c.SRIOBytes() != before {
		t.Error("GC migration crossed the SRIO link")
	}
	if c.BB.Load(11) == nil || c.BB.Load(3) != nil {
		t.Error("migration did not move the payload")
	}
}

func TestStreamingReadsCapAtSRIO(t *testing.T) {
	// Aggregate channel bandwidth (3.2 GB/s) exceeds the SRIO link
	// (2.5 GB/s); a long stream must be SRIO-bound.
	c := newComplex(t)
	const n = 512
	var done units.Time
	for i := 0; i < n; i++ {
		done = c.ReadGroup(0, flash.PhysGroup(i))
	}
	bytes := int64(n) * c.BB.Geo.GroupSize()
	bw := float64(bytes) / units.Seconds(done)
	lo, hi := 2.0e9, 2.7e9
	if bw < lo || bw > hi {
		t.Errorf("streaming bandwidth %.0f MB/s, want ~2500 MB/s (SRIO bound)", bw/1e6)
	}
}

func TestTagBusyAccumulates(t *testing.T) {
	c := newComplex(t)
	c.ReadGroup(0, 0)
	c.ReadGroup(0, 1)
	if c.TagBusy() != 2*c.Cfg.TagService {
		t.Errorf("tag busy = %d", c.TagBusy())
	}
}
