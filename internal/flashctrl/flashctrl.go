// Package flashctrl models the FPGA-based flash controllers of the backend
// storage complex (paper §2.2): one controller per channel converting
// network-side requests into the flash clock domain through inbound and
// outbound tag queues, behind a four-lane Serial RapidIO link.
package flashctrl

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config holds the controller-complex parameters.
type Config struct {
	// SRIOBW is the aggregate FMC link bandwidth (4 lanes × 5 Gbps).
	SRIOBW units.Bandwidth
	// TagService is the per-request occupancy of a controller's tag queue
	// pair (request decode on the inbound queue, completion post on the
	// outbound queue).
	TagService units.Duration
	// TagDepth is the number of outstanding tags per controller; requests
	// beyond it queue in the controller, modelled by the serial tag
	// resource.
	TagDepth int
}

// DefaultConfig returns the prototype parameters: 4 × 5 Gbps SRIO
// (2.5 GB/s aggregate) and a ~1 µs per-request FPGA handling cost.
func DefaultConfig() Config {
	return Config{
		SRIOBW:     2500 * units.MBps,
		TagService: 1 * units.Microsecond,
		TagDepth:   16,
	}
}

// Complex wires the per-channel controllers onto a flash backbone.
type Complex struct {
	Cfg Config
	BB  *flash.Backbone

	srio *sim.Pipe
	tags []*sim.Resource // per channel-controller request handling
}

// New builds the controller complex for bb.
func New(cfg Config, bb *flash.Backbone) (*Complex, error) {
	if cfg.SRIOBW <= 0 {
		return nil, fmt.Errorf("flashctrl: non-positive SRIO bandwidth")
	}
	if cfg.TagDepth <= 0 {
		return nil, fmt.Errorf("flashctrl: non-positive tag depth")
	}
	c := &Complex{Cfg: cfg, BB: bb, srio: sim.NewPipe("srio", cfg.SRIOBW)}
	c.tags = make([]*sim.Resource, bb.Geo.Channels)
	for i := range c.tags {
		c.tags[i] = sim.NewResource(fmt.Sprintf("fctl%d-tags", i))
	}
	return c, nil
}

// tagFor picks the controller that owns a page group. Every channel holds a
// slice of the group, so the request is decoded by the controller of the
// group's first channel and fanned out in hardware; one tag reservation
// approximates the FPGA cost.
func (c *Complex) tagFor(pg flash.PhysGroup) *sim.Resource {
	return c.tags[int(pg)%len(c.tags)]
}

// ReadGroup performs a device-side page-group read: tag decode, flash read,
// then the payload crosses the SRIO link toward the processor network.
// It returns the instant the data is on the network side.
func (c *Complex) ReadGroup(at sim.Time, pg flash.PhysGroup) sim.Time {
	_, decoded := c.tagFor(pg).Reserve(at, c.Cfg.TagService)
	sensed := c.BB.ReadGroup(decoded, pg)
	_, end := c.srio.Transfer(sensed, c.BB.Geo.GroupSize())
	return end
}

// ReadGroupsSeq books n device-side reads of the consecutive page groups
// pg, pg+1, ..., the i'th requested at at+i*stride, and calls ready with
// each network-side completion time in order. Every reservation is identical
// to n individual ReadGroup calls — consecutive groups rotate controllers,
// so the tag index advances by one per group — but the whole contiguous run
// crosses the visor/controller boundary once instead of once per group.
func (c *Complex) ReadGroupsSeq(at sim.Time, stride sim.Duration, pg flash.PhysGroup, n int, ready func(i int, end sim.Time)) {
	nt := len(c.tags)
	ti := int(int64(pg) % int64(nt))
	gs := c.BB.Geo.GroupSize()
	for i := 0; i < n; i++ {
		_, decoded := c.tags[ti].Reserve(at+sim.Duration(i)*stride, c.Cfg.TagService)
		sensed := c.BB.ReadGroup(decoded, pg+flash.PhysGroup(i))
		_, end := c.srio.Transfer(sensed, gs)
		ready(i, end)
		ti++
		if ti == nt {
			ti = 0
		}
	}
}

// ProgramGroup moves a page group over SRIO and programs it. It returns
// when the program finishes on the dies.
func (c *Complex) ProgramGroup(at sim.Time, pg flash.PhysGroup) sim.Time {
	_, arrived := c.srio.Transfer(at, c.BB.Geo.GroupSize())
	_, decoded := c.tagFor(pg).Reserve(arrived, c.Cfg.TagService)
	return c.BB.ProgramGroup(decoded, pg)
}

// ProgramGroupBuffered moves a page group over SRIO into the DDR3L-backed
// write buffer and drains it at the backbone's aggregate program rate,
// without stalling foreground reads (paper §2.2's internal-cache role).
func (c *Complex) ProgramGroupBuffered(at sim.Time, pg flash.PhysGroup) sim.Time {
	_, arrived := c.srio.Transfer(at, c.BB.Geo.GroupSize())
	_, decoded := c.tagFor(pg).Reserve(arrived, c.Cfg.TagService)
	return c.BB.ProgramGroupBuffered(decoded, pg)
}

// EraseSuper forwards a super-block erase. Erases carry no payload, only a
// command tag.
func (c *Complex) EraseSuper(at sim.Time, sb flash.SuperBlock) sim.Time {
	_, decoded := c.tags[int(sb)%len(c.tags)].Reserve(at, c.Cfg.TagService)
	return c.BB.EraseSuper(decoded, sb)
}

// MigrateGroup is a device-internal copy used by Storengine's garbage
// collection: read src, program dst, without crossing SRIO (copy-back stays
// inside the storage complex). The functional payload moves with it.
func (c *Complex) MigrateGroup(at sim.Time, src, dst flash.PhysGroup) sim.Time {
	_, decoded := c.tagFor(src).Reserve(at, c.Cfg.TagService)
	read := c.BB.ReadGroup(decoded, src)
	done := c.BB.ProgramGroup(read, dst)
	c.BB.Move(src, dst)
	return done
}

// SRIOBusy returns the link occupancy (for energy accounting).
func (c *Complex) SRIOBusy() units.Duration { return c.srio.Busy() }

// SRIOBytes returns total bytes moved over the link.
func (c *Complex) SRIOBytes() int64 { return c.srio.Bytes() }

// TagBusy returns the summed controller occupancy.
func (c *Complex) TagBusy() units.Duration {
	var d units.Duration
	for _, t := range c.tags {
		d += t.Busy()
	}
	return d
}
