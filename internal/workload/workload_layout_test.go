package workload

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/flashvisor"
	"repro/internal/kdt"
)

// logicalBytes returns the logical flash capacity of the default device, the
// bound every synthesized address must respect.
func logicalBytes(t *testing.T) int64 {
	t.Helper()
	ftl, err := flashvisor.NewFTL(flash.DefaultGeometry(), flashvisor.DefaultConfig().OverProvision)
	if err != nil {
		t.Fatal(err)
	}
	return ftl.LogicalBytes()
}

// maxAddr returns the highest byte address past the end of any populate
// range or READ/WRITE op in the bundle.
func maxAddr(b *Bundle) int64 {
	var top int64
	for _, r := range b.Populate {
		if end := r.Addr + r.Bytes; end > top {
			top = end
		}
	}
	for _, app := range b.Apps {
		for _, tab := range app.Tables {
			for _, mb := range tab.Microblocks {
				for _, s := range mb.Screens {
					for _, op := range s.Ops {
						if op.Kind != kdt.OpRead && op.Kind != kdt.OpWrite {
							continue
						}
						if end := op.FlashAddr + op.Bytes; end > top {
							top = end
						}
					}
				}
			}
		}
	}
	return top
}

// TestWorkloadsFitLogicalSpaceAtPaperScale is the regression test for the
// seed bug where low-scale mixes wrote past the logical flash space
// ("fig10b: MX3/InterSt: flashvisor: write [483740,484380) beyond logical
// space" at -scale 1): every bundle the evaluation can run, at the failing
// scales 1 and 2, must address only the logical capacity the default
// geometry exposes.
func TestWorkloadsFitLogicalSpaceAtPaperScale(t *testing.T) {
	logical := logicalBytes(t)
	for _, scale := range []int64{1, 2} {
		o := DefaultOptions()
		o.Scale = scale
		for n := 1; n <= MixCount; n++ {
			b, err := Mix(n, o)
			if err != nil {
				t.Fatalf("scale %d MX%d: %v", scale, n, err)
			}
			if top := maxAddr(b); top > logical {
				t.Errorf("scale %d MX%d: top address %d exceeds logical space %d", scale, n, top, logical)
			}
		}
		for _, name := range append(Names(), BigdataNames()...) {
			b, err := Homogeneous(name, o)
			if err != nil {
				t.Fatalf("scale %d %s: %v", scale, name, err)
			}
			if top := maxAddr(b); top > logical {
				t.Errorf("scale %d %s: top address %d exceeds logical space %d", scale, name, top, logical)
			}
		}
	}
}

// TestLayoutInputsStayBelowOutputs pins the second half of the layout
// invariant: shared input regions never collide with the output region of
// any instance, even for the mix with the largest input footprint.
func TestLayoutInputsStayBelowOutputs(t *testing.T) {
	o := DefaultOptions() // scale 1 = paper scale, the worst case
	for n := 1; n <= MixCount; n++ {
		b, err := Mix(n, o)
		if err != nil {
			t.Fatal(err)
		}
		var inTop int64
		for _, r := range b.Populate {
			if end := r.Addr + r.Bytes; end > inTop {
				inTop = end
			}
		}
		if inTop > outputBase {
			t.Errorf("MX%d: inputs reach %d, past the output base %d", n, inTop, outputBase)
		}
	}
}
