package main

import (
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.system != "IntraO3" || o.workload != "ATAX" || o.scale != 16 || o.verbose {
		t.Errorf("unexpected defaults: %+v", o)
	}

	o, err = parseFlags([]string{"-system", "SIMD", "-workload", "MX3", "-scale", "64", "-v"})
	if err != nil {
		t.Fatal(err)
	}
	if o.system != "SIMD" || o.workload != "MX3" || o.scale != 64 || !o.verbose {
		t.Errorf("unexpected parse: %+v", o)
	}

	if _, err := parseFlags([]string{"-scale", "not-a-number"}); err == nil {
		t.Error("bad scale accepted")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	for _, tc := range []struct{ system, workload string }{
		{"IntraO3", "ATAX"},
		{"SIMD", "MX2"},
		{"InterDy", "bfs"},
	} {
		if err := run(tc.system, tc.workload, 512, true); err != nil {
			t.Errorf("%s/%s: %v", tc.system, tc.workload, err)
		}
	}
}

func TestRunRejects(t *testing.T) {
	if err := run("NoSuchSystem", "ATAX", 512, false); err == nil || !strings.Contains(err.Error(), "unknown system") {
		t.Errorf("unknown system: err = %v", err)
	}
	if err := run("IntraO3", "MXbogus", 512, false); err == nil {
		t.Error("bad mix name accepted")
	}
	if err := run("IntraO3", "MX99", 512, false); err == nil {
		t.Error("out-of-range mix accepted")
	}
	if err := run("IntraO3", "NOPE", 512, false); err == nil {
		t.Error("unknown workload accepted")
	}
}
