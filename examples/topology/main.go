// Topology: dispatch heterogeneous mix MX1 over the three built-in
// heterogeneous cluster shapes — a symmetric two-switch host ("sym"),
// a single switch with per-card geometry skew ("skew"), and a two-switch
// host whose second switch is both slower and populated with cost-reduced
// cards ("2sw-skew") — comparing the two dispatch policies on aggregate
// throughput and showing the per-switch utilization split, where the
// work-stealing governor's capability awareness is visible: the skewed
// subtree takes less work instead of dragging the makespan.
//
// A custom topology is a plain literal; the presets are just shorthand:
//
//	topo := flashabacus.Topology{Switches: []flashabacus.Switch{
//		{Name: "fast", Cards: []flashabacus.CardSkew{{}, {}}},
//		{Name: "lean", Cards: []flashabacus.CardSkew{{Channels: 2, LWPs: 6}}},
//	}}
//	r, err := flashabacus.RunTopology(ctx, flashabacus.IntraO3, topo, flashabacus.WorkSteal, bundle)
package main

import (
	"context"
	"fmt"
	"log"

	flashabacus "repro"
)

func main() {
	ctx := context.Background()
	fmt.Println("== MX1 on IntraO3 cards: heterogeneous topologies, 8 cards ==")
	fmt.Printf("%-10s %-12s %10s %14s  %s\n",
		"topology", "policy", "MB/s", "makespan(ms)", "per-switch util")
	for _, preset := range flashabacus.TopologyPresetNames {
		topo, err := flashabacus.TopologyPreset(preset, 8)
		if err != nil {
			log.Fatal(err)
		}
		for _, policy := range []flashabacus.Policy{flashabacus.RoundRobin, flashabacus.WorkSteal} {
			name := "round-robin"
			if policy == flashabacus.WorkSteal {
				name = "work-steal"
			}
			bundle, err := flashabacus.Mix(1, 32)
			if err != nil {
				log.Fatal(err)
			}
			r, err := flashabacus.RunTopology(ctx, flashabacus.IntraO3, topo, policy, bundle)
			if err != nil {
				log.Fatal(err)
			}
			utils := ""
			for _, su := range r.SwitchUtils {
				utils += fmt.Sprintf("%s[%d]=%.1f%% ", su.Switch, su.Cards, su.Util*100)
			}
			fmt.Printf("%-10s %-12s %10.1f %14.1f  %s\n",
				preset, name, r.ThroughputMBps(), float64(r.Makespan)/1e6, utils)
		}
	}
}
