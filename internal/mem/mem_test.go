package mem

import (
	"testing"

	"repro/internal/units"
)

func TestConfigsMatchTable1(t *testing.T) {
	d := DDR3LConfig()
	if d.Size != units.GB || d.Banks != 8 {
		t.Errorf("DDR3L config %+v does not match Table 1", d)
	}
	s := ScratchpadConfig()
	if s.Size != 4*units.MB || s.Banks != 8 {
		t.Errorf("scratchpad config %+v does not match Table 1", s)
	}
	if s.BW != 16*units.GBps {
		t.Errorf("scratchpad BW = %d, want 16GB/s", s.BW)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{Name: "x", Size: 0, BW: 1}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(Config{Name: "x", Size: 1, BW: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestAccessTiming(t *testing.T) {
	m, err := New(Config{Name: "m", Size: units.GB, BW: units.GBps, Latency: 100})
	if err != nil {
		t.Fatal(err)
	}
	end := m.Access(0, units.GB)
	if end != units.Second+100 {
		t.Errorf("access end = %d, want 1s+100ns", end)
	}
	if m.Bytes() != units.GB {
		t.Errorf("bytes = %d", m.Bytes())
	}
}

func TestAllocFreeLifecycle(t *testing.T) {
	m, _ := New(Config{Name: "m", Size: 100, BW: units.GBps})
	a, err := m.Alloc("a", 60)
	if err != nil {
		t.Fatal(err)
	}
	if a.Off != 0 || a.Size != 60 {
		t.Errorf("region a = %+v", a)
	}
	if _, err := m.Alloc("b", 50); err == nil {
		t.Error("over-allocation accepted")
	}
	b, err := m.Alloc("b", 40)
	if err != nil {
		t.Fatal(err)
	}
	if b.Off != 60 {
		t.Errorf("region b offset = %d, want 60", b.Off)
	}
	if m.Used() != 100 {
		t.Errorf("used = %d, want 100", m.Used())
	}
	m.Free("b")
	if m.Used() != 60 {
		t.Errorf("used after freeing top = %d, want 60", m.Used())
	}
	m.Free("a")
	if m.Used() != 0 {
		t.Errorf("used after freeing all = %d, want 0", m.Used())
	}
}

func TestAllocDuplicateName(t *testing.T) {
	m, _ := New(Config{Name: "m", Size: 100, BW: units.GBps})
	if _, err := m.Alloc("a", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc("a", 10); err == nil {
		t.Error("duplicate region name accepted")
	}
}

func TestAllocNonPositive(t *testing.T) {
	m, _ := New(Config{Name: "m", Size: 100, BW: units.GBps})
	if _, err := m.Alloc("z", 0); err == nil {
		t.Error("zero-size allocation accepted")
	}
}

func TestInteriorFreeKeepsTop(t *testing.T) {
	m, _ := New(Config{Name: "m", Size: 100, BW: units.GBps})
	m.Alloc("a", 30)
	m.Alloc("b", 30)
	m.Free("a") // interior: cannot reclaim
	if m.Used() != 60 {
		t.Errorf("used = %d, want 60 (interior free keeps top)", m.Used())
	}
	m.Free("missing") // no-op
}

func TestAccessesSerialize(t *testing.T) {
	m, _ := New(DDR3LConfig())
	e1 := m.Access(0, 64*units.KB)
	e2 := m.Access(0, 64*units.KB)
	if e2 <= e1 {
		t.Errorf("accesses did not serialize: %d then %d", e1, e2)
	}
	if m.Busy() == 0 {
		t.Error("busy not accumulated")
	}
}
