package cluster

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/units"
)

// Switch is one host-side PCIe switch in a cluster topology: a bandwidth-
// limited FIFO dispatch pipe of its own, fanning out to the cards behind
// it. Kernel downloads to a card cross the root host uplink first, then
// serialize through the card's switch, so a congested switch delays only
// its own subtree.
type Switch struct {
	// Name labels the switch in per-switch statistics. Empty names default
	// to "sw<i>" by position.
	Name string
	// BW is the switch's downlink bandwidth (0 selects DefaultHost().BW).
	BW units.Bandwidth
	// DispatchLatency is the per-dispatch overhead this switch adds
	// (doorbell forwarding, buffer credit turnaround).
	DispatchLatency units.Duration
	// Cards are the cards behind this switch, each expressed as a skew
	// against the cluster's base card configuration. A zero CardSkew is an
	// exact clone of the base card.
	Cards []core.CardSkew
}

// Topology is a declarative cluster shape: a two-level tree — the shared
// host uplink at the root, switches below it, cards at the leaves — where
// every card may carry its own geometry skew. The zero Topology means "no
// explicit topology": Run then builds the classic single-switch array of
// cfg.Devices identical cards, whose output is byte-identical to the
// pre-topology cluster layer.
type Topology struct {
	Switches []Switch
}

// Uniform returns the explicit form of the classic topology: one switch
// (default bandwidth and latency) with devices identical cards.
func Uniform(devices int) Topology {
	if devices < 1 {
		devices = 1
	}
	return Topology{Switches: []Switch{{Cards: make([]core.CardSkew, devices)}}}
}

// IsZero reports whether the topology is the implicit single-switch default.
func (t Topology) IsZero() bool { return len(t.Switches) == 0 }

// Cards returns the total card count across all switches.
func (t Topology) Cards() int {
	n := 0
	for _, sw := range t.Switches {
		n += len(sw.Cards)
	}
	return n
}

// String renders a compact shape summary, e.g. "sw0[2]+sw1[2]".
func (t Topology) String() string {
	if t.IsZero() {
		return "uniform"
	}
	parts := make([]string, len(t.Switches))
	for i, sw := range t.Switches {
		parts[i] = fmt.Sprintf("%s[%d]", t.switchName(i), len(sw.Cards))
	}
	return strings.Join(parts, "+")
}

func (t Topology) switchName(i int) string {
	if name := t.Switches[i].Name; name != "" {
		return name
	}
	return fmt.Sprintf("sw%d", i)
}

// Validate reports a topology error against a base card configuration, or
// nil: every switch needs a non-negative model and at least one card, the
// total card count must fit the cluster cap, and every card's derived
// configuration must itself validate.
func (t Topology) Validate(base core.Config) error {
	if t.IsZero() {
		return nil
	}
	if n := t.Cards(); n < 1 || n > core.MaxDevices {
		return fmt.Errorf("cluster: topology has %d cards, want [1,%d]", n, core.MaxDevices)
	}
	seen := map[string]bool{}
	for i, sw := range t.Switches {
		name := t.switchName(i)
		if seen[name] {
			return fmt.Errorf("cluster: duplicate switch name %q", name)
		}
		seen[name] = true
		if sw.BW < 0 {
			return fmt.Errorf("cluster: switch %s: negative bandwidth", name)
		}
		if sw.DispatchLatency < 0 {
			return fmt.Errorf("cluster: switch %s: negative dispatch latency", name)
		}
		if len(sw.Cards) == 0 {
			return fmt.Errorf("cluster: switch %s has no cards", name)
		}
		for c, skew := range sw.Cards {
			if _, err := base.Derive(skew); err != nil {
				return fmt.Errorf("cluster: switch %s card %d: %w", name, c, err)
			}
		}
	}
	return nil
}

// card is one flattened leaf of a topology: its global id, owning switch,
// derived configuration, skew class (index into the deduplicated skew
// list, shared by identically-skewed cards), and capability weight.
type card struct {
	id     int
	sw     int
	cfg    core.Config
	class  int
	weight float64
}

// flatten expands a validated topology into its card list plus the
// deduplicated skew classes (class i's derived config is classCfgs[i]).
// Cards appear in switch order then card order, so ids are deterministic.
func flatten(t Topology, base core.Config) (cards []card, classCfgs []core.Config, err error) {
	classOf := map[core.CardSkew]int{}
	var classes []core.CardSkew
	for si, sw := range t.Switches {
		for _, skew := range sw.Cards {
			cls, ok := classOf[skew]
			if !ok {
				cfg, derr := base.Derive(skew)
				if derr != nil {
					return nil, nil, derr
				}
				cls = len(classes)
				classOf[skew] = cls
				classes = append(classes, skew)
				classCfgs = append(classCfgs, cfg)
			}
			cards = append(cards, card{
				id:     len(cards),
				sw:     si,
				cfg:    classCfgs[cls],
				class:  cls,
				weight: classCfgs[cls].CapabilityWeight(),
			})
		}
	}
	return cards, classCfgs, nil
}

// Skewed card used by the built-in presets: half the flash channels, six
// of eight cores, half the scratchpad — a plausible cost-reduced sibling
// whose capability weight is well below the full card's.
var presetSkew = core.CardSkew{Channels: 2, LWPs: 6, ScratchpadBytes: 2 * units.MB}

// PresetNames lists the built-in topology presets the sweeps and the
// -topology experiment iterate, in presentation order.
var PresetNames = []string{"sym", "skew", "2sw-skew"}

// Preset builds one of the named example topologies over the given total
// card count (cards >= 2, even — the presets split card pools in half):
//
//   - "sym": two identical switches, cards/2 full cards each — a symmetric
//     multi-switch host.
//   - "skew": one switch where every second card is the cost-reduced
//     skewed card — per-card geometry skew without switch asymmetry.
//   - "2sw-skew": a full-bandwidth switch of cards/2 full cards next to a
//     half-bandwidth, double-latency switch of cards/2 skewed cards — both
//     axes of heterogeneity at once.
func Preset(name string, cards int) (Topology, error) {
	if cards < 2 || cards%2 != 0 {
		return Topology{}, fmt.Errorf("cluster: preset %q needs an even card count >= 2, got %d", name, cards)
	}
	host := DefaultHost()
	half := cards / 2
	full := make([]core.CardSkew, half)
	skewed := make([]core.CardSkew, half)
	for i := range skewed {
		skewed[i] = presetSkew
	}
	switch name {
	case "sym":
		return Topology{Switches: []Switch{
			{Name: "sw0", BW: host.BW, DispatchLatency: host.DispatchLatency, Cards: full},
			{Name: "sw1", BW: host.BW, DispatchLatency: host.DispatchLatency, Cards: append([]core.CardSkew(nil), full...)},
		}}, nil
	case "skew":
		mixed := make([]core.CardSkew, cards)
		for i := range mixed {
			if i%2 == 1 {
				mixed[i] = presetSkew
			}
		}
		return Topology{Switches: []Switch{
			{Name: "sw0", BW: host.BW, DispatchLatency: host.DispatchLatency, Cards: mixed},
		}}, nil
	case "2sw-skew":
		return Topology{Switches: []Switch{
			{Name: "sw0", BW: host.BW, DispatchLatency: host.DispatchLatency, Cards: full},
			{Name: "sw1", BW: host.BW / 2, DispatchLatency: 2 * host.DispatchLatency, Cards: skewed},
		}}, nil
	}
	return Topology{}, fmt.Errorf("cluster: unknown topology preset %q (valid: %s)", name, strings.Join(PresetNames, ", "))
}
