// Package cluster is the host-level scale-out layer: it shards one workload
// bundle across N simulated FlashAbacus cards sitting behind a shared host
// PCIe switch and aggregates the per-card measurements into one cluster
// result.
//
// The paper's closing argument is that self-governed accelerators remove the
// host storage stack so cheaply that cards can be ganged; this package
// models the layer that ganging actually needs — the dispatcher above the
// array. Two dispatch policies mirror the paper's two governor families:
//
//   - RoundRobin statically binds application i to card i mod N, the
//     cluster-level analogue of the InterSt governor. Each card runs its
//     application subset as one self-governed device simulation, so
//     intra-card scheduling, flash contention, and GC behave exactly as in
//     the single-card evaluation.
//
//   - WorkSteal dispatches kernel instances dynamically: the host keeps a
//     queue of instances and hands the next one to whichever card frees up
//     first, the analogue of InterDy's claim-next-kernel rule. Placement is
//     decided by replaying that claim loop against standalone-instance
//     runtime estimates (each instance probed as its own device run); the
//     cards then execute their claimed sets as ordinary self-governed
//     device simulations, so intra-card concurrency is preserved and only
//     the instance-to-card mapping is dynamic.
//
// Kernel downloads serialize through a shared host link (a bandwidth-limited
// FIFO pipe plus a per-dispatch latency), so a card's run starts only when
// its tables have cleared the switch. Input data is replicated to every card
// untimed, mirroring the single-device model where PopulateInput is
// preparation rather than measured work.
//
// A cluster of one is the identity: Run with cfg.Devices <= 1 takes exactly
// the single-device path (RunSingle), byte-identical to experiments.RunBundle.
package cluster

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/kdt"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// Policy selects how the host dispatcher shards work across cards.
type Policy int

const (
	// RoundRobin statically assigns application i to card i mod N.
	RoundRobin Policy = iota
	// WorkSteal hands the next queued kernel instance to the first free card.
	WorkSteal
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "rr"
	case WorkSteal:
		return "steal"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists the dispatch policies in presentation order.
var Policies = []Policy{RoundRobin, WorkSteal}

// HostConfig models the shared host-side dispatch path the cards sit
// behind: one PCIe switch uplink that kernel downloads serialize through,
// plus the host software latency paid per dispatch.
type HostConfig struct {
	// BW is the switch uplink bandwidth shared by every card.
	BW units.Bandwidth
	// DispatchLatency is the per-dispatch host overhead (doorbell, queue
	// bookkeeping) added before a download's data moves.
	DispatchLatency units.Duration
}

// DefaultHost returns a PCIe 3.0 x8-class switch uplink with a few
// microseconds of host dispatch software overhead.
func DefaultHost() HostConfig {
	return HostConfig{BW: 8 * units.GBps, DispatchLatency: 5 * units.Microsecond}
}

// Validate reports a host-model error, or nil.
func (h HostConfig) Validate() error {
	if h.BW <= 0 {
		return fmt.Errorf("cluster: non-positive host bandwidth")
	}
	if h.DispatchLatency < 0 {
		return fmt.Errorf("cluster: negative dispatch latency")
	}
	return nil
}

// Options tunes a cluster run.
type Options struct {
	// Policy selects the dispatch policy (default RoundRobin).
	Policy Policy
	// Host is the shared dispatch path; the zero value selects DefaultHost.
	Host HostConfig
	// Workers bounds how many card simulations run concurrently in wall
	// clock (0 means runtime.GOMAXPROCS(0)). Simulated time is unaffected.
	Workers int
}

// RunSingle runs one bundle on one card: the node lifecycle experiments.
// RunBundle delegates to, and the devices<=1 path of Run.
func RunSingle(ctx context.Context, cfg core.Config, b *workload.Bundle) (*stats.Result, error) {
	n, err := NewNode(0, cfg)
	if err != nil {
		return nil, err
	}
	if err := n.Populate(b.Populate); err != nil {
		return nil, fmt.Errorf("%s/%s: populate: %w", b.Name, cfg.System, err)
	}
	if err := n.Offload(b.Apps); err != nil {
		return nil, fmt.Errorf("%s/%s: offload: %w", b.Name, cfg.System, err)
	}
	res, err := n.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", b.Name, cfg.System, err)
	}
	res.Workload = b.Name
	return res, nil
}

// Run shards bundle b across cfg.Devices cards and returns the aggregated
// cluster result. cfg describes each (identical) card; cfg.Devices is the
// topology knob. Cancelling ctx abandons every in-flight card simulation
// and returns the context's error.
func Run(ctx context.Context, cfg core.Config, b *workload.Bundle, o Options) (*stats.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	devices := cfg.Devices
	if devices < 1 {
		devices = 1
	}
	if devices == 1 {
		return RunSingle(ctx, cfg, b)
	}
	if o.Host == (HostConfig{}) {
		o.Host = DefaultHost()
	}
	if err := o.Host.Validate(); err != nil {
		return nil, err
	}
	if len(b.Apps) == 0 {
		return nil, fmt.Errorf("cluster: %s has no applications", b.Name)
	}
	var parts []stats.Part
	var err error
	switch o.Policy {
	case RoundRobin:
		parts, err = runRoundRobin(ctx, cfg, b, devices, o)
	case WorkSteal:
		parts, err = runWorkSteal(ctx, cfg, b, devices, o)
	default:
		return nil, fmt.Errorf("cluster: unknown policy %d", int(o.Policy))
	}
	if err != nil {
		return nil, err
	}
	return stats.Aggregate(cfg.System.String(), b.Name, devices, parts), nil
}

// offloadBytes is the wire size of an application set's kernel description
// tables — what the shared host link carries per dispatch. Encoding errors
// surface later, when the card's own offload encodes the same tables.
func offloadBytes(apps []workload.App) int64 {
	var n int64
	for _, app := range apps {
		for _, t := range app.Tables {
			if blob, err := t.Encode(); err == nil {
				n += int64(len(blob))
			}
		}
	}
	return n
}

// runRoundRobin implements the static policy: application i goes to card
// i mod devices, every card runs its subset as one device simulation, and
// each card's run begins when its downloads clear the shared host link.
func runRoundRobin(ctx context.Context, cfg core.Config, b *workload.Bundle, devices int, o Options) ([]stats.Part, error) {
	shards := make([][]workload.App, devices)
	for i, app := range b.Apps {
		shards[i%devices] = append(shards[i%devices], app)
	}

	// Downloads stream card by card through the shared link, so card c's
	// simulated run starts at its last table's arrival.
	link := sim.NewPipe("host-switch", o.Host.BW)
	link.Latency = o.Host.DispatchLatency
	offsets := make([]units.Duration, devices)
	for c := range shards {
		if len(shards[c]) == 0 {
			continue
		}
		_, end := link.Transfer(0, offloadBytes(shards[c]))
		offsets[c] = end
	}

	results, err := runner.Collect(ctx, runner.New(o.Workers), devices,
		func(ctx context.Context, c int) (*stats.Result, error) {
			if len(shards[c]) == 0 {
				return nil, nil // more cards than applications: card stays idle
			}
			res, err := runShard(ctx, c, cfg, b, shards[c])
			if err != nil {
				return nil, fmt.Errorf("%s/%s: card %d: %w", b.Name, cfg.System, c, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	var parts []stats.Part
	for c, res := range results {
		if res != nil {
			parts = append(parts, stats.Part{Res: res, Offset: offsets[c]})
		}
	}
	return parts, nil
}

// runWorkSteal implements the dynamic policy in two phases.
//
// Probe: every kernel instance runs standalone as its own device simulation
// (concurrently in wall clock), yielding the runtime estimate the host's
// dispatcher schedules by — the stand-in for the completion notifications
// InterDy reacts to inside a card.
//
// Claim loop: in simulated time, the card with the earliest estimated free
// instant claims the next queued instance, paying the shared-link download
// before its estimated run. The loop fixes only the instance-to-card
// mapping and each card's first-dispatch time; the cards then execute
// their claimed sets as ordinary self-governed device simulations, so a
// card's internal governor still overlaps its instances. Both phases are
// deterministic regardless of wall-clock worker count.
func runWorkSteal(ctx context.Context, cfg core.Config, b *workload.Bundle, devices int, o Options) ([]stats.Part, error) {
	var instances []workload.App
	for _, app := range b.Apps {
		for k, t := range app.Tables {
			instances = append(instances, workload.App{
				Name:   fmt.Sprintf("%s#%d", app.Name, k),
				Tables: []*kdt.Table{t},
			})
		}
	}

	probes, err := runner.Collect(ctx, runner.New(o.Workers), len(instances),
		func(ctx context.Context, i int) (*stats.Result, error) {
			res, err := runShard(ctx, i, cfg, b, instances[i:i+1])
			if err != nil {
				return nil, fmt.Errorf("%s/%s: probe %s: %w", b.Name, cfg.System, instances[i].Name, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}

	link := sim.NewPipe("host-switch", o.Host.BW)
	link.Latency = o.Host.DispatchLatency
	free := make([]units.Duration, devices)
	claims := make([][]workload.App, devices)
	starts := make([]units.Duration, devices)
	for i, inst := range instances {
		card := 0
		for c := 1; c < devices; c++ {
			if free[c] < free[card] {
				card = c
			}
		}
		// The claim order visits non-decreasing free instants, so the
		// shared link sees FIFO request times as its model requires.
		_, arrive := link.Transfer(free[card], offloadBytes(instances[i:i+1]))
		if len(claims[card]) == 0 {
			starts[card] = arrive
		}
		claims[card] = append(claims[card], inst)
		free[card] = arrive + probes[i].Makespan
	}

	results, err := runner.Collect(ctx, runner.New(o.Workers), devices,
		func(ctx context.Context, c int) (*stats.Result, error) {
			if len(claims[c]) == 0 {
				return nil, nil // more cards than instances: card stays idle
			}
			res, err := runShard(ctx, c, cfg, b, claims[c])
			if err != nil {
				return nil, fmt.Errorf("%s/%s: card %d: %w", b.Name, cfg.System, c, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	var parts []stats.Part
	for c, res := range results {
		if res != nil {
			// A card starts when its first claim lands; later claims'
			// microsecond-scale downloads overlap its execution.
			parts = append(parts, stats.Part{Res: res, Offset: starts[c]})
		}
	}
	return parts, nil
}

// runShard walks one card through the node lifecycle for a subset of the
// bundle's applications. The full input set is replicated to each card.
func runShard(ctx context.Context, id int, cfg core.Config, b *workload.Bundle, apps []workload.App) (*stats.Result, error) {
	n, err := NewNode(id, cfg)
	if err != nil {
		return nil, err
	}
	if err := n.Populate(b.Populate); err != nil {
		return nil, fmt.Errorf("populate: %w", err)
	}
	if err := n.Offload(apps); err != nil {
		return nil, fmt.Errorf("offload: %w", err)
	}
	return n.Run(ctx)
}
