// Admission control: a bounded, per-client-fair job queue.
//
// The daemon multiplexes many clients over a fixed worker pool, so the
// queue is where the paper's self-governing pitch meets the front door:
// depth is bounded (excess submissions are shed with 429 instead of
// growing an unbounded backlog), and dispatch is round-robin across
// clients rather than FIFO across arrivals — a client that dumps fifty
// jobs cannot starve a client that submitted one.
package service

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by submit when the queue is at capacity; the
// HTTP layer maps it to 429 Too Many Requests with a Retry-After hint.
var ErrQueueFull = errors.New("service: job queue full")

// errClosed is returned by submit after the scheduler shut down; the
// HTTP layer maps it to 503.
var errClosed = errors.New("service: server shutting down")

// scheduler is the fair bounded queue between the HTTP handlers and the
// worker pool. Jobs are held per client in FIFO order; pop serves the
// clients of the ring round-robin, one job per visit, so every client's
// head-of-line job is dispatched within one lap regardless of how deep
// any sibling's backlog is.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	limit  int
	queues map[string][]*job
	ring   []string // clients with non-empty queues, round-robin order
	next   int      // ring cursor: index of the client pop serves next
	queued int
	closed bool
}

func newScheduler(limit int) *scheduler {
	s := &scheduler{limit: limit, queues: map[string][]*job{}}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// depth reports how many jobs are queued (admitted, not yet dispatched).
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// submit admits j, or rejects it with ErrQueueFull / errClosed. The
// bound is on total queued jobs across all clients: per-client quotas
// would let idle clients strand capacity, while a shared bound plus
// round-robin dispatch keeps both admission and service fair.
func (s *scheduler) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if s.queued >= s.limit {
		return ErrQueueFull
	}
	if _, ok := s.queues[j.client]; !ok {
		s.ring = append(s.ring, j.client)
	}
	s.queues[j.client] = append(s.queues[j.client], j)
	s.queued++
	s.cond.Signal()
	return nil
}

// force enqueues a journal-recovered job, bypassing the depth bound:
// these jobs were admitted by the previous process, and recovery must
// never shed work the service already promised — even when more jobs
// were in flight at crash time than the restarted queue would admit.
func (s *scheduler) force(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.queues[j.client]; !ok {
		s.ring = append(s.ring, j.client)
	}
	s.queues[j.client] = append(s.queues[j.client], j)
	s.queued++
	s.cond.Signal()
}

// pop blocks until a job is available and returns the head job of the
// client at the ring cursor, advancing the cursor one client per pop —
// one lap of the ring serves every waiting client exactly once. Returns
// nil once the scheduler is closed.
func (s *scheduler) pop() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.queued == 0 {
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
	client := s.ring[s.next]
	q := s.queues[client]
	j := q[0]
	s.queues[client] = q[1:]
	s.queued--
	if len(s.queues[client]) == 0 {
		delete(s.queues, client)
		// Removing the cursor's own slot shifts the following clients
		// left into it, so the cursor already points at the next client.
		s.ring = append(s.ring[:s.next], s.ring[s.next+1:]...)
	} else {
		s.next++
	}
	if s.next >= len(s.ring) {
		s.next = 0
	}
	return j
}

// remove extracts a still-queued job (for eager cancellation) without
// advancing the round-robin cursor — a cancellation must not cost any
// client its turn. It reports whether the job was found; false means
// the job was already dispatched and the caller must cancel it in
// flight instead.
func (s *scheduler) remove(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[j.client]
	for i := range q {
		if q[i] != j {
			continue
		}
		s.queues[j.client] = append(q[:i], q[i+1:]...)
		s.queued--
		if len(s.queues[j.client]) == 0 {
			delete(s.queues, j.client)
			for ri, c := range s.ring {
				if c == j.client {
					s.ring = append(s.ring[:ri], s.ring[ri+1:]...)
					if ri < s.next {
						s.next--
					}
					break
				}
			}
			if s.next >= len(s.ring) {
				s.next = 0
			}
		}
		return true
	}
	return false
}

// close stops admission and wakes every blocked pop; it returns the
// jobs still queued so the server can finalize them as cancelled.
func (s *scheduler) close() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var leftover []*job
	for _, c := range s.ring {
		leftover = append(leftover, s.queues[c]...)
	}
	s.queues = map[string][]*job{}
	s.ring = nil
	s.queued = 0
	s.cond.Broadcast()
	return leftover
}
