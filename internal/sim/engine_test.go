package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	var e Engine
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var trace []string
	e.Schedule(10, func() {
		trace = append(trace, "a")
		e.After(5, func() { trace = append(trace, "c") })
		e.Schedule(12, func() { trace = append(trace, "b") })
	})
	e.Run()
	if len(trace) != 3 || trace[0] != "a" || trace[1] != "b" || trace[2] != "c" {
		t.Fatalf("trace = %v, want [a b c]", trace)
	}
	if e.Now() != 15 {
		t.Errorf("final time %d, want 15", e.Now())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(50, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(20, func() { ran++ })
	e.Schedule(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran %d events by t=20, want 2", ran)
	}
	if e.Now() != 20 {
		t.Errorf("now = %d, want 20", e.Now())
	}
	e.Run()
	if ran != 3 {
		t.Errorf("ran %d total, want 3", ran)
	}
}

func TestEngineRandomOrderIsDeterministic(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		var got []Time
		for i := 0; i < 500; i++ {
			at := Time(rng.Intn(1000))
			e.Schedule(at, func() { got = append(got, e.Now()) })
		}
		e.Run()
		return got
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical seeds produced different schedules")
		}
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
		t.Fatal("events out of time order")
	}
}

func TestResourceFIFO(t *testing.T) {
	r := NewResource("lwp0")
	s1, e1 := r.Reserve(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first reservation [%d,%d), want [0,100)", s1, e1)
	}
	// Requested while busy: queues behind.
	s2, e2 := r.Reserve(50, 100)
	if s2 != 100 || e2 != 200 {
		t.Fatalf("second reservation [%d,%d), want [100,200)", s2, e2)
	}
	// Requested after idle gap: starts at request time.
	s3, e3 := r.Reserve(500, 10)
	if s3 != 500 || e3 != 510 {
		t.Fatalf("third reservation [%d,%d), want [500,510)", s3, e3)
	}
	if r.Busy() != 210 {
		t.Errorf("busy = %d, want 210", r.Busy())
	}
	if r.Reservations() != 3 {
		t.Errorf("reservations = %d, want 3", r.Reservations())
	}
}

func TestResourceZeroDuration(t *testing.T) {
	r := NewResource("x")
	r.Reserve(0, 100)
	s, e := r.Reserve(10, 0)
	if s != 100 || e != 100 {
		t.Errorf("zero reservation = [%d,%d), want [100,100)", s, e)
	}
	if r.Busy() != 100 {
		t.Errorf("zero reservation changed busy time")
	}
}

func TestResourceReserveAtOrAfter(t *testing.T) {
	r := NewResource("x")
	s, e := r.ReserveAtOrAfter(10, 50, 5)
	if s != 50 || e != 55 {
		t.Errorf("got [%d,%d), want [50,55)", s, e)
	}
}

func TestResourceIntervalsNeverOverlap(t *testing.T) {
	f := func(durs []uint8) bool {
		r := NewResource("p")
		r.EnableLog(0)
		at := Time(0)
		for _, d := range durs {
			r.Reserve(at, Duration(d))
			at += Time(d) / 2 // request faster than service to force queueing
		}
		log := r.Log()
		for i := 1; i < len(log); i++ {
			if log[i].Start < log[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceBusyEqualsSumOfIntervals(t *testing.T) {
	f := func(durs []uint8) bool {
		r := NewResource("p")
		r.EnableLog(0)
		for i, d := range durs {
			r.Reserve(Time(i*3), Duration(d))
		}
		var sum Duration
		for _, iv := range r.Log() {
			sum += iv.End - iv.Start
		}
		return sum == r.Busy()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPipeTransferTime(t *testing.T) {
	p := NewPipe("pcie", units.GBps)
	s, e := p.Transfer(0, units.GB)
	if s != 0 || e != units.Second {
		t.Fatalf("1GB at 1GB/s = [%d,%d), want [0,1s)", s, e)
	}
	if p.Bytes() != units.GB {
		t.Errorf("bytes = %d", p.Bytes())
	}
}

func TestPipeSerializes(t *testing.T) {
	p := NewPipe("ch", 800*units.MBps)
	_, e1 := p.Transfer(0, 8*units.KB)
	s2, _ := p.Transfer(0, 8*units.KB)
	if s2 != e1 {
		t.Errorf("second transfer starts at %d, want %d", s2, e1)
	}
}

func TestPipeLatency(t *testing.T) {
	p := NewPipe("srio", units.GBps)
	p.Latency = 100
	s, _ := p.Transfer(0, 1024)
	if s != 100 {
		t.Errorf("transfer started at %d, want 100 (after latency)", s)
	}
}

func TestPipeZeroBytes(t *testing.T) {
	p := NewPipe("x", units.GBps)
	s, e := p.Transfer(42, 0)
	if s != 42 || e != 42 {
		t.Errorf("zero transfer = [%d,%d), want [42,42)", s, e)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Reserve(0, 10)
	r.Reset()
	if r.Busy() != 0 || r.FreeAt() != 0 {
		t.Error("reset did not clear resource")
	}
	p := NewPipe("y", units.GBps)
	p.Transfer(0, 100)
	p.Reset()
	if p.Bytes() != 0 || p.Busy() != 0 {
		t.Error("reset did not clear pipe")
	}
}
