package flash

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestDefaultGeometryMatchesPaper(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.GroupSize(); got != 64*units.KB {
		t.Errorf("group size = %d, want 64KB (4 channels * 2 planes * 8KB)", got)
	}
	if got := g.Capacity(); got != 32*units.GB {
		t.Errorf("capacity = %s, want 32GB", units.FormatBytes(got))
	}
	if got := g.TotalGroups(); got != 512*1024 {
		t.Errorf("total groups = %d, want 512Ki", got)
	}
	if got := g.DieRows(); got != 8 {
		t.Errorf("die rows = %d, want 8", got)
	}
	// Paper: 2MB of scratchpad suffices for the 32GB mapping table at 4B
	// per entry.
	if bytes := g.TotalGroups() * 4; bytes != 2*units.MB {
		t.Errorf("mapping table = %s, want 2MB", units.FormatBytes(bytes))
	}
}

func TestGeometryValidate(t *testing.T) {
	g := DefaultGeometry()
	g.Channels = 0
	if g.Validate() == nil {
		t.Error("zero channels accepted")
	}
	g = DefaultGeometry()
	g.MetaPages = g.PagesPerBlock
	if g.Validate() == nil {
		t.Error("meta pages == pages per block accepted")
	}
}

func TestComposeDecomposeRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw uint32) bool {
		pg := PhysGroup(int64(raw) % g.TotalGroups())
		return g.Compose(g.Decompose(pg)) == pg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsecutiveGroupsRotateDieRows(t *testing.T) {
	g := DefaultGeometry()
	for i := 0; i < 16; i++ {
		a := g.Decompose(PhysGroup(i))
		if a.DieRow != i%g.DieRows() {
			t.Errorf("group %d die row = %d, want %d", i, a.DieRow, i%g.DieRows())
		}
	}
}

func TestSuperBlockOfGroupsOfConsistent(t *testing.T) {
	g := DefaultGeometry()
	for _, sb := range []SuperBlock{0, 1, 7, 100, SuperBlock(g.SuperBlocks() - 1)} {
		groups := g.GroupsOf(sb)
		if len(groups) != g.PagesPerBlock {
			t.Fatalf("super block %d has %d groups, want %d", sb, len(groups), g.PagesPerBlock)
		}
		for _, pg := range groups {
			if got := g.SuperBlockOf(pg); got != sb {
				t.Fatalf("group %d maps to super block %d, want %d", pg, got, sb)
			}
		}
	}
}

func TestDecomposeBeyondCapacityPanics(t *testing.T) {
	g := DefaultGeometry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Decompose(PhysGroup(g.TotalGroups()))
}

func newTestBackbone(t *testing.T) *Backbone {
	t.Helper()
	b, err := NewBackbone(DefaultGeometry(), DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestReadGroupTiming(t *testing.T) {
	b := newTestBackbone(t)
	done := b.ReadGroup(0, 0)
	// One group read: 81us sensing + 16KB over one 800MB/s channel (~20us).
	xfer := b.Tim.ChannelBW.DurationFor(2 * b.Geo.PageSize)
	want := 81*units.Microsecond + xfer
	if done != want {
		t.Errorf("read done at %s, want %s", units.FormatDuration(done), units.FormatDuration(want))
	}
}

func TestReadsOnDifferentDieRowsOverlap(t *testing.T) {
	b := newTestBackbone(t)
	// Groups 0 and 1 are on different die rows: sensing overlaps, only the
	// channel bus serializes the transfers.
	d0 := b.ReadGroup(0, 0)
	d1 := b.ReadGroup(0, 1)
	xfer := b.Tim.ChannelBW.DurationFor(2 * b.Geo.PageSize)
	if d1 >= d0+b.Tim.ReadPage {
		t.Errorf("different-die reads serialized: %s then %s", units.FormatDuration(d0), units.FormatDuration(d1))
	}
	if d1 != d0+xfer {
		t.Errorf("second read done %s, want %s (bus-serialized)", units.FormatDuration(d1), units.FormatDuration(d0+xfer))
	}
}

func TestReadsOnSameDieRowSerializeSensing(t *testing.T) {
	b := newTestBackbone(t)
	g := b.Geo
	pg0 := PhysGroup(0)
	pg1 := PhysGroup(int64(g.DieRows())) // same die row, next page
	d0 := b.ReadGroup(0, pg0)
	d1 := b.ReadGroup(0, pg1)
	if d1 < d0+b.Tim.ReadPage {
		t.Errorf("same-die reads overlapped sensing: %d then %d", d0, d1)
	}
}

func TestProgramGroupTiming(t *testing.T) {
	b := newTestBackbone(t)
	done := b.ProgramGroup(0, 0)
	xfer := b.Tim.ChannelBW.DurationFor(2 * b.Geo.PageSize)
	want := xfer + b.Tim.ProgramPage
	if done != want {
		t.Errorf("program done at %s, want %s", units.FormatDuration(done), units.FormatDuration(want))
	}
	if b.Programs() != 1 {
		t.Errorf("programs = %d", b.Programs())
	}
}

func TestEraseSuperCountsAndClears(t *testing.T) {
	b := newTestBackbone(t)
	b.Functional = true
	groups := b.Geo.GroupsOf(3)
	b.Store(groups[5], []byte("payload"))
	done := b.EraseSuper(0, 3)
	if done != b.Tim.EraseBlock {
		t.Errorf("erase done at %s, want %s", units.FormatDuration(done), units.FormatDuration(b.Tim.EraseBlock))
	}
	if b.EraseCount(3) != 1 {
		t.Errorf("erase count = %d", b.EraseCount(3))
	}
	if b.Load(groups[5]) != nil {
		t.Error("erase did not clear functional payloads")
	}
	if b.TotalErases() != 1 {
		t.Errorf("total erases = %d", b.TotalErases())
	}
}

func TestFunctionalStoreLoadMove(t *testing.T) {
	b := newTestBackbone(t)
	b.Functional = true
	data := []byte{1, 2, 3, 4}
	b.Store(7, data)
	data[0] = 99 // caller mutation must not leak in
	got := b.Load(7)
	if len(got) != 4 || got[0] != 1 {
		t.Errorf("Load = %v, want copy of original", got)
	}
	b.Move(7, 8)
	if b.Load(7) != nil || b.Load(8) == nil {
		t.Error("Move did not relocate payload")
	}
}

func TestTimingOnlyStoreIsNoop(t *testing.T) {
	b := newTestBackbone(t)
	b.Store(7, []byte{1})
	if b.Load(7) != nil {
		t.Error("timing-only backbone stored a payload")
	}
}

func TestStoreOversizedPanics(t *testing.T) {
	b := newTestBackbone(t)
	b.Functional = true
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Store(0, make([]byte, b.Geo.GroupSize()+1))
}

func TestStreamingReadBandwidth(t *testing.T) {
	// Sequential groups across die rows should approach the channel-bus
	// aggregate (4 × 800 MB/s), not the single-die sensing rate.
	b := newTestBackbone(t)
	const n = 256
	var done units.Time
	for i := 0; i < n; i++ {
		done = b.ReadGroup(0, PhysGroup(i))
	}
	bytes := int64(n) * b.Geo.GroupSize()
	bw := float64(bytes) / units.Seconds(done)
	if bw < 2.0e9 {
		t.Errorf("streaming read bandwidth %.0f MB/s, want >2000 MB/s", bw/1e6)
	}
}

func TestBusyUntilTracksLatestWork(t *testing.T) {
	b := newTestBackbone(t)
	done := b.ProgramGroup(0, 0)
	if b.BusyUntil() != done {
		t.Errorf("BusyUntil = %d, want %d", b.BusyUntil(), done)
	}
}

func TestChannelAndDieBusyAccumulate(t *testing.T) {
	b := newTestBackbone(t)
	b.ReadGroup(0, 0)
	if b.ChannelBusy() == 0 || b.DieBusy() == 0 {
		t.Error("busy counters did not accumulate")
	}
	if b.Reads() != 1 {
		t.Errorf("reads = %d", b.Reads())
	}
}
