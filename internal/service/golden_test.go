// Black-box golden equivalence: the daemon's job results must be
// byte-identical to the abacus-repro CLI's committed golden files. The
// goldens live in cmd/abacus-repro/testdata and are read here rather
// than duplicated, so there is exactly one source of truth for the
// reproduction's bytes.
package service_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/service"
)

// goldenPath locates a committed CLI golden file.
func goldenPath(name string) string {
	return filepath.Join("..", "..", "cmd", "abacus-repro", "testdata", name)
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("golden %s: %v (regenerate with go test ./cmd/abacus-repro -update)", name, err)
	}
	return b
}

func newServer(t *testing.T, cfg service.Config) *service.Client {
	t.Helper()
	s := service.New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Close()
		hs.Close()
	})
	return &service.Client{BaseURL: hs.URL, HTTPClient: hs.Client(), Name: "golden"}
}

// firstDiff locates the first differing byte for a readable failure.
func firstDiff(a, b []byte) (line, col int) {
	line, col = 1, 1
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return line, col
		}
		if a[i] == '\n' {
			line, col = line+1, 1
		} else {
			col++
		}
	}
	return line, col
}

func expectBytes(t *testing.T, name string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	line, col := firstDiff(got, want)
	t.Errorf("%s: %d bytes, want %d; first difference at line %d col %d", name, len(got), len(want), line, col)
}

// TestGoldenEquivalencePerExperiment submits every experiment of the
// default full run as its own job and checks the concatenated results
// against the CLI's all_scale256 golden — the daemon invariant that one
// experiment's bytes are the same whether it renders alone or inside
// "all". The jobs share one pooled suite, so the single-flight cell
// cache keeps the cost near one full render.
func TestGoldenEquivalencePerExperiment(t *testing.T) {
	c := newServer(t, service.Config{Workers: 1, SimWorkers: runtime.GOMAXPROCS(0), QueueDepth: 64})
	ctx := context.Background()

	sel, err := experiments.Select("all", 1, false, false)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	for _, e := range sel {
		st, err := c.Submit(ctx, service.JobRequest{Experiment: e.ID, Scale: 256})
		if err != nil {
			t.Fatalf("submit %s: %v", e.ID, err)
		}
		out, err := c.Result(ctx, st.ID)
		if err != nil {
			t.Fatalf("result %s: %v", e.ID, err)
		}
		got.Write(out)
	}
	expectBytes(t, "per-experiment concat vs all_scale256.golden",
		got.Bytes(), readGolden(t, "all_scale256.golden"))
}

// TestGoldenEquivalenceAll submits full-run jobs and checks them
// against both committed CLI goldens, polling one and streaming the
// other — result and stream endpoints must carry identical bytes.
func TestGoldenEquivalenceAll(t *testing.T) {
	c := newServer(t, service.Config{Workers: 2, SimWorkers: runtime.GOMAXPROCS(0), QueueDepth: 64})
	ctx := context.Background()

	st, err := c.Submit(ctx, service.JobRequest{Scale: 256})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	expectBytes(t, "all scale 256", out, readGolden(t, "all_scale256.golden"))

	// The same job streamed must carry the same bytes the poll returned.
	var streamed bytes.Buffer
	state, err := c.Stream(ctx, st.ID, &streamed)
	if err != nil {
		t.Fatal(err)
	}
	if state != service.StateDone {
		t.Fatalf("streamed job state %s, want done", state)
	}
	expectBytes(t, "stream vs result", streamed.Bytes(), out)

	st8, err := c.Submit(ctx, service.JobRequest{Scale: 256, Devices: 8})
	if err != nil {
		t.Fatal(err)
	}
	out8, err := c.Result(ctx, st8.ID)
	if err != nil {
		t.Fatal(err)
	}
	expectBytes(t, "all scale 256 devices 8", out8, readGolden(t, "all_scale256_devices8.golden"))
}

// TestGoldenEquivalenceFaults pins the fault-injection study: the
// cardloss preset served by the daemon must reproduce the CLI golden
// generated from the committed plan file (the preset and the file are
// the same plan, and the CLI labels file plans by basename).
func TestGoldenEquivalenceFaults(t *testing.T) {
	c := newServer(t, service.Config{Workers: 1, SimWorkers: runtime.GOMAXPROCS(0)})
	ctx := context.Background()

	st, err := c.Submit(ctx, service.JobRequest{
		Experiment: "faults", Scale: 64, Devices: 4, FaultPlan: "cardloss",
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	expectBytes(t, "faults scale 64", out, readGolden(t, "fault_scale64.golden"))
}
