package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/kdt"
)

// TestSynthesizedReadsStayInsideInput: every READ op of every synthesized
// kernel must fall inside the populated input region — a violated bound
// would fault as an unmapped-group read at run time.
func TestSynthesizedReadsStayInsideInput(t *testing.T) {
	for _, scale := range []int64{1, 4, 16, 64, 256} {
		o := DefaultOptions()
		o.Scale = scale
		for _, name := range append(Names(), BigdataNames()...) {
			b, err := Homogeneous(name, o)
			if err != nil {
				t.Fatalf("%s@%d: %v", name, scale, err)
			}
			in := b.Populate[0]
			for _, app := range b.Apps {
				for _, tab := range app.Tables {
					for _, mb := range tab.Microblocks {
						for _, scr := range mb.Screens {
							for _, op := range scr.Ops {
								if op.Kind != kdt.OpRead {
									continue
								}
								if op.FlashAddr < in.Addr || op.FlashAddr+op.Bytes > in.Addr+in.Bytes {
									t.Fatalf("%s@%d: read [%d,%d) outside input [%d,%d)",
										name, scale, op.FlashAddr, op.FlashAddr+op.Bytes,
										in.Addr, in.Addr+in.Bytes)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestSerialShareIsMinority: serial microblocks must carry a minority of
// each kernel's instructions whenever parallel stages exist (DESIGN.md's
// 15% modelling choice).
func TestSerialShareIsMinority(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 16
	for _, name := range Names() {
		s, _ := Lookup(name)
		if s.SerialMB == 0 || s.SerialMB >= s.MBlocks {
			continue
		}
		b, _ := Homogeneous(name, o)
		tab := b.Apps[0].Tables[0]
		var serial, total int64
		for _, mb := range tab.Microblocks {
			for _, scr := range mb.Screens {
				for _, op := range scr.Ops {
					if op.Kind == kdt.OpCompute {
						total += op.Instr
						if mb.Serial() {
							serial += op.Instr
						}
					}
				}
			}
		}
		frac := float64(serial) / float64(total)
		if frac < 0.05 || frac > 0.30 {
			t.Errorf("%s: serial instruction share %.2f outside [0.05,0.30]", name, frac)
		}
	}
}

// TestBundleBytesMatchOps: the bundle's advertised byte count must equal
// the sum of its READ ops (it is the throughput numerator).
func TestBundleBytesMatchOps(t *testing.T) {
	f := func(mixRaw uint8, scaleRaw uint8) bool {
		n := int(mixRaw)%MixCount + 1
		o := DefaultOptions()
		o.Scale = int64(scaleRaw)%64 + 1
		b, err := Mix(n, o)
		if err != nil {
			return false
		}
		var sum int64
		for _, app := range b.Apps {
			for _, tab := range app.Tables {
				sum += bundleReadBytes(tab)
			}
		}
		return sum == b.Bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestInstancesShareInputRange: all instances of one application read the
// same populated region (the shared-dataset model that exercises shared
// read locks).
func TestInstancesShareInputRange(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 32
	b, _ := Homogeneous("MVT", o)
	var first *kdt.Op
	for _, app := range b.Apps {
		for _, tab := range app.Tables {
			op := &tab.Microblocks[0].Screens[0].Ops[0]
			if first == nil {
				first = op
			} else if op.FlashAddr != first.FlashAddr {
				t.Fatal("instances do not share the input region")
			}
		}
	}
}
