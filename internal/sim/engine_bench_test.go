package sim

import "testing"

// BenchmarkEngineScheduleStep measures the engine's steady-state event
// cost: a self-rescheduling event chain, the shape device completions take.
// The concrete-typed heap keeps this at zero allocations per event.
func BenchmarkEngineScheduleStep(b *testing.B) {
	var e Engine
	b.ReportAllocs()
	var tick func()
	tick = func() { e.After(100, tick) }
	e.After(0, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineScheduleStepDeep measures push/pop against a deep queue
// (4096 pending events) so the sift cost at realistic fan-out shows up.
func BenchmarkEngineScheduleStepDeep(b *testing.B) {
	var e Engine
	b.ReportAllocs()
	fn := func() {}
	for i := 0; i < 4096; i++ {
		e.Schedule(Time(i*37%4096)+1_000_000_000, fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Time(i%1024), fn)
		e.Step()
	}
}

// BenchmarkResourceReserveN measures the batched reservation against its
// per-group equivalent.
func BenchmarkResourceReserveN(b *testing.B) {
	b.Run("loop-64", func(b *testing.B) {
		r := NewResource("x")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for g := 0; g < 64; g++ {
				r.Reserve(Time(i), 600)
			}
		}
	})
	b.Run("batched-64", func(b *testing.B) {
		r := NewResource("x")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.ReserveN(Time(i), 600, 64)
		}
	})
}
