// Command bench2json converts `go test -bench` text output into the
// BENCH_suite.json perf-trajectory artifact and (non-gating) compares it
// against a previous artifact.
//
// The JSON carries, per benchmark, the metrics benchstat reports — ns/op,
// B/op, allocs/op, and any custom -ReportMetric columns — plus the raw
// result line and the goos/goarch/cpu header, so the original
// benchstat-consumable text can be reconstructed from the artifact alone.
//
// Usage:
//
//	go test -run '^$' -bench ... ./... | bench2json -o BENCH_suite.json [-baseline BENCH_suite.json]
//
// The compare step prints per-benchmark deltas and always exits 0 on valid
// input: the artifact tracks the trajectory, CI does not gate on it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Raw         string             `json:"raw"`
}

// Artifact is the whole BENCH_suite.json document.
type Artifact struct {
	Header     []string    `json:"header"` // goos/goarch/pkg/cpu lines, in input order
	Benchmarks []Benchmark `json:"benchmarks"`
}

// resultLine matches a benchmark result: name, iteration count, then
// value/unit metric pairs.
var resultLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// headerLine matches the context lines benchstat keys environments on.
var headerLine = regexp.MustCompile(`^(goos|goarch|pkg|cpu):`)

// parse reads `go test -bench` output into an artifact. Benchmark names
// drop the trailing -GOMAXPROCS suffix so artifacts compare across
// machines with different core counts.
func parse(r io.Reader) (*Artifact, error) {
	a := &Artifact{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		if headerLine.MatchString(line) {
			a.Header = append(a.Header, line)
			continue
		}
		m := resultLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: trimProcs(m[1]), Iterations: iters, Raw: line}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		a.Benchmarks = append(a.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// trimProcs removes the -N GOMAXPROCS suffix go test appends to names.
var procsSuffix = regexp.MustCompile(`-\d+$`)

func trimProcs(name string) string { return procsSuffix.ReplaceAllString(name, "") }

// compare prints per-benchmark ns/op and allocs/op deltas of cur against
// base. It reports, never gates.
func compare(w io.Writer, base, cur *Artifact) {
	prev := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		prev[b.Name] = b
	}
	fmt.Fprintf(w, "%-55s %14s %14s %8s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs Δ")
	for _, b := range cur.Benchmarks {
		p, ok := prev[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-55s %14s %14.0f %8s %12s\n", b.Name, "-", b.NsPerOp, "new", "-")
			continue
		}
		fmt.Fprintf(w, "%-55s %14.0f %14.0f %7.1f%% %12s\n",
			b.Name, p.NsPerOp, b.NsPerOp, pct(p.NsPerOp, b.NsPerOp), allocsDelta(p, b))
	}
	for _, p := range base.Benchmarks {
		found := false
		for _, b := range cur.Benchmarks {
			if b.Name == p.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(w, "%-55s %14.0f %14s %8s %12s\n", p.Name, p.NsPerOp, "-", "gone", "-")
		}
	}
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func allocsDelta(old, new Benchmark) string {
	if old.AllocsPerOp == 0 && new.AllocsPerOp == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", pct(old.AllocsPerOp, new.AllocsPerOp))
}

// config holds the parsed flags; split out so tests drive run directly.
type config struct {
	out      string
	baseline string
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("bench2json", flag.ContinueOnError)
	var c config
	fs.StringVar(&c.out, "o", "BENCH_suite.json", "output artifact path (\"-\" for stdout)")
	fs.StringVar(&c.baseline, "baseline", "", "previous artifact to compare against (missing file: skip compare)")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if fs.NArg() != 0 {
		return c, fmt.Errorf("bench2json: unexpected arguments %v (bench text is read from stdin)", fs.Args())
	}
	return c, nil
}

func run(c config, in io.Reader, w io.Writer) error {
	a, err := parse(in)
	if err != nil {
		return err
	}
	if len(a.Benchmarks) == 0 {
		return fmt.Errorf("bench2json: no benchmark result lines on stdin")
	}
	if c.baseline != "" {
		if raw, err := os.ReadFile(c.baseline); err == nil {
			var base Artifact
			if err := json.Unmarshal(raw, &base); err != nil {
				fmt.Fprintf(w, "bench2json: baseline %s unreadable (%v), skipping compare\n", c.baseline, err)
			} else {
				fmt.Fprintf(w, "perf trajectory vs %s (informational, non-gating):\n", c.baseline)
				compare(w, &base, a)
			}
		} else {
			fmt.Fprintf(w, "bench2json: no baseline at %s, skipping compare\n", c.baseline)
		}
	}
	blob, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if c.out == "-" {
		_, err = w.Write(blob)
		return err
	}
	if err := os.WriteFile(c.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "bench2json: wrote %d benchmarks to %s\n", len(a.Benchmarks), c.out)
	return nil
}

func main() {
	c, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(c, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
