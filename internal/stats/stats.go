// Package stats aggregates run metrics into the quantities the paper's
// evaluation reports: throughput, latency min/avg/max, completion CDFs,
// processor utilization, execution-time breakdowns, and time series.
package stats

import (
	"fmt"
	"sort"

	"repro/internal/flashvisor"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

// Result is the outcome of one device run.
type Result struct {
	System   string
	Workload string

	Makespan units.Duration
	Bytes    int64 // input data processed (read by kernels)

	// KernelLatencies holds each kernel's issue-to-completion latency in
	// arrival order; CompletionTimes holds absolute completion stamps for
	// the Fig. 12 CDFs.
	KernelLatencies []units.Duration
	CompletionTimes []sim.Time

	// WorkerUtil is average worker execution time over the makespan
	// (Fig. 14's metric), in [0,1].
	WorkerUtil float64

	Energy      power.Breakdown
	ByComponent []power.Entry

	// Execution-time decomposition for Fig. 3d: accelerator compute time,
	// SSD device time, and host storage-stack CPU time.
	AccelTime units.Duration
	SSDTime   units.Duration
	StackTime units.Duration

	// Time series for Fig. 15 (nil unless collection was enabled).
	SeriesBin   units.Duration
	FUSeries    []float64
	PowerSeries []float64

	// SwitchUtils breaks worker utilization down by host-side PCIe switch
	// (nil unless the run used a labeled multi-switch topology), in the
	// topology's switch order.
	SwitchUtils []SwitchUtil

	Visor         flashvisor.Stats
	BGReclaims    int64
	Journals      int64
	LockConflicts int64
	LockWaited    units.Duration
	DrainTime     units.Duration // device-side background drain past makespan

	// FlashRetries counts read-retry cycles the fault plan's wear model
	// injected; RetryTime is the extra sensing time they cost. Zero on
	// healthy runs.
	FlashRetries int64
	RetryTime    units.Duration

	// Faults holds one accounting record per injected fault (nil on
	// healthy runs), in plan order for window/wear records and part
	// order for card deaths.
	Faults []FaultRecord
}

// FaultRecord is the per-fault accounting a faulted cluster run reports:
// what was injected, when the dispatcher noticed, how long recovery
// took, and what the fault cost.
type FaultRecord struct {
	Kind   string // "card-death", "switch-throttle", "switch-flap", "flash-wear"
	Target string // card id or switch name

	// At is the injection instant; Until closes a window fault's span.
	At, Until units.Duration
	// Detect is the host's failure-detection latency for a card death.
	Detect units.Duration
	// Recovery is injection-to-recovered: for a card death, from the
	// death to the last re-dispatched instance completing on a survivor.
	Recovery units.Duration
	// Lost is simulated work time thrown away (progress on a dead card;
	// for flash wear, the total injected retry latency).
	Lost units.Duration
	// Redone counts work items re-dispatched after the fault (for flash
	// wear, the injected retry cycles).
	Redone int
	// DegradedTput is the cluster throughput (MB/s) over a window
	// fault's [At, Until) span, measured by completions inside it.
	DegradedTput float64
}

// ThroughputMBps returns processed bytes over the makespan in MB/s
// (decimal megabytes, as the paper's axes use).
func (r *Result) ThroughputMBps() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Bytes) / units.Seconds(r.Makespan) / 1e6
}

// LatencyStats returns min, average, and max kernel latency.
func (r *Result) LatencyStats() (min, avg, max units.Duration) {
	if len(r.KernelLatencies) == 0 {
		return 0, 0, 0
	}
	min, max = r.KernelLatencies[0], r.KernelLatencies[0]
	var sum units.Duration
	for _, l := range r.KernelLatencies {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		sum += l
	}
	return min, sum / units.Duration(len(r.KernelLatencies)), max
}

// CDF returns the kernel-completion distribution as (time, count) steps,
// the shape Fig. 12 plots.
func (r *Result) CDF() []CDFPoint {
	ts := append([]sim.Time(nil), r.CompletionTimes...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]CDFPoint, len(ts))
	for i, t := range ts {
		out[i] = CDFPoint{Time: t, Completed: i + 1}
	}
	return out
}

// CDFPoint is one step of a completion CDF.
type CDFPoint struct {
	Time      sim.Time
	Completed int
}

// BreakdownFracs normalizes the Fig. 3d time decomposition. The three
// shares sum to 1 when any time was recorded.
func (r *Result) BreakdownFracs() (accel, ssd, stack float64) {
	total := float64(r.AccelTime + r.SSDTime + r.StackTime)
	if total == 0 {
		return 0, 0, 0
	}
	return float64(r.AccelTime) / total, float64(r.SSDTime) / total, float64(r.StackTime) / total
}

// Part is one node's contribution to a cluster aggregate: the node-local
// result plus the host-level time offset at which the node's run began
// (its dispatch completion on the shared host link). Switch optionally
// names the PCIe switch the node sits behind in a multi-switch topology;
// parts sharing a label aggregate into one per-switch utilization row. A
// part with a nil Res is an idle card: it contributes nothing but still
// counts toward its switch's card count (and so dilutes its utilization),
// exactly like idle cards dilute the cluster-wide WorkerUtil.
type Part struct {
	Res    *Result
	Offset units.Duration
	Switch string
	// Faults carries the fault records charged to this part — a dead
	// card's part may have a nil Res (its work was lost) yet still
	// report its death here.
	Faults []FaultRecord
}

// SwitchUtil is the per-switch slice of a cluster aggregate: how many cards
// sit behind one switch and their average worker utilization over the
// cluster makespan. A congested or under-provisioned switch shows up here
// as a utilization gap against its sibling subtrees.
type SwitchUtil struct {
	Switch string
	Cards  int
	Util   float64
}

// Aggregate merges per-node results of a cluster run into one cluster-level
// Result: bytes and energy sum, kernel latencies concatenate, completion
// times shift by each part's host-dispatch offset, and the makespan is the
// latest node finish. WorkerUtil averages node utilizations over the cluster
// makespan across all devices cards, so cards that finish early (or never
// receive work) count as idle. Time series are not merged — cluster results
// carry no Fig. 15 traces.
func Aggregate(system, workload string, devices int, parts []Part) *Result {
	r := &Result{System: system, Workload: workload}
	// Size the concatenated latency and offset-shifted completion slices
	// once from the summed part lengths, so merging N cards appends into
	// exactly two allocations instead of regrowing per part.
	var nLat, nComp int
	for _, p := range parts {
		if p.Res != nil {
			nLat += len(p.Res.KernelLatencies)
			nComp += len(p.Res.CompletionTimes)
		}
	}
	if nLat > 0 {
		r.KernelLatencies = make([]units.Duration, 0, nLat)
	}
	if nComp > 0 {
		r.CompletionTimes = make([]sim.Time, 0, nComp)
	}
	var utilWeighted float64
	comps := map[string]*power.Entry{}
	type swAcc struct {
		cards        int
		utilWeighted float64
	}
	var swOrder []string
	sws := map[string]*swAcc{}
	for _, p := range parts {
		if p.Switch != "" {
			a := sws[p.Switch]
			if a == nil {
				a = &swAcc{}
				sws[p.Switch] = a
				swOrder = append(swOrder, p.Switch)
			}
			a.cards++
			if p.Res != nil {
				a.utilWeighted += p.Res.WorkerUtil * float64(p.Res.Makespan)
			}
		}
		r.Faults = append(r.Faults, p.Faults...)
		if p.Res == nil {
			continue // idle card: counted above, nothing to merge
		}
		res := p.Res
		if fin := p.Offset + res.Makespan; fin > r.Makespan {
			r.Makespan = fin
		}
		r.Bytes += res.Bytes
		r.KernelLatencies = append(r.KernelLatencies, res.KernelLatencies...)
		for _, t := range res.CompletionTimes {
			r.CompletionTimes = append(r.CompletionTimes, t+p.Offset)
		}
		utilWeighted += res.WorkerUtil * float64(res.Makespan)
		for c := range res.Energy {
			r.Energy[c] += res.Energy[c]
		}
		for _, e := range res.ByComponent {
			if a, ok := comps[e.Component]; ok {
				a.Joules += e.Joules
			} else {
				cp := e
				comps[e.Component] = &cp
			}
		}
		r.AccelTime += res.AccelTime
		r.SSDTime += res.SSDTime
		r.StackTime += res.StackTime
		r.DrainTime += res.DrainTime
		r.Visor.ReadGroups += res.Visor.ReadGroups
		r.Visor.WriteGroups += res.Visor.WriteGroups
		r.Visor.FGReclaims += res.Visor.FGReclaims
		r.Visor.Migrated += res.Visor.Migrated
		r.Visor.JournalWrites += res.Visor.JournalWrites
		r.Visor.UnmappedReads += res.Visor.UnmappedReads
		r.FlashRetries += res.FlashRetries
		r.RetryTime += res.RetryTime
		r.Faults = append(r.Faults, res.Faults...)
		r.BGReclaims += res.BGReclaims
		r.Journals += res.Journals
		r.LockConflicts += res.LockConflicts
		r.LockWaited += res.LockWaited
	}
	if r.Makespan > 0 && devices > 0 {
		r.WorkerUtil = utilWeighted / (float64(devices) * float64(r.Makespan))
	}
	for _, name := range swOrder {
		a := sws[name]
		u := SwitchUtil{Switch: name, Cards: a.cards}
		if r.Makespan > 0 && a.cards > 0 {
			u.Util = a.utilWeighted / (float64(a.cards) * float64(r.Makespan))
		}
		r.SwitchUtils = append(r.SwitchUtils, u)
	}
	names := make([]string, 0, len(comps))
	for name := range comps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r.ByComponent = append(r.ByComponent, *comps[name])
	}
	return r
}

// String renders a one-line summary.
func (r *Result) String() string {
	mn, av, mx := r.LatencyStats()
	return fmt.Sprintf("%s/%s: %.1f MB/s, makespan %s, lat[min/avg/max] %s/%s/%s, util %.0f%%, energy %.2f J",
		r.Workload, r.System, r.ThroughputMBps(), units.FormatDuration(r.Makespan),
		units.FormatDuration(mn), units.FormatDuration(av), units.FormatDuration(mx),
		r.WorkerUtil*100, r.Energy.Total())
}
