package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/units"
)

// The plan text format is line-based: one directive per line, `#`
// comments and blank lines ignored. Durations take an ns/us/ms/s suffix
// (a bare integer is nanoseconds); percentages may carry a trailing `%`.
//
//	seed 7
//	detect 100us
//	card-death 1 at 2ms
//	switch-flap sw0 from 1ms to 3ms
//	switch-throttle sw0 from 3ms to 6ms factor 25%
//	wear-bad-sb 3% retries 2
//	wear-storm from 0 to 10ms prob 20% retries 1

// Parse decodes a plan from its text form and validates it
// structurally. Errors name the offending line.
func Parse(text []byte) (*Plan, error) {
	p := &Plan{}
	for ln, line := range strings.Split(string(text), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		if err := p.parseLine(f); err != nil {
			return nil, fmt.Errorf("faults: line %d: %w", ln+1, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Load reads and parses a plan file.
func Load(path string) (*Plan, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	p, err := Parse(text)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return p, nil
}

func (p *Plan) parseLine(f []string) error {
	switch f[0] {
	case "seed":
		if len(f) != 2 {
			return fmt.Errorf("want: seed N")
		}
		v, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", f[1])
		}
		p.Seed = v
		return nil
	case "detect":
		if len(f) != 2 {
			return fmt.Errorf("want: detect DURATION")
		}
		d, err := parseDur(f[1])
		if err != nil {
			return err
		}
		p.Detect = d
		return nil
	case "card-death":
		if len(f) != 4 || f[2] != "at" {
			return fmt.Errorf("want: card-death CARD at DURATION")
		}
		card, err := strconv.Atoi(f[1])
		if err != nil {
			return fmt.Errorf("bad card id %q", f[1])
		}
		at, err := parseDur(f[3])
		if err != nil {
			return err
		}
		p.Events = append(p.Events, Event{Kind: CardDeath, Card: card, At: at})
		return nil
	case "switch-flap":
		if len(f) != 6 || f[2] != "from" || f[4] != "to" {
			return fmt.Errorf("want: switch-flap SWITCH from DURATION to DURATION")
		}
		from, until, err := parseSpan(f[3], f[5])
		if err != nil {
			return err
		}
		p.Events = append(p.Events, Event{Kind: SwitchFlap, Switch: f[1], At: from, Until: until})
		return nil
	case "switch-throttle":
		if len(f) != 8 || f[2] != "from" || f[4] != "to" || f[6] != "factor" {
			return fmt.Errorf("want: switch-throttle SWITCH from DURATION to DURATION factor PCT%%")
		}
		from, until, err := parseSpan(f[3], f[5])
		if err != nil {
			return err
		}
		pct, err := parsePct(f[7])
		if err != nil {
			return err
		}
		p.Events = append(p.Events, Event{Kind: SwitchThrottle, Switch: f[1], At: from, Until: until, FactorPct: pct})
		return nil
	case "wear-bad-sb":
		if len(f) != 4 || f[2] != "retries" {
			return fmt.Errorf("want: wear-bad-sb PCT%% retries N")
		}
		pct, err := parsePct(f[1])
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(f[3])
		if err != nil {
			return fmt.Errorf("bad retry count %q", f[3])
		}
		p.Wear.BadSBPct, p.Wear.BadRetries = pct, n
		return nil
	case "wear-storm":
		if len(f) != 9 || f[1] != "from" || f[3] != "to" || f[5] != "prob" || f[7] != "retries" {
			return fmt.Errorf("want: wear-storm from DURATION to DURATION prob PCT%% retries N")
		}
		from, until, err := parseSpan(f[2], f[4])
		if err != nil {
			return err
		}
		pct, err := parsePct(f[6])
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(f[8])
		if err != nil {
			return fmt.Errorf("bad retry count %q", f[8])
		}
		p.Wear.StormFrom, p.Wear.StormUntil = from, until
		p.Wear.StormPct, p.Wear.StormRetries = pct, n
		return nil
	default:
		return fmt.Errorf("unknown directive %q", f[0])
	}
}

// parseSpan parses a window's two endpoints.
func parseSpan(from, until string) (units.Duration, units.Duration, error) {
	a, err := parseDur(from)
	if err != nil {
		return 0, 0, err
	}
	b, err := parseDur(until)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

// parsePct parses "25" or "25%".
func parsePct(s string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSuffix(s, "%"))
	if err != nil {
		return 0, fmt.Errorf("bad percentage %q", s)
	}
	return v, nil
}

// parseDur parses a duration with an ns/us/ms/s suffix; a bare integer
// is nanoseconds. Values must be non-negative integers — the plan's
// clock is the simulator's integer nanosecond clock, so there is no
// float rounding to disagree about.
func parseDur(s string) (units.Duration, error) {
	unit := units.Duration(1)
	num := s
	switch {
	case strings.HasSuffix(s, "ns"):
		num = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		unit, num = units.Microsecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		unit, num = units.Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		unit, num = units.Second, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad duration %q (want non-negative integer with ns/us/ms/s suffix)", s)
	}
	d := units.Duration(v) * unit
	if unit > 1 && d/unit != units.Duration(v) {
		return 0, fmt.Errorf("duration %q overflows", s)
	}
	return d, nil
}

// String renders the plan in its canonical text form: parsing the
// output yields an equal plan, which the fuzz target exercises.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", p.Seed)
	if p.Detect > 0 {
		fmt.Fprintf(&b, "detect %s\n", formatDur(p.Detect))
	}
	for _, ev := range p.Events {
		switch ev.Kind {
		case CardDeath:
			fmt.Fprintf(&b, "card-death %d at %s\n", ev.Card, formatDur(ev.At))
		case SwitchFlap:
			fmt.Fprintf(&b, "switch-flap %s from %s to %s\n", ev.Switch, formatDur(ev.At), formatDur(ev.Until))
		case SwitchThrottle:
			fmt.Fprintf(&b, "switch-throttle %s from %s to %s factor %d%%\n",
				ev.Switch, formatDur(ev.At), formatDur(ev.Until), ev.FactorPct)
		}
	}
	if p.Wear.BadSBPct > 0 || p.Wear.BadRetries > 0 {
		fmt.Fprintf(&b, "wear-bad-sb %d%% retries %d\n", p.Wear.BadSBPct, p.Wear.BadRetries)
	}
	if p.Wear.StormPct > 0 || p.Wear.StormRetries > 0 {
		fmt.Fprintf(&b, "wear-storm from %s to %s prob %d%% retries %d\n",
			formatDur(p.Wear.StormFrom), formatDur(p.Wear.StormUntil), p.Wear.StormPct, p.Wear.StormRetries)
	}
	return b.String()
}

// formatDur renders a duration exactly (no rounding), choosing the
// largest suffix that divides it, so String round-trips through Parse.
func formatDur(d units.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d%units.Second == 0:
		return fmt.Sprintf("%ds", d/units.Second)
	case d%units.Millisecond == 0:
		return fmt.Sprintf("%dms", d/units.Millisecond)
	case d%units.Microsecond == 0:
		return fmt.Sprintf("%dus", d/units.Microsecond)
	default:
		return fmt.Sprintf("%dns", d)
	}
}
