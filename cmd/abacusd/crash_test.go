// Black-box crash-recovery harness: a real abacusd process, SIGKILLed
// mid-load by its own chaos plan, restarted against the same journal
// and image store. Every job the dead daemon accepted must reach
// exactly one terminal state in the next life, with result bytes
// identical to a fresh render of the same request.
//
// The child process is this test binary re-executed with
// ABACUSD_CRASH_CHILD=1, which makes TestMain hand control to main() —
// so the harness exercises the exact flag wiring the shipped binary
// runs, not a lookalike.
package main

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	flashabacus "repro"
)

func TestMain(m *testing.M) {
	if os.Getenv("ABACUSD_CRASH_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// freeAddr reserves a loopback port and releases it for the child. The
// tiny close-to-bind race is acceptable in a test on loopback.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startChild launches abacusd (this binary, re-executed) on addr.
func startChild(t *testing.T, addr string, extra ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	args := append([]string{"-addr", addr, "-workers", "1"}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ABACUSD_CRASH_CHILD=1")
	var logs bytes.Buffer
	cmd.Stdout, cmd.Stderr = &logs, &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd, &logs
}

// waitReady polls the daemon until it serves requests.
func waitReady(t *testing.T, c *flashabacus.ServiceClient, logs *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Experiments(context.Background()); err == nil {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon never came up; logs:\n%s", logs.String())
}

func TestCrashRecoveryExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	journalDir, storeDir := t.TempDir(), t.TempDir()
	ctx := context.Background()

	// Life 1: chaos kills the process with SIGKILL at the 8th journal
	// append and tears the final record — the worst crash the journal
	// format claims to survive.
	addr1 := freeAddr(t)
	child1, logs1 := startChild(t, addr1,
		"-journal", journalDir, "-image-store", storeDir,
		"-chaos", "kill-after=8,torn-tail,seed=1")
	c1 := flashabacus.NewServiceClient("http://"+addr1, "crash")
	waitReady(t, c1, logs1)

	var accepted []string
	for i := 0; i < 12; i++ {
		st, err := c1.Submit(ctx, flashabacus.JobRequest{Experiment: "t1", Client: "crash"})
		if err != nil {
			break // the kill landed
		}
		accepted = append(accepted, st.ID)
	}
	err := child1.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("child 1 exited cleanly (%v) — chaos kill never fired; logs:\n%s", err, logs1.String())
	}
	if ws, ok := ee.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child 1 died of %v, want SIGKILL; logs:\n%s", err, logs1.String())
	}
	if len(accepted) == 0 {
		t.Fatalf("no job was accepted before the kill; logs:\n%s", logs1.String())
	}

	// Life 2: same journal and store, no chaos. Every accepted job must
	// turn up terminal with the right bytes.
	addr2 := freeAddr(t)
	child2, logs2 := startChild(t, addr2, "-journal", journalDir, "-image-store", storeDir)
	c2 := flashabacus.NewServiceClient("http://"+addr2, "crash")
	waitReady(t, c2, logs2)

	ref, err := c2.Submit(ctx, flashabacus.JobRequest{Experiment: "t1", Client: "crash"})
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	want, err := c2.Result(ctx, ref.ID)
	if err != nil {
		t.Fatalf("reference render: %v", err)
	}
	for _, id := range accepted {
		got, err := c2.Result(ctx, id) // blocks until terminal
		if err != nil {
			t.Errorf("accepted job %s did not reach done after recovery: %v", id, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("job %s recovered with %d bytes, want %d (a fresh render)", id, len(got), len(want))
		}
		// Terminal means settled: the state must not change on re-read.
		st, err := c2.Status(ctx, id)
		if err != nil || st.State != flashabacus.JobState("done") {
			t.Errorf("job %s state = %v, %v after result; want done", id, st.State, err)
		}
	}

	// Life 2 drains cleanly on SIGTERM — recovery did not wedge it.
	if err := child2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := child2.Wait(); err != nil {
		t.Fatalf("child 2 did not drain cleanly: %v; logs:\n%s", err, logs2.String())
	}
}

// TestCrashChildFlagError keeps the chaos flag surface honest: a bogus
// spec must fail fast with a diagnostic, not arm garbage.
func TestCrashChildFlagError(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-chaos", "bogus")
	cmd.Env = append(os.Environ(), "ABACUSD_CRASH_CHILD=1")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("bogus chaos spec: err %v, want exit 1; output:\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("chaos")) {
		t.Fatalf("bogus chaos spec produced no diagnostic:\n%s", out)
	}
}
