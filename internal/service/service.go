// Package service is the simulation-as-a-service layer: an HTTP/JSON
// daemon (cmd/abacusd) that serves experiment renders to many
// concurrent clients from one shared image cache and worker pool.
//
// The API is deliberately small:
//
//	POST   /v1/jobs              submit a JobRequest  -> 202 JobStatus
//	GET    /v1/jobs              list retained jobs
//	GET    /v1/jobs/{id}         poll a job's status
//	GET    /v1/jobs/{id}/result  fetch the rendered bytes (?wait=1 blocks)
//	GET    /v1/jobs/{id}/stream  stream the bytes as the render produces them
//	DELETE /v1/jobs/{id}         cancel (queued jobs dequeue eagerly)
//	GET    /v1/experiments       list experiment ids
//	GET    /metrics              Prometheus text exposition
//	GET    /healthz              liveness
//
// The load-bearing invariant, pinned by the golden-equivalence suite:
// a job's result bytes are exactly what the abacus-repro CLI prints for
// the same knobs. The daemon adds admission control (bounded queue,
// 429 shedding, per-client round-robin fairness) and server-side
// deadlines on top, never different bytes.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/imagestore"
	"repro/internal/journal"
	"repro/internal/runner"
)

// Config shapes a Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// Workers is the number of concurrent jobs (default 2). Each job's
	// render additionally fans out over SimWorkers device simulations.
	Workers int
	// SimWorkers bounds the per-job simulation parallelism, the Suite's
	// Workers knob (default 1: within a job, renders are sequential, so
	// concurrency comes from serving many jobs at once).
	SimWorkers int
	// QueueDepth bounds admitted-but-not-dispatched jobs across all
	// clients (default 64); past it, submits shed with 429.
	QueueDepth int
	// DefaultTimeout bounds a job's execution when the request names no
	// timeout_ms (default 2m); MaxTimeout clamps requested timeouts
	// (default 10m). Both run from dispatch, not submission.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetainJobs bounds how many terminal jobs stay queryable (default
	// 256); the oldest are forgotten first.
	RetainJobs int
	// MaxSuites bounds the pool of experiment suites kept warm, one per
	// distinct (scale, devices, fault plan) combination (default 8).
	MaxSuites int
	// Images is the image cache every suite shares (default: a fresh
	// process-wide cache). The flashabacus facade passes its shared one.
	Images *cluster.ImageCache
	// Store optionally backs Images with a persistent image store.
	Store imagestore.Store
	// Journal, when set, makes job lifecycle durable: every accept,
	// dispatch, and terminal transition (with the result bytes for done
	// jobs) is appended to the journal, and New replays it — completed
	// jobs stay queryable with their journaled output, jobs that were
	// accepted or running at crash time are re-enqueued. The caller owns
	// the journal's lifetime and closes it after Close returns.
	Journal *journal.Journal
	// WatchdogGrace is how long a running render may ignore its
	// cancelled context before the watchdog abandons it: the job fails,
	// its suite is evicted so the wedge cannot poison later jobs, and
	// the worker moves on (default 10s).
	WatchdogGrace time.Duration
	// Chaos, when set, injects the configured deterministic faults
	// (crash-at-append, render panics, journal write failures); it is
	// the seam the crash-recovery harness drives a real daemon with.
	Chaos *Chaos

	// gate, when set by in-package tests, runs after a job is dispatched
	// and before its render starts — a seam for deterministically
	// blocking workers in fairness and shedding tests. The context is
	// the job's execution context, so a blocked gate still honors
	// cancellation and shutdown.
	gate func(context.Context, *job)
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.SimWorkers < 1 {
		c.SimWorkers = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.DefaultTimeout > c.MaxTimeout {
		c.DefaultTimeout = c.MaxTimeout
	}
	if c.RetainJobs < 1 {
		c.RetainJobs = 256
	}
	if c.MaxSuites < 1 {
		c.MaxSuites = 8
	}
	if c.WatchdogGrace <= 0 {
		c.WatchdogGrace = 10 * time.Second
	}
	if c.Images == nil {
		c.Images = cluster.NewImageCache()
	}
	return c
}

// suiteKey identifies a reusable experiment suite: every knob that
// shapes a suite's state. Jobs with equal keys share one suite — and
// with it the single-flight cell cache, so a repeat job is mostly
// cache reads.
type suiteKey struct {
	scale   int64
	devices int
	fault   string // fault name + "\x00" + plan text ("" = none)
}

// Server is the daemon: an http.Handler plus the worker pool behind it.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	sched  *scheduler
	met    *metrics
	images *cluster.ImageCache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu      sync.Mutex
	nextID  int64
	nextSeq int64
	jobs    map[string]*job
	order   []string          // job ids, submission order, for retention
	dedupe  map[string]string // dedupe key -> job id, for retained jobs
	suites  map[suiteKey]*experiments.Suite
	suiteQ  []suiteKey // suite keys, least recently used first
	closed  bool

	// Journal write breaker: journalFailureBudget consecutive append
	// failures degrade the daemon to memory-only (visible in /metrics)
	// rather than letting a sick disk block or fail dispatch.
	jlMu       sync.Mutex
	jlFails    int
	jlDegraded bool
}

// journalFailureBudget is how many consecutive journal append failures
// trip the degradation breaker.
const journalFailureBudget = 3

// compactSegments is the segment count past which a terminal transition
// triggers journal compaction.
const compactSegments = 3

// New builds a Server and starts its workers. Callers must Close it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Store != nil {
		cfg.Images.SetStore(cfg.Store)
	}
	s := &Server{
		cfg:    cfg,
		sched:  newScheduler(cfg.QueueDepth),
		met:    newMetrics(),
		images: cfg.Images,
		jobs:   map[string]*job{},
		dedupe: map[string]string{},
		suites: map[suiteKey]*experiments.Suite{},
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.Chaos != nil && cfg.Journal != nil {
		cfg.Chaos.arm(cfg.Journal)
	}
	// Replay before the workers start, so recovered jobs are re-enqueued
	// (and recovered results queryable) before anything is dispatched.
	s.recoverFromJournal()
	s.mux = http.NewServeMux()
	s.route("POST /v1/jobs", s.handleSubmit)
	s.route("GET /v1/jobs", s.handleList)
	s.route("GET /v1/jobs/{id}", s.handleStatus)
	s.route("GET /v1/jobs/{id}/result", s.handleResult)
	s.route("GET /v1/jobs/{id}/stream", s.handleStream)
	s.route("DELETE /v1/jobs/{id}", s.handleCancel)
	s.route("GET /v1/experiments", s.handleExperiments)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// route registers a handler wrapped with request accounting; the route
// pattern doubles as the requests_total label, so label cardinality is
// the route table, not the URL space.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.met.request(pattern, rec.code)
	})
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops admission, cancels queued and running jobs, and waits for
// the workers to drain. The handler keeps answering reads (status,
// results, metrics) for jobs it retains.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, j := range s.sched.close() {
		// Journaled too: a gracefully-drained queue must not re-enqueue
		// its cancelled jobs at the next boot.
		s.finish(j, StateCancelled, "server shutting down", time.Now())
	}
	s.baseCancel()
	s.wg.Wait()
}

// finish moves a job to a terminal state exactly once, counting the
// event and journaling the transition (with the output bytes for done
// jobs, so a restart can serve the result without recomputing it).
func (s *Server) finish(j *job, state JobState, errMsg string, now time.Time) bool {
	if !j.finalize(state, errMsg, now) {
		return false
	}
	s.met.jobEvent(string(state))
	rec := journal.Record{ID: j.id, Client: j.client, Key: j.req.DedupeKey,
		Error: errMsg, UnixMilli: now.UnixMilli()}
	switch state {
	case StateDone:
		rec.Kind = journal.Done
		j.mu.Lock()
		rec.Output = append([]byte(nil), j.out...)
		j.mu.Unlock()
	case StateFailed:
		rec.Kind = journal.Failed
	default:
		rec.Kind = journal.Cancelled
	}
	s.journalAppend(rec)
	s.maybeCompact(false)
	return true
}

// journalAppend appends one record through the degradation breaker:
// after journalFailureBudget consecutive failures the journal is marked
// degraded and skipped — job flow never blocks on a sick journal disk —
// and a later success (before the trip) resets the failure streak.
func (s *Server) journalAppend(rec journal.Record) {
	jl := s.cfg.Journal
	if jl == nil || s.journalDegraded() {
		return
	}
	err := jl.Append(rec)
	s.jlMu.Lock()
	defer s.jlMu.Unlock()
	if err == nil {
		s.jlFails = 0
		return
	}
	s.jlFails++
	if s.jlFails >= journalFailureBudget && !s.jlDegraded {
		s.jlDegraded = true
		log.Printf("abacusd: journal degraded to memory-only after %d consecutive append failures (last: %v)",
			s.jlFails, err)
	}
}

func (s *Server) journalDegraded() bool {
	s.jlMu.Lock()
	defer s.jlMu.Unlock()
	return s.jlDegraded
}

// maybeCompact collapses journal history into one base segment holding
// only the retained jobs (their accept plus, if terminal, their final
// record). Unforced calls compact only once the journal has grown past
// compactSegments segments; recovery forces one to fold the replayed
// history so the journal cannot grow across restart cycles.
func (s *Server) maybeCompact(force bool) {
	jl := s.cfg.Journal
	if jl == nil || s.journalDegraded() {
		return
	}
	if !force && jl.Stats().Segments < compactSegments {
		return
	}
	var live []journal.Record
	s.mu.Lock()
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		reqBytes, err := json.Marshal(j.req)
		if err != nil {
			continue
		}
		j.mu.Lock()
		state, errMsg := j.state, j.errMsg
		out := append([]byte(nil), j.out...)
		submitted, finished := j.submitted, j.finished
		j.mu.Unlock()
		live = append(live, journal.Record{Kind: journal.Accepted, ID: id, Client: j.client,
			Key: j.req.DedupeKey, Request: reqBytes, UnixMilli: submitted.UnixMilli()})
		var kind journal.Kind
		switch state {
		case StateDone:
			kind = journal.Done
		case StateFailed:
			kind = journal.Failed
		case StateCancelled:
			kind = journal.Cancelled
		default:
			continue // queued or running: the accept alone re-enqueues it
		}
		rec := journal.Record{Kind: kind, ID: id, Client: j.client, Key: j.req.DedupeKey,
			Error: errMsg, UnixMilli: finished.UnixMilli()}
		if kind == journal.Done {
			rec.Output = out
		}
		live = append(live, rec)
	}
	s.mu.Unlock()
	if err := jl.Compact(live); err != nil {
		log.Printf("abacusd: journal compaction failed: %v", err)
	}
}

// recoverFromJournal rebuilds job state from the journal at boot:
// terminal jobs are restored queryable with their journaled output and
// error, and jobs that were accepted or running at crash time are
// re-enqueued (bypassing the admission bound — they were already
// admitted once). Replay is truncation-tolerant: a torn final record is
// simply the crash point.
func (s *Server) recoverFromJournal() {
	jl := s.cfg.Journal
	if jl == nil {
		return
	}
	type replayedJob struct {
		request   []byte
		client    string
		key       string
		state     JobState // "" while non-terminal
		errMsg    string
		out       []byte
		submitted int64
		finished  int64
	}
	terminalOf := func(k journal.Kind) (JobState, bool) {
		switch k {
		case journal.Done:
			return StateDone, true
		case journal.Failed:
			return StateFailed, true
		case journal.Cancelled:
			return StateCancelled, true
		}
		return "", false
	}
	byID := map[string]*replayedJob{}
	var order []string
	// A fast job can reach its terminal append before the submit handler
	// journals the accept; park such records until the accept arrives.
	orphans := map[string]journal.Record{}
	rs, err := journal.Replay(jl.Dir(), func(r journal.Record) error {
		switch r.Kind {
		case journal.Accepted:
			if _, dup := byID[r.ID]; dup {
				return nil // duplicate accept: first wins
			}
			e := &replayedJob{request: r.Request, client: r.Client, key: r.Key, submitted: r.UnixMilli}
			byID[r.ID] = e
			order = append(order, r.ID)
			if t, ok := orphans[r.ID]; ok {
				delete(orphans, r.ID)
				st, _ := terminalOf(t.Kind)
				e.state, e.errMsg, e.out, e.finished = st, t.Error, t.Output, t.UnixMilli
			}
		case journal.Dispatched:
			// Non-terminal: a dispatched-but-unfinished job re-enqueues
			// exactly like a queued one.
		default:
			st, ok := terminalOf(r.Kind)
			if !ok {
				return nil // unknown kind from a future version: skip
			}
			e := byID[r.ID]
			if e == nil {
				orphans[r.ID] = r
				return nil
			}
			if e.state == "" { // exactly-one-terminal: first wins
				e.state, e.errMsg, e.out, e.finished = st, r.Error, r.Output, r.UnixMilli
			}
		}
		return nil
	})
	if err != nil {
		log.Printf("abacusd: journal replay failed, starting empty: %v", err)
		return
	}
	s.met.replayedRecords(rs.Records)

	now := time.Now()
	requeued := 0
	s.mu.Lock()
	for _, id := range order {
		e := byID[id]
		var req JobRequest
		if err := json.Unmarshal(e.request, &req); err != nil {
			continue
		}
		plan, err := req.Normalize()
		if err != nil {
			continue
		}
		if req.Client == "" {
			req.Client = e.client
		}
		var n int64
		if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > s.nextID {
			s.nextID = n // ids stay unique across restarts
		}
		j := newJob(id, req.Client, req, plan, s.timeoutFor(&req), now)
		if e.submitted > 0 {
			j.submitted = time.UnixMilli(e.submitted)
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		if e.key != "" {
			s.dedupe[e.key] = id
		}
		if e.state != "" {
			j.out = append(j.out, e.out...)
			fin := now
			if e.finished > 0 {
				fin = time.UnixMilli(e.finished)
			}
			j.finalize(e.state, e.errMsg, fin)
			continue
		}
		s.sched.force(j)
		requeued++
	}
	s.retainLocked()
	s.mu.Unlock()
	s.met.recoveredJobs(requeued)
	if rs.Records > 0 {
		s.maybeCompact(true)
	}
}

// timeoutFor resolves a request's execution timeout against the
// server's default and clamp.
func (s *Server) timeoutFor(req *JobRequest) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	return timeout
}

// statusRecorder captures the response code for request accounting.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the error body every non-2xx JSON response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// clientID resolves the fairness identity of a request: the body's
// client field, else the X-Abacus-Client header, else the remote host —
// so unlabelled clients on distinct hosts still get distinct queues.
func clientID(req *JobRequest, r *http.Request) (string, error) {
	if req.Client != "" {
		return req.Client, nil
	}
	if h := r.Header.Get("X-Abacus-Client"); h != "" {
		if !nameRE.MatchString(h) {
			return "", fmt.Errorf("X-Abacus-Client %q must match %s", h, nameRE)
		}
		return h, nil
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		host = r.RemoteAddr
	}
	if host == "" {
		host = "anonymous"
	}
	return host, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeJobRequest(r.Body)
	if err != nil {
		s.met.jobEvent("rejected")
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	plan, err := req.Normalize()
	if err != nil {
		s.met.jobEvent("rejected")
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	client, err := clientID(req, r)
	if err != nil {
		s.met.jobEvent("rejected")
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.Client = client
	timeout := s.timeoutFor(req)

	// Dedupe check and job creation share one critical section, so two
	// concurrent submits with the same key cannot both create a job.
	s.mu.Lock()
	if req.DedupeKey != "" {
		if id, ok := s.dedupe[req.DedupeKey]; ok {
			if dup := s.jobs[id]; dup != nil {
				s.mu.Unlock()
				s.met.jobEvent("deduped")
				w.Header().Set("Location", "/v1/jobs/"+id)
				writeJSON(w, http.StatusOK, dup.status())
				return
			}
			delete(s.dedupe, req.DedupeKey) // job aged out of retention
		}
	}
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	j := newJob(id, client, *req, plan, timeout, time.Now())
	s.jobs[id] = j
	if req.DedupeKey != "" {
		s.dedupe[req.DedupeKey] = id
	}
	s.order = append(s.order, id)
	s.retainLocked()
	s.mu.Unlock()

	if err := s.sched.submit(j); err != nil {
		s.dropJob(id)
		switch {
		case errors.Is(err, ErrQueueFull):
			s.met.jobEvent("shed")
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
		default:
			s.met.jobEvent("rejected")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	s.met.jobEvent("accepted")
	// Journaled only once admission succeeded: a shed job must not be
	// resurrected at the next boot. The worker may already be running
	// the job; replay tolerates its records landing first.
	if reqBytes, err := json.Marshal(*req); err == nil {
		s.journalAppend(journal.Record{Kind: journal.Accepted, ID: id, Client: client,
			Key: req.DedupeKey, Request: reqBytes, UnixMilli: j.submitted.UnixMilli()})
	}
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, j.status())
}

// retainLocked forgets the oldest terminal jobs beyond the retention
// bound. Queued and running jobs are never dropped — their count is
// bounded by queue depth plus workers.
func (s *Server) retainLocked() {
	if len(s.order) <= s.cfg.RetainJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.RetainJobs
	for _, id := range s.order {
		if excess > 0 {
			if j := s.jobs[id]; j != nil {
				j.mu.Lock()
				terminal := j.state.terminal()
				j.mu.Unlock()
				if terminal {
					delete(s.jobs, id)
					if k := j.req.DedupeKey; k != "" && s.dedupe[k] == id {
						delete(s.dedupe, k)
					}
					excess--
					continue
				}
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// dropJob removes a job that never entered the queue (shed or rejected
// at admission), so it does not linger as a phantom queued job.
func (s *Server) dropJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil {
		if k := j.req.DedupeKey; k != "" && s.dedupe[k] == id {
			delete(s.dedupe, k)
		}
	}
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			writeError(w, http.StatusRequestTimeout, "wait cancelled: %v", r.Context().Err())
			return
		}
	}
	st := j.status()
	switch st.State {
	case StateDone:
		j.mu.Lock()
		out := append([]byte(nil), j.out...)
		j.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Abacus-Job-State", string(st.State))
		w.Write(out)
	case StateFailed, StateCancelled:
		writeJSON(w, http.StatusConflict, st)
	default:
		// Not terminal: report where the job stands instead of blocking.
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleStream writes the job's output bytes as the render produces
// them and closes once the job is terminal; the final state travels in
// the X-Abacus-Job-State trailer so a streaming client needs no
// follow-up status call. ?offset=N skips the first N bytes, letting a
// client that lost its connection resume where it stopped.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	sent := 0
	if o := r.URL.Query().Get("offset"); o != "" {
		n, err := strconv.Atoi(o)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "offset %q must be a non-negative integer", o)
			return
		}
		sent = n
	}
	j.mu.Lock()
	if sent > len(j.out) {
		// Clamp a lying offset: j.out only grows, so clamping once keeps
		// every later j.out[sent:] slice in bounds.
		sent = len(j.out)
	}
	j.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Trailer", "X-Abacus-Job-State, X-Abacus-Job-Error")
	flusher, _ := w.(http.Flusher)

	// A disconnected client never signals the job's cond, so mirror the
	// request context into a broadcast that wakes the wait loop below.
	stop := context.AfterFunc(r.Context(), func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	for {
		j.mu.Lock()
		for sent == len(j.out) && !j.state.terminal() && r.Context().Err() == nil {
			j.cond.Wait()
		}
		chunk := append([]byte(nil), j.out[sent:]...)
		// finalize and Write share j.mu, so a terminal state observed
		// with the full buffer snapshotted means chunk is the last data.
		final := j.state.terminal() && sent+len(chunk) == len(j.out)
		errMsg := j.errMsg
		state := j.state
		j.mu.Unlock()

		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			sent += len(chunk)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if r.Context().Err() != nil {
			return
		}
		if final {
			w.Header().Set("X-Abacus-Job-State", string(state))
			w.Header().Set("X-Abacus-Job-Error", headerSafe(errMsg))
			return
		}
	}
}

// headerSafe flattens an error message for a header value: a panic
// message can carry newlines, which are illegal in HTTP headers.
func headerSafe(msg string) string {
	msg = strings.ReplaceAll(msg, "\r", " ")
	return strings.ReplaceAll(msg, "\n", " ")
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	s.cancel(j)
	writeJSON(w, http.StatusOK, j.status())
}

// cancel requests cancellation: a still-queued job dequeues eagerly and
// finalizes immediately; a running job has its render context
// cancelled and finalizes when the render unwinds; a terminal job is
// left as it ended.
func (s *Server) cancel(j *job) {
	j.mu.Lock()
	j.cancelled = true
	cancelRun := j.cancelRun
	j.mu.Unlock()
	if s.sched.remove(j) {
		s.finish(j, StateCancelled, "cancelled by client", time.Now())
		return
	}
	if cancelRun != nil {
		cancelRun()
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experiments.IDs())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var js journalScrape
	if jl := s.cfg.Journal; jl != nil {
		js.configured = true
		js.stats = jl.Stats()
	}
	js.degraded = s.journalDegraded()
	s.met.render(w, s.sched.depth(), s.images.Stats(), js)
}

// worker is the dispatch loop: pop the next fairly-scheduled job and
// run it to a terminal state. Exits when the scheduler closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.sched.pop()
		if j == nil {
			return
		}
		s.execute(j)
	}
}

// execute runs one dispatched job to a terminal state.
func (s *Server) execute(j *job) {
	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	defer cancel()

	s.mu.Lock()
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()

	j.mu.Lock()
	if j.state.terminal() { // cancel raced dispatch
		j.mu.Unlock()
		return
	}
	if j.cancelled {
		j.mu.Unlock()
		if j.finalize(StateCancelled, "cancelled by client", time.Now()) {
			s.met.jobEvent("cancelled")
		}
		return
	}
	j.state = StateRunning
	j.seq = seq
	j.started = time.Now()
	j.cancelRun = cancel
	j.cond.Broadcast()
	j.mu.Unlock()
	s.met.jobEvent("dispatched")
	s.journalAppend(journal.Record{Kind: journal.Dispatched, ID: j.id, Client: j.client,
		UnixMilli: time.Now().UnixMilli()})
	s.met.runningDelta(+1)
	defer s.met.runningDelta(-1)

	// The render runs in a child goroutine so this worker can watchdog
	// it: a render that ignores its cancelled context past WatchdogGrace
	// is abandoned — its suite evicted, its job failed, the goroutine
	// left to unwind on its own — instead of wedging the worker forever.
	renderErr := make(chan error, 1)
	go func() { renderErr <- s.runJob(ctx, j) }()

	var err error
	wedged := false
	select {
	case err = <-renderErr:
	case <-ctx.Done():
		grace := time.NewTimer(s.cfg.WatchdogGrace)
		select {
		case err = <-renderErr:
			grace.Stop()
		case <-grace.C:
			wedged = true
			s.abandonSuite(j)
			s.met.watchdogKill()
			log.Printf("abacusd: watchdog abandoned job %s: render ignored cancellation for %s",
				j.id, s.cfg.WatchdogGrace)
		}
	}

	now := time.Now()
	j.mu.Lock()
	cancelled := j.cancelled
	started := j.started
	j.mu.Unlock()

	var state JobState
	var errMsg string
	var pe *runner.PanicError
	switch {
	case wedged:
		state, errMsg = StateFailed, fmt.Sprintf(
			"watchdog: render ignored cancellation for %s past its deadline", s.cfg.WatchdogGrace)
	case err == nil:
		state = StateDone
	case errors.As(err, &pe):
		// The panic fails this job alone; the stack goes to the log, the
		// value to the client.
		state, errMsg = StateFailed, fmt.Sprintf("job panicked: %v", pe.Value)
		s.met.jobPanicked()
		log.Printf("abacusd: job %s panicked: %v\n%s", j.id, pe.Value, pe.Stack)
	case cancelled:
		state, errMsg = StateCancelled, "cancelled by client"
	case s.baseCtx.Err() != nil:
		state, errMsg = StateCancelled, "server shutting down"
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		state, errMsg = StateFailed, fmt.Sprintf("deadline exceeded after %s", j.timeout)
	default:
		state, errMsg = StateFailed, err.Error()
	}
	if s.finish(j, state, errMsg, now) && state == StateDone {
		s.met.observe(j.req.Experiment, now.Sub(started).Seconds())
	}
}

// runJob is the render body executed in execute's child goroutine: the
// test gate, chaos panic injection, and the render itself, with a
// recover so a panic anywhere in the job fails the job, not the worker.
// (The runner pool and flight cache recover their own goroutines; this
// catches panics on the job's calling path.)
func (s *Server) runJob(ctx context.Context, j *job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*runner.PanicError); ok {
				err = pe
				return
			}
			err = &runner.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if s.cfg.gate != nil {
		s.cfg.gate(ctx, j)
	}
	if s.cfg.Chaos.takePanic(j.req.Experiment) {
		panic(fmt.Sprintf("chaos: injected panic in render of %s", j.req.Experiment))
	}
	return s.render(ctx, j)
}

// abandonSuite evicts the job's suite from the pool so a wedged render
// holding its single-flight cells cannot poison later jobs; the next
// job with these knobs builds a fresh suite.
func (s *Server) abandonSuite(j *job) {
	key := suiteKeyFor(j)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.suites[key]; ok {
		delete(s.suites, key)
		s.suiteQ = dropSuiteKey(s.suiteQ, key)
	}
}

// render renders the job's selection through a pooled suite; the job
// itself is the io.Writer, so streaming readers see bytes live.
func (s *Server) render(ctx context.Context, j *job) error {
	sel, err := experiments.Select(j.req.Experiment, j.req.Devices, j.req.Topology, j.plan != nil)
	if err != nil {
		return err
	}
	suite, err := s.suiteFor(j)
	if err != nil {
		return err
	}
	return suite.Render(ctx, j, sel)
}

// suiteFor returns the pooled suite for the job's knobs, creating and
// LRU-evicting as needed. Suites share the server's image cache, so an
// evicted suite costs repeat jobs its cell cache, not its images.
func (s *Server) suiteFor(j *job) (*experiments.Suite, error) {
	key := suiteKeyFor(j)
	s.mu.Lock()
	defer s.mu.Unlock()
	if suite, ok := s.suites[key]; ok {
		s.suiteQ = append(dropSuiteKey(s.suiteQ, key), key)
		return suite, nil
	}
	suite := experiments.NewSuiteWithImages(j.req.Scale, s.images)
	suite.Workers = s.cfg.SimWorkers
	suite.MaxDevices = j.req.Devices
	if j.plan != nil {
		suite.SetFaultScenarios([]experiments.FaultScenario{{Name: j.req.FaultName, Plan: j.plan}})
	}
	s.suites[key] = suite
	s.suiteQ = append(s.suiteQ, key)
	if len(s.suiteQ) > s.cfg.MaxSuites {
		evict := s.suiteQ[0]
		s.suiteQ = s.suiteQ[1:]
		delete(s.suites, evict)
		// A running job holding the evicted suite keeps its reference;
		// eviction only stops new jobs from finding it.
	}
	return suite, nil
}

// suiteKeyFor derives the suite pool key from a job's knobs. The fault
// component is the request's plan text (a preset name or the inline
// grammar), which determines the parsed plan.
func suiteKeyFor(j *job) suiteKey {
	key := suiteKey{scale: j.req.Scale, devices: j.req.Devices}
	if j.plan != nil {
		key.fault = j.req.FaultName + "\x00" + j.req.FaultPlan
	}
	return key
}

func dropSuiteKey(q []suiteKey, key suiteKey) []suiteKey {
	for i, k := range q {
		if k == key {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// Experiments returns the servable experiment ids (presentation order),
// plus the "all" pseudo-id accepted by submit.
func Experiments() []string {
	return append(experiments.IDs(), "all")
}
