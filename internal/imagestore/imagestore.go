// Package imagestore persists core.Image snapshots across processes: a
// content-addressed blob store plus a deterministic, versioned binary codec.
//
// PR 5 made device startup build-once/fork-many, but the image cache is
// process-local — every fresh process (CI run, CLI invocation, future
// service worker) rebuilds every image from scratch. This package is the
// second cache level underneath cluster.ImageCache: images are keyed by a
// fingerprint of (core.BuildKey, workload.Bundle.Key, capture stage), the
// exact identity the in-memory cache already uses, so a warm store hands a
// brand-new process the same near-instant cold start a warm process enjoys.
//
// The trust model is "cache, not archive": a Get that returns garbage —
// torn write, bit rot, stale codec version — must decode to ErrCorrupt,
// never a panic or a wrong image, and callers silently fall back to a fresh
// build. The codec therefore checksums everything and the decoder validates
// every structural invariant against the requester's own configuration
// before an image is handed out.
package imagestore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// CodecVersion is the image blob format version. It participates in both
// the wire header and the fingerprint, so bumping it makes every old entry
// both unaddressable (different key) and undecodable (version check) —
// stale blobs are garbage-collected, never misread.
const CodecVersion = 1

// ErrNotFound reports a key with no stored blob.
var ErrNotFound = errors.New("imagestore: not found")

// ErrCorrupt reports a blob that failed decoding — truncation, checksum or
// version mismatch, or structural invariants that do not hold. Callers
// treat it as a miss and rebuild.
var ErrCorrupt = errors.New("imagestore: corrupt image blob")

// Store is a flat blob store. Implementations must be safe for concurrent
// use; Get's result must not be mutated by callers (decoded images alias
// it), and Put takes ownership semantics per implementation — MemStore
// copies, FSStore writes through.
//
// Get returns ErrNotFound for absent keys. Put overwrites atomically: a
// concurrent Get sees either the old blob or the new one, never a torn mix.
type Store interface {
	Get(key string) ([]byte, error)
	Put(key string, blob []byte) error
}

// Fingerprint derives the content address of an image: the build key that
// shapes populated device state, the bundle's content key, and the capture
// stage, all under the codec version. Two processes that would build
// byte-identical images compute the same fingerprint.
func Fingerprint(build core.BuildKey, bundle, stage string) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("flashabacus-image/v%d|%+v|%s|%s", CodecVersion, build, bundle, stage)))
	return hex.EncodeToString(h[:])
}

// MemStore is an in-memory Store: the process-lifetime backend for tests
// and for sharing across caches without touching disk. The zero value is
// ready to use.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Get returns the stored blob. The caller must not mutate it.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	blob, ok := s.m[key]
	if !ok {
		return nil, ErrNotFound
	}
	return blob, nil
}

// Put stores a private copy of blob under key.
func (s *MemStore) Put(key string, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = map[string][]byte{}
	}
	s.m[key] = append([]byte(nil), blob...)
	return nil
}

// Len returns the number of stored blobs.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
