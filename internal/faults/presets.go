package faults

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// PresetNames lists the built-in fault scenarios, in the order the
// experiment suite sweeps them.
var PresetNames = []string{"cardloss", "flap", "wear"}

// Preset returns a built-in fault plan by name. Each returns a fresh
// copy, so callers may mutate the result.
//
// The injection times are tuned for the default fault-experiment shape
// (scale-64 workloads on a 4-card cluster): deaths and windows land
// inside the run's busy phase, where recovery actually has work to
// move. On much longer runs they simply fire earlier in the run; on
// much shorter ones they become no-ops — harmless either way.
func Preset(name string) (*Plan, error) {
	switch name {
	case "cardloss":
		// Kill one mid-indexed card once dispatch has spread work out,
		// with a 100us heartbeat: exercises both policies' recovery.
		return &Plan{
			Seed:   7,
			Detect: 100 * units.Microsecond,
			Events: []Event{
				{Kind: CardDeath, Card: 1, At: 2 * units.Millisecond},
			},
		}, nil
	case "flap":
		// The lone implicit switch goes dark for the first 2ms, then limps
		// at 25% bandwidth until 50ms: the initial dispatch burst stalls at
		// the flap's end and its transfers stretch 4x through the throttle,
		// so throughput dips without any work being lost.
		return &Plan{
			Seed: 11,
			Events: []Event{
				{Kind: SwitchFlap, Switch: "sw0", At: 0, Until: 2 * units.Millisecond},
				{Kind: SwitchThrottle, Switch: "sw0", At: 2 * units.Millisecond, Until: 50 * units.Millisecond, FactorPct: 25},
			},
		}, nil
	case "wear":
		// 3% of superblocks are worn (2 extra sense cycles per read) and
		// a read-disturb storm hits 20% of reads for the first 10ms of
		// each device's run: pure latency, no lost work.
		return &Plan{
			Seed: 13,
			Wear: Wear{
				BadSBPct:     3,
				BadRetries:   2,
				StormFrom:    0,
				StormUntil:   10 * units.Millisecond,
				StormPct:     20,
				StormRetries: 1,
			},
		}, nil
	default:
		return nil, fmt.Errorf("faults: unknown preset %q (have: %s)", name, strings.Join(PresetNames, ", "))
	}
}
