package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// The golden files under testdata/ pin the exact bytes `abacus-repro all`
// prints at a small scale, replacing the manual "compare against a
// pre-change binary" ritual: any change that moves a reported number now
// fails in CI with a line-level diff. After an INTENTIONAL output change,
// regenerate with
//
//	go test ./cmd/abacus-repro -run TestGolden -update
//
// and commit the rewritten files alongside the change that explains them.
var update = flag.Bool("update", false, "rewrite the golden files from current output")

// goldenCases pins both dispatch-layer shapes: the single-device
// evaluation (the -devices 1 default, which must never move unless the
// device model itself changes) and the 8-card cluster sweep (which pins
// the homogeneous single-switch topology byte for byte).
var goldenCases = []struct {
	name    string
	file    string
	devices int
}{
	{"all", "all_scale256.golden", 1},
	{"all-devices8", "all_scale256_devices8.golden", 8},
}

func TestGoldenOutput(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			rc := runConfig{scale: 256, exp: "all", jobs: runtime.GOMAXPROCS(0), devices: tc.devices}
			if err := run(context.Background(), &buf, rc); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("output drifted from %s:\n%s\nIf the change is intentional, regenerate with: go test ./cmd/abacus-repro -run TestGolden -update",
					path, firstDiff(want, buf.Bytes()))
			}
		})
	}
}

// firstDiff renders the first differing line with context, so a golden
// failure names the table that moved instead of dumping 30 KB.
func firstDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d lines, got %d", len(wl), len(gl))
}

// A persistent image store must be invisible in stdout: the cold run that
// fills it and the warm run that decodes every image from it both print
// exactly the committed golden bytes (for both dispatch-layer shapes), and
// the warm run must actually hit the store — otherwise this test would
// pass vacuously with a broken codec that never round-trips.
func TestGoldenImageStore(t *testing.T) {
	if testing.Short() {
		t.Skip("four full renders")
	}
	dir := t.TempDir()
	for _, tc := range goldenCases {
		want, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatalf("%v (run TestGoldenOutput with -update first)", err)
		}
		for _, phase := range []string{"cold", "warm"} {
			t.Run(tc.name+"/"+phase, func(t *testing.T) {
				var buf, stats bytes.Buffer
				rc := runConfig{scale: 256, exp: "all", jobs: runtime.GOMAXPROCS(0), devices: tc.devices,
					imageStore: dir, verbose: true, errw: &stats}
				if err := run(context.Background(), &buf, rc); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("%s output with -image-store drifted from %s:\n%s",
						phase, tc.file, firstDiff(want, buf.Bytes()))
				}
				if phase == "warm" && !strings.Contains(stats.String(), "store") {
					t.Fatalf("missing -v statistics line, got %q", stats.String())
				}
				if phase == "warm" && strings.Contains(stats.String(), "store 0 hits") {
					t.Fatalf("warm run never hit the store: %q", stats.String())
				}
			})
		}
	}
}

// The golden capture must itself be independent of -jobs: a fully
// sequential render produces the same bytes the parallel one does.
func TestGoldenJobsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two full renders")
	}
	var seq, par bytes.Buffer
	if err := run(context.Background(), &seq, runConfig{scale: 256, exp: "all", jobs: 1, devices: 1}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &par, runConfig{scale: 256, exp: "all", jobs: runtime.GOMAXPROCS(0), devices: 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("output depends on -jobs:\n%s", firstDiff(seq.Bytes(), par.Bytes()))
	}
}

// TestGoldenFaults pins the fault-injection study byte for byte: the
// committed cardloss plan run across 4 cards must print exactly the
// committed golden at every -jobs count. Same plan + same seed →
// byte-identical degraded output, which is the whole point of
// deterministic fault injection.
func TestGoldenFaults(t *testing.T) {
	rcFor := func(jobs int) runConfig {
		return runConfig{scale: 64, exp: "faults", jobs: jobs, devices: 4,
			faults: filepath.Join("testdata", "cardloss.plan")}
	}
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, rcFor(runtime.GOMAXPROCS(0))); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "fault_scale64.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("faulted output drifted from %s:\n%s\nIf the change is intentional, regenerate with: go test ./cmd/abacus-repro -run TestGolden -update",
			path, firstDiff(want, buf.Bytes()))
	}
	// The faulted render is -jobs invariant like everything else.
	var seq bytes.Buffer
	if err := run(context.Background(), &seq, rcFor(1)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), want) {
		t.Fatalf("faulted output depends on -jobs:\n%s", firstDiff(want, seq.Bytes()))
	}
}

// The topology sweep renders deterministically at any jobs count too; it
// is not in the golden 'all' files (it is opt-in) but must not flap.
func TestTopologyRenderDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(context.Background(), &a, runConfig{scale: 256, exp: "topology", jobs: 1, devices: 1, topology: true}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &b, runConfig{scale: 256, exp: "topology", jobs: runtime.GOMAXPROCS(0), devices: 1, topology: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("topology output depends on -jobs:\n%s", firstDiff(a.Bytes(), b.Bytes()))
	}
	for _, wantStr := range []string{"Topology scaling", "per-switch utilization"} {
		if !strings.Contains(a.String(), wantStr) {
			t.Errorf("topology render lacks %q", wantStr)
		}
	}
}
