// Package storengine implements the LWP that takes flash management off the
// critical path (paper §4.3 "Storage management"): periodic scratchpad
// journaling to flash and background block reclaim with round-robin victim
// selection, running in parallel with Flashvisor's address translation.
package storengine

import (
	"fmt"

	"repro/internal/flashvisor"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config tunes the background engine.
type Config struct {
	// Enabled switches the dedicated Storengine LWP on. When false, every
	// reclaim happens in Flashvisor's foreground path (the ablation the
	// paper argues against).
	Enabled bool
	// ScanPeriod is the background tick interval.
	ScanPeriod units.Duration
	// GCThreshold is the free-super-block low-water mark that triggers a
	// background reclaim.
	GCThreshold int
	// JournalPeriod is how often the scratchpad mapping snapshot is dumped
	// to flash.
	JournalPeriod units.Duration
	// JournalBytes is the dirty-snapshot size dumped per journal.
	JournalBytes int64
	// Greedy selects the valid-page-count victim policy instead of the
	// paper's round-robin pool (GC-policy ablation).
	Greedy bool
}

// DefaultConfig returns the parameters used by the reproduction runs.
func DefaultConfig() Config {
	return Config{
		Enabled:       true,
		ScanPeriod:    10 * units.Millisecond,
		GCThreshold:   4,
		JournalPeriod: 100 * units.Millisecond,
		JournalBytes:  256 * units.KB,
	}
}

// Stats counts background activity.
type Stats struct {
	Ticks      int64
	BGReclaims int64
	Journals   int64
}

// Engine is the Storengine LWP.
type Engine struct {
	Cfg Config

	eng     *sim.Engine
	visor   *flashvisor.Visor
	cpu     *sim.Resource
	stats   Stats
	stopped bool
	lastJnl sim.Time
	tickFn  func() // e.tick bound once, so rescheduling does not allocate
}

// New builds a Storengine over the visor's FTL and controllers.
func New(cfg Config, eng *sim.Engine, visor *flashvisor.Visor) (*Engine, error) {
	if cfg.Enabled {
		if cfg.ScanPeriod <= 0 || cfg.JournalPeriod <= 0 {
			return nil, fmt.Errorf("storengine: non-positive period in %+v", cfg)
		}
		if cfg.GCThreshold < 1 {
			return nil, fmt.Errorf("storengine: GC threshold %d < 1", cfg.GCThreshold)
		}
	}
	e := &Engine{Cfg: cfg, eng: eng, visor: visor, cpu: sim.NewResource("storengine-lwp")}
	e.tickFn = e.tick
	return e, nil
}

// Start schedules the periodic background scan. It is a no-op when the
// engine is disabled.
func (e *Engine) Start() {
	if !e.Cfg.Enabled {
		return
	}
	e.eng.After(e.Cfg.ScanPeriod, e.tickFn)
}

// Stop halts rescheduling; an in-flight tick completes harmlessly.
func (e *Engine) Stop() { e.stopped = true }

// Stats returns a copy of the activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// CPUBusy returns the Storengine LWP occupancy (it is charged as an
// always-powered core in the energy model, per §5.3).
func (e *Engine) CPUBusy() units.Duration { return e.cpu.Busy() }

func (e *Engine) tick() {
	if e.stopped {
		return
	}
	e.stats.Ticks++
	now := e.eng.Now()

	// Reclaim from the beginning of the used pool toward the end, one
	// victim per tick, whenever the free pool runs low.
	if e.visor.FTL.FreeSuperBlocks() < e.Cfg.GCThreshold && e.visor.FTL.UsedSuperBlocks() > 0 {
		if _, err := e.visor.Reclaim(now, e.cpu, e.Cfg.Greedy); err == nil {
			e.stats.BGReclaims++
		}
	}

	// Periodic metadata journaling: dump the dirty scratchpad snapshot.
	if now-e.lastJnl >= e.Cfg.JournalPeriod {
		e.lastJnl = now
		e.journal(now)
	}

	e.eng.After(e.Cfg.ScanPeriod, e.tickFn)
}

// journal charges the scratchpad read and the flash programs for one
// snapshot dump on Storengine's own time.
func (e *Engine) journal(at sim.Time) {
	_, t := e.cpu.Reserve(at, 20*units.Microsecond) // snapshot assembly
	done := e.visor.JournalSnapshot(t, e.Cfg.JournalBytes)
	_ = done
	e.stats.Journals++
}
