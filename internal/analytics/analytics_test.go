package analytics

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kdt"
	"repro/internal/kernel"
	"repro/internal/units"
)

func TestBFSLevels(t *testing.T) {
	// A 4-cycle: levels from vertex 0 are 0,1,2,1.
	n := 4
	adj := make([]byte, n*n)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	for _, e := range edges {
		adj[e[0]*n+e[1]] = 1
		adj[e[1]*n+e[0]] = 1
	}
	out, err := bfsRun(uint32(n), adj)
	if err != nil {
		t.Fatal(err)
	}
	lv := kernel.BytesToF32(out)
	want := []float32{0, 1, 2, 1}
	for i := range want {
		if lv[i] != want[i] {
			t.Errorf("level[%d] = %v, want %v", i, lv[i], want[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	out, err := bfsRun(3, make([]byte, 9)) // no edges
	if err != nil {
		t.Fatal(err)
	}
	lv := kernel.BytesToF32(out)
	if lv[0] != 0 || lv[1] != -1 || lv[2] != -1 {
		t.Errorf("levels = %v", lv)
	}
}

func TestBFSGeneratedGraphConnected(t *testing.T) {
	n := 64
	in, _ := Input("bfs", n)
	out, err := bfsRun(uint32(n), in)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range kernel.BytesToF32(out) {
		if l < 0 {
			t.Fatalf("vertex %d unreachable in ring-based graph", i)
		}
	}
}

func TestWordCount(t *testing.T) {
	out, err := wcRun(0, []byte("the cat and the dog and the bird"))
	if err != nil {
		t.Fatal(err)
	}
	counts := kernel.BytesToF32(out)
	var total float32
	for _, c := range counts {
		total += c
	}
	if total != 8 {
		t.Errorf("total words = %v, want 8", total)
	}
	// Same word hashes to the same bucket: "the" appears 3 times, so some
	// bucket holds at least 3.
	var max float32
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3 {
		t.Errorf("max bucket = %v, want >= 3 (three 'the')", max)
	}
}

func TestWordCountEdges(t *testing.T) {
	for _, text := range []string{"", "   ", "word", " lead trail "} {
		out, err := wcRun(0, []byte(text))
		if err != nil {
			t.Fatal(err)
		}
		var total float32
		for _, c := range kernel.BytesToF32(out) {
			total += c
		}
		want := float32(len(strings.Fields(text)))
		if total != want {
			t.Errorf("%q: total = %v, want %v", text, total, want)
		}
	}
}

func TestNNDistancesSortedAndCorrect(t *testing.T) {
	m := 32
	in, _ := Input("nn", m)
	out, err := nnRun(uint32(m), in)
	if err != nil {
		t.Fatal(err)
	}
	dists := kernel.BytesToF32(out)
	if len(dists) != 8 {
		t.Fatalf("k = %d, want 8", len(dists))
	}
	for i := 1; i < len(dists); i++ {
		if dists[i] < dists[i-1] {
			t.Fatal("distances not ascending")
		}
	}
	// Verify the minimum against a direct scan.
	vals := kernel.BytesToF32(in)
	q := vals[m*nnDim:]
	best := math.Inf(1)
	for i := 0; i < m; i++ {
		var s float64
		for d := 0; d < nnDim; d++ {
			diff := float64(vals[i*nnDim+d] - q[d])
			s += diff * diff
		}
		if s := math.Sqrt(s); s < best {
			best = s
		}
	}
	if math.Abs(float64(dists[0])-best) > 1e-5 {
		t.Errorf("nearest = %v, want %v", dists[0], best)
	}
}

func TestNWKnownAlignment(t *testing.T) {
	// Identical sequences: score = n × match = n.
	n := 6
	in := make([]byte, 2*n)
	for i := 0; i < n; i++ {
		in[i] = byte(i % 4)
		in[n+i] = byte(i % 4)
	}
	out, err := nwRun(uint32(n), in)
	if err != nil {
		t.Fatal(err)
	}
	row := kernel.BytesToF32(out)
	if row[n] != float32(n) {
		t.Errorf("identical-sequence score = %v, want %d", row[n], n)
	}
	// Completely different short sequences score the mismatch diagonal.
	in2 := []byte{0, 0, 1, 1}
	out2, _ := nwRun(2, in2)
	row2 := kernel.BytesToF32(out2)
	if row2[2] != -2 {
		t.Errorf("mismatch score = %v, want -2", row2[2])
	}
}

func TestPathfinderMinimalPath(t *testing.T) {
	// 3x3 grid with an obvious cheap column.
	grid := []float32{
		1, 9, 9,
		9, 1, 9,
		9, 9, 1,
	}
	out, err := pathRun(3<<16|3, kernel.F32ToBytes(grid))
	if err != nil {
		t.Fatal(err)
	}
	cost := kernel.BytesToF32(out)
	// The diagonal 1+1+1 = 3 is reachable since steps may move ±1 column.
	if cost[2] != 3 {
		t.Errorf("min path cost = %v, want 3", cost[2])
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := bfsRun(10, make([]byte, 5)); err == nil {
		t.Error("short bfs input accepted")
	}
	if _, err := nnRun(100, make([]byte, 8)); err == nil {
		t.Error("short nn input accepted")
	}
	if _, err := nwRun(100, make([]byte, 8)); err == nil {
		t.Error("short nw input accepted")
	}
	if _, err := pathRun(8<<16|8, make([]byte, 8)); err == nil {
		t.Error("short path input accepted")
	}
	if _, err := Input("nope", 8); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Reference("nope", 8, nil); err == nil {
		t.Error("unknown reference accepted")
	}
	if _, _, _, err := App("nope", 8, 0, 0); err == nil {
		t.Error("unknown app builder accepted")
	}
}

// TestEveryAppThroughDevice runs each analytics application end to end on
// the device and compares flash output with the direct reference.
func TestEveryAppThroughDevice(t *testing.T) {
	const n = 32
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := core.DefaultConfig(core.IntraO3)
			cfg.Functional = true
			d, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			outAddr := int64(1 * units.GB)
			tab, input, outBytes, err := App(name, n, 0, outAddr)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.PopulateInput(0, int64(len(input)), input); err != nil {
				t.Fatal(err)
			}
			if err := d.OffloadApp(name, []*kdt.Table{tab}); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			got, err := d.Visor().ReadBytes(outAddr, outBytes)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Reference(name, n, input)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("output %d bytes, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("flash output differs at byte %d", i)
				}
			}
		})
	}
}
