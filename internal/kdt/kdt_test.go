package kdt

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleTable() *Table {
	return &Table{
		Name:     "atax",
		AppID:    3,
		KernelID: 17,
		Sections: DefaultSections(1024, 640<<20),
		Microblocks: []Microblock{
			{Screens: []Screen{
				{Ops: []Op{
					{Kind: OpRead, Section: 1, FlashAddr: 0, Bytes: 320 << 20},
					{Kind: OpCompute, Instr: 1e9, MulMilli: 150, LdStMilli: 456},
					{Kind: OpExec, Section: 1, Builtin: 7, Arg: 42},
					{Kind: OpWrite, Section: 1, FlashAddr: 1 << 30, Bytes: 16 << 20},
				}},
				{Ops: []Op{
					{Kind: OpRead, Section: 1, FlashAddr: 320 << 20, Bytes: 320 << 20},
					{Kind: OpCompute, Instr: 1e9, MulMilli: 150, LdStMilli: 456},
				}},
			}},
			{Screens: []Screen{
				{Ops: []Op{{Kind: OpCompute, Instr: 5e8, LdStMilli: 300}}},
			}},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleTable()
	blob, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || got.AppID != want.AppID || got.KernelID != want.KernelID {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Sections) != len(want.Sections) {
		t.Fatalf("sections = %d, want %d", len(got.Sections), len(want.Sections))
	}
	for i := range want.Sections {
		if got.Sections[i] != want.Sections[i] {
			t.Errorf("section %d = %+v, want %+v", i, got.Sections[i], want.Sections[i])
		}
	}
	if len(got.Microblocks) != len(want.Microblocks) {
		t.Fatalf("microblocks = %d", len(got.Microblocks))
	}
	for i := range want.Microblocks {
		ws, gs := want.Microblocks[i].Screens, got.Microblocks[i].Screens
		if len(ws) != len(gs) {
			t.Fatalf("mb %d screens = %d, want %d", i, len(gs), len(ws))
		}
		for j := range ws {
			if len(ws[j].Ops) != len(gs[j].Ops) {
				t.Fatalf("mb %d screen %d ops mismatch", i, j)
			}
			for k := range ws[j].Ops {
				if ws[j].Ops[k] != gs[j].Ops[k] {
					t.Errorf("op %d/%d/%d = %+v, want %+v", i, j, k, gs[j].Ops[k], ws[j].Ops[k])
				}
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	blob, err := sampleTable().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 5, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0xFF
		if _, err := Decode(bad); err == nil {
			t.Errorf("corruption at byte %d accepted", off)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	blob, _ := sampleTable().Encode()
	for _, n := range []int{0, 3, 10, len(blob) - 5} {
		if _, err := Decode(blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	blob, _ := sampleTable().Encode()
	// Valid CRC over extended body will not match; craft instead a blob
	// with junk between body and CRC by re-encoding with appended bytes.
	bad := append([]byte(nil), blob...)
	bad = append(bad, 0xEE)
	if _, err := Decode(bad); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestValidateCatchesBadKernels(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Table)
		want   string
	}{
		{"empty name", func(t *Table) { t.Name = "" }, "no name"},
		{"no microblocks", func(t *Table) { t.Microblocks = nil }, "no microblocks"},
		{"empty screen", func(t *Table) { t.Microblocks[0].Screens[0].Ops = nil }, "empty"},
		{"zero-byte read", func(t *Table) { t.Microblocks[0].Screens[0].Ops[0].Bytes = 0 }, "non-positive byte"},
		{"negative flash addr", func(t *Table) { t.Microblocks[0].Screens[0].Ops[0].FlashAddr = -1 }, "negative flash"},
		{"zero instr", func(t *Table) { t.Microblocks[0].Screens[0].Ops[1].Instr = 0 }, "non-positive instruction"},
		{"mix over 1000", func(t *Table) { t.Microblocks[0].Screens[0].Ops[1].MulMilli = 900 }, "exceeds 1000"},
		{"builtin zero", func(t *Table) { t.Microblocks[0].Screens[0].Ops[2].Builtin = 0 }, "reserved builtin"},
		{"bad kind", func(t *Table) { t.Microblocks[0].Screens[0].Ops[0].Kind = 99 }, "unknown op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := sampleTable()
			tc.mutate(tab)
			err := tab.Validate()
			if err == nil {
				t.Fatal("validation passed")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSerialMicroblock(t *testing.T) {
	tab := sampleTable()
	if tab.Microblocks[0].Serial() {
		t.Error("two-screen microblock reported serial")
	}
	if !tab.Microblocks[1].Serial() {
		t.Error("one-screen microblock not reported serial")
	}
}

func TestTextSize(t *testing.T) {
	tab := sampleTable()
	if got := tab.TextSize(); got != 7*opWireSize {
		t.Errorf("TextSize = %d, want %d", got, 7*opWireSize)
	}
}

func TestDefaultSectionsLayout(t *testing.T) {
	secs := DefaultSections(100, 640<<20)
	if len(secs) != 4 {
		t.Fatalf("sections = %d, want 4", len(secs))
	}
	byName := map[string]Section{}
	for _, s := range secs {
		byName[s.Name] = s
	}
	// All addresses except the data section point into L2 (paper §4).
	const l2Base, l2End = 0x0080_0000, 0x0090_0000
	for _, n := range []string{SecText, SecHeap, SecStak} {
		s := byName[n]
		if s.Addr < l2Base || s.Addr >= l2End {
			t.Errorf("section %s at %#x, want inside L2 window", n, s.Addr)
		}
	}
	if byName[SecData].Addr < l2End {
		t.Error("data section should live outside L2 (DDR3L)")
	}
	if byName[SecData].Size != 640<<20 {
		t.Error("data section size not propagated")
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "READ" || OpWrite.String() != "WRITE" ||
		OpCompute.String() != "COMPUTE" || OpExec.String() != "EXEC" {
		t.Error("op kind strings wrong")
	}
	if OpKind(99).String() != "op(99)" {
		t.Error("unknown kind string wrong")
	}
}

func TestQuickRoundTripArbitraryOps(t *testing.T) {
	f := func(instr uint32, bytes uint32, mul, ld uint8, builtin uint16, arg uint32) bool {
		op := Op{
			Kind:      OpCompute,
			Instr:     int64(instr) + 1,
			MulMilli:  uint16(mul) % 500,
			LdStMilli: uint16(ld) % 500,
		}
		rw := Op{Kind: OpRead, Section: 1, FlashAddr: int64(arg), Bytes: int64(bytes) + 1}
		ex := Op{Kind: OpExec, Builtin: builtin | 1, Arg: arg}
		tab := &Table{
			Name:        "q",
			Microblocks: []Microblock{{Screens: []Screen{{Ops: []Op{op, rw, ex}}}}},
		}
		blob, err := tab.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(blob)
		if err != nil {
			return false
		}
		o := got.Microblocks[0].Screens[0].Ops
		return o[0] == op && o[1] == rw && o[2] == ex
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	tab := sampleTable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	blob, _ := sampleTable().Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}
