// Package sched implements the accelerator's five execution governors: the
// paper's four self-governing schedulers — static inter-kernel (InterSt),
// dynamic inter-kernel (InterDy), in-order intra-kernel (IntraIo), and
// out-of-order intra-kernel (IntraO3) — plus the conventional OpenMP-style
// SIMD executor used as the baseline (§4.1, §4.2, §5 "Accelerators").
package sched

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Context is the device surface a scheduler drives. Dispatch hands a screen
// to a worker; the core calls Kick again on every completion or arrival.
type Context interface {
	Now() sim.Time
	Workers() int
	// Free reports whether worker w has no screen in flight.
	Free(w int) bool
	// Dispatch begins executing s on worker w. The screen must be pending
	// and the worker free.
	Dispatch(s *kernel.Screen, w int)
	Chain() *kernel.Chain
}

// Scheduler decides which pending screens run where. Kick must be
// idempotent: the core invokes it after every state change, and the
// scheduler dispatches as much ready work as workers allow.
type Scheduler interface {
	Name() string
	Kick(ctx Context)
}

// New returns the named scheduler. Valid names are "InterSt", "InterDy",
// "IntraIo", "IntraO3", and "SIMD".
func New(name string) (Scheduler, error) {
	switch name {
	case "InterSt":
		return &interSt{}, nil
	case "InterDy":
		return &interDy{claimed: map[int]*kernel.Kernel{}}, nil
	case "IntraIo":
		return &intra{name: "IntraIo", policy: kernel.InOrder}, nil
	case "IntraO3":
		return &intra{name: "IntraO3", policy: kernel.OutOfOrder}, nil
	case "SIMD":
		return &simd{}, nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q", name)
	}
}

// nextScreen returns the next pending screen of k in (microblock, screen)
// order, or nil if none is dispatchable. Inter-kernel schedulers execute a
// kernel as a single instruction stream, so at most one screen of k runs at
// a time and microblock order is automatically respected.
func nextScreen(k *kernel.Kernel) *kernel.Screen {
	for _, mb := range k.MBs {
		if mb.Done() {
			continue
		}
		for _, s := range mb.Screens {
			switch s.Status {
			case kernel.Running:
				return nil // stream busy
			case kernel.Pending:
				return s
			}
		}
		return nil // all dispatched, awaiting completion
	}
	return nil
}

// interSt statically binds every kernel of an application to LWP
// (appID mod workers), as in Fig. 5a where App0 and App2 own LWP0 and LWP2.
type interSt struct{}

func (*interSt) Name() string { return "InterSt" }

func (*interSt) Kick(ctx Context) {
	for _, a := range ctx.Chain().Apps {
		w := a.ID % ctx.Workers()
		if !ctx.Free(w) {
			continue
		}
		for _, k := range a.Kernels {
			if k.Done() {
				continue
			}
			if s := nextScreen(k); s != nil {
				ctx.Dispatch(s, w)
			}
			break // one stream per LWP; later kernels wait
		}
	}
}

// interDy hands the next queued kernel to any free LWP and keeps it there
// until it completes (Fig. 5c); the completion notification through the
// hardware queue lets Flashvisor assign the next kernel immediately.
type interDy struct {
	claimed map[int]*kernel.Kernel // worker -> kernel in flight
}

func (*interDy) Name() string { return "InterDy" }

func (d *interDy) Kick(ctx Context) {
	for w := 0; w < ctx.Workers(); w++ {
		if !ctx.Free(w) {
			continue
		}
		k := d.claimed[w]
		if k != nil && k.Done() {
			k = nil
		}
		if k == nil {
			k = d.claimNext(ctx)
			if k == nil {
				continue
			}
			d.claimed[w] = k
		}
		if s := nextScreen(k); s != nil {
			ctx.Dispatch(s, w)
		}
	}
}

func (d *interDy) claimNext(ctx Context) *kernel.Kernel {
	for _, a := range ctx.Chain().Apps {
		for _, k := range a.Kernels {
			if !k.Done() && !d.taken(k) {
				return k
			}
		}
	}
	return nil
}

// taken reports whether another worker already owns k. The claim map is at
// most one entry per worker, so a scan beats building a set on every kick.
func (d *interDy) taken(k *kernel.Kernel) bool {
	for _, c := range d.claimed {
		if c == k && !c.Done() {
			return true
		}
	}
	return false
}

// intra implements both intra-kernel schedulers: screens of ready
// microblocks spread across free LWPs. The policy decides how far ahead the
// multi-app execution chain may be mined — IntraIo stops at each app's
// oldest incomplete kernel, IntraO3 borrows screens from any microblock
// whose intra-kernel predecessor has completed (Fig. 7).
type intra struct {
	name   string
	policy kernel.Policy
	ready  []*kernel.Screen // scratch, reused between kicks
}

func (s *intra) Name() string { return s.name }

func (s *intra) Kick(ctx Context) {
	s.ready = ctx.Chain().Ready(s.policy, s.ready[:0])
	if len(s.ready) == 0 {
		return
	}
	i := 0
	for w := 0; w < ctx.Workers() && i < len(s.ready); w++ {
		if !ctx.Free(w) {
			continue
		}
		ctx.Dispatch(s.ready[i], w)
		i++
	}
}

// simd is the conventional baseline: one kernel at a time in issue order,
// its parallel microblocks split across all LWPs OpenMP-style, serial
// microblocks on a single LWP, with every byte fetched through the host.
type simd struct {
	ready []*kernel.Screen
}

func (*simd) Name() string { return "SIMD" }

func (s *simd) Kick(ctx Context) {
	var active *kernel.Kernel
outer:
	for _, a := range ctx.Chain().Apps {
		for _, k := range a.Kernels {
			if !k.Done() {
				active = k
				break outer
			}
		}
	}
	if active == nil {
		return
	}
	s.ready = s.ready[:0]
	for _, mb := range active.MBs {
		if mb.Done() {
			continue
		}
		for _, scr := range mb.Screens {
			if scr.Status == kernel.Pending {
				s.ready = append(s.ready, scr)
			}
		}
		break
	}
	i := 0
	for w := 0; w < ctx.Workers() && i < len(s.ready); w++ {
		if !ctx.Free(w) {
			continue
		}
		ctx.Dispatch(s.ready[i], w)
		i++
	}
}
