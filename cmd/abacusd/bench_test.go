package main

import (
	"context"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	flashabacus "repro"
)

// BenchmarkServeThroughput measures the service path end to end: N
// concurrent clients pushing submit→result round trips of the instant
// t1 experiment through a real HTTP stack, so the cost under test is
// admission, scheduling, journal-free dispatch, and result delivery —
// not simulation. Reports jobs/sec and the p99 round-trip latency.
func BenchmarkServeThroughput(b *testing.B) {
	const clients = 4
	svc := flashabacus.NewService(flashabacus.ServiceConfig{
		Workers: runtime.GOMAXPROCS(0), QueueDepth: 4 * clients, RetainJobs: 8 * clients,
	})
	hs := httptest.NewServer(svc)
	defer func() {
		svc.Close()
		hs.Close()
	}()

	work := make(chan int)
	lat := make([]time.Duration, b.N)
	names := [clients]string{"c0", "c1", "c2", "c3"}
	var wg sync.WaitGroup
	ctx := context.Background()

	b.ResetTimer()
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			c := flashabacus.NewServiceClient(hs.URL, name)
			for i := range work {
				t0 := time.Now()
				st, err := c.Submit(ctx, flashabacus.JobRequest{Experiment: "t1", Client: name})
				if err == nil {
					_, err = c.Result(ctx, st.ID)
				}
				if err != nil {
					b.Error(err)
					continue // keep draining so the producer never blocks
				}
				lat[i] = time.Since(t0)
			}
		}(names[w])
	}
	for i := 0; i < b.N; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[(len(lat)*99)/100]
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "jobs/s")
	b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
}
