package units

import (
	"testing"
	"testing/quick"
)

func TestDurationFor(t *testing.T) {
	tests := []struct {
		name  string
		bw    Bandwidth
		bytes int64
		want  Duration
	}{
		{"1GBps moves 1GB in 1s", GBps, GB, Second},
		{"1GBps moves 1 byte in 1ns", GBps, 1, 1},
		{"zero bytes take zero time", GBps, 0, 0},
		{"negative bytes take zero time", GBps, -5, 0},
		{"800MBps moves 8KB in ~10us", 800 * MBps, 8 * KB, 9766}, // ceil(8192e9/838860800)
		{"rounds up", 3, 1, Second/3 + 1},                        // 1 byte at 3 B/s = 333333333.33ns -> 333333334
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.bw.DurationFor(tt.bytes); got != tt.want {
				t.Errorf("DurationFor(%d) = %d, want %d", tt.bytes, got, tt.want)
			}
		})
	}
}

func TestDurationForPanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bandwidth")
		}
	}()
	Bandwidth(0).DurationFor(1)
}

func TestDurationForNeverZeroForPositiveBytes(t *testing.T) {
	f := func(bw uint32, n uint16) bool {
		b := Bandwidth(bw%uint32(100*GBps/1000)*1000 + 1)
		bytes := int64(n) + 1
		return b.DurationFor(bytes) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationForIsMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		bw := 800 * MBps
		return bw.DurationFor(x) <= bw.DurationFor(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesInRoundTrip(t *testing.T) {
	// Moving the bytes that fit in d must not take longer than d (within
	// one rounding step).
	f := func(ms uint16) bool {
		d := Duration(ms) * Millisecond
		bw := Bandwidth(3200 * MBps)
		n := bw.BytesIn(d)
		return bw.DurationFor(n) <= d+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCycles(t *testing.T) {
	if got := Cycles(1000, 1e9); got != 1000 {
		t.Errorf("1000 cycles at 1GHz = %d ns, want 1000", got)
	}
	if got := Cycles(500, 500e6); got != 1000 {
		t.Errorf("500 cycles at 500MHz = %d ns, want 1000", got)
	}
	if got := Cycles(1, 3e9); got != 1 {
		t.Errorf("1 cycle at 3GHz = %d ns, want 1 (round up)", got)
	}
}

func TestSecondsConversion(t *testing.T) {
	if s := Seconds(2500 * Millisecond); s != 2.5 {
		t.Errorf("Seconds = %v, want 2.5", s)
	}
	if d := FromSeconds(0.000081); d != 81*Microsecond {
		t.Errorf("FromSeconds = %v, want 81us", d)
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{8 * KB, "8.0KB"},
		{640 * MB, "640.0MB"},
		{32 * GB, "32.0GB"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.n); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	tests := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{81 * Microsecond, "81.0us"},
		{2600 * Microsecond, "2.60ms"},
		{1500 * Millisecond, "1.500s"},
	}
	for _, tt := range tests {
		if got := FormatDuration(tt.d); got != tt.want {
			t.Errorf("FormatDuration(%d) = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	tests := []struct{ a, b, want int64 }{
		{0, 4, 0},
		{1, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{-3, 4, 0},
	}
	for _, tt := range tests {
		if got := CeilDiv(tt.a, tt.b); got != tt.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMinMaxTime(t *testing.T) {
	if MaxTime(3, 5) != 5 || MaxTime(5, 3) != 5 {
		t.Error("MaxTime wrong")
	}
	if MinTime(3, 5) != 3 || MinTime(5, 3) != 3 {
		t.Error("MinTime wrong")
	}
}
