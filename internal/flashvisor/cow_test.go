package flashvisor

import (
	"testing"

	"repro/internal/flash"
)

func TestCow32ZeroDefaultAndRoundTrip(t *testing.T) {
	const n = 3*cowSegSize + 17 // deliberately not segment-aligned
	c := newCow32(n)
	for _, i := range []int64{0, 1, cowSegSize - 1, cowSegSize, n - 1} {
		if got := c.at(i); got != 0 {
			t.Fatalf("fresh array at(%d) = %d, want 0", i, got)
		}
	}
	c.set(0, 5)
	c.set(cowSegSize, 7)
	c.set(n-1, 9)
	for i, want := range map[int64]int32{0: 5, cowSegSize: 7, n - 1: 9, 1: 0, cowSegSize - 1: 0} {
		if got := c.at(i); got != want {
			t.Errorf("at(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestCow32SnapshotForkIsolation(t *testing.T) {
	const n = 2 * cowSegSize
	parent := newCow32(n)
	parent.set(3, 30)
	parent.set(cowSegSize+1, 40)

	view := parent.snapshot()
	forkA := view.fork()
	forkB := view.fork()

	// Writes on either side of the snapshot stay private.
	parent.set(3, 31)
	forkA.set(3, 32)
	forkA.set(7, 70)
	forkB.set(cowSegSize+1, 41)

	cases := []struct {
		name string
		c    *cow32
		want map[int64]int32
	}{
		{"parent", &parent, map[int64]int32{3: 31, 7: 0, cowSegSize + 1: 40}},
		{"forkA", &forkA, map[int64]int32{3: 32, 7: 70, cowSegSize + 1: 40}},
		{"forkB", &forkB, map[int64]int32{3: 30, 7: 0, cowSegSize + 1: 41}},
	}
	for _, tc := range cases {
		for i, want := range tc.want {
			if got := tc.c.at(i); got != want {
				t.Errorf("%s.at(%d) = %d, want %d", tc.name, i, got, want)
			}
		}
	}
	// A fresh fork of the original view still reads the frozen state.
	late := view.fork()
	if got := late.at(3); got != 30 {
		t.Errorf("late fork at(3) = %d, want frozen 30", got)
	}
}

// TestFTLForkIndependentAllocation forks a populated FTL twice and drives
// both forks (and the parent) through allocation/commit/reclaim storms:
// every replica must stay self-consistent, and the parent's mappings must
// be unaffected by fork activity.
func TestFTLForkIndependentAllocation(t *testing.T) {
	geo := smallGeo()
	f, err := NewFTL(geo, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	seed := f.LogicalGroups() / 4
	for lg := int64(0); lg < seed; lg++ {
		pg, _, err := f.Alloc(false)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Commit(lg, pg); err != nil {
			t.Fatal(err)
		}
	}
	img := f.Snapshot()

	baseline := make([]flash.PhysGroup, seed)
	for lg := int64(0); lg < seed; lg++ {
		pg, ok := f.Lookup(lg)
		if !ok {
			t.Fatalf("seeded group %d unmapped", lg)
		}
		baseline[lg] = pg
	}

	churn := func(t *testing.T, r *FTL, salt int64) {
		t.Helper()
		// Overwrite a window (invalidates + remaps) and extend the log.
		for lg := salt; lg < salt+seed/2; lg++ {
			pg, _, err := r.Alloc(false)
			if err == ErrNoSpace {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Commit(lg%r.LogicalGroups(), pg); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
	}
	forkA := NewFTLFromImage(img)
	forkB := NewFTLFromImage(img)
	churn(t, forkA, 0)
	churn(t, forkB, 7)
	churn(t, f, 3)

	// A fresh fork still sees exactly the snapshotted mappings.
	late := NewFTLFromImage(img)
	if err := late.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for lg := int64(0); lg < seed; lg++ {
		pg, ok := late.Lookup(lg)
		if !ok || pg != baseline[lg] {
			t.Fatalf("image mapping for group %d changed: got (%d,%v), want %d", lg, pg, ok, baseline[lg])
		}
	}
	if n := late.FreeSuperBlocks(); n != img.freeSBsTotal() {
		t.Errorf("image free pool drifted: %d", n)
	}
}

// freeSBsTotal counts the image's free pool for drift checks.
func (img *FTLImage) freeSBsTotal() int {
	n := 0
	for _, p := range img.freeSBs {
		n += len(p)
	}
	return n
}

// TestFTLForkMatchesFreshReplay pins fork fidelity the strong way: an FTL
// forked from a fresh format behaves operation-for-operation identically
// to a second fresh format driven through the same sequence.
func TestFTLForkMatchesFreshReplay(t *testing.T) {
	geo := smallGeo()
	fresh, err := NewFTL(geo, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewFTL(geo, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	fork := NewFTLFromImage(base.Snapshot())

	for step := 0; step < 3*int(fresh.LogicalGroups()); step++ {
		lg := int64(step*13) % fresh.LogicalGroups()
		pgF, rolledF, errF := fresh.Alloc(false)
		pgK, rolledK, errK := fork.Alloc(false)
		if (errF == nil) != (errK == nil) || rolledF != rolledK || (errF == nil && pgF != pgK) {
			t.Fatalf("step %d diverged: fresh (%d,%v,%v) fork (%d,%v,%v)", step, pgF, rolledF, errF, pgK, rolledK, errK)
		}
		if errF == ErrNoSpace {
			vF, okF := fresh.VictimRoundRobin()
			vK, okK := fork.VictimRoundRobin()
			if vF != vK || okF != okK {
				t.Fatalf("step %d victim diverged", step)
			}
			if okF {
				reclaim(t, fresh, vF)
				reclaim(t, fork, vK)
			}
			continue
		}
		if err := fresh.Commit(lg, pgF); err != nil {
			t.Fatal(err)
		}
		if err := fork.Commit(lg, pgK); err != nil {
			t.Fatal(err)
		}
	}
	if err := fresh.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := fork.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for lg := int64(0); lg < fresh.LogicalGroups(); lg++ {
		pf, okf := fresh.Lookup(lg)
		pk, okk := fork.Lookup(lg)
		if pf != pk || okf != okk {
			t.Fatalf("final mapping of group %d diverged: fresh (%d,%v) fork (%d,%v)", lg, pf, okf, pk, okk)
		}
	}
}

// reclaim migrates a victim's valid groups and releases it — the FTL side
// of Visor.Reclaim without the timing model.
func reclaim(t *testing.T, f *FTL, sb flash.SuperBlock) {
	t.Helper()
	for _, pair := range f.ValidGroups(sb) {
		dst, _, err := f.Alloc(true)
		if err != nil {
			t.Fatal(err)
		}
		f.Retarget(pair.Logical, dst)
		_ = pair.Phys
	}
	f.Release(sb)
}
