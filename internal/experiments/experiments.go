// Package experiments contains one driver per table and figure of the
// paper's evaluation (§3.1 and §5). cmd/abacus-repro, bench_test.go, and
// EXPERIMENTS.md all regenerate their numbers through these functions, so
// every reported row has exactly one source.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// Suite runs and caches the evaluation's device runs at one scale. Scale
// divides the Table 2 input sizes: 1 reproduces paper-scale data volumes,
// larger values shrink runs for tests and benches.
type Suite struct {
	Scale int64

	homog map[string]map[core.System]*stats.Result
	het   map[int]map[core.System]*stats.Result
	big   map[string]map[core.System]*stats.Result
}

// NewSuite returns an empty suite at the given scale.
func NewSuite(scale int64) *Suite {
	if scale < 1 {
		scale = 1
	}
	return &Suite{
		Scale: scale,
		homog: map[string]map[core.System]*stats.Result{},
		het:   map[int]map[core.System]*stats.Result{},
		big:   map[string]map[core.System]*stats.Result{},
	}
}

func (s *Suite) opts() workload.Options {
	o := workload.DefaultOptions()
	o.Scale = s.Scale
	return o
}

// RunBundle executes a workload bundle on one system configuration.
func RunBundle(sys core.System, b *workload.Bundle, series bool) (*stats.Result, error) {
	cfg := core.DefaultConfig(sys)
	cfg.CollectSeries = series
	d, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range b.Populate {
		if err := d.PopulateInput(r.Addr, r.Bytes, nil); err != nil {
			return nil, fmt.Errorf("%s/%s: populate: %w", b.Name, sys, err)
		}
	}
	for _, app := range b.Apps {
		if err := d.OffloadApp(app.Name, app.Tables); err != nil {
			return nil, fmt.Errorf("%s/%s: offload: %w", b.Name, sys, err)
		}
	}
	res, err := d.Run()
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", b.Name, sys, err)
	}
	res.Workload = b.Name
	return res, nil
}

// Homogeneous returns (running and caching) the result for one Table 2
// application on one system.
func (s *Suite) Homogeneous(name string, sys core.System) (*stats.Result, error) {
	if m := s.homog[name]; m != nil && m[sys] != nil {
		return m[sys], nil
	}
	b, err := workload.Homogeneous(name, s.opts())
	if err != nil {
		return nil, err
	}
	res, err := RunBundle(sys, b, false)
	if err != nil {
		return nil, err
	}
	if s.homog[name] == nil {
		s.homog[name] = map[core.System]*stats.Result{}
	}
	s.homog[name][sys] = res
	return res, nil
}

// Heterogeneous returns the cached result for mix MXn on one system.
func (s *Suite) Heterogeneous(n int, sys core.System) (*stats.Result, error) {
	if m := s.het[n]; m != nil && m[sys] != nil {
		return m[sys], nil
	}
	b, err := workload.Mix(n, s.opts())
	if err != nil {
		return nil, err
	}
	res, err := RunBundle(sys, b, false)
	if err != nil {
		return nil, err
	}
	if s.het[n] == nil {
		s.het[n] = map[core.System]*stats.Result{}
	}
	s.het[n][sys] = res
	return res, nil
}

// Bigdata returns the cached result for a §5.6 application on one system.
func (s *Suite) Bigdata(name string, sys core.System) (*stats.Result, error) {
	if m := s.big[name]; m != nil && m[sys] != nil {
		return m[sys], nil
	}
	b, err := workload.Homogeneous(name, s.opts())
	if err != nil {
		return nil, err
	}
	res, err := RunBundle(sys, b, false)
	if err != nil {
		return nil, err
	}
	if s.big[name] == nil {
		s.big[name] = map[core.System]*stats.Result{}
	}
	s.big[name][sys] = res
	return res, nil
}

// Table1 renders the hardware specification (Table 1).
func Table1() *report.Table {
	cfg := core.DefaultConfig(core.IntraO3)
	t := &report.Table{Title: "Table 1: hardware specification",
		Header: []string{"component", "specification", "frequency", "power", "est. B/W"}}
	t.Add("LWP", fmt.Sprintf("%d processors", cfg.LWPs), "1GHz",
		fmt.Sprintf("%.1fW/core", cfg.Rates.LWPActive), "16GB/s")
	t.Add("L1/L2 cache", "64KB/512KB", "500MHz", "-", "16GB/s")
	t.Add("Scratchpad", "4MB", "500MHz", "-", "16GB/s")
	t.Add("Memory", "DDR3L, 1GB", "800MHz", fmt.Sprintf("%.1fW", cfg.Rates.DDR3L), "6.4GB/s")
	t.Add("SSD", fmt.Sprintf("%d dies, %s", cfg.Flash.Channels*cfg.Flash.DieRows(),
		units.FormatBytes(cfg.Flash.Capacity())), "200MHz",
		fmt.Sprintf("%.0fW", cfg.Rates.Backbone), "3.2GB/s")
	t.Add("PCIe", "v2.0, 2 lanes", "5GHz", fmt.Sprintf("%.2fW", cfg.Rates.PCIe), "1GB/s")
	t.Add("Tier-1 crossbar", "256 lanes", "500MHz", "-", "16GB/s")
	t.Add("Tier-2 crossbar", "128 lanes", "333MHz", "-", "5.2GB/s")
	return t
}

// Table2 renders the workload characteristics (Table 2).
func Table2() *report.Table {
	t := &report.Table{Title: "Table 2: workload characteristics",
		Header: []string{"name", "description", "MBLKs", "serial", "input(MB)", "LD/ST%", "B/KI", "class"}}
	for _, s := range workload.Specs() {
		class := "compute-intensive"
		if s.DataIntensive() {
			class = "data-intensive"
		}
		t.Add(s.Name, s.Desc, s.MBlocks, s.SerialMB, s.InputMB,
			fmt.Sprintf("%.2f", s.LdStPct), fmt.Sprintf("%.2f", s.BKI), class)
	}
	return t
}

// TableMixes renders the reconstructed MX membership.
func TableMixes() *report.Table {
	t := &report.Table{Title: "Heterogeneous workloads (reconstructed mix table)",
		Header: []string{"mix", "applications"}}
	for n := 1; n <= workload.MixCount; n++ {
		members, _ := workload.MixMembers(n)
		t.Add(fmt.Sprintf("MX%d", n), fmt.Sprint(members))
	}
	return t
}

// SerialRatios are the Fig. 3 sweep points.
var SerialRatios = []int{0, 10, 20, 30, 40, 50}

// Fig3Point is one sensitivity measurement.
type Fig3Point struct {
	Cores      int
	SerialPct  int
	Throughput float64 // GB/s
	Util       float64 // [0,1]
}

// Fig3Sensitivity sweeps cores 1–8 × serial ratio 0–50% on the
// conventional system (Fig. 3b and 3c share these runs).
func Fig3Sensitivity(scale int64) ([]Fig3Point, error) {
	var out []Fig3Point
	for cores := 1; cores <= 8; cores++ {
		for _, pct := range SerialRatios {
			o := workload.DefaultOptions()
			o.Scale = scale
			b, nominal, err := workload.Sensitivity(pct, cores, o)
			if err != nil {
				return nil, err
			}
			cfg := core.DefaultConfig(core.SIMD)
			cfg.Workers = cores
			d, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			for _, app := range b.Apps {
				if err := d.OffloadApp(app.Name, app.Tables); err != nil {
					return nil, err
				}
			}
			res, err := d.Run()
			if err != nil {
				return nil, err
			}
			out = append(out, Fig3Point{
				Cores:      cores,
				SerialPct:  pct,
				Throughput: float64(nominal) / units.Seconds(res.Makespan) / 1e9,
				Util:       res.WorkerUtil,
			})
		}
	}
	return out, nil
}

// Fig3bTable renders throughput vs cores.
func Fig3bTable(points []Fig3Point) *report.Table {
	return fig3Table(points, "Fig 3b: workload throughput (GB/s)", func(p Fig3Point) float64 {
		return p.Throughput
	})
}

// Fig3cTable renders utilization vs cores.
func Fig3cTable(points []Fig3Point) *report.Table {
	return fig3Table(points, "Fig 3c: core utilization (%)", func(p Fig3Point) float64 {
		return p.Util * 100
	})
}

func fig3Table(points []Fig3Point, title string, val func(Fig3Point) float64) *report.Table {
	t := &report.Table{Title: title, Header: []string{"cores"}}
	for _, r := range SerialRatios {
		t.Header = append(t.Header, fmt.Sprintf("serial %d%%", r))
	}
	for cores := 1; cores <= 8; cores++ {
		row := []interface{}{cores}
		for _, r := range SerialRatios {
			for _, p := range points {
				if p.Cores == cores && p.SerialPct == r {
					row = append(row, val(p))
				}
			}
		}
		t.Add(row...)
	}
	return t
}

// Fig3Apps are the applications the Fig. 3d/3e breakdowns plot.
var Fig3Apps = []string{"ATAX", "BICG", "2DCON", "MVT", "SYRK", "3MM", "GESUM", "ADI", "COVAR", "FDTD"}

// Fig3d renders the SIMD-system execution-time decomposition.
func (s *Suite) Fig3d() (*report.Table, error) {
	t := &report.Table{Title: "Fig 3d: execution time breakdown (SIMD system)",
		Header: []string{"app", "accelerator", "SSD", "host storage stack"}}
	for _, name := range Fig3Apps {
		r, err := s.Homogeneous(name, core.SIMD)
		if err != nil {
			return nil, err
		}
		a, ssd, stack := r.BreakdownFracs()
		t.Add(name, a, ssd, stack)
	}
	return t, nil
}

// Fig3e renders the SIMD-system energy decomposition.
func (s *Suite) Fig3e() (*report.Table, error) {
	t := &report.Table{Title: "Fig 3e: energy breakdown (SIMD system)",
		Header: []string{"app", "accelerator", "SSD+stack (storage)", "data movement"}}
	for _, name := range Fig3Apps {
		r, err := s.Homogeneous(name, core.SIMD)
		if err != nil {
			return nil, err
		}
		t.Add(name, r.Energy.Frac(power.Compute), r.Energy.Frac(power.Storage), r.Energy.Frac(power.DataMove))
	}
	return t, nil
}

// Fig10a renders homogeneous throughput for all five systems.
func (s *Suite) Fig10a() (*report.Table, error) {
	t := &report.Table{Title: "Fig 10a: homogeneous throughput (MB/s)",
		Header: append([]string{"app"}, systemNames()...)}
	for _, name := range workload.Names() {
		row := []interface{}{name}
		for _, sys := range core.Systems {
			r, err := s.Homogeneous(name, sys)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", r.ThroughputMBps()))
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig10b renders heterogeneous throughput for all five systems.
func (s *Suite) Fig10b() (*report.Table, error) {
	t := &report.Table{Title: "Fig 10b: heterogeneous throughput (MB/s)",
		Header: append([]string{"mix"}, systemNames()...)}
	for n := 1; n <= workload.MixCount; n++ {
		row := []interface{}{fmt.Sprintf("MX%d", n)}
		for _, sys := range core.Systems {
			r, err := s.Heterogeneous(n, sys)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", r.ThroughputMBps()))
		}
		t.Add(row...)
	}
	return t, nil
}

// latTable renders Fig. 11's min/avg/max latencies normalized to SIMD.
func (s *Suite) latTable(title string, names []string,
	get func(string, core.System) (*stats.Result, error)) (*report.Table, error) {
	t := &report.Table{Title: title,
		Header: []string{"workload", "system", "min", "avg", "max"}}
	for _, name := range names {
		base, err := get(name, core.SIMD)
		if err != nil {
			return nil, err
		}
		bmin, bavg, bmax := base.LatencyStats()
		for _, sys := range core.Systems {
			r, err := get(name, sys)
			if err != nil {
				return nil, err
			}
			mn, av, mx := r.LatencyStats()
			t.Add(name, sys.String(), norm(mn, bmin), norm(av, bavg), norm(mx, bmax))
		}
	}
	return t, nil
}

func norm(v, base units.Duration) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(v)/float64(base))
}

// Fig11a renders homogeneous latency normalized to SIMD.
func (s *Suite) Fig11a() (*report.Table, error) {
	return s.latTable("Fig 11a: homogeneous latency (normalized to SIMD)", workload.Names(), s.Homogeneous)
}

// Fig11b renders heterogeneous latency normalized to SIMD.
func (s *Suite) Fig11b() (*report.Table, error) {
	names := make([]string, workload.MixCount)
	for i := range names {
		names[i] = fmt.Sprintf("MX%d", i+1)
	}
	return s.latTable("Fig 11b: heterogeneous latency (normalized to SIMD)", names,
		func(name string, sys core.System) (*stats.Result, error) {
			var n int
			fmt.Sscanf(name, "MX%d", &n)
			return s.Heterogeneous(n, sys)
		})
}

// Fig12 renders the kernel-completion CDFs for ATAX and MX1.
func (s *Suite) Fig12() (*report.Table, error) {
	t := &report.Table{Title: "Fig 12: kernel completion CDF (ATAX and MX1)",
		Header: []string{"workload", "system", "completions (time ms : count)"}}
	for _, sys := range core.Systems {
		r, err := s.Homogeneous("ATAX", sys)
		if err != nil {
			return nil, err
		}
		t.Add("ATAX", sys.String(), cdfString(r))
	}
	for _, sys := range core.Systems {
		r, err := s.Heterogeneous(1, sys)
		if err != nil {
			return nil, err
		}
		t.Add("MX1", sys.String(), cdfString(r))
	}
	return t, nil
}

func cdfString(r *stats.Result) string {
	out := ""
	for _, p := range r.CDF() {
		out += fmt.Sprintf("%.1f:%d ", float64(p.Time)/1e6, p.Completed)
	}
	return out
}

// energyTable renders Fig. 13's decomposition normalized to SIMD total.
func (s *Suite) energyTable(title string, names []string,
	get func(string, core.System) (*stats.Result, error)) (*report.Table, error) {
	t := &report.Table{Title: title,
		Header: []string{"workload", "system", "data movement", "computation", "storage access", "total"}}
	for _, name := range names {
		base, err := get(name, core.SIMD)
		if err != nil {
			return nil, err
		}
		bt := base.Energy.Total()
		for _, sys := range core.Systems {
			r, err := get(name, sys)
			if err != nil {
				return nil, err
			}
			e := r.Energy
			t.Add(name, sys.String(),
				e[power.DataMove]/bt, e[power.Compute]/bt, e[power.Storage]/bt, e.Total()/bt)
		}
	}
	return t, nil
}

// Fig13a renders homogeneous energy decomposition.
func (s *Suite) Fig13a() (*report.Table, error) {
	return s.energyTable("Fig 13a: homogeneous energy (normalized to SIMD)", workload.Names(), s.Homogeneous)
}

// Fig13b renders heterogeneous energy decomposition.
func (s *Suite) Fig13b() (*report.Table, error) {
	names := make([]string, workload.MixCount)
	for i := range names {
		names[i] = fmt.Sprintf("MX%d", i+1)
	}
	return s.energyTable("Fig 13b: heterogeneous energy (normalized to SIMD)", names,
		func(name string, sys core.System) (*stats.Result, error) {
			var n int
			fmt.Sscanf(name, "MX%d", &n)
			return s.Heterogeneous(n, sys)
		})
}

// utilTable renders Fig. 14's processor utilizations.
func (s *Suite) utilTable(title string, names []string,
	get func(string, core.System) (*stats.Result, error)) (*report.Table, error) {
	t := &report.Table{Title: title, Header: append([]string{"workload"}, systemNames()...)}
	for _, name := range names {
		row := []interface{}{name}
		for _, sys := range core.Systems {
			r, err := get(name, sys)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", r.WorkerUtil*100))
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig14a renders homogeneous LWP utilization.
func (s *Suite) Fig14a() (*report.Table, error) {
	return s.utilTable("Fig 14a: homogeneous LWP utilization (%)", workload.Names(), s.Homogeneous)
}

// Fig14b renders heterogeneous LWP utilization.
func (s *Suite) Fig14b() (*report.Table, error) {
	names := make([]string, workload.MixCount)
	for i := range names {
		names[i] = fmt.Sprintf("MX%d", i+1)
	}
	return s.utilTable("Fig 14b: heterogeneous LWP utilization (%)", names,
		func(name string, sys core.System) (*stats.Result, error) {
			var n int
			fmt.Sscanf(name, "MX%d", &n)
			return s.Heterogeneous(n, sys)
		})
}

// Fig15 runs MX1 with time-series collection on SIMD and IntraO3 and
// returns the FU-utilization and power traces.
func (s *Suite) Fig15() (map[string]*stats.Result, error) {
	out := map[string]*stats.Result{}
	for _, sys := range []core.System{core.SIMD, core.IntraO3} {
		b, err := workload.Mix(1, s.opts())
		if err != nil {
			return nil, err
		}
		r, err := RunBundle(sys, b, true)
		if err != nil {
			return nil, err
		}
		out[sys.String()] = r
	}
	return out, nil
}

// Fig16a renders graph/bigdata throughput.
func (s *Suite) Fig16a() (*report.Table, error) {
	t := &report.Table{Title: "Fig 16a: graph/bigdata throughput (MB/s)",
		Header: append([]string{"app"}, systemNames()...)}
	for _, name := range workload.BigdataNames() {
		row := []interface{}{name}
		for _, sys := range core.Systems {
			r, err := s.Bigdata(name, sys)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", r.ThroughputMBps()))
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig16b renders graph/bigdata energy decomposition normalized to SIMD.
func (s *Suite) Fig16b() (*report.Table, error) {
	return s.energyTable("Fig 16b: graph/bigdata energy (normalized to SIMD)",
		workload.BigdataNames(), s.Bigdata)
}

func systemNames() []string {
	out := make([]string, len(core.Systems))
	for i, sys := range core.Systems {
		out[i] = sys.String()
	}
	return out
}
