// Cluster: shard heterogeneous mix MX1 across 1, 2, 4, and 8 simulated
// FlashAbacus cards behind a shared host PCIe switch, comparing the two
// host-level dispatch policies — static round-robin of applications (the
// InterSt analogue) and dynamic work-stealing of kernel instances (the
// InterDy analogue) — on aggregate throughput, makespan, and energy.
package main

import (
	"context"
	"fmt"
	"log"

	flashabacus "repro"
)

func main() {
	fmt.Println("== MX1 on IntraO3 cards: host-level scale-out ==")
	fmt.Printf("%-12s %8s %12s %14s %10s %9s\n",
		"policy", "devices", "MB/s", "makespan(ms)", "energy(J)", "speedup")
	for _, policy := range []flashabacus.Policy{flashabacus.RoundRobin, flashabacus.WorkSteal} {
		name := "round-robin"
		if policy == flashabacus.WorkSteal {
			name = "work-steal"
		}
		var base float64
		for _, devices := range []int{1, 2, 4, 8} {
			bundle, err := flashabacus.Mix(1, 32)
			if err != nil {
				log.Fatal(err)
			}
			r, err := flashabacus.RunCluster(context.Background(), flashabacus.IntraO3, devices, policy, bundle)
			if err != nil {
				log.Fatal(err)
			}
			tput := r.ThroughputMBps()
			if devices == 1 {
				base = tput
			}
			fmt.Printf("%-12s %8d %12.1f %14.1f %10.2f %8.2fx\n",
				name, devices, tput, float64(r.Makespan)/1e6, r.Energy.Total(), tput/base)
		}
	}
}
