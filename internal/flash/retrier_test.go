package flash

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// fixedRetrier charges a constant retry count on every read and records
// the sequence numbers it was consulted with.
type fixedRetrier struct {
	n    int
	seqs []int64
}

func (r *fixedRetrier) Retries(at sim.Time, pg PhysGroup, seq int64) int {
	r.seqs = append(r.seqs, seq)
	return r.n
}

func TestReadRetrierStretchesSense(t *testing.T) {
	clean := newTestBackbone(t)
	worn := newTestBackbone(t)
	fr := &fixedRetrier{n: 3}
	worn.SetRetrier(fr)

	base := clean.ReadGroup(0, 0)
	slow := worn.ReadGroup(0, 0)
	if want := base + 3*worn.Tim.ReadPage; slow != want {
		t.Errorf("retried read done %s, want %s", units.FormatDuration(slow), units.FormatDuration(want))
	}
	retries, rt := worn.RetryStats()
	if retries != 3 || rt != 3*worn.Tim.ReadPage {
		t.Errorf("RetryStats = %d/%s", retries, units.FormatDuration(rt))
	}
	if r2, _ := clean.RetryStats(); r2 != 0 {
		t.Errorf("clean backbone reports %d retries", r2)
	}

	// The sequence number the retrier sees is the backbone read counter,
	// so it advances per read and starts at zero.
	worn.ReadGroup(slow, 1)
	if len(fr.seqs) != 2 || fr.seqs[0] != 0 || fr.seqs[1] != 1 {
		t.Errorf("retrier saw sequence %v, want [0 1]", fr.seqs)
	}

	// Removing the retrier restores clean timing for later reads.
	worn.SetRetrier(nil)
	r3 := newTestBackbone(t)
	if got, want := worn.ReadGroup(units.Second, 2), r3.ReadGroup(units.Second, 2); got != want {
		t.Errorf("post-removal read done %s, want %s", units.FormatDuration(got), units.FormatDuration(want))
	}
}

func TestZeroRetrierIsFree(t *testing.T) {
	clean := newTestBackbone(t)
	hooked := newTestBackbone(t)
	hooked.SetRetrier(&fixedRetrier{n: 0})
	if a, b := clean.ReadGroup(0, 0), hooked.ReadGroup(0, 0); a != b {
		t.Errorf("zero-retry hook changed timing: %s vs %s", units.FormatDuration(a), units.FormatDuration(b))
	}
	if n, rt := hooked.RetryStats(); n != 0 || rt != 0 {
		t.Errorf("zero-retry hook accounted %d/%s", n, units.FormatDuration(rt))
	}
}
