// Package units provides the size, time, and bandwidth quantities shared by
// every hardware model in the simulator.
//
// Simulated time is integer nanoseconds (Time). One LWP cycle at 1 GHz is
// exactly 1 ns, which keeps cycle arithmetic exact. Bandwidth is expressed in
// bytes per second and converted to durations with round-up semantics so a
// transfer never takes zero time.
package units

import "fmt"

// Time is a simulated timestamp in nanoseconds since the start of a run.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Common sizes in bytes.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// Bandwidth is a transfer rate in bytes per second.
type Bandwidth int64

// Common bandwidths.
const (
	MBps Bandwidth = Bandwidth(MB)
	GBps Bandwidth = Bandwidth(GB)
)

// DurationFor returns the time needed to move n bytes at bandwidth b,
// rounded up to the next nanosecond. It panics if b is not positive, because
// a zero-bandwidth link is always a configuration error.
func (b Bandwidth) DurationFor(n int64) Duration {
	if b <= 0 {
		panic(fmt.Sprintf("units: non-positive bandwidth %d", b))
	}
	if n <= 0 {
		return 0
	}
	// d = ceil(n * 1e9 / b) without overflowing for n up to ~9 EB/s·ns.
	whole := n / int64(b)
	rem := n % int64(b)
	d := Duration(whole) * Second
	if rem > 0 {
		d += Duration((rem*int64(Second) + int64(b) - 1) / int64(b))
	}
	return d
}

// BytesIn returns how many bytes bandwidth b moves in duration d.
func (b Bandwidth) BytesIn(d Duration) int64 {
	if d <= 0 || b <= 0 {
		return 0
	}
	return int64(d) * int64(b) / int64(Second)
}

// Seconds converts a simulated duration to floating-point seconds.
func Seconds(d Duration) float64 { return float64(d) / float64(Second) }

// FromSeconds converts floating-point seconds to a simulated duration.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// Cycles converts a cycle count at the given frequency (Hz) to a duration.
func Cycles(n int64, hz int64) Duration {
	if hz <= 0 {
		panic("units: non-positive frequency")
	}
	return Duration((n*int64(Second) + hz - 1) / hz)
}

// FormatBytes renders a byte count with a binary-prefix unit, e.g. "640.0MB".
func FormatBytes(n int64) string {
	switch {
	case n >= GB:
		return fmt.Sprintf("%.1fGB", float64(n)/float64(GB))
	case n >= MB:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(MB))
	case n >= KB:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(KB))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FormatDuration renders a duration with an adaptive unit, e.g. "81.0us".
func FormatDuration(d Duration) string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", Seconds(d))
	case d >= Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("units: non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// MaxTime returns the later of two timestamps.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of two timestamps.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
