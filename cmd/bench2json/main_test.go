package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSuitePrewarmSequential-8 	       5	 143811038 ns/op	       254.0 cells	93502832 B/op	  474721 allocs/op
BenchmarkClusterScaling/work-steal/devices=8-8  	 3	14188184 ns/op	 236.04 MB/s	131524616 B/op	   14127 allocs/op
PASS
ok  	repro	2.633s
goos: linux
pkg: repro/internal/sim
BenchmarkEngineScheduleStep-8 	199674096	        12.04 ns/op	       0 B/op	       0 allocs/op
`

func TestParseExtractsMetricsAndHeader(t *testing.T) {
	a, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(a.Benchmarks))
	}
	b := a.Benchmarks[0]
	if b.Name != "BenchmarkSuitePrewarmSequential" {
		t.Errorf("GOMAXPROCS suffix not trimmed: %q", b.Name)
	}
	if b.NsPerOp != 143811038 || b.AllocsPerOp != 474721 || b.BytesPerOp != 93502832 {
		t.Errorf("core metrics wrong: %+v", b)
	}
	if b.Metrics["cells"] != 254 {
		t.Errorf("custom metric lost: %v", b.Metrics)
	}
	if cs := a.Benchmarks[1]; cs.Name != "BenchmarkClusterScaling/work-steal/devices=8" || cs.Metrics["MB/s"] != 236.04 {
		t.Errorf("sub-benchmark parse wrong: %+v", cs)
	}
	if len(a.Header) != 6 {
		t.Errorf("parsed %d header lines, want 6", len(a.Header))
	}
	// The raw lines reconstruct benchstat-consumable text.
	if !strings.Contains(a.Benchmarks[2].Raw, "12.04 ns/op") {
		t.Errorf("raw line lost: %q", a.Benchmarks[2].Raw)
	}
}

func TestRunWritesArtifactAndCompares(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_suite.json")

	var log strings.Builder
	if err := run(config{out: out}, strings.NewReader(sample), &log); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var a Artifact
	if err := json.Unmarshal(raw, &a); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}

	// Second run compares against the first: a faster engine shows up as a
	// delta line, and the process still succeeds (non-gating).
	faster := strings.Replace(sample, "12.04 ns/op", "24.08 ns/op", 1)
	log.Reset()
	out2 := filepath.Join(dir, "next.json")
	if err := run(config{out: out2, baseline: out}, strings.NewReader(faster), &log); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "BenchmarkEngineScheduleStep") || !strings.Contains(log.String(), "100.0%") {
		t.Errorf("compare output missing regression delta:\n%s", log.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(config{out: "-"}, strings.NewReader("no benches here\n"), &strings.Builder{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestParseFlags(t *testing.T) {
	c, err := parseFlags([]string{"-o", "x.json", "-baseline", "y.json"})
	if err != nil || c.out != "x.json" || c.baseline != "y.json" {
		t.Errorf("parseFlags: %+v, %v", c, err)
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Error("stray positional argument accepted")
	}
}
