// A small typed client for the abacusd API, used by the test harness,
// the CI smoke client, and the examples.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to one abacusd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport (default http.DefaultClient). Point it
	// at httptest or a custom transport in tests.
	HTTPClient *http.Client
	// Name, when set, travels as the X-Abacus-Client fairness identity
	// on every submit that does not name its own client.
	Name string
	// MaxRetries bounds how many times a failed call is retried (default
	// 0: fail fast, the pre-resilience behavior). Retries use
	// exponential backoff with full jitter, honoring the server's
	// Retry-After hint as a floor. What retries is what is safe to
	// retry: reads always; a submit on 429 (the job was shed, not
	// created) or — when the request carries a DedupeKey making the
	// resubmit idempotent — on transport errors and 5xx; a stream
	// resumes from its byte offset after a lost connection.
	MaxRetries int
	// RetryBase is the first backoff ceiling (default 50ms); each retry
	// doubles it up to RetryMax (default 2s).
	RetryBase time.Duration
	RetryMax  time.Duration

	// rng is the jitter source, a seam so tests can pin backoff timing
	// (default math/rand.Float64).
	rng func() float64
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// backoff sleeps before retry attempt (0-based): full jitter over an
// exponentially growing ceiling, floored by the server's Retry-After
// hint. Returns early with the context's error if it dies first.
func (c *Client) backoff(ctx context.Context, attempt int, retryAfter time.Duration) error {
	base := c.RetryBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := c.RetryMax
	if max <= 0 {
		max = 2 * time.Second
	}
	ceil := base
	for i := 0; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	rng := c.rng
	if rng == nil {
		rng = rand.Float64
	}
	sleep := time.Duration(float64(ceil) * rng())
	if sleep < retryAfter {
		sleep = retryAfter
	}
	t := time.NewTimer(sleep)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retriableStatus reports whether a status code signals a transient
// server condition worth retrying.
func retriableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do issues a request and decodes a JSON body into out (when non-nil),
// turning non-2xx responses into errors carrying the server's message.
// Bodyless reads (GET, DELETE) are idempotent and retry transient
// failures up to MaxRetries.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	idempotent := body == nil &&
		(method == http.MethodGet || method == http.MethodDelete)
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, body, out)
		if err == nil || !idempotent || attempt >= c.MaxRetries || ctx.Err() != nil {
			return err
		}
		var retryAfter time.Duration
		var se *StatusError
		if errors.As(err, &se) {
			if !retriableStatus(se.Code) {
				return err
			}
			retryAfter = se.RetryAfter
		}
		if berr := c.backoff(ctx, attempt, retryAfter); berr != nil {
			return err
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Name != "" {
		req.Header.Set("X-Abacus-Client", c.Name)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return c.apiErr(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// StatusError is a non-2xx API response: the HTTP status code plus the
// server's error message. Callers branch on Code — 429 means shed,
// retry later.
type StatusError struct {
	Code    int
	Message string
	// RetryAfter is the server's Retry-After hint, 0 when absent.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("abacusd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

func (c *Client) apiErr(resp *http.Response) error {
	var ae apiError
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &ae) != nil || ae.Error == "" {
		ae.Error = strings.TrimSpace(string(body))
	}
	se := &StatusError{Code: resp.StatusCode, Message: ae.Error}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		se.RetryAfter = time.Duration(secs) * time.Second
	}
	return se
}

// Submit enqueues a job and returns its accepted status. A full queue
// surfaces as a *StatusError with Code 429 — or, with MaxRetries set,
// is retried with backoff. A shed submit (429) is always safe to
// resend: the server created no job. Transport errors and other
// transient statuses may have created the job before the response was
// lost, so they are resent only when the request carries a DedupeKey —
// the server then answers the resend with the already-created job.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	for attempt := 0; ; attempt++ {
		var st JobStatus
		err := c.doOnce(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(body), &st)
		if err == nil {
			return st, nil
		}
		if attempt >= c.MaxRetries || ctx.Err() != nil {
			return JobStatus{}, err
		}
		var retryAfter time.Duration
		var se *StatusError
		switch {
		case errors.As(err, &se):
			if se.Code != http.StatusTooManyRequests &&
				!(req.DedupeKey != "" && retriableStatus(se.Code)) {
				return JobStatus{}, err
			}
			retryAfter = se.RetryAfter
		case req.DedupeKey == "":
			return JobStatus{}, err // transport error: resend not idempotent
		}
		if berr := c.backoff(ctx, attempt, retryAfter); berr != nil {
			return JobStatus{}, err
		}
	}
}

// Status polls a job.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List returns the retained jobs in submission order.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var sts []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &sts)
	return sts, err
}

// Cancel requests cancellation and returns the job's resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Experiments lists the experiment ids the server renders.
func (c *Client) Experiments(ctx context.Context) ([]string, error) {
	var ids []string
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &ids)
	return ids, err
}

// Result fetches a finished job's rendered bytes, blocking server-side
// until the job is terminal. A failed or cancelled job returns a
// *StatusError with Code 409 carrying the job's error.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/result?wait=1"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusConflict {
			var st JobStatus
			if json.NewDecoder(resp.Body).Decode(&st) == nil {
				return nil, &StatusError{Code: resp.StatusCode,
					Message: fmt.Sprintf("job %s %s: %s", id, st.State, st.Error)}
			}
		}
		return nil, c.apiErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// Stream copies the job's output to w as the server renders it and
// returns the job's final state (from the response trailer) once the
// stream ends. With MaxRetries set, a connection lost mid-stream is
// resumed from the byte offset already written to w (the server's
// ?offset= parameter), so w still receives every byte exactly once.
func (c *Client) Stream(ctx context.Context, id string, w io.Writer) (JobState, error) {
	sent := 0
	for attempt := 0; ; attempt++ {
		state, retryable, err := c.streamOnce(ctx, id, &sent, w)
		if err == nil || !retryable || attempt >= c.MaxRetries || ctx.Err() != nil {
			return state, err
		}
		if berr := c.backoff(ctx, attempt, 0); berr != nil {
			return "", err
		}
	}
}

// streamOnce runs one stream attempt, resuming at *sent and advancing
// it as bytes land in w. retryable marks failures where a retry can
// make progress: transport errors, where the bytes already written
// stay valid and the next attempt resumes after them.
func (c *Client) streamOnce(ctx context.Context, id string, sent *int, w io.Writer) (JobState, bool, error) {
	path := "/v1/jobs/" + id + "/stream"
	if *sent > 0 {
		path += "?offset=" + strconv.Itoa(*sent)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return "", false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", false, c.apiErr(resp)
	}
	if _, err := io.Copy(&countingWriter{w: w, n: sent}, resp.Body); err != nil {
		return "", true, err
	}
	state := JobState(resp.Trailer.Get("X-Abacus-Job-State"))
	if state == "" {
		// Trailer missing (e.g. an intermediary stripped it): fall back
		// to a status poll.
		st, perr := c.Status(ctx, id)
		if perr != nil {
			var se *StatusError
			return "", !errors.As(perr, &se), perr
		}
		return st.State, false, nil
	}
	if state != StateDone {
		return state, false, fmt.Errorf("job %s %s: %s", id, state, resp.Trailer.Get("X-Abacus-Job-Error"))
	}
	return state, false, nil
}

// countingWriter advances *n by every byte written through it, so a
// resumed stream knows exactly where the last connection died.
type countingWriter struct {
	w io.Writer
	n *int
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	*cw.n += n
	return n, err
}

// Metrics fetches one /metrics scrape.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", c.apiErr(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
