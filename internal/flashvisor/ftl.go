// Package flashvisor implements the LWP that self-governs the flash
// backbone (paper §3.3, §4.3): log-structured page-group address
// translation with the mapping table resident in scratchpad, range-lock
// protection over flash-mapped data sections, and the allocation machinery
// Storengine's garbage collector drives.
package flashvisor

import (
	"fmt"

	"repro/internal/flash"
)

// FTL is the page-group-granularity flash translation layer. It is a pure
// state machine — timing lives in the Visor — so garbage-collection policy
// and mapping invariants are testable in isolation.
//
// The log head stripes across die rows: one active super block is kept per
// die row and consecutive allocations rotate rows, so sequential data
// enjoys full die parallelism on later reads (the FPGA controllers
// interleave writes the same way).
type FTL struct {
	geo flash.Geometry

	// table maps logical group -> physical group (-1 when unmapped); it is
	// the structure that occupies 2 MB of scratchpad at full geometry.
	table []int32
	// rev maps physical group -> logical group (-1 when free/invalid),
	// which GC migration needs to retarget mappings.
	rev []int32

	freeSBs   [][]flash.SuperBlock // per die row: erased, ready
	usedSBs   []flash.SuperBlock   // filled, in round-robin reclaim order
	active    []flash.SuperBlock   // per die row
	hasActive []bool
	cursor    []int // next page index within each row's active super block
	allocRow  int   // rotating row for the next allocation

	logicalGroups int64
	validPerSB    []int32
}

// gcReserve is the number of free super blocks withheld per die row from
// host writes so a reclaim always has somewhere to migrate a fully-valid
// victim.
const gcReserve = 1

// NewFTL builds a formatted FTL over the geometry. op is the
// over-provisioning fraction withheld from the logical space so reclaim
// always has landing room (default 7%).
func NewFTL(geo flash.Geometry, op float64) (*FTL, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if op < 0.01 || op > 0.5 {
		return nil, fmt.Errorf("flashvisor: over-provisioning %.2f outside [0.01, 0.5]", op)
	}
	rows := geo.DieRows()
	dataGroups := int64(geo.SuperBlocks()) * int64(geo.DataGroupsPerSuperBlock())
	logical := int64(float64(dataGroups) * (1 - op))
	// Garbage collection needs slack: with every logical group live, the
	// device must still hold the GC reserve plus one reclaimable super
	// block's worth of invalid/free groups per row, or round-robin reclaim
	// can cycle through fully-valid victims forever.
	if max := dataGroups - int64(gcReserve+1)*int64(rows)*int64(geo.DataGroupsPerSuperBlock()); logical > max {
		logical = max
	}
	if logical <= 0 {
		return nil, fmt.Errorf("flashvisor: geometry too small for GC slack (%d data groups)", dataGroups)
	}
	f := &FTL{
		geo:           geo,
		table:         make([]int32, logical),
		rev:           make([]int32, geo.TotalGroups()),
		validPerSB:    make([]int32, geo.SuperBlocks()),
		logicalGroups: logical,
		freeSBs:       make([][]flash.SuperBlock, rows),
		active:        make([]flash.SuperBlock, rows),
		hasActive:     make([]bool, rows),
		cursor:        make([]int, rows),
	}
	for i := range f.table {
		f.table[i] = -1
	}
	for i := range f.rev {
		f.rev[i] = -1
	}
	for sb := 0; sb < geo.SuperBlocks(); sb++ {
		row := sb / geo.BlocksPerDie
		f.freeSBs[row] = append(f.freeSBs[row], flash.SuperBlock(sb))
	}
	return f, nil
}

// LogicalGroups returns the exposed logical address space in page groups.
func (f *FTL) LogicalGroups() int64 { return f.logicalGroups }

// LogicalBytes returns the exposed byte capacity.
func (f *FTL) LogicalBytes() int64 { return f.logicalGroups * f.geo.GroupSize() }

// FreeSuperBlocks returns the total free pool size across die rows.
func (f *FTL) FreeSuperBlocks() int {
	n := 0
	for _, p := range f.freeSBs {
		n += len(p)
	}
	return n
}

// Lookup translates a logical group, reporting whether it is mapped.
func (f *FTL) Lookup(lg int64) (flash.PhysGroup, bool) {
	if lg < 0 || lg >= f.logicalGroups {
		return 0, false
	}
	pg := f.table[lg]
	if pg < 0 {
		return 0, false
	}
	return flash.PhysGroup(pg), true
}

// ErrNoSpace is returned when allocation needs a reclaim first.
var ErrNoSpace = fmt.Errorf("flashvisor: no free page groups (reclaim required)")

// rowCanAlloc reports whether a row can hand out a group under the reserve.
func (f *FTL) rowCanAlloc(row, reserve int) bool {
	if f.hasActive[row] && f.cursor[row] < f.geo.GroupsPerSuperBlock() {
		return true
	}
	return len(f.freeSBs[row]) > reserve
}

// Alloc returns the next physical group at the striped log head. It skips
// the metadata pages at the front of each block and pulls a fresh super
// block from the row's free pool on rollover. Host writes (gc=false) may
// not dip into the GC reserve; migration writes (gc=true) may. The returned
// bool reports whether a rollover happened (the caller charges
// metadata-journal writes for the newly opened super block).
func (f *FTL) Alloc(gc bool) (flash.PhysGroup, bool, error) {
	reserve := gcReserve
	if gc {
		reserve = 0
	}
	rows := f.geo.DieRows()
	row := -1
	for i := 0; i < rows; i++ {
		r := (f.allocRow + i) % rows
		if f.rowCanAlloc(r, reserve) {
			row = r
			break
		}
	}
	if row < 0 {
		return 0, false, ErrNoSpace
	}
	f.allocRow = (row + 1) % rows

	rolled := false
	if !f.hasActive[row] || f.cursor[row] >= f.geo.GroupsPerSuperBlock() {
		if f.hasActive[row] {
			f.usedSBs = append(f.usedSBs, f.active[row])
			f.hasActive[row] = false
		}
		f.active[row] = f.freeSBs[row][0]
		f.freeSBs[row] = f.freeSBs[row][1:]
		f.cursor[row] = f.geo.MetaPages // skip metadata pages
		f.hasActive[row] = true
		rolled = true
	}
	block := int(f.active[row]) % f.geo.BlocksPerDie
	pg := f.geo.Compose(flash.GroupAddr{DieRow: row, Block: block, Page: f.cursor[row]})
	f.cursor[row]++
	return pg, rolled, nil
}

// ActiveSuperBlock returns the most recently opened super block for the
// given physical group's die row (the journal target after a rollover).
func (f *FTL) ActiveSuperBlock(pg flash.PhysGroup) flash.SuperBlock {
	return f.geo.SuperBlockOf(pg)
}

// Commit binds logical group lg to physical group pg, invalidating any
// previous mapping of lg.
func (f *FTL) Commit(lg int64, pg flash.PhysGroup) error {
	if lg < 0 || lg >= f.logicalGroups {
		return fmt.Errorf("flashvisor: logical group %d outside space of %d", lg, f.logicalGroups)
	}
	if old := f.table[lg]; old >= 0 {
		f.invalidate(flash.PhysGroup(old))
	}
	f.table[lg] = int32(pg)
	f.rev[pg] = int32(lg)
	f.validPerSB[f.geo.SuperBlockOf(pg)]++
	return nil
}

func (f *FTL) invalidate(pg flash.PhysGroup) {
	if f.rev[pg] < 0 {
		return
	}
	f.rev[pg] = -1
	f.validPerSB[f.geo.SuperBlockOf(pg)]--
}

// ValidCount returns the valid page groups in a super block.
func (f *FTL) ValidCount(sb flash.SuperBlock) int { return int(f.validPerSB[sb]) }

// VictimRoundRobin pops the oldest used super block — the paper's
// Storengine selects victims "from a used block pool in a round robin
// fashion" rather than scanning the whole table for the greediest choice.
func (f *FTL) VictimRoundRobin() (flash.SuperBlock, bool) {
	if len(f.usedSBs) == 0 {
		return 0, false
	}
	sb := f.usedSBs[0]
	f.usedSBs = f.usedSBs[1:]
	return sb, true
}

// VictimGreedy pops the used super block with the fewest valid groups; it
// exists for the GC-policy ablation and costs a full pool scan.
func (f *FTL) VictimGreedy() (flash.SuperBlock, bool) {
	if len(f.usedSBs) == 0 {
		return 0, false
	}
	best := 0
	for i, sb := range f.usedSBs {
		if f.validPerSB[sb] < f.validPerSB[f.usedSBs[best]] {
			best = i
		}
	}
	sb := f.usedSBs[best]
	f.usedSBs = append(f.usedSBs[:best], f.usedSBs[best+1:]...)
	return sb, true
}

// ValidGroups returns the (physical, logical) pairs still valid in a super
// block, in page order.
func (f *FTL) ValidGroups(sb flash.SuperBlock) []MigratePair {
	var out []MigratePair
	for _, pg := range f.geo.GroupsOf(sb) {
		if lg := f.rev[pg]; lg >= 0 {
			out = append(out, MigratePair{Phys: pg, Logical: int64(lg)})
		}
	}
	return out
}

// MigratePair names a valid group inside a GC victim.
type MigratePair struct {
	Phys    flash.PhysGroup
	Logical int64
}

// Retarget points a logical group at its migrated location without
// counting it as a fresh host write.
func (f *FTL) Retarget(lg int64, dst flash.PhysGroup) {
	old := f.table[lg]
	if old >= 0 {
		f.invalidate(flash.PhysGroup(old))
	}
	f.table[lg] = int32(dst)
	f.rev[dst] = int32(lg)
	f.validPerSB[f.geo.SuperBlockOf(dst)]++
}

// Release returns an erased victim to its die row's free pool.
func (f *FTL) Release(sb flash.SuperBlock) {
	if f.validPerSB[sb] != 0 {
		panic(fmt.Sprintf("flashvisor: releasing super block %d with %d valid groups", sb, f.validPerSB[sb]))
	}
	row := int(sb) / f.geo.BlocksPerDie
	f.freeSBs[row] = append(f.freeSBs[row], sb)
}

// UsedSuperBlocks returns the reclaim-eligible pool size.
func (f *FTL) UsedSuperBlocks() int { return len(f.usedSBs) }

// CanAllocHost reports whether a host write can allocate without
// reclaiming. A single reclaim of a fully-valid victim nets zero free
// space, so the foreground path loops on this predicate.
func (f *FTL) CanAllocHost() bool {
	for row := range f.freeSBs {
		if f.rowCanAlloc(row, gcReserve) {
			return true
		}
	}
	return false
}

// MappingBytes returns the scratchpad footprint of the mapping table: four
// bytes per logical group (paper §4.3: 2 MB covers 32 GB).
func (f *FTL) MappingBytes() int64 { return int64(len(f.table)) * 4 }

// CheckConsistency verifies forward/reverse mapping agreement and per-super-
// block valid counts; tests call it after GC storms.
func (f *FTL) CheckConsistency() error {
	counts := make([]int32, f.geo.SuperBlocks())
	for lg, pg := range f.table {
		if pg < 0 {
			continue
		}
		if f.rev[pg] != int32(lg) {
			return fmt.Errorf("flashvisor: table[%d]=%d but rev[%d]=%d", lg, pg, pg, f.rev[pg])
		}
		counts[f.geo.SuperBlockOf(flash.PhysGroup(pg))]++
	}
	for pg, lg := range f.rev {
		if lg >= 0 && f.table[lg] != int32(pg) {
			return fmt.Errorf("flashvisor: rev[%d]=%d but table[%d]=%d", pg, lg, lg, f.table[lg])
		}
	}
	for sb := range counts {
		if counts[sb] != f.validPerSB[sb] {
			return fmt.Errorf("flashvisor: super block %d valid count %d, recomputed %d", sb, f.validPerSB[sb], counts[sb])
		}
	}
	return nil
}
