package faults

import (
	"reflect"
	"testing"

	"repro/internal/flash"
	"repro/internal/sim"
)

// FuzzFaultPlan feeds arbitrary bytes through the plan parser and, for
// every plan that validates, exercises the canonical-form round trip
// and hammers the wear Retrier: no input may panic, validated plans
// must reparse to themselves, and retry counts must stay bounded.
func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte("seed 7\ncard-death 1 at 2ms\n"))
	f.Add([]byte("switch-flap sw0 from 1ms to 3ms\nswitch-throttle sw0 from 3ms to 6ms factor 25%\n"))
	f.Add([]byte("wear-bad-sb 3% retries 2\nwear-storm from 0 to 10ms prob 20% retries 1\n"))
	f.Add([]byte("detect 100us\nseed 18446744073709551615\n"))
	f.Add([]byte("# only a comment\n\n"))
	f.Add([]byte("card-death -1 at 1ms\n"))
	f.Add([]byte("switch-throttle sw0 from 2ms to 1ms factor 200%\n"))
	f.Add([]byte("wear-storm from 0 to 0 prob 100% retries 100\n"))

	geo := flash.DefaultGeometry()
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return // malformed plans must be rejected, not panic
		}
		// Validated plans round-trip through the canonical text form.
		back, err := Parse([]byte(p.String()))
		if err != nil {
			t.Fatalf("String() of a valid plan unparseable: %v\n%s", err, p.String())
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("round trip drifted:\n%+v\n%+v", p, back)
		}
		// Shape queries never panic, whatever the targets say.
		p.DeathTimes(4)
		p.SwitchWindows("sw0")
		p.ValidateFor(4, []string{"sw0", "sw1"})
		if !p.WearActive() {
			return
		}
		r := NewRetrier(p, geo)
		for _, at := range []sim.Time{0, sim.Time(p.Wear.StormFrom), sim.Time(p.Wear.StormUntil), 1 << 40} {
			for _, pg := range []flash.PhysGroup{0, 63, flash.PhysGroup(geo.TotalGroups() - 1)} {
				if n := r.Retries(at, pg, int64(at)); n < 0 || n > 2*MaxRetries {
					t.Fatalf("retries %d outside [0,%d]", n, 2*MaxRetries)
				}
			}
		}
	})
}
