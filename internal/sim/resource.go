package sim

import "repro/internal/units"

// Interval is a half-open busy span [Start, End) recorded by a Resource or
// Pipe when interval logging is enabled. Tag carries a model-defined label
// (for example an LWP id or an energy category) for time-series analysis.
type Interval struct {
	Start, End Time
	Tag        int
}

// Resource is a serially-reusable unit of hardware (an LWP, a flash die, the
// Flashvisor core). Work is reserved analytically: Reserve returns the
// interval the work will occupy given everything reserved before it, FIFO.
//
// Reservations must be issued with non-decreasing request times, which the
// event loop guarantees naturally; earlier-time requests after later ones
// would be a causality bug and are clamped to the current frontier.
type Resource struct {
	Name string

	free    Time // next instant the resource is idle
	busy    Duration
	logOn   bool
	logTag  int
	log     []Interval
	reserve uint64 // number of reservations
}

// NewResource returns a named resource that is free at time zero.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// EnableLog turns on interval logging with the given tag.
func (r *Resource) EnableLog(tag int) { r.logOn = true; r.logTag = tag }

// Reserve books d units of work requested at time at. It returns the start
// and end of the busy interval. A non-positive duration returns an empty
// interval at the request time without booking anything.
func (r *Resource) Reserve(at Time, d Duration) (start, end Time) {
	if d <= 0 {
		return units.MaxTime(at, r.free), units.MaxTime(at, r.free)
	}
	start = units.MaxTime(at, r.free)
	end = start + d
	r.free = end
	r.busy += d
	r.reserve++
	if r.logOn {
		r.log = append(r.log, Interval{Start: start, End: end, Tag: r.logTag})
	}
	return start, end
}

// ReserveN books n back-to-back reservations of d each, all requested at
// time at, and returns the start of the first and the end of the last. It is
// exactly equivalent to calling Reserve(at, d) n times — after the first
// reservation the frontier is at or past `at`, so the rest are contiguous —
// but performs one frontier update. The i'th reservation (0-based) occupies
// [start+i*d, start+(i+1)*d).
func (r *Resource) ReserveN(at Time, d Duration, n int) (start, end Time) {
	if n <= 0 || d <= 0 {
		s := units.MaxTime(at, r.free)
		return s, s
	}
	start = units.MaxTime(at, r.free)
	end = start + Duration(n)*d
	r.free = end
	r.busy += Duration(n) * d
	r.reserve += uint64(n)
	if r.logOn {
		for i := 0; i < n; i++ {
			r.log = append(r.log, Interval{Start: start + Duration(i)*d, End: start + Duration(i+1)*d, Tag: r.logTag})
		}
	}
	return start, end
}

// ReserveAtOrAfter is Reserve with an additional earliest-start constraint,
// used when an upstream dependency (for example a range-lock grant) delays
// the work beyond the request time.
func (r *Resource) ReserveAtOrAfter(at, earliest Time, d Duration) (start, end Time) {
	return r.Reserve(units.MaxTime(at, earliest), d)
}

// FreeAt returns the next instant the resource is idle.
func (r *Resource) FreeAt() Time { return r.free }

// Busy returns the total booked time.
func (r *Resource) Busy() Duration { return r.busy }

// Reservations returns how many reservations were made.
func (r *Resource) Reservations() uint64 { return r.reserve }

// Log returns the recorded busy intervals (nil unless EnableLog was called).
func (r *Resource) Log() []Interval { return r.log }

// Reset clears all bookings and logs.
func (r *Resource) Reset() {
	r.free, r.busy, r.reserve = 0, 0, 0
	r.log = nil
}

// Pipe is a bandwidth-limited, FIFO transfer channel (a crossbar port, a
// flash channel bus, the PCIe link). Transfers serialize: each transfer of n
// bytes occupies the pipe for n/bandwidth.
type Pipe struct {
	Name string
	BW   units.Bandwidth
	// Latency is a fixed per-transfer latency added before the data moves
	// (for example a bus turnaround or packet header time). It does not
	// occupy pipe bandwidth.
	Latency Duration

	res   Resource
	bytes int64
}

// NewPipe returns a pipe with the given bandwidth and zero fixed latency.
func NewPipe(name string, bw units.Bandwidth) *Pipe {
	return &Pipe{Name: name, BW: bw, res: Resource{Name: name}}
}

// EnableLog turns on interval logging with the given tag.
func (p *Pipe) EnableLog(tag int) { p.res.EnableLog(tag) }

// Transfer books n bytes requested at time at and returns the interval the
// data occupies the pipe. Zero-byte transfers return an empty interval.
func (p *Pipe) Transfer(at Time, n int64) (start, end Time) {
	if n <= 0 {
		return at, at
	}
	d := p.BW.DurationFor(n)
	start, end = p.res.Reserve(at+p.Latency, d)
	p.bytes += n
	return start, end
}

// TransferUniform books n transfers of nb bytes each, the i'th requested at
// at+i*stride, and returns the completion time of the last. It is exactly
// equivalent to n Transfer calls at those request times — the FIFO frontier
// recurrence f_i = max(f_{i-1}, t_i) + d has a closed form when the request
// times are uniformly spaced — but performs one frontier update. Callers use
// it to charge a span of identical per-group costs in one reservation.
func (p *Pipe) TransferUniform(at Time, stride Duration, n int, nb int64) (end Time) {
	if n <= 0 {
		return at
	}
	if n == 1 || p.res.logOn {
		// Preserve exact per-interval logs when logging is on.
		for i := 0; i < n; i++ {
			_, end = p.Transfer(at+Duration(i)*stride, nb)
		}
		return end
	}
	if nb <= 0 {
		return at + Duration(n-1)*stride
	}
	d := p.BW.DurationFor(nb)
	p.bytes += int64(n) * nb
	if d <= 0 {
		return at + Duration(n-1)*stride
	}
	first := at + p.Latency
	last := first + Duration(n-1)*stride
	nd := Duration(n) * d
	// With stride >= d every transfer starts at its own request time once
	// the pipe catches up; with stride < d the pipe saturates and drains
	// back-to-back from the first request.
	var tail Time
	if stride >= d {
		tail = last + d
	} else {
		tail = first + nd
	}
	end = units.MaxTime(p.res.free+nd, tail)
	p.res.free = end
	p.res.busy += nd
	p.res.reserve += uint64(n)
	return end
}

// Busy returns the total time the pipe carried data.
func (p *Pipe) Busy() Duration { return p.res.Busy() }

// Bytes returns the total bytes transferred.
func (p *Pipe) Bytes() int64 { return p.bytes }

// FreeAt returns the next instant the pipe is idle.
func (p *Pipe) FreeAt() Time { return p.res.FreeAt() }

// Log returns the recorded busy intervals.
func (p *Pipe) Log() []Interval { return p.res.Log() }

// Reset clears all bookings and counters.
func (p *Pipe) Reset() { p.res.Reset(); p.bytes = 0 }
