// Package cluster is the host-level scale-out layer: it shards one workload
// bundle across N simulated FlashAbacus cards sitting behind a shared host
// PCIe switch and aggregates the per-card measurements into one cluster
// result.
//
// The paper's closing argument is that self-governed accelerators remove the
// host storage stack so cheaply that cards can be ganged; this package
// models the layer that ganging actually needs — the dispatcher above the
// array. Two dispatch policies mirror the paper's two governor families:
//
//   - RoundRobin statically binds application i to card i mod N, the
//     cluster-level analogue of the InterSt governor. Each card runs its
//     application subset as one self-governed device simulation, so
//     intra-card scheduling, flash contention, and GC behave exactly as in
//     the single-card evaluation.
//
//   - WorkSteal dispatches kernel instances dynamically: the host keeps a
//     queue of instances and hands the next one to whichever card frees up
//     first, the analogue of InterDy's claim-next-kernel rule. Placement is
//     decided by replaying that claim loop against standalone-instance
//     runtime estimates (each instance probed as its own device run); the
//     cards then execute their claimed sets as ordinary self-governed
//     device simulations, so intra-card concurrency is preserved and only
//     the instance-to-card mapping is dynamic.
//
// Kernel downloads serialize through a shared host link (a bandwidth-limited
// FIFO pipe plus a per-dispatch latency), so a card's run starts only when
// its tables have cleared the switch. Input data is replicated to every card
// untimed, mirroring the single-device model where PopulateInput is
// preparation rather than measured work.
//
// Clusters need not be homogeneous. A Topology declares the shape
// explicitly — a tree of host-side switches, each its own pipe, fanning
// out to cards that may each carry a geometry skew (flash channels,
// superblock size, LWP count, scratchpad size) derived from the base
// configuration via core.Config.Derive. Both policies are topology-aware:
// round-robin weights its rotation by card capability, and work-stealing
// probes per card class and routes claims through the owning switch, so a
// congested switch naturally sheds work to the other subtree. The implicit
// single-switch homogeneous topology (no Options.Topology) is dispatched
// byte-identically to the pre-topology layer.
//
// A cluster of one is the identity: Run with cfg.Devices <= 1 takes exactly
// the single-device path (RunSingle), byte-identical to experiments.RunBundle.
package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flash"
	"repro/internal/kdt"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// Policy selects how the host dispatcher shards work across cards.
type Policy int

const (
	// RoundRobin statically assigns application i to card i mod N.
	RoundRobin Policy = iota
	// WorkSteal hands the next queued kernel instance to the first free card.
	WorkSteal
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "rr"
	case WorkSteal:
		return "steal"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists the dispatch policies in presentation order.
var Policies = []Policy{RoundRobin, WorkSteal}

// HostConfig models the shared host-side dispatch path the cards sit
// behind: one PCIe switch uplink that kernel downloads serialize through,
// plus the host software latency paid per dispatch.
type HostConfig struct {
	// BW is the switch uplink bandwidth shared by every card.
	BW units.Bandwidth
	// DispatchLatency is the per-dispatch host overhead (doorbell, queue
	// bookkeeping) added before a download's data moves.
	DispatchLatency units.Duration
}

// DefaultHost returns a PCIe 3.0 x8-class switch uplink with a few
// microseconds of host dispatch software overhead.
func DefaultHost() HostConfig {
	return HostConfig{BW: 8 * units.GBps, DispatchLatency: 5 * units.Microsecond}
}

// Validate reports a host-model error, or nil.
func (h HostConfig) Validate() error {
	if h.BW <= 0 {
		return fmt.Errorf("cluster: non-positive host bandwidth")
	}
	if h.DispatchLatency < 0 {
		return fmt.Errorf("cluster: negative dispatch latency")
	}
	return nil
}

// Options tunes a cluster run.
type Options struct {
	// Policy selects the dispatch policy (default RoundRobin).
	Policy Policy
	// Host is the shared dispatch path; the zero value selects DefaultHost.
	// With a Topology it models the root uplink above the switches.
	Host HostConfig
	// Workers bounds how many card simulations run concurrently in wall
	// clock (0 means runtime.GOMAXPROCS(0)). Simulated time is unaffected.
	Workers int
	// Topology declares the cluster shape explicitly: switches with their
	// own bandwidth/latency fanning out to possibly-skewed cards. The zero
	// value keeps the classic implicit topology — one switch, cfg.Devices
	// identical cards — whose output is byte-identical to the pre-topology
	// cluster layer. When set, cfg.Devices is ignored: the topology owns
	// the card count.
	Topology Topology
	// Images, when non-nil, shares formatted/populated device images and
	// work-steal probe results across dispatches: every card and probe
	// forks its class's image copy-on-write instead of rebuilding, and a
	// probe run is simulated once per (card class, bundle, instance). The
	// output is byte-identical either way — the cache only removes
	// rebuild work, never changes simulated state.
	Images *ImageCache
	// Faults, when non-nil and non-zero, injects the plan's deterministic
	// failure schedule into the run: card deaths reroute work per the
	// policy's recovery rules, switch windows degrade the dispatch
	// fabric, and flash wear stretches reads. A nil or zero plan leaves
	// the run byte-identical to a healthy one.
	Faults *faults.Plan
}

// RunSingle runs one bundle on one card: the node lifecycle experiments.
// RunBundle delegates to, and the devices<=1 path of Run.
func RunSingle(ctx context.Context, cfg core.Config, b *workload.Bundle) (*stats.Result, error) {
	return RunSingleCached(ctx, cfg, b, nil)
}

// RunSingleCached is RunSingle forking the cached device image for
// (cfg, b) instead of rebuilding the format/populate/offload lifecycle.
// A nil cache, an unkeyed (hand-assembled) bundle, or a bundle whose
// populate proves unforkable runs the lifecycle from scratch; either way
// the result is byte-identical.
func RunSingleCached(ctx context.Context, cfg core.Config, b *workload.Bundle, images *ImageCache) (*stats.Result, error) {
	return runSingleCached(ctx, cfg, b, images, nil)
}

// runSingleCached is RunSingleCached with an optional flash wear model
// installed before the run (images stay shared — wear only stretches
// simulated read timing, never image contents).
func runSingleCached(ctx context.Context, cfg core.Config, b *workload.Bundle, images *ImageCache, ret flash.ReadRetrier) (*stats.Result, error) {
	var n *Node
	if images != nil && bundleID(b) != "" {
		img, err := images.Offloaded(ctx, cfg, b)
		switch {
		case err == nil:
			if n, err = NewNodeFromImage(0, img, cfg); err != nil {
				return nil, fmt.Errorf("%s/%s: fork: %w", b.Name, cfg.System, err)
			}
		case errors.Is(err, core.ErrUnforkable):
			// fall through to the plain lifecycle below
		default:
			return nil, fmt.Errorf("%s/%s: image: %w", b.Name, cfg.System, err)
		}
	}
	if n == nil {
		var err error
		if n, err = NewNode(0, cfg); err != nil {
			return nil, err
		}
		if err := n.Populate(b.Populate); err != nil {
			return nil, fmt.Errorf("%s/%s: populate: %w", b.Name, cfg.System, err)
		}
		if err := n.Offload(b.Apps); err != nil {
			return nil, fmt.Errorf("%s/%s: offload: %w", b.Name, cfg.System, err)
		}
	}
	if ret != nil {
		n.Device().InstallFlashRetrier(ret)
	}
	res, err := n.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", b.Name, cfg.System, err)
	}
	res.Workload = b.Name
	return res, nil
}

// Run shards bundle b across a cluster of cards and returns the aggregated
// result. With the zero Options.Topology, cfg describes each (identical)
// card and cfg.Devices is the card count — the classic single-switch
// array. With an explicit Topology, cfg is the base card every per-card
// skew derives from, and the topology owns the shape. Cancelling ctx
// abandons every in-flight card simulation and returns the context's
// error.
func Run(ctx context.Context, cfg core.Config, b *workload.Bundle, o Options) (*stats.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan := o.Faults
	if plan.IsZero() {
		plan = nil // a zero plan is exactly a healthy run
	}
	topo := o.Topology
	if topo.IsZero() {
		devices := cfg.Devices
		if devices < 1 {
			devices = 1
		}
		if devices == 1 {
			if plan != nil && len(plan.Events) > 0 {
				return nil, fmt.Errorf("cluster: fault plan schedules card/switch events but the run has a single card")
			}
			res, err := runSingleCached(ctx, cfg, b, o.Images, wearFor(plan, cfg))
			if err != nil {
				return nil, err
			}
			return withWearRecord(res, plan), nil
		}
		topo = Uniform(devices)
	} else if err := topo.Validate(cfg); err != nil {
		return nil, err
	}
	if o.Host == (HostConfig{}) {
		o.Host = DefaultHost()
	}
	if err := o.Host.Validate(); err != nil {
		return nil, err
	}
	if len(b.Apps) == 0 {
		return nil, fmt.Errorf("cluster: %s has no applications", b.Name)
	}
	cards, classCfgs, err := flatten(topo, cfg)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		names := make([]string, len(topo.Switches))
		for i := range topo.Switches {
			names[i] = topo.switchName(i)
		}
		if err := plan.ValidateFor(len(cards), names); err != nil {
			return nil, err
		}
	}
	fab := newFabric(topo, o.Host, !o.Topology.IsZero(), plan)
	var parts []stats.Part
	switch o.Policy {
	case RoundRobin:
		parts, err = runRoundRobin(ctx, b, cards, fab, o, plan)
	case WorkSteal:
		parts, err = runWorkSteal(ctx, b, cards, classCfgs, fab, o, plan)
	default:
		return nil, fmt.Errorf("cluster: unknown policy %d", int(o.Policy))
	}
	if err != nil {
		return nil, err
	}
	res := stats.Aggregate(cfg.System.String(), b.Name, len(cards), parts)
	return finishFaulted(res, plan), nil
}

// fabric is the host-side dispatch path of one run: the root uplink (only
// present for explicit multi-switch topologies) and one pipe per switch.
// In the implicit single-switch mode the lone switch pipe IS the classic
// host link — no second hop, no per-switch labels — which keeps that path
// byte-identical to the pre-topology dispatcher.
type fabric struct {
	root   *sim.Pipe   // nil in implicit single-switch mode
	sws    []*sim.Pipe // per switch, topology order
	labels []string    // per-switch stats label ("" in implicit mode)
	// wins holds each switch's fault-plan degradation windows, sorted by
	// start (nil on healthy runs). Fault targeting always uses the
	// switch's topology name — "sw0" in implicit mode — even where the
	// stats label is "".
	wins [][]faults.Window
}

// newFabric builds the dispatch pipes. host models the root uplink (or, in
// implicit mode, the whole path); each switch's zero BW defaults to the
// host's.
func newFabric(t Topology, host HostConfig, explicit bool, plan *faults.Plan) *fabric {
	f := &fabric{}
	if plan != nil {
		f.wins = make([][]faults.Window, len(t.Switches))
		for i := range t.Switches {
			f.wins[i] = plan.SwitchWindows(t.switchName(i))
		}
	}
	if explicit {
		f.root = sim.NewPipe("host-uplink", host.BW)
		f.root.Latency = host.DispatchLatency
		for i, sw := range t.Switches {
			name := t.switchName(i)
			bw := sw.BW
			if bw == 0 {
				bw = DefaultHost().BW
			}
			p := sim.NewPipe(name, bw)
			p.Latency = sw.DispatchLatency
			f.sws = append(f.sws, p)
			f.labels = append(f.labels, name)
		}
		return f
	}
	link := sim.NewPipe("host-switch", host.BW)
	link.Latency = host.DispatchLatency
	f.sws = []*sim.Pipe{link}
	f.labels = []string{""}
	return f
}

// degrade applies switch sw's fault windows to a dispatch requested at
// time at: a flap window stalls the request to the window's end
// (cascading through later windows), a throttle window inflates the
// transfer's effective size by 100/factor. Both adjustments are
// monotone in at, so FIFO request order through the pipe is preserved.
func (f *fabric) degrade(at units.Duration, sw int, bytes int64) (units.Duration, int64) {
	for _, w := range f.wins[sw] {
		if at < w.From || at >= w.Until {
			continue
		}
		if w.FactorPct == 0 {
			at = w.Until // link down: dispatch waits out the flap
		} else {
			bytes = (bytes*100 + int64(w.FactorPct) - 1) / int64(w.FactorPct)
		}
	}
	return at, bytes
}

// dispatch books one kernel download to a card behind switch sw, requested
// at time at, and returns its arrival: through the root uplink first (when
// present), then the owning switch. Both pipes are FIFO, so callers must
// issue dispatches with non-decreasing request times — which the claim
// loop's non-decreasing free instants and the round-robin card order both
// guarantee.
func (f *fabric) dispatch(at units.Duration, sw int, bytes int64) units.Duration {
	if f.root != nil {
		_, at = f.root.Transfer(at, bytes)
	}
	if f.wins != nil {
		at, bytes = f.degrade(at, sw, bytes)
	}
	_, end := f.sws[sw].Transfer(at, bytes)
	return end
}

// label returns the stats label of switch sw ("" in implicit mode, so the
// classic path aggregates without per-switch rows).
func (f *fabric) label(sw int) string { return f.labels[sw] }

// assignApps distributes application indices across cards by weighted
// deficit round-robin: each application goes to the card maximizing
// weight/(assigned+1), ties to the lowest card id. Equal weights reduce
// exactly to the classic i mod N rotation; skewed topologies send
// proportionally more applications to more capable cards.
func assignApps(cards []card, napps int) [][]int {
	shards := make([][]int, len(cards))
	for i := 0; i < napps; i++ {
		best := 0
		bestScore := cards[0].weight / float64(len(shards[0])+1)
		for c := 1; c < len(cards); c++ {
			if score := cards[c].weight / float64(len(shards[c])+1); score > bestScore {
				best, bestScore = c, score
			}
		}
		shards[best] = append(shards[best], i)
	}
	return shards
}

// offloadBytes is the wire size of an application set's kernel description
// tables — what the shared host link carries per dispatch. Encoding errors
// surface later, when the card's own offload encodes the same tables.
func offloadBytes(apps []workload.App) int64 {
	var n int64
	for _, app := range apps {
		for _, t := range app.Tables {
			if blob, err := t.Encode(); err == nil {
				n += int64(len(blob))
			}
		}
	}
	return n
}

// runRoundRobin implements the static policy: applications rotate across
// cards (capability-weighted, so a homogeneous topology is exactly the
// classic i mod N), every card runs its subset as one device simulation,
// and each card's run begins when its downloads clear the dispatch fabric.
func runRoundRobin(ctx context.Context, b *workload.Bundle, cards []card, fab *fabric, o Options, plan *faults.Plan) ([]stats.Part, error) {
	assigned := assignApps(cards, len(b.Apps))
	shards := make([][]workload.App, len(cards))
	for c, idxs := range assigned {
		for _, i := range idxs {
			shards[c] = append(shards[c], b.Apps[i])
		}
	}

	// Downloads stream card by card through the fabric, so card c's
	// simulated run starts at its last table's arrival.
	offsets := make([]units.Duration, len(cards))
	for c := range shards {
		if len(shards[c]) == 0 {
			continue
		}
		offsets[c] = fab.dispatch(0, cards[c].sw, offloadBytes(shards[c]))
	}

	results, err := runner.Collect(ctx, runner.New(o.Workers), len(cards),
		func(ctx context.Context, c int) (*stats.Result, error) {
			if len(shards[c]) == 0 {
				return nil, nil // more cards than applications: card stays idle
			}
			res, err := runShard(ctx, c, cards[c].cfg, b, shards[c], o.Images, wearFor(plan, cards[c].cfg))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: card %d: %w", b.Name, cards[c].cfg.System, c, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	if deaths := plan.DeathTimes(len(cards)); deaths != nil {
		return recoverRoundRobin(ctx, b, cards, fab, o, plan, deaths, assigned, offsets, results)
	}
	return collectParts(results, offsets, cards, fab, nil), nil
}

// collectParts labels per-card results with their owning switch. Idle
// cards (nil results) are dropped on the classic unlabeled path, but kept
// as empty labeled parts under an explicit topology so per-switch card
// counts — and hence per-switch utilization denominators — stay honest.
// faultsBy, when non-nil, attaches each card's fault records to its part;
// a dead card whose whole result was lost still surfaces its record
// through an otherwise-empty part.
func collectParts(results []*stats.Result, offsets []units.Duration, cards []card, fab *fabric, faultsBy [][]stats.FaultRecord) []stats.Part {
	var parts []stats.Part
	for c, res := range results {
		label := fab.label(cards[c].sw)
		var fr []stats.FaultRecord
		if faultsBy != nil {
			fr = faultsBy[c]
		}
		if res != nil {
			parts = append(parts, stats.Part{Res: res, Offset: offsets[c], Switch: label, Faults: fr})
		} else if label != "" || len(fr) > 0 {
			parts = append(parts, stats.Part{Switch: label, Faults: fr})
		}
	}
	return parts
}

// runWorkSteal implements the dynamic policy in two phases.
//
// Probe: every kernel instance runs standalone as its own device
// simulation, once per distinct card class (concurrently in wall clock),
// yielding the per-class runtime estimates the host's dispatcher schedules
// by — the stand-in for the completion notifications InterDy reacts to
// inside a card. A homogeneous topology has one class, so it probes
// exactly the classic per-instance set.
//
// Claim loop: in simulated time, the card with the earliest estimated free
// instant claims the next queued instance, paying the dispatch-fabric
// download before its estimated run. Because a claim's arrival includes
// the owning switch's queueing delay, a congested switch pushes its cards'
// free instants out and the loop naturally routes later claims to the
// other subtree. The loop fixes only the instance-to-card mapping and each
// card's first-dispatch time; the cards then execute their claimed sets as
// ordinary self-governed device simulations, so a card's internal governor
// still overlaps its instances. Both phases are deterministic regardless
// of wall-clock worker count.
func runWorkSteal(ctx context.Context, b *workload.Bundle, cards []card, classCfgs []core.Config, fab *fabric, o Options, plan *faults.Plan) ([]stats.Part, error) {
	var instances []workload.App
	for _, app := range b.Apps {
		for k, t := range app.Tables {
			instances = append(instances, workload.App{
				Name:   fmt.Sprintf("%s#%d", app.Name, k),
				Tables: []*kdt.Table{t},
			})
		}
	}

	// probes[cls*len(instances)+i] estimates instance i on card class cls.
	// With wear active the probe memo is bypassed: its key does not carry
	// the plan, and the estimates must be wear-aware so the claim loop
	// schedules against the latencies the cards will actually see.
	n := len(instances)
	probes, err := runner.Collect(ctx, runner.New(o.Workers), len(classCfgs)*n,
		func(ctx context.Context, flat int) (*stats.Result, error) {
			cls, i := flat/n, flat%n
			probe := func(ctx context.Context) (*stats.Result, error) {
				return runShard(ctx, i, classCfgs[cls], b, instances[i:i+1], o.Images, wearFor(plan, classCfgs[cls]))
			}
			var res *stats.Result
			var err error
			if plan.WearActive() {
				res, err = probe(ctx)
			} else {
				res, err = o.Images.Probe(ctx, classCfgs[cls], b, instances[i].Name, probe)
			}
			if err != nil {
				return nil, fmt.Errorf("%s/%s: probe %s (class %d): %w",
					b.Name, classCfgs[cls].System, instances[i].Name, cls, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}

	free := make([]units.Duration, len(cards))
	claims := make([][]workload.App, len(cards))
	starts := make([]units.Duration, len(cards))
	var faultsBy [][]stats.FaultRecord
	if deaths := plan.DeathTimes(len(cards)); deaths != nil {
		var err error
		faultsBy, err = claimWithDeaths(b, cards, fab, plan, deaths, instances, probes, free, claims, starts)
		if err != nil {
			return nil, err
		}
	} else {
		for i, inst := range instances {
			best := 0
			for c := 1; c < len(cards); c++ {
				if free[c] < free[best] {
					best = c
				}
			}
			// The claim order visits non-decreasing free instants, so the
			// fabric's pipes see FIFO request times as their model requires.
			arrive := fab.dispatch(free[best], cards[best].sw, offloadBytes(instances[i:i+1]))
			if len(claims[best]) == 0 {
				starts[best] = arrive
			}
			claims[best] = append(claims[best], inst)
			free[best] = arrive + probes[cards[best].class*n+i].Makespan
		}
	}

	results, err := runner.Collect(ctx, runner.New(o.Workers), len(cards),
		func(ctx context.Context, c int) (*stats.Result, error) {
			if len(claims[c]) == 0 {
				return nil, nil // more cards than instances: card stays idle
			}
			res, err := runShard(ctx, c, cards[c].cfg, b, claims[c], o.Images, wearFor(plan, cards[c].cfg))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: card %d: %w", b.Name, cards[c].cfg.System, c, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	// A card starts when its first claim lands; later claims'
	// microsecond-scale downloads overlap its execution.
	return collectParts(results, starts, cards, fab, faultsBy), nil
}

// runShard walks one card through the node lifecycle for a subset of the
// bundle's applications. The full input set is replicated to each card —
// with an image cache by forking the card class's populated image
// copy-on-write, without one by populating from scratch.
func runShard(ctx context.Context, id int, cfg core.Config, b *workload.Bundle, apps []workload.App, images *ImageCache, ret flash.ReadRetrier) (*stats.Result, error) {
	var n *Node
	if images != nil && bundleID(b) != "" {
		img, err := images.Populated(ctx, cfg, b)
		switch {
		case err == nil:
			if n, err = NewNodeFromImage(id, img, cfg); err != nil {
				return nil, fmt.Errorf("fork: %w", err)
			}
		case errors.Is(err, core.ErrUnforkable):
			// fall through to the plain lifecycle below
		default:
			return nil, fmt.Errorf("image: %w", err)
		}
	}
	if n == nil {
		var err error
		if n, err = NewNode(id, cfg); err != nil {
			return nil, err
		}
		if err := n.Populate(b.Populate); err != nil {
			return nil, fmt.Errorf("populate: %w", err)
		}
	}
	if err := n.Offload(apps); err != nil {
		return nil, fmt.Errorf("offload: %w", err)
	}
	if ret != nil {
		n.Device().InstallFlashRetrier(ret)
	}
	return n.Run(ctx)
}
