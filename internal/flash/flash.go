// Package flash models the FlashAbacus flash backbone: 32 GB of TLC flash
// organized as 4 NV-DDR2 channels × 4 packages × 2 dies × 2 planes (paper
// §2.2 and Table 1), with 8 KB pages and 256-page blocks.
//
// The unit of address translation is the page group (§4.3): one page from
// each of the 4 channels × 2 planes of a single die row, 64 KB in total.
// Timing is modelled with per-die sensing/program occupancy and per-channel
// bus transfers, so sequential streams pipeline naturally and concurrent
// kernels contend for the same buses the hardware would serialize on.
//
// When Functional is true the backbone stores real page-group payloads, so
// garbage collection, journaling, and kernel reads can be verified end to
// end; otherwise only validity metadata is kept.
package flash

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// Geometry describes the physical organization of the backbone.
type Geometry struct {
	Channels      int   // NV-DDR2 channels (4)
	PackagesPerCh int   // flash packages per channel (4)
	DiesPerPkg    int   // dies per package (2)
	PlanesPerDie  int   // planes per die (2)
	PageSize      int64 // bytes per page (8 KB)
	PagesPerBlock int   // pages per block (256)
	BlocksPerDie  int   // blocks per plane-pair, i.e. per die row slice (256)
	MetaPages     int   // pages reserved at the start of each block for mapping metadata (2)
}

// DefaultGeometry returns the prototype's 32 GB organization.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:      4,
		PackagesPerCh: 4,
		DiesPerPkg:    2,
		PlanesPerDie:  2,
		PageSize:      8 * units.KB,
		PagesPerBlock: 256,
		BlocksPerDie:  256,
		MetaPages:     2,
	}
}

// DieRows returns the number of die rows: dies per channel, where a die row
// is the set of same-indexed dies across all channels. One page group lives
// entirely within one die row.
func (g Geometry) DieRows() int { return g.PackagesPerCh * g.DiesPerPkg }

// GroupSize returns the bytes in one page group:
// channels × planes-per-die × page size.
func (g Geometry) GroupSize() int64 {
	return int64(g.Channels*g.PlanesPerDie) * g.PageSize
}

// GroupsPerSuperBlock returns the page groups in one super block (one block
// row across a die row), including metadata groups.
func (g Geometry) GroupsPerSuperBlock() int { return g.PagesPerBlock }

// DataGroupsPerSuperBlock returns the usable page groups in one super block
// after reserving the metadata pages.
func (g Geometry) DataGroupsPerSuperBlock() int { return g.PagesPerBlock - g.MetaPages }

// SuperBlocks returns the total number of super blocks.
func (g Geometry) SuperBlocks() int { return g.DieRows() * g.BlocksPerDie }

// TotalGroups returns the total physical page groups (including metadata).
func (g Geometry) TotalGroups() int64 {
	return int64(g.SuperBlocks()) * int64(g.GroupsPerSuperBlock())
}

// Capacity returns the raw capacity in bytes.
func (g Geometry) Capacity() int64 { return g.TotalGroups() * g.GroupSize() }

// Validate reports a configuration error, or nil.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0 || g.PackagesPerCh <= 0 || g.DiesPerPkg <= 0 || g.PlanesPerDie <= 0:
		return fmt.Errorf("flash: non-positive geometry dimension %+v", g)
	case g.PageSize <= 0 || g.PagesPerBlock <= 0 || g.BlocksPerDie <= 0:
		return fmt.Errorf("flash: non-positive page organization %+v", g)
	case g.MetaPages < 0 || g.MetaPages >= g.PagesPerBlock:
		return fmt.Errorf("flash: metadata pages %d out of range", g.MetaPages)
	}
	return nil
}

// Timing holds the TLC device timings (paper §2.2: 8 KB page read ≈ 81 µs,
// program ≈ 2.6 ms) and the per-channel NV-DDR2 bus rate.
type Timing struct {
	ReadPage    units.Duration  // array sensing time (multi-plane)
	ProgramPage units.Duration  // program time (multi-plane)
	EraseBlock  units.Duration  // block erase time (multi-plane)
	ChannelBW   units.Bandwidth // NV-DDR2 bus bandwidth per channel
}

// DefaultTiming returns the prototype's published timings.
func DefaultTiming() Timing {
	return Timing{
		ReadPage:    81 * units.Microsecond,
		ProgramPage: 2600 * units.Microsecond,
		EraseBlock:  5 * units.Millisecond,
		ChannelBW:   200 * units.MBps * 4, // 200 MHz × 8-bit DDR ≈ 800 MB/s
	}
}

// PhysGroup identifies a physical page group by linear index.
type PhysGroup int64

// SuperBlock identifies a super block (a block row across one die row).
type SuperBlock int32

// GroupAddr is the decomposed location of a page group.
type GroupAddr struct {
	DieRow int // die index within each channel
	Block  int // block index within the die row
	Page   int // page index within the block
}

// Decompose splits a linear physical group index into its die-row, block,
// and page coordinates. Consecutive group indices rotate across die rows so
// that log-structured writes interleave dies, as the FPGA controllers do.
func (g Geometry) Decompose(pg PhysGroup) GroupAddr {
	rows := int64(g.DieRows())
	perRow := int64(g.BlocksPerDie) * int64(g.PagesPerBlock)
	row := int64(pg) % rows
	q := int64(pg) / rows
	if q >= perRow {
		panic(fmt.Sprintf("flash: group %d beyond capacity", pg))
	}
	return GroupAddr{
		DieRow: int(row),
		Block:  int(q / int64(g.PagesPerBlock)),
		Page:   int(q % int64(g.PagesPerBlock)),
	}
}

// Compose is the inverse of Decompose.
func (g Geometry) Compose(a GroupAddr) PhysGroup {
	q := int64(a.Block)*int64(g.PagesPerBlock) + int64(a.Page)
	return PhysGroup(q*int64(g.DieRows()) + int64(a.DieRow))
}

// SuperBlockOf returns the super block containing a page group.
func (g Geometry) SuperBlockOf(pg PhysGroup) SuperBlock {
	a := g.Decompose(pg)
	return SuperBlock(a.DieRow*g.BlocksPerDie + a.Block)
}

// GroupsOf returns the page-group range of a super block: the group for each
// page index. Metadata groups come first.
func (g Geometry) GroupsOf(sb SuperBlock) []PhysGroup {
	out := make([]PhysGroup, g.PagesPerBlock)
	pg, step := g.GroupSpan(sb)
	for p := 0; p < g.PagesPerBlock; p++ {
		out[p] = pg + PhysGroup(int64(p)*step)
	}
	return out
}

// GroupSpan returns the first page group of a super block and the index
// stride between consecutive pages, so callers can walk a super block's
// groups (first + i*step for i in [0, PagesPerBlock)) without allocating
// the slice GroupsOf builds.
func (g Geometry) GroupSpan(sb SuperBlock) (first PhysGroup, step int64) {
	row := int(sb) / g.BlocksPerDie
	block := int(sb) % g.BlocksPerDie
	return g.Compose(GroupAddr{DieRow: row, Block: block, Page: 0}), int64(g.DieRows())
}

// Backbone is the simulated flash array.
type Backbone struct {
	Geo Geometry
	Tim Timing

	// Functional controls whether page payloads are stored. Timing-only
	// runs (the large paper-scale sweeps) leave it off to bound memory.
	Functional bool

	channels []*sim.Pipe     // data bus per channel
	dies     []*sim.Resource // sensing/program occupancy per (channel, dieRow)
	// wb drains buffered host writes at the aggregate program rate without
	// stalling reads: DDR3L "can take over the roles of the traditional
	// SSD internal cache" (paper §2.2), so data-path programs are absorbed
	// and flushed behind foreground reads. GC migrations, journals, and
	// erases still occupy dies directly.
	wb         *sim.Pipe
	wbPrograms int64

	erases   []int64 // per super block
	programs int64
	reads    int64
	// retrier, when set, charges deterministic extra sensing cycles per
	// read (worn superblocks, read-retry storms); retries/retryTime
	// account for what it injected.
	retrier   ReadRetrier
	retries   int64
	retryTime units.Duration
	store     map[PhysGroup][]byte
	// base is the immutable payload layer of a forked backbone (nil when
	// the backbone was built fresh). Reads fall through to it; writes and
	// erases shadow it in store, where a nil entry is a tombstone — the
	// group was erased or migrated away on this fork and the base payload
	// must not show through. Base buffers are never mutated or recycled.
	base map[PhysGroup][]byte
	// bufPool recycles full-group payload buffers freed by erases so
	// functional runs do not reallocate 64 KB per program in steady state.
	bufPool [][]byte

	rows  int64 // cached Geo.DieRows()
	perCh int64 // cached per-channel bytes of one group
}

// NewBackbone builds a backbone with the given geometry and timing.
func NewBackbone(geo Geometry, tim Timing) (*Backbone, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	b := &Backbone{
		Geo: geo, Tim: tim, store: make(map[PhysGroup][]byte),
		rows:  int64(geo.DieRows()),
		perCh: int64(geo.PlanesPerDie) * geo.PageSize,
	}
	b.channels = make([]*sim.Pipe, geo.Channels)
	for c := range b.channels {
		b.channels[c] = sim.NewPipe(fmt.Sprintf("flash-ch%d", c), tim.ChannelBW)
	}
	b.dies = make([]*sim.Resource, geo.Channels*geo.DieRows())
	for i := range b.dies {
		b.dies[i] = sim.NewResource(fmt.Sprintf("die-%d", i))
	}
	// Aggregate program rate: every die row can program one group (one
	// multi-plane page per die) per ProgramPage.
	wbBW := units.Bandwidth(int64(geo.DieRows()) * geo.GroupSize() * int64(units.Second) / int64(tim.ProgramPage))
	if wbBW <= 0 {
		return nil, fmt.Errorf("flash: degenerate write-back bandwidth")
	}
	b.wb = sim.NewPipe("flash-writeback", wbBW)
	b.erases = make([]int64, geo.SuperBlocks())
	return b, nil
}

func (b *Backbone) die(ch, row int) *sim.Resource { return b.dies[ch*b.Geo.DieRows()+row] }

// rowOf returns a group's die row — the only coordinate the timing model
// needs — without the full divisions of Decompose.
func (b *Backbone) rowOf(pg PhysGroup) int {
	if int64(pg)/b.rows >= int64(b.Geo.BlocksPerDie)*int64(b.Geo.PagesPerBlock) {
		panic(fmt.Sprintf("flash: group %d beyond capacity", pg))
	}
	return int(int64(pg) % b.rows)
}

// ReadRetrier charges deterministic extra sensing cycles for a read:
// the wear model (internal/faults) implements it. Retries must be a
// pure function of its arguments so shared instances stay
// deterministic across concurrently simulating backbones.
type ReadRetrier interface {
	Retries(at sim.Time, pg PhysGroup, seq int64) int
}

// SetRetrier installs (or, with nil, removes) the per-read wear model.
func (b *Backbone) SetRetrier(r ReadRetrier) { b.retrier = r }

// RetryStats returns the injected read retries and the total extra
// sensing time they cost.
func (b *Backbone) RetryStats() (retries int64, retryTime units.Duration) {
	return b.retries, b.retryTime
}

// readGroupRow books one page-group read on the given die row, holding
// each die for sense (ReadPage plus any injected retry cycles).
func (b *Backbone) readGroupRow(at sim.Time, row int, sense units.Duration) sim.Time {
	done := at
	for ch := 0; ch < b.Geo.Channels; ch++ {
		_, senseEnd := b.die(ch, row).Reserve(at, sense)
		_, xferEnd := b.channels[ch].Transfer(senseEnd, b.perCh)
		if xferEnd > done {
			done = xferEnd
		}
	}
	b.reads++
	return done
}

// ReadGroup books a page-group read requested at time at and returns when
// the data is available on the channel side. All channels sense in parallel;
// each channel then moves planes-per-die pages over its bus. An installed
// ReadRetrier stretches the sense phase by whole ReadPage cycles — wear
// surfaces as latency, never as a failed read.
func (b *Backbone) ReadGroup(at sim.Time, pg PhysGroup) sim.Time {
	sense := b.Tim.ReadPage
	if b.retrier != nil {
		if n := b.retrier.Retries(at, pg, b.reads); n > 0 {
			extra := units.Duration(n) * b.Tim.ReadPage
			sense += extra
			b.retries += int64(n)
			b.retryTime += extra
		}
	}
	return b.readGroupRow(at, b.rowOf(pg), sense)
}

// ProgramGroup books a page-group program requested at time at and returns
// when the program completes on all dies. Data moves over each channel bus
// first, then the dies program in parallel.
func (b *Backbone) ProgramGroup(at sim.Time, pg PhysGroup) sim.Time {
	row := b.rowOf(pg)
	done := at
	for ch := 0; ch < b.Geo.Channels; ch++ {
		_, xferEnd := b.channels[ch].Transfer(at, b.perCh)
		_, progEnd := b.die(ch, row).Reserve(xferEnd, b.Tim.ProgramPage)
		if progEnd > done {
			done = progEnd
		}
	}
	b.programs++
	return done
}

// ProgramGroupBuffered books a host write drained from the DDR3L write
// buffer: it consumes the aggregate program bandwidth of the backbone but
// does not stall foreground reads on the dies. It returns the drain time.
func (b *Backbone) ProgramGroupBuffered(at sim.Time, pg PhysGroup) sim.Time {
	_, end := b.wb.Transfer(at, b.Geo.GroupSize())
	b.programs++
	b.wbPrograms++
	return end
}

// EraseSuper books a super-block erase and returns its completion time.
func (b *Backbone) EraseSuper(at sim.Time, sb SuperBlock) sim.Time {
	row := int(sb) / b.Geo.BlocksPerDie
	done := at
	for ch := 0; ch < b.Geo.Channels; ch++ {
		_, end := b.die(ch, row).Reserve(at, b.Tim.EraseBlock)
		if end > done {
			done = end
		}
	}
	b.erases[sb]++
	if b.Functional {
		pg, step := b.Geo.GroupSpan(sb)
		for p := 0; p < b.Geo.PagesPerBlock; p++ {
			if buf, ok := b.store[pg]; ok {
				if buf != nil {
					b.bufPool = append(b.bufPool, buf)
				}
				delete(b.store, pg)
			}
			if b.base != nil {
				if _, ok := b.base[pg]; ok {
					b.store[pg] = nil // tombstone: hide the base payload
				}
			}
			pg += PhysGroup(step)
		}
	}
	return done
}

// Store saves a functional payload for a page group. It is a no-op unless
// Functional is set. The payload is copied, reusing a buffer recycled from
// an earlier erase (or an overwritten mapping) when one fits.
func (b *Backbone) Store(pg PhysGroup, data []byte) {
	if !b.Functional {
		return
	}
	if int64(len(data)) > b.Geo.GroupSize() {
		panic(fmt.Sprintf("flash: payload %d exceeds group size %d", len(data), b.Geo.GroupSize()))
	}
	if old, ok := b.store[pg]; ok && old != nil {
		b.bufPool = append(b.bufPool, old)
	}
	cp := b.getBuf(len(data))
	copy(cp, data)
	b.store[pg] = cp
}

// getBuf returns a payload buffer of length n, recycling the pool when a
// pooled buffer is large enough.
func (b *Backbone) getBuf(n int) []byte {
	for i := len(b.bufPool) - 1; i >= 0; i-- {
		if cap(b.bufPool[i]) >= n {
			buf := b.bufPool[i][:n]
			b.bufPool[i] = b.bufPool[len(b.bufPool)-1]
			b.bufPool[len(b.bufPool)-1] = nil
			b.bufPool = b.bufPool[:len(b.bufPool)-1]
			return buf
		}
	}
	return make([]byte, n)
}

// Load returns the functional payload for a page group, or nil if none (or
// if the backbone is timing-only). A forked backbone reads through to its
// shared base layer unless this fork has overwritten or erased the group.
func (b *Backbone) Load(pg PhysGroup) []byte {
	if buf, ok := b.store[pg]; ok {
		return buf // includes nil tombstones on forks
	}
	if b.base != nil {
		return b.base[pg]
	}
	return nil
}

// Move copies the functional payload from src to dst (used by GC migration).
// On a forked backbone a payload still living in the shared base layer is
// copied into fork-private storage first, so sibling forks and the image
// never observe the migration.
func (b *Backbone) Move(src, dst PhysGroup) {
	if !b.Functional {
		return
	}
	if d, ok := b.store[src]; ok {
		if d == nil {
			return // tombstone: nothing to move
		}
		b.store[dst] = d
		if b.base != nil {
			b.store[src] = nil
		} else {
			delete(b.store, src)
		}
		return
	}
	if b.base != nil {
		if d, ok := b.base[src]; ok {
			cp := b.getBuf(len(d))
			copy(cp, d)
			b.store[dst] = cp
			b.store[src] = nil
		}
	}
}

// SnapshotStore freezes the current functional payloads into an immutable
// base layer shared between the returned map and this backbone: the live
// backbone keeps working copy-on-write over it, exactly like a fork. It
// returns nil when no payloads exist (timing-only runs), so images of
// timing-only devices carry no store at all.
func (b *Backbone) SnapshotStore() map[PhysGroup][]byte {
	if len(b.store) == 0 && b.base == nil {
		return nil
	}
	flat := make(map[PhysGroup][]byte, len(b.base)+len(b.store))
	for pg, buf := range b.base {
		flat[pg] = buf
	}
	for pg, buf := range b.store {
		if buf == nil {
			delete(flat, pg)
		} else {
			flat[pg] = buf
		}
	}
	b.base = flat
	b.store = make(map[PhysGroup][]byte)
	return flat
}

// AttachBase installs an immutable payload layer captured by SnapshotStore
// on a freshly built backbone (the fork path). The map and its buffers must
// never be mutated by the caller.
func (b *Backbone) AttachBase(base map[PhysGroup][]byte) {
	b.base = base
}

// EraseCount returns the erase count of a super block.
func (b *Backbone) EraseCount(sb SuperBlock) int64 { return b.erases[sb] }

// TotalErases returns the sum of all erase counts.
func (b *Backbone) TotalErases() int64 {
	var n int64
	for _, e := range b.erases {
		n += e
	}
	return n
}

// Reads and Programs return operation counts; ChannelBusy returns the total
// busy time across channel buses (for energy accounting).
func (b *Backbone) Reads() int64    { return b.reads }
func (b *Backbone) Programs() int64 { return b.programs }

// ChannelBusy returns the summed busy time of all channel buses.
func (b *Backbone) ChannelBusy() units.Duration {
	var d units.Duration
	for _, c := range b.channels {
		d += c.Busy()
	}
	return d
}

// DieBusy returns the summed busy time of all dies, including the die time
// buffered programs consume while draining (each buffered group programs
// one die on every channel of its row for ProgramPage).
func (b *Backbone) DieBusy() units.Duration {
	d := units.Duration(b.wbPrograms) * b.Tim.ProgramPage * units.Duration(b.Geo.Channels)
	for _, r := range b.dies {
		d += r.Busy()
	}
	return d
}

// BusyUntil returns the latest instant any die, channel, or the write-back
// drain is booked, which bounds the device-side drain time.
func (b *Backbone) BusyUntil() sim.Time {
	t := b.wb.FreeAt()
	for _, c := range b.channels {
		if c.FreeAt() > t {
			t = c.FreeAt()
		}
	}
	for _, r := range b.dies {
		if r.FreeAt() > t {
			t = r.FreeAt()
		}
	}
	return t
}
