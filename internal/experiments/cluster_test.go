package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

func TestClusterCellsShape(t *testing.T) {
	cells := Cells("cluster")
	if cells == nil {
		t.Fatal("cluster experiment has no cells")
	}
	workloads := len(ClusterApps) + len(ClusterMixes)
	// devices=1 is policy-independent: one shared cell per workload, then
	// one cell per (count>1, policy).
	want := workloads * (1 + (len(ClusterDeviceCounts)-1)*len(cluster.Policies))
	if len(cells) != want {
		t.Errorf("%d cluster cells, want %d", len(cells), want)
	}
	ones := 0
	for _, j := range cells {
		if j.Kind != KindCluster {
			t.Errorf("cell %s has kind %d", j, j.Kind)
		}
		if j.Devices == 1 {
			ones++
			if j.Policy != cluster.RoundRobin {
				t.Errorf("devices=1 cell %s not policy-normalized", j)
			}
		}
	}
	if ones != workloads {
		t.Errorf("%d devices=1 cells, want %d", ones, workloads)
	}
}

func TestSuiteCellsForCapsDevices(t *testing.T) {
	s := NewSuite(256)
	s.MaxDevices = 2
	for _, j := range s.CellsFor([]string{"cluster"}) {
		if j.Devices > 2 {
			t.Errorf("cell %s exceeds the 2-device cap", j)
		}
	}
	// Non-cluster ids pass through unchanged, and the free function keeps
	// the full sweep.
	if got, want := len(s.CellsFor([]string{"fig15"})), len(Cells("fig15")); got != want {
		t.Errorf("fig15 cells %d, want %d", got, want)
	}
	full := CellsFor([]string{"cluster"})
	if len(full) != len(Cells("cluster")) {
		t.Errorf("free CellsFor filtered cluster cells")
	}
}

func TestClusterJobString(t *testing.T) {
	j := Job{Kind: KindCluster, Name: "ATAX", Sys: core.IntraO3, Devices: 4, Policy: cluster.WorkSteal}
	if got := j.String(); !strings.Contains(got, "ATAX") || !strings.Contains(got, "4") {
		t.Errorf("job string %q names neither workload nor devices", got)
	}
	j = Job{Kind: KindCluster, Mix: 3, Sys: core.IntraO3, Devices: 2}
	if got := j.String(); !strings.Contains(got, "MX3") {
		t.Errorf("mix job string %q lacks MX3", got)
	}
}

// The acceptance property of the scaling study: at the default -scale 16,
// every (workload, policy) row reports monotonically non-decreasing
// aggregate throughput as cards are added.
func TestClusterScalingMonotonicAtDefaultScale(t *testing.T) {
	s := NewSuite(16)
	ctx := context.Background()
	if err := s.Prewarm(ctx, Cells("cluster")); err != nil {
		t.Fatal(err)
	}
	for _, base := range clusterBases() {
		for _, p := range cluster.Policies {
			prev := 0.0
			for _, d := range ClusterDeviceCounts {
				j := base
				j.Devices = d
				if d > 1 {
					j.Policy = p
				}
				r, err := s.Run(ctx, j)
				if err != nil {
					t.Fatal(err)
				}
				if tput := r.ThroughputMBps(); tput < prev {
					t.Errorf("%s %s: throughput dropped from %.1f to %.1f MB/s at %d devices",
						base.workloadName(), p, prev, tput, d)
				} else {
					prev = tput
				}
			}
		}
	}
}

func TestClusterRenderAndCache(t *testing.T) {
	s := NewSuite(256)
	s.MaxDevices = 2
	out, err := s.Cluster(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cluster scaling", "throughput", "energy", "round-robin", "work-steal", "ATAX", "MX1"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster render lacks %q", want)
		}
	}
	if strings.Contains(out, "8 dev") {
		t.Error("cluster render ignored the 2-device cap")
	}
	// A second render is pure cache assembly and must be identical.
	again, err := s.Cluster(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Error("cluster render not deterministic across cache hits")
	}
}
