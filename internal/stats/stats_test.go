package stats

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestThroughput(t *testing.T) {
	r := Result{Bytes: 500 * 1000 * 1000, Makespan: units.Second}
	if got := r.ThroughputMBps(); math.Abs(got-500) > 1e-9 {
		t.Errorf("throughput = %v, want 500", got)
	}
	empty := Result{}
	if empty.ThroughputMBps() != 0 {
		t.Error("zero makespan should yield zero throughput")
	}
}

func TestLatencyStats(t *testing.T) {
	r := Result{KernelLatencies: []units.Duration{30, 10, 20}}
	mn, av, mx := r.LatencyStats()
	if mn != 10 || av != 20 || mx != 30 {
		t.Errorf("latency stats = %d/%d/%d", mn, av, mx)
	}
	var empty Result
	if a, b, c := empty.LatencyStats(); a != 0 || b != 0 || c != 0 {
		t.Error("empty latencies should be zero")
	}
}

func TestCDFSortedAndCounted(t *testing.T) {
	r := Result{CompletionTimes: []units.Time{50, 10, 30}}
	cdf := r.CDF()
	if len(cdf) != 3 {
		t.Fatalf("cdf len = %d", len(cdf))
	}
	if cdf[0].Time != 10 || cdf[0].Completed != 1 {
		t.Errorf("first point = %+v", cdf[0])
	}
	if cdf[2].Time != 50 || cdf[2].Completed != 3 {
		t.Errorf("last point = %+v", cdf[2])
	}
	// Original slice untouched.
	if r.CompletionTimes[0] != 50 {
		t.Error("CDF mutated input")
	}
}

func TestBreakdownFracs(t *testing.T) {
	r := Result{AccelTime: 20, SSDTime: 30, StackTime: 50}
	a, s, st := r.BreakdownFracs()
	if math.Abs(a-0.2) > 1e-12 || math.Abs(s-0.3) > 1e-12 || math.Abs(st-0.5) > 1e-12 {
		t.Errorf("fracs = %v %v %v", a, s, st)
	}
	var empty Result
	if a, s, st := empty.BreakdownFracs(); a+s+st != 0 {
		t.Error("empty breakdown should be zero")
	}
}

func TestStringIncludesKeyNumbers(t *testing.T) {
	r := Result{System: "IntraO3", Workload: "ATAX", Bytes: 1e9, Makespan: units.Second,
		KernelLatencies: []units.Duration{units.Second}}
	s := r.String()
	if s == "" {
		t.Fatal("empty summary")
	}
	for _, want := range []string{"ATAX", "IntraO3", "1000.0 MB/s"} {
		if !contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
