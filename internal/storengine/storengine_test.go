package storengine

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/flashctrl"
	"repro/internal/flashvisor"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/units"
)

// smallGeo mirrors the flashvisor test geometry so GC triggers quickly.
func smallGeo() flash.Geometry {
	return flash.Geometry{
		Channels:      4,
		PackagesPerCh: 1,
		DiesPerPkg:    1,
		PlanesPerDie:  2,
		PageSize:      8 * units.KB,
		PagesPerBlock: 8,
		BlocksPerDie:  8,
		MetaPages:     2,
	}
}

func newVisor(t *testing.T) *flashvisor.Visor {
	t.Helper()
	bb, err := flash.NewBackbone(smallGeo(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := flashctrl.New(flashctrl.DefaultConfig(), bb)
	if err != nil {
		t.Fatal(err)
	}
	ddr, _ := mem.New(mem.DDR3LConfig())
	spad, _ := mem.New(mem.ScratchpadConfig())
	net, _ := noc.New(noc.DefaultConfig())
	v, err := flashvisor.New(flashvisor.DefaultConfig(), ctrl, ddr, spad, net)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	var eng sim.Engine
	v := newVisor(t)
	bad := DefaultConfig()
	bad.ScanPeriod = 0
	if _, err := New(bad, &eng, v); err == nil {
		t.Error("zero scan period accepted")
	}
	bad = DefaultConfig()
	bad.GCThreshold = 0
	if _, err := New(bad, &eng, v); err == nil {
		t.Error("zero GC threshold accepted")
	}
	// Disabled engines skip validation entirely.
	if _, err := New(Config{Enabled: false}, &eng, v); err != nil {
		t.Errorf("disabled engine rejected: %v", err)
	}
}

func TestDisabledEngineDoesNothing(t *testing.T) {
	var eng sim.Engine
	v := newVisor(t)
	e, _ := New(Config{Enabled: false}, &eng, v)
	e.Start()
	eng.Run()
	if e.Stats().Ticks != 0 {
		t.Error("disabled engine ticked")
	}
}

func TestBackgroundReclaimKeepsFreePool(t *testing.T) {
	var eng sim.Engine
	v := newVisor(t)
	cfg := DefaultConfig()
	cfg.ScanPeriod = 1 * units.Millisecond
	cfg.GCThreshold = 4
	e, err := New(cfg, &eng, v)
	if err != nil {
		t.Fatal(err)
	}
	// Fill most of the device up front so the pool is below threshold.
	if _, err := v.MapWrite(0, 1, 0, v.FTL.LogicalBytes(), nil); err != nil {
		t.Fatal(err)
	}
	if v.FTL.FreeSuperBlocks() >= cfg.GCThreshold {
		t.Skip("device not low enough on space; geometry changed?")
	}
	e.Start()
	eng.RunUntil(200 * units.Millisecond)
	e.Stop()
	eng.Run()
	if e.Stats().BGReclaims == 0 {
		t.Error("background GC never ran despite low free pool")
	}
	if err := v.FTL.CheckConsistency(); err != nil {
		t.Error(err)
	}
	if e.CPUBusy() == 0 {
		t.Error("storengine LWP shows no occupancy")
	}
}

func TestJournalingIsPeriodic(t *testing.T) {
	var eng sim.Engine
	v := newVisor(t)
	cfg := DefaultConfig()
	cfg.ScanPeriod = 5 * units.Millisecond
	cfg.JournalPeriod = 50 * units.Millisecond
	cfg.JournalBytes = 64 * units.KB
	e, _ := New(cfg, &eng, v)
	e.Start()
	eng.RunUntil(500 * units.Millisecond)
	e.Stop()
	eng.Run()
	// ~500ms / 50ms = about 10 journals (first at ~50ms).
	if got := e.Stats().Journals; got < 8 || got > 12 {
		t.Errorf("journals = %d, want ~10", got)
	}
	if v.Stats().JournalWrites == 0 {
		t.Error("journals did not program metadata pages")
	}
}

func TestStopHaltsTicks(t *testing.T) {
	var eng sim.Engine
	v := newVisor(t)
	cfg := DefaultConfig()
	cfg.ScanPeriod = units.Millisecond
	e, _ := New(cfg, &eng, v)
	e.Start()
	eng.RunUntil(10 * units.Millisecond)
	e.Stop()
	eng.Run() // must terminate: no rescheduling after Stop
	ticks := e.Stats().Ticks
	if ticks == 0 {
		t.Fatal("never ticked")
	}
	if eng.Pending() != 0 {
		t.Error("events still pending after Stop + Run")
	}
}

func TestGreedyPolicyRuns(t *testing.T) {
	var eng sim.Engine
	v := newVisor(t)
	cfg := DefaultConfig()
	cfg.ScanPeriod = units.Millisecond
	cfg.Greedy = true
	e, _ := New(cfg, &eng, v)
	if _, err := v.MapWrite(0, 1, 0, v.FTL.LogicalBytes(), nil); err != nil {
		t.Fatal(err)
	}
	e.Start()
	eng.RunUntil(100 * units.Millisecond)
	e.Stop()
	eng.Run()
	if e.Stats().BGReclaims == 0 {
		t.Error("greedy GC never ran")
	}
	if err := v.FTL.CheckConsistency(); err != nil {
		t.Error(err)
	}
}
