package noc

import (
	"testing"

	"repro/internal/units"
)

func TestDefaultsMatchTable1(t *testing.T) {
	c := DefaultConfig()
	if c.Tier1BW != 16*units.GBps {
		t.Errorf("tier1 = %d, want 16GB/s", c.Tier1BW)
	}
	if c.Tier2BW != 5200*units.MBps {
		t.Errorf("tier2 = %d, want 5.2GB/s", c.Tier2BW)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{Tier1BW: 0, Tier2BW: 1}); err == nil {
		t.Error("zero tier1 accepted")
	}
}

func TestTransfers(t *testing.T) {
	n, err := New(Config{Tier1BW: units.GBps, Tier2BW: units.GBps / 2})
	if err != nil {
		t.Fatal(err)
	}
	if end := n.TransferTier1(0, units.GB); end != units.Second {
		t.Errorf("tier1 1GB = %d, want 1s", end)
	}
	if end := n.TransferTier2(0, units.GB); end != 2*units.Second {
		t.Errorf("tier2 1GB = %d, want 2s", end)
	}
}

func TestMsgQueueLatencyAndSerialization(t *testing.T) {
	n, _ := New(DefaultConfig())
	q := n.NewQueue("flashvisor-in")
	d1 := q.Send(0)
	want := n.Cfg.MsgLatency + n.Cfg.MsgService
	if d1 != want {
		t.Errorf("first message delivered at %d, want %d", d1, want)
	}
	// A burst serializes on the receiver.
	d2 := q.Send(0)
	if d2 != d1+n.Cfg.MsgService {
		t.Errorf("second message at %d, want %d", d2, d1+n.Cfg.MsgService)
	}
	if q.Sent() != 2 {
		t.Errorf("sent = %d", q.Sent())
	}
	if q.Busy() != 2*n.Cfg.MsgService {
		t.Errorf("busy = %d", q.Busy())
	}
}

func TestIndependentQueuesDoNotInterfere(t *testing.T) {
	n, _ := New(DefaultConfig())
	a := n.NewQueue("a")
	b := n.NewQueue("b")
	a.Send(0)
	if got := b.Send(0); got != n.Cfg.MsgLatency+n.Cfg.MsgService {
		t.Errorf("queue b delayed by queue a: %d", got)
	}
}
