package flashvisor

import (
	"repro/internal/rbtree"
	"repro/internal/sim"
	"repro/internal/units"
)

// LockMode distinguishes read and write range locks.
type LockMode int

// Lock modes; conflicts follow the paper's rule: a mapping request is
// blocked while an overlapping range is held for the opposite mode (and
// writes also block writes). Concurrent readers are compatible.
const (
	LockRead LockMode = iota
	LockWrite
)

func (m LockMode) String() string {
	if m == LockRead {
		return "read"
	}
	return "write"
}

type lockHold struct {
	mode    LockMode
	owner   int
	release sim.Time
}

type expiredHold struct {
	s, e int64
	v    *lockHold
}

// RangeLocks is Flashvisor's data-section protection (paper §4.3): a
// red-black interval tree keyed by the start page group of each mapped
// section, augmented with the range end. Grants are analytic: acquiring a
// conflicting range is delayed until the conflicting holders release.
//
// Every request funnels through the single Flashvisor LWP, so the structure
// is single-goroutine by construction; the scan state and the hold/prune
// buffers are reused across Grant calls to keep the per-request path
// allocation-free.
type RangeLocks struct {
	tree      rbtree.Tree
	conflicts int64
	waited    units.Duration

	// Reused per-Grant scan state: scanFn is the Overlaps callback bound
	// once, reading/writing the scan* fields instead of capturing locals.
	scanFn    func(rbtree.Item) bool
	scanAt    sim.Time
	scanGrant sim.Time
	scanMode  LockMode
	prune     []expiredHold

	// holdPool recycles released/pruned lockHolds.
	holdPool []*lockHold
}

func (l *RangeLocks) scan(it rbtree.Item) bool {
	h := it.Value.(*lockHold)
	if h.release <= l.scanAt {
		l.prune = append(l.prune, expiredHold{it.Start, it.End, h})
		return true
	}
	if l.scanMode == LockRead && h.mode == LockRead {
		return true // shared readers
	}
	if h.release > l.scanGrant {
		l.scanGrant = h.release
	}
	return true
}

// Grant returns the earliest time at or after `at` when [start, end) may be
// held in the given mode. It also prunes holds that released before `at`.
func (l *RangeLocks) Grant(at sim.Time, start, end int64, mode LockMode) sim.Time {
	if l.scanFn == nil {
		l.scanFn = l.scan
	}
	l.scanAt, l.scanGrant, l.scanMode = at, at, mode
	l.prune = l.prune[:0]
	l.tree.Overlaps(start, end, l.scanFn)
	grant := l.scanGrant
	for i, p := range l.prune {
		l.tree.Delete(p.s, p.e, p.v)
		l.holdPool = append(l.holdPool, p.v)
		l.prune[i] = expiredHold{}
	}
	l.prune = l.prune[:0]
	if grant > at {
		l.conflicts++
		l.waited += grant - at
	}
	return grant
}

// getHold returns a recycled or fresh lockHold.
func (l *RangeLocks) getHold() *lockHold {
	if n := len(l.holdPool); n > 0 {
		h := l.holdPool[n-1]
		l.holdPool[n-1] = nil
		l.holdPool = l.holdPool[:n-1]
		return h
	}
	return new(lockHold)
}

// Hold records that owner holds [start, end) in the given mode until
// release. The returned handle releases it eagerly; callers that rely on
// lazy pruning may discard it (the common path), which keeps the hold
// bookkeeping allocation-free.
func (l *RangeLocks) Hold(start, end int64, mode LockMode, owner int, release sim.Time) Hold {
	h := l.getHold()
	h.mode, h.owner, h.release = mode, owner, release
	l.tree.Insert(rbtree.Item{Start: start, End: end, Value: h})
	return Hold{locks: l, start: start, end: end, h: h}
}

// Hold is an acquired range-lock handle.
type Hold struct {
	locks      *RangeLocks
	start, end int64
	h          *lockHold
}

// Release drops the hold immediately (lazy pruning otherwise removes it
// after its release time passes). Releasing a handle whose hold already
// expired and was pruned is a no-op only if the hold has not been recycled
// for a new range since; eager releases should happen before the release
// time passes.
func (h Hold) Release() {
	if h.locks.tree.Delete(h.start, h.end, h.h) {
		h.locks.holdPool = append(h.locks.holdPool, h.h)
	}
}

// Conflicts returns how many grants had to wait, and Waited the total delay.
func (l *RangeLocks) Conflicts() int64 { return l.conflicts }

// Waited returns the cumulative grant delay.
func (l *RangeLocks) Waited() units.Duration { return l.waited }

// Held returns the number of live holds (including expired, un-pruned ones).
func (l *RangeLocks) Held() int { return l.tree.Len() }
