// Command abacus-repro regenerates every table and figure of the paper's
// evaluation and prints them as ASCII tables.
//
// Usage:
//
//	abacus-repro [-scale N] [-experiment id] [-jobs N] [-devices N]
//	             [-topology] [-faults PLAN] [-image-store DIR] [-v] [-list]
//
// scale divides the Table 2 input sizes (1 = paper scale; the default 16
// finishes in well under a minute). jobs bounds how many independent device
// simulations run concurrently (default: one per available core); because
// results are keyed by experiment cell rather than completion order, the
// printed output is byte-identical whatever the jobs count. devices caps
// the cluster scaling experiment's card sweep; at the default 1 the
// cluster experiment is left out of 'all' and the output matches the
// single-device evaluation exactly. -topology opts the heterogeneous-
// topology sweep (multi-switch hosts, per-card geometry skew) into 'all'.
// -faults PLAN opts the fault-injection study into 'all', run under the
// named plan — a preset (cardloss, flap, wear) or a plan-file path;
// -experiment faults without -faults runs all three preset scenarios.
// -image-store DIR persists device images under DIR so a later invocation
// skips the build lifecycle (output stays byte-identical; corrupt entries
// rebuild silently). -v prints image-cache statistics to stderr at exit.
// -list prints the experiment ids. A SIGINT/SIGTERM cancels the run
// cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/imagestore"
)

// ids lists the experiment ids in presentation order. The registry
// itself lives in internal/experiments so the serving daemon (abacusd)
// renders exactly the bytes this command prints.
func ids() []string { return experiments.IDs() }

func main() {
	scale := flag.Int64("scale", 16, "divide Table 2 input sizes by this factor (1 = paper scale)")
	exp := flag.String("experiment", "all", "experiment id or 'all' (see -list)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "max concurrent device simulations (1 = fully sequential)")
	devices := flag.Int("devices", 1, "max cards in the cluster scaling experiment (1 leaves it out of 'all')")
	topology := flag.Bool("topology", false, "include the heterogeneous-topology sweep in 'all'")
	faultPlan := flag.String("faults", "", "fault plan (preset name or plan-file path); includes the fault-injection study in 'all'")
	imageStore := flag.String("image-store", "", "persist device images under this directory across invocations")
	verbose := flag.Bool("v", false, "print image-cache statistics to stderr at exit")
	list := flag.Bool("list", false, "print the experiment ids and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(ids(), "\n"))
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abacus-repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "abacus-repro:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := run(ctx, os.Stdout, runConfig{
		scale: *scale, exp: *exp, jobs: *jobs, devices: *devices, topology: *topology,
		faults: *faultPlan, imageStore: *imageStore, verbose: *verbose, errw: os.Stderr,
	})
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "abacus-repro:", merr)
		} else {
			runtime.GC() // settle live objects before the heap snapshot
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				fmt.Fprintln(os.Stderr, "abacus-repro:", werr)
			}
			f.Close()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "abacus-repro:", err)
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
}

// runConfig carries the flag values a run executes with. Only scale, exp,
// jobs, devices, and topology shape the bytes written to w; the image
// store and verbosity knobs never touch stdout, which is what keeps the
// golden-output regression byte-identical with or without them.
type runConfig struct {
	scale      int64
	exp        string
	jobs       int
	devices    int
	topology   bool
	faults     string    // -faults: fault plan, preset name or file path ("" = off)
	imageStore string    // -image-store: persistent image-store directory ("" = off)
	verbose    bool      // -v: image-cache statistics at exit
	errw       io.Writer // destination for -v statistics (nil discards)
}

// resolveFaultPlan turns the -faults argument into a named scenario: a
// preset name resolves to its built-in plan, anything else is loaded as
// a plan file and named after its basename (sans extension) so the
// rendered rows read "cardloss" whether the plan came from the preset
// or from testdata/cardloss.plan.
func resolveFaultPlan(arg string) (string, *faults.Plan, error) {
	if p, err := faults.Preset(arg); err == nil {
		return arg, p, nil
	}
	p, err := faults.Load(arg)
	if err != nil {
		return "", nil, fmt.Errorf("-faults %s: not a preset (%s) and %w",
			arg, strings.Join(faults.PresetNames, ", "), err)
	}
	name := filepath.Base(arg)
	name = strings.TrimSuffix(name, filepath.Ext(name))
	return name, p, nil
}

// run renders the selected experiments to w. Everything the command prints
// on stdout flows through w, so the golden-output regression test can
// capture a full reproduction byte for byte.
func run(ctx context.Context, w io.Writer, rc runConfig) error {
	scale, exp, jobs, devices := rc.scale, rc.exp, rc.jobs, rc.devices
	if devices < 1 || devices > core.MaxDevices {
		return fmt.Errorf("-devices %d outside [1,%d]", devices, core.MaxDevices)
	}
	// The scale-out experiments are opt-in: without -devices/-topology/
	// -faults the full run prints exactly the single-device evaluation.
	sel, err := experiments.Select(exp, devices, rc.topology, rc.faults != "")
	if err != nil {
		return err
	}

	s := experiments.NewSuite(scale)
	s.Workers = jobs
	s.MaxDevices = devices
	if rc.faults != "" {
		name, plan, err := resolveFaultPlan(rc.faults)
		if err != nil {
			return err
		}
		s.SetFaultScenarios([]experiments.FaultScenario{{Name: name, Plan: plan}})
	}
	if rc.imageStore != "" {
		st, err := imagestore.NewFSStore(rc.imageStore, 0)
		if err != nil {
			return err
		}
		s.SetImageStore(st)
	}
	// Store fills are asynchronous; drain them before returning so the next
	// invocation finds every image this one built. The -v statistics print
	// after the drain so the fill count is exact.
	defer func() {
		s.FlushImages()
		if rc.verbose && rc.errw != nil {
			st := s.ImageStats()
			fmt.Fprintf(rc.errw, "image cache: memory %d hits / %d misses / %d evicted; probes %d hits / %d misses; store %d hits / %d misses / %d fills / %d errors\n",
				st.ImageHits, st.ImageMisses, st.ImageEvictions, st.ProbeHits, st.ProbeMisses,
				st.StoreHits, st.StoreMisses, st.StorePuts, st.StoreErrors)
		}
	}()

	// The render orchestration — simulation-free tables first, one shared
	// prewarm, then ordered streaming of every table — lives on the Suite
	// so abacusd serves the same bytes this command prints.
	return s.Render(ctx, w, sel)
}
