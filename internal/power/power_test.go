package power

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestMeterBreakdown(t *testing.T) {
	var m Meter
	m.AddBusy("lwp0", Compute, units.Second, 0.8)
	m.AddBusy("pcie", DataMove, 2*units.Second, 0.17)
	m.AddBusy("flash", Storage, units.Second/2, 11)
	b := m.Breakdown()
	if math.Abs(b[Compute]-0.8) > 1e-9 {
		t.Errorf("compute = %v", b[Compute])
	}
	if math.Abs(b[DataMove]-0.34) > 1e-9 {
		t.Errorf("data movement = %v", b[DataMove])
	}
	if math.Abs(b[Storage]-5.5) > 1e-9 {
		t.Errorf("storage = %v", b[Storage])
	}
	if math.Abs(b.Total()-6.64) > 1e-9 {
		t.Errorf("total = %v", b.Total())
	}
	if math.Abs(b.Frac(Storage)-5.5/6.64) > 1e-9 {
		t.Errorf("storage frac = %v", b.Frac(Storage))
	}
}

func TestMeterIgnoresNonPositive(t *testing.T) {
	var m Meter
	m.AddBusy("x", Compute, 0, 5)
	m.AddBusy("x", Compute, units.Second, 0)
	m.AddJoules("x", Compute, -1)
	if m.Breakdown().Total() != 0 {
		t.Error("non-positive contributions accounted")
	}
}

func TestEmptyBreakdownFrac(t *testing.T) {
	var b Breakdown
	if b.Frac(Compute) != 0 {
		t.Error("empty breakdown fraction should be 0")
	}
}

func TestByComponentAggregates(t *testing.T) {
	var m Meter
	m.AddBusy("lwp0", Compute, units.Second, 1)
	m.AddBusy("lwp0", Compute, units.Second, 1)
	m.AddBusy("alpha", Storage, units.Second, 2)
	got := m.ByComponent()
	if len(got) != 2 {
		t.Fatalf("components = %d, want 2", len(got))
	}
	if got[0].Component != "alpha" || got[1].Component != "lwp0" {
		t.Errorf("not sorted: %v", got)
	}
	if math.Abs(got[1].Joules-2.0) > 1e-9 {
		t.Errorf("lwp0 joules = %v, want 2", got[1].Joules)
	}
}

func TestCategoryString(t *testing.T) {
	if DataMove.String() != "data movement" || Compute.String() != "computation" || Storage.String() != "storage access" {
		t.Error("category strings wrong")
	}
	if Category(99).String() == "" {
		t.Error("unknown category should still render")
	}
}

func TestSeriesSingleSpan(t *testing.T) {
	s := NewSeries(100)
	s.AddSpan(0, 100, 10)
	bins := s.Bins()
	if len(bins) != 1 || math.Abs(bins[0]-10) > 1e-9 {
		t.Errorf("bins = %v, want [10]", bins)
	}
}

func TestSeriesProportionalSplit(t *testing.T) {
	s := NewSeries(100)
	s.AddSpan(50, 150, 10) // half in bin 0, half in bin 1
	bins := s.Bins()
	if len(bins) != 2 || math.Abs(bins[0]-5) > 1e-9 || math.Abs(bins[1]-5) > 1e-9 {
		t.Errorf("bins = %v, want [5 5]", bins)
	}
}

func TestSeriesEnergyConserved(t *testing.T) {
	s := NewSeries(77)
	spans := []struct{ a, b sim.Time }{{3, 500}, {100, 101}, {490, 1000}}
	var want float64
	for _, sp := range spans {
		s.AddSpan(sp.a, sp.b, 2.5)
		want += 2.5 * float64(sp.b-sp.a)
	}
	var got float64
	for _, w := range s.Bins() {
		got += w * 77
	}
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("series energy %v, want %v", got, want)
	}
}

func TestSeriesAddIntervals(t *testing.T) {
	s := NewSeries(10)
	s.AddIntervals([]sim.Interval{{Start: 0, End: 10}, {Start: 10, End: 20}}, 3)
	bins := s.Bins()
	if len(bins) != 2 || bins[0] != 3 || bins[1] != 3 {
		t.Errorf("bins = %v", bins)
	}
}

func TestSeriesBadBinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSeries(0)
}

func TestDefaultRatesSane(t *testing.T) {
	r := DefaultRates()
	if r.LWPActive != 0.8 {
		t.Errorf("LWP active = %v, want 0.8 (Table 1)", r.LWPActive)
	}
	if r.Backbone != 11.0 || r.SSD != 11.0 {
		t.Error("storage power should match Table 1's 11W")
	}
	if r.PCIe != 0.17 {
		t.Errorf("PCIe = %v, want 0.17", r.PCIe)
	}
	if r.HostCPUActive <= r.HostCPUIdle {
		t.Error("host CPU active must exceed idle")
	}
}
