package cluster

import (
	"context"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Node is one FlashAbacus card viewed from the host: a core.Device with its
// lifecycle — construction, input population, kernel offload, run — split
// into composable steps. experiments.RunBundle walks a single node through
// all four; the cluster dispatcher builds one node per card (or per probed
// kernel instance) and drives the same steps, so every card in a scale-out
// run is exactly the device the single-card evaluation measures.
//
// A node is single-use, like the device it wraps: Run consumes it.
type Node struct {
	ID  int
	dev *core.Device
}

// NewNode builds card id from a configuration.
func NewNode(id int, cfg core.Config) (*Node, error) {
	d, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Node{ID: id, dev: d}, nil
}

// NewNodeFromImage builds card id by forking a captured device image under
// cfg instead of walking the format/populate lifecycle: the card starts
// with the image's mapping tables and payloads shared copy-on-write. The
// caller offloads (if the image was captured pre-offload) and runs as
// usual.
func NewNodeFromImage(id int, img *core.Image, cfg core.Config) (*Node, error) {
	d, err := img.Fork(cfg)
	if err != nil {
		return nil, err
	}
	return &Node{ID: id, dev: d}, nil
}

// Device exposes the underlying device for verification and tooling.
func (n *Node) Device() *core.Device { return n.dev }

// Populate installs the bundle's input ranges on this card's store,
// untimed — in a cluster the shared dataset is replicated to every card
// before the run, mirroring the single-device model where PopulateInput
// is preparation, not measured work.
func (n *Node) Populate(ranges []workload.Range) error {
	for _, r := range ranges {
		if err := n.dev.PopulateInput(r.Addr, r.Bytes, nil); err != nil {
			return err
		}
	}
	return nil
}

// Offload downloads the listed applications through the card's PCIe BAR.
func (n *Node) Offload(apps []workload.App) error {
	for _, app := range apps {
		if err := n.dev.OffloadApp(app.Name, app.Tables); err != nil {
			return err
		}
	}
	return nil
}

// Run executes everything offloaded to the card and returns its
// measurements. Cancelling ctx abandons the simulation.
func (n *Node) Run(ctx context.Context) (*stats.Result, error) {
	return n.dev.Run(ctx)
}
