package cluster

// This file is the cluster layer's interpretation of a fault plan: how
// each dispatch policy detects a dead card, what work it loses, and how
// the survivors absorb it. The flash-wear and switch-window injections
// live in runShard (per-card retrier) and fabric.degrade respectively;
// everything here is card-death recovery and per-fault accounting.
//
// Recovery semantics, per policy:
//
//   - WorkSteal: the host keeps at most one unacknowledged dispatch per
//     card, so when a card dies exactly one in-flight claim is lost —
//     the one whose estimated completion overruns the death. The loss is
//     noticed after the plan's detect latency, the card is routed
//     around, and the lost instance re-enters the queue to be claimed by
//     a survivor (paying a fresh fabric dispatch, possibly through
//     another switch). Claims the estimate chain completed before the
//     death stay on the dead card and report as usual — the same
//     estimate-versus-simulation divergence the healthy claim loop
//     already accepts.
//
//   - RoundRobin: the policy is static, so the unit of loss is the
//     shard. A shard still running when its card dies is lost whole —
//     partial progress is discarded, because round-robin cards report
//     results only at shard completion. The lost applications are
//     re-sharded across the surviving cards by the same weighted-deficit
//     rotation, dispatched at detection time, and each survivor runs its
//     recovery pass after its own work (a card is one device; passes
//     serialize on it).
//
// Every decision above is a pure function of the plan and the simulated
// clock, so faulted runs golden-pin exactly like healthy ones.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flash"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// wearFor returns the plan's flash wear model for one card
// configuration (geometry skews need per-class retriers), or nil when
// the plan injects no wear.
func wearFor(plan *faults.Plan, cfg core.Config) flash.ReadRetrier {
	if !plan.WearActive() {
		return nil
	}
	return faults.NewRetrier(plan, cfg.Flash)
}

// finishFaulted appends the plan-level fault records to a faulted
// aggregate: one per switch window, in plan event order, carrying the
// cluster throughput measured across the window; then the flash-wear
// rollup. A nil plan returns the result untouched.
func finishFaulted(res *stats.Result, plan *faults.Plan) *stats.Result {
	if plan == nil {
		return res
	}
	total := len(res.CompletionTimes)
	for _, ev := range plan.Events {
		if ev.Kind != faults.SwitchThrottle && ev.Kind != faults.SwitchFlap {
			continue
		}
		rec := stats.FaultRecord{Kind: ev.Kind.String(), Target: ev.Switch, At: ev.At, Until: ev.Until}
		if total > 0 && ev.Until > ev.At {
			in := 0
			for _, t := range res.CompletionTimes {
				if t >= ev.At && t < ev.Until {
					in++
				}
			}
			// Bytes are attributed per completion share, so the window
			// throughput is comparable to the run's headline MB/s.
			rec.DegradedTput = float64(res.Bytes) * (float64(in) / float64(total)) /
				units.Seconds(ev.Until-ev.At) / 1e6
		}
		res.Faults = append(res.Faults, rec)
	}
	return withWearRecord(res, plan)
}

// withWearRecord appends the flash-wear rollup: wear's cost is pure
// latency, so Lost carries the injected retry time and Redone the retry
// cycle count. Wear-free runs (or plans) are untouched.
func withWearRecord(res *stats.Result, plan *faults.Plan) *stats.Result {
	if !plan.WearActive() || res.FlashRetries == 0 {
		return res
	}
	res.Faults = append(res.Faults, stats.FaultRecord{
		Kind: "flash-wear", Target: "flash",
		Lost: res.RetryTime, Redone: int(res.FlashRetries),
	})
	return res
}

// claimWithDeaths is the work-steal claim loop under a plan with card
// deaths. Instead of walking the instance queue in order, it repeatedly
// dispatches the (pending instance, live card) pair with the earliest
// request time — max(card free instant, instance's detection hold) —
// which keeps fabric request times non-decreasing even as deaths
// reshuffle the queue. A claim whose estimated completion overruns its
// card's death is the card's one lost in-flight dispatch: the card is
// marked dead, the progress since the claim's arrival is charged as
// lost work, and the instance re-enters the queue, dispatchable only
// after the host detects the death. Ties pick the lowest queue position,
// then the lowest card id, so the schedule is deterministic.
//
// free, claims, and starts are the caller's (zeroed) per-card tables,
// filled in place; the returned slice carries each dead card's fault
// record, indexed by card.
func claimWithDeaths(b *workload.Bundle, cards []card, fab *fabric, plan *faults.Plan,
	deaths []units.Duration, instances []workload.App, probes []*stats.Result,
	free []units.Duration, claims [][]workload.App, starts []units.Duration) ([][]stats.FaultRecord, error) {

	n := len(instances)
	detect := plan.DetectLatency()
	detectAt := make([]units.Duration, len(cards))
	for c, t := range deaths {
		detectAt[c] = faults.NoDeath
		if t != faults.NoDeath && t+detect > t { // saturate on overflow
			detectAt[c] = t + detect
		}
	}

	type pending struct {
		inst int
		nb   units.Duration // not dispatchable before (death detection)
		from int            // card whose death requeued it, -1 initially
	}
	queue := make([]pending, n)
	for i := range queue {
		queue[i] = pending{inst: i, from: -1}
	}
	dead := make([]bool, len(cards))
	lost := make([]units.Duration, len(cards))
	redone := make([]int, len(cards))
	recov := make([]units.Duration, len(cards))

	for len(queue) > 0 {
		bq, bc := -1, -1
		var bestReq units.Duration
		for q := range queue {
			for c := range cards {
				if dead[c] {
					continue
				}
				req := units.MaxTime(free[c], queue[q].nb)
				if req >= detectAt[c] {
					continue // the host has detected this card's death
				}
				if bq < 0 || req < bestReq {
					bq, bc, bestReq = q, c, req
				}
			}
		}
		if bq < 0 {
			// Unreachable after ValidateFor (a survivor is always
			// eligible), but a defensive error beats a livelock.
			return nil, fmt.Errorf("cluster: %s: fault plan leaves no live card to claim the queue", b.Name)
		}
		it := queue[bq]
		queue = append(queue[:bq], queue[bq+1:]...)
		i := it.inst
		arrive := fab.dispatch(bestReq, cards[bc].sw, offloadBytes(instances[i:i+1]))
		end := arrive + probes[cards[bc].class*n+i].Makespan
		if deaths[bc] != faults.NoDeath && end > deaths[bc] {
			dead[bc] = true
			if deaths[bc] > arrive {
				lost[bc] += deaths[bc] - arrive // progress executed, then thrown away
			}
			redone[bc]++
			queue = append(queue, pending{inst: i, nb: detectAt[bc], from: bc})
			continue
		}
		if len(claims[bc]) == 0 {
			starts[bc] = arrive
		}
		claims[bc] = append(claims[bc], instances[i])
		free[bc] = end
		if it.from >= 0 {
			if r := end - deaths[it.from]; r > recov[it.from] {
				recov[it.from] = r
			}
		}
	}

	records := make([][]stats.FaultRecord, len(cards))
	for c, t := range deaths {
		if t == faults.NoDeath {
			continue
		}
		records[c] = append(records[c], stats.FaultRecord{
			Kind: "card-death", Target: fmt.Sprintf("card%d", c),
			At: t, Detect: detect, Recovery: recov[c], Lost: lost[c], Redone: redone[c],
		})
	}
	return records, nil
}

// rrShard is one round-robin dispatch unit: an application subset bound
// to a card, with the host-time offset its device run starts at.
type rrShard struct {
	card   int
	apps   []int // indices into b.Apps
	offset units.Duration
	res    *stats.Result
	lost   bool // discarded by a card death before completing
}

// recoverRoundRobin replays the plan's card deaths over a completed
// round-robin dispatch: deaths are processed in time order, each one
// discards the dead card's unfinished shards whole, and the lost
// applications are re-sharded across the survivors (weighted-deficit,
// like the initial assignment), dispatched at detection time, and run
// as fresh device passes that serialize after each survivor's own work.
func recoverRoundRobin(ctx context.Context, b *workload.Bundle, cards []card, fab *fabric,
	o Options, plan *faults.Plan, deaths []units.Duration,
	assigned [][]int, offsets []units.Duration, results []*stats.Result) ([]stats.Part, error) {

	detect := plan.DetectLatency()
	var shards []*rrShard
	busy := make([]units.Duration, len(cards)) // each card's last pass end
	for c := range cards {
		if len(assigned[c]) == 0 {
			continue
		}
		shards = append(shards, &rrShard{card: c, apps: assigned[c], offset: offsets[c], res: results[c]})
		busy[c] = offsets[c] + results[c].Makespan
	}

	type deathEv struct {
		card int
		at   units.Duration
	}
	var evs []deathEv
	for c, t := range deaths {
		if t != faults.NoDeath {
			evs = append(evs, deathEv{card: c, at: t})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].card < evs[j].card
	})

	dead := make([]bool, len(cards))
	records := make([][]stats.FaultRecord, len(cards))
	for _, ev := range evs {
		rec := stats.FaultRecord{Kind: "card-death", Target: fmt.Sprintf("card%d", ev.card),
			At: ev.at, Detect: detect}
		dead[ev.card] = true
		var lostApps []int
		for _, sh := range shards {
			if sh.card != ev.card || sh.lost {
				continue
			}
			if sh.offset+sh.res.Makespan <= ev.at {
				continue // completed before the death
			}
			sh.lost = true
			if ev.at > sh.offset {
				rec.Lost += ev.at - sh.offset // progress executed, then thrown away
			}
			lostApps = append(lostApps, sh.apps...)
		}
		sort.Ints(lostApps)
		rec.Redone = len(lostApps)
		if len(lostApps) > 0 {
			var aliveIdx []int
			var alive []card
			for c := range cards {
				if !dead[c] {
					aliveIdx = append(aliveIdx, c)
					alive = append(alive, cards[c])
				}
			}
			detAt := ev.at + detect
			var fresh []*rrShard
			for p, posns := range assignApps(alive, len(lostApps)) {
				if len(posns) == 0 {
					continue
				}
				idxs := make([]int, 0, len(posns))
				for _, q := range posns {
					idxs = append(idxs, lostApps[q])
				}
				c := aliveIdx[p]
				arrive := fab.dispatch(detAt, cards[c].sw, offloadBytes(appsOf(b, idxs)))
				fresh = append(fresh, &rrShard{card: c, apps: idxs, offset: units.MaxTime(arrive, busy[c])})
			}
			res2, err := runner.Collect(ctx, runner.New(o.Workers), len(fresh),
				func(ctx context.Context, k int) (*stats.Result, error) {
					sh := fresh[k]
					res, err := runShard(ctx, sh.card, cards[sh.card].cfg, b, appsOf(b, sh.apps),
						o.Images, wearFor(plan, cards[sh.card].cfg))
					if err != nil {
						return nil, fmt.Errorf("%s/%s: card %d recovery: %w",
							b.Name, cards[sh.card].cfg.System, sh.card, err)
					}
					return res, nil
				})
			if err != nil {
				return nil, err
			}
			for k, sh := range fresh {
				sh.res = res2[k]
				busy[sh.card] = sh.offset + sh.res.Makespan
				if r := busy[sh.card] - ev.at; r > rec.Recovery {
					rec.Recovery = r
				}
				shards = append(shards, sh)
			}
		}
		records[ev.card] = append(records[ev.card], rec)
	}

	// Parts assemble in card order (shards in creation order within a
	// card), with each dead card's record carried by a trailing empty
	// part, so aggregation order is a pure function of the plan.
	var parts []stats.Part
	for c := range cards {
		label := fab.label(cards[c].sw)
		kept := false
		for _, sh := range shards {
			if sh.card != c || sh.lost {
				continue
			}
			parts = append(parts, stats.Part{Res: sh.res, Offset: sh.offset, Switch: label})
			kept = true
		}
		switch {
		case len(records[c]) > 0:
			parts = append(parts, stats.Part{Switch: label, Faults: records[c]})
		case !kept && label != "":
			parts = append(parts, stats.Part{Switch: label})
		}
	}
	return parts, nil
}

// appsOf resolves application indices back to the bundle's entries.
func appsOf(b *workload.Bundle, idxs []int) []workload.App {
	out := make([]workload.App, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, b.Apps[i])
	}
	return out
}
