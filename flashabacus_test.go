package flashabacus

import (
	"context"
	"errors"
	"testing"
)

func TestQuickstartPath(t *testing.T) {
	b, err := Polybench("ATAX", 128)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(context.Background(), IntraO3, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.ThroughputMBps() <= 0 || r.Makespan <= 0 {
		t.Errorf("degenerate result: %s", r)
	}
}

func TestAllSystemsRunMix(t *testing.T) {
	for _, sys := range Systems {
		b, err := Mix(1, 256)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(context.Background(), sys, b); err != nil {
			t.Errorf("%v: %v", sys, err)
		}
	}
}

func TestBigdataFacade(t *testing.T) {
	for _, name := range BigdataNames() {
		b, err := Bigdata(name, 256)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(context.Background(), InterDy, b); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSeriesFacade(t *testing.T) {
	b, _ := Polybench("GEMM", 64)
	r, err := RunWithSeries(context.Background(), IntraO3, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FUSeries) == 0 {
		t.Error("no series collected")
	}
}

func TestRunCancelled(t *testing.T) {
	b, err := Polybench("ATAX", 256)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, IntraO3, b); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestBadWorkloadNames(t *testing.T) {
	if _, err := Polybench("NOPE", 1); err == nil {
		t.Error("unknown polybench accepted")
	}
	if _, err := Mix(99, 1); err == nil {
		t.Error("unknown mix accepted")
	}
	if _, err := Bigdata("NOPE", 1); err == nil {
		t.Error("unknown bigdata accepted")
	}
}

// The two homogeneous constructors are family-scoped: each must reject the
// other family's application names even though both synthesize through
// workload.Homogeneous.
func TestFamilyValidation(t *testing.T) {
	for _, name := range BigdataNames() {
		if _, err := Polybench(name, 1); err == nil {
			t.Errorf("Polybench accepted bigdata application %q", name)
		}
	}
	for _, name := range PolybenchNames() {
		if _, err := Bigdata(name, 1); err == nil {
			t.Errorf("Bigdata accepted PolyBench application %q", name)
		}
	}
	for _, name := range PolybenchNames() {
		if _, err := Polybench(name, 256); err != nil {
			t.Errorf("Polybench rejected its own application %q: %v", name, err)
		}
	}
	for _, name := range BigdataNames() {
		if _, err := Bigdata(name, 256); err != nil {
			t.Errorf("Bigdata rejected its own application %q: %v", name, err)
		}
	}
}

func TestRunClusterFacade(t *testing.T) {
	single, err := Run(context.Background(), IntraO3, mustMix(t))
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunCluster(context.Background(), IntraO3, 1, WorkSteal, mustMix(t))
	if err != nil {
		t.Fatal(err)
	}
	if one.Makespan != single.Makespan || one.Bytes != single.Bytes {
		t.Errorf("devices=1 cluster differs from Run: %s vs %s", one, single)
	}
	neg, err := RunCluster(context.Background(), IntraO3, -3, RoundRobin, mustMix(t))
	if err != nil {
		t.Fatalf("devices<=0 should take the single-device path: %v", err)
	}
	if neg.Makespan != single.Makespan {
		t.Errorf("devices=-3 cluster differs from Run: %s vs %s", neg, single)
	}
	for _, policy := range []Policy{RoundRobin, WorkSteal} {
		r, err := RunCluster(context.Background(), IntraO3, 4, policy, mustMix(t))
		if err != nil {
			t.Fatal(err)
		}
		if r.ThroughputMBps() < single.ThroughputMBps() {
			t.Errorf("4-card %v throughput %.1f below single-card %.1f",
				policy, r.ThroughputMBps(), single.ThroughputMBps())
		}
	}
}

func TestRunClusterCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCluster(ctx, IntraO3, 4, RoundRobin, mustMix(t)); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func mustMix(t *testing.T) *Bundle {
	t.Helper()
	b, err := Mix(1, 256)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRunTopologyFacade(t *testing.T) {
	topo, err := TopologyPreset("2sw-skew", 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunTopology(context.Background(), IntraO3, topo, WorkSteal, mustMix(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SwitchUtils) != 2 {
		t.Fatalf("%d switch rows, want 2", len(r.SwitchUtils))
	}
	// WithTopology through RunCluster is the same dispatch; the devices
	// argument is ignored in favour of the topology's own card count.
	viaOpts, err := RunCluster(context.Background(), IntraO3, 1, WorkSteal, mustMix(t), WithTopology(topo))
	if err != nil {
		t.Fatal(err)
	}
	if viaOpts.String() != r.String() {
		t.Errorf("WithTopology differs from RunTopology:\n %s\n %s", viaOpts, r)
	}

	custom := Topology{Switches: []Switch{
		{Name: "fast", Cards: []CardSkew{{}, {}}},
		{Name: "lean", Cards: []CardSkew{{Channels: 2, LWPs: 6}}},
	}}
	if _, err := RunTopology(context.Background(), IntraO3, custom, RoundRobin, mustMix(t)); err != nil {
		t.Fatalf("custom topology: %v", err)
	}

	bad := Topology{Switches: []Switch{{Cards: []CardSkew{{Channels: 5}}}}}
	if _, err := RunTopology(context.Background(), IntraO3, bad, RoundRobin, mustMix(t)); err == nil {
		t.Error("non-pow2 skew accepted through the facade")
	}
	if _, err := TopologyPreset("bogus", 4); err == nil {
		t.Error("unknown preset accepted")
	}
}
