// Package mem models the accelerator's two on-board memory systems (paper
// §2.2): a 1 GB DDR3L used for kernel data sections and flash write
// buffering, and a 4 MB eight-bank SRAM scratchpad that holds the Flashvisor
// mapping table and message-queue entries at L2-cache speed.
package mem

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// Config describes one memory device.
type Config struct {
	Name    string
	Size    int64
	Banks   int
	BW      units.Bandwidth
	Latency units.Duration // fixed access latency
}

// DDR3LConfig returns the prototype's DDR3L: 1 GB, 8 banks, 6.4 GB/s.
func DDR3LConfig() Config {
	return Config{
		Name:    "ddr3l",
		Size:    1 * units.GB,
		Banks:   8,
		BW:      6400 * units.MBps,
		Latency: 50, // ~50 ns row access
	}
}

// ScratchpadConfig returns the prototype's scratchpad: 4 MB, 8 banks,
// 16 GB/s at 500 MHz ("as fast as an L2 cache").
func ScratchpadConfig() Config {
	return Config{
		Name:    "scratchpad",
		Size:    4 * units.MB,
		Banks:   8,
		BW:      16 * units.GBps,
		Latency: 4, // two 500 MHz cycles
	}
}

// Memory is a bandwidth-limited memory device with a simple linear
// allocator for model-level region bookkeeping.
type Memory struct {
	Cfg  Config
	pipe *sim.Pipe

	allocTop int64
	regions  map[string]Region
}

// Region is a named allocation inside a Memory.
type Region struct {
	Name string
	Off  int64
	Size int64
}

// New builds a memory device from cfg.
func New(cfg Config) (*Memory, error) {
	if cfg.Size <= 0 || cfg.BW <= 0 {
		return nil, fmt.Errorf("mem: invalid config %+v", cfg)
	}
	p := sim.NewPipe(cfg.Name, cfg.BW)
	p.Latency = cfg.Latency
	return &Memory{Cfg: cfg, pipe: p, regions: make(map[string]Region)}, nil
}

// Access books a transfer of n bytes requested at time at and returns when
// it completes.
func (m *Memory) Access(at sim.Time, n int64) sim.Time {
	_, end := m.pipe.Transfer(at, n)
	return end
}

// AccessUniform books cnt transfers of n bytes each, the i'th requested at
// at+i*stride, in one frontier update (see Pipe.TransferUniform). It returns
// when the last completes.
func (m *Memory) AccessUniform(at sim.Time, stride sim.Duration, cnt int, n int64) sim.Time {
	return m.pipe.TransferUniform(at, stride, cnt, n)
}

// Alloc carves a named region from the top of the device. It fails when the
// device is full — the condition that forces low-power accelerators to split
// work into multiple kernels (paper §3).
func (m *Memory) Alloc(name string, size int64) (Region, error) {
	if size <= 0 {
		return Region{}, fmt.Errorf("mem: non-positive allocation %d for %q", size, name)
	}
	if _, ok := m.regions[name]; ok {
		return Region{}, fmt.Errorf("mem: region %q already allocated", name)
	}
	if m.allocTop+size > m.Cfg.Size {
		return Region{}, fmt.Errorf("mem: %q needs %s but only %s of %s free",
			name, units.FormatBytes(size), units.FormatBytes(m.Cfg.Size-m.allocTop), m.Cfg.Name)
	}
	r := Region{Name: name, Off: m.allocTop, Size: size}
	m.allocTop += size
	m.regions[name] = r
	return r, nil
}

// Free releases a named region. The simple allocator only reclaims space
// when the freed region is the most recent allocation; interior frees just
// drop the name. That is sufficient for the device's setup/teardown pattern.
func (m *Memory) Free(name string) {
	r, ok := m.regions[name]
	if !ok {
		return
	}
	delete(m.regions, name)
	if r.Off+r.Size == m.allocTop {
		m.allocTop = r.Off
	}
}

// Used returns the allocated byte count.
func (m *Memory) Used() int64 { return m.allocTop }

// Busy returns the total time the device moved data.
func (m *Memory) Busy() units.Duration { return m.pipe.Busy() }

// Bytes returns the total bytes moved.
func (m *Memory) Bytes() int64 { return m.pipe.Bytes() }

// FreeAt returns the next idle instant.
func (m *Memory) FreeAt() sim.Time { return m.pipe.FreeAt() }
