// Package rbtree implements the augmented red-black interval tree that backs
// Flashvisor's range locks (paper §4.3): each node is keyed by the start page
// of a mapped data section and augmented with the interval end and the
// subtree maximum end, so overlap queries run in O(log n + k).
//
// The tree stores half-open intervals [Start, End). Multiple intervals may
// share a start key; they are chained per node, which matches the lock
// manager's need to hold several reader ranges at one address.
package rbtree

type color bool

const (
	red   color = false
	black color = true
)

// Item is an interval payload stored in the tree.
type Item struct {
	Start, End int64 // half-open [Start, End)
	Value      interface{}
}

type node struct {
	items               []Item // all share the same Start
	start               int64
	maxEnd              int64 // max End over this subtree
	c                   color
	left, right, parent *node
}

// Tree is an augmented interval tree. The zero value is an empty tree.
// Deleted nodes are recycled through a freelist, so steady-state churn
// (the lock manager holds and prunes ranges millions of times per run)
// does not allocate.
type Tree struct {
	root *node
	size int
	pool []*node
}

// newNode returns a recycled or fresh node initialized with one item.
func (t *Tree) newNode(it Item, parent *node, c color) *node {
	if n := len(t.pool); n > 0 {
		nd := t.pool[n-1]
		t.pool[n-1] = nil
		t.pool = t.pool[:n-1]
		nd.items = append(nd.items[:0], it)
		nd.start, nd.maxEnd = it.Start, it.End
		nd.c = c
		nd.left, nd.right, nd.parent = nil, nil, parent
		return nd
	}
	return &node{items: []Item{it}, start: it.Start, maxEnd: it.End, c: c, parent: parent}
}

// recycle clears a detached node and returns it to the freelist.
func (t *Tree) recycle(nd *node) {
	for i := range nd.items {
		nd.items[i] = Item{} // drop payload references
	}
	nd.items = nd.items[:0]
	nd.left, nd.right, nd.parent = nil, nil, nil
	t.pool = append(t.pool, nd)
}

// Len returns the number of stored intervals.
func (t *Tree) Len() int { return t.size }

func (n *node) localMaxEnd() int64 {
	m := int64(-1 << 62)
	for _, it := range n.items {
		if it.End > m {
			m = it.End
		}
	}
	return m
}

func (n *node) updateMaxEnd() {
	m := n.localMaxEnd()
	if n.left != nil && n.left.maxEnd > m {
		m = n.left.maxEnd
	}
	if n.right != nil && n.right.maxEnd > m {
		m = n.right.maxEnd
	}
	n.maxEnd = m
}

func (t *Tree) fixMaxUp(n *node) {
	for n != nil {
		old := n.maxEnd
		n.updateMaxEnd()
		if n.maxEnd == old {
			// Still propagate: rotations may have left stale ancestors.
		}
		n = n.parent
	}
}

func (t *Tree) rotateLeft(x *node) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	x.updateMaxEnd()
	y.updateMaxEnd()
}

func (t *Tree) rotateRight(x *node) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	x.updateMaxEnd()
	y.updateMaxEnd()
}

// Insert adds interval it to the tree.
func (t *Tree) Insert(it Item) {
	t.size++
	if t.root == nil {
		t.root = t.newNode(it, nil, black)
		return
	}
	cur := t.root
	for {
		if it.Start == cur.start {
			cur.items = append(cur.items, it)
			t.fixMaxUp(cur)
			return
		}
		if it.Start < cur.start {
			if cur.left == nil {
				cur.left = t.newNode(it, cur, red)
				t.fixMaxUp(cur.left)
				t.insertFix(cur.left)
				return
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = t.newNode(it, cur, red)
				t.fixMaxUp(cur.right)
				t.insertFix(cur.right)
				return
			}
			cur = cur.right
		}
	}
}

func (t *Tree) insertFix(z *node) {
	for z.parent != nil && z.parent.c == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			uncle := gp.right
			if uncle != nil && uncle.c == red {
				z.parent.c = black
				uncle.c = black
				gp.c = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.c = black
			gp.c = red
			t.rotateRight(gp)
		} else {
			uncle := gp.left
			if uncle != nil && uncle.c == red {
				z.parent.c = black
				uncle.c = black
				gp.c = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.c = black
			gp.c = red
			t.rotateLeft(gp)
		}
	}
	t.root.c = black
	// Rotations adjusted local maxEnd; refresh the path to the root.
	t.fixMaxUp(z)
}

// Delete removes one interval matching start, end, and value identity.
// It reports whether a matching interval was found.
func (t *Tree) Delete(start, end int64, value interface{}) bool {
	n := t.root
	for n != nil && n.start != start {
		if start < n.start {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return false
	}
	idx := -1
	for i, it := range n.items {
		if it.End == end && it.Value == value {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	t.size--
	if len(n.items) > 1 {
		n.items = append(n.items[:idx], n.items[idx+1:]...)
		t.fixMaxUp(n)
		return true
	}
	t.deleteNode(n)
	return true
}

func (t *Tree) deleteNode(z *node) {
	// Standard CLRS delete with max-end fixups.
	var x, xParent *node
	y := z
	yColor := y.c
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = minimum(z.right)
		yColor = y.c
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.c = z.c
	}
	if xParent != nil {
		t.fixMaxUp(xParent)
	}
	if yColor == black {
		t.deleteFix(x, xParent)
	}
	t.recycle(z)
}

func (t *Tree) transplant(u, v *node) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func minimum(n *node) *node {
	for n.left != nil {
		n = n.left
	}
	return n
}

func isBlack(n *node) bool { return n == nil || n.c == black }

func (t *Tree) deleteFix(x, parent *node) {
	for x != t.root && isBlack(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w == nil {
				break
			}
			if w.c == red {
				w.c = black
				parent.c = red
				t.rotateLeft(parent)
				w = parent.right
				if w == nil {
					break
				}
			}
			if isBlack(w.left) && isBlack(w.right) {
				w.c = red
				x = parent
				parent = x.parent
			} else {
				if isBlack(w.right) {
					if w.left != nil {
						w.left.c = black
					}
					w.c = red
					t.rotateRight(w)
					w = parent.right
				}
				w.c = parent.c
				parent.c = black
				if w.right != nil {
					w.right.c = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if w == nil {
				break
			}
			if w.c == red {
				w.c = black
				parent.c = red
				t.rotateRight(parent)
				w = parent.left
				if w == nil {
					break
				}
			}
			if isBlack(w.left) && isBlack(w.right) {
				w.c = red
				x = parent
				parent = x.parent
			} else {
				if isBlack(w.left) {
					if w.right != nil {
						w.right.c = black
					}
					w.c = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.c = parent.c
				parent.c = black
				if w.left != nil {
					w.left.c = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.c = black
	}
}

// Overlaps calls fn for every stored interval that overlaps [start, end).
// If fn returns false, iteration stops early.
func (t *Tree) Overlaps(start, end int64, fn func(Item) bool) {
	t.overlaps(t.root, start, end, fn)
}

func (t *Tree) overlaps(n *node, start, end int64, fn func(Item) bool) bool {
	if n == nil || n.maxEnd <= start {
		return true
	}
	if !t.overlaps(n.left, start, end, fn) {
		return false
	}
	if n.start < end {
		for _, it := range n.items {
			if it.Start < end && it.End > start {
				if !fn(it) {
					return false
				}
			}
		}
		if !t.overlaps(n.right, start, end, fn) {
			return false
		}
	}
	return true
}

// AnyOverlap reports whether any stored interval overlaps [start, end).
func (t *Tree) AnyOverlap(start, end int64) bool {
	found := false
	t.Overlaps(start, end, func(Item) bool { found = true; return false })
	return found
}

// All calls fn for every stored interval in start order.
func (t *Tree) All(fn func(Item) bool) { t.all(t.root, fn) }

func (t *Tree) all(n *node, fn func(Item) bool) bool {
	if n == nil {
		return true
	}
	if !t.all(n.left, fn) {
		return false
	}
	for _, it := range n.items {
		if !fn(it) {
			return false
		}
	}
	return t.all(n.right, fn)
}

// checkInvariants validates red-black and augmentation invariants; it is
// used by tests and returns a descriptive error string or "".
func (t *Tree) checkInvariants() string {
	if t.root == nil {
		return ""
	}
	if t.root.c != black {
		return "root is red"
	}
	_, msg := check(t.root)
	return msg
}

func check(n *node) (blackHeight int, msg string) {
	if n == nil {
		return 1, ""
	}
	if n.c == red {
		if !isBlack(n.left) || !isBlack(n.right) {
			return 0, "red node with red child"
		}
	}
	if n.left != nil && n.left.start >= n.start {
		return 0, "left child key out of order"
	}
	if n.right != nil && n.right.start <= n.start {
		return 0, "right child key out of order"
	}
	want := n.localMaxEnd()
	if n.left != nil && n.left.maxEnd > want {
		want = n.left.maxEnd
	}
	if n.right != nil && n.right.maxEnd > want {
		want = n.right.maxEnd
	}
	if n.maxEnd != want {
		return 0, "stale maxEnd augmentation"
	}
	lh, m := check(n.left)
	if m != "" {
		return 0, m
	}
	rh, m := check(n.right)
	if m != "" {
		return 0, m
	}
	if lh != rh {
		return 0, "black height mismatch"
	}
	if n.c == black {
		lh++
	}
	return lh, ""
}
