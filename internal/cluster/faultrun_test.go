package cluster_test

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/units"
)

// Every preset fault plan must be deterministic: the same plan and seed
// produce a deeply-equal result at any wall-clock parallelism, for both
// dispatch policies.
func TestFaultPlanDeterminism(t *testing.T) {
	for _, name := range faults.PresetNames {
		plan, err := faults.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range cluster.Policies {
			var runs []interface{}
			for _, workers := range []int{1, runtime.GOMAXPROCS(0), 1} {
				cfg := core.DefaultConfig(core.IntraO3)
				cfg.Devices = 4
				r, err := cluster.Run(context.Background(), cfg, bundle(t, 256),
					cluster.Options{Policy: p, Workers: workers, Faults: plan})
				if err != nil {
					t.Fatalf("%s/%s: %v", name, p, err)
				}
				runs = append(runs, r)
			}
			if !reflect.DeepEqual(runs[0], runs[1]) || !reflect.DeepEqual(runs[0], runs[2]) {
				t.Errorf("%s/%s: faulted result depends on workers or repetition", name, p)
			}
		}
	}
}

// An empty fault plan must leave every result byte-identical to a run
// with no plan at all — the healthy path is the zero-plan path.
func TestEmptyFaultPlanIdentity(t *testing.T) {
	for _, p := range cluster.Policies {
		cfg := core.DefaultConfig(core.IntraO3)
		cfg.Devices = 4
		healthy, err := cluster.Run(context.Background(), cfg, bundle(t, 256), cluster.Options{Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		empty, err := cluster.Run(context.Background(), cfg, bundle(t, 256),
			cluster.Options{Policy: p, Faults: &faults.Plan{}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(healthy, empty) {
			t.Errorf("%s: empty fault plan changed the result", p)
		}
	}
}

// A card death must lose no work: every kernel instance the dead card had
// claimed is re-dispatched to a survivor and completes exactly once, so
// the faulted run conserves bytes and kernel completions against the
// healthy run while its accounting names the death.
func TestCardDeathCompletesEveryInstanceOnce(t *testing.T) {
	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Devices = 3
	for _, p := range cluster.Policies {
		healthy, err := cluster.Run(context.Background(), cfg, bundle(t, 256), cluster.Options{Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		// 1ms is after every card's dispatch lands (microseconds) and long
		// before any shard or claim completes (tens of milliseconds at this
		// scale), so the death always interrupts in-flight work.
		deathAt := units.Millisecond
		if healthy.Makespan <= 2*deathAt {
			t.Fatalf("%s: healthy makespan %s too short for a mid-run death",
				p, units.FormatDuration(healthy.Makespan))
		}
		plan := &faults.Plan{
			Seed:   1,
			Detect: 20 * units.Microsecond,
			Events: []faults.Event{
				{Kind: faults.CardDeath, Card: 1, At: deathAt},
			},
		}
		r, err := cluster.Run(context.Background(), cfg, bundle(t, 256),
			cluster.Options{Policy: p, Faults: plan})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		// Exactly once: fewer completions would mean lost work, more would
		// mean a doomed claim also completed on the dead card.
		if r.Bytes != healthy.Bytes {
			t.Errorf("%s: faulted run processed %d bytes, healthy %d", p, r.Bytes, healthy.Bytes)
		}
		if len(r.KernelLatencies) != len(healthy.KernelLatencies) {
			t.Errorf("%s: %d kernels completed, want %d",
				p, len(r.KernelLatencies), len(healthy.KernelLatencies))
		}
		var death *stats.FaultRecord
		for i := range r.Faults {
			if r.Faults[i].Kind == "card-death" {
				death = &r.Faults[i]
			}
		}
		if death == nil {
			t.Fatalf("%s: no card-death record in %+v", p, r.Faults)
		}
		if death.Target != "card1" || death.At != deathAt {
			t.Errorf("%s: death record %+v, want card1 at %s", p, death, units.FormatDuration(deathAt))
		}
		if death.Detect != 20*units.Microsecond {
			t.Errorf("%s: detect %s, want 20us", p, units.FormatDuration(death.Detect))
		}
		if death.Redone == 0 || death.Recovery <= 0 {
			t.Errorf("%s: death mid-run redid %d items with recovery %s, want both nonzero",
				p, death.Redone, units.FormatDuration(death.Recovery))
		}
		// The healthy run reports no fault accounting at all.
		if len(healthy.Faults) != 0 || healthy.FlashRetries != 0 {
			t.Errorf("%s: healthy run carries fault accounting: %+v", p, healthy.Faults)
		}
	}
}

// Flash wear is pure latency: the wear preset must conserve work, slow
// the run down (or at worst leave it equal), and report its injected
// retries symmetrically in FlashRetries and the flash-wear record.
func TestWearConservesWorkAndAccounts(t *testing.T) {
	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Devices = 2
	plan, err := faults.Preset("wear")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cluster.Policies {
		healthy, err := cluster.Run(context.Background(), cfg, bundle(t, 256), cluster.Options{Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		worn, err := cluster.Run(context.Background(), cfg, bundle(t, 256),
			cluster.Options{Policy: p, Faults: &faults.Plan{Seed: plan.Seed, Wear: plan.Wear}})
		if err != nil {
			t.Fatal(err)
		}
		if worn.Bytes != healthy.Bytes || len(worn.KernelLatencies) != len(healthy.KernelLatencies) {
			t.Errorf("%s: wear lost work: %d bytes / %d kernels vs %d / %d",
				p, worn.Bytes, len(worn.KernelLatencies), healthy.Bytes, len(healthy.KernelLatencies))
		}
		if worn.Makespan < healthy.Makespan {
			t.Errorf("%s: wear sped the run up: %s < %s",
				p, units.FormatDuration(worn.Makespan), units.FormatDuration(healthy.Makespan))
		}
		if worn.FlashRetries == 0 {
			t.Errorf("%s: wear preset injected no retries", p)
		}
		var wear *stats.FaultRecord
		for i := range worn.Faults {
			if worn.Faults[i].Kind == "flash-wear" {
				wear = &worn.Faults[i]
			}
		}
		if wear == nil {
			t.Fatalf("%s: no flash-wear record in %+v", p, worn.Faults)
		}
		if int64(wear.Redone) != worn.FlashRetries || wear.Lost != worn.RetryTime {
			t.Errorf("%s: wear record %+v disagrees with retries %d / %s",
				p, wear, worn.FlashRetries, units.FormatDuration(worn.RetryTime))
		}
	}
}
