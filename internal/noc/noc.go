// Package noc models the KeyStone-style on-chip network of the prototype
// (paper §2.2): a high-performance tier-1 streaming crossbar joining LWPs
// and memory, a tier-2 crossbar feeding the AMC/PCIe complex, and the
// hardware message queues the LWPs use to talk to Flashvisor.
package noc

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// Config holds the crossbar rates and message-queue costs.
type Config struct {
	Tier1BW units.Bandwidth // streaming crossbar (16 GB/s)
	Tier2BW units.Bandwidth // simplified crossbar toward AMC/PCIe (5.2 GB/s)
	// MsgLatency is the hardware-queue delivery latency for one message.
	MsgLatency units.Duration
	// MsgService is the receiver-side dequeue occupancy per message; it
	// serializes on the receiving queue and is the IPC cost that §5.1
	// blames for IntraO3 trailing InterDy on homogeneous workloads.
	MsgService units.Duration
}

// DefaultConfig returns the prototype network parameters.
func DefaultConfig() Config {
	return Config{
		Tier1BW:    16 * units.GBps,
		Tier2BW:    5200 * units.MBps,
		MsgLatency: 200, // ~200 ns queue-push to queue-pop
		MsgService: 300, // ~300 ns receiver dequeue/dispatch
	}
}

// Network is the assembled two-tier crossbar fabric.
type Network struct {
	Cfg   Config
	Tier1 *sim.Pipe
	Tier2 *sim.Pipe
}

// New builds the fabric.
func New(cfg Config) (*Network, error) {
	if cfg.Tier1BW <= 0 || cfg.Tier2BW <= 0 {
		return nil, fmt.Errorf("noc: non-positive crossbar bandwidth %+v", cfg)
	}
	return &Network{
		Cfg:   cfg,
		Tier1: sim.NewPipe("tier1-xbar", cfg.Tier1BW),
		Tier2: sim.NewPipe("tier2-xbar", cfg.Tier2BW),
	}, nil
}

// TransferTier1 books n bytes on the streaming crossbar.
func (n *Network) TransferTier1(at sim.Time, bytes int64) sim.Time {
	_, end := n.Tier1.Transfer(at, bytes)
	return end
}

// TransferTier2 books n bytes on the AMC-side crossbar.
func (n *Network) TransferTier2(at sim.Time, bytes int64) sim.Time {
	_, end := n.Tier2.Transfer(at, bytes)
	return end
}

// MsgQueue is one hardware message queue endpoint (for example Flashvisor's
// inbound queue). Messages arrive after the fabric latency and are drained
// serially at the receiver.
type MsgQueue struct {
	Name string
	cfg  Config
	recv *sim.Resource
	sent int64
}

// NewQueue builds a message queue using the network's costs.
func (n *Network) NewQueue(name string) *MsgQueue {
	return &MsgQueue{Name: name, cfg: n.Cfg, recv: sim.NewResource(name)}
}

// Send books one message pushed at time at and returns when the receiver has
// dequeued it and can act on it.
func (q *MsgQueue) Send(at sim.Time) sim.Time {
	_, end := q.recv.Reserve(at+q.cfg.MsgLatency, q.cfg.MsgService)
	q.sent++
	return end
}

// Sent returns the number of messages pushed through the queue.
func (q *MsgQueue) Sent() int64 { return q.sent }

// Busy returns the receiver-side occupancy.
func (q *MsgQueue) Busy() units.Duration { return q.recv.Busy() }
