package flashabacus

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Each figure bench regenerates its
// experiment at benchScale (the paper's input sizes divided by benchScale)
// and reports the headline quantity as a custom metric, so
// `go test -bench=.` both exercises the harness and prints the shape
// results next to the timings.

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/imagestore"
	"repro/internal/units"
	"repro/internal/workload"
)

// benchScale divides Table 2 input sizes for the figure benches.
const benchScale = 128

func BenchmarkTable1Spec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig3bThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig3Sensitivity(context.Background(), benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Cores == 8 && p.SerialPct == 0 {
				b.ReportMetric(p.Throughput, "GB/s@8c-0%serial")
			}
		}
	}
}

func BenchmarkFig3cUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig3Sensitivity(context.Background(), benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Cores == 8 && p.SerialPct == 30 {
				b.ReportMetric(p.Util*100, "util%@8c-30%serial")
			}
		}
	}
}

func BenchmarkFig3dBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig3d(context.Background()); err != nil {
			b.Fatal(err)
		}
		r, _ := s.Homogeneous(context.Background(), "ATAX", core.SIMD)
		_, ssd, stack := r.BreakdownFracs()
		b.ReportMetric((ssd+stack)*100, "ATAX-storage-time%")
	}
}

func BenchmarkFig3eEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig3e(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10aHomogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig10a(context.Background()); err != nil {
			b.Fatal(err)
		}
		simd, _ := s.Homogeneous(context.Background(), "ATAX", core.SIMD)
		o3, _ := s.Homogeneous(context.Background(), "ATAX", core.IntraO3)
		b.ReportMetric(o3.ThroughputMBps()/simd.ThroughputMBps(), "ATAX-IntraO3/SIMD")
	}
}

func BenchmarkFig10bHeterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig10b(context.Background()); err != nil {
			b.Fatal(err)
		}
		dy, _ := s.Heterogeneous(context.Background(), 1, core.InterDy)
		o3, _ := s.Heterogeneous(context.Background(), 1, core.IntraO3)
		b.ReportMetric(o3.ThroughputMBps()/dy.ThroughputMBps(), "MX1-IntraO3/InterDy")
	}
}

func BenchmarkFig11aLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig11a(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11bLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig11b(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12aCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		r, err := s.Homogeneous(context.Background(), "ATAX", core.IntraO3)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.CDF()) != 6 {
			b.Fatal("ATAX should complete 6 kernel instances")
		}
	}
}

func BenchmarkFig12bCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		r, err := s.Heterogeneous(context.Background(), 1, core.IntraO3)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.CDF()) != 24 {
			b.Fatal("MX1 should complete 24 kernel instances")
		}
	}
}

func BenchmarkFig13aEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig13a(context.Background()); err != nil {
			b.Fatal(err)
		}
		simd, _ := s.Homogeneous(context.Background(), "ATAX", core.SIMD)
		o3, _ := s.Homogeneous(context.Background(), "ATAX", core.IntraO3)
		b.ReportMetric((1-o3.Energy.Total()/simd.Energy.Total())*100, "ATAX-energy-saving%")
	}
}

func BenchmarkFig13bEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig13b(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14aUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig14a(context.Background()); err != nil {
			b.Fatal(err)
		}
		dy, _ := s.Homogeneous(context.Background(), "ATAX", core.InterDy)
		b.ReportMetric(dy.WorkerUtil*100, "ATAX-InterDy-util%")
	}
}

func BenchmarkFig14bUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig14b(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15aFUSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		res, err := s.Fig15(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(res["IntraO3"].FUSeries) == 0 {
			b.Fatal("no FU series")
		}
	}
}

func BenchmarkFig15bPowerSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		res, err := s.Fig15(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		peak := 0.0
		for _, v := range res["SIMD"].PowerSeries {
			if v > peak {
				peak = v
			}
		}
		b.ReportMetric(peak, "SIMD-peak-W")
	}
}

func BenchmarkFig16aBigdata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig16a(context.Background()); err != nil {
			b.Fatal(err)
		}
		simd, _ := s.Bigdata(context.Background(), "bfs", core.SIMD)
		o3, _ := s.Bigdata(context.Background(), "bfs", core.IntraO3)
		b.ReportMetric(o3.ThroughputMBps()/simd.ThroughputMBps(), "bfs-IntraO3/SIMD")
	}
}

func BenchmarkFig16bBigdataEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		if _, err := s.Fig16b(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- experiment engine (internal/runner) ----------------------------------

// benchmarkSuitePrewarm fills a fresh Suite's cache for every cached
// experiment cell with the given parallelism. Comparing the Sequential and
// Parallel variants measures the runner layer's wall-clock speedup for a
// full evaluation (on an N-core machine the parallel variant approaches
// N× up to the longest single cell); the figure renders afterwards are
// cache reads either way.
func benchmarkSuitePrewarm(b *testing.B, workers int) {
	jobs := experiments.CellsFor(experiments.CachedExperimentIDs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		s.Workers = workers
		if err := s.Prewarm(context.Background(), jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "cells")
}

func BenchmarkSuitePrewarmSequential(b *testing.B) { benchmarkSuitePrewarm(b, 1) }

func BenchmarkSuitePrewarmParallel(b *testing.B) {
	benchmarkSuitePrewarm(b, runtime.GOMAXPROCS(0))
}

// BenchmarkFig3SensitivityParallel measures the 48-cell Fig. 3 sweep
// through the runner pool (its sequential baseline is Fig3bThroughput).
func BenchmarkFig3SensitivityParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3Sensitivity(context.Background(), benchScale, runtime.GOMAXPROCS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- persistent image store (internal/imagestore) --------------------------

// coldStartBundles is the bundle set a fresh process acquires images for
// before its first simulation can start: every Table 2 application, a
// spread of mixes, and the bigdata pair the suite leans on. Synthesis runs
// once, outside the timed loops, so the pair below isolates image
// acquisition (build-and-fill vs decode-from-store).
func coldStartBundles(b *testing.B) []*workload.Bundle {
	b.Helper()
	o := workload.DefaultOptions()
	o.Scale = benchScale
	var bundles []*workload.Bundle
	for _, name := range append(workload.Names(), "bfs", "wc") {
		bundle, err := workload.Homogeneous(name, o)
		if err != nil {
			b.Fatal(err)
		}
		bundles = append(bundles, bundle)
	}
	for _, mix := range []int{1, 7, 14} {
		bundle, err := workload.Mix(mix, o)
		if err != nil {
			b.Fatal(err)
		}
		bundles = append(bundles, bundle)
	}
	return bundles
}

// acquireImages pulls every image the suite's cells fork — both capture
// stages of every (storage class, bundle) pair — through a brand-new
// process-local cache: the cold-start work a fresh process pays before its
// first simulation.
func acquireImages(b *testing.B, images *cluster.ImageCache, bundles []*workload.Bundle) {
	b.Helper()
	ctx := context.Background()
	for _, bundle := range bundles {
		for _, sys := range []System{SIMD, IntraO3} {
			cfg := DefaultConfig(sys)
			if _, err := images.Populated(ctx, cfg, bundle); err != nil {
				b.Fatal(err)
			}
			if _, err := images.Offloaded(ctx, cfg, bundle); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkColdStartEmptyStore / BenchmarkColdStartWarmStore pin the
// tentpole claim of the persistent store: a fresh process facing an empty
// filesystem store pays the full build lifecycle (and the encode+put fill,
// drained inside the timer); the same process over a warm store decodes
// every image instead. The ratio is the cross-process cold-start speedup.
func BenchmarkColdStartEmptyStore(b *testing.B) {
	bundles := coldStartBundles(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := imagestore.NewFSStore(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		images := cluster.NewImageCache()
		images.SetStore(st)
		acquireImages(b, images, bundles)
		images.FlushStore()
	}
}

func BenchmarkColdStartWarmStore(b *testing.B) {
	bundles := coldStartBundles(b)
	st, err := imagestore.NewFSStore(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	warm := cluster.NewImageCache()
	warm.SetStore(st)
	acquireImages(b, warm, bundles)
	warm.FlushStore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		images := cluster.NewImageCache()
		images.SetStore(st)
		acquireImages(b, images, bundles)
		images.FlushStore()
	}
}

// BenchmarkSuitePrewarmWarmStore is the end-to-end narrative point: a full
// fresh-process SuitePrewarm (images and simulations) over a warm store,
// comparable against BenchmarkSuitePrewarmSequential's cold-process number.
// The simulations themselves are not storable, so this improves by the
// build share of prewarm rather than the ColdStart ratio.
func BenchmarkSuitePrewarmWarmStore(b *testing.B) {
	jobs := experiments.CellsFor(experiments.CachedExperimentIDs)
	st, err := imagestore.NewFSStore(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	warm := experiments.NewSuite(benchScale)
	warm.Workers = 1
	warm.SetImageStore(st)
	if err := warm.Prewarm(context.Background(), jobs); err != nil {
		b.Fatal(err)
	}
	warm.FlushImages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		s.Workers = 1
		s.SetImageStore(st)
		if err := s.Prewarm(context.Background(), jobs); err != nil {
			b.Fatal(err)
		}
		s.FlushImages()
	}
	b.ReportMetric(float64(len(jobs)), "cells")
}

// --- ablations (DESIGN.md §6) ---------------------------------------------

func runAblation(b *testing.B, mutate func(*Config)) *Result {
	b.Helper()
	o := workload.DefaultOptions()
	o.Scale = benchScale
	bundle, err := workload.Mix(1, o)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(IntraO3)
	mutate(&cfg)
	d, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range bundle.Populate {
		if err := d.PopulateInput(r.Addr, r.Bytes, nil); err != nil {
			b.Fatal(err)
		}
	}
	for _, app := range bundle.Apps {
		if err := d.OffloadApp(app.Name, app.Tables); err != nil {
			b.Fatal(err)
		}
	}
	res, err := d.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkAblationScreenCount(b *testing.B) {
	for _, screens := range []int{2, 4, 8, 16} {
		screens := screens
		b.Run(itoa(screens), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := workload.DefaultOptions()
				o.Scale = benchScale
				o.ScreensPerMB = screens
				bundle, err := workload.Homogeneous("FDTD", o)
				if err != nil {
					b.Fatal(err)
				}
				r, err := Run(context.Background(), IntraO3, bundle)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.ThroughputMBps(), "MB/s")
			}
		})
	}
}

func BenchmarkAblationStorengine(b *testing.B) {
	for _, enabled := range []bool{true, false} {
		enabled := enabled
		name := "dedicated"
		if !enabled {
			name = "foreground-only"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runAblation(b, func(c *Config) { c.Storengine.Enabled = enabled })
				b.ReportMetric(r.ThroughputMBps(), "MB/s")
			}
		})
	}
}

func BenchmarkAblationRangeLock(b *testing.B) {
	for _, global := range []bool{false, true} {
		global := global
		name := "interval-tree"
		if global {
			name = "global-lock"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runAblation(b, func(c *Config) { c.Visor.GlobalLock = global })
				b.ReportMetric(r.ThroughputMBps(), "MB/s")
				b.ReportMetric(float64(r.LockConflicts), "conflicts")
			}
		})
	}
}

func BenchmarkAblationOverlap(b *testing.B) {
	for _, noOverlap := range []bool{false, true} {
		noOverlap := noOverlap
		name := "overlap"
		if noOverlap {
			name = "no-overlap"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runAblation(b, func(c *Config) { c.NoOverlap = noOverlap })
				b.ReportMetric(r.ThroughputMBps(), "MB/s")
			}
		})
	}
}

func BenchmarkAblationGCPolicy(b *testing.B) {
	for _, greedy := range []bool{false, true} {
		greedy := greedy
		name := "round-robin"
		if greedy {
			name = "greedy"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runAblation(b, func(c *Config) { c.Storengine.Greedy = greedy })
				b.ReportMetric(r.ThroughputMBps(), "MB/s")
			}
		})
	}
}

// BenchmarkClusterScaling runs the host-level scale-out path at 1/2/4/8
// cards under both dispatch policies and reports the aggregate MB/s, so the
// CI bench artifact tracks multi-device throughput alongside the
// single-device figures.
func BenchmarkClusterScaling(b *testing.B) {
	for _, policy := range []Policy{RoundRobin, WorkSteal} {
		policy := policy
		name := "round-robin"
		if policy == WorkSteal {
			name = "work-steal"
		}
		for _, devices := range []int{1, 2, 4, 8} {
			devices := devices
			b.Run(name+"/devices="+itoa(devices), func(b *testing.B) {
				bundle, err := Mix(1, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := RunCluster(context.Background(), IntraO3, devices, policy, bundle)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(r.ThroughputMBps(), "MB/s")
				}
			})
		}
	}
}

// itoa avoids pulling strconv into the bench file.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Silence unused-import pruning if metrics change.
var _ = units.Second
