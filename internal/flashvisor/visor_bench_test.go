package flashvisor

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/flashctrl"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/units"
)

// newBenchVisor builds a Visor over the default geometry (the shape every
// experiment runs) for the hot-path benches.
func newBenchVisor(b *testing.B, functional bool) *Visor {
	b.Helper()
	bb, err := flash.NewBackbone(flash.DefaultGeometry(), flash.DefaultTiming())
	if err != nil {
		b.Fatal(err)
	}
	bb.Functional = functional
	ctrl, err := flashctrl.New(flashctrl.DefaultConfig(), bb)
	if err != nil {
		b.Fatal(err)
	}
	ddr, err := mem.New(mem.DDR3LConfig())
	if err != nil {
		b.Fatal(err)
	}
	spad, err := mem.New(mem.ScratchpadConfig())
	if err != nil {
		b.Fatal(err)
	}
	net, err := noc.New(noc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	v, err := New(DefaultConfig(), ctrl, ddr, spad, net)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// BenchmarkVisorMapRead measures the group-batched read path: one 4 MB
// section read (64 page groups, physically contiguous after sequential
// population) per iteration — the per-screen streaming pattern of every
// kernel. The batching target is near-zero allocs/op.
func BenchmarkVisorMapRead(b *testing.B) {
	v := newBenchVisor(b, false)
	const size = 4 * units.MB
	if err := v.Populate(0, size, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	at := sim.Time(0)
	for i := 0; i < b.N; i++ {
		done, _, err := v.MapRead(at, 1, 0, size)
		if err != nil {
			b.Fatal(err)
		}
		at = done
	}
}

// BenchmarkVisorMapWrite measures the write path at the same 4 MB screen
// granularity, including FTL allocation, commits, and (eventually)
// foreground interactions with the log head.
func BenchmarkVisorMapWrite(b *testing.B) {
	v := newBenchVisor(b, false)
	const size = 4 * units.MB
	b.ReportAllocs()
	b.ResetTimer()
	at := sim.Time(0)
	for i := 0; i < b.N; i++ {
		// Rewrite the same logical range so the run length is bounded by
		// the device, not the logical space.
		done, err := v.MapWrite(at, 1, 0, size, nil)
		if err != nil {
			b.Fatal(err)
		}
		at = done
	}
}

// BenchmarkFTLReclaim measures one full reclaim cycle (victim selection,
// valid-group migration, erase, release) against a fragmented FTL — the
// Storengine tick body.
func BenchmarkFTLReclaim(b *testing.B) {
	v := newBenchVisor(b, false)
	lwp := sim.NewResource("bench-lwp")
	// Fill the logical space, then overwrite half of it so victims carry a
	// mix of valid and invalid groups.
	logical := v.FTL.LogicalBytes()
	if err := v.Populate(0, logical, nil); err != nil {
		b.Fatal(err)
	}
	if err := v.Populate(0, logical/2, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	at := sim.Time(0)
	for i := 0; i < b.N; i++ {
		done, err := v.Reclaim(at, lwp, false)
		if err != nil {
			b.Fatal(err)
		}
		at = done
	}
}

// BenchmarkFTLAllocCommit measures the raw allocation path the write loop
// leans on.
func BenchmarkFTLAllocCommit(b *testing.B) {
	f, err := NewFTL(flash.DefaultGeometry(), 0.07)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg := int64(i) % f.LogicalGroups()
		pg, _, err := f.Alloc(false)
		if err != nil {
			b.StopTimer()
			done, ok := f.VictimRoundRobin()
			if !ok {
				b.Fatal("no victim")
			}
			for _, pair := range f.ValidGroups(done) {
				_ = pair
				f.invalidate(pair.Phys)
			}
			f.Release(done)
			b.StartTimer()
			continue
		}
		if err := f.Commit(lg, pg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewFTL measures device formatting — once 55% of a full
// bench-scale evaluation because the mapping tables were initialized with
// explicit -1 stores; the zero-default encoding makes it an allocation.
func BenchmarkNewFTL(b *testing.B) {
	geo := flash.DefaultGeometry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewFTL(geo, 0.07); err != nil {
			b.Fatal(err)
		}
	}
}
