package core

import (
	"context"
	"testing"

	"repro/internal/kdt"
	"repro/internal/units"
	"repro/internal/workload"
)

// runMix executes MX2 at a small scale on one system.
func runMix(t *testing.T, sys System, mutate func(*Config)) *releaseResult {
	t.Helper()
	o := workload.DefaultOptions()
	o.Scale = 256
	b, err := workload.Mix(2, o)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(sys)
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range b.Populate {
		if err := d.PopulateInput(r.Addr, r.Bytes, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, app := range b.Apps {
		if err := d.OffloadApp(app.Name, app.Tables); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return &releaseResult{d: d, r: res}
}

type releaseResult struct {
	d *Device
	r interface {
		ThroughputMBps() float64
	}
}

// TestRunInvariantsAcrossSystems checks structural invariants every system
// must satisfy on a heterogeneous mix.
func TestRunInvariantsAcrossSystems(t *testing.T) {
	for _, sys := range Systems {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			o := workload.DefaultOptions()
			o.Scale = 256
			b, err := workload.Mix(2, o)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(sys)
			d, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, rng := range b.Populate {
				if err := d.PopulateInput(rng.Addr, rng.Bytes, nil); err != nil {
					t.Fatal(err)
				}
			}
			for _, app := range b.Apps {
				if err := d.OffloadApp(app.Name, app.Tables); err != nil {
					t.Fatal(err)
				}
			}
			r, err := d.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			// 24 kernels complete, each no later than the makespan.
			if len(r.CompletionTimes) != 24 {
				t.Fatalf("completions = %d", len(r.CompletionTimes))
			}
			for _, c := range r.CompletionTimes {
				if c > r.Makespan {
					t.Fatal("completion after makespan")
				}
			}
			// Latencies positive; utilization within [0,1]; energy
			// categories non-negative.
			for _, l := range r.KernelLatencies {
				if l <= 0 {
					t.Fatal("non-positive kernel latency")
				}
			}
			if r.WorkerUtil <= 0 || r.WorkerUtil > 1 {
				t.Fatalf("utilization %v", r.WorkerUtil)
			}
			for i := 0; i < 3; i++ {
				if r.Energy[i] < 0 {
					t.Fatal("negative energy category")
				}
			}
			// Every read group the workload demanded was serviced by
			// exactly one datapath.
			if sys.IsFlashAbacus() {
				if r.Visor.ReadGroups == 0 {
					t.Fatal("FlashAbacus run issued no flash reads")
				}
				if err := d.Visor().FTL.CheckConsistency(); err != nil {
					t.Fatal(err)
				}
			} else if r.Visor.ReadGroups != 0 {
				t.Fatal("SIMD run touched the flash backbone")
			}
		})
	}
}

// TestDeterminism: identical configurations produce bit-identical results.
func TestDeterminism(t *testing.T) {
	run := func() (units.Duration, float64) {
		o := workload.DefaultOptions()
		o.Scale = 256
		b, _ := workload.Mix(3, o)
		cfg := DefaultConfig(IntraO3)
		d, _ := New(cfg)
		for _, rng := range b.Populate {
			d.PopulateInput(rng.Addr, rng.Bytes, nil)
		}
		for _, app := range b.Apps {
			d.OffloadApp(app.Name, app.Tables)
		}
		r, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return r.Makespan, r.Energy.Total()
	}
	m1, e1 := run()
	m2, e2 := run()
	if m1 != m2 || e1 != e2 {
		t.Fatalf("non-deterministic: %d/%v vs %d/%v", m1, e1, m2, e2)
	}
}

// TestDispatchOverheadSlowsCrossLWPHandoffs: raising the IPC cost must not
// speed anything up, and hurts the intra-kernel schedulers most.
func TestDispatchOverheadSlowsCrossLWPHandoffs(t *testing.T) {
	base := runMix(t, IntraO3, nil)
	slow := runMix(t, IntraO3, func(c *Config) { c.DispatchOverhead = 500 * units.Microsecond })
	if slow.r.ThroughputMBps() > base.r.ThroughputMBps() {
		t.Errorf("larger dispatch overhead improved throughput: %.1f > %.1f",
			slow.r.ThroughputMBps(), base.r.ThroughputMBps())
	}
}

// TestStorengineDisabledStillCompletes: with the dedicated core disabled,
// reclaim falls back to Flashvisor's blocking path but runs still finish.
func TestStorengineDisabledStillCompletes(t *testing.T) {
	res := runMix(t, IntraO3, func(c *Config) { c.Storengine.Enabled = false })
	if res.r.ThroughputMBps() <= 0 {
		t.Fatal("no throughput without Storengine")
	}
}

// TestOffloadRejectsBadTables: a corrupted description table must be
// rejected at offload, not at run time.
func TestOffloadRejectsBadTables(t *testing.T) {
	d, _ := New(DefaultConfig(IntraO3))
	bad := &kdt.Table{Name: ""} // fails validation
	if err := d.OffloadApp("x", []*kdt.Table{bad}); err == nil {
		t.Fatal("invalid table accepted")
	}
}
