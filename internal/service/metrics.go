// Prometheus-style text metrics, hand-rolled: the exposition format is
// a few dozen lines of text and pulling in a client library for it
// would be the daemon's only dependency.
package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"repro/internal/cluster"
	"repro/internal/journal"
)

// durationBuckets are the job-latency histogram bounds in seconds.
// Renders span microseconds (cache hits) to minutes (paper scale), so
// the buckets are roughly logarithmic across that range.
var durationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 30, 120}

// histogram is a fixed-bucket cumulative histogram.
type histogram struct {
	counts []uint64 // one per bucket, plus the +Inf overflow
	sum    float64
	total  uint64
}

func (h *histogram) observe(v float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(durationBuckets)+1)
	}
	i := sort.SearchFloat64s(durationBuckets, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// metrics is the daemon's counter registry. Every mutation and every
// scrape snapshot runs under one mutex, so a scrape observes a
// consistent cut — the race-freedom the -race load test pins.
type metrics struct {
	mu        sync.Mutex
	requests  map[string]map[int]uint64 // route pattern -> status code -> count
	jobs      map[string]uint64         // event -> count
	running   int
	durations map[string]*histogram // experiment id -> job latency

	recovered     uint64 // jobs re-enqueued from the journal at boot
	replayed      uint64 // journal records replayed at boot
	watchdogKills uint64 // renders abandoned after ignoring cancellation
	panicked      uint64 // renders that panicked and failed their job
}

func newMetrics() *metrics {
	return &metrics{
		requests:  map[string]map[int]uint64{},
		jobs:      map[string]uint64{},
		durations: map[string]*histogram{},
	}
}

func (m *metrics) request(route string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[route]
	if byCode == nil {
		byCode = map[int]uint64{}
		m.requests[route] = byCode
	}
	byCode[code]++
}

func (m *metrics) jobEvent(event string) {
	m.mu.Lock()
	m.jobs[event]++
	m.mu.Unlock()
}

func (m *metrics) runningDelta(d int) {
	m.mu.Lock()
	m.running += d
	m.mu.Unlock()
}

func (m *metrics) recoveredJobs(n int) {
	m.mu.Lock()
	m.recovered += uint64(n)
	m.mu.Unlock()
}

func (m *metrics) replayedRecords(n int) {
	m.mu.Lock()
	m.replayed += uint64(n)
	m.mu.Unlock()
}

func (m *metrics) watchdogKill() {
	m.mu.Lock()
	m.watchdogKills++
	m.mu.Unlock()
}

func (m *metrics) jobPanicked() {
	m.mu.Lock()
	m.panicked++
	m.mu.Unlock()
}

func (m *metrics) observe(experiment string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.durations[experiment]
	if h == nil {
		h = &histogram{}
		m.durations[experiment] = h
	}
	h.observe(seconds)
}

// journalScrape is the journal's scrape-time snapshot, sampled by the
// metrics handler: whether a journal is configured, whether the write
// breaker has degraded the daemon to memory-only, and the journal's own
// counters (taken under its mutex).
type journalScrape struct {
	configured bool
	degraded   bool
	stats      journal.Stats
}

// render writes one scrape in Prometheus text exposition format. The
// queue depth, image-cache, and journal counters are sampled by the
// caller at scrape time (the scheduler, cluster.ImageCache, and journal
// each snapshot their state under their own mutex), so every gauge in
// one scrape is a consistent read of its owner's state.
func (m *metrics) render(w io.Writer, queueDepth int, img cluster.CacheStats, jl journalScrape) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP abacusd_requests_total HTTP requests served, by route and status code.")
	fmt.Fprintln(w, "# TYPE abacusd_requests_total counter")
	for _, route := range sortedKeys(m.requests) {
		byCode := m.requests[route]
		codes := make([]int, 0, len(byCode))
		for c := range byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "abacusd_requests_total{route=%q,code=\"%d\"} %d\n", route, c, byCode[c])
		}
	}

	fmt.Fprintln(w, "# HELP abacusd_jobs_total Job lifecycle events (accepted, deduped, shed, rejected, dispatched, done, failed, cancelled).")
	fmt.Fprintln(w, "# TYPE abacusd_jobs_total counter")
	for _, ev := range sortedKeys(m.jobs) {
		fmt.Fprintf(w, "abacusd_jobs_total{event=%q} %d\n", ev, m.jobs[ev])
	}

	fmt.Fprintln(w, "# HELP abacusd_queue_depth Jobs admitted but not yet dispatched.")
	fmt.Fprintln(w, "# TYPE abacusd_queue_depth gauge")
	fmt.Fprintf(w, "abacusd_queue_depth %d\n", queueDepth)

	fmt.Fprintln(w, "# HELP abacusd_jobs_running Jobs currently executing.")
	fmt.Fprintln(w, "# TYPE abacusd_jobs_running gauge")
	fmt.Fprintf(w, "abacusd_jobs_running %d\n", m.running)

	fmt.Fprintln(w, "# HELP abacusd_job_duration_seconds Wall-clock latency of completed jobs, by experiment.")
	fmt.Fprintln(w, "# TYPE abacusd_job_duration_seconds histogram")
	for _, exp := range sortedKeys(m.durations) {
		h := m.durations[exp]
		var cum uint64
		for i, le := range durationBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "abacusd_job_duration_seconds_bucket{experiment=%q,le=%q} %d\n",
				exp, formatFloat(le), cum)
		}
		cum += h.counts[len(durationBuckets)]
		fmt.Fprintf(w, "abacusd_job_duration_seconds_bucket{experiment=%q,le=\"+Inf\"} %d\n", exp, cum)
		fmt.Fprintf(w, "abacusd_job_duration_seconds_sum{experiment=%q} %s\n", exp, formatFloat(h.sum))
		fmt.Fprintf(w, "abacusd_job_duration_seconds_count{experiment=%q} %d\n", exp, h.total)
	}

	boolGauge := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	for _, g := range []struct {
		name, help, typ string
		v               int64
	}{
		{"abacusd_jobs_recovered_total", "Jobs re-enqueued from the journal at boot.", "counter", int64(m.recovered)},
		{"abacusd_jobs_panicked_total", "Renders that panicked; each failed only its own job.", "counter", int64(m.panicked)},
		{"abacusd_watchdog_kills_total", "Renders abandoned by the stuck-job watchdog.", "counter", int64(m.watchdogKills)},
		{"abacusd_journal_enabled", "1 when a durable job journal is configured.", "gauge", boolGauge(jl.configured)},
		{"abacusd_journal_degraded", "1 when journal writes tripped the breaker and the daemon runs memory-only.", "gauge", boolGauge(jl.degraded)},
		{"abacusd_journal_appends_total", "Journal records durably appended.", "counter", jl.stats.Appends},
		{"abacusd_journal_append_errors_total", "Journal append failures.", "counter", jl.stats.AppendErrors},
		{"abacusd_journal_fsyncs_total", "Journal fsyncs issued.", "counter", jl.stats.Fsyncs},
		{"abacusd_journal_rotations_total", "Journal segment rotations.", "counter", jl.stats.Rotations},
		{"abacusd_journal_compactions_total", "Journal compactions into a base segment.", "counter", jl.stats.Compactions},
		{"abacusd_journal_replayed_records_total", "Journal records replayed at boot.", "counter", int64(m.replayed)},
		{"abacusd_journal_truncated_bytes_total", "Torn or corrupt journal bytes discarded at open.", "counter", jl.stats.TruncatedBytes},
		{"abacusd_journal_segments", "Journal segment files on disk.", "gauge", int64(jl.stats.Segments)},
		{"abacusd_journal_bytes", "Journal bytes on disk.", "gauge", jl.stats.Bytes},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n", g.name, g.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", g.name, g.typ)
		fmt.Fprintf(w, "%s %d\n", g.name, g.v)
	}

	// Image cache and store counters: one consistent CacheStats copy per
	// scrape, taken under the cache's own mutex.
	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"abacusd_image_cache_hits_total", "Device-image memory cache hits.", img.ImageHits},
		{"abacusd_image_cache_misses_total", "Device-image memory cache misses (builds or store loads).", img.ImageMisses},
		{"abacusd_image_cache_evictions_total", "Device images evicted from the memory cache.", img.ImageEvictions},
		{"abacusd_image_probe_hits_total", "Probe-plan cache hits.", img.ProbeHits},
		{"abacusd_image_probe_misses_total", "Probe-plan cache misses.", img.ProbeMisses},
		{"abacusd_image_store_hits_total", "Persistent image-store hits.", img.StoreHits},
		{"abacusd_image_store_misses_total", "Persistent image-store misses.", img.StoreMisses},
		{"abacusd_image_store_fills_total", "Images written to the persistent store.", img.StorePuts},
		{"abacusd_image_store_errors_total", "Persistent image-store I/O errors.", img.StoreErrors},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n", c.name, c.help)
		fmt.Fprintf(w, "# TYPE %s counter\n", c.name)
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
