package flash

import (
	"bytes"
	"testing"
)

// cowBackbone returns a functional backbone with payloads stored at the
// given groups, plus the value each group holds.
func cowBackbone(t *testing.T, groups ...PhysGroup) (*Backbone, map[PhysGroup][]byte) {
	t.Helper()
	bb, err := NewBackbone(DefaultGeometry(), DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	bb.Functional = true
	want := map[PhysGroup][]byte{}
	for i, pg := range groups {
		data := bytes.Repeat([]byte{byte(i + 1)}, 64)
		bb.Store(pg, data)
		want[pg] = data
	}
	return bb, want
}

func TestStoreCowOverwriteShadowsBase(t *testing.T) {
	bb, want := cowBackbone(t, 10, 11)
	base := bb.SnapshotStore()

	// The live backbone keeps reading the frozen payloads...
	for pg, w := range want {
		if got := bb.Load(pg); !bytes.Equal(got, w) {
			t.Fatalf("group %d after snapshot: got %v", pg, got[:4])
		}
	}
	// ...and overwriting shadows the base without touching it.
	bb.Store(10, []byte{9, 9, 9})
	if got := bb.Load(10); !bytes.Equal(got, []byte{9, 9, 9}) {
		t.Errorf("overwrite not visible on the writer: %v", got)
	}
	if got := base[10]; !bytes.Equal(got, want[10]) {
		t.Errorf("overwrite leaked into the frozen base: %v", got[:4])
	}

	// A fork over the same base sees only the frozen state.
	fork, err := NewBackbone(DefaultGeometry(), DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	fork.Functional = true
	fork.AttachBase(base)
	if got := fork.Load(10); !bytes.Equal(got, want[10]) {
		t.Errorf("fork sees writer's overwrite: %v", got)
	}
}

func TestStoreCowEraseWritesTombstones(t *testing.T) {
	bb, want := cowBackbone(t)
	// Place payloads inside one super block so an erase covers them.
	sb := SuperBlock(3)
	pg, step := bb.Geo.GroupSpan(sb)
	a, b := pg, pg+PhysGroup(step)
	bb.Store(a, []byte{1, 1})
	bb.Store(b, []byte{2, 2})
	want[a], want[b] = []byte{1, 1}, []byte{2, 2}
	base := bb.SnapshotStore()

	bb.EraseSuper(0, sb)
	if got := bb.Load(a); got != nil {
		t.Errorf("erased group %d still loads %v through the base", a, got)
	}
	if got := base[a]; !bytes.Equal(got, want[a]) {
		t.Errorf("erase mutated the frozen base at %d", a)
	}
	// Re-storing after the erase works and stays private.
	bb.Store(b, []byte{7})
	if got := base[b]; !bytes.Equal(got, want[b]) {
		t.Errorf("post-erase store mutated the frozen base at %d", b)
	}
}

func TestStoreCowMoveCopiesBasePayload(t *testing.T) {
	bb, want := cowBackbone(t, 20)
	base := bb.SnapshotStore()

	bb.Move(20, 500) // GC migration of a frozen payload
	if got := bb.Load(500); !bytes.Equal(got, want[20]) {
		t.Fatalf("migrated payload wrong: %v", got)
	}
	if got := bb.Load(20); got != nil {
		t.Errorf("source still mapped after move: %v", got)
	}
	if got := base[20]; !bytes.Equal(got, want[20]) {
		t.Errorf("move mutated the frozen base")
	}
	// Mutating the migrated copy (via overwrite) must not reach the base:
	// the move copied the payload instead of aliasing it.
	bb.Store(500, []byte{42})
	if got := base[20]; !bytes.Equal(got, want[20]) {
		t.Errorf("migrated payload aliased the frozen base")
	}
}

func TestSnapshotStoreTimingOnlyIsNil(t *testing.T) {
	bb, err := NewBackbone(DefaultGeometry(), DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if m := bb.SnapshotStore(); m != nil {
		t.Errorf("timing-only snapshot returned %d payloads", len(m))
	}
}

func TestSnapshotStoreFlattensForkState(t *testing.T) {
	bb, want := cowBackbone(t, 30, 31)
	base := bb.SnapshotStore()
	_ = base
	bb.Store(31, []byte{5}) // shadow one frozen payload
	bb.Store(32, []byte{6}) // add one private payload
	sb := bb.Geo.SuperBlockOf(30)
	bb.EraseSuper(0, sb) // tombstone every group of 30's super block

	flat := bb.SnapshotStore()
	if _, ok := flat[30]; ok {
		t.Errorf("flattened snapshot resurrects erased group 30")
	}
	if got := flat[31]; !bytes.Equal(got, []byte{5}) {
		t.Errorf("flattened snapshot misses shadowed payload: %v", got)
	}
	if got := flat[32]; !bytes.Equal(got, []byte{6}) {
		t.Errorf("flattened snapshot misses private payload: %v", got)
	}
	_ = want
}
