// Package core assembles the FlashAbacus accelerator: eight LWPs, the
// two-tier crossbar network, DDR3L and scratchpad, the PCIe host link, the
// FPGA flash-controller complex, Flashvisor, and Storengine — and executes
// offloaded kernel description tables under one of the five execution
// governors the paper evaluates.
package core

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/flashctrl"
	"repro/internal/flashvisor"
	"repro/internal/host"
	"repro/internal/lwp"
	"repro/internal/noc"
	"repro/internal/pcie"
	"repro/internal/power"
	"repro/internal/storengine"
	"repro/internal/units"
)

// System selects the accelerated-system configuration (§5 "Accelerators").
type System int

// The five evaluated systems.
const (
	SIMD System = iota
	InterSt
	InterDy
	IntraIo
	IntraO3
)

// Systems lists all five in the paper's presentation order.
var Systems = []System{SIMD, InterSt, InterDy, IntraIo, IntraO3}

// FlashAbacusSystems lists the four self-governing configurations.
var FlashAbacusSystems = []System{InterSt, InterDy, IntraIo, IntraO3}

func (s System) String() string {
	switch s {
	case SIMD:
		return "SIMD"
	case InterSt:
		return "InterSt"
	case InterDy:
		return "InterDy"
	case IntraIo:
		return "IntraIo"
	case IntraO3:
		return "IntraO3"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// IsFlashAbacus reports whether the system integrates the flash backbone
// (everything but the SIMD baseline).
func (s System) IsFlashAbacus() bool { return s != SIMD }

// Config describes one device build. DefaultConfig returns Table 1 values;
// every knob exists so ablations can deviate explicitly.
type Config struct {
	System System

	// Devices is the cluster topology knob: how many identical cards a
	// host-level cluster run shards a workload across (internal/cluster).
	// 0 and 1 both mean a single device; the device model itself ignores
	// the field — it only shapes the dispatch layer above it.
	Devices int

	// LWPs is the total core count (8). Workers is the compute-core
	// subset; 0 selects the paper's split automatically: all cores for
	// SIMD, LWPs-2 for FlashAbacus (one each for Flashvisor/Storengine).
	LWPs    int
	Workers int

	CostModel lwp.CostModel
	// WakeLatency is the PSC revocation time; SleepAfter is the idle gap
	// after which a worker is put back to sleep.
	WakeLatency units.Duration
	SleepAfter  units.Duration
	// DispatchOverhead is the Flashvisor-to-worker IPC cost paid when a
	// kernel's next screen lands on a different LWP than its predecessor
	// (the overhead §5.1 blames for IntraO3 trailing InterDy).
	DispatchOverhead units.Duration

	Flash       flash.Geometry
	FlashTiming flash.Timing
	Ctrl        flashctrl.Config
	Visor       flashvisor.Config
	Storengine  storengine.Config
	Noc         noc.Config
	PCIe        pcie.Config
	Host        host.Config
	Rates       power.Rates

	// Functional stores real page payloads and runs EXEC builtins; leave
	// it off for the paper-scale timing sweeps.
	Functional bool
	// NoOverlap disables the DDR3L double-buffering that overlaps flash
	// streaming with compute (ablation; the SIMD baseline never overlaps).
	NoOverlap bool
	// CollectSeries enables the Fig. 15 time-series instrumentation.
	CollectSeries bool
	SeriesBin     units.Duration
}

// DefaultConfig returns the prototype configuration for a system.
func DefaultConfig(sys System) Config {
	return Config{
		System:           sys,
		LWPs:             8,
		CostModel:        lwp.DefaultCostModel(),
		WakeLatency:      5 * units.Microsecond,
		SleepAfter:       100 * units.Microsecond,
		DispatchOverhead: 3 * units.Microsecond,
		Flash:            flash.DefaultGeometry(),
		FlashTiming:      flash.DefaultTiming(),
		Ctrl:             flashctrl.DefaultConfig(),
		Visor:            flashvisor.DefaultConfig(),
		Storengine:       storengine.DefaultConfig(),
		Noc:              noc.DefaultConfig(),
		PCIe:             pcie.DefaultConfig(),
		Host:             host.DefaultConfig(),
		Rates:            power.DefaultRates(),
		SeriesBin:        100 * units.Microsecond,
	}
}

// workerCount resolves the Workers default.
func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	if c.System == SIMD {
		return c.LWPs
	}
	return c.LWPs - 2
}

// MaxDevices bounds the cluster topology knob: enough cards for every
// scaling study the evaluation runs while keeping a single host switch
// plausible.
const MaxDevices = 64

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if c.Devices < 0 || c.Devices > MaxDevices {
		return fmt.Errorf("core: %d devices outside [0,%d]", c.Devices, MaxDevices)
	}
	if c.LWPs < 1 {
		return fmt.Errorf("core: %d LWPs", c.LWPs)
	}
	w := c.workerCount()
	if w < 1 || w > c.LWPs {
		return fmt.Errorf("core: %d workers outside [1,%d]", w, c.LWPs)
	}
	if c.System.IsFlashAbacus() && c.Workers == 0 && c.LWPs < 3 {
		return fmt.Errorf("core: FlashAbacus needs at least 3 LWPs (workers + Flashvisor + Storengine)")
	}
	if err := c.CostModel.Validate(); err != nil {
		return err
	}
	if c.CollectSeries && c.SeriesBin <= 0 {
		return fmt.Errorf("core: series collection needs a positive bin")
	}
	return c.Host.Validate()
}
