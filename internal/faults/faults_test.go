package faults

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/flash"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestParseRoundTrip(t *testing.T) {
	text := `
# a full-menu plan
seed 42
detect 75us
card-death 1 at 2ms
switch-flap sw0 from 1ms to 3ms
switch-throttle sw1 from 3ms to 6ms factor 25%
wear-bad-sb 3% retries 2
wear-storm from 0 to 10ms prob 20% retries 1
`
	p, err := Parse([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Detect != 75*units.Microsecond {
		t.Errorf("seed/detect = %d/%s", p.Seed, units.FormatDuration(p.Detect))
	}
	if len(p.Events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(p.Events))
	}
	if p.Events[0] != (Event{Kind: CardDeath, Card: 1, At: 2 * units.Millisecond}) {
		t.Errorf("event 0 = %+v", p.Events[0])
	}
	if p.Events[2].FactorPct != 25 || p.Events[2].Switch != "sw1" {
		t.Errorf("event 2 = %+v", p.Events[2])
	}
	if p.Wear.BadSBPct != 3 || p.Wear.StormUntil != 10*units.Millisecond {
		t.Errorf("wear = %+v", p.Wear)
	}

	back, err := Parse([]byte(p.String()))
	if err != nil {
		t.Fatalf("reparsing String(): %v\n%s", err, p.String())
	}
	if !reflect.DeepEqual(p, back) {
		t.Errorf("round trip drifted:\n%+v\n%+v", p, back)
	}
}

func TestParseErrorsNameTheLine(t *testing.T) {
	cases := []struct{ text, want string }{
		{"card-death x at 2ms", "line 1"},
		{"seed 1\nbogus-directive 3", "line 2"},
		{"switch-throttle sw0 from 1ms to 2ms factor 0%", "factor"},
		{"switch-throttle sw0 from 2ms to 1ms factor 50%", "empty or negative"},
		{"card-death 0 at -5ms", "bad duration"},
		{"wear-bad-sb 120% retries 2", "outside [0,100]"},
		{"wear-bad-sb 10% retries 99", "outside [0,8]"},
		{"detect 9223372036854775807s", "overflows"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.text))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want substring %q", c.text, err, c.want)
		}
	}
}

func TestIsZeroAndDetect(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.IsZero() || !(&Plan{Seed: 9}).IsZero() {
		t.Error("nil and seed-only plans should be zero")
	}
	// Wear with a percentage but zero retries injects nothing.
	if !(&Plan{Wear: Wear{BadSBPct: 50}}).IsZero() {
		t.Error("retry-free wear should be zero")
	}
	if (&Plan{Events: []Event{{Kind: CardDeath, Card: 0, At: 1}}}).IsZero() {
		t.Error("plan with a death is not zero")
	}
	if got := nilPlan.DetectLatency(); got != DefaultDetect {
		t.Errorf("nil detect = %s", units.FormatDuration(got))
	}
	if got := (&Plan{Detect: units.Millisecond}).DetectLatency(); got != units.Millisecond {
		t.Errorf("explicit detect = %s", units.FormatDuration(got))
	}
}

func TestDeathTimes(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: CardDeath, Card: 2, At: 5 * units.Millisecond},
		{Kind: CardDeath, Card: 7, At: units.Millisecond}, // out of range: ignored
	}}
	d := p.DeathTimes(4)
	want := []units.Duration{NoDeath, NoDeath, 5 * units.Millisecond, NoDeath}
	if !reflect.DeepEqual(d, want) {
		t.Errorf("DeathTimes = %v", d)
	}
	if (&Plan{}).DeathTimes(4) != nil {
		t.Error("deathless plan should return nil")
	}
}

func TestSwitchWindowsSorted(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: SwitchThrottle, Switch: "sw0", At: 5 * units.Millisecond, Until: 6 * units.Millisecond, FactorPct: 50},
		{Kind: SwitchFlap, Switch: "sw0", At: units.Millisecond, Until: 2 * units.Millisecond},
		{Kind: SwitchFlap, Switch: "sw1", At: 0, Until: units.Millisecond},
	}}
	w := p.SwitchWindows("sw0")
	if len(w) != 2 || w[0].From != units.Millisecond || w[0].FactorPct != 0 || w[1].FactorPct != 50 {
		t.Errorf("SwitchWindows(sw0) = %+v", w)
	}
	if len(p.SwitchWindows("sw9")) != 0 {
		t.Error("unknown switch should have no windows")
	}
}

func TestValidateFor(t *testing.T) {
	death := func(card int) *Plan {
		return &Plan{Events: []Event{{Kind: CardDeath, Card: card, At: units.Millisecond}}}
	}
	if err := death(5).ValidateFor(4, []string{"sw0"}); err == nil {
		t.Error("out-of-range card accepted")
	}
	if err := death(1).ValidateFor(4, []string{"sw0"}); err != nil {
		t.Error(err)
	}
	if err := death(0).ValidateFor(1, []string{"sw0"}); err == nil {
		t.Error("killing the only card accepted")
	}
	twice := &Plan{Events: []Event{
		{Kind: CardDeath, Card: 1, At: units.Millisecond},
		{Kind: CardDeath, Card: 1, At: 2 * units.Millisecond},
	}}
	if err := twice.ValidateFor(4, nil); err == nil {
		t.Error("double death accepted")
	}
	flap := &Plan{Events: []Event{{Kind: SwitchFlap, Switch: "swX", At: 0, Until: 1}}}
	if err := flap.ValidateFor(4, []string{"sw0", "sw1"}); err == nil {
		t.Error("unknown switch accepted")
	}
}

func TestRetrierDeterministicAndBounded(t *testing.T) {
	p := &Plan{Seed: 99, Wear: Wear{
		BadSBPct: 30, BadRetries: MaxRetries,
		StormFrom: 0, StormUntil: units.Second, StormPct: 50, StormRetries: MaxRetries,
	}}
	r := NewRetrier(p, flash.DefaultGeometry())
	sawBad, sawClean := false, false
	for pg := flash.PhysGroup(0); pg < 4096; pg += 64 {
		for seq := int64(0); seq < 4; seq++ {
			n := r.Retries(sim.Time(units.Millisecond), pg, seq)
			if n != r.Retries(sim.Time(units.Millisecond), pg, seq) {
				t.Fatal("Retries is not a pure function")
			}
			if n < 0 || n > 2*MaxRetries {
				t.Fatalf("retries %d outside [0,%d]", n, 2*MaxRetries)
			}
			if n > 0 {
				sawBad = true
			} else {
				sawClean = true
			}
		}
	}
	if !sawBad || !sawClean {
		t.Errorf("seeded selection degenerate: bad=%v clean=%v", sawBad, sawClean)
	}
	// Outside the storm window only the bad-superblock term remains.
	late := sim.Time(2 * units.Second)
	for pg := flash.PhysGroup(0); pg < 1024; pg += 64 {
		if n := r.Retries(late, pg, 0); n != 0 && n != MaxRetries {
			t.Fatalf("post-storm retries = %d, want 0 or %d", n, MaxRetries)
		}
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, name := range PresetNames {
		p, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s: %v", name, err)
		}
		if p.IsZero() {
			t.Errorf("preset %s injects nothing", name)
		}
		// Presets must round-trip through the text form too.
		back, err := Parse([]byte(p.String()))
		if err != nil {
			t.Fatalf("preset %s String() unparseable: %v", name, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Errorf("preset %s round trip drifted", name)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}
