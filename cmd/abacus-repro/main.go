// Command abacus-repro regenerates every table and figure of the paper's
// evaluation and prints them as ASCII tables.
//
// Usage:
//
//	abacus-repro [-scale N] [-experiment id]
//
// scale divides the Table 2 input sizes (1 = paper scale; the default 16
// finishes in well under a minute). Experiment ids: t1 t2 mixes fig3b fig3c
// fig3d fig3e fig10a fig10b fig11a fig11b fig12 fig13a fig13b fig14a fig14b
// fig15 fig16a fig16b, or "all".
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	scale := flag.Int64("scale", 16, "divide Table 2 input sizes by this factor (1 = paper scale)")
	exp := flag.String("experiment", "all", "experiment id or 'all'")
	flag.Parse()

	if err := run(*scale, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "abacus-repro:", err)
		os.Exit(1)
	}
}

func run(scale int64, exp string) error {
	s := experiments.NewSuite(scale)
	type job struct {
		id string
		fn func() error
	}
	table := func(t *report.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	}
	jobs := []job{
		{"t1", func() error { fmt.Println(experiments.Table1()); return nil }},
		{"t2", func() error { fmt.Println(experiments.Table2()); return nil }},
		{"mixes", func() error { fmt.Println(experiments.TableMixes()); return nil }},
		{"fig3b", func() error {
			p, err := experiments.Fig3Sensitivity(scale)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig3bTable(p))
			return nil
		}},
		{"fig3c", func() error {
			p, err := experiments.Fig3Sensitivity(scale)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig3cTable(p))
			return nil
		}},
		{"fig3d", func() error { return table(s.Fig3d()) }},
		{"fig3e", func() error { return table(s.Fig3e()) }},
		{"fig10a", func() error { return table(s.Fig10a()) }},
		{"fig10b", func() error { return table(s.Fig10b()) }},
		{"fig11a", func() error { return table(s.Fig11a()) }},
		{"fig11b", func() error { return table(s.Fig11b()) }},
		{"fig12", func() error { return table(s.Fig12()) }},
		{"fig13a", func() error { return table(s.Fig13a()) }},
		{"fig13b", func() error { return table(s.Fig13b()) }},
		{"fig14a", func() error { return table(s.Fig14a()) }},
		{"fig14b", func() error { return table(s.Fig14b()) }},
		{"fig15", func() error {
			res, err := s.Fig15()
			if err != nil {
				return err
			}
			for _, name := range []string{"SIMD", "IntraO3"} {
				r := res[name]
				stride := len(r.FUSeries)/24 + 1
				fmt.Println(report.Series("Fig 15a: FU utilization, "+name,
					int64(r.SeriesBin), r.FUSeries, stride))
				fmt.Println(report.Series("Fig 15b: power (W), "+name,
					int64(r.SeriesBin), r.PowerSeries, stride))
			}
			return nil
		}},
		{"fig16a", func() error { return table(s.Fig16a()) }},
		{"fig16b", func() error { return table(s.Fig16b()) }},
	}
	ran := false
	for _, j := range jobs {
		if exp == "all" || exp == j.id {
			if err := j.fn(); err != nil {
				return fmt.Errorf("%s: %w", j.id, err)
			}
			ran = true
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
