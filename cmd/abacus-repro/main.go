// Command abacus-repro regenerates every table and figure of the paper's
// evaluation and prints them as ASCII tables.
//
// Usage:
//
//	abacus-repro [-scale N] [-experiment id] [-jobs N] [-devices N]
//	             [-topology] [-faults PLAN] [-image-store DIR] [-v] [-list]
//
// scale divides the Table 2 input sizes (1 = paper scale; the default 16
// finishes in well under a minute). jobs bounds how many independent device
// simulations run concurrently (default: one per available core); because
// results are keyed by experiment cell rather than completion order, the
// printed output is byte-identical whatever the jobs count. devices caps
// the cluster scaling experiment's card sweep; at the default 1 the
// cluster experiment is left out of 'all' and the output matches the
// single-device evaluation exactly. -topology opts the heterogeneous-
// topology sweep (multi-switch hosts, per-card geometry skew) into 'all'.
// -faults PLAN opts the fault-injection study into 'all', run under the
// named plan — a preset (cardloss, flap, wear) or a plan-file path;
// -experiment faults without -faults runs all three preset scenarios.
// -image-store DIR persists device images under DIR so a later invocation
// skips the build lifecycle (output stays byte-identical; corrupt entries
// rebuild silently). -v prints image-cache statistics to stderr at exit.
// -list prints the experiment ids. A SIGINT/SIGTERM cancels the run
// cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/imagestore"
	"repro/internal/report"
	"repro/internal/runner"
)

// experiment couples an id with a renderer producing exactly the bytes the
// experiment prints, so renders can run as runner jobs and still be
// emitted in listing order.
type experiment struct {
	id     string
	render func(ctx context.Context, s *experiments.Suite) (string, error)
}

// table adapts the common render-one-table case.
func table(t *report.Table, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return t.String() + "\n", nil
}

// experimentList returns every experiment in the paper's presentation
// order — the order -experiment all prints.
func experimentList() []experiment {
	return []experiment{
		{"t1", func(context.Context, *experiments.Suite) (string, error) {
			return table(experiments.Table1(), nil)
		}},
		{"t2", func(context.Context, *experiments.Suite) (string, error) {
			return table(experiments.Table2(), nil)
		}},
		{"mixes", func(context.Context, *experiments.Suite) (string, error) {
			return table(experiments.TableMixes(), nil)
		}},
		{"fig3b", func(ctx context.Context, s *experiments.Suite) (string, error) {
			p, err := s.Fig3Points(ctx)
			if err != nil {
				return "", err
			}
			return table(experiments.Fig3bTable(p), nil)
		}},
		{"fig3c", func(ctx context.Context, s *experiments.Suite) (string, error) {
			p, err := s.Fig3Points(ctx)
			if err != nil {
				return "", err
			}
			return table(experiments.Fig3cTable(p), nil)
		}},
		{"fig3d", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig3d(ctx)) }},
		{"fig3e", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig3e(ctx)) }},
		{"fig10a", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig10a(ctx)) }},
		{"fig10b", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig10b(ctx)) }},
		{"fig11a", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig11a(ctx)) }},
		{"fig11b", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig11b(ctx)) }},
		{"fig12", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig12(ctx)) }},
		{"fig13a", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig13a(ctx)) }},
		{"fig13b", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig13b(ctx)) }},
		{"fig14a", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig14a(ctx)) }},
		{"fig14b", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig14b(ctx)) }},
		{"fig15", func(ctx context.Context, s *experiments.Suite) (string, error) {
			res, err := s.Fig15(ctx)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for _, name := range []string{"SIMD", "IntraO3"} {
				r := res[name]
				stride := len(r.FUSeries)/24 + 1
				fmt.Fprintln(&b, report.Series("Fig 15a: FU utilization, "+name,
					int64(r.SeriesBin), r.FUSeries, stride))
				fmt.Fprintln(&b, report.Series("Fig 15b: power (W), "+name,
					int64(r.SeriesBin), r.PowerSeries, stride))
			}
			return b.String(), nil
		}},
		{"fig16a", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig16a(ctx)) }},
		{"fig16b", func(ctx context.Context, s *experiments.Suite) (string, error) { return table(s.Fig16b(ctx)) }},
		{"cluster", func(ctx context.Context, s *experiments.Suite) (string, error) { return s.Cluster(ctx) }},
		{"topology", func(ctx context.Context, s *experiments.Suite) (string, error) { return s.Topology(ctx) }},
		{"faults", func(ctx context.Context, s *experiments.Suite) (string, error) { return s.Faults(ctx) }},
	}
}

func ids() []string {
	var out []string
	for _, e := range experimentList() {
		out = append(out, e.id)
	}
	return out
}

func main() {
	scale := flag.Int64("scale", 16, "divide Table 2 input sizes by this factor (1 = paper scale)")
	exp := flag.String("experiment", "all", "experiment id or 'all' (see -list)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "max concurrent device simulations (1 = fully sequential)")
	devices := flag.Int("devices", 1, "max cards in the cluster scaling experiment (1 leaves it out of 'all')")
	topology := flag.Bool("topology", false, "include the heterogeneous-topology sweep in 'all'")
	faultPlan := flag.String("faults", "", "fault plan (preset name or plan-file path); includes the fault-injection study in 'all'")
	imageStore := flag.String("image-store", "", "persist device images under this directory across invocations")
	verbose := flag.Bool("v", false, "print image-cache statistics to stderr at exit")
	list := flag.Bool("list", false, "print the experiment ids and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(ids(), "\n"))
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abacus-repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "abacus-repro:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := run(ctx, os.Stdout, runConfig{
		scale: *scale, exp: *exp, jobs: *jobs, devices: *devices, topology: *topology,
		faults: *faultPlan, imageStore: *imageStore, verbose: *verbose, errw: os.Stderr,
	})
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "abacus-repro:", merr)
		} else {
			runtime.GC() // settle live objects before the heap snapshot
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				fmt.Fprintln(os.Stderr, "abacus-repro:", werr)
			}
			f.Close()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "abacus-repro:", err)
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
}

// runConfig carries the flag values a run executes with. Only scale, exp,
// jobs, devices, and topology shape the bytes written to w; the image
// store and verbosity knobs never touch stdout, which is what keeps the
// golden-output regression byte-identical with or without them.
type runConfig struct {
	scale      int64
	exp        string
	jobs       int
	devices    int
	topology   bool
	faults     string    // -faults: fault plan, preset name or file path ("" = off)
	imageStore string    // -image-store: persistent image-store directory ("" = off)
	verbose    bool      // -v: image-cache statistics at exit
	errw       io.Writer // destination for -v statistics (nil discards)
}

// resolveFaultPlan turns the -faults argument into a named scenario: a
// preset name resolves to its built-in plan, anything else is loaded as
// a plan file and named after its basename (sans extension) so the
// rendered rows read "cardloss" whether the plan came from the preset
// or from testdata/cardloss.plan.
func resolveFaultPlan(arg string) (string, *faults.Plan, error) {
	if p, err := faults.Preset(arg); err == nil {
		return arg, p, nil
	}
	p, err := faults.Load(arg)
	if err != nil {
		return "", nil, fmt.Errorf("-faults %s: not a preset (%s) and %w",
			arg, strings.Join(faults.PresetNames, ", "), err)
	}
	name := filepath.Base(arg)
	name = strings.TrimSuffix(name, filepath.Ext(name))
	return name, p, nil
}

// run renders the selected experiments to w. Everything the command prints
// on stdout flows through w, so the golden-output regression test can
// capture a full reproduction byte for byte.
func run(ctx context.Context, w io.Writer, rc runConfig) error {
	scale, exp, jobs, devices, topology := rc.scale, rc.exp, rc.jobs, rc.devices, rc.topology
	if devices < 1 || devices > core.MaxDevices {
		return fmt.Errorf("-devices %d outside [1,%d]", devices, core.MaxDevices)
	}
	all := experimentList()
	sel := all
	if exp != "all" {
		sel = nil
		for _, e := range all {
			if e.id == exp {
				sel = []experiment{e}
			}
		}
		if sel == nil {
			return fmt.Errorf("unknown experiment %q (valid: %s, all)", exp, strings.Join(ids(), " "))
		}
	} else {
		// The scale-out experiments are opt-in: without -devices/-topology/
		// -faults the full run prints exactly the single-device evaluation.
		sel = nil
		for _, e := range all {
			if e.id == "cluster" && devices == 1 {
				continue
			}
			if e.id == "topology" && !topology {
				continue
			}
			if e.id == "faults" && rc.faults == "" {
				continue
			}
			sel = append(sel, e)
		}
	}

	s := experiments.NewSuite(scale)
	s.Workers = jobs
	s.MaxDevices = devices
	if rc.faults != "" {
		name, plan, err := resolveFaultPlan(rc.faults)
		if err != nil {
			return err
		}
		s.SetFaultScenarios([]experiments.FaultScenario{{Name: name, Plan: plan}})
	}
	if rc.imageStore != "" {
		st, err := imagestore.NewFSStore(rc.imageStore, 0)
		if err != nil {
			return err
		}
		s.SetImageStore(st)
	}
	// Store fills are asynchronous; drain them before returning so the next
	// invocation finds every image this one built. The -v statistics print
	// after the drain so the fill count is exact.
	defer func() {
		s.FlushImages()
		if rc.verbose && rc.errw != nil {
			st := s.ImageStats()
			fmt.Fprintf(rc.errw, "image cache: memory %d hits / %d misses / %d evicted; probes %d hits / %d misses; store %d hits / %d misses / %d fills / %d errors\n",
				st.ImageHits, st.ImageMisses, st.ImageEvictions, st.ProbeHits, st.ProbeMisses,
				st.StoreHits, st.StoreMisses, st.StorePuts, st.StoreErrors)
		}
	}()

	// The leading simulation-free tables print immediately — a paper-scale
	// cache fill below can run for minutes and t1/t2/mixes need no device
	// runs to render.
	simFree := map[string]bool{"t1": true, "t2": true, "mixes": true}
	for len(sel) > 0 && simFree[sel[0].id] {
		out, err := sel[0].render(ctx, s)
		if err != nil {
			return fmt.Errorf("%s: %w", sel[0].id, err)
		}
		fmt.Fprint(w, out)
		sel = sel[1:]
	}

	// With parallelism, fill the shared result cache first: the cells of
	// every selected experiment are independent simulations, so this is
	// where the cores get used, and rendering afterwards is mostly cache
	// reads. A failed cell does not stop the fill (its error stays cached
	// and the owning experiment's render re-surfaces it under its id), so
	// every table before the affected experiment still prints — the same
	// stdout a sequential run leaves behind. At -jobs 1 the fill adds
	// nothing: skip it and let the renders below simulate on demand,
	// streaming each table as it completes, exactly like the original
	// sequential harness.
	if jobs != 1 {
		// Every device run of every selected experiment — including the
		// Fig. 3 sweep and the Fig. 15 series, which are ordinary cells —
		// is in this one job list, so the pool stays saturated with no
		// serialized warm phases between experiment families. Rendering
		// afterwards is mostly cache reads.
		var selIDs []string
		for _, e := range sel {
			selIDs = append(selIDs, e.id)
		}
		if err := s.Prewarm(ctx, s.CellsFor(selIDs)); err != nil && runner.IsCancellation(err) {
			return err
		}
	}

	// Render the experiments as runner jobs. Output is keyed by job index
	// and each table prints as soon as every table before it is done, so
	// the stream is byte-identical to a -jobs 1 run no matter which render
	// finishes first — and a late failure still leaves the completed
	// prefix on stdout.
	var (
		mu      sync.Mutex
		outs    = make([]string, len(sel))
		done    = make([]bool, len(sel))
		printed int
	)
	return runner.New(jobs).Each(ctx, len(sel), func(ctx context.Context, i int) error {
		out, err := sel[i].render(ctx, s)
		if err != nil {
			return fmt.Errorf("%s: %w", sel[i].id, err)
		}
		mu.Lock()
		outs[i], done[i] = out, true
		for printed < len(sel) && done[printed] {
			fmt.Fprint(w, outs[printed])
			outs[printed] = ""
			printed++
		}
		mu.Unlock()
		return nil
	})
}
