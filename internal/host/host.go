// Package host models the conventional heterogeneous system the SIMD
// baseline runs on (paper §2.1): a host CPU driving a discrete NVMe SSD
// through a full storage stack — per-request system-call and file-system
// work, redundant user/kernel and marshalling copies in host DRAM — and the
// accelerator's PCIe link. This is the datapath whose removal is the
// paper's whole point: it accounts for 49% of execution time and 85% of
// system energy in the motivation study.
package host

import (
	"fmt"

	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config holds the host platform parameters (Xeon E5-2620v3 + Intel 750).
type Config struct {
	SSDReadBW  units.Bandwidth // NVMe sequential read
	SSDWriteBW units.Bandwidth // NVMe sequential write
	SSDLatency units.Duration  // per-command latency
	// ChunkSize is the body-loop granularity: the application reads a part
	// of the file, transfers, executes, and writes back (Fig. 3a).
	ChunkSize int64
	// PerReqCPU is the host CPU time per I/O request: system call, VFS,
	// block layer, driver.
	PerReqCPU units.Duration
	// CopyBW is the host-DRAM memcpy bandwidth.
	CopyBW units.Bandwidth
	// ExtraCopies counts the redundant host-DRAM traversals per byte:
	// user/kernel crossing plus object marshalling (paper §2.1 ❷).
	ExtraCopies int
}

// DefaultConfig returns the testbed parameters.
func DefaultConfig() Config {
	return Config{
		SSDReadBW:   2200 * units.MBps,
		SSDWriteBW:  900 * units.MBps,
		SSDLatency:  90 * units.Microsecond,
		ChunkSize:   4 * units.MB,
		PerReqCPU:   18 * units.Microsecond,
		CopyBW:      8 * units.GBps,
		ExtraCopies: 2,
	}
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if c.SSDReadBW <= 0 || c.SSDWriteBW <= 0 || c.CopyBW <= 0 {
		return fmt.Errorf("host: non-positive bandwidth in %+v", c)
	}
	if c.ChunkSize <= 0 {
		return fmt.Errorf("host: non-positive chunk size")
	}
	if c.ExtraCopies < 0 {
		return fmt.Errorf("host: negative copy count")
	}
	return nil
}

// Host is the assembled baseline platform.
type Host struct {
	Cfg  Config
	Link *pcie.Link

	cpu  *sim.Resource
	dram *sim.Pipe
	ssd  *sim.Resource

	cpuStack units.Duration // CPU time in syscall/FS/driver work
	cpuCopy  units.Duration // CPU time driving redundant copies
	store    map[int64][]byte
}

// New builds a host around the accelerator link.
func New(cfg Config, link *pcie.Link) (*Host, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Host{
		Cfg:   cfg,
		Link:  link,
		cpu:   sim.NewResource("host-cpu"),
		dram:  sim.NewPipe("host-dram", cfg.CopyBW),
		ssd:   sim.NewResource("nvme-ssd"),
		store: make(map[int64][]byte),
	}, nil
}

// FetchToAccel moves [addr, addr+bytes) from the SSD into the accelerator's
// DRAM: per chunk, the storage stack issues the read, the data crosses host
// DRAM ExtraCopies times, and the PCIe DMA delivers it. Chunks serialize —
// the conventional body loop gives the accelerator nothing to overlap with.
// The returned data is non-nil when functional payloads were installed.
func (h *Host) FetchToAccel(at sim.Time, addr, bytes int64) (sim.Time, []byte) {
	if bytes <= 0 {
		return at, nil
	}
	t := at
	for off := int64(0); off < bytes; off += h.Cfg.ChunkSize {
		n := h.Cfg.ChunkSize
		if off+n > bytes {
			n = bytes - off
		}
		t = h.chunkIn(t, n)
	}
	return t, h.load(addr, bytes)
}

func (h *Host) chunkIn(at sim.Time, n int64) sim.Time {
	_, issued := h.cpu.Reserve(at, h.Cfg.PerReqCPU)
	h.cpuStack += h.Cfg.PerReqCPU
	_, ssdDone := h.ssd.Reserve(issued, h.Cfg.SSDLatency+h.Cfg.SSDReadBW.DurationFor(n))
	copied := ssdDone
	if h.Cfg.ExtraCopies > 0 {
		copyDur := h.Cfg.CopyBW.DurationFor(n * int64(h.Cfg.ExtraCopies))
		_, copied = h.cpu.Reserve(ssdDone, copyDur)
		h.cpuCopy += copyDur
		h.dram.Transfer(ssdDone, n*int64(h.Cfg.ExtraCopies))
	}
	return h.Link.Transfer(copied, n)
}

// StoreFromAccel moves results from the accelerator back to the SSD over
// the inverse path.
func (h *Host) StoreFromAccel(at sim.Time, addr, bytes int64, data []byte) sim.Time {
	if bytes <= 0 {
		return at
	}
	if data != nil {
		h.install(addr, bytes, data)
	}
	t := at
	for off := int64(0); off < bytes; off += h.Cfg.ChunkSize {
		n := h.Cfg.ChunkSize
		if off+n > bytes {
			n = bytes - off
		}
		t = h.chunkOut(t, n)
	}
	return t
}

func (h *Host) chunkOut(at sim.Time, n int64) sim.Time {
	arrived := h.Link.Transfer(at, n)
	copied := arrived
	if h.Cfg.ExtraCopies > 0 {
		copyDur := h.Cfg.CopyBW.DurationFor(n * int64(h.Cfg.ExtraCopies))
		_, copied = h.cpu.Reserve(arrived, copyDur)
		h.cpuCopy += copyDur
		h.dram.Transfer(arrived, n*int64(h.Cfg.ExtraCopies))
	}
	_, issued := h.cpu.Reserve(copied, h.Cfg.PerReqCPU)
	h.cpuStack += h.Cfg.PerReqCPU
	_, done := h.ssd.Reserve(issued, h.Cfg.SSDLatency+h.Cfg.SSDWriteBW.DurationFor(n))
	return done
}

// Populate installs functional input data on the SSD without consuming
// simulated time (experiment setup). Data may be nil for timing-only runs.
func (h *Host) Populate(addr, bytes int64, data []byte) error {
	if bytes <= 0 {
		return fmt.Errorf("host: non-positive populate size %d", bytes)
	}
	if data != nil {
		h.install(addr, bytes, data)
	}
	return nil
}

func (h *Host) install(addr, bytes int64, data []byte) {
	cp := make([]byte, bytes)
	copy(cp, data)
	h.store[addr] = cp
}

// load returns functional bytes for an exact previously-installed range, or
// nil when the range is unknown (timing-only runs).
func (h *Host) load(addr, bytes int64) []byte {
	d := h.store[addr]
	if d == nil || int64(len(d)) != bytes {
		return nil
	}
	out := make([]byte, bytes)
	copy(out, d)
	return out
}

// SnapshotStore returns the installed functional payloads as an immutable
// layer for a device image, or nil when none were installed. Entries are
// shallow-shared: install always replaces whole buffers and load copies
// out, so the buffers themselves are never mutated in place.
func (h *Host) SnapshotStore() map[int64][]byte {
	if len(h.store) == 0 {
		return nil
	}
	cp := make(map[int64][]byte, len(h.store))
	for k, v := range h.store {
		cp[k] = v
	}
	return cp
}

// AttachStore installs an image's payload layer on a freshly built host
// (the fork path). The map is copied so this fork's installs stay private.
func (h *Host) AttachStore(base map[int64][]byte) {
	h.store = make(map[int64][]byte, len(base))
	for k, v := range base {
		h.store[k] = v
	}
}

// CPUBusy returns total host CPU occupancy; StackBusy and CopyBusy split it
// into the paper's storage-access and data-movement shares.
func (h *Host) CPUBusy() units.Duration { return h.cpu.Busy() }

// StackBusy returns the syscall/FS/driver CPU time.
func (h *Host) StackBusy() units.Duration { return h.cpuStack }

// CopyBusy returns the redundant-copy CPU time.
func (h *Host) CopyBusy() units.Duration { return h.cpuCopy }

// SSDBusy returns the SSD active time.
func (h *Host) SSDBusy() units.Duration { return h.ssd.Busy() }

// DRAMBusy returns host DRAM copy time.
func (h *Host) DRAMBusy() units.Duration { return h.dram.Busy() }
