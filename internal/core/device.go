package core

import (
	"context"
	"fmt"

	"repro/internal/flash"
	"repro/internal/flashctrl"
	"repro/internal/flashvisor"
	"repro/internal/host"
	"repro/internal/kdt"
	"repro/internal/kernel"
	"repro/internal/lwp"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/pcie"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storengine"
	"repro/internal/units"
)

// fuSpan records one screen's compute activity for the Fig. 15 series.
type fuSpan struct {
	start, end sim.Time
	fus        float64 // average functional units active
	ioWatts    float64 // storage-path power active over the span
	ioStart    sim.Time
	ioEnd      sim.Time
}

// Device is one assembled accelerator system.
type Device struct {
	Cfg Config

	eng     *sim.Engine
	cores   []*lwp.Core
	psc     *lwp.PSC
	net     *noc.Network
	ddr     *mem.Memory
	spad    *mem.Memory
	link    *pcie.Link
	visor   *flashvisor.Visor
	storeng *storengine.Engine
	hostm   *host.Host
	path    dataPath
	sch     sched.Scheduler
	chain   *kernel.Chain

	workers  int
	running  map[int]*kernel.Screen
	lastEnd  []sim.Time // per worker: when its previous screen ended
	lastLWP  map[*kernel.Kernel]int
	execBusy []units.Duration

	offloadAt sim.Time // PCIe frontier for kernel downloads
	pending   []*kernel.App
	arrivals  []sim.Time
	// offloaded records each offload's device-side decoded tables and wire
	// sizes, so Snapshot can capture the offloaded kernel set and Fork can
	// replay it without re-encoding, re-transferring-from, or re-parsing
	// the host-side tables.
	offloaded []offloadedApp
	spans     []fuSpan
	doneAt    sim.Time
	ran       bool
	runErr    error

	// donePool recycles screen-completion events: each carries its closure
	// allocated once, so steady-state screen dispatch schedules completions
	// without allocating. Single-goroutine like the engine itself.
	donePool []*screenDoneEvent
}

// screenDoneEvent is a pooled completion callback for one in-flight screen.
type screenDoneEvent struct {
	d  *Device
	s  *kernel.Screen
	w  int
	fn func() // bound to run once at creation, reused across screens
}

func (e *screenDoneEvent) run() {
	d, s, w := e.d, e.s, e.w
	e.s = nil
	d.donePool = append(d.donePool, e)
	d.onScreenDone(s, w)
}

// scheduleScreenDone enqueues onScreenDone(s, w) at time at through the
// event pool.
func (d *Device) scheduleScreenDone(at sim.Time, s *kernel.Screen, w int) {
	var e *screenDoneEvent
	if n := len(d.donePool); n > 0 {
		e = d.donePool[n-1]
		d.donePool[n-1] = nil
		d.donePool = d.donePool[:n-1]
	} else {
		e = &screenDoneEvent{d: d}
		e.fn = e.run
	}
	e.s, e.w = s, w
	d.eng.Schedule(at, e.fn)
}

// New builds a device. The flash backbone and host SSD both exist so the
// same binary can run every system; only the selected datapath is timed.
func New(cfg Config) (*Device, error) {
	return build(cfg, nil)
}

// build assembles a device, either from scratch or forked from an image:
// with a non-nil image the FTL forks the image's mapping state instead of
// formatting, and the functional payload layers attach copy-on-write.
func build(cfg Config, img *Image) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		Cfg:     cfg,
		eng:     &sim.Engine{},
		workers: cfg.workerCount(),
		running: make(map[int]*kernel.Screen),
		lastLWP: make(map[*kernel.Kernel]int),
		chain:   &kernel.Chain{},
	}
	d.lastEnd = make([]sim.Time, d.workers)
	d.execBusy = make([]units.Duration, d.workers)
	for i := range d.lastEnd {
		d.lastEnd[i] = -1
	}

	for i := 0; i < cfg.LWPs; i++ {
		d.cores = append(d.cores, lwp.NewCore(i, cfg.CostModel))
	}
	d.psc = lwp.NewPSC(d.cores, cfg.WakeLatency)

	var err error
	if d.net, err = noc.New(cfg.Noc); err != nil {
		return nil, err
	}
	if d.ddr, err = mem.New(mem.DDR3LConfig()); err != nil {
		return nil, err
	}
	spadCfg := mem.ScratchpadConfig()
	if cfg.ScratchpadBytes > 0 {
		spadCfg.Size = cfg.ScratchpadBytes
	}
	if d.spad, err = mem.New(spadCfg); err != nil {
		return nil, err
	}
	if d.link, err = pcie.New(cfg.PCIe); err != nil {
		return nil, err
	}

	bb, err := flash.NewBackbone(cfg.Flash, cfg.FlashTiming)
	if err != nil {
		return nil, err
	}
	bb.Functional = cfg.Functional
	ctrl, err := flashctrl.New(cfg.Ctrl, bb)
	if err != nil {
		return nil, err
	}
	if img != nil {
		if img.flashBase != nil {
			bb.AttachBase(img.flashBase)
		}
		d.visor, err = flashvisor.NewFromImage(cfg.Visor, ctrl, d.ddr, d.spad, d.net, img.ftl)
	} else {
		d.visor, err = flashvisor.New(cfg.Visor, ctrl, d.ddr, d.spad, d.net)
	}
	if err != nil {
		return nil, err
	}
	if d.storeng, err = storengine.New(cfg.Storengine, d.eng, d.visor); err != nil {
		return nil, err
	}
	if d.hostm, err = host.New(cfg.Host, d.link); err != nil {
		return nil, err
	}
	if img != nil && img.hostBase != nil {
		d.hostm.AttachStore(img.hostBase)
	}

	if cfg.System.IsFlashAbacus() {
		d.path = &visorPath{v: d.visor, overlap: !cfg.NoOverlap}
	} else {
		d.path = &hostPath{h: d.hostm}
	}
	if d.sch, err = sched.New(cfg.System.String()); err != nil {
		return nil, err
	}
	return d, nil
}

// Visor exposes the Flashvisor for verification and tooling.
func (d *Device) Visor() *flashvisor.Visor { return d.visor }

// Host exposes the baseline host model for verification and tooling.
func (d *Device) Host() *host.Host { return d.hostm }

// InstallFlashRetrier installs a deterministic wear model on the flash
// backbone: every page-group read pays the model's extra sensing
// cycles, surfacing as latency in the storengine path. Install before
// Run; pass nil to remove.
func (d *Device) InstallFlashRetrier(r flash.ReadRetrier) {
	d.visor.Controller().BB.SetRetrier(r)
}

// PopulateInput installs input data at a logical byte address on whichever
// store the system reads from (flash backbone or external SSD), untimed.
func (d *Device) PopulateInput(addr, bytes int64, data []byte) error {
	return d.path.Populate(addr, bytes, data)
}

// OffloadApp downloads an application's kernel description tables through
// the PCIe BAR (paper §4 "Offload") and schedules its arrival at the
// doorbell interrupt. It must be called before Run.
func (d *Device) OffloadApp(name string, tables []*kdt.Table) error {
	if d.ran {
		return fmt.Errorf("core: offload after run")
	}
	if len(tables) == 0 {
		return fmt.Errorf("core: app %q has no kernels", name)
	}
	appIdx := len(d.pending)
	app := &kernel.App{Name: name, ID: appIdx}
	rec := offloadedApp{name: name}
	for ki, tab := range tables {
		blob, err := tab.Encode()
		if err != nil {
			return fmt.Errorf("core: encoding %s kernel %d: %w", name, ki, err)
		}
		landed, err := d.link.WriteBAR(d.offloadAt, int64(len(blob)))
		if err != nil {
			return err
		}
		d.offloadAt = landed
		decoded, err := kdt.Decode(blob)
		if err != nil {
			return fmt.Errorf("core: device rejected %s kernel %d: %w", name, ki, err)
		}
		app.Kernels = append(app.Kernels, kernel.FromKDT(decoded, appIdx, ki))
		rec.tables = append(rec.tables, decoded)
		rec.wireLens = append(rec.wireLens, int64(len(blob)))
	}
	d.finishOffload(app, rec)
	return nil
}

// offloadedApp is the replayable record of one OffloadApp call: the
// device-side decoded tables (immutable once decoded — runtime kernels
// alias but never mutate them) and each kernel blob's wire size, which is
// all the PCIe BAR timing depends on.
type offloadedApp struct {
	name     string
	tables   []*kdt.Table
	wireLens []int64
}

// offloadDecoded replays a recorded offload on a forked device: identical
// BAR transfers and doorbell, identical runtime kernels, no host-side
// encode or device-side parse.
func (d *Device) offloadDecoded(rec offloadedApp) error {
	if d.ran {
		return fmt.Errorf("core: offload after run")
	}
	appIdx := len(d.pending)
	app := &kernel.App{Name: rec.name, ID: appIdx}
	for ki, tab := range rec.tables {
		landed, err := d.link.WriteBAR(d.offloadAt, rec.wireLens[ki])
		if err != nil {
			return err
		}
		d.offloadAt = landed
		app.Kernels = append(app.Kernels, kernel.FromKDT(tab, appIdx, ki))
	}
	d.finishOffload(app, rec)
	return nil
}

// finishOffload rings the doorbell and records the app's arrival.
func (d *Device) finishOffload(app *kernel.App, rec offloadedApp) {
	arrival := d.link.Doorbell(d.offloadAt)
	d.pending = append(d.pending, app)
	d.arrivals = append(d.arrivals, arrival)
	d.offloaded = append(d.offloaded, rec)
}

// scheduler context implementation.

// Now returns the current simulated time.
func (d *Device) Now() sim.Time { return d.eng.Now() }

// Workers returns the compute-LWP count.
func (d *Device) Workers() int { return d.workers }

// Free reports whether worker w has no screen in flight.
func (d *Device) Free(w int) bool { return d.running[w] == nil }

// Chain returns the multi-app execution chain.
func (d *Device) Chain() *kernel.Chain { return d.chain }

// Dispatch begins executing screen s on worker w.
func (d *Device) Dispatch(s *kernel.Screen, w int) {
	if d.running[w] != nil {
		panic(fmt.Sprintf("core: dispatch %s to busy worker %d", s.Ref(), w))
	}
	d.running[w] = s
	d.execScreen(s, w)
}

// mixOf converts a COMPUTE op's wire mix.
func mixOf(op kdt.Op) lwp.Mix {
	return lwp.Mix{Mul: float64(op.MulMilli) / 1000, LdSt: float64(op.LdStMilli) / 1000}
}

// execScreen models one screen's life: boot/wake, input streaming through
// the datapath, VLIW compute (overlapped when the datapath supports it),
// functional EXECs, and output write-back. Completion is an engine event.
func (d *Device) execScreen(s *kernel.Screen, w int) {
	now := d.eng.Now()
	d.chain.MarkRunning(s, w, now)
	core := d.cores[w]
	k := d.chain.Apps[s.App].Kernels[s.Kernel]
	owner := s.App*1_000_000 + s.Kernel

	start := now
	// PSC wake-up after sleep (cold start or long idle).
	if d.lastEnd[w] < 0 || now-d.lastEnd[w] > d.Cfg.SleepAfter {
		start = d.psc.Boot(now, w, 0)
	}
	// Cross-LWP handoff: Flashvisor re-targets the kernel's data section.
	if prev, ok := d.lastLWP[k]; ok && prev != w {
		start += d.Cfg.DispatchOverhead
	}
	d.lastLWP[k] = w
	d.psc.MarkBusy(w)

	var (
		readEnd = start
		compDur units.Duration
		mix     lwp.Mix
	)
	for _, op := range s.Ops {
		switch op.Kind {
		case kdt.OpRead:
			// The section's previous buffer is dead once this read lands,
			// so offer it to the datapath for reuse.
			done, data, err := d.path.Read(start, owner, op.FlashAddr, op.Bytes, k.Sections[op.Section])
			if err != nil {
				d.fail(err)
				return
			}
			if done > readEnd {
				readEnd = done
			}
			if data != nil {
				k.Sections[op.Section] = data
			}
		case kdt.OpCompute:
			mix = mixOf(op)
			compDur += core.Model.Duration(op.Instr, mix)
		}
	}
	ioDur := readEnd - start

	var execEnd sim.Time
	if d.path.Overlap() && ioDur > 0 {
		// Double-buffered streaming: compute chases the stream; the
		// longer of the two hides the other behind the pipeline fill.
		execEnd = units.MaxTime(readEnd, start+d.path.Startup()+compDur)
	} else {
		execEnd = readEnd + compDur
	}

	if d.Cfg.Functional {
		if err := d.runExecOps(s, k); err != nil {
			d.fail(err)
			return
		}
	}

	end := execEnd
	for _, op := range s.Ops {
		if op.Kind != kdt.OpWrite {
			continue
		}
		var data []byte
		if buf := k.Sections[op.Section]; int64(len(buf)) >= op.Bytes {
			data = buf[:op.Bytes]
		}
		done, err := d.path.Write(execEnd, owner, op.FlashAddr, op.Bytes, data)
		if err != nil {
			d.fail(err)
			return
		}
		if done > end {
			end = done
		}
	}
	if end <= now {
		end = now + 1 // every screen makes progress
	}

	core.Res.Reserve(start, end-start)
	d.execBusy[w] += compDur
	if d.Cfg.CollectSeries {
		sp := fuSpan{start: start, end: end, ioStart: start, ioEnd: readEnd}
		if end > start {
			sp.fus = core.Model.FUsBusy(mix) * float64(compDur) / float64(end-start)
		}
		if ioDur > 0 {
			sp.ioWatts = d.storagePathWatts()
		}
		d.spans = append(d.spans, sp)
	}
	d.scheduleScreenDone(end, s, w)
}

// storagePathWatts estimates the power engaged while a screen streams data,
// for the Fig. 15b series: the SIMD path wakes the host CPU, DRAM, SSD, and
// PCIe; the FlashAbacus path only the backbone.
func (d *Device) storagePathWatts() float64 {
	r := d.Cfg.Rates
	if d.Cfg.System == SIMD {
		return r.HostCPUActive - r.HostCPUIdle + r.SSD + r.HostDRAM + r.PCIe
	}
	return r.Backbone
}

// runExecOps invokes the screen's registered builtins against the kernel's
// data sections.
func (d *Device) runExecOps(s *kernel.Screen, k *kernel.Kernel) error {
	nScreens := len(d.chain.Apps[s.App].Kernels[s.Kernel].MBs[s.MB].Screens)
	for _, op := range s.Ops {
		if op.Kind != kdt.OpExec {
			continue
		}
		fn, name, ok := kernel.Builtin(op.Builtin)
		if !ok {
			return fmt.Errorf("core: %s references unregistered builtin %d", s.Ref(), op.Builtin)
		}
		ctx := &kernel.ExecCtx{
			Sections: k.Sections,
			Arg:      op.Arg,
			Screen:   s.Idx,
			Screens:  nScreens,
		}
		if err := fn(ctx); err != nil {
			return fmt.Errorf("core: builtin %s in %s: %w", name, s.Ref(), err)
		}
	}
	return nil
}

func (d *Device) onScreenDone(s *kernel.Screen, w int) {
	now := d.eng.Now()
	d.psc.MarkIdle(w)
	d.lastEnd[w] = now
	delete(d.running, w)
	d.chain.MarkDone(s, now)
	if d.chain.AllDone() {
		d.doneAt = now
		d.storeng.Stop()
		return
	}
	d.sch.Kick(d)
}

func (d *Device) fail(err error) {
	if d.runErr == nil {
		d.runErr = err
	}
	d.storeng.Stop()
}

// cancelCheckEvery is how many simulation events Run processes between
// context checks: frequent enough that cancellation lands within
// microseconds of wall time, rare enough to stay off the event hot path.
const cancelCheckEvery = 1024

// Run executes every offloaded application to completion and returns the
// measured result. Cancelling ctx abandons the simulation between events
// and returns the context's error; the device is single-use either way.
func (d *Device) Run(ctx context.Context) (*stats.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d.ran {
		return nil, fmt.Errorf("core: device already ran")
	}
	d.ran = true
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(d.pending) == 0 {
		return nil, fmt.Errorf("core: nothing offloaded")
	}
	for i, app := range d.pending {
		app, at := app, d.arrivals[i]
		d.eng.Schedule(at, func() {
			d.chain.AddApp(app, at)
			d.sch.Kick(d)
		})
	}
	if d.Cfg.System.IsFlashAbacus() {
		d.storeng.Start()
	}
	// The loop condition checks runErr first: once a simulation failure is
	// recorded there is nothing left to observe, and draining the queue
	// would let a concurrent cancellation mask the real, deterministic
	// error below.
	for i := uint64(1); d.runErr == nil && d.eng.Step(); i++ {
		if i%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: %s run cancelled after %d events: %w",
					d.Cfg.System, d.eng.Processed(), err)
			}
		}
	}
	if d.runErr != nil {
		return nil, d.runErr
	}
	if !d.chain.AllDone() {
		return nil, fmt.Errorf("core: %s run stalled with work remaining", d.Cfg.System)
	}
	return d.collect(), nil
}

// collect assembles the run's metrics.
func (d *Device) collect() *stats.Result {
	r := &stats.Result{System: d.Cfg.System.String()}
	r.Makespan = d.doneAt
	for _, k := range d.chain.Kernels() {
		r.Bytes += k.Bytes()
		r.KernelLatencies = append(r.KernelLatencies, k.DoneAt-k.IssueAt)
		r.CompletionTimes = append(r.CompletionTimes, k.DoneAt)
	}
	var busy units.Duration
	for _, b := range d.execBusy {
		busy += b
	}
	if r.Makespan > 0 && d.workers > 0 {
		r.WorkerUtil = float64(busy) / (float64(d.workers) * float64(r.Makespan))
	}
	r.AccelTime = busy
	if d.Cfg.System == SIMD {
		// Fig. 3d decomposes wall time: the SSD and storage-stack legs
		// are serial (the body loop never overlaps them with kernel
		// execution), so the accelerator's share is the remainder. The
		// PCIe DMA leg belongs to the storage-stack bucket — the paper's
		// accelerator bucket only absorbs DMA that overlaps execution.
		r.SSDTime = d.hostm.SSDBusy()
		r.StackTime = d.hostm.CPUBusy() + d.link.Busy()
		if wall := r.Makespan - r.SSDTime - r.StackTime; wall > 0 {
			r.AccelTime = wall
		}
	} else {
		dies := d.Cfg.Flash.Channels * d.Cfg.Flash.DieRows()
		if dies > 0 {
			r.SSDTime = units.Duration(int64(d.backboneBusy()) / int64(dies))
		}
		// No host storage stack by construction, so StackTime stays zero.
		if drain := d.path.Drain(); drain > r.Makespan {
			r.DrainTime = drain - r.Makespan
		}
	}
	r.Visor = d.visor.Stats()
	r.FlashRetries, r.RetryTime = d.visor.Controller().BB.RetryStats()
	r.BGReclaims = d.storeng.Stats().BGReclaims
	r.Journals = d.storeng.Stats().Journals
	r.LockConflicts = d.visor.Lock.Conflicts()
	r.LockWaited = d.visor.Lock.Waited()
	d.accountEnergy(r)
	if d.Cfg.CollectSeries {
		d.buildSeries(r)
	}
	return r
}

func (d *Device) backboneBusy() units.Duration {
	return d.visor.Controller().BB.DieBusy()
}

// accountEnergy charges every component per §5.3's decomposition.
func (d *Device) accountEnergy(r *stats.Result) {
	var m power.Meter
	rates := d.Cfg.Rates
	span := r.Makespan

	// Worker LWPs: active while executing instructions, awake-idle while
	// stalled inside a screen, asleep otherwise.
	var occupied units.Duration
	for w := 0; w < d.workers; w++ {
		occ := d.cores[w].Res.Busy()
		occupied += occ
		exec := d.execBusy[w]
		m.AddBusy(fmt.Sprintf("lwp%d", w), power.Compute, exec, rates.LWPActive)
		if occ > exec {
			m.AddBusy(fmt.Sprintf("lwp%d", w), power.Compute, occ-exec, rates.LWPIdle)
		}
		if span > occ {
			m.AddBusy(fmt.Sprintf("lwp%d", w), power.Compute, span-occ, rates.LWPSleep)
		}
	}
	m.AddBusy("ddr3l", power.Compute, d.ddr.Busy(), rates.DDR3L)

	if d.Cfg.System.IsFlashAbacus() {
		// Flashvisor and Storengine poll their hardware queues for the
		// entire run — the always-busy cores InterSt pays for (§5.3).
		m.AddBusy("flashvisor", power.Storage, span, rates.LWPActive)
		m.AddBusy("storengine", power.Storage, span, rates.LWPActive)
		m.AddBusy("scratchpad", power.Storage, d.spad.Busy(), rates.Scratch)
		geo := d.Cfg.Flash
		dies := geo.Channels * geo.DieRows()
		if dies > 0 {
			m.AddBusy("flash-backbone", power.Storage,
				units.Duration(int64(d.backboneBusy())/int64(dies)), rates.Backbone)
		}
		m.AddBusy("pcie", power.DataMove, d.link.Busy(), rates.PCIe)
	} else {
		m.AddBusy("nvme-ssd", power.Storage, d.hostm.SSDBusy(), rates.SSD)
		m.AddBusy("host-cpu-stack", power.Storage, d.hostm.StackBusy(), rates.HostCPUActive-rates.HostCPUIdle)
		m.AddBusy("host-cpu-copy", power.DataMove, d.hostm.CopyBusy(), rates.HostCPUActive-rates.HostCPUIdle)
		// The host stays engaged for the whole body loop.
		m.AddBusy("host-cpu-base", power.DataMove, span, rates.HostCPUIdle)
		m.AddBusy("host-dram", power.DataMove, d.hostm.DRAMBusy(), rates.HostDRAM)
		m.AddBusy("pcie", power.DataMove, d.link.Busy(), rates.PCIe)
	}
	r.Energy = m.Breakdown()
	r.ByComponent = m.ByComponent()
}

// buildSeries produces the Fig. 15 functional-unit and power traces.
func (d *Device) buildSeries(r *stats.Result) {
	bin := d.Cfg.SeriesBin
	fu := power.NewSeries(bin)
	pw := power.NewSeries(bin)
	rates := d.Cfg.Rates

	base := float64(d.Cfg.LWPs) * rates.LWPIdle
	if d.Cfg.System.IsFlashAbacus() {
		base = float64(d.workers)*rates.LWPIdle + 2*rates.LWPActive
	} else {
		base += rates.HostCPUIdle
	}
	pw.AddSpan(0, r.Makespan, base)

	for _, sp := range d.spans {
		fu.AddSpan(sp.start, sp.end, sp.fus)
		pw.AddSpan(sp.start, sp.end, sp.fus/float64(d.Cfg.CostModel.IssueWidth())*rates.LWPActive*8)
		if sp.ioWatts > 0 && sp.ioEnd > sp.ioStart {
			pw.AddSpan(sp.ioStart, sp.ioEnd, sp.ioWatts)
		}
	}
	r.SeriesBin = bin
	r.FUSeries = fu.Bins()
	r.PowerSeries = pw.Bins()
}
