// Gcstress: fill the flash backbone, then overwrite it repeatedly with a
// functional payload while Flashvisor's on-demand reclaim and Storengine's
// background garbage collection fight for the dies — and verify the data
// survives every migration bit-for-bit.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	flashabacus "repro"
	"repro/internal/kdt"
)

func main() {
	cfg := flashabacus.DefaultConfig(flashabacus.IntraO3)
	cfg.Functional = true
	// Shrink the backbone so the overwrite churn finishes instantly.
	cfg.Flash.PackagesPerCh = 1
	cfg.Flash.PagesPerBlock = 16
	cfg.Flash.BlocksPerDie = 16
	d, err := flashabacus.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	logical := d.Visor().FTL.LogicalBytes()
	fmt.Printf("backbone: %d super blocks, %.1f MB logical space\n",
		cfg.Flash.SuperBlocks(), float64(logical)/1e6)

	// Install a recognizable payload over the whole logical space.
	payload := make([]byte, logical)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	if err := d.PopulateInput(0, logical, payload); err != nil {
		log.Fatal(err)
	}

	// Offload writers that overwrite the second half over and over; every
	// overwrite invalidates the previous version and forces reclaims.
	half := logical / 2
	writer := func() *kdt.Table {
		return &kdt.Table{
			Name:     "overwrite",
			Sections: kdt.DefaultSections(64, half),
			Microblocks: []kdt.Microblock{{Screens: []kdt.Screen{{Ops: []kdt.Op{
				{Kind: kdt.OpRead, Section: 0, FlashAddr: half, Bytes: half},
				{Kind: kdt.OpCompute, Instr: 1e6, LdStMilli: 300},
				{Kind: kdt.OpWrite, Section: 0, FlashAddr: half, Bytes: half},
			}}}}},
		}
	}
	if err := d.OffloadApp("stress", []*kdt.Table{writer(), writer(), writer(), writer()}); err != nil {
		log.Fatal(err)
	}
	r, err := d.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("makespan %.2f ms; foreground reclaims %d, background reclaims %d, migrated %d groups\n",
		float64(r.Makespan)/1e6, r.Visor.FGReclaims, r.BGReclaims, r.Visor.Migrated)

	// The first half was never written by the kernels: it must have
	// survived every garbage-collection migration untouched.
	got, err := d.Visor().ReadBytes(0, half)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload[:half]) {
		log.Fatal("DATA CORRUPTION: untouched region changed across GC")
	}
	fmt.Println("data integrity verified across garbage collection")
	if err := d.Visor().FTL.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mapping-table consistency verified")
}
