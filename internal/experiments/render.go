// Experiment registry and render orchestration.
//
// Historically cmd/abacus-repro owned the list of experiments and the
// logic that renders a selection of them to a stream; the serving layer
// (internal/service) needs the exact same bytes per experiment id, so
// both now share this one implementation. The contract every consumer
// relies on: a selection renders byte-identically at any Workers count,
// and the bytes for one experiment id are the same whether it renders
// alone or as part of "all" — which is what lets the service pin its
// responses against the CLI's committed golden files.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/report"
	"repro/internal/runner"
)

// Experiment couples an experiment id with the renderer producing exactly
// the bytes the reproduction prints for it, so renders can run as runner
// jobs and still be emitted in listing order.
type Experiment struct {
	ID     string
	Render func(ctx context.Context, s *Suite) (string, error)
}

// table adapts the common render-one-table case.
func table(t *report.Table, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return t.String() + "\n", nil
}

// List returns every experiment in the paper's presentation order — the
// order "all" prints.
func List() []Experiment {
	return []Experiment{
		{"t1", func(context.Context, *Suite) (string, error) {
			return table(Table1(), nil)
		}},
		{"t2", func(context.Context, *Suite) (string, error) {
			return table(Table2(), nil)
		}},
		{"mixes", func(context.Context, *Suite) (string, error) {
			return table(TableMixes(), nil)
		}},
		{"fig3b", func(ctx context.Context, s *Suite) (string, error) {
			p, err := s.Fig3Points(ctx)
			if err != nil {
				return "", err
			}
			return table(Fig3bTable(p), nil)
		}},
		{"fig3c", func(ctx context.Context, s *Suite) (string, error) {
			p, err := s.Fig3Points(ctx)
			if err != nil {
				return "", err
			}
			return table(Fig3cTable(p), nil)
		}},
		{"fig3d", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig3d(ctx)) }},
		{"fig3e", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig3e(ctx)) }},
		{"fig10a", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig10a(ctx)) }},
		{"fig10b", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig10b(ctx)) }},
		{"fig11a", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig11a(ctx)) }},
		{"fig11b", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig11b(ctx)) }},
		{"fig12", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig12(ctx)) }},
		{"fig13a", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig13a(ctx)) }},
		{"fig13b", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig13b(ctx)) }},
		{"fig14a", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig14a(ctx)) }},
		{"fig14b", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig14b(ctx)) }},
		{"fig15", func(ctx context.Context, s *Suite) (string, error) {
			res, err := s.Fig15(ctx)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for _, name := range []string{"SIMD", "IntraO3"} {
				r := res[name]
				stride := len(r.FUSeries)/24 + 1
				fmt.Fprintln(&b, report.Series("Fig 15a: FU utilization, "+name,
					int64(r.SeriesBin), r.FUSeries, stride))
				fmt.Fprintln(&b, report.Series("Fig 15b: power (W), "+name,
					int64(r.SeriesBin), r.PowerSeries, stride))
			}
			return b.String(), nil
		}},
		{"fig16a", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig16a(ctx)) }},
		{"fig16b", func(ctx context.Context, s *Suite) (string, error) { return table(s.Fig16b(ctx)) }},
		{"cluster", func(ctx context.Context, s *Suite) (string, error) { return s.Cluster(ctx) }},
		{"topology", func(ctx context.Context, s *Suite) (string, error) { return s.Topology(ctx) }},
		{"faults", func(ctx context.Context, s *Suite) (string, error) { return s.Faults(ctx) }},
	}
}

// IDs returns the experiment ids in presentation order.
func IDs() []string {
	var out []string
	for _, e := range List() {
		out = append(out, e.ID)
	}
	return out
}

// simFree marks the experiments renderable without any device runs; a
// render prints them immediately, before the (possibly minutes-long)
// cache fill the simulation-backed experiments need.
var simFree = map[string]bool{"t1": true, "t2": true, "mixes": true}

// Select resolves an experiment selection. id "all" expands to the full
// presentation-order list with the scale-out studies opt-in — cluster
// only when devices > 1, topology and faults only when their flags are
// set — so a plain full run prints exactly the single-device evaluation.
// Any other id selects exactly that experiment, opted in or not.
func Select(id string, devices int, topology, faults bool) ([]Experiment, error) {
	all := List()
	if id != "all" {
		for _, e := range all {
			if e.ID == id {
				return []Experiment{e}, nil
			}
		}
		return nil, fmt.Errorf("unknown experiment %q (valid: %s, all)", id, strings.Join(IDs(), " "))
	}
	var sel []Experiment
	for _, e := range all {
		if e.ID == "cluster" && devices == 1 {
			continue
		}
		if e.ID == "topology" && !topology {
			continue
		}
		if e.ID == "faults" && !faults {
			continue
		}
		sel = append(sel, e)
	}
	return sel, nil
}

// Render renders the selected experiments to w in selection order. The
// suite's Workers bounds the parallelism; whatever the bound, the bytes
// written are identical to a fully sequential (Workers == 1) render —
// the property the CLI's golden files and the service's golden
// equivalence suite both pin.
func (s *Suite) Render(ctx context.Context, w io.Writer, sel []Experiment) error {
	// The leading simulation-free tables print immediately — a paper-scale
	// cache fill below can run for minutes and t1/t2/mixes need no device
	// runs to render.
	for len(sel) > 0 && simFree[sel[0].ID] {
		out, err := sel[0].Render(ctx, s)
		if err != nil {
			return fmt.Errorf("%s: %w", sel[0].ID, err)
		}
		fmt.Fprint(w, out)
		sel = sel[1:]
	}

	// With parallelism, fill the shared result cache first: the cells of
	// every selected experiment are independent simulations, so this is
	// where the cores get used, and rendering afterwards is mostly cache
	// reads. A failed cell does not stop the fill (its error stays cached
	// and the owning experiment's render re-surfaces it under its id), so
	// every table before the affected experiment still prints — the same
	// stream a sequential run leaves behind. At Workers == 1 the fill adds
	// nothing: skip it and let the renders below simulate on demand,
	// streaming each table as it completes, exactly like the original
	// sequential harness.
	if s.Workers != 1 {
		// Every device run of every selected experiment — including the
		// Fig. 3 sweep and the Fig. 15 series, which are ordinary cells —
		// is in this one job list, so the pool stays saturated with no
		// serialized warm phases between experiment families.
		var selIDs []string
		for _, e := range sel {
			selIDs = append(selIDs, e.ID)
		}
		if err := s.Prewarm(ctx, s.CellsFor(selIDs)); err != nil && runner.IsCancellation(err) {
			return err
		}
	}

	// Render the experiments as runner jobs. Output is keyed by job index
	// and each table prints as soon as every table before it is done, so
	// the stream is byte-identical to a sequential run no matter which
	// render finishes first — and a late failure still leaves the
	// completed prefix on w.
	var (
		mu      sync.Mutex
		outs    = make([]string, len(sel))
		done    = make([]bool, len(sel))
		printed int
	)
	return runner.New(s.Workers).Each(ctx, len(sel), func(ctx context.Context, i int) error {
		out, err := sel[i].Render(ctx, s)
		if err != nil {
			return fmt.Errorf("%s: %w", sel[i].ID, err)
		}
		mu.Lock()
		outs[i], done[i] = out, true
		for printed < len(sel) && done[printed] {
			fmt.Fprint(w, outs[printed])
			outs[printed] = ""
			printed++
		}
		mu.Unlock()
		return nil
	})
}
