package lwp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestMixValidate(t *testing.T) {
	if (Mix{Mul: 0.2, LdSt: 0.3}).Validate() != nil {
		t.Error("valid mix rejected")
	}
	if (Mix{Mul: -0.1}).Validate() == nil {
		t.Error("negative mul accepted")
	}
	if (Mix{Mul: 0.7, LdSt: 0.5}).Validate() == nil {
		t.Error("mix over 1 accepted")
	}
}

func TestMixALU(t *testing.T) {
	m := Mix{Mul: 0.15, LdSt: 0.45}
	if got := m.ALU(); math.Abs(got-0.40) > 1e-12 {
		t.Errorf("ALU = %v, want 0.40", got)
	}
}

func TestCostModelValidate(t *testing.T) {
	if DefaultCostModel().Validate() != nil {
		t.Error("default model rejected")
	}
	bad := DefaultCostModel()
	bad.CPIBase = 0.5
	if bad.Validate() == nil {
		t.Error("CPI < 1 accepted")
	}
}

func TestIssueWidthIsEight(t *testing.T) {
	if got := DefaultCostModel().IssueWidth(); got != 8 {
		t.Errorf("issue width = %d, want 8 (2 MUL + 4 ALU + 2 LD/ST)", got)
	}
}

func TestCyclesStructuralBounds(t *testing.T) {
	m := DefaultCostModel()
	m.CPIBase = 1.0
	m.MissRate = 0
	// A pure-ALU stream is bound by 4 ALUs: 1e6 instr -> 250k cycles.
	if got := m.Cycles(1e6, Mix{}); got != 250000 {
		t.Errorf("pure ALU cycles = %d, want 250000", got)
	}
	// A load/store-heavy stream is bound by the 2 LD/ST units.
	ld := Mix{LdSt: 0.5}
	if got := m.Cycles(1e6, ld); got != 250000 {
		t.Errorf("50%% ldst cycles = %d, want 250000 (0.5/2 bound)", got)
	}
	heavy := Mix{LdSt: 0.8}
	if got := m.Cycles(1e6, heavy); got != 400000 {
		t.Errorf("80%% ldst cycles = %d, want 400000", got)
	}
}

func TestCacheMissTermAddsStalls(t *testing.T) {
	base := DefaultCostModel()
	noMiss := base
	noMiss.MissRate = 0
	m := Mix{LdSt: 0.46} // ATAX-like
	if base.Cycles(1e6, m) <= noMiss.Cycles(1e6, m) {
		t.Error("miss term did not add stall cycles")
	}
}

func TestEffectiveIPCWithinIssueWidth(t *testing.T) {
	c := DefaultCostModel()
	f := func(mulRaw, ldRaw uint8) bool {
		mul := float64(mulRaw%100) / 300
		ld := float64(ldRaw%100) / 300
		m := Mix{Mul: mul, LdSt: ld}
		ipc := c.EffectiveIPC(m)
		return ipc > 0 && ipc <= float64(c.IssueWidth())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclesMonotonicInInstructions(t *testing.T) {
	c := DefaultCostModel()
	m := Mix{Mul: 0.1, LdSt: 0.3}
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return c.Cycles(x, m) <= c.Cycles(y, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationAtOneGHz(t *testing.T) {
	c := DefaultCostModel()
	c.CPIBase = 1
	c.MissRate = 0
	d := c.Duration(8e9, Mix{}) // 8G ALU instr / 4 units = 2G cycles = 2s
	if d != 2*units.Second {
		t.Errorf("duration = %s, want 2s", units.FormatDuration(d))
	}
}

func TestZeroInstructions(t *testing.T) {
	c := DefaultCostModel()
	if c.Cycles(0, Mix{}) != 0 || c.Cycles(-5, Mix{}) != 0 {
		t.Error("non-positive instruction counts should cost zero")
	}
}

func TestFUsBusyMatchesIPC(t *testing.T) {
	c := DefaultCostModel()
	m := Mix{Mul: 0.15, LdSt: 0.40}
	if c.FUsBusy(m) != c.EffectiveIPC(m) {
		t.Error("FUsBusy should equal effective IPC")
	}
}

func TestPSCBootSequence(t *testing.T) {
	cores := []*Core{NewCore(0, DefaultCostModel()), NewCore(1, DefaultCostModel())}
	psc := NewPSC(cores, 5*units.Microsecond)

	if cores[0].State() != StateSleep {
		t.Fatal("cores should start asleep")
	}
	ready := psc.Boot(100, 0, 0x8000)
	if ready != 100+5*units.Microsecond {
		t.Errorf("boot ready at %d", ready)
	}
	if cores[0].BootAddr != 0x8000 {
		t.Errorf("boot address register = %#x", cores[0].BootAddr)
	}
	if cores[0].State() != StateIdle {
		t.Errorf("state after boot = %v", cores[0].State())
	}
	if cores[0].Wakeups() != 1 {
		t.Errorf("wakeups = %d", cores[0].Wakeups())
	}
	if cores[0].SleepTime() != 100 {
		t.Errorf("sleep time = %d, want 100", cores[0].SleepTime())
	}

	psc.MarkBusy(0)
	if cores[0].State() != StateBusy {
		t.Error("MarkBusy did not transition")
	}
	psc.MarkIdle(0)
	psc.Sleep(500, 0)
	psc.Sleep(600, 0) // double sleep is a no-op
	if cores[0].State() != StateSleep {
		t.Error("Sleep did not transition")
	}
	psc.Boot(800, 0, 0x9000)
	if cores[0].SleepTime() != 100+300 {
		t.Errorf("accumulated sleep = %d, want 400", cores[0].SleepTime())
	}
}

func TestStateString(t *testing.T) {
	if StateSleep.String() != "sleep" || StateIdle.String() != "idle" || StateBusy.String() != "busy" {
		t.Error("state strings wrong")
	}
}
