// The image wire format: a little-endian section table over flat payloads.
//
//	header (16 B):  magic "FAIM" · u16 version · u16 nsec · u32 crc · u32 0
//	section table:  nsec × (u32 id · u32 0 · u64 off · u64 len · u32 crc · u32 0)
//	payloads:       contiguous, each 8-byte aligned, no trailing bytes
//
// The header crc (CRC-32C) covers everything after the header — section
// table, payloads, and alignment padding — so any bit flip anywhere in the
// blob is detected; each section additionally carries its own CRC-32C for
// targeted diagnostics. Sections appear in fixed id order and are all
// mandatory, so a flipped section count or id also fails structurally.
//
// The layout is mmap-friendly: decode attaches, it does not copy. Mapping
// table segments are stored as raw little-endian int32 runs at 8-aligned
// offsets, so on little-endian machines the decoder reinterprets the blob
// bytes in place (with a copying fallback elsewhere); flash, host, and
// kernel payloads alias the blob directly. A decoded image therefore
// borrows the blob — stores must never mutate a blob they handed out.
package imagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"unsafe"

	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/flashvisor"
)

const (
	magic     = "FAIM"
	headerLen = 16
	secEntLen = 32
)

// Section ids, in their mandatory wire order.
const (
	secFTL   = 1 // FTL geometry, log-head and pool state
	secTable = 2 // forward mapping-table segments
	secRev   = 3 // reverse mapping-table segments
	secFlash = 4 // flash backbone payload base
	secHost  = 5 // host store payload base
	secApps  = 6 // offload replay records (kdt wire blobs + BAR sizes)
)

var sectionOrder = [...]uint32{secFTL, secTable, secRev, secFlash, secHost, secApps}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes an image to its deterministic wire format: the same
// image always yields the same bytes (map payloads are emitted in sorted
// key order).
func Encode(img *core.Image) ([]byte, error) {
	d, err := img.Data()
	if err != nil {
		return nil, err
	}
	payloads := [len(sectionOrder)][]byte{
		encodeFTL(d.FTL),
		encodeSegs(d.FTL.LogicalGroups, d.FTL.TableSegs),
		encodeSegs(d.FTL.Geo.TotalGroups(), d.FTL.RevSegs),
		encodeFlashBase(d.FlashBase),
		encodeHostBase(d.HostBase),
		encodeApps(d.Apps),
	}

	off := int64(headerLen + len(sectionOrder)*secEntLen)
	off = align8(off)
	var table []byte
	for i, p := range payloads {
		table = binary.LittleEndian.AppendUint32(table, sectionOrder[i])
		table = binary.LittleEndian.AppendUint32(table, 0)
		table = binary.LittleEndian.AppendUint64(table, uint64(off))
		table = binary.LittleEndian.AppendUint64(table, uint64(len(p)))
		table = binary.LittleEndian.AppendUint32(table, crc32.Checksum(p, castagnoli))
		table = binary.LittleEndian.AppendUint32(table, 0)
		off = align8(off + int64(len(p)))
	}

	blob := make([]byte, 0, off)
	blob = append(blob, magic...)
	blob = binary.LittleEndian.AppendUint16(blob, CodecVersion)
	blob = binary.LittleEndian.AppendUint16(blob, uint16(len(sectionOrder)))
	blob = binary.LittleEndian.AppendUint32(blob, 0) // blob crc, patched below
	blob = binary.LittleEndian.AppendUint32(blob, 0)
	blob = append(blob, table...)
	for _, p := range payloads {
		for int64(len(blob))%8 != 0 {
			blob = append(blob, 0)
		}
		blob = append(blob, p...)
	}
	binary.LittleEndian.PutUint32(blob[8:], crc32.Checksum(blob[headerLen:], castagnoli))
	return blob, nil
}

// Decode rebuilds an image from blob for a requester configured with cfg.
// The blob's geometry must match cfg's — the fingerprint normally
// guarantees it; a mismatch means the blob is stale or misfiled and is
// reported as corruption. Every failure mode returns an error satisfying
// errors.Is(err, ErrCorrupt); Decode never panics on hostile input. The
// returned image aliases blob, which must not be mutated afterwards.
func Decode(cfg core.Config, blob []byte) (*core.Image, error) {
	secs, err := parseSections(blob)
	if err != nil {
		return nil, err
	}
	d := core.ImageData{}
	if d.FTL, err = decodeFTL(secs[secFTL]); err != nil {
		return nil, err
	}
	if d.FTL.Geo != cfg.Flash {
		return nil, corruptf("geometry %+v does not match requester %+v", d.FTL.Geo, cfg.Flash)
	}
	if d.FTL.TableSegs, err = decodeSegs(secs[secTable], d.FTL.LogicalGroups); err != nil {
		return nil, err
	}
	if d.FTL.RevSegs, err = decodeSegs(secs[secRev], d.FTL.Geo.TotalGroups()); err != nil {
		return nil, err
	}
	if d.FlashBase, err = decodeFlashBase(secs[secFlash]); err != nil {
		return nil, err
	}
	if d.HostBase, err = decodeHostBase(secs[secHost]); err != nil {
		return nil, err
	}
	if d.Apps, err = decodeApps(secs[secApps]); err != nil {
		return nil, err
	}
	img, err := core.ImageFromData(cfg, d)
	if err != nil {
		return nil, corruptf("rejected by image validation: %v", err)
	}
	return img, nil
}

// corruptf wraps a decode failure so errors.Is(err, ErrCorrupt) holds.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// parseSections verifies the envelope — magic, version, whole-blob CRC,
// section table structure, per-section CRCs — and returns the payload of
// each section keyed by id.
func parseSections(blob []byte) (map[uint32][]byte, error) {
	if len(blob) < headerLen {
		return nil, corruptf("blob too short (%d bytes)", len(blob))
	}
	if string(blob[:4]) != magic {
		return nil, corruptf("bad magic %q", blob[:4])
	}
	if v := binary.LittleEndian.Uint16(blob[4:]); v != CodecVersion {
		return nil, corruptf("codec version %d, want %d", v, CodecVersion)
	}
	if n := binary.LittleEndian.Uint16(blob[6:]); int(n) != len(sectionOrder) {
		return nil, corruptf("%d sections, want %d", n, len(sectionOrder))
	}
	if binary.LittleEndian.Uint32(blob[12:]) != 0 {
		return nil, corruptf("non-zero header padding")
	}
	if got, want := crc32.Checksum(blob[headerLen:], castagnoli), binary.LittleEndian.Uint32(blob[8:]); got != want {
		return nil, corruptf("blob checksum %08x, want %08x", got, want)
	}
	tableEnd := headerLen + len(sectionOrder)*secEntLen
	if len(blob) < tableEnd {
		return nil, corruptf("blob truncated inside section table")
	}
	secs := make(map[uint32][]byte, len(sectionOrder))
	next := align8(int64(tableEnd))
	for i, id := range sectionOrder {
		ent := blob[headerLen+i*secEntLen:]
		if binary.LittleEndian.Uint32(ent) != id {
			return nil, corruptf("section %d has id %d, want %d", i, binary.LittleEndian.Uint32(ent), id)
		}
		if binary.LittleEndian.Uint32(ent[4:]) != 0 || binary.LittleEndian.Uint32(ent[28:]) != 0 {
			return nil, corruptf("section %d has non-zero padding", i)
		}
		off := binary.LittleEndian.Uint64(ent[8:])
		length := binary.LittleEndian.Uint64(ent[16:])
		if int64(off) != next {
			return nil, corruptf("section %d at offset %d, want %d", i, off, next)
		}
		if off > uint64(len(blob)) || length > uint64(len(blob))-off {
			return nil, corruptf("section %d overruns blob", i)
		}
		p := blob[off : off+length]
		if got, want := crc32.Checksum(p, castagnoli), binary.LittleEndian.Uint32(ent[24:]); got != want {
			return nil, corruptf("section %d checksum %08x, want %08x", i, got, want)
		}
		secs[id] = p
		next = align8(int64(off + length))
	}
	// No trailing bytes: the last section must end exactly at blob end, so
	// appended garbage cannot hide past the table.
	lastEnt := blob[headerLen+(len(sectionOrder)-1)*secEntLen:]
	if end := binary.LittleEndian.Uint64(lastEnt[8:]) + binary.LittleEndian.Uint64(lastEnt[16:]); end != uint64(len(blob)) {
		return nil, corruptf("%d trailing bytes", uint64(len(blob))-end)
	}
	return secs, nil
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

// --- FTL scalar/pool section -----------------------------------------------

func encodeFTL(d flashvisor.FTLImageData) []byte {
	w := &wbuf{}
	g := d.Geo
	for _, v := range []int64{int64(g.Channels), int64(g.PackagesPerCh), int64(g.DiesPerPkg),
		int64(g.PlanesPerDie), g.PageSize, int64(g.PagesPerBlock), int64(g.BlocksPerDie), int64(g.MetaPages)} {
		w.i64(v)
	}
	w.i64(d.LogicalGroups)
	w.i64(int64(d.AllocRow))
	w.u32(uint32(len(d.FreeSBs)))
	w.u32(uint32(len(d.ValidPerSB)))
	for _, v := range d.ValidPerSB {
		w.u32(uint32(v))
	}
	for _, row := range d.FreeSBs {
		w.u32(uint32(len(row)))
		for _, sb := range row {
			w.u32(uint32(sb))
		}
	}
	w.u32(uint32(len(d.UsedSBs)))
	for _, sb := range d.UsedSBs {
		w.u32(uint32(sb))
	}
	for _, sb := range d.Active {
		w.u32(uint32(sb))
	}
	for _, h := range d.HasActive {
		if h {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
	for _, c := range d.Cursor {
		w.i64(int64(c))
	}
	return w.b
}

func decodeFTL(p []byte) (flashvisor.FTLImageData, error) {
	r := &rbuf{b: p}
	var d flashvisor.FTLImageData
	d.Geo = flash.Geometry{
		Channels: int(r.i64()), PackagesPerCh: int(r.i64()), DiesPerPkg: int(r.i64()),
		PlanesPerDie: int(r.i64()), PageSize: r.i64(), PagesPerBlock: int(r.i64()),
		BlocksPerDie: int(r.i64()), MetaPages: int(r.i64()),
	}
	d.LogicalGroups = r.i64()
	d.AllocRow = int(r.i64())
	rows := r.u32()
	nValid := r.u32()
	if r.err != nil {
		return d, corruptf("ftl section: %v", r.err)
	}
	// All remaining counts derive from the geometry the requester will
	// verify; bound allocations by what the section's bytes can justify so
	// a hostile header cannot force a huge allocation.
	if err := r.reserve(int64(nValid) * 4); err != nil {
		return d, err
	}
	d.ValidPerSB = make([]int32, nValid)
	for i := range d.ValidPerSB {
		d.ValidPerSB[i] = int32(r.u32())
	}
	if err := r.reserve(int64(rows) * 4); err != nil {
		return d, err
	}
	// Empty pool queues decode as nil, matching Snapshot's append-to-nil
	// copies, so a decoded image is deep-equal to the one it came from.
	readSBs := func() ([]flash.SuperBlock, error) {
		n := r.u32()
		if err := r.reserve(int64(n) * 4); err != nil {
			return nil, err
		}
		var sbs []flash.SuperBlock
		for j := uint32(0); j < n; j++ {
			sbs = append(sbs, flash.SuperBlock(r.u32()))
		}
		return sbs, nil
	}
	var err error
	d.FreeSBs = make([][]flash.SuperBlock, rows)
	for i := range d.FreeSBs {
		if d.FreeSBs[i], err = readSBs(); err != nil {
			return d, err
		}
	}
	if d.UsedSBs, err = readSBs(); err != nil {
		return d, err
	}
	if err := r.reserve(int64(rows) * 13); err != nil { // 4+1+8 bytes per row
		return d, err
	}
	d.Active = make([]flash.SuperBlock, rows)
	for i := range d.Active {
		d.Active[i] = flash.SuperBlock(r.u32())
	}
	d.HasActive = make([]bool, rows)
	for i := range d.HasActive {
		d.HasActive[i] = r.u8() != 0
	}
	d.Cursor = make([]int, rows)
	for i := range d.Cursor {
		d.Cursor[i] = int(r.i64())
	}
	if err := r.finish("ftl"); err != nil {
		return d, err
	}
	// Bound LogicalGroups here (FTLImageFromData re-checks): the segment
	// decoders size their directories by it, and that allocation must never
	// exceed what a real table over this geometry could need.
	if err := d.Geo.Validate(); err != nil {
		return d, corruptf("ftl geometry: %v", err)
	}
	dataGroups := int64(d.Geo.SuperBlocks()) * int64(d.Geo.DataGroupsPerSuperBlock())
	if d.LogicalGroups <= 0 || d.LogicalGroups > dataGroups {
		return d, corruptf("logical groups %d outside (0, %d]", d.LogicalGroups, dataGroups)
	}
	return d, nil
}

// --- mapping-table segment sections ----------------------------------------

// encodeSegs emits one mapping table: a directory of present (non-nil)
// segment indices, then the raw little-endian int32 bytes of each present
// segment, 8-aligned so decode can reinterpret them in place.
func encodeSegs(n int64, segs [][]int32) []byte {
	w := &wbuf{}
	w.i64(n)
	present := 0
	for _, s := range segs {
		if s != nil {
			present++
		}
	}
	w.u32(uint32(present))
	w.u32(0)
	for i, s := range segs {
		if s != nil {
			w.u32(uint32(i))
		}
	}
	w.pad8()
	for _, s := range segs {
		if s == nil {
			continue
		}
		for _, v := range s {
			w.u32(uint32(v))
		}
	}
	return w.b
}

// decodeSegs rebuilds a segment directory, attaching segment storage to the
// blob bytes where alignment and byte order allow. want is the table length
// the requester's geometry dictates; the blob must agree.
func decodeSegs(p []byte, want int64) ([][]int32, error) {
	r := &rbuf{b: p}
	n := r.i64()
	present := r.u32()
	if r.u32() != 0 || r.err != nil {
		return nil, corruptf("segment section header")
	}
	if n != want {
		return nil, corruptf("mapping table has %d entries, requester expects %d", n, want)
	}
	nsegs := flashvisor.SegmentCount(n)
	if int64(present) > int64(nsegs) {
		return nil, corruptf("%d present segments of %d", present, nsegs)
	}
	if err := r.reserve(int64(present) * 4); err != nil {
		return nil, err
	}
	idx := make([]uint32, present)
	prev := int64(-1)
	for i := range idx {
		idx[i] = r.u32()
		if int64(idx[i]) <= prev || int64(idx[i]) >= int64(nsegs) {
			return nil, corruptf("segment index %d out of order or range", idx[i])
		}
		prev = int64(idx[i])
	}
	r.align8()
	segs := make([][]int32, nsegs)
	const segBytes = flashvisor.SegmentEntries * 4
	for _, i := range idx {
		raw := r.bytes(segBytes)
		if r.err != nil {
			return nil, corruptf("segment payloads: %v", r.err)
		}
		segs[i] = int32view(raw)
	}
	if err := r.finish("segments"); err != nil {
		return nil, err
	}
	return segs, nil
}

// nativeLE reports whether this machine stores integers little-endian, the
// wire byte order — true everywhere the suite runs (amd64/arm64), with a
// portable copying fallback below.
var nativeLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// int32view reinterprets b (length a multiple of 4) as []int32 without
// copying when the platform byte order and the slice's alignment allow;
// otherwise it decodes through a copy.
func int32view(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if nativeLE && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// --- payload base sections -------------------------------------------------

func encodeFlashBase(base map[flash.PhysGroup][]byte) []byte {
	keys := make([]int64, 0, len(base))
	for pg := range base {
		keys = append(keys, int64(pg))
	}
	return encodeByteMap(keys, func(k int64) []byte { return base[flash.PhysGroup(k)] })
}

func encodeHostBase(base map[int64][]byte) []byte {
	keys := make([]int64, 0, len(base))
	for addr := range base {
		keys = append(keys, addr)
	}
	return encodeByteMap(keys, func(k int64) []byte { return base[k] })
}

// encodeByteMap emits an int64-keyed payload map deterministically: a
// sorted (key, length) directory followed by the payloads in key order.
func encodeByteMap(keys []int64, get func(int64) []byte) []byte {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w := &wbuf{}
	w.u32(uint32(len(keys)))
	w.u32(0)
	for _, k := range keys {
		w.i64(k)
		w.i64(int64(len(get(k))))
	}
	for _, k := range keys {
		w.b = append(w.b, get(k)...)
	}
	return w.b
}

func decodeFlashBase(p []byte) (map[flash.PhysGroup][]byte, error) {
	var m map[flash.PhysGroup][]byte
	err := decodeByteMap(p, func(n int) {
		m = make(map[flash.PhysGroup][]byte, n)
	}, func(k int64, v []byte) {
		m[flash.PhysGroup(k)] = v
	})
	return m, err
}

func decodeHostBase(p []byte) (map[int64][]byte, error) {
	var m map[int64][]byte
	err := decodeByteMap(p, func(n int) {
		m = make(map[int64][]byte, n)
	}, func(k int64, v []byte) {
		m[k] = v
	})
	return m, err
}

// decodeByteMap parses an int64-keyed payload map, aliasing each payload
// into the blob. An empty map decodes as nil, matching SnapshotStore's
// convention for timing-only devices. init is only called for non-empty
// maps, sized by the directory the section's own bytes justify.
func decodeByteMap(p []byte, init func(n int), put func(k int64, v []byte)) error {
	r := &rbuf{b: p}
	n := r.u32()
	if r.u32() != 0 || r.err != nil {
		return corruptf("payload map header")
	}
	if n == 0 {
		return r.finish("payload map")
	}
	if err := r.reserve(int64(n) * 16); err != nil {
		return err
	}
	type ent struct {
		key int64
		len int64
	}
	dir := make([]ent, n)
	prev := int64(0)
	for i := range dir {
		dir[i] = ent{key: r.i64(), len: r.i64()}
		if i > 0 && dir[i].key <= prev {
			return corruptf("payload keys out of order")
		}
		prev = dir[i].key
		if dir[i].len < 0 {
			return corruptf("negative payload length")
		}
	}
	init(int(n))
	for _, e := range dir {
		v := r.bytes(int(e.len))
		if r.err != nil {
			return corruptf("payloads: %v", r.err)
		}
		put(e.key, v)
	}
	return r.finish("payload map")
}

// --- offload replay section ------------------------------------------------

func encodeApps(apps []core.ImageApp) []byte {
	w := &wbuf{}
	w.u32(uint32(len(apps)))
	w.u32(0)
	for _, app := range apps {
		w.u32(uint32(len(app.Name)))
		w.b = append(w.b, app.Name...)
		w.u32(uint32(len(app.Blobs)))
		for ki, blob := range app.Blobs {
			w.i64(app.WireLens[ki])
			w.u32(uint32(len(blob)))
			w.b = append(w.b, blob...)
		}
	}
	return w.b
}

func decodeApps(p []byte) ([]core.ImageApp, error) {
	r := &rbuf{b: p}
	n := r.u32()
	if r.u32() != 0 || r.err != nil {
		return nil, corruptf("apps header")
	}
	var apps []core.ImageApp
	for i := uint32(0); i < n; i++ {
		var app core.ImageApp
		app.Name = string(r.bytes(int(r.u32())))
		nk := r.u32()
		if r.err != nil {
			return nil, corruptf("app %d: %v", i, r.err)
		}
		for k := uint32(0); k < nk; k++ {
			app.WireLens = append(app.WireLens, r.i64())
			app.Blobs = append(app.Blobs, r.bytes(int(r.u32())))
			if r.err != nil {
				return nil, corruptf("app %d kernel %d: %v", i, k, r.err)
			}
		}
		apps = append(apps, app)
	}
	if err := r.finish("apps"); err != nil {
		return nil, err
	}
	return apps, nil
}

// --- little-endian write/read buffers --------------------------------------

type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) i64(v int64)  { w.b = binary.LittleEndian.AppendUint64(w.b, uint64(v)) }
func (w *wbuf) pad8() {
	for len(w.b)%8 != 0 {
		w.b = append(w.b, 0)
	}
}

// rbuf is a bounds-checked little-endian reader: overruns latch err and
// subsequent reads return zeros, so decoders validate once at the end.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) need(n int) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		r.err = fmt.Errorf("need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return false
	}
	return true
}

// reserve errors out unless at least n more bytes remain: decoders call it
// before allocating count-driven structures, so allocation size is always
// bounded by real section bytes.
func (r *rbuf) reserve(n int64) error {
	if r.err != nil {
		return corruptf("%v", r.err)
	}
	if n < 0 || n > int64(len(r.b)-r.off) {
		r.err = fmt.Errorf("count needs %d bytes, %d remain", n, len(r.b)-r.off)
		return corruptf("%v", r.err)
	}
	return nil
}

func (r *rbuf) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) i64() int64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return int64(v)
}

func (r *rbuf) bytes(n int) []byte {
	if !r.need(n) {
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *rbuf) align8() {
	for r.off%8 != 0 && r.err == nil {
		if r.u8() != 0 {
			r.err = fmt.Errorf("non-zero alignment padding at offset %d", r.off-1)
		}
	}
}

// finish reports any latched error or unconsumed trailing bytes.
func (r *rbuf) finish(what string) error {
	if r.err != nil {
		return corruptf("%s: %v", what, r.err)
	}
	if r.off != len(r.b) {
		return corruptf("%s: %d trailing bytes", what, len(r.b)-r.off)
	}
	return nil
}
