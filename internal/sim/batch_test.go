package sim

import (
	"math/rand"
	"testing"

	"repro/internal/units"
)

// TestReserveNMatchesLoop pins the batching contract: ReserveN must leave
// the resource in exactly the state n individual Reserves leave it in, for
// any prior frontier. Byte-identical simulation output depends on this.
func TestReserveNMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		at := Time(rng.Intn(1000))
		d := Duration(1 + rng.Intn(50))
		n := 1 + rng.Intn(20)
		pre := Duration(rng.Intn(2000))

		a, b := NewResource("a"), NewResource("b")
		a.Reserve(0, pre)
		b.Reserve(0, pre)

		var wantStart, wantEnd Time
		for i := 0; i < n; i++ {
			s, e := a.Reserve(at, d)
			if i == 0 {
				wantStart = s
			}
			wantEnd = e
		}
		gotStart, gotEnd := b.ReserveN(at, d, n)
		if gotStart != wantStart || gotEnd != wantEnd {
			t.Fatalf("trial %d: ReserveN = [%d,%d), loop = [%d,%d)", trial, gotStart, gotEnd, wantStart, wantEnd)
		}
		if a.FreeAt() != b.FreeAt() || a.Busy() != b.Busy() || a.Reservations() != b.Reservations() {
			t.Fatalf("trial %d: state diverged: free %d/%d busy %d/%d n %d/%d",
				trial, a.FreeAt(), b.FreeAt(), a.Busy(), b.Busy(), a.Reservations(), b.Reservations())
		}
	}
}

// TestTransferUniformMatchesLoop pins the pipe batching contract against
// every regime: stride above, below, and equal to the per-transfer duration,
// with the pipe initially idle, backlogged, and mid-catch-up.
func TestTransferUniformMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		bw := units.Bandwidth(1 + rng.Intn(int(units.GBps)))
		lat := Duration(rng.Intn(3) * 25)
		nb := int64(rng.Intn(4096)) // includes 0-byte transfers
		stride := Duration(rng.Intn(200))
		n := 1 + rng.Intn(16)
		at := Time(rng.Intn(500))
		pre := int64(rng.Intn(100_000))

		a, b := NewPipe("a", bw), NewPipe("b", bw)
		a.Latency, b.Latency = lat, lat
		a.Transfer(0, pre)
		b.Transfer(0, pre)

		var wantEnd Time
		for i := 0; i < n; i++ {
			_, wantEnd = a.Transfer(at+Duration(i)*stride, nb)
		}
		gotEnd := b.TransferUniform(at, stride, n, nb)
		if gotEnd != wantEnd {
			t.Fatalf("trial %d (bw=%d lat=%d nb=%d stride=%d n=%d): end %d, want %d",
				trial, bw, lat, nb, stride, n, gotEnd, wantEnd)
		}
		if a.FreeAt() != b.FreeAt() || a.Busy() != b.Busy() || a.Bytes() != b.Bytes() {
			t.Fatalf("trial %d: state diverged: free %d/%d busy %d/%d bytes %d/%d",
				trial, a.FreeAt(), b.FreeAt(), a.Busy(), b.Busy(), a.Bytes(), b.Bytes())
		}
	}
}
