// Package experiments contains one driver per table and figure of the
// paper's evaluation (§3.1 and §5). cmd/abacus-repro, bench_test.go, and
// EXPERIMENTS.md all regenerate their numbers through these functions, so
// every reported row has exactly one source.
//
// A Suite caches the (workload, system) device runs the figures share.
// The cache is safe for concurrent use and single-flight: when figures
// race for the same cell, exactly one simulation runs and the rest wait
// for its result. Prewarm fills the cache through the internal/runner
// worker pool, which is how cmd/abacus-repro parallelizes a full
// reproduction across cores while keeping output byte-identical to a
// sequential run.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/imagestore"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// Kind selects which workload family a cached cell simulates.
type Kind int

const (
	// KindHomogeneous is a Table 2 PolyBench application (six instances).
	KindHomogeneous Kind = iota
	// KindHeterogeneous is one of the MX1..MX14 application mixes.
	KindHeterogeneous
	// KindBigdata is a §5.6 graph/bigdata application.
	KindBigdata
	// KindSensitivity is one (cores, serial%) cell of the Fig. 3b/3c sweep
	// on the conventional system.
	KindSensitivity
	// KindSeries is a mix run with time-series collection (Fig. 15).
	KindSeries
	// KindCluster is one (workload, devices, policy) cell of the cluster
	// scaling study: the bundle sharded across Devices cards by the
	// internal/cluster dispatcher.
	KindCluster
	// KindTopology is one (workload, topology preset, total cards, policy)
	// cell of the heterogeneous-topology sweep: the bundle dispatched over
	// a multi-switch and/or geometry-skewed card tree.
	KindTopology
	// KindFault is one (fault scenario, policy) cell of the fault-injection
	// study: the bundle dispatched across a cluster while a deterministic
	// fault plan kills cards, degrades switches, or wears the flash.
	KindFault
)

// Job names one cached device simulation: a workload cell (application,
// mix, sensitivity point, or series run) on one system. It is the Suite's
// cache key and the unit of work Prewarm hands to the runner pool — every
// device run of a full reproduction, including the Fig. 3 sweep and the
// Fig. 15 series, flows through this one type, so a single Prewarm saturates
// the worker pool with no serialized warm phases between experiment
// families.
type Job struct {
	Kind  Kind
	Name  string // application name (KindHomogeneous, KindBigdata, KindCluster)
	Mix   int    // mix number (KindHeterogeneous, KindSeries, KindCluster with Name == "")
	Sys   core.System
	Cores int // worker count (KindSensitivity)
	Pct   int // serial instruction percentage (KindSensitivity)

	Devices int            // card count (KindCluster, KindTopology, KindFault)
	Policy  cluster.Policy // dispatch policy (KindCluster, KindTopology, KindFault)
	Topo    string         // topology preset name (KindTopology)
	Fault   string         // fault scenario name (KindFault)
}

func (j Job) String() string {
	switch j.Kind {
	case KindHeterogeneous:
		return fmt.Sprintf("MX%d/%s", j.Mix, j.Sys)
	case KindSensitivity:
		return fmt.Sprintf("serial%d@%dc/%s", j.Pct, j.Cores, j.Sys)
	case KindSeries:
		return fmt.Sprintf("MX%d-series/%s", j.Mix, j.Sys)
	case KindCluster:
		return fmt.Sprintf("cluster-%s@%dx%s/%s", j.workloadName(), j.Devices, j.Policy, j.Sys)
	case KindTopology:
		return fmt.Sprintf("topo-%s-%s@%dx%s/%s", j.Topo, j.workloadName(), j.Devices, j.Policy, j.Sys)
	case KindFault:
		return fmt.Sprintf("fault-%s-%s@%dx%s/%s", j.Fault, j.workloadName(), j.Devices, j.Policy, j.Sys)
	default:
		return fmt.Sprintf("%s/%s", j.Name, j.Sys)
	}
}

// workloadName names the job's workload for rows and labels: the
// application name, or MXn when the job runs a mix.
func (j Job) workloadName() string {
	if j.Name != "" {
		return j.Name
	}
	return fmt.Sprintf("MX%d", j.Mix)
}

// bundle builds the job's workload at the suite's scale.
func (j Job) bundle(o workload.Options) (*workload.Bundle, error) {
	switch j.Kind {
	case KindHomogeneous, KindBigdata:
		return workload.Homogeneous(j.Name, o)
	case KindHeterogeneous, KindSeries:
		return workload.Mix(j.Mix, o)
	case KindCluster, KindTopology, KindFault:
		if j.Name != "" {
			return workload.Homogeneous(j.Name, o)
		}
		return workload.Mix(j.Mix, o)
	case KindSensitivity:
		b, _, err := workload.Sensitivity(j.Pct, j.Cores, o)
		return b, err
	}
	return nil, fmt.Errorf("experiments: unknown job kind %d", j.Kind)
}

// The Suite's caches are single-flight slots driven by runner.Await — the
// same protocol the cluster image/probe caches use: the first requester
// computes, everyone else waits, and a flight that failed only because its
// starter was cancelled is evicted for live-context waiters to retry.
type flight[T any] = runner.Flight[T]

// Suite runs and caches the evaluation's device runs at one scale. Scale
// divides the Table 2 input sizes: 1 reproduces paper-scale data volumes,
// larger values shrink runs for tests and benches.
//
// Methods may be called from many goroutines; each distinct cell is
// simulated exactly once. Workers bounds how many simulations Prewarm and
// the Fig. 3 sweep run concurrently (0 means runtime.GOMAXPROCS(0)).
type Suite struct {
	Scale   int64
	Workers int
	// MaxDevices caps the cluster scaling sweep's device counts (0 means
	// the full ClusterDeviceCounts sweep). abacus-repro sets it from
	// -devices so the prewarmed cells match the rendered columns.
	MaxDevices int

	mu    sync.Mutex
	cells map[Job]*flight[*stats.Result]
	fig3  *flight[[]Fig3Point]
	fig15 *flight[map[string]*stats.Result]

	// faults are the fault-injection scenarios the "faults" experiment
	// runs, by name. Nil means DefaultFaultScenarios; SetFaultScenarios
	// replaces them (abacus-repro does when -faults names a plan file).
	faults []FaultScenario

	// images shares formatted/populated/offloaded device snapshots and
	// work-steal probe runs across every cell of the suite: cells fork a
	// copy-on-write image of their (configuration class, bundle) instead
	// of rebuilding the device lifecycle, and cluster cells at different
	// card counts and policies reuse one probe simulation per (card
	// class, instance). Results are byte-identical to uncached runs.
	images *cluster.ImageCache
}

// NewSuite returns an empty suite at the given scale.
func NewSuite(scale int64) *Suite {
	return NewSuiteWithImages(scale, nil)
}

// NewSuiteWithImages returns an empty suite at the given scale sharing a
// caller-owned image/probe cache instead of a private one. A long-lived
// process serving many suites — one per (scale, devices, fault-scenario)
// combination — hands every suite the same cache, so a repeat job forks
// warm device images even when its cell results were built by another
// suite. A nil cache keeps the suite self-contained, exactly like
// NewSuite.
func NewSuiteWithImages(scale int64, images *cluster.ImageCache) *Suite {
	if scale < 1 {
		scale = 1
	}
	if images == nil {
		images = cluster.NewImageCache()
	}
	return &Suite{
		Scale:  scale,
		cells:  map[Job]*flight[*stats.Result]{},
		images: images,
	}
}

// SetImageStore attaches a persistent second level to the suite's image
// cache: cells consult the store before building device images, and fresh
// builds are written back asynchronously (see FlushImages). Call it before
// the first Run or Prewarm.
func (s *Suite) SetImageStore(st imagestore.Store) { s.images.SetStore(st) }

// ImageStats returns the suite's image/probe cache counters.
func (s *Suite) ImageStats() cluster.CacheStats { return s.images.Stats() }

// FlushImages blocks until every asynchronous image-store fill has landed,
// the boundary after which the store is warm for the next process.
func (s *Suite) FlushImages() { s.images.FlushStore() }

// SetFaultScenarios replaces the suite's fault-injection scenarios (nil
// restores DefaultFaultScenarios). Call it before the first Run or
// Prewarm: the scenario name is part of the cache key, so swapping a
// name's plan afterwards would alias stale cells.
func (s *Suite) SetFaultScenarios(scs []FaultScenario) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = scs
}

// faultScenarios returns the active scenario list.
func (s *Suite) faultScenarios() []FaultScenario {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.faults != nil {
		return s.faults
	}
	return DefaultFaultScenarios()
}

// faultPlan resolves a scenario name to its plan.
func (s *Suite) faultPlan(name string) (*faults.Plan, error) {
	for _, sc := range s.faultScenarios() {
		if sc.Name == name {
			return sc.Plan, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown fault scenario %q", name)
}

func (s *Suite) opts() workload.Options {
	o := workload.DefaultOptions()
	o.Scale = s.Scale
	return o
}

// RunBundle executes a workload bundle on one system configuration by
// walking a single cluster node through its lifecycle (build, populate,
// offload, run). Cancelling ctx abandons the simulation.
func RunBundle(ctx context.Context, sys core.System, b *workload.Bundle, series bool) (*stats.Result, error) {
	return RunBundleCached(ctx, sys, b, series, nil)
}

// RunBundleCached is RunBundle forking the cached device image for the
// (system class, bundle) pair instead of rebuilding the lifecycle; a nil
// cache rebuilds from scratch. Results are byte-identical either way.
func RunBundleCached(ctx context.Context, sys core.System, b *workload.Bundle, series bool, images *cluster.ImageCache) (*stats.Result, error) {
	cfg := core.DefaultConfig(sys)
	cfg.CollectSeries = series
	return cluster.RunSingleCached(ctx, cfg, b, images)
}

// RunCluster shards a workload bundle across devices simulated cards under
// the given dispatch policy and returns the aggregated cluster result.
// devices <= 1 is the single-device path, byte-identical to RunBundle.
// A non-nil image cache lets every card fork its class image and memoizes
// work-steal probes across dispatches.
func RunCluster(ctx context.Context, sys core.System, devices int, policy cluster.Policy, b *workload.Bundle, images *cluster.ImageCache) (*stats.Result, error) {
	if devices < 1 {
		devices = 1 // the documented single-device path, not a config error
	}
	cfg := core.DefaultConfig(sys)
	cfg.Devices = devices
	return cluster.Run(ctx, cfg, b, cluster.Options{Policy: policy, Images: images})
}

// RunTopology dispatches a workload bundle over an explicit cluster
// topology — a tree of switches fanning out to possibly-skewed cards —
// with the default configuration as the base card every skew derives from.
func RunTopology(ctx context.Context, sys core.System, topo cluster.Topology, policy cluster.Policy, b *workload.Bundle, images *cluster.ImageCache) (*stats.Result, error) {
	cfg := core.DefaultConfig(sys)
	return cluster.Run(ctx, cfg, b, cluster.Options{Policy: policy, Topology: topo, Images: images})
}

// Run returns job j's result, simulating it on first request. Concurrent
// requests for the same cell share one simulation. A run that fails only
// because its context was cancelled is evicted, so a later call with a
// live context retries instead of replaying the stale cancellation.
func (s *Suite) Run(ctx context.Context, j Job) (*stats.Result, error) {
	return runner.Await(ctx, &s.mu,
		func() *flight[*stats.Result] { return s.cells[j] },
		func(f *flight[*stats.Result]) {
			if f == nil {
				delete(s.cells, j)
			} else {
				s.cells[j] = f
			}
		},
		func(ctx context.Context) (*stats.Result, error) { return s.simulate(ctx, j) })
}

func (s *Suite) simulate(ctx context.Context, j Job) (*stats.Result, error) {
	if j.Kind == KindCluster && j.Devices <= 1 {
		// A one-card cluster is the plain single-device run: share the
		// equivalent homogeneous/heterogeneous cell instead of simulating
		// the same device twice under a second key.
		if j.Name != "" {
			return s.Run(ctx, Job{Kind: KindHomogeneous, Name: j.Name, Sys: j.Sys})
		}
		return s.Run(ctx, Job{Kind: KindHeterogeneous, Mix: j.Mix, Sys: j.Sys})
	}
	b, err := j.bundle(s.opts())
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case KindSensitivity:
		// The sweep overrides the worker count; everything else matches
		// the conventional baseline. Sensitivity bundles populate nothing,
		// so the cell is a plain image fork + run (the image is shared by
		// every core count of the same serial ratio — the worker count is
		// a run-time knob outside the image's build key).
		cfg := core.DefaultConfig(core.SIMD)
		cfg.Workers = j.Cores
		var d *core.Device
		img, err := s.images.Offloaded(ctx, cfg, b)
		switch {
		case err == nil:
			if d, err = img.Fork(cfg); err != nil {
				return nil, err
			}
		case errors.Is(err, core.ErrUnforkable):
			// Cannot happen for synthesized sensitivity bundles (they
			// populate nothing), but mirror the cluster-layer fallback.
			if d, err = core.New(cfg); err != nil {
				return nil, err
			}
			for _, app := range b.Apps {
				if err := d.OffloadApp(app.Name, app.Tables); err != nil {
					return nil, err
				}
			}
		default:
			return nil, err
		}
		return d.Run(ctx)
	case KindSeries:
		return RunBundleCached(ctx, j.Sys, b, true, s.images)
	case KindCluster:
		// simulate already runs inside a Prewarm worker slot, so the
		// nested card/probe simulations stay sequential: total concurrent
		// device runs never exceed the suite's Workers bound (and -jobs 1
		// stays fully sequential through cluster cells).
		cfg := core.DefaultConfig(j.Sys)
		cfg.Devices = j.Devices
		return cluster.Run(ctx, cfg, b, cluster.Options{Policy: j.Policy, Workers: 1, Images: s.images})
	case KindTopology:
		topo, err := cluster.Preset(j.Topo, j.Devices)
		if err != nil {
			return nil, err
		}
		// Workers: 1 for the same reason as the KindCluster case above.
		cfg := core.DefaultConfig(j.Sys)
		return cluster.Run(ctx, cfg, b, cluster.Options{Policy: j.Policy, Workers: 1, Topology: topo, Images: s.images})
	case KindFault:
		plan, err := s.faultPlan(j.Fault)
		if err != nil {
			return nil, err
		}
		// Workers: 1 for the same reason as the KindCluster case above.
		cfg := core.DefaultConfig(j.Sys)
		cfg.Devices = j.Devices
		return cluster.Run(ctx, cfg, b, cluster.Options{Policy: j.Policy, Workers: 1, Images: s.images, Faults: plan})
	default:
		return RunBundleCached(ctx, j.Sys, b, false, s.images)
	}
}

// Prewarm fills the cache for every listed job through the runner pool,
// at most s.Workers simulations at a time. Jobs already cached (or
// duplicated in the list) cost nothing extra. A failing job does not stop
// the fill — the remaining cells still warm (and the failure stays cached
// for whoever reads that cell) — but cancelling ctx does. The
// lowest-indexed failure is returned.
func (s *Suite) Prewarm(ctx context.Context, jobs []Job) error {
	p := runner.New(s.Workers)
	return p.EachAll(ctx, len(jobs), func(ctx context.Context, i int) error {
		_, err := s.Run(ctx, jobs[i])
		return err
	})
}

// Homogeneous returns (running and caching) the result for one Table 2
// application on one system.
func (s *Suite) Homogeneous(ctx context.Context, name string, sys core.System) (*stats.Result, error) {
	return s.Run(ctx, Job{Kind: KindHomogeneous, Name: name, Sys: sys})
}

// Heterogeneous returns the cached result for mix MXn on one system.
func (s *Suite) Heterogeneous(ctx context.Context, n int, sys core.System) (*stats.Result, error) {
	return s.Run(ctx, Job{Kind: KindHeterogeneous, Mix: n, Sys: sys})
}

// Bigdata returns the cached result for a §5.6 application on one system.
func (s *Suite) Bigdata(ctx context.Context, name string, sys core.System) (*stats.Result, error) {
	return s.Run(ctx, Job{Kind: KindBigdata, Name: name, Sys: sys})
}

// CachedExperimentIDs lists the abacus-repro experiment ids whose device
// runs flow through the Suite cache — the ones Cells enumerates jobs for.
var CachedExperimentIDs = []string{
	"fig3b", "fig3c", "fig3d", "fig3e", "fig10a", "fig10b", "fig11a", "fig11b",
	"fig12", "fig13a", "fig13b", "fig14a", "fig14b", "fig15", "fig16a", "fig16b",
	"cluster", "topology", "faults",
}

// Cluster scaling study shape: representative workloads (a data-intensive
// and a compute-intensive PolyBench application plus one heterogeneous
// mix), the device-count sweep, and the system the cards run.
var (
	ClusterSys          = core.IntraO3
	ClusterApps         = []string{"ATAX", "3MM"}
	ClusterMixes        = []int{1}
	ClusterDeviceCounts = []int{1, 2, 4, 8}
)

// clusterBases returns the workload template jobs of the scaling study, in
// row order.
func clusterBases() []Job {
	var out []Job
	for _, name := range ClusterApps {
		out = append(out, Job{Kind: KindCluster, Name: name, Sys: ClusterSys})
	}
	for _, n := range ClusterMixes {
		out = append(out, Job{Kind: KindCluster, Mix: n, Sys: ClusterSys})
	}
	return out
}

// clusterCells enumerates the scaling cells for the given device counts.
// A one-card cluster is policy-independent (it is the plain single-device
// run), so devices=1 contributes one shared cell per workload instead of
// one per policy.
func clusterCells(counts []int) []Job {
	var out []Job
	for _, base := range clusterBases() {
		for _, d := range counts {
			if d <= 1 {
				j := base
				j.Devices = 1
				out = append(out, j)
				continue
			}
			for _, p := range cluster.Policies {
				j := base
				j.Devices, j.Policy = d, p
				out = append(out, j)
			}
		}
	}
	return out
}

// Heterogeneous-topology sweep shape: every built-in preset (symmetric
// two-switch, per-card skew, two-switch + skew) over a doubling total card
// count, on the representative heterogeneous mix. Both dispatch policies
// run on every shape, so the sweep shows the work-stealing governor
// exploiting capability differences the static rotation cannot.
var (
	TopologyPresets   = cluster.PresetNames
	TopologyCards     = []int{2, 4, 8}
	TopologyMix       = 1
	TopologyUtilCards = 8 // card count the per-switch utilization table reads
)

// topologyCells enumerates the heterogeneous-topology sweep in
// (preset, cards, policy) order — the order the render's rows consume.
func topologyCells() []Job {
	var out []Job
	for _, preset := range TopologyPresets {
		for _, n := range TopologyCards {
			for _, p := range cluster.Policies {
				out = append(out, Job{
					Kind: KindTopology, Mix: TopologyMix, Sys: ClusterSys,
					Topo: preset, Devices: n, Policy: p,
				})
			}
		}
	}
	return out
}

// FaultScenario names one deterministic fault plan the fault-injection
// study dispatches a cluster run under. The name is the cache key and
// the table row label.
type FaultScenario struct {
	Name string
	Plan *faults.Plan
}

// DefaultFaultScenarios returns the built-in study: one scenario per
// faults preset (card death, switch flap+throttle, flash wear).
func DefaultFaultScenarios() []FaultScenario {
	out := make([]FaultScenario, 0, len(faults.PresetNames))
	for _, name := range faults.PresetNames {
		p, err := faults.Preset(name)
		if err != nil { // unreachable: PresetNames enumerates Preset
			panic(err)
		}
		out = append(out, FaultScenario{Name: name, Plan: p})
	}
	return out
}

// Fault-injection study shape: every scenario runs the representative
// heterogeneous mix across FaultDevices cards under both dispatch
// policies, so the study contrasts work-steal re-dispatch against
// round-robin re-sharding under identical injected faults.
var (
	FaultDevices = 4
	FaultMix     = 1
)

// faultDevices is the study's card count under the suite's MaxDevices
// cap, floored at 2: card-death and switch scenarios need a survivor,
// so a -devices 1 run shrinks the study to two cards rather than
// degenerating to a single-card cluster no plan can validate against.
func (s *Suite) faultDevices() int {
	d := FaultDevices
	if s.MaxDevices > 0 && s.MaxDevices < d {
		d = s.MaxDevices
		if d < 2 {
			d = 2
		}
	}
	return d
}

// faultCells enumerates the study in (scenario, policy) order — the
// order the render's rows consume.
func faultCells(scs []FaultScenario, devices int) []Job {
	var out []Job
	for _, sc := range scs {
		for _, p := range cluster.Policies {
			out = append(out, Job{
				Kind: KindFault, Mix: FaultMix, Sys: ClusterSys,
				Fault: sc.Name, Devices: devices, Policy: p,
			})
		}
	}
	return out
}

// deviceCounts is the suite's capped sweep: ClusterDeviceCounts up to
// MaxDevices (0 means uncapped), never empty.
func (s *Suite) deviceCounts() []int {
	if s.MaxDevices <= 0 {
		return ClusterDeviceCounts
	}
	var out []int
	for _, d := range ClusterDeviceCounts {
		if d <= s.MaxDevices {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// sensitivityCells enumerates the Fig. 3 sweep in (cores, ratio) order —
// the order the sweep's points render in.
func sensitivityCells() []Job {
	var out []Job
	for cores := 1; cores <= 8; cores++ {
		for _, pct := range SerialRatios {
			out = append(out, Job{Kind: KindSensitivity, Cores: cores, Pct: pct, Sys: core.SIMD})
		}
	}
	return out
}

// seriesSystems are the Fig. 15 trace systems, in render order.
var seriesSystems = []core.System{core.SIMD, core.IntraO3}

func seriesCells() []Job {
	var out []Job
	for _, sys := range seriesSystems {
		out = append(out, Job{Kind: KindSeries, Mix: 1, Sys: sys})
	}
	return out
}

// Cells enumerates the cached device runs one experiment needs, in the
// order the experiment consumes them. Experiments that do not use the
// cache (t1, t2, mixes) return nil.
func Cells(id string) []Job {
	homogAll := func(names []string, kind Kind) []Job {
		var out []Job
		for _, name := range names {
			for _, sys := range core.Systems {
				out = append(out, Job{Kind: kind, Name: name, Sys: sys})
			}
		}
		return out
	}
	hetAll := func() []Job {
		var out []Job
		for n := 1; n <= workload.MixCount; n++ {
			for _, sys := range core.Systems {
				out = append(out, Job{Kind: KindHeterogeneous, Mix: n, Sys: sys})
			}
		}
		return out
	}
	switch id {
	case "fig3b", "fig3c":
		return sensitivityCells()
	case "fig15":
		return seriesCells()
	case "fig3d", "fig3e":
		var out []Job
		for _, name := range Fig3Apps {
			out = append(out, Job{Kind: KindHomogeneous, Name: name, Sys: core.SIMD})
		}
		return out
	case "fig10a", "fig11a", "fig13a", "fig14a":
		return homogAll(workload.Names(), KindHomogeneous)
	case "fig10b", "fig11b", "fig13b", "fig14b":
		return hetAll()
	case "fig12":
		var out []Job
		for _, sys := range core.Systems {
			out = append(out, Job{Kind: KindHomogeneous, Name: "ATAX", Sys: sys})
		}
		for _, sys := range core.Systems {
			out = append(out, Job{Kind: KindHeterogeneous, Mix: 1, Sys: sys})
		}
		return out
	case "fig16a", "fig16b":
		return homogAll(workload.BigdataNames(), KindBigdata)
	case "cluster":
		return clusterCells(ClusterDeviceCounts)
	case "topology":
		return topologyCells()
	case "faults":
		return faultCells(DefaultFaultScenarios(), FaultDevices)
	}
	return nil
}

// CellsFor enumerates the union of cells the listed experiments need,
// deduplicated, preserving first-appearance order — a deterministic job
// list for Prewarm.
func CellsFor(ids []string) []Job {
	return cellsFor(ids, Cells)
}

// CellsFor is the suite-aware variant of the free function: cluster and
// fault cells honour the suite's MaxDevices cap and fault scenarios, so
// a prewarm warms exactly the cells the suite's renders will read.
func (s *Suite) CellsFor(ids []string) []Job {
	return cellsFor(ids, func(id string) []Job {
		switch id {
		case "cluster":
			return clusterCells(s.deviceCounts())
		case "faults":
			return faultCells(s.faultScenarios(), s.faultDevices())
		}
		return Cells(id)
	})
}

func cellsFor(ids []string, cells func(string) []Job) []Job {
	seen := map[Job]bool{}
	var out []Job
	for _, id := range ids {
		for _, j := range cells(id) {
			if !seen[j] {
				seen[j] = true
				out = append(out, j)
			}
		}
	}
	return out
}

// Table1 renders the hardware specification (Table 1).
func Table1() *report.Table {
	cfg := core.DefaultConfig(core.IntraO3)
	t := &report.Table{Title: "Table 1: hardware specification",
		Header: []string{"component", "specification", "frequency", "power", "est. B/W"}}
	t.Add("LWP", fmt.Sprintf("%d processors", cfg.LWPs), "1GHz",
		fmt.Sprintf("%.1fW/core", cfg.Rates.LWPActive), "16GB/s")
	t.Add("L1/L2 cache", "64KB/512KB", "500MHz", "-", "16GB/s")
	t.Add("Scratchpad", "4MB", "500MHz", "-", "16GB/s")
	t.Add("Memory", "DDR3L, 1GB", "800MHz", fmt.Sprintf("%.1fW", cfg.Rates.DDR3L), "6.4GB/s")
	t.Add("SSD", fmt.Sprintf("%d dies, %s", cfg.Flash.Channels*cfg.Flash.DieRows(),
		units.FormatBytes(cfg.Flash.Capacity())), "200MHz",
		fmt.Sprintf("%.0fW", cfg.Rates.Backbone), "3.2GB/s")
	t.Add("PCIe", "v2.0, 2 lanes", "5GHz", fmt.Sprintf("%.2fW", cfg.Rates.PCIe), "1GB/s")
	t.Add("Tier-1 crossbar", "256 lanes", "500MHz", "-", "16GB/s")
	t.Add("Tier-2 crossbar", "128 lanes", "333MHz", "-", "5.2GB/s")
	return t
}

// Table2 renders the workload characteristics (Table 2).
func Table2() *report.Table {
	t := &report.Table{Title: "Table 2: workload characteristics",
		Header: []string{"name", "description", "MBLKs", "serial", "input(MB)", "LD/ST%", "B/KI", "class"}}
	for _, s := range workload.Specs() {
		class := "compute-intensive"
		if s.DataIntensive() {
			class = "data-intensive"
		}
		t.Add(s.Name, s.Desc, s.MBlocks, s.SerialMB, s.InputMB,
			fmt.Sprintf("%.2f", s.LdStPct), fmt.Sprintf("%.2f", s.BKI), class)
	}
	return t
}

// TableMixes renders the reconstructed MX membership.
func TableMixes() *report.Table {
	t := &report.Table{Title: "Heterogeneous workloads (reconstructed mix table)",
		Header: []string{"mix", "applications"}}
	for n := 1; n <= workload.MixCount; n++ {
		members, _ := workload.MixMembers(n)
		t.Add(fmt.Sprintf("MX%d", n), fmt.Sprint(members))
	}
	return t
}

// SerialRatios are the Fig. 3 sweep points.
var SerialRatios = []int{0, 10, 20, 30, 40, 50}

// Fig3Point is one sensitivity measurement.
type Fig3Point struct {
	Cores      int
	SerialPct  int
	Throughput float64 // GB/s
	Util       float64 // [0,1]
}

// Fig3Sensitivity sweeps cores 1–8 × serial ratio 0–50% on the
// conventional system (Fig. 3b and 3c share these runs). The 48 cells are
// ordinary suite jobs, so they run through a pool of at most workers
// goroutines (0 means GOMAXPROCS); the returned points are ordered by
// (cores, ratio) regardless of completion order.
func Fig3Sensitivity(ctx context.Context, scale int64, workers int) ([]Fig3Point, error) {
	s := NewSuite(scale)
	s.Workers = workers
	return s.Fig3Points(ctx)
}

// Fig3Points returns the suite-cached sensitivity sweep, computing it on
// first request: Fig. 3b and 3c (and racing callers) share one sweep. The
// sweep's device runs are ordinary cells — a Prewarm that included fig3b's
// cells makes this pure assembly.
func (s *Suite) Fig3Points(ctx context.Context) ([]Fig3Point, error) {
	return runner.Await(ctx, &s.mu,
		func() *flight[[]Fig3Point] { return s.fig3 },
		func(f *flight[[]Fig3Point]) { s.fig3 = f },
		func(ctx context.Context) ([]Fig3Point, error) {
			jobs := sensitivityCells()
			if err := s.Prewarm(ctx, jobs); err != nil {
				return nil, err
			}
			nominal, err := workload.SensitivityNominal(s.opts())
			if err != nil {
				return nil, err
			}
			points := make([]Fig3Point, 0, len(jobs))
			for _, j := range jobs {
				res, err := s.Run(ctx, j)
				if err != nil {
					return nil, err
				}
				points = append(points, Fig3Point{
					Cores:      j.Cores,
					SerialPct:  j.Pct,
					Throughput: float64(nominal) / units.Seconds(res.Makespan) / 1e9,
					Util:       res.WorkerUtil,
				})
			}
			return points, nil
		})
}

// Fig3bTable renders throughput vs cores.
func Fig3bTable(points []Fig3Point) *report.Table {
	return fig3Table(points, "Fig 3b: workload throughput (GB/s)", func(p Fig3Point) float64 {
		return p.Throughput
	})
}

// Fig3cTable renders utilization vs cores.
func Fig3cTable(points []Fig3Point) *report.Table {
	return fig3Table(points, "Fig 3c: core utilization (%)", func(p Fig3Point) float64 {
		return p.Util * 100
	})
}

func fig3Table(points []Fig3Point, title string, val func(Fig3Point) float64) *report.Table {
	t := &report.Table{Title: title, Header: []string{"cores"}}
	for _, r := range SerialRatios {
		t.Header = append(t.Header, fmt.Sprintf("serial %d%%", r))
	}
	for cores := 1; cores <= 8; cores++ {
		row := []interface{}{cores}
		for _, r := range SerialRatios {
			for _, p := range points {
				if p.Cores == cores && p.SerialPct == r {
					row = append(row, val(p))
				}
			}
		}
		t.Add(row...)
	}
	return t
}

// Fig3Apps are the applications the Fig. 3d/3e breakdowns plot.
var Fig3Apps = []string{"ATAX", "BICG", "2DCON", "MVT", "SYRK", "3MM", "GESUM", "ADI", "COVAR", "FDTD"}

// Fig3d renders the SIMD-system execution-time decomposition.
func (s *Suite) Fig3d(ctx context.Context) (*report.Table, error) {
	t := &report.Table{Title: "Fig 3d: execution time breakdown (SIMD system)",
		Header: []string{"app", "accelerator", "SSD", "host storage stack"}}
	for _, name := range Fig3Apps {
		r, err := s.Homogeneous(ctx, name, core.SIMD)
		if err != nil {
			return nil, err
		}
		a, ssd, stack := r.BreakdownFracs()
		t.Add(name, a, ssd, stack)
	}
	return t, nil
}

// Fig3e renders the SIMD-system energy decomposition.
func (s *Suite) Fig3e(ctx context.Context) (*report.Table, error) {
	t := &report.Table{Title: "Fig 3e: energy breakdown (SIMD system)",
		Header: []string{"app", "accelerator", "SSD+stack (storage)", "data movement"}}
	for _, name := range Fig3Apps {
		r, err := s.Homogeneous(ctx, name, core.SIMD)
		if err != nil {
			return nil, err
		}
		t.Add(name, r.Energy.Frac(power.Compute), r.Energy.Frac(power.Storage), r.Energy.Frac(power.DataMove))
	}
	return t, nil
}

// Fig10a renders homogeneous throughput for all five systems.
func (s *Suite) Fig10a(ctx context.Context) (*report.Table, error) {
	t := &report.Table{Title: "Fig 10a: homogeneous throughput (MB/s)",
		Header: append([]string{"app"}, systemNames()...)}
	for _, name := range workload.Names() {
		row := []interface{}{name}
		for _, sys := range core.Systems {
			r, err := s.Homogeneous(ctx, name, sys)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", r.ThroughputMBps()))
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig10b renders heterogeneous throughput for all five systems.
func (s *Suite) Fig10b(ctx context.Context) (*report.Table, error) {
	t := &report.Table{Title: "Fig 10b: heterogeneous throughput (MB/s)",
		Header: append([]string{"mix"}, systemNames()...)}
	for n := 1; n <= workload.MixCount; n++ {
		row := []interface{}{fmt.Sprintf("MX%d", n)}
		for _, sys := range core.Systems {
			r, err := s.Heterogeneous(ctx, n, sys)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", r.ThroughputMBps()))
		}
		t.Add(row...)
	}
	return t, nil
}

// latTable renders Fig. 11's min/avg/max latencies normalized to SIMD.
func (s *Suite) latTable(title string, names []string,
	get func(string, core.System) (*stats.Result, error)) (*report.Table, error) {
	t := &report.Table{Title: title,
		Header: []string{"workload", "system", "min", "avg", "max"}}
	for _, name := range names {
		base, err := get(name, core.SIMD)
		if err != nil {
			return nil, err
		}
		bmin, bavg, bmax := base.LatencyStats()
		for _, sys := range core.Systems {
			r, err := get(name, sys)
			if err != nil {
				return nil, err
			}
			mn, av, mx := r.LatencyStats()
			t.Add(name, sys.String(), norm(mn, bmin), norm(av, bavg), norm(mx, bmax))
		}
	}
	return t, nil
}

func norm(v, base units.Duration) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(v)/float64(base))
}

// mixNames returns "MX1".."MX14" for the heterogeneous figure rows.
func mixNames() []string {
	names := make([]string, workload.MixCount)
	for i := range names {
		names[i] = fmt.Sprintf("MX%d", i+1)
	}
	return names
}

// getHomog adapts Homogeneous to the by-name getters the shared table
// renderers take; getHet does the same for the MXn rows.
func (s *Suite) getHomog(ctx context.Context) func(string, core.System) (*stats.Result, error) {
	return func(name string, sys core.System) (*stats.Result, error) {
		return s.Homogeneous(ctx, name, sys)
	}
}

func (s *Suite) getHet(ctx context.Context) func(string, core.System) (*stats.Result, error) {
	return func(name string, sys core.System) (*stats.Result, error) {
		var n int
		fmt.Sscanf(name, "MX%d", &n)
		return s.Heterogeneous(ctx, n, sys)
	}
}

// Fig11a renders homogeneous latency normalized to SIMD.
func (s *Suite) Fig11a(ctx context.Context) (*report.Table, error) {
	return s.latTable("Fig 11a: homogeneous latency (normalized to SIMD)", workload.Names(), s.getHomog(ctx))
}

// Fig11b renders heterogeneous latency normalized to SIMD.
func (s *Suite) Fig11b(ctx context.Context) (*report.Table, error) {
	return s.latTable("Fig 11b: heterogeneous latency (normalized to SIMD)", mixNames(), s.getHet(ctx))
}

// Fig12 renders the kernel-completion CDFs for ATAX and MX1.
func (s *Suite) Fig12(ctx context.Context) (*report.Table, error) {
	t := &report.Table{Title: "Fig 12: kernel completion CDF (ATAX and MX1)",
		Header: []string{"workload", "system", "completions (time ms : count)"}}
	for _, sys := range core.Systems {
		r, err := s.Homogeneous(ctx, "ATAX", sys)
		if err != nil {
			return nil, err
		}
		t.Add("ATAX", sys.String(), cdfString(r))
	}
	for _, sys := range core.Systems {
		r, err := s.Heterogeneous(ctx, 1, sys)
		if err != nil {
			return nil, err
		}
		t.Add("MX1", sys.String(), cdfString(r))
	}
	return t, nil
}

func cdfString(r *stats.Result) string {
	out := ""
	for _, p := range r.CDF() {
		out += fmt.Sprintf("%.1f:%d ", float64(p.Time)/1e6, p.Completed)
	}
	return out
}

// energyTable renders Fig. 13's decomposition normalized to SIMD total.
func (s *Suite) energyTable(title string, names []string,
	get func(string, core.System) (*stats.Result, error)) (*report.Table, error) {
	t := &report.Table{Title: title,
		Header: []string{"workload", "system", "data movement", "computation", "storage access", "total"}}
	for _, name := range names {
		base, err := get(name, core.SIMD)
		if err != nil {
			return nil, err
		}
		bt := base.Energy.Total()
		for _, sys := range core.Systems {
			r, err := get(name, sys)
			if err != nil {
				return nil, err
			}
			e := r.Energy
			t.Add(name, sys.String(),
				e[power.DataMove]/bt, e[power.Compute]/bt, e[power.Storage]/bt, e.Total()/bt)
		}
	}
	return t, nil
}

// Fig13a renders homogeneous energy decomposition.
func (s *Suite) Fig13a(ctx context.Context) (*report.Table, error) {
	return s.energyTable("Fig 13a: homogeneous energy (normalized to SIMD)", workload.Names(), s.getHomog(ctx))
}

// Fig13b renders heterogeneous energy decomposition.
func (s *Suite) Fig13b(ctx context.Context) (*report.Table, error) {
	return s.energyTable("Fig 13b: heterogeneous energy (normalized to SIMD)", mixNames(), s.getHet(ctx))
}

// utilTable renders Fig. 14's processor utilizations.
func (s *Suite) utilTable(title string, names []string,
	get func(string, core.System) (*stats.Result, error)) (*report.Table, error) {
	t := &report.Table{Title: title, Header: append([]string{"workload"}, systemNames()...)}
	for _, name := range names {
		row := []interface{}{name}
		for _, sys := range core.Systems {
			r, err := get(name, sys)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", r.WorkerUtil*100))
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig14a renders homogeneous LWP utilization.
func (s *Suite) Fig14a(ctx context.Context) (*report.Table, error) {
	return s.utilTable("Fig 14a: homogeneous LWP utilization (%)", workload.Names(), s.getHomog(ctx))
}

// Fig14b renders heterogeneous LWP utilization.
func (s *Suite) Fig14b(ctx context.Context) (*report.Table, error) {
	return s.utilTable("Fig 14b: heterogeneous LWP utilization (%)", mixNames(), s.getHet(ctx))
}

// Fig15 runs MX1 with time-series collection on SIMD and IntraO3 and
// returns the FU-utilization and power traces. The two series runs are
// ordinary cells (KindSeries), single-flight cached like every other cell,
// so racing callers share one computation and a prewarmed suite renders
// this figure without simulating.
func (s *Suite) Fig15(ctx context.Context) (map[string]*stats.Result, error) {
	return runner.Await(ctx, &s.mu,
		func() *flight[map[string]*stats.Result] { return s.fig15 },
		func(f *flight[map[string]*stats.Result]) { s.fig15 = f },
		func(ctx context.Context) (map[string]*stats.Result, error) {
			jobs := seriesCells()
			if err := s.Prewarm(ctx, jobs); err != nil {
				return nil, err
			}
			out := map[string]*stats.Result{}
			for _, j := range jobs {
				res, err := s.Run(ctx, j)
				if err != nil {
					return nil, err
				}
				out[j.Sys.String()] = res
			}
			return out, nil
		})
}

// Fig16a renders graph/bigdata throughput.
func (s *Suite) Fig16a(ctx context.Context) (*report.Table, error) {
	t := &report.Table{Title: "Fig 16a: graph/bigdata throughput (MB/s)",
		Header: append([]string{"app"}, systemNames()...)}
	for _, name := range workload.BigdataNames() {
		row := []interface{}{name}
		for _, sys := range core.Systems {
			r, err := s.Bigdata(ctx, name, sys)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", r.ThroughputMBps()))
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig16b renders graph/bigdata energy decomposition normalized to SIMD.
func (s *Suite) Fig16b(ctx context.Context) (*report.Table, error) {
	return s.energyTable("Fig 16b: graph/bigdata energy (normalized to SIMD)",
		workload.BigdataNames(),
		func(name string, sys core.System) (*stats.Result, error) {
			return s.Bigdata(ctx, name, sys)
		})
}

// clusterPolicyName spells a dispatch policy for table rows.
func clusterPolicyName(p cluster.Policy) string {
	switch p {
	case cluster.RoundRobin:
		return "round-robin"
	case cluster.WorkSteal:
		return "work-steal"
	default:
		return p.String()
	}
}

// Cluster renders the scaling study: aggregate throughput and total energy
// versus device count for the representative workloads, one row per
// (workload, dispatch policy). The cells are ordinary suite jobs, so a
// prewarm that included the cluster experiment makes this pure assembly.
func (s *Suite) Cluster(ctx context.Context) (string, error) {
	counts := s.deviceCounts()
	hdr := []string{"workload", "policy"}
	for _, d := range counts {
		hdr = append(hdr, fmt.Sprintf("%d dev", d))
	}
	tput := &report.Table{
		Title:  fmt.Sprintf("Cluster scaling: aggregate throughput (MB/s, %s)", ClusterSys),
		Header: hdr,
	}
	energy := &report.Table{
		Title:  fmt.Sprintf("Cluster scaling: total energy (J, %s)", ClusterSys),
		Header: hdr,
	}
	for _, base := range clusterBases() {
		for _, p := range cluster.Policies {
			rowT := []interface{}{base.workloadName(), clusterPolicyName(p)}
			rowE := []interface{}{base.workloadName(), clusterPolicyName(p)}
			for _, d := range counts {
				j := base
				j.Devices = d
				if d > 1 {
					j.Policy = p
				}
				r, err := s.Run(ctx, j)
				if err != nil {
					return "", err
				}
				rowT = append(rowT, fmt.Sprintf("%.1f", r.ThroughputMBps()))
				rowE = append(rowE, fmt.Sprintf("%.2f", r.Energy.Total()))
			}
			tput.Add(rowT...)
			energy.Add(rowE...)
		}
	}
	return tput.String() + "\n" + energy.String() + "\n", nil
}

// Topology renders the heterogeneous-topology sweep: aggregate throughput
// versus total card count for every preset shape and policy, plus the
// per-switch utilization split at the widest shape — where a congested or
// under-provisioned switch shows up as a utilization gap against its
// sibling. The cells are ordinary suite jobs, so a prewarm that included
// the topology experiment makes this pure assembly.
func (s *Suite) Topology(ctx context.Context) (string, error) {
	hdr := []string{"topology", "policy"}
	for _, n := range TopologyCards {
		hdr = append(hdr, fmt.Sprintf("%d cards", n))
	}
	tput := &report.Table{
		Title:  fmt.Sprintf("Topology scaling: aggregate throughput (MB/s, MX%d on %s)", TopologyMix, ClusterSys),
		Header: hdr,
	}
	util := &report.Table{
		Title:  fmt.Sprintf("Topology per-switch utilization (%%, %d cards)", TopologyUtilCards),
		Header: []string{"topology", "policy", "switch", "cards", "util"},
	}
	for _, preset := range TopologyPresets {
		for _, p := range cluster.Policies {
			row := []interface{}{preset, clusterPolicyName(p)}
			for _, n := range TopologyCards {
				r, err := s.Run(ctx, Job{
					Kind: KindTopology, Mix: TopologyMix, Sys: ClusterSys,
					Topo: preset, Devices: n, Policy: p,
				})
				if err != nil {
					return "", err
				}
				row = append(row, fmt.Sprintf("%.1f", r.ThroughputMBps()))
				if n == TopologyUtilCards {
					for _, su := range r.SwitchUtils {
						util.Add(preset, clusterPolicyName(p), su.Switch, su.Cards,
							fmt.Sprintf("%.1f", su.Util*100))
					}
				}
			}
			tput.Add(row...)
		}
	}
	return tput.String() + "\n" + util.String() + "\n", nil
}

// Faults renders the fault-injection study: for every scenario and
// dispatch policy, the degraded cluster outcome (throughput, makespan,
// work lost and redone, recovery latency, injected flash retries),
// followed by the per-fault accounting records the dispatcher charged.
// The cells are ordinary suite jobs, so a prewarm that included the
// faults experiment makes this pure assembly.
func (s *Suite) Faults(ctx context.Context) (string, error) {
	devices := s.faultDevices()
	summary := &report.Table{
		Title: fmt.Sprintf("Fault injection: degraded-mode outcomes (MX%d @ %d cards, %s)",
			FaultMix, devices, ClusterSys),
		Header: []string{"scenario", "policy", "MB/s", "makespan", "lost", "redone", "recovery", "retries"},
	}
	detail := &report.Table{
		Title:  "Fault injection: per-fault accounting",
		Header: []string{"scenario", "policy", "fault", "target", "at", "detect", "recovery", "lost", "redone", "window MB/s"},
	}
	for _, sc := range s.faultScenarios() {
		for _, p := range cluster.Policies {
			r, err := s.Run(ctx, Job{
				Kind: KindFault, Mix: FaultMix, Sys: ClusterSys,
				Fault: sc.Name, Devices: devices, Policy: p,
			})
			if err != nil {
				return "", err
			}
			var lost, recov units.Duration
			var redone int
			for _, f := range r.Faults {
				lost += f.Lost
				redone += f.Redone
				if f.Recovery > recov {
					recov = f.Recovery
				}
			}
			summary.Add(sc.Name, clusterPolicyName(p),
				fmt.Sprintf("%.1f", r.ThroughputMBps()), units.FormatDuration(r.Makespan),
				units.FormatDuration(lost), redone, units.FormatDuration(recov), r.FlashRetries)
			for _, f := range r.Faults {
				win := "-"
				if f.DegradedTput > 0 {
					win = fmt.Sprintf("%.1f", f.DegradedTput)
				}
				detail.Add(sc.Name, clusterPolicyName(p), f.Kind, f.Target,
					units.FormatDuration(f.At), units.FormatDuration(f.Detect),
					units.FormatDuration(f.Recovery), units.FormatDuration(f.Lost),
					f.Redone, win)
			}
		}
	}
	return summary.String() + "\n" + detail.String() + "\n", nil
}

func systemNames() []string {
	out := make([]string, len(core.Systems))
	for i, sys := range core.Systems {
		out[i] = sys.String()
	}
	return out
}
