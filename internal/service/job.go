// Job requests, validation, and the per-job state machine.
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
)

// JobRequest is the submit body: which experiment to render and the
// knobs the CLI exposes as flags. The zero value of every optional
// field selects the CLI's default, so {"experiment":"fig10a"} is a
// complete request.
type JobRequest struct {
	// Experiment is an experiment id (see /v1/experiments) or "all".
	// Empty selects "all".
	Experiment string `json:"experiment,omitempty"`
	// Scale divides the paper's Table 2 input sizes (1 = paper scale).
	// 0 selects the CLI default of 16.
	Scale int64 `json:"scale,omitempty"`
	// Devices caps the cluster scaling experiment's card sweep; at the
	// default 1 the cluster experiment is left out of "all".
	Devices int `json:"devices,omitempty"`
	// Topology opts the heterogeneous-topology sweep into "all".
	Topology bool `json:"topology,omitempty"`
	// FaultPlan opts the fault-injection study into "all": a preset name
	// (cardloss, flap, wear) or an inline fault-plan text (the same
	// line-based grammar the CLI loads from a file).
	FaultPlan string `json:"fault_plan,omitempty"`
	// FaultName labels an inline FaultPlan's rows (presets are labelled
	// by their own name). Defaults to "custom".
	FaultName string `json:"fault_name,omitempty"`
	// TimeoutMS bounds the job's execution (dispatch to completion) in
	// milliseconds; the context deadline propagates through every
	// simulation leaf. 0 selects the server default; values above the
	// server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Client identifies the submitter for per-client fairness. Empty
	// falls back to the X-Abacus-Client header, then to the remote host.
	Client string `json:"client,omitempty"`
	// DedupeKey makes the submit idempotent: a resubmit naming the same
	// key returns the already-accepted job (200) instead of running the
	// work twice. Keys are journaled with the job, so idempotency
	// survives a daemon crash: a client that lost the response to an
	// accepted submit can safely resend after the restart.
	DedupeKey string `json:"dedupe_key,omitempty"`
}

// maxRequestBytes bounds a submit body; inline fault plans are a few
// hundred bytes, so a megabyte is generous.
const maxRequestBytes = 1 << 20

// maxScale bounds the scale knob: divisors past 2^20 all floor the
// inputs to their minimum sizes anyway.
const maxScale = 1 << 20

// nameRE constrains client ids and fault names: they appear in rendered
// rows, metric labels, and log lines, so keep them printable and short.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9._:-]{1,64}$`)

// dedupeRE constrains dedupe keys; clients typically use UUIDs or
// hashes, so allow more length than display names get.
var dedupeRE = regexp.MustCompile(`^[A-Za-z0-9._:-]{1,128}$`)

// DecodeJobRequest reads and strictly decodes one JSON job request:
// unknown fields, trailing garbage, and oversized bodies are errors, so
// a typo'd knob is a 400 instead of a silently ignored field.
func DecodeJobRequest(r io.Reader) (*JobRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decode job request: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("decode job request: trailing data after JSON object")
	}
	return &req, nil
}

// Normalize validates req in place, filling defaults (experiment "all",
// scale 16, devices 1) and resolving the fault plan. It returns the
// parsed plan (nil when no fault study was requested) or an error
// describing the first invalid field.
func (req *JobRequest) Normalize() (*faults.Plan, error) {
	if req.Experiment == "" {
		req.Experiment = "all"
	}
	if _, err := experiments.Select(req.Experiment, 1, false, false); err != nil && req.Experiment != "all" {
		return nil, err
	}
	if req.Scale == 0 {
		req.Scale = 16
	}
	if req.Scale < 1 || req.Scale > maxScale {
		return nil, fmt.Errorf("scale %d outside [1,%d]", req.Scale, maxScale)
	}
	if req.Devices == 0 {
		req.Devices = 1
	}
	if req.Devices < 1 || req.Devices > core.MaxDevices {
		return nil, fmt.Errorf("devices %d outside [1,%d]", req.Devices, core.MaxDevices)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms %d is negative", req.TimeoutMS)
	}
	if req.Client != "" && !nameRE.MatchString(req.Client) {
		return nil, fmt.Errorf("client %q must match %s", req.Client, nameRE)
	}
	if req.DedupeKey != "" && !dedupeRE.MatchString(req.DedupeKey) {
		return nil, fmt.Errorf("dedupe_key %q must match %s", req.DedupeKey, dedupeRE)
	}
	if req.FaultName != "" && !nameRE.MatchString(req.FaultName) {
		return nil, fmt.Errorf("fault_name %q must match %s", req.FaultName, nameRE)
	}
	if req.FaultPlan == "" {
		if req.FaultName != "" {
			return nil, fmt.Errorf("fault_name without fault_plan")
		}
		return nil, nil
	}
	plan, name, err := resolveFaultPlan(req.FaultPlan)
	if err != nil {
		return nil, err
	}
	if req.FaultName == "" {
		req.FaultName = name
	}
	return plan, nil
}

// resolveFaultPlan turns the fault_plan field into a plan: a preset
// name resolves to its built-in plan (and labels the rows after
// itself), anything else parses as inline plan text labelled "custom"
// unless the request names it.
func resolveFaultPlan(arg string) (*faults.Plan, string, error) {
	if !strings.ContainsAny(arg, "\n ") {
		if p, err := faults.Preset(arg); err == nil {
			return p, arg, nil
		}
	}
	p, err := faults.Parse([]byte(arg))
	if err != nil {
		return nil, "", fmt.Errorf("fault_plan: not a preset (%s) and %v",
			strings.Join(faults.PresetNames, ", "), err)
	}
	return p, "custom", nil
}

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is the wire representation of a job's current state.
type JobStatus struct {
	ID         string   `json:"id"`
	Client     string   `json:"client"`
	Experiment string   `json:"experiment"`
	Scale      int64    `json:"scale"`
	Devices    int      `json:"devices"`
	State      JobState `json:"state"`
	// Seq is the dispatch sequence number (1-based, assigned when a
	// worker picks the job up); 0 means the job never ran. The fairness
	// tests read it, and it gives operators a total dispatch order.
	Seq int64 `json:"seq,omitempty"`
	// Bytes counts result bytes produced so far; it grows while the job
	// streams and is final once the state is terminal.
	Bytes int    `json:"bytes"`
	Error string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// job is the server-side state of one submitted job. Every mutable
// field is guarded by mu; cond broadcasts on output growth and state
// changes, which is what the streaming and long-poll handlers wait on.
type job struct {
	id        string
	client    string
	req       JobRequest
	plan      *faults.Plan // resolved fault plan (nil: none)
	timeout   time.Duration
	submitted time.Time

	mu        sync.Mutex
	cond      *sync.Cond
	state     JobState
	seq       int64
	out       []byte
	errMsg    string
	started   time.Time
	finished  time.Time
	cancelled bool          // cancel requested (before or during run)
	cancelRun func()        // cancels the running render's context
	done      chan struct{} // closed when the state turns terminal
}

func newJob(id, client string, req JobRequest, plan *faults.Plan, timeout time.Duration, now time.Time) *job {
	j := &job{
		id: id, client: client, req: req, plan: plan,
		timeout: timeout, submitted: now,
		state: StateQueued, done: make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Write appends rendered output; the job is handed to Suite.Render as
// its io.Writer, so bytes become visible to streaming readers exactly
// as the render produces them.
func (j *job) Write(p []byte) (int, error) {
	j.mu.Lock()
	if j.state.terminal() {
		// A watchdog-abandoned render keeps producing bytes after the job
		// was failed; drop them so a terminal byte count — and with it the
		// stream handler's "last chunk" detection — stays final.
		j.mu.Unlock()
		return len(p), nil
	}
	j.out = append(j.out, p...)
	j.cond.Broadcast()
	j.mu.Unlock()
	return len(p), nil
}

// status snapshots the job for the wire.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Client: j.client,
		Experiment: j.req.Experiment, Scale: j.req.Scale, Devices: j.req.Devices,
		State: j.state, Seq: j.seq, Bytes: len(j.out), Error: j.errMsg,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// finalize moves the job to a terminal state exactly once; later calls
// are no-ops (a cancel can race completion).
func (j *job) finalize(state JobState, errMsg string, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = now
	close(j.done)
	j.cond.Broadcast()
	return true
}
