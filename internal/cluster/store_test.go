package cluster

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/imagestore"
)

// TestImageCacheStoreLevel drives the two-process story on one MemStore: a
// first cache builds and fills the store, a second (fresh, simulating a new
// process) satisfies the same requests by decoding — no builds — and the
// decoded images are deep-equal to the built ones.
func TestImageCacheStoreLevel(t *testing.T) {
	ctx := context.Background()
	b := testBundle(t, 4096)
	cfg := core.DefaultConfig(core.IntraO3)
	st := imagestore.NewMemStore()

	warm := NewImageCache()
	warm.SetStore(st)
	built, err := warm.Offloaded(ctx, cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	warm.FlushStore()
	ws := warm.Stats()
	if ws.StoreHits != 0 || ws.StoreMisses == 0 || ws.StorePuts == 0 || ws.StoreErrors != 0 {
		t.Fatalf("cold-process stats off: %+v", ws)
	}
	// Offloaded builds via Populated, so both stages must have been filled.
	if st.Len() != 2 {
		t.Fatalf("store holds %d blobs, want 2 (populated + offloaded)", st.Len())
	}

	fresh := NewImageCache()
	fresh.SetStore(st)
	loaded, err := fresh.Offloaded(ctx, cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	fs := fresh.Stats()
	if fs.StoreHits == 0 || fs.StoreMisses != 0 || fs.StoreErrors != 0 {
		t.Fatalf("warm-process stats off: %+v", fs)
	}
	wantData, err := built.Data()
	if err != nil {
		t.Fatal(err)
	}
	gotData, err := loaded.Data()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotData, wantData) {
		t.Fatal("store-loaded image differs from built image")
	}
}

// corruptingStore flips a bit in everything it serves, simulating bit rot
// underneath an otherwise well-behaved store.
type corruptingStore struct {
	inner imagestore.Store
}

func (s corruptingStore) Get(key string) ([]byte, error) {
	blob, err := s.inner.Get(key)
	if err != nil {
		return nil, err
	}
	c := append([]byte(nil), blob...)
	if len(c) > 0 {
		c[len(c)/2] ^= 0x40
	}
	return c, nil
}

func (s corruptingStore) Put(key string, blob []byte) error { return s.inner.Put(key, blob) }

// TestCorruptStoreFallsBack: every Get returns rotted bytes, so decodes
// fail — the cache must rebuild silently and produce run output identical
// to a no-store run.
func TestCorruptStoreFallsBack(t *testing.T) {
	ctx := context.Background()
	b := testBundle(t, 4096)
	cfg := core.DefaultConfig(core.IntraO3)

	// Fill a store, then serve it through the corrupting wrapper.
	mem := imagestore.NewMemStore()
	filler := NewImageCache()
	filler.SetStore(mem)
	if _, err := filler.Offloaded(ctx, cfg, b); err != nil {
		t.Fatal(err)
	}
	filler.FlushStore()

	c := NewImageCache()
	c.SetStore(corruptingStore{inner: mem})
	got, err := RunSingleCached(ctx, cfg, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.StoreErrors == 0 || s.StoreHits != 0 {
		t.Fatalf("corrupt store was not detected: %+v", s)
	}
	want, err := RunSingleCached(ctx, cfg, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("run over corrupt store differs from uncached run")
	}
}

// TestEvictionSkipsInFlight pins the eviction fix: capacity pressure must
// never evict a flight that is still computing — its waiters would be
// orphaned and a new requester would duplicate the build — even if that
// means transiently exceeding the bound.
func TestEvictionSkipsInFlight(t *testing.T) {
	var mu sync.Mutex
	bc := &boundedCache[int, int]{}
	ctx := context.Background()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := bc.await(ctx, &mu, 1, 1, func(context.Context) (int, error) {
			close(started)
			<-release
			return 100, nil
		})
		done <- err
	}()
	<-started

	// A second key at limit 1: the oldest entry is in flight, so it must
	// survive and the cache must run over its bound instead.
	if _, err := bc.await(ctx, &mu, 2, 1, func(context.Context) (int, error) { return 200, nil }); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	_, kept := bc.entries[1]
	size, evictions := len(bc.entries), bc.evictions
	mu.Unlock()
	if !kept {
		t.Fatal("in-flight entry was evicted")
	}
	if size != 2 || evictions != 0 {
		t.Fatalf("size %d evictions %d, want 2 and 0 (bound exceeded, nothing dropped)", size, evictions)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The survivor serves its waiters from cache.
	v, err := bc.await(ctx, &mu, 1, 1, func(context.Context) (int, error) {
		t.Error("recompute after spurious eviction")
		return -1, nil
	})
	if err != nil || v != 100 {
		t.Fatalf("await(1) = %d, %v; want 100", v, err)
	}
	// With every flight settled, the next insertion restores the bound.
	if _, err := bc.await(ctx, &mu, 3, 1, func(context.Context) (int, error) { return 300, nil }); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	size, evictions = len(bc.entries), bc.evictions
	mu.Unlock()
	if size != 1 || evictions != 2 {
		t.Fatalf("size %d evictions %d after settle, want 1 and 2", size, evictions)
	}
}

// TestCacheStatsCounters pins the memory-level hit/miss accounting.
func TestCacheStatsCounters(t *testing.T) {
	ctx := context.Background()
	b := testBundle(t, 4096)
	cfg := core.DefaultConfig(core.IntraO3)
	c := NewImageCache()
	if _, err := c.Populated(ctx, cfg, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Populated(ctx, cfg, b); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.ImageMisses != 1 || s.ImageHits != 3 {
		t.Fatalf("stats %+v, want 1 miss and 3 hits", s)
	}
	var nilCache *ImageCache
	if nilCache.Stats() != (CacheStats{}) {
		t.Fatal("nil cache stats not zero")
	}
	nilCache.FlushStore() // must not panic
}

// brokenStore fails every round-trip with a transport error (not
// ErrNotFound), simulating a store whose backing device has gone away.
// It counts calls so degradation is observable as silence.
type brokenStore struct {
	mu    sync.Mutex
	calls int
}

func (s *brokenStore) bump() error {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return errors.New("backing device gone")
}

func (s *brokenStore) Get(key string) ([]byte, error)    { return nil, s.bump() }
func (s *brokenStore) Put(key string, blob []byte) error { return s.bump() }

func (s *brokenStore) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// TestStoreDegradesToCacheOnly: a store failing every I/O must be demoted
// after storeFailLimit consecutive failures — later requests run
// memory-only (no store calls at all) and still succeed.
func TestStoreDegradesToCacheOnly(t *testing.T) {
	ctx := context.Background()
	cfg := core.DefaultConfig(core.IntraO3)
	st := &brokenStore{}
	c := NewImageCache()
	c.SetStore(st)

	// Distinct keys, so each miss is a fresh store round-trip. Every Get
	// fails and every async fill's Put fails, so the failure budget drains
	// within the first few requests.
	for i := 0; i < storeFailLimit+2; i++ {
		if _, err := c.Populated(ctx, cfg, testBundle(t, int64(4096<<i))); err != nil {
			t.Fatal(err)
		}
	}
	c.FlushStore()
	s := c.Stats()
	if !s.StoreDegraded {
		t.Fatalf("store not degraded after %d failing requests: %+v", storeFailLimit+2, s)
	}
	if s.StoreErrors < storeFailLimit {
		t.Fatalf("StoreErrors = %d, want >= %d", s.StoreErrors, storeFailLimit)
	}

	// Once demoted, the store must not be consulted again.
	before := st.count()
	if _, err := c.Populated(ctx, cfg, testBundle(t, 4096<<6)); err != nil {
		t.Fatal(err)
	}
	c.FlushStore()
	if after := st.count(); after != before {
		t.Fatalf("degraded cache still called the store: %d -> %d calls", before, after)
	}

	// Re-attaching a (repaired) store clears the demotion.
	c.SetStore(imagestore.NewMemStore())
	if s := c.Stats(); s.StoreDegraded {
		t.Fatal("SetStore did not clear the degradation")
	}
	if _, err := c.Populated(ctx, cfg, testBundle(t, 4096<<7)); err != nil {
		t.Fatal(err)
	}
	c.FlushStore()
	if s := c.Stats(); s.StorePuts == 0 {
		t.Fatalf("repaired store received no fills: %+v", s)
	}
}

// blockingStore parks every Put until released, simulating slow store
// I/O still in flight when a run is cancelled.
type blockingStore struct {
	inner   imagestore.Store
	started chan struct{}
	release chan struct{}
}

func (s *blockingStore) Get(key string) ([]byte, error) { return s.inner.Get(key) }

func (s *blockingStore) Put(key string, blob []byte) error {
	s.started <- struct{}{}
	<-s.release
	return s.inner.Put(key, blob)
}

// TestFlushStoreDrainsCancelledRun: cancelling the run's context must not
// abandon in-flight async store fills — FlushStore still blocks until
// every fill lands, and the fills are accounted, so no goroutine outlives
// the flush and no image is silently dropped on the floor.
func TestFlushStoreDrainsCancelledRun(t *testing.T) {
	mem := imagestore.NewMemStore()
	st := &blockingStore{inner: mem, started: make(chan struct{}, 4), release: make(chan struct{})}
	c := NewImageCache()
	c.SetStore(st)

	ctx, cancel := context.WithCancel(context.Background())
	b := testBundle(t, 4096)
	cfg := core.DefaultConfig(core.IntraO3)
	if _, err := c.Populated(ctx, cfg, b); err != nil {
		t.Fatal(err)
	}
	<-st.started // the async fill is in flight
	cancel()     // the run is over; the fill must not be orphaned

	flushed := make(chan struct{})
	go func() {
		c.FlushStore()
		close(flushed)
	}()
	select {
	case <-flushed:
		t.Fatal("FlushStore returned while a fill was still blocked")
	case <-time.After(20 * time.Millisecond):
	}

	close(st.release)
	select {
	case <-flushed:
	case <-time.After(5 * time.Second):
		t.Fatal("FlushStore did not drain the cancelled run's fill")
	}
	if s := c.Stats(); s.StorePuts != 1 || mem.Len() != 1 {
		t.Fatalf("fill did not land: %+v, store holds %d blobs", s, mem.Len())
	}
}
