// Package lwp models the lightweight VLIW processors of the prototype
// (paper §2.2): eight cores at 1 GHz, each with eight functional units
// (2 multipliers, 4 general-purpose ALUs, 2 load/store units), private
// 64 KB L1 and 512 KB L2 caches, a power/sleep controller (PSC), and the
// boot-address/inter-processor-interrupt registers Flashvisor uses to
// launch kernels (paper §4 "Execution").
package lwp

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// Mix is an instruction mix: fractions of multiply and load/store
// instructions; the remainder issues on the general-purpose ALUs.
type Mix struct {
	Mul  float64
	LdSt float64
}

// Validate reports whether the mix fractions are sane.
func (m Mix) Validate() error {
	if m.Mul < 0 || m.LdSt < 0 || m.Mul+m.LdSt > 1 {
		return fmt.Errorf("lwp: invalid instruction mix %+v", m)
	}
	return nil
}

// ALU returns the general-purpose fraction.
func (m Mix) ALU() float64 { return 1 - m.Mul - m.LdSt }

// CostModel converts instruction counts into cycles for one LWP. VLIW
// scheduling is static, so the bound is structural: the packing of each
// instruction class onto its functional units, plus a base CPI factor for
// compiler slack and a cache-miss stall term.
type CostModel struct {
	MulUnits  int   // 2
	ALUUnits  int   // 4
	LdStUnits int   // 2
	FreqHz    int64 // 1e9

	// CPIBase scales the structural bound for pipeline and scheduling
	// slack a real compiler leaves on the table (1.0 = perfect packing).
	CPIBase float64
	// MissRate is the fraction of load/store instructions that miss L2;
	// MissPenalty is the DDR3L round trip in cycles.
	MissRate    float64
	MissPenalty int64
}

// DefaultCostModel returns the TMS320C6678-like model used throughout.
func DefaultCostModel() CostModel {
	return CostModel{
		MulUnits:    2,
		ALUUnits:    4,
		LdStUnits:   2,
		FreqHz:      1e9,
		CPIBase:     1.35, // measured VLIW kernels rarely pack perfectly
		MissRate:    0.01, // streaming kernels mostly hit the 512KB L2
		MissPenalty: 40,
	}
}

// Validate reports a configuration error, or nil.
func (c CostModel) Validate() error {
	if c.MulUnits <= 0 || c.ALUUnits <= 0 || c.LdStUnits <= 0 || c.FreqHz <= 0 {
		return fmt.Errorf("lwp: invalid cost model %+v", c)
	}
	if c.CPIBase < 1 {
		return fmt.Errorf("lwp: CPIBase %v < 1", c.CPIBase)
	}
	return nil
}

// IssueWidth returns the total functional units.
func (c CostModel) IssueWidth() int { return c.MulUnits + c.ALUUnits + c.LdStUnits }

// cyclesPerInstr returns the structural cycles-per-instruction bound for a
// mix: the busiest functional-unit class limits the packet rate.
func (c CostModel) cyclesPerInstr(m Mix) float64 {
	b := 1.0 / float64(c.IssueWidth())
	if v := m.Mul / float64(c.MulUnits); v > b {
		b = v
	}
	if v := m.ALU() / float64(c.ALUUnits); v > b {
		b = v
	}
	if v := m.LdSt / float64(c.LdStUnits); v > b {
		b = v
	}
	return b*c.CPIBase + m.LdSt*c.MissRate*float64(c.MissPenalty)
}

// Cycles returns the cycles to execute instr instructions of the given mix.
func (c CostModel) Cycles(instr int64, m Mix) int64 {
	if instr <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(instr) * c.cyclesPerInstr(m)))
}

// Duration returns the wall time for instr instructions of the given mix.
func (c CostModel) Duration(instr int64, m Mix) units.Duration {
	return units.Cycles(c.Cycles(instr, m), c.FreqHz)
}

// EffectiveIPC returns the sustained instructions per cycle for a mix.
func (c CostModel) EffectiveIPC(m Mix) float64 { return 1 / c.cyclesPerInstr(m) }

// FUsBusy returns the average number of functional units active while a
// kernel with this mix runs; it feeds the Fig. 15a utilization series.
func (c CostModel) FUsBusy(m Mix) float64 { return c.EffectiveIPC(m) }

// State is an LWP power state.
type State int

// LWP power states driven through the PSC.
const (
	StateSleep State = iota
	StateIdle        // awake, polling
	StateBusy
)

func (s State) String() string {
	switch s {
	case StateSleep:
		return "sleep"
	case StateIdle:
		return "idle"
	default:
		return "busy"
	}
}

// Core is one LWP's runtime state. Scheduling work on a core reserves its
// occupancy resource; the device layer owns assignment decisions.
type Core struct {
	ID    int
	Model CostModel
	Res   *sim.Resource

	state    State
	BootAddr int64 // DDR3L address of the downloaded kernel (boot address register)
	wakeups  int64

	sleepAt  sim.Time // when the current sleep began
	sleepDur units.Duration
}

// NewCore returns core id in sleep state.
func NewCore(id int, model CostModel) *Core {
	return &Core{ID: id, Model: model, Res: sim.NewResource(fmt.Sprintf("lwp%d", id))}
}

// State returns the current power state.
func (c *Core) State() State { return c.state }

// Wakeups returns how many times the PSC pulled the core out of sleep.
func (c *Core) Wakeups() int64 { return c.wakeups }

// SleepTime returns the accumulated time spent in sleep.
func (c *Core) SleepTime() units.Duration { return c.sleepDur }

// PSC is the power/sleep controller. Flashvisor uses it to put a target LWP
// to sleep, set its boot-address register, raise the inter-processor
// interrupt, and pull it back out of sleep (paper §4 "Execution").
type PSC struct {
	// WakeLatency is the revocation time from sleep to first fetch.
	WakeLatency units.Duration
	cores       []*Core
}

// NewPSC wraps the given cores.
func NewPSC(cores []*Core, wake units.Duration) *PSC {
	return &PSC{WakeLatency: wake, cores: cores}
}

// Sleep transitions a core to sleep at time at.
func (p *PSC) Sleep(at sim.Time, id int) {
	c := p.cores[id]
	if c.state == StateSleep {
		return
	}
	c.state = StateSleep
	c.sleepAt = at
}

// Boot performs the full launch sequence on a sleeping or idle core: store
// the kernel address into the boot-address register, write the IPI register,
// and revoke sleep. It returns when the core begins fetching.
func (p *PSC) Boot(at sim.Time, id int, bootAddr int64) sim.Time {
	c := p.cores[id]
	if c.state == StateSleep {
		c.sleepDur += at - c.sleepAt
	}
	c.BootAddr = bootAddr
	c.state = StateIdle
	c.wakeups++
	return at + p.WakeLatency
}

// MarkBusy and MarkIdle track the execution state for power accounting.
func (p *PSC) MarkBusy(id int) { p.cores[id].state = StateBusy }

// MarkIdle marks a core as awake but not executing.
func (p *PSC) MarkIdle(id int) { p.cores[id].state = StateIdle }
