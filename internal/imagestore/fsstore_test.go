package imagestore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestFSStoreRoundTrip(t *testing.T) {
	s, err := NewFSStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: err = %v, want ErrNotFound", err)
	}
	blob := []byte("not actually an image, the store does not care")
	if err := s.Put("deadbeef", blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatalf("Get = %q, want %q", got, blob)
	}
	// Overwrite replaces atomically.
	if err := s.Put("deadbeef", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("deadbeef"); string(got) != "v2" {
		t.Fatalf("Get after overwrite = %q, want v2", got)
	}
	// No temp files left behind.
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}

func TestFSStoreRejectsHostileKeys(t *testing.T) {
	s, err := NewFSStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/b", `a\b`, "dot.dot"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a hostile key", key)
		}
		if _, err := s.Get(key); err == nil || errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q) did not reject the key outright", key)
		}
	}
}

func TestFSStoreGC(t *testing.T) {
	dir := t.TempDir()
	// Bound at 3 KiB with 1 KiB blobs: the fourth Put must evict the
	// least-recently-used entry.
	s, err := NewFSStore(dir, 3*1024)
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 1024)
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("blob%d", i), blob); err != nil {
			t.Fatal(err)
		}
		// Spread mtimes so LRU order is unambiguous on coarse filesystems.
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, fmt.Sprintf("blob%d", i)+blobExt), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Touch blob0 via Get: it becomes the most recently used.
	if _, err := s.Get("blob0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("blob3", blob); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("blob1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("blob1 (least recently used) survived GC: err = %v", err)
	}
	for _, key := range []string{"blob0", "blob3"} {
		if _, err := s.Get(key); err != nil {
			t.Fatalf("%s evicted unexpectedly: %v", key, err)
		}
	}
}

func TestFSStoreConcurrent(t *testing.T) {
	s, err := NewFSStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("key%d", g%4)
			blob := []byte(strings.Repeat("x", 100+g))
			for i := 0; i < 50; i++ {
				if err := s.Put(key, blob); err != nil {
					t.Error(err)
					return
				}
				if got, err := s.Get(key); err != nil && !errors.Is(err, ErrNotFound) {
					t.Error(err)
					return
				} else if err == nil && len(got) < 100 {
					t.Errorf("torn read: %d bytes", len(got))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	blob := []byte{1, 2, 3}
	if err := s.Put("k", blob); err != nil {
		t.Fatal(err)
	}
	blob[0] = 9 // Put copies: caller mutations must not reach the store
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || s.Len() != 1 {
		t.Fatalf("got %v (len %d), want [1 2 3] (len 1)", got, s.Len())
	}
}

// TestPutRetriesTransientErrors injects the transient write failures a
// real filesystem only produces under pressure (interrupted syscall,
// short write, full disk) and pins the retry contract: transients are
// retried up to putAttempts times, success leaves the blob installed
// and no temp debris, and a persistent or non-transient failure
// surfaces after the budget without looping forever.
func TestPutRetriesTransientErrors(t *testing.T) {
	s, err := NewFSStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	realWrite := writeBlob
	defer func() { writeBlob = realWrite }()

	// Two transient failures, then success: Put must succeed.
	var attempts int
	fails := []error{syscall.EINTR, io.ErrShortWrite}
	writeBlob = func(tmp *os.File, blob []byte) (int, error) {
		attempts++
		if attempts <= len(fails) {
			return 0, fails[attempts-1]
		}
		return tmp.Write(blob)
	}
	if err := s.Put("abc123", []byte("payload")); err != nil {
		t.Fatalf("Put with %d transient failures: %v", len(fails), err)
	}
	if attempts != 3 {
		t.Fatalf("write attempted %d times, want 3", attempts)
	}
	if got, err := s.Get("abc123"); err != nil || string(got) != "payload" {
		t.Fatalf("Get after retried Put = %q, %v", got, err)
	}

	// Persistent ENOSPC: the budget bounds the retries and the error
	// surfaces.
	attempts = 0
	writeBlob = func(tmp *os.File, blob []byte) (int, error) {
		attempts++
		return 0, syscall.ENOSPC
	}
	if err := s.Put("def456", []byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("persistently full disk: err = %v, want ENOSPC", err)
	}
	if attempts != putAttempts {
		t.Fatalf("write attempted %d times, want %d", attempts, putAttempts)
	}

	// A non-transient failure is not worth retrying: one attempt only.
	attempts = 0
	writeBlob = func(tmp *os.File, blob []byte) (int, error) {
		attempts++
		return 0, syscall.EACCES
	}
	if err := s.Put("ghi789", []byte("x")); !errors.Is(err, syscall.EACCES) {
		t.Fatalf("permission failure: err = %v, want EACCES", err)
	}
	if attempts != 1 {
		t.Fatalf("non-transient failure retried: %d attempts", attempts)
	}

	// No temp debris from any failure path.
	writeBlob = realWrite
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}

// TestPutSyncsBeforeRename pins the durability ordering of putOnce: the
// temp file's bytes are fsynced BEFORE the rename publishes the name,
// and the directory is fsynced after — so a power cut can never leave a
// published blob whose bytes did not reach disk. The regression it
// guards: putOnce used to rename without any fsync at all.
func TestPutSyncsBeforeRename(t *testing.T) {
	s, err := NewFSStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	realSyncFile, realSyncDir := syncFile, syncDir
	defer func() { syncFile, syncDir = realSyncFile, realSyncDir }()

	var order []string
	syncFile = func(f *os.File) error {
		// The rename has not happened yet iff the final name is absent.
		if _, err := os.Stat(filepath.Join(s.Dir(), "abc123"+blobExt)); !errors.Is(err, os.ErrNotExist) {
			t.Error("file fsync ran after the rename published the blob")
		}
		order = append(order, "file")
		return realSyncFile(f)
	}
	syncDir = func(dir string) error {
		if _, err := os.Stat(filepath.Join(s.Dir(), "abc123"+blobExt)); err != nil {
			t.Error("dir fsync ran before the rename published the blob")
		}
		order = append(order, "dir")
		return realSyncDir(dir)
	}
	if err := s.Put("abc123", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if len(order) < 2 || order[0] != "file" || order[len(order)-1] != "dir" {
		t.Fatalf("sync order = %v, want file fsync first, dir fsync last", order)
	}

	// An fsync failure surfaces as a Put error and leaves no debris
	// published under the final name.
	syncFile = func(*os.File) error { return syscall.EIO }
	if err := s.Put("def456", []byte("x")); err == nil {
		t.Fatal("Put succeeded despite the file fsync failing")
	}
	if _, err := s.Get("def456"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("blob published without durable bytes: Get err = %v", err)
	}
}
