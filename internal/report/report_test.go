package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"name", "value"}}
	tbl.Add("short", 1)
	tbl.Add("a-much-longer-name", 2.5)
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// The value column starts at the same offset in both rows.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "2.50") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableCellFormatting(t *testing.T) {
	tbl := &Table{}
	tbl.Add("s", 3, 2.5, float32(1.25))
	row := tbl.Rows[0]
	if row[0] != "s" || row[1] != "3" || row[2] != "2.50" || row[3] != "1.25" {
		t.Errorf("row = %v", row)
	}
}

func TestTableNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.Add("x")
	if strings.Contains(tbl.String(), "---") {
		t.Error("rule printed without header")
	}
}

func TestSeries(t *testing.T) {
	out := Series("power", 1000, []float64{1, 2, 3, 4}, 2)
	if !strings.Contains(out, "== power ==") {
		t.Error("title missing")
	}
	if strings.Count(out, "\n") != 3 { // title + 2 sampled points
		t.Errorf("stride not applied: %q", out)
	}
	// Stride below one is clamped.
	all := Series("p", 1000, []float64{1, 2}, 0)
	if strings.Count(all, "\n") != 3 {
		t.Errorf("clamped stride wrong: %q", all)
	}
}
