package stats

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

// partsFromSeed deterministically synthesizes k per-card results driven by
// a fuzzer-chosen seed: plausible makespans, latencies, completions, utils
// in [0,1], switch labels, and the occasional idle (nil-Res) card.
func partsFromSeed(seed int64, k int) []Part {
	rng := rand.New(rand.NewSource(seed))
	parts := make([]Part, 0, k)
	for i := 0; i < k; i++ {
		sw := []string{"", "sw0", "sw1"}[rng.Intn(3)]
		if rng.Intn(8) == 0 {
			parts = append(parts, Part{Switch: sw}) // idle card
			continue
		}
		res := &Result{
			System:     "IntraO3",
			Workload:   "MX1",
			Makespan:   units.Duration(1 + rng.Int63n(1e9)),
			Bytes:      rng.Int63n(1 << 30),
			WorkerUtil: rng.Float64(),
			AccelTime:  units.Duration(rng.Int63n(1e9)),
			SSDTime:    units.Duration(rng.Int63n(1e9)),
			StackTime:  units.Duration(rng.Int63n(1e9)),
		}
		res.Energy[power.Compute] = rng.Float64() * 10
		res.Energy[power.Storage] = rng.Float64() * 10
		res.Energy[power.DataMove] = rng.Float64() * 10
		for n := rng.Intn(6); n > 0; n-- {
			lat := units.Duration(1 + rng.Int63n(1e8))
			res.KernelLatencies = append(res.KernelLatencies, lat)
			res.CompletionTimes = append(res.CompletionTimes, sim.Time(rng.Int63n(int64(res.Makespan))))
		}
		parts = append(parts, Part{
			Res:    res,
			Offset: units.Duration(rng.Int63n(1e8)),
			Switch: sw,
		})
	}
	return parts
}

// sortedDurations returns a sorted copy, the canonical form for comparing
// concatenation-ordered slices across part shuffles.
func sortedDurations(in []units.Duration) []units.Duration {
	out := append([]units.Duration(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedTimes(in []sim.Time) []sim.Time {
	out := append([]sim.Time(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// approx compares floats to a relative 1e-9, absorbing the reassociation
// noise a shuffle introduces into float accumulators.
func approx(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := 1.0
	if m := a; m > scale {
		scale = m
	}
	return diff <= 1e-9*scale
}

func equalDurations(a, b []units.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalTimes(a, b []sim.Time) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzAggregateOrderIndependence: merging K shuffled per-card results must
// not depend on part order for any order-free quantity — sums, makespan,
// utilization, and the multisets of latencies and shifted completions.
func FuzzAggregateOrderIndependence(f *testing.F) {
	f.Add(int64(1), 4)
	f.Add(int64(42), 9)
	f.Add(int64(-7), 1)
	f.Fuzz(func(t *testing.T, seed int64, k int) {
		k = k%16 + 1
		if k < 1 {
			k += 16
		}
		parts := partsFromSeed(seed, k)
		devices := len(parts) + 2 // a couple of cards never received work
		base := Aggregate("IntraO3", "MX1", devices, parts)

		shuffled := append([]Part(nil), parts...)
		rand.New(rand.NewSource(seed^0x5eed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		again := Aggregate("IntraO3", "MX1", devices, shuffled)

		if base.Bytes != again.Bytes || base.Makespan != again.Makespan {
			t.Fatalf("order-dependent sums: bytes %d vs %d, makespan %v vs %v",
				base.Bytes, again.Bytes, base.Makespan, again.Makespan)
		}
		// Float accumulators are commutative but not associative: shuffles
		// may move the last few ulps, never more.
		if !approx(base.WorkerUtil, again.WorkerUtil) {
			t.Fatalf("order-dependent utilization: %v vs %v", base.WorkerUtil, again.WorkerUtil)
		}
		for c := range base.Energy {
			if !approx(base.Energy[c], again.Energy[c]) {
				t.Fatalf("order-dependent energy[%d]: %v vs %v", c, base.Energy[c], again.Energy[c])
			}
		}
		if !equalDurations(sortedDurations(base.KernelLatencies), sortedDurations(again.KernelLatencies)) {
			t.Fatal("latency multiset differs across shuffles")
		}
		if !equalTimes(sortedTimes(base.CompletionTimes), sortedTimes(again.CompletionTimes)) {
			t.Fatal("completion multiset differs across shuffles")
		}
		// Per-switch rows are keyed by label: same totals in any order.
		sumBy := func(r *Result) map[string]int {
			m := map[string]int{}
			for _, su := range r.SwitchUtils {
				m[su.Switch] += su.Cards
			}
			return m
		}
		b, a := sumBy(base), sumBy(again)
		if len(b) != len(a) {
			t.Fatalf("switch row count differs: %v vs %v", b, a)
		}
		for name, cards := range b {
			if a[name] != cards {
				t.Fatalf("switch %s cards differ: %d vs %d", name, cards, a[name])
			}
		}
	})
}

// FuzzAggregateInvariants: for any synthesized cluster, completion shifting
// preserves every completion exactly once (no collisions between a part's
// local count and the aggregate), the makespan covers every part's finish,
// and utilization stays in [0,1] when per-part utils do.
func FuzzAggregateInvariants(f *testing.F) {
	f.Add(int64(3), 5)
	f.Add(int64(99), 12)
	f.Fuzz(func(t *testing.T, seed int64, k int) {
		k = k%16 + 1
		if k < 1 {
			k += 16
		}
		parts := partsFromSeed(seed, k)
		devices := len(parts)
		r := Aggregate("IntraO3", "MX1", devices, parts)

		wantComps := 0
		for _, p := range parts {
			if p.Res == nil {
				continue
			}
			wantComps += len(p.Res.CompletionTimes)
			if fin := p.Offset + p.Res.Makespan; fin > r.Makespan {
				t.Fatalf("part finishing at %v exceeds aggregate makespan %v", fin, r.Makespan)
			}
			// Every shifted completion of this part appears in the aggregate.
			for _, c := range p.Res.CompletionTimes {
				found := false
				for _, ac := range r.CompletionTimes {
					if ac == c+p.Offset {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("completion %v+%v lost in aggregate", c, p.Offset)
				}
			}
		}
		if len(r.CompletionTimes) != wantComps {
			t.Fatalf("%d aggregate completions, want %d — offsets collided or dropped",
				len(r.CompletionTimes), wantComps)
		}
		if len(r.KernelLatencies) != wantComps {
			t.Fatalf("%d latencies vs %d completions", len(r.KernelLatencies), wantComps)
		}
		if r.WorkerUtil < 0 || r.WorkerUtil > 1 {
			t.Fatalf("aggregate utilization %v outside [0,1]", r.WorkerUtil)
		}
		for _, su := range r.SwitchUtils {
			if su.Util < 0 || su.Util > 1 {
				t.Fatalf("switch %s utilization %v outside [0,1]", su.Switch, su.Util)
			}
			if su.Cards < 1 {
				t.Fatalf("switch %s has %d cards", su.Switch, su.Cards)
			}
		}
	})
}

// The CDF of an aggregate is non-decreasing in time with one step per
// completion — the property the Fig. 12 renders rely on.
func TestAggregateCDFMonotone(t *testing.T) {
	r := Aggregate("IntraO3", "MX1", 4, partsFromSeed(7, 8))
	cdf := r.CDF()
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Time < cdf[i-1].Time || cdf[i].Completed != cdf[i-1].Completed+1 {
			t.Fatalf("CDF step %d not monotone: %+v after %+v", i, cdf[i], cdf[i-1])
		}
	}
}
