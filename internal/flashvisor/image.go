package flashvisor

import "repro/internal/flash"

// FTLImage is an immutable snapshot of an FTL: the mapping tables frozen as
// shared copy-on-write segments plus a private copy of the (small) log-head
// and pool state. Snapshot is cheap — O(segment directory + super blocks),
// never O(capacity) — so a formatted, populated device can be captured once
// and forked for every cell, cluster card, and work-steal probe that would
// otherwise rebuild it.
type FTLImage struct {
	geo           flash.Geometry
	table         cowView
	rev           cowView
	validPerSB    []int32
	freeSBs       [][]flash.SuperBlock
	usedSBs       []flash.SuperBlock
	active        []flash.SuperBlock
	hasActive     []bool
	cursor        []int
	allocRow      int
	logicalGroups int64
}

// Snapshot freezes the FTL's current state into an immutable image. The
// live FTL stays fully usable: its mapping-table segments become shared, so
// its next write to any segment copies that segment first. Snapshotting a
// forked FTL works the same way — views are always flat, never chained.
func (f *FTL) Snapshot() *FTLImage {
	img := &FTLImage{
		geo:           f.geo,
		table:         f.table.snapshot(),
		rev:           f.rev.snapshot(),
		validPerSB:    append([]int32(nil), f.validPerSB...),
		freeSBs:       make([][]flash.SuperBlock, len(f.freeSBs)),
		usedSBs:       append([]flash.SuperBlock(nil), f.usedSBs[f.usedHead:]...),
		active:        append([]flash.SuperBlock(nil), f.active...),
		hasActive:     append([]bool(nil), f.hasActive...),
		cursor:        append([]int(nil), f.cursor...),
		allocRow:      f.allocRow,
		logicalGroups: f.logicalGroups,
	}
	for r := range f.freeSBs {
		img.freeSBs[r] = append([]flash.SuperBlock(nil), f.freeSBs[r]...)
	}
	return img
}

// Geometry returns the geometry the image was formatted with.
func (img *FTLImage) Geometry() flash.Geometry { return img.geo }

// NewFTLFromImage forks a writable FTL from an image. The mapping tables
// are shared copy-on-write with the image (and with every sibling fork);
// the log-head and pool state is copied. The result is indistinguishable
// from the FTL the image was snapshotted from.
func NewFTLFromImage(img *FTLImage) *FTL {
	f := &FTL{
		geo:           img.geo,
		table:         img.table.fork(),
		rev:           img.rev.fork(),
		validPerSB:    append([]int32(nil), img.validPerSB...),
		logicalGroups: img.logicalGroups,
		freeSBs:       make([][]flash.SuperBlock, len(img.freeSBs)),
		usedSBs:       append([]flash.SuperBlock(nil), img.usedSBs...),
		active:        append([]flash.SuperBlock(nil), img.active...),
		hasActive:     append([]bool(nil), img.hasActive...),
		cursor:        append([]int(nil), img.cursor...),
		allocRow:      img.allocRow,
	}
	for r := range img.freeSBs {
		f.freeSBs[r] = append([]flash.SuperBlock(nil), img.freeSBs[r]...)
	}
	f.initGeoCache()
	return f
}
