package stats

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// aggregateParts builds a representative unlabeled cluster merge: cards
// cards, each with kernels latencies/completions and a populated energy
// breakdown, staggered offsets.
func aggregateParts(cards, kernels int) []Part {
	parts := make([]Part, cards)
	for c := range parts {
		res := &Result{System: "IntraO3", Makespan: units.Duration(1e9 + c)}
		for k := 0; k < kernels; k++ {
			res.KernelLatencies = append(res.KernelLatencies, units.Duration(1e6*(k+1)))
			res.CompletionTimes = append(res.CompletionTimes, sim.Time(1e6*(k+1)+c))
		}
		res.Bytes = int64(c+1) * 1 << 20
		res.WorkerUtil = 0.5
		res.Energy[0], res.Energy[1], res.Energy[2] = 1.5, 2.5, 0.5
		parts[c] = Part{Res: res, Offset: units.Duration(c) * 1000}
	}
	return parts
}

// TestAggregateAllocs pins the allocation profile of the cluster merge: the
// latency concat and completion offset-shift slices are sized once from the
// summed part lengths, so aggregating any number of parts costs a small
// constant number of allocations (result struct, two slices, the
// per-component and per-switch scratch maps) — not O(parts) regrowth.
func TestAggregateAllocs(t *testing.T) {
	for _, cards := range []int{2, 8, 32} {
		parts := aggregateParts(cards, 24)
		allocs := testing.AllocsPerRun(100, func() {
			Aggregate("IntraO3", "MX1", cards, parts)
		})
		// 6 steady-state allocations: Result, KernelLatencies,
		// CompletionTimes, comps map, sws map, names header. Leave one
		// spare for runtime variance; what matters is independence from
		// the card count.
		if allocs > 7 {
			t.Errorf("Aggregate(%d cards) costs %.0f allocs/op, want <= 7 (size-independent)", cards, allocs)
		}
	}
}

func BenchmarkAggregate(b *testing.B) {
	for _, cards := range []int{8, 64} {
		parts := aggregateParts(cards, 24)
		b.Run(fmt.Sprintf("cards=%d", cards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if r := Aggregate("IntraO3", "MX1", cards, parts); r.Bytes == 0 {
					b.Fatal("empty aggregate")
				}
			}
		})
	}
}
