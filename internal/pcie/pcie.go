// Package pcie models the accelerator's host link: PCIe v2.0 with two lanes
// (1 GB/s, Table 1), the base-address-register (BAR) window that maps host
// writes into DDR3L, and the doorbell interrupt the host raises after a
// kernel download (paper §4 "Offload"/"Execution").
package pcie

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// Config holds link parameters.
type Config struct {
	BW units.Bandwidth // effective link bandwidth
	// Latency is the per-transaction link latency (posting + DMA setup).
	Latency units.Duration
	// IntLatency is interrupt delivery time from doorbell to Flashvisor.
	IntLatency units.Duration
	// BARSize is the DDR3L window exposed through the BAR.
	BARSize int64
}

// DefaultConfig returns the prototype link: 1 GB/s, ~2 µs DMA setup.
func DefaultConfig() Config {
	return Config{
		BW:         1 * units.GBps,
		Latency:    2 * units.Microsecond,
		IntLatency: 1 * units.Microsecond,
		BARSize:    64 * units.MB,
	}
}

// Link is the PCIe endpoint on the accelerator.
type Link struct {
	Cfg  Config
	pipe *sim.Pipe

	doorbells int64
}

// New builds a link.
func New(cfg Config) (*Link, error) {
	if cfg.BW <= 0 {
		return nil, fmt.Errorf("pcie: non-positive bandwidth")
	}
	if cfg.BARSize <= 0 {
		return nil, fmt.Errorf("pcie: non-positive BAR size")
	}
	p := sim.NewPipe("pcie", cfg.BW)
	p.Latency = cfg.Latency
	return &Link{Cfg: cfg, pipe: p}, nil
}

// WriteBAR books a host write of n bytes through the BAR window (a kernel
// description table download or input staging) and returns when the data
// has landed in DDR3L.
func (l *Link) WriteBAR(at sim.Time, n int64) (sim.Time, error) {
	if n > l.Cfg.BARSize {
		return 0, fmt.Errorf("pcie: write of %s exceeds BAR window %s",
			units.FormatBytes(n), units.FormatBytes(l.Cfg.BARSize))
	}
	_, end := l.pipe.Transfer(at, n)
	return end, nil
}

// Transfer books a bulk DMA of n bytes in either direction.
func (l *Link) Transfer(at sim.Time, n int64) sim.Time {
	_, end := l.pipe.Transfer(at, n)
	return end
}

// Doorbell raises the host interrupt at time at and returns when the PCIe
// controller has forwarded it to Flashvisor.
func (l *Link) Doorbell(at sim.Time) sim.Time {
	l.doorbells++
	return at + l.Cfg.IntLatency
}

// Doorbells returns how many interrupts were raised.
func (l *Link) Doorbells() int64 { return l.doorbells }

// Busy returns the total link occupancy.
func (l *Link) Busy() units.Duration { return l.pipe.Busy() }

// Bytes returns the total bytes moved.
func (l *Link) Bytes() int64 { return l.pipe.Bytes() }
