package imagestore

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

// DefaultMaxBytes is the filesystem store's size bound when the caller
// passes 0: roomy enough for every image of a full evaluation suite at
// several scales, small enough to live in a CI cache.
const DefaultMaxBytes = 1 << 30

// blobExt marks store entries; everything else in the directory (temp
// files, foreign files) is left alone by Get/Put and GC.
const blobExt = ".img"

// FSStore is a filesystem-backed Store: one file per fingerprint under a
// single directory. It is safe for concurrent use by multiple processes —
// writes go through a private temp file and an atomic rename, so readers
// observe either the old blob or the new one, never a torn write (and a
// torn write from a crashed process is caught by the codec's checksums
// anyway, which is why Get does no verification of its own).
//
// The store is size-bounded: after each Put, entries are garbage-collected
// least-recently-used-first (by mtime, which Get refreshes) until the
// directory fits maxBytes again.
type FSStore struct {
	dir string
	max int64

	// gcMu serializes in-process GC scans; cross-process races are benign
	// (both processes delete the same oldest files, misses rebuild).
	gcMu sync.Mutex
}

// NewFSStore opens (creating if needed) a store rooted at dir. maxBytes
// bounds the directory's total blob size; 0 means DefaultMaxBytes.
func NewFSStore(dir string, maxBytes int64) (*FSStore, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("imagestore: %w", err)
	}
	return &FSStore{dir: dir, max: maxBytes}, nil
}

// Dir returns the store's root directory.
func (s *FSStore) Dir() string { return s.dir }

func (s *FSStore) path(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("imagestore: invalid key %q", key)
	}
	return filepath.Join(s.dir, key+blobExt), nil
}

// Get returns the blob stored under key and refreshes its mtime, which is
// the LRU clock GC evicts by. The returned slice is private to the caller.
func (s *FSStore) Get(key string) ([]byte, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("imagestore: %w", err)
	}
	now := time.Now()
	_ = os.Chtimes(p, now, now) // best-effort LRU touch
	return blob, nil
}

// putAttempts bounds how many times Put retries a transiently-failing
// write before giving up. Store fills are an optimization — the caller
// degrades to cache-only on a returned error — so a short bound beats
// waiting out a persistently full disk.
const putAttempts = 3

// transientPutErr reports whether a Put failure is worth retrying: an
// interrupted syscall, a short write, or a full disk (which a GC pass
// over the store's own blobs may cure).
func transientPutErr(err error) bool {
	return errors.Is(err, syscall.EINTR) ||
		errors.Is(err, io.ErrShortWrite) ||
		errors.Is(err, syscall.ENOSPC)
}

// Put atomically installs blob under key and then garbage-collects the
// store back under its size bound. Transient write failures (EINTR,
// short write, ENOSPC) are retried up to putAttempts times, with a GC
// pass before each retry so a store-full condition can clear itself;
// anything else, or a retry budget exhausted, returns the error and
// leaves no temp debris behind.
func (s *FSStore) Put(key string, blob []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	var werr error
	for attempt := 0; attempt < putAttempts; attempt++ {
		if attempt > 0 {
			// Best-effort space reclaim before retrying: an ENOSPC Put
			// may only need the store's own LRU tail gone.
			_ = s.gc()
		}
		if werr = s.putOnce(p, blob); werr == nil {
			return s.gc()
		}
		if !transientPutErr(werr) {
			break
		}
	}
	return fmt.Errorf("imagestore: %w", werr)
}

// writeBlob writes one blob into the open temp file. It is a seam the
// tests override to inject the transient I/O errors (EINTR, ENOSPC,
// short write) a real filesystem only produces under pressure.
var writeBlob = func(tmp *os.File, blob []byte) (int, error) { return tmp.Write(blob) }

// syncFile and syncDir are the durability seams: overridable so tests
// can assert the fsync ordering without real disk barriers, and so the
// fsyncs can be observed rather than trusted.
var (
	syncFile = func(f *os.File) error { return f.Sync() }
	syncDir  = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		serr := d.Sync()
		cerr := d.Close()
		if serr != nil {
			return serr
		}
		return cerr
	}
)

// putOnce is one atomic, durable write attempt: temp file, write,
// fsync, chmod, rename, fsync the directory. The file fsync must land
// before the rename — rename-then-crash would otherwise publish a name
// whose bytes never reached disk, and the codec checksums would brand
// the store entry corrupt on every boot until GC aged it out. The
// directory fsync after the rename makes the new name itself durable.
func (s *FSStore) putOnce(p string, blob []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	_, werr := writeBlob(tmp, blob)
	if werr == nil {
		werr = syncFile(tmp)
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp.Name(), 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), p)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return syncDir(s.dir)
}

// gc deletes least-recently-used blobs (and stale temp files) until the
// directory's blob bytes fit the bound again. A concurrent process may
// race the deletes; losing that race only costs a store miss.
func (s *FSStore) gc() error {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("imagestore: %w", err)
	}
	type blob struct {
		path  string
		size  int64
		mtime time.Time
	}
	var blobs []blob
	var total int64
	for _, ent := range ents {
		name := ent.Name()
		info, err := ent.Info()
		if err != nil || ent.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			// A temp file this old belongs to a crashed writer.
			if time.Since(info.ModTime()) > time.Hour {
				os.Remove(filepath.Join(s.dir, name))
			}
			continue
		}
		if !strings.HasSuffix(name, blobExt) {
			continue
		}
		blobs = append(blobs, blob{path: filepath.Join(s.dir, name), size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
	}
	if total <= s.max {
		return nil
	}
	sort.Slice(blobs, func(i, j int) bool { return blobs[i].mtime.Before(blobs[j].mtime) })
	for _, b := range blobs {
		if total <= s.max {
			break
		}
		if os.Remove(b.path) == nil {
			total -= b.size
		}
	}
	return nil
}
