// Package power accounts for energy. Every hardware model reports busy time;
// this package converts busy/idle spans into joules per component and rolls
// them up into the paper's three categories: data movement, computation, and
// storage access (Fig. 13 and Fig. 16b).
package power

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/units"
)

// Category is one of the paper's energy decomposition buckets.
type Category int

// The decomposition used throughout §5.3.
const (
	DataMove Category = iota
	Compute
	Storage
	numCategories
)

func (c Category) String() string {
	switch c {
	case DataMove:
		return "data movement"
	case Compute:
		return "computation"
	case Storage:
		return "storage access"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Rates holds the platform's power constants. Device-side numbers come from
// Table 1; host-side numbers model the Xeon E5-2620v3 + DDR4 testbed used by
// the SIMD baseline.
type Rates struct {
	LWPActive float64 // W per busy LWP core
	LWPIdle   float64 // W per awake-but-idle core
	LWPSleep  float64 // W per sleeping core
	DDR3L     float64 // W while the on-board DRAM moves data
	Scratch   float64 // W while the scratchpad moves data
	Backbone  float64 // W while the flash complex is active
	PCIe      float64 // W while the link carries data

	HostCPUActive float64 // W of host CPU during storage-stack work
	HostCPUIdle   float64 // W of host CPU otherwise (charged per run span)
	HostDRAM      float64 // W of host DRAM during copies
	SSD           float64 // W of the external NVMe SSD while active
}

// DefaultRates returns the published/typical constants.
func DefaultRates() Rates {
	return Rates{
		LWPActive: 0.8,
		LWPIdle:   0.15,
		LWPSleep:  0.02,
		DDR3L:     0.7,
		Scratch:   0.1,
		Backbone:  11.0,
		PCIe:      0.17,

		HostCPUActive: 55.0,
		HostCPUIdle:   12.0,
		HostDRAM:      4.5,
		SSD:           11.0,
	}
}

// Entry is one accounted energy contribution.
type Entry struct {
	Component string
	Cat       Category
	Joules    float64
}

// Meter accumulates energy entries for one run.
type Meter struct {
	entries []Entry
}

// AddBusy charges watts over a busy duration to a category.
func (m *Meter) AddBusy(component string, cat Category, busy units.Duration, watts float64) {
	if busy <= 0 || watts <= 0 {
		return
	}
	m.entries = append(m.entries, Entry{component, cat, watts * units.Seconds(busy)})
}

// AddJoules charges a precomputed energy amount.
func (m *Meter) AddJoules(component string, cat Category, j float64) {
	if j <= 0 {
		return
	}
	m.entries = append(m.entries, Entry{component, cat, j})
}

// Breakdown is total joules per category.
type Breakdown [numCategories]float64

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b[DataMove] + b[Compute] + b[Storage] }

// Frac returns the category's fraction of the total (0 when empty).
func (b Breakdown) Frac(c Category) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b[c] / t
}

// Breakdown rolls the meter up by category.
func (m *Meter) Breakdown() Breakdown {
	var b Breakdown
	for _, e := range m.entries {
		b[e.Cat] += e.Joules
	}
	return b
}

// ByComponent rolls the meter up by component name, sorted by name.
func (m *Meter) ByComponent() []Entry {
	agg := make(map[string]*Entry)
	for _, e := range m.entries {
		if a, ok := agg[e.Component]; ok {
			a.Joules += e.Joules
		} else {
			cp := e
			agg[e.Component] = &cp
		}
	}
	out := make([]Entry, 0, len(agg))
	for _, e := range agg {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out
}

// Series builds a binned power time-series from busy-interval logs: each
// interval contributes watts to the bins it overlaps, proportionally. It
// feeds the Fig. 15b power trace.
type Series struct {
	Bin  units.Duration
	bins []float64
}

// NewSeries creates a series with the given bin width.
func NewSeries(bin units.Duration) *Series {
	if bin <= 0 {
		panic("power: non-positive bin width")
	}
	return &Series{Bin: bin}
}

// AddIntervals spreads watts over each interval's span.
func (s *Series) AddIntervals(ivs []sim.Interval, watts float64) {
	for _, iv := range ivs {
		s.AddSpan(iv.Start, iv.End, watts)
	}
}

// AddSpan spreads watts over [start, end).
func (s *Series) AddSpan(start, end sim.Time, watts float64) {
	if end <= start || watts == 0 {
		return
	}
	first := int(start / s.Bin)
	last := int((end - 1) / s.Bin)
	for b := first; b <= last; b++ {
		for b >= len(s.bins) {
			s.bins = append(s.bins, 0)
		}
		bs := sim.Time(b) * s.Bin
		be := bs + s.Bin
		ovs, ove := start, end
		if bs > ovs {
			ovs = bs
		}
		if be < ove {
			ove = be
		}
		s.bins[b] += watts * float64(ove-ovs) / float64(s.Bin)
	}
}

// Bins returns the average power per bin in watts.
func (s *Series) Bins() []float64 { return s.bins }
