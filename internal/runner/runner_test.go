package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCollectOrderDeterministic(t *testing.T) {
	const n = 64
	p := New(8)
	// Early jobs sleep longest so completion order inverts index order.
	out, err := Collect(context.Background(), p, n, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Duration(n-i) * 50 * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("len(out) = %d, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestBoundedParallelism(t *testing.T) {
	const workers = 3
	var inFlight, peak int64
	p := New(workers)
	err := p.Each(context.Background(), 24, func(context.Context, int) error {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&peak); got > workers {
		t.Errorf("observed %d concurrent jobs, bound is %d", got, workers)
	}
}

func TestFirstErrorWins(t *testing.T) {
	sentinel := errors.New("job seven exploded")
	p := New(4)
	err := p.Each(context.Background(), 32, func(ctx context.Context, i int) error {
		if i == 7 {
			return sentinel
		}
		// Later jobs linger so some are still in flight at failure time.
		select {
		case <-ctx.Done():
		case <-time.After(2 * time.Millisecond):
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

func TestRealErrorOutranksCancellation(t *testing.T) {
	// Every job fails; whichever failures were dispatched before the
	// fail-fast cancellation landed, Each must report one of the jobs'
	// own errors — never the cancellation noise the failure caused.
	p := New(8)
	err := p.Each(context.Background(), 16, func(_ context.Context, i int) error {
		return fmt.Errorf("job %d failed", i)
	})
	if err == nil || IsCancellation(err) || !strings.HasPrefix(err.Error(), "job ") {
		t.Fatalf("err = %v, want a job's own error", err)
	}
}

func TestErrorCancelsRemainingJobs(t *testing.T) {
	var started int64
	sentinel := errors.New("boom")
	p := New(2)
	err := p.Each(context.Background(), 1000, func(ctx context.Context, i int) error {
		atomic.AddInt64(&started, 1)
		if i == 0 {
			return sentinel
		}
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if n := atomic.LoadInt64(&started); n >= 1000 {
		t.Errorf("all %d jobs ran despite early failure", n)
	}
}

func TestEachAllRunsEverythingDespiteErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran int64
		err := New(workers).EachAll(context.Background(), 50, func(_ context.Context, i int) error {
			atomic.AddInt64(&ran, 1)
			if i%10 == 3 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %v, want job 3's error", workers, err)
		}
		if ran != 50 {
			t.Fatalf("workers=%d: ran %d jobs, want all 50", workers, ran)
		}
	}
}

func TestEachAllPrefersRealErrorOverCancellation(t *testing.T) {
	sentinel := errors.New("real failure")
	for _, workers := range []int{1, 4} {
		err := New(workers).EachAll(context.Background(), 10, func(_ context.Context, i int) error {
			switch i {
			case 2:
				// A job-local timeout classifies as cancellation…
				return fmt.Errorf("job timeout: %w", context.DeadlineExceeded)
			case 5:
				// …and must not outrank a genuine failure, in either path.
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want the real failure", workers, err)
		}
	}
}

func TestEachAllStopsOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int64
	err := New(2).EachAll(ctx, 1000, func(jctx context.Context, i int) error {
		if atomic.AddInt64(&ran, 1) == 2 {
			cancel()
		}
		select {
		case <-jctx.Done():
			return jctx.Err()
		case <-time.After(time.Millisecond):
			return nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n >= 1000 {
		t.Errorf("all %d jobs ran despite cancellation", n)
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	for _, workers := range []int{1, 4} {
		err := New(workers).Each(ctx, 10, func(context.Context, int) error {
			atomic.AddInt64(&ran, 1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if atomic.LoadInt64(&ran) != 0 {
		t.Errorf("%d jobs ran under a cancelled context", ran)
	}
}

func TestCancelStopsInFlightJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int64
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- New(2).Each(ctx, 100, func(jctx context.Context, i int) error {
			if atomic.AddInt64(&started, 1) == 2 {
				close(release)
			}
			<-jctx.Done()
			return jctx.Err()
		})
	}()
	<-release
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not stop after cancellation")
	}
	if n := atomic.LoadInt64(&started); n >= 100 {
		t.Errorf("all %d jobs started despite cancellation", n)
	}
}

func TestSequentialStopsAtFirstError(t *testing.T) {
	var ran int64
	sentinel := errors.New("stop here")
	err := New(1).Each(context.Background(), 100, func(_ context.Context, i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if ran != 4 {
		t.Errorf("ran %d jobs, want 4 (stop right after the failure)", ran)
	}
}

func TestEmptyAndDefaults(t *testing.T) {
	if err := New(4).Each(context.Background(), 0, nil); err != nil {
		t.Errorf("0 jobs: %v", err)
	}
	if w := New(0).Workers(); w < 1 {
		t.Errorf("default workers = %d, want >= 1", w)
	}
	if w := New(-3).Workers(); w < 1 {
		t.Errorf("negative workers clamped to %d, want >= 1", w)
	}
}

func TestIsCancellation(t *testing.T) {
	if !IsCancellation(context.Canceled) || !IsCancellation(fmt.Errorf("wrap: %w", context.DeadlineExceeded)) {
		t.Error("cancellation errors not recognized")
	}
	if IsCancellation(errors.New("boom")) || IsCancellation(nil) {
		t.Error("non-cancellation misclassified")
	}
}

// TestPanicBecomesError: a panicking job surfaces as a *PanicError with
// the panic value and stack; the pool survives and sibling jobs run.
// This is the isolation the serving layer leans on — one broken cell
// fails one job, never the process.
func TestPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran int32
		err := New(workers).EachAll(context.Background(), 6, func(ctx context.Context, i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 2 {
				panic("cell exploded")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "cell exploded" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic error lost its value or stack: %v", workers, pe)
		}
		if got := atomic.LoadInt32(&ran); got != 6 {
			t.Fatalf("workers=%d: %d jobs ran, want all 6 despite the panic", workers, got)
		}
	}
}

// TestAwaitPanicSettlesWaitersAndEvicts: a panicking compute must close
// the flight (waiters get the error instead of hanging) and evict the
// slot so the next request recomputes.
func TestAwaitPanicSettlesWaitersAndEvicts(t *testing.T) {
	var (
		mu    sync.Mutex
		slot  *Flight[int]
		calls int32
	)
	get := func() *Flight[int] { return slot }
	set := func(f *Flight[int]) { slot = f }

	compute := func(ctx context.Context) (int, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			panic("first compute dies")
		}
		return 42, nil
	}

	// Starter and a concurrent waiter: both must see the panic error.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			_, errs[k] = Await(context.Background(), &mu, get, set, compute)
		}(k)
	}
	wg.Wait()
	var panics, oks int
	for _, err := range errs {
		var pe *PanicError
		switch {
		case errors.As(err, &pe):
			panics++
		case err == nil:
			oks++
		default:
			t.Fatalf("unexpected err %v", err)
		}
	}
	// The starter always sees the panic; the waiter either raced in
	// behind it (panic) or found the evicted slot and recomputed (ok).
	if panics < 1 {
		t.Fatalf("panic error reached %d goroutines, want >= 1 (oks %d)", panics, oks)
	}
	// The slot was evicted, so a fresh request recomputes and succeeds.
	v, err := Await(context.Background(), &mu, get, set, compute)
	if err != nil || v != 42 {
		t.Fatalf("recompute after panic eviction = %d, %v; want 42, nil", v, err)
	}
}
