package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// uncached computes a job exactly the way the pre-image suite did: full
// format/populate/offload lifecycle per device, no image forks, no probe
// memoization. It mirrors Suite.simulate with a nil cache.
func uncached(t *testing.T, s *Suite, j Job) interface{} {
	t.Helper()
	ctx := context.Background()
	b, err := j.bundle(s.opts())
	if err != nil {
		t.Fatal(err)
	}
	switch j.Kind {
	case KindSensitivity:
		cfg := core.DefaultConfig(core.SIMD)
		cfg.Workers = j.Cores
		d, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range b.Apps {
			if err := d.OffloadApp(app.Name, app.Tables); err != nil {
				t.Fatal(err)
			}
		}
		r, err := d.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return r
	case KindSeries:
		r, err := RunBundle(ctx, j.Sys, b, true)
		if err != nil {
			t.Fatal(err)
		}
		return r
	case KindCluster:
		cfg := core.DefaultConfig(j.Sys)
		cfg.Devices = j.Devices
		r, err := cluster.Run(ctx, cfg, b, cluster.Options{Policy: j.Policy, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return r
	case KindTopology:
		topo, err := cluster.Preset(j.Topo, j.Devices)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(j.Sys)
		r, err := cluster.Run(ctx, cfg, b, cluster.Options{Policy: j.Policy, Workers: 1, Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		return r
	default:
		r, err := RunBundle(ctx, j.Sys, b, false)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
}

// TestImageForkEquivalenceAcrossKinds is the acceptance property of the
// snapshot subsystem: for every experiment kind, a suite cell computed
// through image forks and memoized probes is deep-equal — every field of
// stats.Result, down to latency vectors, energy entries, and visor
// counters — to the same cell computed with the full per-device lifecycle.
func TestImageForkEquivalenceAcrossKinds(t *testing.T) {
	const scale = 1024 // tiny inputs: startup dominates, which is the path under test
	jobs := []Job{
		{Kind: KindHomogeneous, Name: "ATAX", Sys: core.IntraO3},
		{Kind: KindHomogeneous, Name: "ATAX", Sys: core.SIMD},
		{Kind: KindHeterogeneous, Mix: 1, Sys: core.InterDy},
		{Kind: KindBigdata, Name: "bfs", Sys: core.InterSt},
		{Kind: KindSensitivity, Cores: 4, Pct: 20, Sys: core.SIMD},
		{Kind: KindSeries, Mix: 1, Sys: core.IntraO3},
		{Kind: KindCluster, Name: "ATAX", Devices: 2, Policy: cluster.RoundRobin, Sys: core.IntraO3},
		{Kind: KindCluster, Mix: 1, Devices: 2, Policy: cluster.WorkSteal, Sys: core.IntraO3},
		{Kind: KindTopology, Mix: 1, Topo: "2sw-skew", Devices: 2, Policy: cluster.WorkSteal, Sys: core.IntraO3},
	}
	s := NewSuite(scale)
	s.Workers = 1
	for _, j := range jobs {
		j := j
		t.Run(j.String(), func(t *testing.T) {
			got, err := s.Run(context.Background(), j)
			if err != nil {
				t.Fatal(err)
			}
			want := uncached(t, s, j)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("image-forked result diverged from lifecycle result:\n fork: %+v\nfresh: %+v", got, want)
			}
		})
	}
	// The shared-image paths must also hold when cells share images: rerun
	// a FlashAbacus sibling of an already-imaged cell and a second cluster
	// policy whose probes were memoized by the first.
	siblings := []Job{
		{Kind: KindHomogeneous, Name: "ATAX", Sys: core.InterSt},
		{Kind: KindCluster, Mix: 1, Devices: 4, Policy: cluster.WorkSteal, Sys: core.IntraO3},
	}
	for _, j := range siblings {
		j := j
		t.Run("shared/"+j.String(), func(t *testing.T) {
			got, err := s.Run(context.Background(), j)
			if err != nil {
				t.Fatal(err)
			}
			want := uncached(t, s, j)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shared-image result diverged from lifecycle result")
			}
		})
	}
}
