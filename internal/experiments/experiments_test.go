package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// testScale shrinks Table 2 inputs 64× so the full suite runs in seconds.
const testScale = 64

func TestTable1AndTable2Render(t *testing.T) {
	t1 := Table1().String()
	for _, want := range []string{"LWP", "Scratchpad", "DDR3L", "32.0GB", "PCIe"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	t2 := Table2().String()
	for _, want := range []string{"ATAX", "CORR", "data-intensive", "compute-intensive"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	if !strings.Contains(TableMixes().String(), "MX14") {
		t.Error("mix table missing MX14")
	}
}

func TestFig3SensitivityShape(t *testing.T) {
	points, err := Fig3Sensitivity(context.Background(), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8*len(SerialRatios) {
		t.Fatalf("points = %d", len(points))
	}
	get := func(cores, pct int) Fig3Point {
		for _, p := range points {
			if p.Cores == cores && p.SerialPct == pct {
				return p
			}
		}
		t.Fatalf("missing point %d/%d", cores, pct)
		return Fig3Point{}
	}
	// Ideal scaling at 0% serial: 8 cores ≈ 8× one core.
	if s := get(8, 0).Throughput / get(1, 0).Throughput; s < 6 {
		t.Errorf("0%% serial speedup at 8 cores = %.1f, want near 8", s)
	}
	// Amdahl: 50% serial at 8 cores utilizes ~22% of the cores.
	if u := get(8, 50).Util; u < 0.12 || u > 0.35 {
		t.Errorf("50%% serial 8-core utilization = %.2f, want ~0.22", u)
	}
	// Utilization monotonically drops with serial fraction.
	if get(8, 0).Util < get(8, 30).Util || get(8, 30).Util < get(8, 50).Util {
		t.Error("utilization not decreasing with serial fraction")
	}
	// Tables render.
	if !strings.Contains(Fig3bTable(points).String(), "serial 50%") {
		t.Error("Fig 3b table malformed")
	}
	if !strings.Contains(Fig3cTable(points).String(), "cores") {
		t.Error("Fig 3c table malformed")
	}
}

func TestHomogeneousHeadlineShapes(t *testing.T) {
	s := NewSuite(testScale)
	// Data-intensive ATAX: every FlashAbacus mode beats SIMD.
	simd, err := s.Homogeneous(context.Background(), "ATAX", core.SIMD)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range core.FlashAbacusSystems {
		r, err := s.Homogeneous(context.Background(), "ATAX", sys)
		if err != nil {
			t.Fatal(err)
		}
		if r.ThroughputMBps() <= simd.ThroughputMBps() {
			t.Errorf("%v (%.1f MB/s) not above SIMD (%.1f MB/s) on ATAX",
				sys, r.ThroughputMBps(), simd.ThroughputMBps())
		}
	}
	// InterDy well above InterSt on homogeneous work (Fig. 10a).
	st, _ := s.Homogeneous(context.Background(), "ATAX", core.InterSt)
	dy, _ := s.Homogeneous(context.Background(), "ATAX", core.InterDy)
	if dy.ThroughputMBps() < 1.4*st.ThroughputMBps() {
		t.Errorf("InterDy %.1f not well above InterSt %.1f",
			dy.ThroughputMBps(), st.ThroughputMBps())
	}
	// IntraO3 within a modest margin of InterDy (paper: ~2%).
	o3, _ := s.Homogeneous(context.Background(), "ATAX", core.IntraO3)
	if o3.ThroughputMBps() < 0.75*dy.ThroughputMBps() {
		t.Errorf("IntraO3 %.1f too far below InterDy %.1f",
			o3.ThroughputMBps(), dy.ThroughputMBps())
	}
}

func TestEnergyHeadline(t *testing.T) {
	s := NewSuite(testScale)
	simd, err := s.Homogeneous(context.Background(), "ATAX", core.SIMD)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := s.Homogeneous(context.Background(), "ATAX", core.IntraO3)
	if err != nil {
		t.Fatal(err)
	}
	if o3.Energy.Total() >= simd.Energy.Total() {
		t.Errorf("IntraO3 energy %.2fJ not below SIMD %.2fJ",
			o3.Energy.Total(), simd.Energy.Total())
	}
}

func TestHeterogeneousShapes(t *testing.T) {
	s := NewSuite(testScale)
	simd, err := s.Heterogeneous(context.Background(), 1, core.SIMD)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := s.Heterogeneous(context.Background(), 1, core.IntraO3)
	if err != nil {
		t.Fatal(err)
	}
	dy, err := s.Heterogeneous(context.Background(), 1, core.InterDy)
	if err != nil {
		t.Fatal(err)
	}
	if o3.ThroughputMBps() <= simd.ThroughputMBps() {
		t.Error("IntraO3 not above SIMD on MX1")
	}
	if o3.ThroughputMBps() < 0.9*dy.ThroughputMBps() {
		t.Errorf("IntraO3 (%.1f) should be at least competitive with InterDy (%.1f) on mixes",
			o3.ThroughputMBps(), dy.ThroughputMBps())
	}
	if len(simd.CompletionTimes) != 24 {
		t.Errorf("MX1 completions = %d, want 24 instances", len(simd.CompletionTimes))
	}
}

func TestFig15SeriesProduced(t *testing.T) {
	s := NewSuite(testScale * 2)
	res, err := s.Fig15(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"SIMD", "IntraO3"} {
		r := res[name]
		if r == nil || len(r.FUSeries) == 0 || len(r.PowerSeries) == 0 {
			t.Fatalf("%s series missing", name)
		}
	}
	// SIMD's storage phases spike host power well above IntraO3's peaks.
	maxOf := func(v []float64) float64 {
		m := 0.0
		for _, x := range v {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(res["SIMD"].PowerSeries) <= maxOf(res["IntraO3"].PowerSeries) {
		t.Error("SIMD peak power should exceed IntraO3 (host storage stack engaged)")
	}
}

func TestFig16Bigdata(t *testing.T) {
	s := NewSuite(testScale)
	tbl, err := s.Fig16a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, name := range workload.BigdataNames() {
		if !strings.Contains(out, name) {
			t.Errorf("Fig 16a missing %s", name)
		}
	}
	// FlashAbacus dynamic modes beat SIMD on these data-intensive apps.
	simd, _ := s.Bigdata(context.Background(), "bfs", core.SIMD)
	dy, _ := s.Bigdata(context.Background(), "bfs", core.InterDy)
	if dy.ThroughputMBps() <= simd.ThroughputMBps() {
		t.Error("InterDy not above SIMD on bfs")
	}
}

func TestAllFigureTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in short mode")
	}
	s := NewSuite(testScale * 2)
	type gen func() (interface{ String() string }, error)
	figs := map[string]gen{
		"3d":  func() (interface{ String() string }, error) { return s.Fig3d(context.Background()) },
		"3e":  func() (interface{ String() string }, error) { return s.Fig3e(context.Background()) },
		"10a": func() (interface{ String() string }, error) { return s.Fig10a(context.Background()) },
		"10b": func() (interface{ String() string }, error) { return s.Fig10b(context.Background()) },
		"11a": func() (interface{ String() string }, error) { return s.Fig11a(context.Background()) },
		"11b": func() (interface{ String() string }, error) { return s.Fig11b(context.Background()) },
		"12":  func() (interface{ String() string }, error) { return s.Fig12(context.Background()) },
		"13a": func() (interface{ String() string }, error) { return s.Fig13a(context.Background()) },
		"13b": func() (interface{ String() string }, error) { return s.Fig13b(context.Background()) },
		"14a": func() (interface{ String() string }, error) { return s.Fig14a(context.Background()) },
		"14b": func() (interface{ String() string }, error) { return s.Fig14b(context.Background()) },
		"16a": func() (interface{ String() string }, error) { return s.Fig16a(context.Background()) },
		"16b": func() (interface{ String() string }, error) { return s.Fig16b(context.Background()) },
	}
	for name, fn := range figs {
		tbl, err := fn()
		if err != nil {
			t.Fatalf("fig %s: %v", name, err)
		}
		if len(tbl.String()) == 0 {
			t.Errorf("fig %s rendered empty", name)
		}
	}
}
