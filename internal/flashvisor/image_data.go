package flashvisor

import (
	"fmt"

	"repro/internal/flash"
)

// SegmentEntries is the entry count of one copy-on-write mapping-table
// segment — the unit the persistent image codec serializes. Non-nil
// segments always hold exactly this many int32s; a nil segment reads as
// all-zero ("unmapped" under the tables' +1-biased encoding).
const SegmentEntries = cowSegSize

// SegmentCount returns the number of segments backing a mapping table of n
// entries.
func SegmentCount(n int64) int { return int((n + cowSegSize - 1) >> cowSegBits) }

// FTLImageData is the codec-visible flat decomposition of an FTLImage: every
// field an external serializer needs, with the copy-on-write machinery left
// behind. Segment slices are shared with the image, never copied — both
// sides treat them as immutable.
type FTLImageData struct {
	Geo           flash.Geometry
	LogicalGroups int64
	TableSegs     [][]int32 // forward table; len SegmentCount(LogicalGroups), nil = all-zero
	RevSegs       [][]int32 // reverse table; len SegmentCount(Geo.TotalGroups())
	ValidPerSB    []int32
	FreeSBs       [][]flash.SuperBlock // per die row
	UsedSBs       []flash.SuperBlock
	Active        []flash.SuperBlock // per die row
	HasActive     []bool
	Cursor        []int
	AllocRow      int
}

// Data decomposes the image for serialization. Segment slices alias the
// image's frozen segments.
func (img *FTLImage) Data() FTLImageData {
	return FTLImageData{
		Geo:           img.geo,
		LogicalGroups: img.logicalGroups,
		TableSegs:     img.table.segs,
		RevSegs:       img.rev.segs,
		ValidPerSB:    img.validPerSB,
		FreeSBs:       img.freeSBs,
		UsedSBs:       img.usedSBs,
		Active:        img.active,
		HasActive:     img.hasActive,
		Cursor:        img.cursor,
		AllocRow:      img.allocRow,
	}
}

// FTLImageFromData rebuilds an image from its decomposition, adopting (not
// copying) the segment and pool slices. It validates every structural
// invariant a later fork or run would otherwise trust blindly, so a decoder
// feeding it attacker-shaped data gets an error instead of a device that
// panics mid-simulation.
func FTLImageFromData(d FTLImageData) (*FTLImage, error) {
	geo := d.Geo
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	dataGroups := int64(geo.SuperBlocks()) * int64(geo.DataGroupsPerSuperBlock())
	if d.LogicalGroups <= 0 || d.LogicalGroups > dataGroups {
		return nil, fmt.Errorf("flashvisor: image logical groups %d outside (0, %d]", d.LogicalGroups, dataGroups)
	}
	if err := checkSegs("table", d.TableSegs, d.LogicalGroups); err != nil {
		return nil, err
	}
	if err := checkSegs("rev", d.RevSegs, geo.TotalGroups()); err != nil {
		return nil, err
	}
	if len(d.ValidPerSB) != geo.SuperBlocks() {
		return nil, fmt.Errorf("flashvisor: image has %d valid counts, geometry has %d super blocks", len(d.ValidPerSB), geo.SuperBlocks())
	}
	rows := geo.DieRows()
	if len(d.FreeSBs) != rows || len(d.Active) != rows || len(d.HasActive) != rows || len(d.Cursor) != rows {
		return nil, fmt.Errorf("flashvisor: image pool state does not match %d die rows", rows)
	}
	if d.AllocRow < 0 || d.AllocRow >= rows {
		return nil, fmt.Errorf("flashvisor: image alloc row %d outside [0, %d)", d.AllocRow, rows)
	}
	checkSB := func(sb flash.SuperBlock) error {
		if sb < 0 || int(sb) >= geo.SuperBlocks() {
			return fmt.Errorf("flashvisor: image super block %d outside [0, %d)", sb, geo.SuperBlocks())
		}
		return nil
	}
	for _, row := range d.FreeSBs {
		for _, sb := range row {
			if err := checkSB(sb); err != nil {
				return nil, err
			}
		}
	}
	for _, sb := range d.UsedSBs {
		if err := checkSB(sb); err != nil {
			return nil, err
		}
	}
	for r := 0; r < rows; r++ {
		if d.HasActive[r] {
			if err := checkSB(d.Active[r]); err != nil {
				return nil, err
			}
		}
		if d.Cursor[r] < 0 || d.Cursor[r] > geo.GroupsPerSuperBlock() {
			return nil, fmt.Errorf("flashvisor: image cursor %d outside [0, %d]", d.Cursor[r], geo.GroupsPerSuperBlock())
		}
	}
	return &FTLImage{
		geo:           geo,
		table:         cowView{n: d.LogicalGroups, segs: d.TableSegs},
		rev:           cowView{n: geo.TotalGroups(), segs: d.RevSegs},
		validPerSB:    d.ValidPerSB,
		freeSBs:       d.FreeSBs,
		usedSBs:       d.UsedSBs,
		active:        d.Active,
		hasActive:     d.HasActive,
		cursor:        d.Cursor,
		allocRow:      d.AllocRow,
		logicalGroups: d.LogicalGroups,
	}, nil
}

// checkSegs validates a segment directory against its table length: the
// directory must be exactly full-size and every materialized segment must be
// a whole segment, because cow32 indexes by shift/mask without bounds
// re-checks.
func checkSegs(name string, segs [][]int32, n int64) error {
	if len(segs) != SegmentCount(n) {
		return fmt.Errorf("flashvisor: image %s has %d segments, want %d for %d entries", name, len(segs), SegmentCount(n), n)
	}
	for i, seg := range segs {
		if seg != nil && len(seg) != cowSegSize {
			return fmt.Errorf("flashvisor: image %s segment %d has %d entries, want %d", name, i, len(seg), cowSegSize)
		}
	}
	return nil
}
