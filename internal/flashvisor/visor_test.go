package flashvisor

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/flash"
	"repro/internal/flashctrl"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/units"
)

func TestRangeLockSharedReaders(t *testing.T) {
	var l RangeLocks
	g1 := l.Grant(0, 10, 20, LockRead)
	l.Hold(10, 20, LockRead, 1, 100)
	g2 := l.Grant(5, 12, 18, LockRead)
	if g1 != 0 || g2 != 5 {
		t.Errorf("readers delayed each other: %d, %d", g1, g2)
	}
	if l.Conflicts() != 0 {
		t.Errorf("conflicts = %d", l.Conflicts())
	}
}

func TestRangeLockWriterBlocksReader(t *testing.T) {
	var l RangeLocks
	l.Hold(10, 20, LockWrite, 1, 100)
	if g := l.Grant(5, 15, 16, LockRead); g != 100 {
		t.Errorf("reader granted at %d, want 100 (after writer)", g)
	}
	if l.Conflicts() != 1 || l.Waited() != 95 {
		t.Errorf("conflicts=%d waited=%d", l.Conflicts(), l.Waited())
	}
}

func TestRangeLockReaderBlocksWriter(t *testing.T) {
	var l RangeLocks
	l.Hold(10, 20, LockRead, 1, 50)
	if g := l.Grant(0, 0, 30, LockWrite); g != 50 {
		t.Errorf("writer granted at %d, want 50", g)
	}
}

func TestRangeLockDisjointRangesIndependent(t *testing.T) {
	var l RangeLocks
	l.Hold(10, 20, LockWrite, 1, 1000)
	if g := l.Grant(0, 20, 30, LockWrite); g != 0 {
		t.Errorf("adjacent (half-open) range delayed: %d", g)
	}
}

func TestRangeLockExpiredHoldsPrune(t *testing.T) {
	var l RangeLocks
	l.Hold(10, 20, LockWrite, 1, 50)
	if l.Held() != 1 {
		t.Fatal("hold not recorded")
	}
	if g := l.Grant(60, 10, 20, LockWrite); g != 60 {
		t.Errorf("expired hold still blocked: %d", g)
	}
	if l.Held() != 0 {
		t.Errorf("expired hold not pruned: %d", l.Held())
	}
}

func TestRangeLockEagerRelease(t *testing.T) {
	var l RangeLocks
	h := l.Hold(0, 10, LockWrite, 1, 1000)
	h.Release()
	if g := l.Grant(5, 0, 10, LockWrite); g != 5 {
		t.Errorf("released hold still blocked: %d", g)
	}
}

func TestLockModeString(t *testing.T) {
	if LockRead.String() != "read" || LockWrite.String() != "write" {
		t.Error("mode strings wrong")
	}
}

// newVisor builds a Visor over the small geometry; functional toggles
// payload storage.
func newVisor(t *testing.T, functional bool) *Visor {
	t.Helper()
	bb, err := flash.NewBackbone(smallGeo(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	bb.Functional = functional
	ctrl, err := flashctrl.New(flashctrl.DefaultConfig(), bb)
	if err != nil {
		t.Fatal(err)
	}
	ddr, err := mem.New(mem.DDR3LConfig())
	if err != nil {
		t.Fatal(err)
	}
	spad, err := mem.New(mem.ScratchpadConfig())
	if err != nil {
		t.Fatal(err)
	}
	net, err := noc.New(noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(DefaultConfig(), ctrl, ddr, spad, net)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVisorMappingMustFitScratchpad(t *testing.T) {
	bb, _ := flash.NewBackbone(flash.DefaultGeometry(), flash.DefaultTiming())
	ctrl, _ := flashctrl.New(flashctrl.DefaultConfig(), bb)
	ddr, _ := mem.New(mem.DDR3LConfig())
	tiny, _ := mem.New(mem.Config{Name: "tiny", Size: units.KB, BW: units.GBps})
	net, _ := noc.New(noc.DefaultConfig())
	if _, err := New(DefaultConfig(), ctrl, ddr, tiny, net); err == nil {
		t.Error("oversized mapping table accepted")
	}
}

func TestMapReadUnmappedFails(t *testing.T) {
	v := newVisor(t, false)
	if _, _, err := v.MapRead(0, 1, 0, 64*units.KB); err == nil {
		t.Error("read of unmapped space succeeded")
	}
	if v.Stats().UnmappedReads != 1 {
		t.Error("unmapped read not counted")
	}
}

func TestMapReadAfterPopulate(t *testing.T) {
	v := newVisor(t, false)
	size := 4 * v.Geo.GroupSize()
	if err := v.Populate(0, size, nil); err != nil {
		t.Fatal(err)
	}
	done, _, err := v.MapRead(0, 1, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Error("read took no time")
	}
	if v.Stats().ReadGroups != 4 {
		t.Errorf("read groups = %d, want 4", v.Stats().ReadGroups)
	}
	if v.QueueMessages() != 1 {
		t.Errorf("queue messages = %d, want 1", v.QueueMessages())
	}
	if v.CPUBusy() != 4*v.Cfg.PerGroupCost {
		t.Errorf("flashvisor busy = %d", v.CPUBusy())
	}
}

func TestMapReadRejectsBadRanges(t *testing.T) {
	v := newVisor(t, false)
	if _, _, err := v.MapRead(0, 1, 0, 0); err == nil {
		t.Error("zero-size read accepted")
	}
	if _, _, err := v.MapRead(0, 1, 0, v.FTL.LogicalBytes()+1); err == nil {
		t.Error("beyond-space read accepted")
	}
}

func TestMapWriteBuffersInDDR3L(t *testing.T) {
	v := newVisor(t, false)
	size := 2 * v.Geo.GroupSize()
	done, err := v.MapWrite(0, 1, 0, size, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The kernel-visible completion is DDR3L buffering, far faster than
	// the 2.6 ms TLC program that drains behind it.
	if done >= v.ctrl.BB.Tim.ProgramPage {
		t.Errorf("write visible at %s, want before a TLC program completes", units.FormatDuration(done))
	}
	if v.PersistedUntil() < v.ctrl.BB.Tim.ProgramPage {
		t.Error("no background program in flight")
	}
	if v.Stats().WriteGroups != 2 {
		t.Errorf("write groups = %d", v.Stats().WriteGroups)
	}
}

func TestWriteThenReadSameRangeSerializes(t *testing.T) {
	v := newVisor(t, false)
	size := v.Geo.GroupSize()
	wdone, err := v.MapWrite(0, 1, 0, size, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A read of the same range issued during the write must wait for the
	// writer's range lock.
	rdone, _, err := v.MapRead(0, 2, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	if rdone <= wdone {
		t.Errorf("read finished at %d before write lock released at %d", rdone, wdone)
	}
	if v.Lock.Conflicts() == 0 {
		t.Error("no lock conflict recorded")
	}
}

func TestJournalOnRollover(t *testing.T) {
	v := newVisor(t, false)
	if _, err := v.MapWrite(0, 1, 0, v.Geo.GroupSize(), nil); err != nil {
		t.Fatal(err)
	}
	if v.Stats().JournalWrites != int64(v.Geo.MetaPages) {
		t.Errorf("journal writes = %d, want %d (first super block opened)",
			v.Stats().JournalWrites, v.Geo.MetaPages)
	}
}

func TestForegroundReclaimWhenFull(t *testing.T) {
	v := newVisor(t, false)
	// Write the whole logical space twice: the second pass must trigger
	// on-demand reclaims rather than failing.
	total := v.FTL.LogicalBytes()
	if _, err := v.MapWrite(0, 1, 0, total, nil); err != nil {
		t.Fatalf("first fill: %v", err)
	}
	if _, err := v.MapWrite(0, 1, 0, total, nil); err != nil {
		t.Fatalf("overwrite pass: %v", err)
	}
	if v.Stats().FGReclaims == 0 {
		t.Error("no foreground reclaims despite overwrite of full device")
	}
	if v.ctrl.BB.TotalErases() == 0 {
		t.Error("no erases recorded")
	}
	if err := v.FTL.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestFunctionalDataIntegrityAcrossGC(t *testing.T) {
	v := newVisor(t, true)
	gs := v.Geo.GroupSize()
	// Install recognizable data in the first four groups.
	want := make([]byte, 4*gs)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := v.Populate(0, int64(len(want)), want); err != nil {
		t.Fatal(err)
	}
	// Churn the rest of the device to force reclaims that migrate our data.
	churn := v.FTL.LogicalBytes() - int64(len(want))
	for pass := 0; pass < 3; pass++ {
		if _, err := v.MapWrite(0, 9, int64(len(want)), churn, nil); err != nil {
			t.Fatalf("churn pass %d: %v", pass, err)
		}
	}
	if v.Stats().Migrated == 0 {
		t.Fatal("churn did not trigger any migration; test is vacuous")
	}
	got, err := v.ReadBytes(0, int64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("data corrupted across garbage collection")
	}
	if err := v.FTL.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestMapReadReturnsFunctionalData(t *testing.T) {
	v := newVisor(t, true)
	payload := []byte(strings.Repeat("flashabacus!", 100))
	if err := v.Populate(0, int64(len(payload)), payload); err != nil {
		t.Fatal(err)
	}
	_, data, err := v.MapRead(0, 1, 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Error("MapRead returned wrong bytes")
	}
}

func TestGlobalLockAblationSerializesEverything(t *testing.T) {
	v := newVisor(t, false)
	v.Cfg.GlobalLock = true
	size := v.Geo.GroupSize()
	if err := v.Populate(0, 4*size, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := v.MapWrite(0, 1, 2*size, size, nil); err != nil {
		t.Fatal(err)
	}
	// Disjoint read is nevertheless blocked by the device-wide lock.
	if _, _, err := v.MapRead(0, 2, 0, size); err != nil {
		t.Fatal(err)
	}
	if v.Lock.Conflicts() == 0 {
		t.Error("global lock did not serialize disjoint ranges")
	}
}

func TestStartupLatencyDominatedByFirstRead(t *testing.T) {
	v := newVisor(t, false)
	if v.StartupLatency() < v.ctrl.BB.Tim.ReadPage {
		t.Error("startup latency smaller than one page read")
	}
	if v.StartupLatency() > 500*units.Microsecond {
		t.Error("startup latency implausibly large")
	}
}

func TestPopulateRejectsOversize(t *testing.T) {
	v := newVisor(t, false)
	if err := v.Populate(0, v.FTL.LogicalBytes()+int64(v.Geo.GroupSize()), nil); err == nil {
		t.Error("oversized populate accepted")
	}
	if err := v.Populate(0, 0, nil); err == nil {
		t.Error("zero-size populate accepted")
	}
}
