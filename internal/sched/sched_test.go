package sched

import (
	"testing"

	"repro/internal/kdt"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// fakeCtx is a deterministic scheduler harness: dispatching a screen marks
// it running; the test completes screens by hand.
type fakeCtx struct {
	now      sim.Time
	workers  int
	running  map[int]*kernel.Screen
	chain    *kernel.Chain
	dispatch []string // log of "ref@worker"
}

func newFakeCtx(workers int) *fakeCtx {
	return &fakeCtx{workers: workers, running: map[int]*kernel.Screen{}, chain: &kernel.Chain{}}
}

func (c *fakeCtx) Now() sim.Time        { return c.now }
func (c *fakeCtx) Workers() int         { return c.workers }
func (c *fakeCtx) Free(w int) bool      { return c.running[w] == nil }
func (c *fakeCtx) Chain() *kernel.Chain { return c.chain }

func (c *fakeCtx) Dispatch(s *kernel.Screen, w int) {
	if c.running[w] != nil {
		panic("dispatch to busy worker")
	}
	c.chain.MarkRunning(s, w, c.now)
	c.running[w] = s
	c.dispatch = append(c.dispatch, s.Ref())
}

// complete finishes the screen on worker w.
func (c *fakeCtx) complete(w int) kernel.Completion {
	s := c.running[w]
	if s == nil {
		panic("no screen on worker")
	}
	c.now += 10
	delete(c.running, w)
	return c.chain.MarkDone(s, c.now)
}

func (c *fakeCtx) runningCount() int { return len(c.running) }

// addApp builds an app: kernelShapes[k][m] = screens in microblock m.
func (c *fakeCtx) addApp(id int, kernelShapes [][]int) {
	a := &kernel.App{Name: "app", ID: id}
	for ki, shape := range kernelShapes {
		k := &kernel.Kernel{Name: "k", ID: ki, App: id}
		for mi, n := range shape {
			mb := &kernel.Microblock{}
			for si := 0; si < n; si++ {
				mb.Screens = append(mb.Screens, &kernel.Screen{
					Ops: []kdt.Op{{Kind: kdt.OpCompute, Instr: 1}},
					App: id, Kernel: ki, MB: mi, Idx: si,
				})
			}
			k.MBs = append(k.MBs, mb)
		}
		a.Kernels = append(a.Kernels, k)
	}
	c.chain.AddApp(a, c.now)
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("bogus"); err == nil {
		t.Error("unknown scheduler accepted")
	}
	for _, n := range []string{"InterSt", "InterDy", "IntraIo", "IntraO3", "SIMD"} {
		s, err := New(n)
		if err != nil || s.Name() != n {
			t.Errorf("New(%q) = %v, %v", n, s, err)
		}
	}
}

func TestInterStBindsAppsToWorkers(t *testing.T) {
	ctx := newFakeCtx(4)
	ctx.addApp(0, [][]int{{1}, {1}}) // two kernels
	ctx.addApp(2, [][]int{{1}})
	s, _ := New("InterSt")
	s.Kick(ctx)
	// App0 on worker 0, App2 on worker 2 — concurrently.
	if ctx.runningCount() != 2 {
		t.Fatalf("running = %d, want 2", ctx.runningCount())
	}
	if ctx.running[0] == nil || ctx.running[2] == nil {
		t.Fatalf("wrong workers: %v", ctx.dispatch)
	}
	// App0's second kernel waits for the first, even though workers idle.
	s.Kick(ctx)
	if ctx.runningCount() != 2 {
		t.Error("static scheduler used a foreign worker")
	}
	ctx.complete(0)
	s.Kick(ctx)
	if ctx.running[0] == nil || ctx.running[0].Kernel != 1 {
		t.Error("app0's second kernel did not follow on worker 0")
	}
}

func TestInterStSerializesWholeAppOnOneWorker(t *testing.T) {
	// A single app (the homogeneous-workload shape) keeps one LWP busy and
	// leaves the rest idle — the poor utilization of Fig. 5b.
	ctx := newFakeCtx(6)
	ctx.addApp(0, [][]int{{2, 1}, {1}})
	s, _ := New("InterSt")
	s.Kick(ctx)
	if ctx.runningCount() != 1 {
		t.Fatalf("static scheduler spread a single app: %d running", ctx.runningCount())
	}
	// Even a parallel microblock executes serially on the bound LWP.
	ctx.complete(0)
	s.Kick(ctx)
	if ctx.runningCount() != 1 || ctx.running[0].Idx != 1 {
		t.Error("second screen of mb0 should run next on worker 0")
	}
}

func TestInterDySpreadsKernels(t *testing.T) {
	ctx := newFakeCtx(4)
	ctx.addApp(0, [][]int{{1}, {1}}) // k0, k1
	ctx.addApp(1, [][]int{{1}, {1}}) // k2, k3
	s, _ := New("InterDy")
	s.Kick(ctx)
	// Four kernels, four workers: all running at once (Fig. 5c).
	if ctx.runningCount() != 4 {
		t.Fatalf("running = %d, want 4", ctx.runningCount())
	}
	seen := map[int]bool{}
	for _, scr := range ctx.running {
		seen[scr.App*10+scr.Kernel] = true
	}
	if len(seen) != 4 {
		t.Error("same kernel dispatched to two workers")
	}
}

func TestInterDyKernelStaysOnWorker(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.addApp(0, [][]int{{1, 1, 1}}) // one kernel, three serial microblocks
	s, _ := New("InterDy")
	s.Kick(ctx)
	if ctx.runningCount() != 1 {
		t.Fatal("kernel should occupy one worker")
	}
	w := ctx.running[0].LWP
	ctx.complete(w)
	s.Kick(ctx)
	if ctx.running[w] == nil || ctx.running[w].MB != 1 {
		t.Error("kernel did not continue on its worker")
	}
}

func TestIntraIoSplitsScreensButStaysInOrder(t *testing.T) {
	ctx := newFakeCtx(4)
	ctx.addApp(0, [][]int{{2}, {2}}) // k0 (2 screens), then k1
	s, _ := New("IntraIo")
	s.Kick(ctx)
	// k0's two screens run concurrently; k1 must NOT start (in-order).
	if ctx.runningCount() != 2 {
		t.Fatalf("running = %d, want 2", ctx.runningCount())
	}
	for _, scr := range ctx.running {
		if scr.Kernel != 0 {
			t.Error("in-order scheduler started a later kernel")
		}
	}
}

func TestIntraO3BorrowsAcrossKernels(t *testing.T) {
	ctx := newFakeCtx(4)
	ctx.addApp(0, [][]int{{2}, {2}})
	s, _ := New("IntraO3")
	s.Kick(ctx)
	// k0's two screens plus k1's first microblock screens: 4 workers busy.
	if ctx.runningCount() != 4 {
		t.Fatalf("running = %d, want 4 (out-of-order borrow)", ctx.runningCount())
	}
}

func TestIntraO3RespectsMicroblockDependency(t *testing.T) {
	ctx := newFakeCtx(8)
	ctx.addApp(0, [][]int{{1, 4}})
	s, _ := New("IntraO3")
	s.Kick(ctx)
	if ctx.runningCount() != 1 {
		t.Fatal("mb1 screens dispatched before mb0 completed")
	}
	ctx.complete(ctx.running[0].LWP)
	s.Kick(ctx)
	if ctx.runningCount() != 4 {
		t.Errorf("after mb0: running = %d, want 4", ctx.runningCount())
	}
}

func TestSIMDOneKernelAtATime(t *testing.T) {
	ctx := newFakeCtx(8)
	ctx.addApp(0, [][]int{{4}})
	ctx.addApp(1, [][]int{{4}})
	s, _ := New("SIMD")
	s.Kick(ctx)
	if ctx.runningCount() != 4 {
		t.Fatalf("running = %d, want 4", ctx.runningCount())
	}
	for _, scr := range ctx.running {
		if scr.App != 0 {
			t.Error("SIMD started the second instance early")
		}
	}
	// Finish all four; the next instance may then start.
	for w := 0; w < 8; w++ {
		if ctx.running[w] != nil {
			ctx.complete(w)
		}
	}
	s.Kick(ctx)
	if ctx.runningCount() != 4 {
		t.Fatalf("second instance: running = %d, want 4", ctx.runningCount())
	}
	for _, scr := range ctx.running {
		if scr.App != 1 {
			t.Error("wrong instance running")
		}
	}
}

func TestSIMDSerialMicroblockUsesOneWorker(t *testing.T) {
	ctx := newFakeCtx(8)
	ctx.addApp(0, [][]int{{1, 8}})
	s, _ := New("SIMD")
	s.Kick(ctx)
	if ctx.runningCount() != 1 {
		t.Errorf("serial microblock used %d workers", ctx.runningCount())
	}
}

func TestAllSchedulersDrainEverything(t *testing.T) {
	// Property: repeatedly kicking and completing must finish every
	// workload shape without deadlock, for every scheduler.
	shapes := [][][]int{
		{{1}},
		{{3, 1, 2}},
		{{1}, {2}, {1, 1}},
	}
	for _, name := range []string{"InterSt", "InterDy", "IntraIo", "IntraO3", "SIMD"} {
		s, _ := New(name)
		ctx := newFakeCtx(3)
		for i, shape := range shapes {
			ctx.addApp(i, shape)
		}
		for step := 0; step < 1000 && !ctx.chain.AllDone(); step++ {
			s.Kick(ctx)
			if ctx.runningCount() == 0 {
				t.Fatalf("%s: deadlock with work remaining", name)
			}
			// Complete the lowest busy worker.
			for w := 0; w < ctx.workers; w++ {
				if ctx.running[w] != nil {
					ctx.complete(w)
					break
				}
			}
		}
		if !ctx.chain.AllDone() {
			t.Errorf("%s: did not drain", name)
		}
	}
}
