// Package sim implements the discrete-event core of the FlashAbacus
// simulator: an event engine plus two analytic contention primitives, the
// serially-reusable Resource and the bandwidth-limited Pipe.
//
// The engine is single-goroutine and deterministic: events scheduled for the
// same timestamp fire in scheduling order. Hardware models reserve time on
// Resources and Pipes analytically — a reservation immediately returns the
// interval the work will occupy — so fine-grained contention (flash channels,
// the Flashvisor LWP, the host storage stack) never needs callback chains.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Time and Duration re-export the shared simulated-time types.
type (
	Time     = units.Time
	Duration = units.Duration
)

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation loop.
// The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	count  uint64 // total events executed
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.count }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule enqueues fn to run at the absolute time at. Scheduling in the
// past is a model bug, so it panics rather than silently reordering time.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// After enqueues fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// Step executes the earliest pending event and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.count++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline if it has not already passed it.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
