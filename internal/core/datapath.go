package core

import (
	"repro/internal/flashvisor"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/units"
)

// dataPath abstracts where kernel data sections live: the integrated flash
// backbone behind Flashvisor, or the conventional external SSD behind the
// host storage stack.
type dataPath interface {
	// Read makes [addr, addr+bytes) available in accelerator DRAM,
	// returning the completion time and (functional runs) the bytes. dst,
	// when non-nil with sufficient capacity, may be reused as the payload
	// destination so per-screen section buffers recycle instead of
	// reallocating.
	Read(at sim.Time, owner int, addr, bytes int64, dst []byte) (sim.Time, []byte, error)
	// Write persists a data section. data may be nil for timing-only runs.
	Write(at sim.Time, owner int, addr, bytes int64, data []byte) (sim.Time, error)
	// Populate installs input data during experiment setup, untimed.
	Populate(addr, bytes int64, data []byte) error
	// Startup is the pipeline-fill latency before streamed data flows.
	Startup() units.Duration
	// Overlap reports whether reads may overlap compute.
	Overlap() bool
	// Drain returns when background device work finishes.
	Drain() sim.Time
}

// visorPath routes data through Flashvisor (all FlashAbacus systems).
type visorPath struct {
	v       *flashvisor.Visor
	overlap bool
}

func (p *visorPath) Read(at sim.Time, owner int, addr, bytes int64, dst []byte) (sim.Time, []byte, error) {
	return p.v.MapReadInto(at, owner, addr, bytes, dst)
}

func (p *visorPath) Write(at sim.Time, owner int, addr, bytes int64, data []byte) (sim.Time, error) {
	return p.v.MapWrite(at, owner, addr, bytes, data)
}

func (p *visorPath) Populate(addr, bytes int64, data []byte) error {
	return p.v.Populate(addr, bytes, data)
}

func (p *visorPath) Startup() units.Duration { return p.v.StartupLatency() }
func (p *visorPath) Overlap() bool           { return p.overlap }
func (p *visorPath) Drain() sim.Time         { return p.v.PersistedUntil() }

// hostPath routes data through the host storage stack (SIMD baseline).
type hostPath struct {
	h *host.Host
}

func (p *hostPath) Read(at sim.Time, owner int, addr, bytes int64, dst []byte) (sim.Time, []byte, error) {
	done, data := p.h.FetchToAccel(at, addr, bytes)
	return done, data, nil
}

func (p *hostPath) Write(at sim.Time, owner int, addr, bytes int64, data []byte) (sim.Time, error) {
	return p.h.StoreFromAccel(at, addr, bytes, data), nil
}

func (p *hostPath) Populate(addr, bytes int64, data []byte) error {
	return p.h.Populate(addr, bytes, data)
}

func (p *hostPath) Startup() units.Duration { return 0 }
func (p *hostPath) Overlap() bool           { return false }
func (p *hostPath) Drain() sim.Time         { return 0 }
