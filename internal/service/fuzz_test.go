// Fuzzing the request decoder: whatever bytes arrive at POST /v1/jobs,
// decoding must never panic, and any request that validates must
// survive a marshal/decode/validate round trip unchanged — the
// normalized form is a fixed point.
package service

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func FuzzJobRequest(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"experiment":"fig10a","scale":256}`,
		`{"experiment":"all","scale":64,"devices":8,"topology":true}`,
		`{"experiment":"faults","fault_plan":"cardloss","timeout_ms":5000,"client":"fuzz"}`,
		`{"fault_plan":"detect 100us\ncard 1 death 2ms","fault_name":"inline"}`,
		`{"experiment":"nope"}`,
		`{"scale":-1}`,
		`{"experiment":"t1"} trailing`,
		`{"unknown":"field"}`,
		`[1,2,3]`,
		`"just a string"`,
		`{`,
		``,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeJobRequest(bytes.NewReader(data))
		if err != nil {
			return // rejected bytes just need to not panic
		}
		plan, err := req.Normalize()
		if err != nil {
			return
		}
		// A validated request is normalized: re-encoding and re-decoding
		// it must reproduce the same request and the same plan.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal normalized request: %v", err)
		}
		req2, err := DecodeJobRequest(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-decode %s: %v", enc, err)
		}
		plan2, err := req2.Normalize()
		if err != nil {
			t.Fatalf("re-validate %s: %v", enc, err)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Fatalf("round trip changed request: %+v != %+v", req, req2)
		}
		if (plan == nil) != (plan2 == nil) {
			t.Fatalf("round trip changed plan presence: %v != %v", plan, plan2)
		}
		if plan != nil && !reflect.DeepEqual(plan, plan2) {
			t.Fatalf("round trip changed plan: %+v != %+v", plan, plan2)
		}
	})
}
