package flashvisor

// cow32 is a sparse, copy-on-write int32 array: the FTL's forward and
// reverse mapping tables. Storage is segmented; a nil segment reads as
// zeros, which matches the mapping tables' +1-biased encoding where zero
// means "unmapped" — a freshly formatted table allocates no segments at
// all, so device format is O(segments) pointers instead of O(capacity)
// memory.
//
// Snapshot freezes the current segments into an immutable view that a
// forked table shares: both sides drop ownership, and the first write to a
// shared segment copies just that segment (16 KB) into private storage.
// Forks of forks flatten naturally — a snapshot is always a flat segment
// list, never a chain.
type cow32 struct {
	n     int64     // logical length
	segs  [][]int32 // nil segment == all zero
	owned []bool    // owned[i]: segs[i] is private and writable
}

// cowSegBits sizes segments at 4096 entries (16 KB): small enough that a
// fork touching a handful of groups copies kilobytes, large enough that the
// segment directory for the 2 MB full-geometry table is 128 pointers.
const (
	cowSegBits = 12
	cowSegSize = 1 << cowSegBits
	cowSegMask = cowSegSize - 1
)

// newCow32 returns an all-zero array of length n.
func newCow32(n int64) cow32 {
	nsegs := (n + cowSegSize - 1) >> cowSegBits
	return cow32{n: n, segs: make([][]int32, nsegs), owned: make([]bool, nsegs)}
}

// at reads index i.
func (c *cow32) at(i int64) int32 {
	seg := c.segs[i>>cowSegBits]
	if seg == nil {
		return 0
	}
	return seg[i&cowSegMask]
}

// set writes index i, materializing or privatizing its segment first.
func (c *cow32) set(i int64, v int32) {
	si := i >> cowSegBits
	if !c.owned[si] {
		seg := make([]int32, cowSegSize)
		copy(seg, c.segs[si])
		c.segs[si] = seg
		c.owned[si] = true
	}
	c.segs[si][i&cowSegMask] = v
}

// snapshot freezes the array: every segment becomes shared (future writes
// on this side copy first) and the returned view aliases the same frozen
// segments.
func (c *cow32) snapshot() cowView {
	for i := range c.owned {
		c.owned[i] = false
	}
	segs := make([][]int32, len(c.segs))
	copy(segs, c.segs)
	return cowView{n: c.n, segs: segs}
}

// cowView is an immutable snapshot of a cow32.
type cowView struct {
	n    int64
	segs [][]int32
}

// fork builds a writable copy-on-write array over the frozen view.
func (v cowView) fork() cow32 {
	segs := make([][]int32, len(v.segs))
	copy(segs, v.segs)
	return cow32{n: v.n, segs: segs, owned: make([]bool, len(v.segs))}
}
