// Crash-safety tests: journal replay on boot, idempotent resubmission,
// panic isolation, the stuck-job watchdog, the journal degradation
// breaker, and the client's retry/resume behavior. In-package so they
// can drive the gate seam and hand-write journals.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
)

// journalServer starts a Server journaling under dir and returns a
// client plus a shutdown func (closing the server, listener, and
// journal) so tests can stop one incarnation and boot the next.
func journalServer(t *testing.T, dir string, cfg Config) (*Client, *Server, func()) {
	t.Helper()
	jl, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = jl
	s := New(cfg)
	hs := httptest.NewServer(s)
	var once atomic.Bool
	shutdown := func() {
		if !once.CompareAndSwap(false, true) {
			return
		}
		s.Close()
		hs.Close()
		jl.Close()
	}
	t.Cleanup(shutdown)
	return &Client{BaseURL: hs.URL, HTTPClient: hs.Client()}, s, shutdown
}

// TestJournalRecoveryServesCompletedResults: results completed before a
// restart are served from the journal by the next incarnation, byte for
// byte, without re-running anything; ids keep counting where the
// previous life stopped.
func TestJournalRecoveryServesCompletedResults(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	c1, _, shutdown := journalServer(t, dir, Config{Workers: 1})
	st, err := c1.Submit(ctx, JobRequest{Experiment: "t1", Client: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	out1, err := c1.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(out1) == 0 {
		t.Fatal("t1 rendered no bytes")
	}
	shutdown()

	c2, _, _ := journalServer(t, dir, Config{Workers: 1})
	got, err := c2.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("recovered result: %v", err)
	}
	if !bytes.Equal(got, out1) {
		t.Fatalf("recovered result differs: %d bytes vs %d", len(got), len(out1))
	}
	st2, err := c2.Status(ctx, st.ID)
	if err != nil || st2.State != StateDone {
		t.Fatalf("recovered job state = %v, %v; want done", st2.State, err)
	}
	// Fresh ids continue past the recovered ones.
	stNew, err := c2.Submit(ctx, JobRequest{Experiment: "t1", Client: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if stNew.ID <= st.ID {
		t.Fatalf("post-recovery id %s does not continue past recovered %s", stNew.ID, st.ID)
	}
	m, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"abacusd_journal_enabled 1", "abacusd_journal_replayed_records_total"} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJournalRecoveryReenqueuesInterruptedJobs: a hand-written journal
// holding one finished job and one job that never reached a terminal
// state (the crash) boots into a server that serves the first from the
// journal and runs the second to completion — with output identical to
// a fresh submit of the same request. This is the kill-and-resume
// invariant at the package level; cmd/abacusd's crash harness proves it
// against a real SIGKILLed process.
func TestJournalRecoveryReenqueuesInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	jl, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	reqBytes := []byte(`{"experiment":"t1","scale":16,"devices":1,"client":"alice"}`)
	for _, r := range []journal.Record{
		{Kind: journal.Accepted, ID: "j000001", Client: "alice", Request: reqBytes, UnixMilli: 1},
		{Kind: journal.Done, ID: "j000001", Client: "alice", Output: []byte("journaled bytes\n"), UnixMilli: 2},
		{Kind: journal.Accepted, ID: "j000002", Client: "alice", Request: reqBytes, UnixMilli: 3},
		{Kind: journal.Dispatched, ID: "j000002", Client: "alice", UnixMilli: 4},
		// ...crash: no terminal record for j000002.
	} {
		if err := jl.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	jl.Close()

	c, _, _ := journalServer(t, dir, Config{Workers: 1})
	got1, err := c.Result(ctx, "j000001")
	if err != nil || string(got1) != "journaled bytes\n" {
		t.Fatalf("journaled result = %q, %v", got1, err)
	}
	got2, err := c.Result(ctx, "j000002") // blocks until the re-run finishes
	if err != nil {
		t.Fatalf("re-enqueued job: %v", err)
	}
	st, err := c.Submit(ctx, JobRequest{Experiment: "t1", Client: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatalf("re-run output differs from a fresh render: %d bytes vs %d", len(got2), len(want))
	}
	m, _ := c.Metrics(ctx)
	if !strings.Contains(m, "abacusd_jobs_recovered_total 1") {
		t.Errorf("metrics missing abacusd_jobs_recovered_total 1:\n%s", grepMetrics(m, "recovered"))
	}
}

// TestDedupeKeyIdempotentAcrossRestart: a resubmit with the same dedupe
// key returns the existing job (200, same id) instead of running the
// work twice — including after a restart, because the key is journaled.
func TestDedupeKeyIdempotentAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := JobRequest{Experiment: "t1", Client: "alice", DedupeKey: "submit-42"}

	c1, _, shutdown := journalServer(t, dir, Config{Workers: 1})
	st, err := c1.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Result(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	dup, err := c1.Submit(ctx, req)
	if err != nil {
		t.Fatalf("duplicate submit: %v", err)
	}
	if dup.ID != st.ID {
		t.Fatalf("duplicate submit created %s, want existing %s", dup.ID, st.ID)
	}
	m, _ := c1.Metrics(ctx)
	if !strings.Contains(m, `abacusd_jobs_total{event="deduped"} 1`) {
		t.Errorf("metrics missing deduped event:\n%s", grepMetrics(m, "jobs_total"))
	}
	shutdown()

	c2, _, _ := journalServer(t, dir, Config{Workers: 1})
	dup2, err := c2.Submit(ctx, req)
	if err != nil {
		t.Fatalf("post-restart duplicate submit: %v", err)
	}
	if dup2.ID != st.ID {
		t.Fatalf("restart lost the dedupe key: resubmit created %s, want %s", dup2.ID, st.ID)
	}
}

// TestChaosPanicFailsOnlyThatJob: an injected in-cell panic fails
// exactly the panicking job — siblings complete, the daemon keeps
// serving, and the panic is visible in the job error and the metrics.
func TestChaosPanicFailsOnlyThatJob(t *testing.T) {
	c, _ := testServer(t, Config{Workers: 1,
		Chaos: &Chaos{PanicExperiment: "t1", PanicCount: 1}})
	ctx := context.Background()

	victim := submitT1(t, c, "alice")
	var rest []JobStatus
	for i := 0; i < 3; i++ {
		rest = append(rest, submitT1(t, c, fmt.Sprintf("c%d", i)))
	}
	st := waitState(t, c, victim.ID, StateFailed)
	if !strings.Contains(st.Error, "panicked") {
		t.Fatalf("victim error = %q, want a panic message", st.Error)
	}
	for _, r := range rest {
		if got := waitState(t, c, r.ID, StateDone, StateFailed); got.State != StateDone {
			t.Fatalf("sibling %s reached %s (%s), want done", r.ID, got.State, got.Error)
		}
	}
	m, _ := c.Metrics(ctx)
	if !strings.Contains(m, "abacusd_jobs_panicked_total 1") {
		t.Errorf("metrics missing panic counter:\n%s", grepMetrics(m, "panicked"))
	}
}

// TestWatchdogAbandonsWedgedRender: a render that ignores its cancelled
// context past WatchdogGrace is abandoned — the job fails with the
// watchdog's error, the worker is freed for the next job, and the kill
// is counted.
func TestWatchdogAbandonsWedgedRender(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	gate := func(ctx context.Context, j *job) {
		if j.client == "wedge" {
			<-hang // ignores ctx: a truly stuck render
		}
	}
	c, _ := testServer(t, Config{Workers: 1, WatchdogGrace: 50 * time.Millisecond, gate: gate})
	ctx := context.Background()

	st, err := c.Submit(ctx, JobRequest{Experiment: "t1", Client: "wedge", TimeoutMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, c, st.ID, StateFailed)
	if !strings.Contains(got.Error, "watchdog") {
		t.Fatalf("wedged job error = %q, want a watchdog message", got.Error)
	}
	// The worker must be free again: a normal job completes.
	next := submitT1(t, c, "alice")
	waitState(t, c, next.ID, StateDone)
	m, _ := c.Metrics(ctx)
	if !strings.Contains(m, "abacusd_watchdog_kills_total 1") {
		t.Errorf("metrics missing watchdog counter:\n%s", grepMetrics(m, "watchdog"))
	}
}

// TestJournalBreakerDegradesToMemoryOnly: persistent journal write
// failures trip the breaker after journalFailureBudget consecutive
// errors — jobs keep flowing, and the degradation is visible in
// /metrics rather than in job latency or errors.
func TestJournalBreakerDegradesToMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c, _, _ := journalServer(t, dir, Config{Workers: 1,
		Chaos: &Chaos{JournalFailAfter: 1}}) // every append fails

	var last JobStatus
	for i := 0; i < journalFailureBudget+2; i++ {
		last = submitT1(t, c, "alice")
		waitState(t, c, last.ID, StateDone)
	}
	if _, err := c.Result(ctx, last.ID); err != nil {
		t.Fatalf("job flow broken by journal failures: %v", err)
	}
	m, _ := c.Metrics(ctx)
	if !strings.Contains(m, "abacusd_journal_degraded 1") {
		t.Errorf("breaker did not degrade:\n%s", grepMetrics(m, "journal"))
	}
}

// TestMetricsScrapeResilienceNames asserts every resilience metric name
// is present in a scrape of a journal-backed daemon, so a renamed or
// dropped counter fails here instead of silently breaking dashboards.
func TestMetricsScrapeResilienceNames(t *testing.T) {
	c, _, _ := journalServer(t, t.TempDir(), Config{Workers: 1})
	st := submitT1(t, c, "alice")
	waitState(t, c, st.ID, StateDone)
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"abacusd_jobs_recovered_total",
		"abacusd_jobs_panicked_total",
		"abacusd_watchdog_kills_total",
		"abacusd_journal_enabled 1",
		"abacusd_journal_degraded 0",
		"abacusd_journal_appends_total",
		"abacusd_journal_append_errors_total",
		"abacusd_journal_fsyncs_total",
		"abacusd_journal_rotations_total",
		"abacusd_journal_compactions_total",
		"abacusd_journal_replayed_records_total",
		"abacusd_journal_truncated_bytes_total",
		"abacusd_journal_segments",
		"abacusd_journal_bytes",
	} {
		if !strings.Contains(m, name) {
			t.Errorf("scrape missing %q", name)
		}
	}
}

// TestStreamOffset: ?offset=N resumes a stream mid-output, a lying
// offset clamps instead of panicking, and a negative offset is a 400.
func TestStreamOffset(t *testing.T) {
	c, _ := testServer(t, Config{Workers: 1})
	ctx := context.Background()
	st := submitT1(t, c, "alice")
	full, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 8 {
		t.Fatalf("t1 output too small to split: %d bytes", len(full))
	}
	get := func(query string) (*http.Response, []byte) {
		t.Helper()
		resp, err := c.http().Get(c.url("/v1/jobs/" + st.ID + "/stream" + query))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}
	off := len(full) / 2
	resp, b := get(fmt.Sprintf("?offset=%d", off))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(b, full[off:]) {
		t.Fatalf("offset resume: code %d, %d bytes, want suffix of %d", resp.StatusCode, len(b), len(full)-off)
	}
	if state := resp.Trailer.Get("X-Abacus-Job-State"); state != string(StateDone) {
		t.Fatalf("resumed stream trailer state %q", state)
	}
	resp, b = get(fmt.Sprintf("?offset=%d", len(full)+1000))
	if resp.StatusCode != http.StatusOK || len(b) != 0 {
		t.Fatalf("past-the-end offset: code %d, %d bytes, want empty OK", resp.StatusCode, len(b))
	}
	resp, _ = get("?offset=-1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative offset: code %d, want 400", resp.StatusCode)
	}
}

// grepMetrics filters a scrape to the lines mentioning substr, for
// readable failures.
func grepMetrics(m, substr string) string {
	var out []string
	for _, line := range strings.Split(m, "\n") {
		if strings.Contains(line, substr) && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// flakyTransport fails the first failures round-trips with a transport
// error, then delegates — the shape of a daemon restarting mid-request.
type flakyTransport struct {
	next     http.RoundTripper
	failures int32
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if atomic.AddInt32(&f.failures, -1) >= 0 {
		return nil, errors.New("connection refused (injected)")
	}
	return f.next.RoundTrip(r)
}

// TestClientSubmitRetriesShed: a shed submit (429) is retried with
// backoff until accepted; the Retry-After hint is honored as the floor.
func TestClientSubmitRetriesShed(t *testing.T) {
	var calls int32
	backend, _ := testServer(t, Config{Workers: 1})
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && atomic.AddInt32(&calls, 1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeError(w, http.StatusTooManyRequests, "queue full (injected)")
			return
		}
		r2, _ := http.NewRequestWithContext(r.Context(), r.Method, backend.url(r.URL.Path), r.Body)
		resp, err := backend.http().Do(r2)
		if err != nil {
			writeError(w, http.StatusBadGateway, "%v", err)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer proxy.Close()

	c := &Client{BaseURL: proxy.URL, MaxRetries: 3,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		rng: func() float64 { return 1 }}
	st, err := c.Submit(context.Background(), JobRequest{Experiment: "t1", Client: "alice"})
	if err != nil {
		t.Fatalf("submit through two sheds: %v", err)
	}
	if st.ID == "" || atomic.LoadInt32(&calls) != 3 {
		t.Fatalf("submit made %d attempts (id %q), want 3", calls, st.ID)
	}
}

// TestClientSubmitTransportRetryNeedsDedupeKey: a transport error may
// have lost the response to an accepted submit, so the client resends
// only when the request carries a dedupe key; without one it fails fast
// rather than risk double-running the job.
func TestClientSubmitTransportRetryNeedsDedupeKey(t *testing.T) {
	backend, _ := testServer(t, Config{Workers: 1})
	ctx := context.Background()
	mk := func(failures int32) *Client {
		return &Client{BaseURL: backend.BaseURL,
			HTTPClient: &http.Client{Transport: &flakyTransport{next: backend.http().Transport, failures: failures}},
			MaxRetries: 3, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
			rng: func() float64 { return 1 }}
	}
	if _, err := mk(1).Submit(ctx, JobRequest{Experiment: "t1", Client: "a"}); err == nil {
		t.Fatal("keyless submit retried through a transport error")
	}
	st, err := mk(1).Submit(ctx, JobRequest{Experiment: "t1", Client: "a", DedupeKey: "k-1"})
	if err != nil {
		t.Fatalf("keyed submit did not retry: %v", err)
	}
	if st.ID == "" {
		t.Fatal("keyed submit returned no job")
	}
	// And the keyed retry is exactly-once: the same key resubmitted
	// returns the same job.
	again, err := mk(0).Submit(ctx, JobRequest{Experiment: "t1", Client: "a", DedupeKey: "k-1"})
	if err != nil || again.ID != st.ID {
		t.Fatalf("dedupe after retry: got %s, %v; want %s", again.ID, err, st.ID)
	}
}

// TestClientStreamResumesAfterConnectionLoss: a stream cut mid-body is
// resumed from the byte offset already delivered, and the caller still
// receives every byte exactly once.
func TestClientStreamResumesAfterConnectionLoss(t *testing.T) {
	backend, _ := testServer(t, Config{Workers: 1})
	ctx := context.Background()
	st := submitT1(t, backend, "alice")
	full, err := backend.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var offsets []string
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/stream") {
			mu.Lock()
			offsets = append(offsets, r.URL.Query().Get("offset"))
			first := len(offsets) == 1
			mu.Unlock()
			if first {
				// First attempt: half the bytes on the wire, then a dead
				// connection.
				w.Write(full[:len(full)/2])
				w.(http.Flusher).Flush()
				panic(http.ErrAbortHandler)
			}
		}
		r2, _ := http.NewRequestWithContext(r.Context(), r.Method, backend.url(r.URL.Path)+"?"+r.URL.RawQuery, r.Body)
		resp, err := backend.http().Do(r2)
		if err != nil {
			writeError(w, http.StatusBadGateway, "%v", err)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Trailer", "X-Abacus-Job-State, X-Abacus-Job-Error")
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		w.Header().Set("X-Abacus-Job-State", resp.Trailer.Get("X-Abacus-Job-State"))
		w.Header().Set("X-Abacus-Job-Error", resp.Trailer.Get("X-Abacus-Job-Error"))
	}))
	defer proxy.Close()

	c := &Client{BaseURL: proxy.URL, MaxRetries: 2,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		rng: func() float64 { return 1 }}
	var got bytes.Buffer
	state, err := c.Stream(ctx, st.ID, &got)
	if err != nil {
		t.Fatalf("resumed stream: %v", err)
	}
	if state != StateDone {
		t.Fatalf("resumed stream state %s", state)
	}
	if !bytes.Equal(got.Bytes(), full) {
		t.Fatalf("resumed stream delivered %d bytes, want %d", got.Len(), len(full))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(offsets) != 2 || offsets[0] != "" || offsets[1] != fmt.Sprint(len(full)/2) {
		t.Fatalf("stream offsets = %v, want [\"\" %d]", offsets, len(full)/2)
	}
}

// TestParseChaos covers the spec grammar and its rejects.
func TestParseChaos(t *testing.T) {
	ch, err := ParseChaos("kill-after=8+4,torn-tail,panic=t1:2,journal-fail-after=3,journal-slow=5ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if ch.Seed != 7 || ch.KillAfterAppends != 8 || ch.KillSpread != 4 || !ch.TornTail ||
		ch.PanicExperiment != "t1" || ch.PanicCount != 2 ||
		ch.JournalFailAfter != 3 || ch.JournalSlow != 5*time.Millisecond {
		t.Fatalf("ParseChaos = %+v", ch)
	}
	// A bare panic=EXP defaults to one panic.
	if ch, err = ParseChaos("panic=t2"); err != nil || ch.PanicCount != 1 {
		t.Fatalf("panic=t2 -> count %d, %v; want 1", ch.PanicCount, err)
	}
	for _, bad := range []string{"kill-after=x", "bogus", "panic=", "journal-slow=fast", "kill-after=1+"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}
