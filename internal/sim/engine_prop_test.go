package sim

import (
	"math/rand"
	"testing"
)

// popOrderModel replays a schedule against the documented contract: events
// fire in (at, seq) order, where seq is global scheduling order.
type popRecord struct {
	at  Time
	seq int // order the event was scheduled in
}

// TestEngineHeapPropertyRandom drives the 4-ary heap with randomized
// workloads — duplicate timestamps, same-time bursts, and events scheduled
// from inside running events — and asserts every pop respects (at, seq)
// order. This is the ordering contract the container/heap implementation
// guaranteed and every hardware model depends on.
func TestEngineHeapPropertyRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		var got []popRecord
		seq := 0

		// schedule registers an event that records itself when it fires and,
		// with some probability, schedules more events at or after now —
		// including bursts at exactly the same timestamp.
		var schedule func(at Time, depth int)
		schedule = func(at Time, depth int) {
			mySeq := seq
			seq++
			e.Schedule(at, func() {
				got = append(got, popRecord{at: e.Now(), seq: mySeq})
				if depth > 0 && rng.Intn(3) == 0 {
					// Schedule-during-step: children land at now or later.
					n := 1 + rng.Intn(3)
					for i := 0; i < n; i++ {
						schedule(e.Now()+Time(rng.Intn(5)), depth-1)
					}
				}
			})
		}

		for i := 0; i < 200; i++ {
			at := Time(rng.Intn(40)) // few distinct times → heavy same-time bursts
			if rng.Intn(4) == 0 {
				at = Time(rng.Intn(1000))
			}
			schedule(at, 2)
		}
		e.Run()

		if len(got) != seq {
			t.Fatalf("seed %d: ran %d events, scheduled %d", seed, len(got), seq)
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.at > b.at {
				t.Fatalf("seed %d: pop %d at t=%d after t=%d — time order violated", seed, i, b.at, a.at)
			}
			if a.at == b.at && a.seq > b.seq {
				t.Fatalf("seed %d: pop %d broke same-timestamp FIFO (seq %d before %d at t=%d)",
					seed, i, a.seq, b.seq, a.at)
			}
		}
	}
}

// TestEngineHeapDrainInterleaved interleaves scheduling with partial drains
// (RunUntil) so the heap is exercised at many fill levels, not just
// fill-then-drain.
func TestEngineHeapDrainInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var e Engine
	var fired []Time
	for round := 0; round < 50; round++ {
		base := e.Now()
		for i := 0; i < 20; i++ {
			at := base + Time(rng.Intn(100))
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.RunUntil(base + Time(rng.Intn(120)))
	}
	e.Run()
	for i := 1; i < len(fired); i++ {
		if fired[i-1] > fired[i] {
			t.Fatalf("event %d fired at %d after %d", i, fired[i], fired[i-1])
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events stranded in the queue", e.Pending())
	}
}
