package flashabacus

// Serving mode: the simulation-as-a-service surface. The heavy lifting
// lives in internal/service; this file re-exports the types and wires
// the daemon to the package's process-wide image cache, so served jobs
// and direct API calls (Run, RunCluster, ...) warm the same images.

import (
	"context"
	"net"
	"net/http"
	"time"

	"repro/internal/journal"
	"repro/internal/service"
)

// httpDrainTimeout bounds how long Serve waits for open connections
// after the workers have drained.
const httpDrainTimeout = 5 * time.Second

// ServiceConfig shapes a Service; the zero value is usable. See the
// field docs in internal/service.Config.
type ServiceConfig = service.Config

// JobRequest is a job submission: experiment id plus the CLI's knobs.
type JobRequest = service.JobRequest

// JobStatus is the wire representation of a submitted job.
type JobStatus = service.JobStatus

// JobState is a job's lifecycle state ("queued", "running", "done",
// "failed", "cancelled").
type JobState = service.JobState

// Service is the experiment-serving daemon: an http.Handler plus the
// worker pool behind it. Close it to drain.
type Service = service.Server

// ServiceClient is a typed client for a Service's HTTP API.
type ServiceClient = service.Client

// Journal is the durable job journal a Service can run on: an
// append-only, CRC-framed log of job lifecycle transitions that the
// daemon replays at boot to recover accepted work across a crash.
type Journal = journal.Journal

// OpenJournal opens (creating if needed) the job journal at dir. Pass
// it via ServiceConfig.Journal; the caller closes it after the service
// has drained.
func OpenJournal(dir string) (*Journal, error) {
	return journal.Open(dir, journal.Options{})
}

// ServiceChaos is a deterministic service-level fault plan for crash
// and degradation testing; see ParseServiceChaos for the spec grammar.
type ServiceChaos = service.Chaos

// ParseServiceChaos parses a chaos spec like
// "kill-after=8,torn-tail,seed=1" (see internal/service.ParseChaos).
func ParseServiceChaos(spec string) (*ServiceChaos, error) {
	return service.ParseChaos(spec)
}

// NewService builds a serving daemon. Unless cfg names its own image
// cache, the daemon shares the process-wide one, so a warm store or a
// prior direct run benefits served jobs and vice versa.
func NewService(cfg ServiceConfig) *Service {
	if cfg.Images == nil {
		cfg.Images = sharedImages
	}
	return service.New(cfg)
}

// Serve runs a daemon on addr until ctx is cancelled, then drains it:
// in-flight jobs are cancelled, workers exit, and open connections get
// a grace period to read their final bytes. The returned error is nil
// on a clean shutdown.
func Serve(ctx context.Context, addr string, cfg ServiceConfig) error {
	svc := NewService(cfg)
	hs := &http.Server{Addr: addr, Handler: svc}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	// Stop the workers first so every job reaches a terminal state, then
	// shut the listener down gracefully so clients streaming results see
	// their trailers instead of a reset.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), httpDrainTimeout)
	defer cancel()
	return hs.Shutdown(shutdownCtx)
}

// NewServiceClient returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). name, when non-empty, is the client's
// fairness identity.
func NewServiceClient(baseURL, name string) *ServiceClient {
	return &ServiceClient{BaseURL: baseURL, Name: name}
}
