package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/kdt"
	"repro/internal/kernel"
	"repro/internal/units"
)

// computeTable builds a pure-compute kernel with the given microblock
// screen counts.
func computeTable(name string, instrPerScreen int64, shape []int) *kdt.Table {
	t := &kdt.Table{Name: name, Sections: kdt.DefaultSections(256, 0)}
	for _, screens := range shape {
		mb := kdt.Microblock{}
		for s := 0; s < screens; s++ {
			mb.Screens = append(mb.Screens, kdt.Screen{Ops: []kdt.Op{
				{Kind: kdt.OpCompute, Instr: instrPerScreen, MulMilli: 100, LdStMilli: 300},
			}})
		}
		t.Microblocks = append(t.Microblocks, mb)
	}
	return t
}

// ioTable builds a kernel that reads input, computes, and writes output.
func ioTable(name string, inAddr, inBytes, outAddr, outBytes, instr int64, screens int) *kdt.Table {
	t := &kdt.Table{Name: name, Sections: kdt.DefaultSections(256, inBytes)}
	mb := kdt.Microblock{}
	per := inBytes / int64(screens)
	for s := 0; s < screens; s++ {
		ops := []kdt.Op{
			{Kind: kdt.OpRead, Section: uint8(s), FlashAddr: inAddr + int64(s)*per, Bytes: per},
			{Kind: kdt.OpCompute, Instr: instr / int64(screens), MulMilli: 150, LdStMilli: 456},
		}
		if outBytes > 0 {
			ops = append(ops, kdt.Op{
				Kind: kdt.OpWrite, Section: uint8(s),
				FlashAddr: outAddr + int64(s)*(outBytes/int64(screens)),
				Bytes:     outBytes / int64(screens),
			})
		}
		mb.Screens = append(mb.Screens, kdt.Screen{Ops: ops})
	}
	t.Microblocks = append(t.Microblocks, mb)
	return t
}

func newDevice(t *testing.T, sys System) *Device {
	t.Helper()
	d, err := New(DefaultConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig(IntraO3)
	bad.LWPs = 0
	if _, err := New(bad); err == nil {
		t.Error("zero LWPs accepted")
	}
	bad = DefaultConfig(IntraO3)
	bad.LWPs = 2
	if _, err := New(bad); err == nil {
		t.Error("FlashAbacus with 2 LWPs accepted")
	}
	bad = DefaultConfig(SIMD)
	bad.Workers = 99
	if _, err := New(bad); err == nil {
		t.Error("more workers than LWPs accepted")
	}
}

func TestWorkerSplitMatchesPaper(t *testing.T) {
	if got := DefaultConfig(SIMD).workerCount(); got != 8 {
		t.Errorf("SIMD workers = %d, want 8", got)
	}
	for _, sys := range FlashAbacusSystems {
		if got := DefaultConfig(sys).workerCount(); got != 6 {
			t.Errorf("%v workers = %d, want 6 (Flashvisor + Storengine reserved)", sys, got)
		}
	}
}

func TestSystemStrings(t *testing.T) {
	want := []string{"SIMD", "InterSt", "InterDy", "IntraIo", "IntraO3"}
	for i, sys := range Systems {
		if sys.String() != want[i] {
			t.Errorf("system %d = %q", i, sys.String())
		}
	}
	if SIMD.IsFlashAbacus() || !IntraO3.IsFlashAbacus() {
		t.Error("IsFlashAbacus wrong")
	}
}

func TestRunRequiresOffload(t *testing.T) {
	d := newDevice(t, IntraO3)
	if _, err := d.Run(context.Background()); err == nil {
		t.Error("run with nothing offloaded succeeded")
	}
}

func TestRunTwiceFails(t *testing.T) {
	d := newDevice(t, IntraO3)
	if err := d.OffloadApp("a", []*kdt.Table{computeTable("k", 1e6, []int{1})}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err == nil {
		t.Error("second run succeeded")
	}
	if err := d.OffloadApp("late", []*kdt.Table{computeTable("k", 1, []int{1})}); err == nil {
		t.Error("offload after run succeeded")
	}
}

func TestComputeOnlyRun(t *testing.T) {
	d := newDevice(t, IntraO3)
	if err := d.OffloadApp("app", []*kdt.Table{computeTable("k", 1e8, []int{4, 1, 4})}); err != nil {
		t.Fatal(err)
	}
	r, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if len(r.KernelLatencies) != 1 {
		t.Errorf("latencies = %d, want 1", len(r.KernelLatencies))
	}
	if r.WorkerUtil <= 0 || r.WorkerUtil > 1 {
		t.Errorf("utilization = %v", r.WorkerUtil)
	}
	if r.Energy.Total() <= 0 {
		t.Error("no energy accounted")
	}
}

func TestParallelScreensBeatSerial(t *testing.T) {
	// The same instruction count split over 6 screens must finish faster
	// on IntraO3 than as one serial screen.
	run := func(shape []int, per int64) units.Duration {
		d := newDevice(t, IntraO3)
		if err := d.OffloadApp("a", []*kdt.Table{computeTable("k", per, shape)}); err != nil {
			t.Fatal(err)
		}
		r, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return r.Makespan
	}
	serial := run([]int{1}, 6e8)
	parallel := run([]int{6}, 1e8)
	if parallel >= serial {
		t.Errorf("parallel %s not faster than serial %s",
			units.FormatDuration(parallel), units.FormatDuration(serial))
	}
	if parallel > serial/4 {
		t.Errorf("parallel %s should approach serial/6 of %s",
			units.FormatDuration(parallel), units.FormatDuration(serial))
	}
}

func TestDataIntensiveSIMDSlowerThanFlashAbacus(t *testing.T) {
	const inBytes = 64 * units.MB
	run := func(sys System) float64 {
		d := newDevice(t, sys)
		if err := d.PopulateInput(0, inBytes, nil); err != nil {
			t.Fatal(err)
		}
		// Data-intensive: few instructions per byte.
		tab := ioTable("k", 0, inBytes, 16*units.GB, units.MB, 5e8, 4)
		if err := d.OffloadApp("a", []*kdt.Table{tab}); err != nil {
			t.Fatal(err)
		}
		r, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return r.ThroughputMBps()
	}
	simd := run(SIMD)
	o3 := run(IntraO3)
	if o3 <= simd {
		t.Errorf("IntraO3 %.1f MB/s not faster than SIMD %.1f MB/s", o3, simd)
	}
	if o3 < 1.5*simd {
		t.Errorf("IntraO3 %.1f MB/s should be well above SIMD %.1f MB/s for data-intensive work", o3, simd)
	}
}

func TestSIMDEnergyDominatedByHostSide(t *testing.T) {
	const inBytes = 32 * units.MB
	d := newDevice(t, SIMD)
	d.PopulateInput(0, inBytes, nil)
	if err := d.OffloadApp("a", []*kdt.Table{ioTable("k", 0, inBytes, 16*units.GB, units.MB, 1e8, 4)}); err != nil {
		t.Fatal(err)
	}
	r, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	hostShare := r.Energy.Frac(0) + r.Energy.Frac(2) // data movement + storage
	if hostShare < 0.5 {
		t.Errorf("host-side energy share %.2f, want the majority for data-intensive SIMD", hostShare)
	}
	if r.SSDTime == 0 || r.StackTime == 0 {
		t.Error("SIMD breakdown missing SSD/stack time")
	}
}

func TestInterDyBalancesBetterThanInterSt(t *testing.T) {
	// One app with six identical kernels: InterSt pins them all to one
	// LWP; InterDy spreads them over six workers.
	apps := func(d *Device) {
		tabs := make([]*kdt.Table, 6)
		for i := range tabs {
			tabs[i] = computeTable("k", 2e8, []int{1})
		}
		if err := d.OffloadApp("homog", tabs); err != nil {
			t.Fatal(err)
		}
	}
	dSt := newDevice(t, InterSt)
	apps(dSt)
	rSt, err := dSt.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dDy := newDevice(t, InterDy)
	apps(dDy)
	rDy, err := dDy.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rDy.Makespan >= rSt.Makespan {
		t.Errorf("InterDy %s not faster than InterSt %s",
			units.FormatDuration(rDy.Makespan), units.FormatDuration(rSt.Makespan))
	}
	speedup := float64(rSt.Makespan) / float64(rDy.Makespan)
	if speedup < 4 {
		t.Errorf("InterDy speedup %.1fx, want near 6x for six independent kernels", speedup)
	}
}

func TestFunctionalEndToEnd(t *testing.T) {
	// A real builtin doubles every float; the result written to flash must
	// read back doubled — through KDT encode/decode, PCIe offload,
	// scheduling, Flashvisor mapping, and write buffering.
	kernel.RegisterBuiltin(9001, "double", func(ctx *kernel.ExecCtx) error {
		vals := kernel.BytesToF32(ctx.Sections[0])
		for i := range vals {
			vals[i] *= 2
		}
		ctx.Sections[0] = kernel.F32ToBytes(vals)
		return nil
	})
	cfg := DefaultConfig(IntraO3)
	cfg.Functional = true
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(16 * units.KB)
	in := make([]float32, n/4)
	for i := range in {
		in[i] = float32(i)
	}
	if err := d.PopulateInput(0, n, kernel.F32ToBytes(in)); err != nil {
		t.Fatal(err)
	}
	outAddr := int64(1 * units.GB)
	tab := &kdt.Table{
		Name:     "double",
		Sections: kdt.DefaultSections(128, n),
		Microblocks: []kdt.Microblock{{Screens: []kdt.Screen{{Ops: []kdt.Op{
			{Kind: kdt.OpRead, Section: 0, FlashAddr: 0, Bytes: n},
			{Kind: kdt.OpCompute, Instr: int64(len(in)), LdStMilli: 400},
			{Kind: kdt.OpExec, Section: 0, Builtin: 9001},
			{Kind: kdt.OpWrite, Section: 0, FlashAddr: outAddr, Bytes: n},
		}}}}},
	}
	if err := d.OffloadApp("fn", []*kdt.Table{tab}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := d.Visor().ReadBytes(outAddr, n)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float32, len(in))
	for i := range want {
		want[i] = 2 * float32(i)
	}
	if !bytes.Equal(got, kernel.F32ToBytes(want)) {
		t.Error("functional pipeline produced wrong data")
	}
}

func TestUnregisteredBuiltinFailsRun(t *testing.T) {
	cfg := DefaultConfig(IntraO3)
	cfg.Functional = true
	d, _ := New(cfg)
	tab := &kdt.Table{
		Name:     "bad",
		Sections: kdt.DefaultSections(128, 0),
		Microblocks: []kdt.Microblock{{Screens: []kdt.Screen{{Ops: []kdt.Op{
			{Kind: kdt.OpExec, Builtin: 60000},
		}}}}},
	}
	if err := d.OffloadApp("x", []*kdt.Table{tab}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err == nil {
		t.Error("run with unregistered builtin succeeded")
	}
}

func TestSeriesCollection(t *testing.T) {
	cfg := DefaultConfig(IntraO3)
	cfg.CollectSeries = true
	d, _ := New(cfg)
	d.PopulateInput(0, 8*units.MB, nil)
	if err := d.OffloadApp("a", []*kdt.Table{ioTable("k", 0, 8*units.MB, 16*units.GB, units.MB, 1e8, 2)}); err != nil {
		t.Fatal(err)
	}
	r, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FUSeries) == 0 || len(r.PowerSeries) == 0 {
		t.Fatal("series not collected")
	}
	var peakFU float64
	for _, v := range r.FUSeries {
		if v > peakFU {
			peakFU = v
		}
	}
	if peakFU <= 0 || peakFU > float64(cfg.CostModel.IssueWidth()*d.Workers()) {
		t.Errorf("peak FU utilization %v out of range", peakFU)
	}
}

func TestOverlapAblation(t *testing.T) {
	run := func(noOverlap bool) units.Duration {
		cfg := DefaultConfig(IntraO3)
		cfg.NoOverlap = noOverlap
		d, _ := New(cfg)
		d.PopulateInput(0, 64*units.MB, nil)
		// Balanced compute and IO so overlap matters.
		if err := d.OffloadApp("a", []*kdt.Table{ioTable("k", 0, 64*units.MB, 16*units.GB, units.MB, 2e8, 4)}); err != nil {
			t.Fatal(err)
		}
		r, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return r.Makespan
	}
	with := run(false)
	without := run(true)
	if with >= without {
		t.Errorf("overlap run %s not faster than no-overlap %s",
			units.FormatDuration(with), units.FormatDuration(without))
	}
}

func TestGCInterferenceSlowsWrites(t *testing.T) {
	// A write-heavy workload on a full device must still complete, with
	// reclaims recorded. A shrunken backbone keeps the churn fast.
	cfg := DefaultConfig(IntraO3)
	cfg.Flash.PackagesPerCh = 1
	cfg.Flash.DiesPerPkg = 1
	cfg.Flash.PagesPerBlock = 8
	cfg.Flash.BlocksPerDie = 8
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logical := d.Visor().FTL.LogicalBytes()
	if err := d.PopulateInput(0, logical, nil); err != nil {
		t.Fatal(err)
	}
	over := logical / 2
	writer := func() *kdt.Table {
		return &kdt.Table{
			Name:     "writer",
			Sections: kdt.DefaultSections(128, 0),
			Microblocks: []kdt.Microblock{{Screens: []kdt.Screen{{Ops: []kdt.Op{
				{Kind: kdt.OpCompute, Instr: 1e7, LdStMilli: 300},
				{Kind: kdt.OpWrite, FlashAddr: 0, Bytes: over},
			}}}}},
		}
	}
	// Six kernels overwrite the same range, invalidating predecessors and
	// forcing reclaim churn on the full device.
	if err := d.OffloadApp("w", []*kdt.Table{writer(), writer(), writer(), writer(), writer(), writer()}); err != nil {
		t.Fatal(err)
	}
	r, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Visor.FGReclaims+r.BGReclaims == 0 {
		t.Error("no reclaims on a nearly-full device")
	}
	if err := d.Visor().FTL.CheckConsistency(); err != nil {
		t.Error(err)
	}
}
