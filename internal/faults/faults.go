// Package faults makes failure a first-class, deterministic input to a
// cluster run: a Plan is a declarative, seeded schedule of injections —
// card death mid-run, switch-pipe flap and throttle windows, and
// flash-level wear (bad superblocks, read-retry storms) — that the
// cluster dispatcher, the dispatch fabric, and the flash latency model
// consume.
//
// Every injection is keyed to simulated event time and the plan's seed,
// never to wall clock or math/rand state, so the same plan over the same
// workload produces byte-identical output at any worker count — fault
// scenarios are pinned by golden files exactly like healthy runs. An
// empty plan injects nothing and leaves every healthy run byte-identical.
//
// The package deliberately knows nothing about the cluster dispatcher:
// it owns the schedule's shape (types, text format, validation, presets)
// and the one piece of simulation it can model locally — the wear
// Retrier that internal/flash calls per read — while internal/cluster
// interprets deaths and switch windows against its own dispatch model.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/flash"
	"repro/internal/sim"
	"repro/internal/units"
)

// Kind is the injection type of one scheduled Event.
type Kind int

const (
	// CardDeath fail-stops one card at Event.At: work in flight on the
	// card is lost, and the host notices after the plan's detect latency.
	CardDeath Kind = iota
	// SwitchThrottle reduces one switch's dispatch bandwidth to
	// Event.FactorPct percent during [At, Until).
	SwitchThrottle
	// SwitchFlap takes one switch's dispatch link down during [At,
	// Until): dispatches requested inside the window stall to its end.
	SwitchFlap
)

func (k Kind) String() string {
	switch k {
	case CardDeath:
		return "card-death"
	case SwitchThrottle:
		return "switch-throttle"
	case SwitchFlap:
		return "switch-flap"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled injection. Times are simulated cluster time
// (the dispatcher's clock, 0 = run start).
type Event struct {
	Kind Kind
	// Card is the global card id a CardDeath targets.
	Card int
	// Switch names the switch a SwitchThrottle/SwitchFlap targets
	// ("sw0" is the implicit single-switch topology's lone switch).
	Switch string
	// At is the injection instant; Until ends a window event's
	// [At, Until) span and is ignored by CardDeath.
	At, Until units.Duration
	// FactorPct is the bandwidth surviving a throttle window, in
	// percent (1..99). Flap and death events leave it zero.
	FactorPct int
}

// Wear is the flash-reliability side of a plan: deterministic per-read
// retry latency in the storengine path, never nondeterminism. Times are
// device-local (each card's own run clock).
type Wear struct {
	// BadSBPct percent of superblocks are worn (seeded selection); every
	// read touching one pays BadRetries extra sensing cycles.
	BadSBPct   int
	BadRetries int
	// During [StormFrom, StormUntil), StormPct percent of reads (seeded
	// per-read decision) pay StormRetries extra sensing cycles — a
	// read-disturb retry storm.
	StormFrom, StormUntil units.Duration
	StormPct              int
	StormRetries          int
}

// active reports whether the wear model injects anything at all.
func (w Wear) active() bool {
	return (w.BadSBPct > 0 && w.BadRetries > 0) || (w.StormPct > 0 && w.StormRetries > 0)
}

// Plan is a deterministic fault schedule. The zero value injects
// nothing; see IsZero.
type Plan struct {
	// Seed drives every seeded decision (worn-superblock selection,
	// per-read storm draws). Same seed, same plan, same workload →
	// byte-identical output.
	Seed uint64
	// Detect is the host's failure-detection latency: the gap between a
	// card's death and the dispatcher reacting. 0 selects DefaultDetect.
	Detect units.Duration
	Events []Event
	Wear   Wear
}

// DefaultDetect is the failure-detection latency a plan without an
// explicit `detect` line assumes: a host-side heartbeat interval.
const DefaultDetect = 50 * units.Microsecond

// NoDeath is the death-time sentinel for cards the plan never kills.
const NoDeath = units.Duration(math.MaxInt64)

// MaxRetries bounds the per-read retry count either wear mechanism may
// request, keeping worst-case read latency finite and plans fuzzable.
const MaxRetries = 8

// IsZero reports whether the plan injects nothing — the cluster layer
// treats such a plan exactly like a nil one, which is what keeps an
// empty plan byte-identical to a healthy run.
func (p *Plan) IsZero() bool {
	return p == nil || (len(p.Events) == 0 && !p.Wear.active())
}

// DetectLatency returns the failure-detection latency, applying the
// default.
func (p *Plan) DetectLatency() units.Duration {
	if p == nil || p.Detect <= 0 {
		return DefaultDetect
	}
	return p.Detect
}

// WearActive reports whether the plan's wear model injects retries.
func (p *Plan) WearActive() bool { return p != nil && p.Wear.active() }

// DeathTimes returns each card's death instant (NoDeath for survivors)
// over a cluster of the given size. Validate rejects duplicate deaths,
// but a hostile plan keeps the earliest.
func (p *Plan) DeathTimes(cards int) []units.Duration {
	if p == nil {
		return nil
	}
	var out []units.Duration
	for _, ev := range p.Events {
		if ev.Kind != CardDeath || ev.Card < 0 || ev.Card >= cards {
			continue
		}
		if out == nil {
			out = make([]units.Duration, cards)
			for i := range out {
				out[i] = NoDeath
			}
		}
		if ev.At < out[ev.Card] {
			out[ev.Card] = ev.At
		}
	}
	return out
}

// Window is one degradation span of a switch's dispatch pipe. FactorPct
// 0 means the link is down (flap); 1..99 means throttled to that
// percentage of its bandwidth.
type Window struct {
	From, Until units.Duration
	FactorPct   int
}

// SwitchWindows returns the plan's degradation windows for the named
// switch, sorted by start time.
func (p *Plan) SwitchWindows(name string) []Window {
	if p == nil {
		return nil
	}
	var out []Window
	for _, ev := range p.Events {
		if ev.Switch != name {
			continue
		}
		switch ev.Kind {
		case SwitchFlap:
			out = append(out, Window{From: ev.At, Until: ev.Until})
		case SwitchThrottle:
			out = append(out, Window{From: ev.At, Until: ev.Until, FactorPct: ev.FactorPct})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// Validate reports a structural plan error, or nil. Targets (card ids,
// switch names) are checked against the actual cluster shape by
// ValidateFor at run start.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, ev := range p.Events {
		switch ev.Kind {
		case CardDeath:
			if ev.Card < 0 {
				return fmt.Errorf("faults: event %d: negative card id %d", i, ev.Card)
			}
			if ev.At < 0 {
				return fmt.Errorf("faults: event %d: negative death time %s", i, units.FormatDuration(ev.At))
			}
		case SwitchThrottle, SwitchFlap:
			if ev.Switch == "" {
				return fmt.Errorf("faults: event %d: %s needs a switch name", i, ev.Kind)
			}
			if ev.At < 0 || ev.Until <= ev.At {
				return fmt.Errorf("faults: event %d: %s window [%s,%s) is empty or negative",
					i, ev.Kind, units.FormatDuration(ev.At), units.FormatDuration(ev.Until))
			}
			if ev.Kind == SwitchThrottle && (ev.FactorPct < 1 || ev.FactorPct > 99) {
				return fmt.Errorf("faults: event %d: throttle factor %d%% outside [1,99]", i, ev.FactorPct)
			}
			if ev.Kind == SwitchFlap && ev.FactorPct != 0 {
				return fmt.Errorf("faults: event %d: flap carries a factor", i)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %d", i, int(ev.Kind))
		}
	}
	w := p.Wear
	if w.BadSBPct < 0 || w.BadSBPct > 100 {
		return fmt.Errorf("faults: wear bad-superblock percentage %d outside [0,100]", w.BadSBPct)
	}
	if w.StormPct < 0 || w.StormPct > 100 {
		return fmt.Errorf("faults: wear storm percentage %d outside [0,100]", w.StormPct)
	}
	if w.BadRetries < 0 || w.BadRetries > MaxRetries {
		return fmt.Errorf("faults: wear bad-superblock retries %d outside [0,%d]", w.BadRetries, MaxRetries)
	}
	if w.StormRetries < 0 || w.StormRetries > MaxRetries {
		return fmt.Errorf("faults: wear storm retries %d outside [0,%d]", w.StormRetries, MaxRetries)
	}
	if w.StormPct > 0 && w.StormRetries > 0 && (w.StormFrom < 0 || w.StormUntil <= w.StormFrom) {
		return fmt.Errorf("faults: wear storm window [%s,%s) is empty or negative",
			units.FormatDuration(w.StormFrom), units.FormatDuration(w.StormUntil))
	}
	if p.Detect < 0 {
		return fmt.Errorf("faults: negative detect latency %s", units.FormatDuration(p.Detect))
	}
	return nil
}

// ValidateFor checks the plan's targets against an actual cluster shape:
// every death must name an existing card and leave at least one
// survivor, and every switch event must name a declared switch.
func (p *Plan) ValidateFor(cards int, switches []string) error {
	if p == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	dead := map[int]bool{}
	for i, ev := range p.Events {
		switch ev.Kind {
		case CardDeath:
			if ev.Card >= cards {
				return fmt.Errorf("faults: event %d kills card %d but the cluster has %d cards", i, ev.Card, cards)
			}
			if dead[ev.Card] {
				return fmt.Errorf("faults: event %d kills card %d twice", i, ev.Card)
			}
			dead[ev.Card] = true
		case SwitchThrottle, SwitchFlap:
			found := false
			for _, name := range switches {
				if name == ev.Switch {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("faults: event %d targets unknown switch %q (have: %s)",
					i, ev.Switch, strings.Join(switches, ", "))
			}
		}
	}
	if len(dead) >= cards {
		return fmt.Errorf("faults: plan kills all %d cards — no survivors to recover onto", cards)
	}
	return nil
}

// Retrier is the wear model internal/flash consults per page-group
// read. It is pure — no state mutates across calls — so one Retrier is
// safe to share between concurrently simulating cards, and a given
// (time, group, sequence) triple always returns the same retry count.
type Retrier struct {
	seed uint64
	w    Wear
	geo  flash.Geometry
}

// NewRetrier builds the deterministic wear model for one card geometry.
// Call only when the plan's wear is active; skewed card classes carry
// different geometries, so build one Retrier per class.
func NewRetrier(p *Plan, geo flash.Geometry) *Retrier {
	return &Retrier{seed: p.Seed, w: p.Wear, geo: geo}
}

// Retries returns the extra sensing cycles a read of group pg requested
// at device-local time at — the seq'th read of this backbone — must
// pay. Worn superblocks are a seeded selection over the superblock
// index; storm draws hash the read sequence number, which the
// single-threaded device simulation makes deterministic.
func (r *Retrier) Retries(at sim.Time, pg flash.PhysGroup, seq int64) int {
	n := 0
	if r.w.BadSBPct > 0 && r.w.BadRetries > 0 {
		sb := r.geo.SuperBlockOf(pg)
		if int(mix(r.seed, 0xb10c, uint64(sb))%100) < r.w.BadSBPct {
			n += r.w.BadRetries
		}
	}
	if r.w.StormPct > 0 && r.w.StormRetries > 0 &&
		at >= sim.Time(r.w.StormFrom) && at < sim.Time(r.w.StormUntil) {
		if int(mix(r.seed, 0x5702, uint64(seq))%100) < r.w.StormPct {
			n += r.w.StormRetries
		}
	}
	if n > 2*MaxRetries {
		n = 2 * MaxRetries
	}
	return n
}

// mix is a splitmix64-style avalanche over (seed, domain, value): cheap,
// stateless, and identical on every platform — the only randomness
// source any injection decision is allowed to use.
func mix(seed, domain, v uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(domain+1) + v
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
