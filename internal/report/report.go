// Package report renders experiment results as aligned ASCII tables and
// series, matching the rows the paper's tables and figures present.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell with %v (floats as %.4g unless
// already strings).
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			for i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		line(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Series renders a sampled time series (Fig. 15): every stride-th bin.
func Series(title string, binNs int64, values []float64, stride int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(values); i += stride {
		fmt.Fprintf(&b, "%8.1fus  %8.2f\n", float64(int64(i)*binNs)/1e3, values[i])
	}
	return b.String()
}
