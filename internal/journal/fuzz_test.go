package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to Replay as a segment file:
// it must never panic, never allocate more than the input justifies, and
// when the bytes do replay cleanly, appending to the reopened journal
// must keep it replayable.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a valid journal, its truncations, and header mutations.
	dir := f.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range []Record{
		{Kind: Accepted, ID: "j000001", Client: "c", Key: "k",
			Request: []byte(`{"experiment":"t1"}`), UnixMilli: 42},
		{Kind: Done, ID: "j000001", Client: "c", Output: []byte("out\n")},
	} {
		if err := j.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	j.Close()
	valid, err := os.ReadFile(filepath.Join(dir, "00000001.wal"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:headerLen])
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[headerLen+2] ^= 0xff // smash a frame length byte
	f.Add(mut)

	f.Fuzz(func(t *testing.T, seg []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.wal"), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		n := 0
		rs, err := Replay(dir, func(r Record) error {
			if !r.Kind.valid() {
				t.Fatalf("replay delivered invalid kind %d", r.Kind)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("Replay errored (should tolerate any input): %v", err)
		}
		if rs.Records != n {
			t.Fatalf("stats records %d != delivered %d", rs.Records, n)
		}
		// Reopen over the same bytes: Open must truncate whatever replay
		// refused, and a fresh append must land replayably.
		j, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if err := j.Append(Record{Kind: Failed, ID: "jx", Error: "e"}); err != nil {
			t.Fatalf("append after reopen: %v", err)
		}
		j.Close()
		var last Record
		rs2, err := Replay(dir, func(r Record) error { last = r; return nil })
		if err != nil || rs2.Torn {
			t.Fatalf("replay after reopen+append: err %v, torn %v", err, rs2.Torn)
		}
		if rs2.Records != n+1 || last.ID != "jx" {
			t.Fatalf("reopen+append replayed %d records (want %d), last %q", rs2.Records, n+1, last.ID)
		}
	})
}
