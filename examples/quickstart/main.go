// Quickstart: run one PolyBench workload on the out-of-order FlashAbacus
// configuration and print the headline measurements.
package main

import (
	"context"
	"fmt"
	"log"

	flashabacus "repro"
)

func main() {
	// Six ATAX instances at 1/16 of the paper's 640 MB input.
	bundle, err := flashabacus.Polybench("ATAX", 16)
	if err != nil {
		log.Fatal(err)
	}

	result, err := flashabacus.Run(context.Background(), flashabacus.IntraO3, bundle)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FlashAbacus quickstart — ATAX on IntraO3")
	fmt.Println(result)
	fmt.Printf("kernel completions (CDF):\n")
	for _, p := range result.CDF() {
		fmt.Printf("  %6.1f ms: %d/%d kernels done\n",
			float64(p.Time)/1e6, p.Completed, len(result.CompletionTimes))
	}
}
