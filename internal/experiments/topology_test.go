package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestTopologyCellsShape(t *testing.T) {
	cells := Cells("topology")
	if cells == nil {
		t.Fatal("topology experiment has no cells")
	}
	want := len(TopologyPresets) * len(TopologyCards) * len(cluster.Policies)
	if len(cells) != want {
		t.Errorf("%d topology cells, want %d", len(cells), want)
	}
	seen := map[Job]bool{}
	for _, j := range cells {
		if j.Kind != KindTopology {
			t.Errorf("cell %s has kind %d", j, j.Kind)
		}
		if j.Topo == "" || j.Devices < 2 {
			t.Errorf("cell %s lacks a preset or a card count", j)
		}
		if seen[j] {
			t.Errorf("duplicate cell %s", j)
		}
		seen[j] = true
		if s := j.String(); !strings.Contains(s, "topo-") || !strings.Contains(s, j.Topo) {
			t.Errorf("job string %q does not name the topology", s)
		}
	}
}

// The acceptance property of the heterogeneous sweep: at the default
// -scale 16, the two-switch skewed topology reports monotonically
// non-decreasing aggregate throughput as total cards are added, for both
// dispatch policies.
func TestTopologyScalingMonotonicAtDefaultScale(t *testing.T) {
	s := NewSuite(16)
	ctx := context.Background()
	if err := s.Prewarm(ctx, Cells("topology")); err != nil {
		t.Fatal(err)
	}
	for _, p := range cluster.Policies {
		prev := 0.0
		for _, n := range TopologyCards {
			r, err := s.Run(ctx, Job{
				Kind: KindTopology, Mix: TopologyMix, Sys: ClusterSys,
				Topo: "2sw-skew", Devices: n, Policy: p,
			})
			if err != nil {
				t.Fatal(err)
			}
			if tput := r.ThroughputMBps(); tput < prev {
				t.Errorf("2sw-skew %s: throughput dropped from %.1f to %.1f MB/s at %d cards",
					p, prev, tput, n)
			} else {
				prev = tput
			}
		}
	}
}

func TestTopologyRenderAndCache(t *testing.T) {
	s := NewSuite(256)
	out, err := s.Topology(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Topology scaling", "per-switch utilization",
		"sym", "skew", "2sw-skew", "round-robin", "work-steal", "sw0", "sw1"} {
		if !strings.Contains(out, want) {
			t.Errorf("topology render lacks %q", want)
		}
	}
	// A second render is pure cache assembly and must be identical.
	again, err := s.Topology(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Error("topology render not deterministic across cache hits")
	}
}

// A topology cell must reject an unknown preset rather than simulate.
func TestTopologyCellUnknownPreset(t *testing.T) {
	s := NewSuite(256)
	_, err := s.Run(context.Background(), Job{
		Kind: KindTopology, Mix: 1, Sys: ClusterSys, Topo: "nope", Devices: 4,
	})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown preset error %v does not name the preset", err)
	}
}
