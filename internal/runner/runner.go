// Package runner is the concurrent execution backbone of the reproduction:
// a context-aware worker pool that runs independent jobs — device
// simulations, experiment renders, sensitivity sweeps — with bounded
// parallelism, per-job error capture, and deterministic result ordering.
//
// Jobs are addressed by index, never by completion order, so a parallel run
// produces results that are byte-identical to a sequential one: Collect
// stores job i's value at out[i], and Each reports the error of the
// lowest-indexed failed job. Cancelling the context (or any job failing)
// stops the pool early; jobs that never started are simply skipped.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a job panic converted into an error: the pool (and
// Await) recover panics so one broken cell fails its own job instead of
// killing the whole process — the serving layer depends on this to keep
// a daemon alive through a panicking render.
type PanicError struct {
	// Value is the recovered panic value; Stack the goroutine stack at
	// the panic site.
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job panicked: %v\n%s", e.Value, e.Stack)
}

// call invokes fn, converting a panic into a *PanicError.
func call(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}

// Pool executes independent jobs with at most Workers goroutines.
type Pool struct {
	workers int
}

// New returns a pool running at most workers jobs concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's parallelism bound.
func (p *Pool) Workers() int { return p.workers }

// Each runs fn(ctx, i) for every i in [0, n), at most p.Workers() at a
// time. The first failure cancels the context handed to in-flight jobs and
// stops undispatched ones; Each then returns the error of the
// lowest-indexed job that failed for a reason other than that cancellation
// (falling back to the lowest-indexed cancellation error, then to the
// caller's own context error). A job's real error thus always outranks the
// cancellation noise it caused — though when several jobs would genuinely
// fail, which of them got dispatched before the cancellation landed can
// depend on timing. Only result ordering is fully deterministic, not
// error identity.
func (p *Pool) Each(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	return p.run(ctx, n, fn, true)
}

// EachAll is Each without failure fan-out: every job runs even when some
// fail, so one bad job cannot starve independent siblings. Cancelling ctx
// still stops the pool. EachAll returns the lowest-indexed job error
// (preferring real failures over cancellations), or nil if all succeeded.
func (p *Pool) EachAll(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	return p.run(ctx, n, fn, false)
}

func (p *Pool) run(ctx context.Context, n int, fn func(ctx context.Context, i int) error, failFast bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path: no goroutines. Like the concurrent path,
		// a real failure outranks cancellation-classified errors.
		var firstReal, firstCancel error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if firstCancel == nil {
					firstCancel = err
				}
				break
			}
			if err := call(ctx, i, fn); err != nil {
				if failFast {
					return err
				}
				if !isCancellation(err) {
					if firstReal == nil {
						firstReal = err
					}
				} else if firstCancel == nil {
					firstCancel = err
				}
			}
		}
		if firstReal != nil {
			return firstReal
		}
		return firstCancel
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next int64 = -1
		wg   sync.WaitGroup
		errs = make([]error, n)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := runCtx.Err(); err != nil {
					errs[i] = err
					return
				}
				if err := call(runCtx, i, fn); err != nil {
					errs[i] = err
					if failFast {
						cancel()
					}
				}
			}
		}()
	}
	wg.Wait()

	// Real failures outrank the cancellations they caused.
	for _, err := range errs {
		if err != nil && !isCancellation(err) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Collect runs fn(ctx, i) for every i in [0, n) through the pool and
// returns the results keyed by job index — out[i] is job i's value
// regardless of completion order — or the first error per Each's rules.
func Collect[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Each(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// IsCancellation reports whether err stems from context cancellation or
// deadline expiry rather than a job's own failure.
func IsCancellation(err error) bool { return isCancellation(err) }

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
