// Polybench: compare all five accelerated systems on a data-intensive and a
// compute-intensive PolyBench workload, reproducing the Fig. 10a contrast.
package main

import (
	"context"
	"fmt"
	"log"

	flashabacus "repro"
)

func main() {
	for _, app := range []string{"ATAX", "GEMM"} {
		fmt.Printf("== %s (homogeneous, 6 instances) ==\n", app)
		var simd float64
		for _, sys := range flashabacus.Systems {
			bundle, err := flashabacus.Polybench(app, 32)
			if err != nil {
				log.Fatal(err)
			}
			r, err := flashabacus.Run(context.Background(), sys, bundle)
			if err != nil {
				log.Fatal(err)
			}
			tput := r.ThroughputMBps()
			if sys == flashabacus.SIMD {
				simd = tput
			}
			fmt.Printf("  %-8s %8.1f MB/s  (%.2fx SIMD)  util %.0f%%  energy %.2f J\n",
				sys, tput, tput/simd, r.WorkerUtil*100, r.Energy.Total())
		}
	}
}
