// Package flashvisor implements the LWP that self-governs the flash
// backbone (paper §3.3, §4.3): log-structured page-group address
// translation with the mapping table resident in scratchpad, range-lock
// protection over flash-mapped data sections, and the allocation machinery
// Storengine's garbage collector drives.
package flashvisor

import (
	"fmt"
	"math/bits"

	"repro/internal/flash"
)

// FTL is the page-group-granularity flash translation layer. It is a pure
// state machine — timing lives in the Visor — so garbage-collection policy
// and mapping invariants are testable in isolation.
//
// The log head stripes across die rows: one active super block is kept per
// die row and consecutive allocations rotate rows, so sequential data
// enjoys full die parallelism on later reads (the FPGA controllers
// interleave writes the same way).
type FTL struct {
	geo flash.Geometry

	// table maps logical group -> physical group + 1 (0 when unmapped); it
	// is the structure that occupies 2 MB of scratchpad at full geometry.
	// The +1 bias makes the zero value "unmapped", so a freshly formatted
	// table is sparse all-zero segments — no O(capacity) memory until
	// groups actually map. Both tables are copy-on-write so a formatted,
	// populated device forks in O(small-state) instead of O(capacity).
	table cow32
	// rev maps physical group -> logical group + 1 (0 when free/invalid),
	// which GC migration needs to retarget mappings.
	rev cow32

	freeSBs [][]flash.SuperBlock // per die row: erased, ready
	// usedSBs is a head-indexed queue (filled, in round-robin reclaim
	// order): popping the front moves usedHead instead of reslicing, so
	// the backing array is reused instead of growing for the life of the
	// device.
	usedSBs   []flash.SuperBlock
	usedHead  int
	active    []flash.SuperBlock // per die row
	hasActive []bool
	cursor    []int // next page index within each row's active super block
	allocRow  int   // rotating row for the next allocation

	logicalGroups int64
	validPerSB    []int32

	// Cached geometry terms for the per-group hot paths. When the row and
	// page counts are powers of two (the default geometry), superblock-of
	// lookups reduce to shifts and masks.
	rows      int64
	pagesPB   int64
	pow2      bool
	rowShift  uint
	rowMask   int64
	pageShift uint
}

// gcReserve is the number of free super blocks withheld per die row from
// host writes so a reclaim always has somewhere to migrate a fully-valid
// victim.
const gcReserve = 1

// NewFTL builds a formatted FTL over the geometry. op is the
// over-provisioning fraction withheld from the logical space so reclaim
// always has landing room (default 7%).
func NewFTL(geo flash.Geometry, op float64) (*FTL, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if op < 0.01 || op > 0.5 {
		return nil, fmt.Errorf("flashvisor: over-provisioning %.2f outside [0.01, 0.5]", op)
	}
	rows := geo.DieRows()
	dataGroups := int64(geo.SuperBlocks()) * int64(geo.DataGroupsPerSuperBlock())
	logical := int64(float64(dataGroups) * (1 - op))
	// Garbage collection needs slack: with every logical group live, the
	// device must still hold the GC reserve plus one reclaimable super
	// block's worth of invalid/free groups per row, or round-robin reclaim
	// can cycle through fully-valid victims forever.
	if max := dataGroups - int64(gcReserve+1)*int64(rows)*int64(geo.DataGroupsPerSuperBlock()); logical > max {
		logical = max
	}
	if logical <= 0 {
		return nil, fmt.Errorf("flashvisor: geometry too small for GC slack (%d data groups)", dataGroups)
	}
	f := &FTL{
		geo:           geo,
		table:         newCow32(logical),
		rev:           newCow32(geo.TotalGroups()),
		validPerSB:    make([]int32, geo.SuperBlocks()),
		logicalGroups: logical,
		freeSBs:       make([][]flash.SuperBlock, rows),
		active:        make([]flash.SuperBlock, rows),
		hasActive:     make([]bool, rows),
		cursor:        make([]int, rows),
	}
	f.initGeoCache()
	for sb := 0; sb < geo.SuperBlocks(); sb++ {
		row := sb / geo.BlocksPerDie
		f.freeSBs[row] = append(f.freeSBs[row], flash.SuperBlock(sb))
	}
	return f, nil
}

// initGeoCache derives the cached per-group arithmetic terms from the
// geometry (shift/mask forms when the row and page counts are powers of
// two, the default).
func (f *FTL) initGeoCache() {
	f.rows = int64(f.geo.DieRows())
	f.pagesPB = int64(f.geo.PagesPerBlock)
	if f.rows&(f.rows-1) == 0 && f.pagesPB&(f.pagesPB-1) == 0 {
		f.pow2 = true
		f.rowShift = uint(bits.TrailingZeros64(uint64(f.rows)))
		f.rowMask = f.rows - 1
		f.pageShift = uint(bits.TrailingZeros64(uint64(f.pagesPB)))
	}
}

// sbOf is Geometry.SuperBlockOf without the page decomposition, using
// shift/mask arithmetic at power-of-two geometries.
func (f *FTL) sbOf(pg flash.PhysGroup) flash.SuperBlock {
	if f.pow2 {
		row := int64(pg) & f.rowMask
		block := int64(pg) >> f.rowShift >> f.pageShift
		return flash.SuperBlock(row*int64(f.geo.BlocksPerDie) + block)
	}
	row := int64(pg) % f.rows
	block := int64(pg) / f.rows / f.pagesPB
	return flash.SuperBlock(row*int64(f.geo.BlocksPerDie) + block)
}

// LogicalGroups returns the exposed logical address space in page groups.
func (f *FTL) LogicalGroups() int64 { return f.logicalGroups }

// LogicalBytes returns the exposed byte capacity.
func (f *FTL) LogicalBytes() int64 { return f.logicalGroups * f.geo.GroupSize() }

// FreeSuperBlocks returns the total free pool size across die rows.
func (f *FTL) FreeSuperBlocks() int {
	n := 0
	for _, p := range f.freeSBs {
		n += len(p)
	}
	return n
}

// Lookup translates a logical group, reporting whether it is mapped.
func (f *FTL) Lookup(lg int64) (flash.PhysGroup, bool) {
	if lg < 0 || lg >= f.logicalGroups {
		return 0, false
	}
	pg := f.table.at(lg)
	if pg == 0 {
		return 0, false
	}
	return flash.PhysGroup(pg - 1), true
}

// ErrNoSpace is returned when allocation needs a reclaim first.
var ErrNoSpace = fmt.Errorf("flashvisor: no free page groups (reclaim required)")

// rowCanAlloc reports whether a row can hand out a group under the reserve.
func (f *FTL) rowCanAlloc(row, reserve int) bool {
	if f.hasActive[row] && f.cursor[row] < f.geo.GroupsPerSuperBlock() {
		return true
	}
	return len(f.freeSBs[row]) > reserve
}

// Alloc returns the next physical group at the striped log head. It skips
// the metadata pages at the front of each block and pulls a fresh super
// block from the row's free pool on rollover. Host writes (gc=false) may
// not dip into the GC reserve; migration writes (gc=true) may. The returned
// bool reports whether a rollover happened (the caller charges
// metadata-journal writes for the newly opened super block).
func (f *FTL) Alloc(gc bool) (flash.PhysGroup, bool, error) {
	reserve := gcReserve
	if gc {
		reserve = 0
	}
	rows := f.geo.DieRows()
	row := -1
	for i := 0; i < rows; i++ {
		r := (f.allocRow + i) % rows
		if f.rowCanAlloc(r, reserve) {
			row = r
			break
		}
	}
	if row < 0 {
		return 0, false, ErrNoSpace
	}
	f.allocRow = (row + 1) % rows

	rolled := false
	if !f.hasActive[row] || f.cursor[row] >= f.geo.GroupsPerSuperBlock() {
		if f.hasActive[row] {
			f.pushUsed(f.active[row])
			f.hasActive[row] = false
		}
		f.active[row] = f.freeSBs[row][0]
		f.freeSBs[row] = f.freeSBs[row][1:]
		f.cursor[row] = f.geo.MetaPages // skip metadata pages
		f.hasActive[row] = true
		rolled = true
	}
	block := int(f.active[row]) % f.geo.BlocksPerDie
	pg := f.geo.Compose(flash.GroupAddr{DieRow: row, Block: block, Page: f.cursor[row]})
	f.cursor[row]++
	return pg, rolled, nil
}

// AllocRunLen reports how many consecutive host allocations are guaranteed
// to proceed from the current log head without a rollover or a reclaim —
// allocations strictly rotate die rows while every row's active super block
// has room, so the bound is exact until the first row exhausts its block.
// Callers batch the per-group foreground charges for runs of this length.
func (f *FTL) AllocRunLen(want int) int {
	if want <= 0 {
		return 0
	}
	cap := f.geo.GroupsPerSuperBlock()
	rows := int(f.rows)
	n := want
	for i := 0; i < rows; i++ {
		r := (f.allocRow + i) % rows
		if !f.hasActive[r] || f.cursor[r] >= cap {
			// The i'th allocation of the run would roll this row over.
			if i < n {
				n = i
			}
			break
		}
		// This row serves allocations i, i+rows, i+2*rows, ... of the run;
		// it has room for the first (cap - cursor) of them.
		roomFor := i + (cap-f.cursor[r])*rows
		if roomFor < n {
			n = roomFor
		}
	}
	return n
}

// pushUsed appends to the round-robin reclaim queue, compacting the
// consumed prefix once it dominates the backing array.
func (f *FTL) pushUsed(sb flash.SuperBlock) {
	if f.usedHead > 64 && f.usedHead*2 >= len(f.usedSBs) {
		n := copy(f.usedSBs, f.usedSBs[f.usedHead:])
		f.usedSBs = f.usedSBs[:n]
		f.usedHead = 0
	}
	f.usedSBs = append(f.usedSBs, sb)
}

// ActiveSuperBlock returns the most recently opened super block for the
// given physical group's die row (the journal target after a rollover).
func (f *FTL) ActiveSuperBlock(pg flash.PhysGroup) flash.SuperBlock {
	return f.sbOf(pg)
}

// Commit binds logical group lg to physical group pg, invalidating any
// previous mapping of lg.
func (f *FTL) Commit(lg int64, pg flash.PhysGroup) error {
	if lg < 0 || lg >= f.logicalGroups {
		return fmt.Errorf("flashvisor: logical group %d outside space of %d", lg, f.logicalGroups)
	}
	if old := f.table.at(lg); old != 0 {
		f.invalidate(flash.PhysGroup(old - 1))
	}
	f.table.set(lg, int32(pg)+1)
	f.rev.set(int64(pg), int32(lg)+1)
	f.validPerSB[f.sbOf(pg)]++
	return nil
}

func (f *FTL) invalidate(pg flash.PhysGroup) {
	if f.rev.at(int64(pg)) == 0 {
		return
	}
	f.rev.set(int64(pg), 0)
	f.validPerSB[f.sbOf(pg)]--
}

// ValidCount returns the valid page groups in a super block.
func (f *FTL) ValidCount(sb flash.SuperBlock) int { return int(f.validPerSB[sb]) }

// VictimRoundRobin pops the oldest used super block — the paper's
// Storengine selects victims "from a used block pool in a round robin
// fashion" rather than scanning the whole table for the greediest choice.
func (f *FTL) VictimRoundRobin() (flash.SuperBlock, bool) {
	if f.usedHead == len(f.usedSBs) {
		return 0, false
	}
	sb := f.usedSBs[f.usedHead]
	f.usedHead++
	return sb, true
}

// VictimGreedy pops the used super block with the fewest valid groups; it
// exists for the GC-policy ablation and costs a full pool scan. Removal
// shifts the queued prefix by one slot, preserving round-robin order for
// the remaining victims.
func (f *FTL) VictimGreedy() (flash.SuperBlock, bool) {
	if f.usedHead == len(f.usedSBs) {
		return 0, false
	}
	best := f.usedHead
	for i := f.usedHead + 1; i < len(f.usedSBs); i++ {
		if f.validPerSB[f.usedSBs[i]] < f.validPerSB[f.usedSBs[best]] {
			best = i
		}
	}
	sb := f.usedSBs[best]
	copy(f.usedSBs[f.usedHead+1:best+1], f.usedSBs[f.usedHead:best])
	f.usedHead++
	return sb, true
}

// ValidGroups returns the (physical, logical) pairs still valid in a super
// block, in page order.
func (f *FTL) ValidGroups(sb flash.SuperBlock) []MigratePair {
	return f.AppendValidGroups(nil, sb)
}

// AppendValidGroups appends the valid (physical, logical) pairs of a super
// block to dst in page order and returns the extended slice; reclaim loops
// pass a reused scratch buffer to keep the hot path allocation-free.
func (f *FTL) AppendValidGroups(dst []MigratePair, sb flash.SuperBlock) []MigratePair {
	pg, step := f.geo.GroupSpan(sb)
	for p := 0; p < f.geo.PagesPerBlock; p++ {
		if lg := f.rev.at(int64(pg)); lg != 0 {
			dst = append(dst, MigratePair{Phys: pg, Logical: int64(lg - 1)})
		}
		pg += flash.PhysGroup(step)
	}
	return dst
}

// MigratePair names a valid group inside a GC victim.
type MigratePair struct {
	Phys    flash.PhysGroup
	Logical int64
}

// Retarget points a logical group at its migrated location without
// counting it as a fresh host write.
func (f *FTL) Retarget(lg int64, dst flash.PhysGroup) {
	old := f.table.at(lg)
	if old != 0 {
		f.invalidate(flash.PhysGroup(old - 1))
	}
	f.table.set(lg, int32(dst)+1)
	f.rev.set(int64(dst), int32(lg)+1)
	f.validPerSB[f.sbOf(dst)]++
}

// Release returns an erased victim to its die row's free pool.
func (f *FTL) Release(sb flash.SuperBlock) {
	if f.validPerSB[sb] != 0 {
		panic(fmt.Sprintf("flashvisor: releasing super block %d with %d valid groups", sb, f.validPerSB[sb]))
	}
	row := int(sb) / f.geo.BlocksPerDie
	f.freeSBs[row] = append(f.freeSBs[row], sb)
}

// UsedSuperBlocks returns the reclaim-eligible pool size.
func (f *FTL) UsedSuperBlocks() int { return len(f.usedSBs) - f.usedHead }

// CanAllocHost reports whether a host write can allocate without
// reclaiming. A single reclaim of a fully-valid victim nets zero free
// space, so the foreground path loops on this predicate.
func (f *FTL) CanAllocHost() bool {
	for row := range f.freeSBs {
		if f.rowCanAlloc(row, gcReserve) {
			return true
		}
	}
	return false
}

// MappingBytes returns the scratchpad footprint of the mapping table: four
// bytes per logical group (paper §4.3: 2 MB covers 32 GB).
func (f *FTL) MappingBytes() int64 { return f.table.n * 4 }

// CheckConsistency verifies forward/reverse mapping agreement and per-super-
// block valid counts; tests call it after GC storms.
func (f *FTL) CheckConsistency() error {
	counts := make([]int32, f.geo.SuperBlocks())
	for lg := int64(0); lg < f.table.n; lg++ {
		pg := f.table.at(lg)
		if pg == 0 {
			continue
		}
		if f.rev.at(int64(pg-1)) != int32(lg)+1 {
			return fmt.Errorf("flashvisor: table[%d]=%d but rev[%d]=%d", lg, pg-1, pg-1, f.rev.at(int64(pg-1))-1)
		}
		counts[f.sbOf(flash.PhysGroup(pg-1))]++
	}
	for pg := int64(0); pg < f.rev.n; pg++ {
		lg := f.rev.at(pg)
		if lg != 0 && f.table.at(int64(lg-1)) != int32(pg)+1 {
			return fmt.Errorf("flashvisor: rev[%d]=%d but table[%d]=%d", pg, lg-1, lg-1, f.table.at(int64(lg-1))-1)
		}
	}
	for sb := range counts {
		if counts[sb] != f.validPerSB[sb] {
			return fmt.Errorf("flashvisor: super block %d valid count %d, recomputed %d", sb, f.validPerSB[sb], counts[sb])
		}
	}
	return nil
}
