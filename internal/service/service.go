// Package service is the simulation-as-a-service layer: an HTTP/JSON
// daemon (cmd/abacusd) that serves experiment renders to many
// concurrent clients from one shared image cache and worker pool.
//
// The API is deliberately small:
//
//	POST   /v1/jobs              submit a JobRequest  -> 202 JobStatus
//	GET    /v1/jobs              list retained jobs
//	GET    /v1/jobs/{id}         poll a job's status
//	GET    /v1/jobs/{id}/result  fetch the rendered bytes (?wait=1 blocks)
//	GET    /v1/jobs/{id}/stream  stream the bytes as the render produces them
//	DELETE /v1/jobs/{id}         cancel (queued jobs dequeue eagerly)
//	GET    /v1/experiments       list experiment ids
//	GET    /metrics              Prometheus text exposition
//	GET    /healthz              liveness
//
// The load-bearing invariant, pinned by the golden-equivalence suite:
// a job's result bytes are exactly what the abacus-repro CLI prints for
// the same knobs. The daemon adds admission control (bounded queue,
// 429 shedding, per-client round-robin fairness) and server-side
// deadlines on top, never different bytes.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/imagestore"
)

// Config shapes a Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// Workers is the number of concurrent jobs (default 2). Each job's
	// render additionally fans out over SimWorkers device simulations.
	Workers int
	// SimWorkers bounds the per-job simulation parallelism, the Suite's
	// Workers knob (default 1: within a job, renders are sequential, so
	// concurrency comes from serving many jobs at once).
	SimWorkers int
	// QueueDepth bounds admitted-but-not-dispatched jobs across all
	// clients (default 64); past it, submits shed with 429.
	QueueDepth int
	// DefaultTimeout bounds a job's execution when the request names no
	// timeout_ms (default 2m); MaxTimeout clamps requested timeouts
	// (default 10m). Both run from dispatch, not submission.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetainJobs bounds how many terminal jobs stay queryable (default
	// 256); the oldest are forgotten first.
	RetainJobs int
	// MaxSuites bounds the pool of experiment suites kept warm, one per
	// distinct (scale, devices, fault plan) combination (default 8).
	MaxSuites int
	// Images is the image cache every suite shares (default: a fresh
	// process-wide cache). The flashabacus facade passes its shared one.
	Images *cluster.ImageCache
	// Store optionally backs Images with a persistent image store.
	Store imagestore.Store

	// gate, when set by in-package tests, runs after a job is dispatched
	// and before its render starts — a seam for deterministically
	// blocking workers in fairness and shedding tests. The context is
	// the job's execution context, so a blocked gate still honors
	// cancellation and shutdown.
	gate func(context.Context, *job)
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.SimWorkers < 1 {
		c.SimWorkers = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.DefaultTimeout > c.MaxTimeout {
		c.DefaultTimeout = c.MaxTimeout
	}
	if c.RetainJobs < 1 {
		c.RetainJobs = 256
	}
	if c.MaxSuites < 1 {
		c.MaxSuites = 8
	}
	if c.Images == nil {
		c.Images = cluster.NewImageCache()
	}
	return c
}

// suiteKey identifies a reusable experiment suite: every knob that
// shapes a suite's state. Jobs with equal keys share one suite — and
// with it the single-flight cell cache, so a repeat job is mostly
// cache reads.
type suiteKey struct {
	scale   int64
	devices int
	fault   string // fault name + "\x00" + plan text ("" = none)
}

// Server is the daemon: an http.Handler plus the worker pool behind it.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	sched  *scheduler
	met    *metrics
	images *cluster.ImageCache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu      sync.Mutex
	nextID  int64
	nextSeq int64
	jobs    map[string]*job
	order   []string // job ids, submission order, for retention
	suites  map[suiteKey]*experiments.Suite
	suiteQ  []suiteKey // suite keys, least recently used first
	closed  bool
}

// New builds a Server and starts its workers. Callers must Close it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Store != nil {
		cfg.Images.SetStore(cfg.Store)
	}
	s := &Server{
		cfg:    cfg,
		sched:  newScheduler(cfg.QueueDepth),
		met:    newMetrics(),
		images: cfg.Images,
		jobs:   map[string]*job{},
		suites: map[suiteKey]*experiments.Suite{},
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.route("POST /v1/jobs", s.handleSubmit)
	s.route("GET /v1/jobs", s.handleList)
	s.route("GET /v1/jobs/{id}", s.handleStatus)
	s.route("GET /v1/jobs/{id}/result", s.handleResult)
	s.route("GET /v1/jobs/{id}/stream", s.handleStream)
	s.route("DELETE /v1/jobs/{id}", s.handleCancel)
	s.route("GET /v1/experiments", s.handleExperiments)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// route registers a handler wrapped with request accounting; the route
// pattern doubles as the requests_total label, so label cardinality is
// the route table, not the URL space.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.met.request(pattern, rec.code)
	})
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops admission, cancels queued and running jobs, and waits for
// the workers to drain. The handler keeps answering reads (status,
// results, metrics) for jobs it retains.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, j := range s.sched.close() {
		if j.finalize(StateCancelled, "server shutting down", time.Now()) {
			s.met.jobEvent("cancelled")
		}
	}
	s.baseCancel()
	s.wg.Wait()
}

// statusRecorder captures the response code for request accounting.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the error body every non-2xx JSON response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// clientID resolves the fairness identity of a request: the body's
// client field, else the X-Abacus-Client header, else the remote host —
// so unlabelled clients on distinct hosts still get distinct queues.
func clientID(req *JobRequest, r *http.Request) (string, error) {
	if req.Client != "" {
		return req.Client, nil
	}
	if h := r.Header.Get("X-Abacus-Client"); h != "" {
		if !nameRE.MatchString(h) {
			return "", fmt.Errorf("X-Abacus-Client %q must match %s", h, nameRE)
		}
		return h, nil
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		host = r.RemoteAddr
	}
	if host == "" {
		host = "anonymous"
	}
	return host, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeJobRequest(r.Body)
	if err != nil {
		s.met.jobEvent("rejected")
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	plan, err := req.Normalize()
	if err != nil {
		s.met.jobEvent("rejected")
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	client, err := clientID(req, r)
	if err != nil {
		s.met.jobEvent("rejected")
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.Client = client

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	j := newJob(id, client, *req, plan, timeout, time.Now())
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.retainLocked()
	s.mu.Unlock()

	if err := s.sched.submit(j); err != nil {
		s.dropJob(id)
		switch {
		case errors.Is(err, ErrQueueFull):
			s.met.jobEvent("shed")
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
		default:
			s.met.jobEvent("rejected")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	s.met.jobEvent("accepted")
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, j.status())
}

// retainLocked forgets the oldest terminal jobs beyond the retention
// bound. Queued and running jobs are never dropped — their count is
// bounded by queue depth plus workers.
func (s *Server) retainLocked() {
	if len(s.order) <= s.cfg.RetainJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.RetainJobs
	for _, id := range s.order {
		if excess > 0 {
			if j := s.jobs[id]; j != nil {
				j.mu.Lock()
				terminal := j.state.terminal()
				j.mu.Unlock()
				if terminal {
					delete(s.jobs, id)
					excess--
					continue
				}
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// dropJob removes a job that never entered the queue (shed or rejected
// at admission), so it does not linger as a phantom queued job.
func (s *Server) dropJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			writeError(w, http.StatusRequestTimeout, "wait cancelled: %v", r.Context().Err())
			return
		}
	}
	st := j.status()
	switch st.State {
	case StateDone:
		j.mu.Lock()
		out := append([]byte(nil), j.out...)
		j.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Abacus-Job-State", string(st.State))
		w.Write(out)
	case StateFailed, StateCancelled:
		writeJSON(w, http.StatusConflict, st)
	default:
		// Not terminal: report where the job stands instead of blocking.
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleStream writes the job's output bytes as the render produces
// them and closes once the job is terminal; the final state travels in
// the X-Abacus-Job-State trailer so a streaming client needs no
// follow-up status call.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Trailer", "X-Abacus-Job-State, X-Abacus-Job-Error")
	flusher, _ := w.(http.Flusher)

	// A disconnected client never signals the job's cond, so mirror the
	// request context into a broadcast that wakes the wait loop below.
	stop := context.AfterFunc(r.Context(), func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	sent := 0
	for {
		j.mu.Lock()
		for sent == len(j.out) && !j.state.terminal() && r.Context().Err() == nil {
			j.cond.Wait()
		}
		chunk := append([]byte(nil), j.out[sent:]...)
		// finalize and Write share j.mu, so a terminal state observed
		// with the full buffer snapshotted means chunk is the last data.
		final := j.state.terminal() && sent+len(chunk) == len(j.out)
		errMsg := j.errMsg
		state := j.state
		j.mu.Unlock()

		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			sent += len(chunk)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if r.Context().Err() != nil {
			return
		}
		if final {
			w.Header().Set("X-Abacus-Job-State", string(state))
			w.Header().Set("X-Abacus-Job-Error", errMsg)
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	s.cancel(j)
	writeJSON(w, http.StatusOK, j.status())
}

// cancel requests cancellation: a still-queued job dequeues eagerly and
// finalizes immediately; a running job has its render context
// cancelled and finalizes when the render unwinds; a terminal job is
// left as it ended.
func (s *Server) cancel(j *job) {
	j.mu.Lock()
	j.cancelled = true
	cancelRun := j.cancelRun
	j.mu.Unlock()
	if s.sched.remove(j) {
		if j.finalize(StateCancelled, "cancelled by client", time.Now()) {
			s.met.jobEvent("cancelled")
		}
		return
	}
	if cancelRun != nil {
		cancelRun()
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experiments.IDs())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w, s.sched.depth(), s.images.Stats())
}

// worker is the dispatch loop: pop the next fairly-scheduled job and
// run it to a terminal state. Exits when the scheduler closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.sched.pop()
		if j == nil {
			return
		}
		s.execute(j)
	}
}

// execute runs one dispatched job to a terminal state.
func (s *Server) execute(j *job) {
	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	defer cancel()

	s.mu.Lock()
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()

	j.mu.Lock()
	if j.state.terminal() { // cancel raced dispatch
		j.mu.Unlock()
		return
	}
	if j.cancelled {
		j.mu.Unlock()
		if j.finalize(StateCancelled, "cancelled by client", time.Now()) {
			s.met.jobEvent("cancelled")
		}
		return
	}
	j.state = StateRunning
	j.seq = seq
	j.started = time.Now()
	j.cancelRun = cancel
	j.cond.Broadcast()
	j.mu.Unlock()
	s.met.jobEvent("dispatched")
	s.met.runningDelta(+1)
	defer s.met.runningDelta(-1)

	if s.cfg.gate != nil {
		s.cfg.gate(ctx, j)
	}

	err := s.render(ctx, j)
	now := time.Now()
	j.mu.Lock()
	cancelled := j.cancelled
	started := j.started
	j.mu.Unlock()

	var state JobState
	var errMsg string
	switch {
	case err == nil:
		state = StateDone
	case cancelled:
		state, errMsg = StateCancelled, "cancelled by client"
	case s.baseCtx.Err() != nil:
		state, errMsg = StateCancelled, "server shutting down"
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		state, errMsg = StateFailed, fmt.Sprintf("deadline exceeded after %s", j.timeout)
	default:
		state, errMsg = StateFailed, err.Error()
	}
	if j.finalize(state, errMsg, now) {
		s.met.jobEvent(string(state))
		if state == StateDone {
			s.met.observe(j.req.Experiment, now.Sub(started).Seconds())
		}
	}
}

// render renders the job's selection through a pooled suite; the job
// itself is the io.Writer, so streaming readers see bytes live.
func (s *Server) render(ctx context.Context, j *job) error {
	sel, err := experiments.Select(j.req.Experiment, j.req.Devices, j.req.Topology, j.plan != nil)
	if err != nil {
		return err
	}
	suite, err := s.suiteFor(j)
	if err != nil {
		return err
	}
	return suite.Render(ctx, j, sel)
}

// suiteFor returns the pooled suite for the job's knobs, creating and
// LRU-evicting as needed. Suites share the server's image cache, so an
// evicted suite costs repeat jobs its cell cache, not its images.
func (s *Server) suiteFor(j *job) (*experiments.Suite, error) {
	key := suiteKey{scale: j.req.Scale, devices: j.req.Devices}
	if j.plan != nil {
		// Keyed by the request's plan text (a preset name or the inline
		// grammar), which determines the parsed plan.
		key.fault = j.req.FaultName + "\x00" + j.req.FaultPlan
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if suite, ok := s.suites[key]; ok {
		s.suiteQ = append(dropSuiteKey(s.suiteQ, key), key)
		return suite, nil
	}
	suite := experiments.NewSuiteWithImages(j.req.Scale, s.images)
	suite.Workers = s.cfg.SimWorkers
	suite.MaxDevices = j.req.Devices
	if j.plan != nil {
		suite.SetFaultScenarios([]experiments.FaultScenario{{Name: j.req.FaultName, Plan: j.plan}})
	}
	s.suites[key] = suite
	s.suiteQ = append(s.suiteQ, key)
	if len(s.suiteQ) > s.cfg.MaxSuites {
		evict := s.suiteQ[0]
		s.suiteQ = s.suiteQ[1:]
		delete(s.suites, evict)
		// A running job holding the evicted suite keeps its reference;
		// eviction only stops new jobs from finding it.
	}
	return suite, nil
}

func dropSuiteKey(q []suiteKey, key suiteKey) []suiteKey {
	for i, k := range q {
		if k == key {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// Experiments returns the servable experiment ids (presentation order),
// plus the "all" pseudo-id accepted by submit.
func Experiments() []string {
	return append(experiments.IDs(), "all")
}
