package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertAndLen(t *testing.T) {
	var tr Tree
	tr.Insert(Item{Start: 10, End: 20, Value: 1})
	tr.Insert(Item{Start: 5, End: 8, Value: 2})
	tr.Insert(Item{Start: 30, End: 45, Value: 3})
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if msg := tr.checkInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestDuplicateStartKeys(t *testing.T) {
	var tr Tree
	tr.Insert(Item{Start: 10, End: 20, Value: 1})
	tr.Insert(Item{Start: 10, End: 30, Value: 2})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if !tr.AnyOverlap(25, 26) {
		t.Error("should overlap the longer duplicate")
	}
	if !tr.Delete(10, 30, 2) {
		t.Fatal("delete of duplicate failed")
	}
	if tr.AnyOverlap(25, 26) {
		t.Error("overlap should be gone after deleting longer duplicate")
	}
	if !tr.AnyOverlap(15, 16) {
		t.Error("remaining duplicate lost")
	}
}

func TestOverlapSemantics(t *testing.T) {
	var tr Tree
	tr.Insert(Item{Start: 10, End: 20, Value: 1})
	tests := []struct {
		s, e int64
		want bool
	}{
		{0, 10, false},  // adjacent below (half-open)
		{20, 30, false}, // adjacent above
		{0, 11, true},
		{19, 25, true},
		{12, 15, true}, // contained
		{5, 30, true},  // containing
	}
	for _, tt := range tests {
		if got := tr.AnyOverlap(tt.s, tt.e); got != tt.want {
			t.Errorf("AnyOverlap(%d,%d) = %v, want %v", tt.s, tt.e, got, tt.want)
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	var tr Tree
	tr.Insert(Item{Start: 1, End: 2, Value: 1})
	if tr.Delete(1, 3, 1) {
		t.Error("deleted interval with wrong end")
	}
	if tr.Delete(2, 3, 1) {
		t.Error("deleted missing start key")
	}
	if tr.Delete(1, 2, 99) {
		t.Error("deleted interval with wrong value")
	}
	if tr.Len() != 1 {
		t.Errorf("Len changed to %d", tr.Len())
	}
}

func TestAllInOrder(t *testing.T) {
	var tr Tree
	starts := []int64{42, 7, 19, 3, 88, 55, 21}
	for i, s := range starts {
		tr.Insert(Item{Start: s, End: s + 1, Value: i})
	}
	var got []int64
	tr.All(func(it Item) bool { got = append(got, it.Start); return true })
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("All not in order: %v", got)
	}
	if len(got) != len(starts) {
		t.Errorf("All visited %d, want %d", len(got), len(starts))
	}
}

// reference is a brute-force oracle.
type reference []Item

func (r reference) overlaps(s, e int64) []int {
	var ids []int
	for _, it := range r {
		if it.Start < e && it.End > s {
			ids = append(ids, it.Value.(int))
		}
	}
	sort.Ints(ids)
	return ids
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tr Tree
	var ref reference
	id := 0
	for step := 0; step < 3000; step++ {
		switch {
		case len(ref) == 0 || rng.Intn(3) > 0:
			s := int64(rng.Intn(1000))
			e := s + 1 + int64(rng.Intn(100))
			it := Item{Start: s, End: e, Value: id}
			id++
			tr.Insert(it)
			ref = append(ref, it)
		default:
			i := rng.Intn(len(ref))
			it := ref[i]
			if !tr.Delete(it.Start, it.End, it.Value) {
				t.Fatalf("step %d: delete %+v failed", step, it)
			}
			ref = append(ref[:i], ref[i+1:]...)
		}
		if step%50 == 0 {
			if msg := tr.checkInvariants(); msg != "" {
				t.Fatalf("step %d: invariant: %s", step, msg)
			}
		}
		if step%20 == 0 {
			qs := int64(rng.Intn(1000))
			qe := qs + 1 + int64(rng.Intn(150))
			var got []int
			tr.Overlaps(qs, qe, func(it Item) bool {
				got = append(got, it.Value.(int))
				return true
			})
			sort.Ints(got)
			want := ref.overlaps(qs, qe)
			if len(got) != len(want) {
				t.Fatalf("step %d: query [%d,%d) got %v want %v", step, qs, qe, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: query [%d,%d) got %v want %v", step, qs, qe, got, want)
				}
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", tr.Len(), len(ref))
	}
}

func TestInvariantsHoldUnderSequentialInserts(t *testing.T) {
	// Sequential keys are the worst case for naive BSTs; the red-black
	// balancing must keep the tree valid.
	var tr Tree
	for i := 0; i < 2000; i++ {
		tr.Insert(Item{Start: int64(i) * 10, End: int64(i)*10 + 5, Value: i})
	}
	if msg := tr.checkInvariants(); msg != "" {
		t.Fatalf("invariant: %s", msg)
	}
	// Every inserted interval must be findable.
	n := 0
	tr.All(func(Item) bool { n++; return true })
	if n != 2000 {
		t.Fatalf("All visited %d, want 2000", n)
	}
}

func TestQuickInsertDeleteRoundTrip(t *testing.T) {
	f := func(startsRaw []uint16) bool {
		var tr Tree
		items := make([]Item, 0, len(startsRaw))
		for i, s := range startsRaw {
			it := Item{Start: int64(s), End: int64(s) + 10, Value: i}
			tr.Insert(it)
			items = append(items, it)
		}
		if tr.checkInvariants() != "" {
			return false
		}
		for _, it := range items {
			if !tr.Delete(it.Start, it.End, it.Value) {
				return false
			}
		}
		return tr.Len() == 0 && tr.checkInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOverlapsEarlyStop(t *testing.T) {
	var tr Tree
	for i := 0; i < 10; i++ {
		tr.Insert(Item{Start: int64(i), End: 100, Value: i})
	}
	count := 0
	tr.Overlaps(0, 100, func(Item) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d, want 3", count)
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var tr Tree
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := int64(rng.Intn(1 << 20))
		tr.Insert(Item{Start: s, End: s + 64, Value: i})
		if tr.Len() > 1024 {
			tr.All(func(it Item) bool {
				tr.Delete(it.Start, it.End, it.Value)
				return false
			})
		}
	}
}

func BenchmarkOverlapQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var tr Tree
	for i := 0; i < 4096; i++ {
		s := int64(rng.Intn(1 << 20))
		tr.Insert(Item{Start: s, End: s + 128, Value: i})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := int64(rng.Intn(1 << 20))
		tr.AnyOverlap(s, s+256)
	}
}
