package flashvisor

import (
	"repro/internal/rbtree"
	"repro/internal/sim"
	"repro/internal/units"
)

// LockMode distinguishes read and write range locks.
type LockMode int

// Lock modes; conflicts follow the paper's rule: a mapping request is
// blocked while an overlapping range is held for the opposite mode (and
// writes also block writes). Concurrent readers are compatible.
const (
	LockRead LockMode = iota
	LockWrite
)

func (m LockMode) String() string {
	if m == LockRead {
		return "read"
	}
	return "write"
}

type lockHold struct {
	mode    LockMode
	owner   int
	release sim.Time
}

// RangeLocks is Flashvisor's data-section protection (paper §4.3): a
// red-black interval tree keyed by the start page group of each mapped
// section, augmented with the range end. Grants are analytic: acquiring a
// conflicting range is delayed until the conflicting holders release.
type RangeLocks struct {
	tree      rbtree.Tree
	conflicts int64
	waited    units.Duration
}

// Grant returns the earliest time at or after `at` when [start, end) may be
// held in the given mode. It also prunes holds that released before `at`.
func (l *RangeLocks) Grant(at sim.Time, start, end int64, mode LockMode) sim.Time {
	grant := at
	type expired struct {
		s, e int64
		v    interface{}
	}
	var prune []expired
	l.tree.Overlaps(start, end, func(it rbtree.Item) bool {
		h := it.Value.(*lockHold)
		if h.release <= at {
			prune = append(prune, expired{it.Start, it.End, it.Value})
			return true
		}
		if mode == LockRead && h.mode == LockRead {
			return true // shared readers
		}
		if h.release > grant {
			grant = h.release
		}
		return true
	})
	for _, p := range prune {
		l.tree.Delete(p.s, p.e, p.v)
	}
	if grant > at {
		l.conflicts++
		l.waited += grant - at
	}
	return grant
}

// Hold records that owner holds [start, end) in the given mode until
// release. The returned handle releases it eagerly.
func (l *RangeLocks) Hold(start, end int64, mode LockMode, owner int, release sim.Time) *Hold {
	h := &lockHold{mode: mode, owner: owner, release: release}
	l.tree.Insert(rbtree.Item{Start: start, End: end, Value: h})
	return &Hold{locks: l, start: start, end: end, h: h}
}

// Hold is an acquired range-lock handle.
type Hold struct {
	locks      *RangeLocks
	start, end int64
	h          *lockHold
}

// Release drops the hold immediately (lazy pruning otherwise removes it
// after its release time passes).
func (h *Hold) Release() { h.locks.tree.Delete(h.start, h.end, h.h) }

// Conflicts returns how many grants had to wait, and Waited the total delay.
func (l *RangeLocks) Conflicts() int64 { return l.conflicts }

// Waited returns the cumulative grant delay.
func (l *RangeLocks) Waited() units.Duration { return l.waited }

// Held returns the number of live holds (including expired, un-pruned ones).
func (l *RangeLocks) Held() int { return l.tree.Len() }
