// Command abacus-sim runs a single workload on a single accelerated system
// and prints its measurements — the quickest way to poke at the simulator.
//
// Usage:
//
//	abacus-sim [-system IntraO3] [-workload ATAX|MX3|bfs] [-scale 16] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/units"
	"repro/internal/workload"
)

// options holds the parsed command line.
type options struct {
	system   string
	workload string
	scale    int64
	verbose  bool
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("abacus-sim", flag.ContinueOnError)
	fs.StringVar(&o.system, "system", "IntraO3", "SIMD, InterSt, InterDy, IntraIo, or IntraO3")
	fs.StringVar(&o.workload, "workload", "ATAX", "Table 2 app, MX1..MX14, or bfs/wc/nn/nw/path")
	fs.Int64Var(&o.scale, "scale", 16, "divide input sizes by this factor")
	fs.BoolVar(&o.verbose, "v", false, "print per-kernel latencies and component energy")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	if err := run(o.system, o.workload, o.scale, o.verbose); err != nil {
		fmt.Fprintln(os.Stderr, "abacus-sim:", err)
		os.Exit(1)
	}
}

func run(sysName, wl string, scale int64, verbose bool) error {
	var sys core.System
	found := false
	for _, s := range core.Systems {
		if s.String() == sysName {
			sys, found = s, true
		}
	}
	if !found {
		return fmt.Errorf("unknown system %q", sysName)
	}

	o := workload.DefaultOptions()
	o.Scale = scale
	var (
		b   *workload.Bundle
		err error
	)
	if strings.HasPrefix(wl, "MX") {
		n, convErr := strconv.Atoi(strings.TrimPrefix(wl, "MX"))
		if convErr != nil {
			return fmt.Errorf("bad mix name %q", wl)
		}
		b, err = workload.Mix(n, o)
	} else {
		b, err = workload.Homogeneous(wl, o)
	}
	if err != nil {
		return err
	}

	r, err := experiments.RunBundle(context.Background(), sys, b, false)
	if err != nil {
		return err
	}
	fmt.Println(r)
	fmt.Printf("  flashvisor: %d read groups, %d write groups, %d fg reclaims, %d migrated\n",
		r.Visor.ReadGroups, r.Visor.WriteGroups, r.Visor.FGReclaims, r.Visor.Migrated)
	fmt.Printf("  storengine: %d bg reclaims, %d journals; lock conflicts %d (waited %s)\n",
		r.BGReclaims, r.Journals, r.LockConflicts, units.FormatDuration(r.LockWaited))
	if verbose {
		for i, l := range r.KernelLatencies {
			fmt.Printf("  kernel %2d: latency %s\n", i, units.FormatDuration(l))
		}
		for _, e := range r.ByComponent {
			fmt.Printf("  %-16s %-14s %8.3f J\n", e.Component, e.Cat, e.Joules)
		}
	}
	return nil
}
