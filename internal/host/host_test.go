package host

import (
	"bytes"
	"testing"

	"repro/internal/pcie"
	"repro/internal/units"
)

func newHost(t *testing.T) *Host {
	t.Helper()
	link, err := pcie.New(pcie.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(DefaultConfig(), link)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.ChunkSize = 0
	if bad.Validate() == nil {
		t.Error("zero chunk accepted")
	}
	bad = DefaultConfig()
	bad.SSDReadBW = 0
	if bad.Validate() == nil {
		t.Error("zero SSD bandwidth accepted")
	}
	bad = DefaultConfig()
	bad.ExtraCopies = -1
	if bad.Validate() == nil {
		t.Error("negative copies accepted")
	}
}

func TestFetchSerializesFullPath(t *testing.T) {
	h := newHost(t)
	n := 64 * units.MB
	done, _ := h.FetchToAccel(0, 0, n)
	// Lower bound: data must cross SSD, then copies, then PCIe serially.
	minimum := h.Cfg.SSDReadBW.DurationFor(n) +
		h.Cfg.CopyBW.DurationFor(n*int64(h.Cfg.ExtraCopies)) +
		h.Link.Cfg.BW.DurationFor(n)
	if done < minimum {
		t.Errorf("fetch of 64MB done at %s, below serial lower bound %s",
			units.FormatDuration(done), units.FormatDuration(minimum))
	}
	if h.SSDBusy() == 0 || h.CPUBusy() == 0 || h.DRAMBusy() == 0 {
		t.Error("busy counters not accumulated")
	}
	if h.StackBusy()+h.CopyBusy() != h.CPUBusy() {
		t.Error("CPU split does not sum to total")
	}
}

func TestFetchEffectiveBandwidthBelowPCIe(t *testing.T) {
	h := newHost(t)
	n := 256 * units.MB
	done, _ := h.FetchToAccel(0, 0, n)
	bw := float64(n) / units.Seconds(done)
	if bw >= 1e9 {
		t.Errorf("effective fetch bandwidth %.0f MB/s, must be below the 1 GB/s link", bw/1e6)
	}
	if bw < 0.2e9 {
		t.Errorf("effective fetch bandwidth %.0f MB/s implausibly low", bw/1e6)
	}
}

func TestStoreUsesWriteBandwidth(t *testing.T) {
	h := newHost(t)
	n := 32 * units.MB
	rd, _ := h.FetchToAccel(0, 0, n)
	h2 := newHost(t)
	wr := h2.StoreFromAccel(0, 0, n, nil)
	if wr <= rd {
		t.Errorf("store (%s) should be slower than fetch (%s): SSD writes at 900MB/s",
			units.FormatDuration(wr), units.FormatDuration(rd))
	}
}

func TestZeroBytesNoop(t *testing.T) {
	h := newHost(t)
	done, data := h.FetchToAccel(42, 0, 0)
	if done != 42 || data != nil {
		t.Error("zero fetch did something")
	}
	if h.StoreFromAccel(42, 0, 0, nil) != 42 {
		t.Error("zero store did something")
	}
}

func TestPerChunkCPUCharges(t *testing.T) {
	h := newHost(t)
	n := 16 * units.MB // 4 chunks at the 4MB default
	h.FetchToAccel(0, 0, n)
	if got, want := h.StackBusy(), 4*h.Cfg.PerReqCPU; got != want {
		t.Errorf("stack CPU = %s, want %s (4 chunks)", units.FormatDuration(got), units.FormatDuration(want))
	}
}

func TestFunctionalRoundTrip(t *testing.T) {
	h := newHost(t)
	payload := bytes.Repeat([]byte{7, 11}, 1000)
	if err := h.Populate(4096, int64(len(payload)), payload); err != nil {
		t.Fatal(err)
	}
	_, got := h.FetchToAccel(0, 4096, int64(len(payload)))
	if !bytes.Equal(got, payload) {
		t.Error("fetched data mismatch")
	}
	// Unknown range stays nil (timing-only).
	if _, d := h.FetchToAccel(0, 999999, 10); d != nil {
		t.Error("unknown range returned data")
	}
}

func TestStoreFromAccelPersistsData(t *testing.T) {
	h := newHost(t)
	out := []byte("results!")
	h.StoreFromAccel(0, 128, int64(len(out)), out)
	_, got := h.FetchToAccel(0, 128, int64(len(out)))
	if !bytes.Equal(got, out) {
		t.Error("stored results not readable")
	}
}

func TestPopulateValidation(t *testing.T) {
	h := newHost(t)
	if err := h.Populate(0, 0, nil); err == nil {
		t.Error("zero populate accepted")
	}
}

func TestNoCopiesConfig(t *testing.T) {
	link, _ := pcie.New(pcie.DefaultConfig())
	cfg := DefaultConfig()
	cfg.ExtraCopies = 0
	h, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	h.FetchToAccel(0, 0, 8*units.MB)
	if h.CopyBusy() != 0 {
		t.Error("copies charged with ExtraCopies=0")
	}
}
