// Deterministic service-level fault injection: the serving analogue of
// internal/faults' device-level plans. A Chaos plan is parsed from a
// compact spec, seeded, and driven entirely by counters over durable
// journal appends and render dispatches — never wall clock or rand
// state — so a chaos run is reproducible byte for byte and the crash
// harness can kill a real daemon at exactly the same journal point
// every time.
package service

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/journal"
)

// Chaos is a deterministic service-level fault plan. The zero value
// injects nothing; ParseChaos builds one from a spec string.
type Chaos struct {
	// Seed picks the kill point inside [KillAfterAppends,
	// KillAfterAppends+KillSpread) via a splitmix64 draw, the same
	// discipline internal/faults uses for wear retries.
	Seed uint64
	// KillAfterAppends SIGKILLs the process right after the Nth durable
	// journal append (0: never) — the deterministic stand-in for an
	// OOM-kill or power cut mid-load.
	KillAfterAppends int64
	// KillSpread widens the kill point to a seeded draw from
	// [KillAfterAppends, KillAfterAppends+KillSpread).
	KillSpread int64
	// TornTail writes half a record frame over the journal tail
	// immediately before the kill, so the restart also has to digest a
	// torn final record.
	TornTail bool
	// PanicExperiment panics inside the render of the next PanicCount
	// jobs naming this experiment — the in-cell panic the worker
	// isolation must convert into a single failed job.
	PanicExperiment string
	// PanicCount bounds how many renders panic (ParseChaos defaults 1).
	PanicCount int
	// JournalFailAfter makes every journal append past the Nth fail with
	// a synthetic I/O error (0: never) — drives the degradation breaker.
	JournalFailAfter int64
	// JournalSlow stalls every journal append this long first.
	JournalSlow time.Duration

	mu         sync.Mutex
	jl         *journal.Journal
	panicsLeft int
	armed      bool
}

// ParseChaos parses a comma-separated chaos spec:
//
//	kill-after=N[+SPREAD]  SIGKILL after the Nth journal append
//	                       (+SPREAD: seeded draw from [N, N+SPREAD))
//	torn-tail              tear the journal tail right before the kill
//	panic=EXPERIMENT[:K]   panic inside the next K renders (default 1)
//	journal-fail-after=N   journal appends past N fail
//	journal-slow=DUR       every journal append stalls DUR first
//	seed=N                 seed for the kill draw
func ParseChaos(spec string) (*Chaos, error) {
	c := &Chaos{PanicCount: 1}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, hasVal := strings.Cut(field, "=")
		switch key {
		case "torn-tail":
			if hasVal {
				return nil, fmt.Errorf("chaos: torn-tail takes no value")
			}
			c.TornTail = true
		case "kill-after":
			base, spread, hasSpread := strings.Cut(val, "+")
			n, err := strconv.ParseInt(base, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("chaos: kill-after wants a positive append count, got %q", val)
			}
			c.KillAfterAppends = n
			if hasSpread {
				s, err := strconv.ParseInt(spread, 10, 64)
				if err != nil || s < 1 {
					return nil, fmt.Errorf("chaos: kill-after spread must be positive, got %q", spread)
				}
				c.KillSpread = s
			}
		case "panic":
			exp, count, hasCount := strings.Cut(val, ":")
			if exp == "" {
				return nil, fmt.Errorf("chaos: panic wants an experiment id")
			}
			c.PanicExperiment = exp
			if hasCount {
				k, err := strconv.Atoi(count)
				if err != nil || k < 1 {
					return nil, fmt.Errorf("chaos: panic count must be positive, got %q", count)
				}
				c.PanicCount = k
			}
		case "journal-fail-after":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("chaos: journal-fail-after wants a count, got %q", val)
			}
			c.JournalFailAfter = n
		case "journal-slow":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("chaos: journal-slow wants a duration, got %q", val)
			}
			c.JournalSlow = d
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: seed wants an integer, got %q", val)
			}
			c.Seed = n
		default:
			return nil, fmt.Errorf("chaos: unknown directive %q", key)
		}
	}
	return c, nil
}

// killPoint resolves the append count the kill fires at: the base count
// plus a seeded draw over the spread.
func (c *Chaos) killPoint() int64 {
	if c.KillAfterAppends <= 0 {
		return 0
	}
	if c.KillSpread <= 0 {
		return c.KillAfterAppends
	}
	return c.KillAfterAppends + int64(splitmix64(c.Seed)%uint64(c.KillSpread))
}

// splitmix64 is the same tiny seeded mixer internal/faults uses.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// errChaosJournal is the synthetic append failure journal-fail-after
// injects; it drives the service's degradation breaker.
var errChaosJournal = fmt.Errorf("chaos: injected journal write failure")

// arm installs the plan's journal-side injections as the journal's
// hooks. Called by service.New when both a journal and a chaos plan are
// configured.
func (c *Chaos) arm(jl *journal.Journal) {
	c.mu.Lock()
	c.jl = jl
	c.panicsLeft = c.PanicCount
	c.armed = true
	c.mu.Unlock()
	kill := c.killPoint()
	jl.SetHooks(
		func(frame []byte) error {
			if c.JournalSlow > 0 {
				time.Sleep(c.JournalSlow)
			}
			if c.JournalFailAfter > 0 {
				c.mu.Lock()
				defer c.mu.Unlock()
				// Count attempts locally: the journal's own append counter
				// only advances on success.
				c.JournalFailAfter--
				if c.JournalFailAfter <= 0 {
					c.JournalFailAfter = -1 // keep failing forever
					return errChaosJournal
				}
			}
			return nil
		},
		func(appends int64) {
			if kill > 0 && appends >= kill {
				c.die()
			}
		},
	)
}

// die executes the kill: optionally tear the journal tail, then SIGKILL
// our own process — the closest deterministic stand-in for `kill -9`
// that still lands at an exact journal offset. It never returns.
func (c *Chaos) die() {
	if c.TornTail && c.jl != nil {
		c.jl.TearTail()
	}
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable: SIGKILL is not handleable
}

// takePanic consumes one injected panic for the experiment, reporting
// whether this render should die.
func (c *Chaos) takePanic(experiment string) bool {
	if c == nil || c.PanicExperiment == "" || experiment != c.PanicExperiment {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed {
		// Armed lazily when there is no journal to hook.
		c.panicsLeft = c.PanicCount
		c.armed = true
	}
	if c.panicsLeft <= 0 {
		return false
	}
	c.panicsLeft--
	return true
}
