package kernel

import (
	"testing"
	"testing/quick"

	"repro/internal/kdt"
)

// buildApp makes an app with the given per-kernel microblock shapes, where
// each shape entry is the screen count of one microblock.
func buildApp(appIdx int, kernelShapes [][]int) *App {
	a := &App{Name: "test", ID: appIdx}
	for ki, shape := range kernelShapes {
		k := &Kernel{Name: "k", ID: ki, App: appIdx}
		for mi, screens := range shape {
			mb := &Microblock{}
			for si := 0; si < screens; si++ {
				mb.Screens = append(mb.Screens, &Screen{
					Ops: []kdt.Op{{Kind: kdt.OpCompute, Instr: 1000}},
					App: appIdx, Kernel: ki, MB: mi, Idx: si,
				})
			}
			k.MBs = append(k.MBs, mb)
		}
		a.Kernels = append(a.Kernels, k)
	}
	return a
}

func TestScreenAggregates(t *testing.T) {
	s := &Screen{Ops: []kdt.Op{
		{Kind: kdt.OpRead, Bytes: 100},
		{Kind: kdt.OpRead, Bytes: 50},
		{Kind: kdt.OpCompute, Instr: 999},
		{Kind: kdt.OpWrite, Bytes: 25},
	}}
	if s.InputBytes() != 150 {
		t.Errorf("InputBytes = %d", s.InputBytes())
	}
	if s.OutputBytes() != 25 {
		t.Errorf("OutputBytes = %d", s.OutputBytes())
	}
	if s.Instructions() != 999 {
		t.Errorf("Instructions = %d", s.Instructions())
	}
	if s.Ref() == "" {
		t.Error("empty Ref")
	}
}

func TestFromKDTPreservesStructure(t *testing.T) {
	tab := &kdt.Table{
		Name: "fdtd",
		Microblocks: []kdt.Microblock{
			{Screens: []kdt.Screen{{Ops: []kdt.Op{{Kind: kdt.OpCompute, Instr: 1}}}}},
			{Screens: []kdt.Screen{
				{Ops: []kdt.Op{{Kind: kdt.OpCompute, Instr: 2}}},
				{Ops: []kdt.Op{{Kind: kdt.OpCompute, Instr: 3}}},
			}},
		},
	}
	k := FromKDT(tab, 4, 9)
	if k.Name != "fdtd" || k.App != 4 || k.ID != 9 {
		t.Errorf("identity = %+v", k)
	}
	if len(k.MBs) != 2 || len(k.MBs[1].Screens) != 2 {
		t.Fatal("structure lost")
	}
	s := k.MBs[1].Screens[1]
	if s.App != 4 || s.Kernel != 9 || s.MB != 1 || s.Idx != 1 {
		t.Errorf("screen identity = %+v", s)
	}
	if !k.MBs[0].Serial() || k.MBs[1].Serial() {
		t.Error("Serial misreported")
	}
}

func TestChainReadyRespectsMicroblockOrder(t *testing.T) {
	var c Chain
	c.AddApp(buildApp(0, [][]int{{2, 3}}), 0)
	ready := c.Ready(OutOfOrder, nil)
	if len(ready) != 2 {
		t.Fatalf("ready = %d screens, want 2 (only mb0)", len(ready))
	}
	for _, s := range ready {
		c.MarkRunning(s, 0, 0)
	}
	// mb1 must stay blocked until every mb0 screen completes.
	c.MarkDone(ready[0], 10)
	if got := c.Ready(OutOfOrder, nil); len(got) != 0 {
		t.Fatalf("mb1 released early: %d screens", len(got))
	}
	comp := c.MarkDone(ready[1], 20)
	if !comp.MBDone || comp.KernelDone {
		t.Errorf("completion flags = %+v", comp)
	}
	if got := c.Ready(OutOfOrder, nil); len(got) != 3 {
		t.Fatalf("mb1 not released: %d screens", len(got))
	}
}

func TestChainInOrderVsOutOfOrder(t *testing.T) {
	// One app, two kernels. In-order exposes only kernel 0; out-of-order
	// borrows kernel 1's first microblock too (paper Fig. 7c).
	var c Chain
	c.AddApp(buildApp(0, [][]int{{1}, {2}}), 0)
	if got := c.Ready(InOrder, nil); len(got) != 1 {
		t.Errorf("in-order ready = %d, want 1", len(got))
	}
	if got := c.Ready(OutOfOrder, nil); len(got) != 3 {
		t.Errorf("out-of-order ready = %d, want 3", len(got))
	}
}

func TestChainMultipleAppsConcurrent(t *testing.T) {
	// Apps are independent even in-order (Fig. 7b runs k0 and k2 at once).
	var c Chain
	c.AddApp(buildApp(0, [][]int{{2}}), 0)
	c.AddApp(buildApp(1, [][]int{{2}}), 0)
	if got := c.Ready(InOrder, nil); len(got) != 4 {
		t.Errorf("two-app in-order ready = %d, want 4", len(got))
	}
}

func TestChainOrdering(t *testing.T) {
	var c Chain
	c.AddApp(buildApp(0, [][]int{{1}, {1}}), 0)
	c.AddApp(buildApp(1, [][]int{{1}}), 0)
	ready := c.Ready(OutOfOrder, nil)
	if len(ready) != 3 {
		t.Fatalf("ready = %d", len(ready))
	}
	if ready[0].App != 0 || ready[0].Kernel != 0 ||
		ready[1].App != 0 || ready[1].Kernel != 1 ||
		ready[2].App != 1 {
		t.Errorf("ready order wrong: %s %s %s", ready[0].Ref(), ready[1].Ref(), ready[2].Ref())
	}
}

func TestCompletionCascade(t *testing.T) {
	var c Chain
	c.AddApp(buildApp(0, [][]int{{1}}), 5)
	s := c.Ready(OutOfOrder, nil)[0]
	c.MarkRunning(s, 3, 7)
	comp := c.MarkDone(s, 42)
	if !comp.MBDone || !comp.KernelDone || !comp.AppDone {
		t.Errorf("completion = %+v, want all true", comp)
	}
	if !c.AllDone() {
		t.Error("chain not done")
	}
	a := c.Apps[0]
	if a.DoneAt != 42 || a.Kernels[0].DoneAt != 42 {
		t.Error("completion times not recorded")
	}
	if a.Kernels[0].IssueAt != 5 {
		t.Errorf("issue time = %d, want arrival 5", a.Kernels[0].IssueAt)
	}
}

func TestDoubleDispatchPanics(t *testing.T) {
	var c Chain
	c.AddApp(buildApp(0, [][]int{{1}}), 0)
	s := c.Ready(OutOfOrder, nil)[0]
	c.MarkRunning(s, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.MarkRunning(s, 1, 0)
}

func TestMarkDoneWithoutRunningPanics(t *testing.T) {
	var c Chain
	c.AddApp(buildApp(0, [][]int{{1}}), 0)
	s := c.Apps[0].Kernels[0].MBs[0].Screens[0]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.MarkDone(s, 0)
}

func TestKernelBytes(t *testing.T) {
	k := &Kernel{MBs: []*Microblock{
		{Screens: []*Screen{{Ops: []kdt.Op{{Kind: kdt.OpRead, Bytes: 10}}}}},
		{Screens: []*Screen{{Ops: []kdt.Op{{Kind: kdt.OpRead, Bytes: 20}, {Kind: kdt.OpWrite, Bytes: 99}}}}},
	}}
	if k.Bytes() != 30 {
		t.Errorf("Bytes = %d, want 30 (reads only)", k.Bytes())
	}
}

func TestChainKernels(t *testing.T) {
	var c Chain
	c.AddApp(buildApp(0, [][]int{{1}, {1}}), 0)
	c.AddApp(buildApp(1, [][]int{{1}}), 0)
	if got := len(c.Kernels()); got != 3 {
		t.Errorf("Kernels = %d, want 3", got)
	}
}

func TestBuiltinRegistry(t *testing.T) {
	called := false
	RegisterBuiltin(9999, "test-fn", func(ctx *ExecCtx) error {
		called = true
		return nil
	})
	fn, name, ok := Builtin(9999)
	if !ok || name != "test-fn" {
		t.Fatal("registered builtin not found")
	}
	fn(&ExecCtx{})
	if !called {
		t.Error("builtin not invoked")
	}
	if _, _, ok := Builtin(12345); ok {
		t.Error("unregistered builtin found")
	}
}

func TestBuiltinDuplicatePanics(t *testing.T) {
	RegisterBuiltin(9998, "a", func(*ExecCtx) error { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RegisterBuiltin(9998, "b", func(*ExecCtx) error { return nil })
}

func TestBuiltinZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RegisterBuiltin(0, "zero", func(*ExecCtx) error { return nil })
}

func TestF32RoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		got := BytesToF32(F32ToBytes(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN compares unequal; compare bit patterns via re-encode.
			a, b := F32ToBytes(vals[i:i+1]), F32ToBytes(got[i:i+1])
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesToF32Misaligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BytesToF32(make([]byte, 7))
}
