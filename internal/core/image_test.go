package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/kdt"
	"repro/internal/units"
)

// populatedFunctionalDevice builds a functional device with a recognizable
// data pattern installed at address 0 and one offloaded app, ready to
// snapshot.
func populatedFunctionalDevice(t *testing.T, n int64) (*Device, []byte) {
	t.Helper()
	cfg := DefaultConfig(IntraO3)
	cfg.Functional = true
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	if err := d.PopulateInput(0, n, data); err != nil {
		t.Fatal(err)
	}
	tab := &kdt.Table{
		Name:     "reader",
		Sections: kdt.DefaultSections(128, n),
		Microblocks: []kdt.Microblock{{Screens: []kdt.Screen{{Ops: []kdt.Op{
			{Kind: kdt.OpRead, Section: 0, FlashAddr: 0, Bytes: n},
			{Kind: kdt.OpCompute, Instr: 1000, LdStMilli: 400},
			{Kind: kdt.OpWrite, Section: 0, FlashAddr: 13 * units.GB, Bytes: n},
		}}}}},
	}
	if err := d.OffloadApp("app", []*kdt.Table{tab}); err != nil {
		t.Fatal(err)
	}
	return d, data
}

// TestForkRunMatchesFreshRun is the core equivalence property: a forked
// device's post-run Result is deep-equal to the Result of the device the
// image was captured from, run the long way.
func TestForkRunMatchesFreshRun(t *testing.T) {
	const n = 256 * units.KB
	d, _ := populatedFunctionalDevice(t, n)
	img, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := img.Fork(d.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := fork.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("forked run diverged from fresh run:\n fork: %v\nfresh: %v", got, want)
	}
}

// TestForkMutationIsolation proves forks don't alias: writes through one
// fork's Flashvisor — including overwrites that trigger mapping updates —
// are invisible to a sibling fork, to the origin device, and to later
// forks of the same image.
func TestForkMutationIsolation(t *testing.T) {
	const n = 256 * units.KB
	origin, data := populatedFunctionalDevice(t, n)
	img, err := origin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	forkA, err := img.Fork(origin.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	forkB, err := img.Fork(origin.Cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Write through fork A: overwrite the populated range with new bytes
	// (remaps every group and stores new payloads) and write fresh groups.
	dirty := make([]byte, n)
	for i := range dirty {
		dirty[i] = byte(255 - i%251)
	}
	if _, err := forkA.Visor().MapWrite(0, 1, 0, n, dirty); err != nil {
		t.Fatal(err)
	}
	if _, err := forkA.Visor().MapWrite(0, 1, 14*units.GB, n, dirty); err != nil {
		t.Fatal(err)
	}

	check := func(name string, dev *Device) {
		t.Helper()
		got, err := dev.Visor().ReadBytes(0, n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s observed fork A's writes", name)
		}
		if _, err := dev.Visor().ReadBytes(14*units.GB, n); err == nil {
			t.Errorf("%s sees fork A's fresh mapping", name)
		}
	}
	check("sibling fork", forkB)
	check("origin device", origin)
	forkC, err := img.Fork(origin.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	check("post-mutation fork", forkC)

	// And fork A did observe its own writes.
	got, err := forkA.Visor().ReadBytes(0, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, dirty) {
		t.Error("fork A lost its own writes")
	}
}

// TestSnapshotAfterRunRejected pins the capture-point contract.
func TestSnapshotAfterRunRejected(t *testing.T) {
	d, _ := populatedFunctionalDevice(t, 64*units.KB)
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Snapshot(); err == nil {
		t.Error("snapshot of a ran device succeeded")
	}
}

// TestForkBuildKeyMismatchRejected pins the compatibility contract: a fork
// config that would have populated different state is refused, while one
// differing only in run-time knobs is accepted.
func TestForkBuildKeyMismatchRejected(t *testing.T) {
	d, _ := populatedFunctionalDevice(t, 64*units.KB)
	img, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := d.Cfg
	bad.Functional = false
	if _, err := img.Fork(bad); err == nil {
		t.Error("fork with mismatched build key succeeded")
	}
	simd := d.Cfg
	simd.System = SIMD
	if _, err := img.Fork(simd); err == nil {
		t.Error("fork across storage classes succeeded")
	}
	ok := d.Cfg
	ok.System = InterSt // same storage class, different governor
	ok.Workers = 3
	if _, err := img.Fork(ok); err != nil {
		t.Errorf("fork with run-time-only config delta failed: %v", err)
	}
}
