// Package kernel holds the runtime representation of offloaded work: apps,
// kernels, microblocks, and screens, plus the multi-app execution chain
// (paper Fig. 8) that the intra-kernel schedulers consult for data
// dependencies, and the builtin-function registry used by functional runs.
package kernel

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/kdt"
	"repro/internal/sim"
)

// Status is a screen's lifecycle state.
type Status uint8

// Screen lifecycle.
const (
	Pending Status = iota
	Running
	Done
)

// Screen is the unit of dispatch.
type Screen struct {
	Ops []kdt.Op

	// Identity within the chain.
	App, Kernel, MB, Idx int

	Status Status
	LWP    int
	Start  sim.Time
	End    sim.Time
}

// Ref renders the screen's identity for logs and errors.
func (s *Screen) Ref() string {
	return fmt.Sprintf("a%d/k%d/m%d/s%d", s.App, s.Kernel, s.MB, s.Idx)
}

// InputBytes sums the READ op payloads.
func (s *Screen) InputBytes() int64 {
	var n int64
	for _, op := range s.Ops {
		if op.Kind == kdt.OpRead {
			n += op.Bytes
		}
	}
	return n
}

// OutputBytes sums the WRITE op payloads.
func (s *Screen) OutputBytes() int64 {
	var n int64
	for _, op := range s.Ops {
		if op.Kind == kdt.OpWrite {
			n += op.Bytes
		}
	}
	return n
}

// Instructions sums the COMPUTE op instruction counts.
func (s *Screen) Instructions() int64 {
	var n int64
	for _, op := range s.Ops {
		if op.Kind == kdt.OpCompute {
			n += op.Instr
		}
	}
	return n
}

// Microblock groups screens that may run concurrently; successive
// microblocks of a kernel are data dependent and serialize.
type Microblock struct {
	Screens []*Screen
	done    int
}

// Serial reports whether the microblock has exactly one screen.
func (m *Microblock) Serial() bool { return len(m.Screens) == 1 }

// Done reports whether every screen completed.
func (m *Microblock) Done() bool { return m.done == len(m.Screens) }

// Kernel is one offloaded instruction stream.
type Kernel struct {
	Name string
	ID   int // index within the app
	App  int // owning app index

	MBs      []*Microblock
	Sections map[uint8][]byte // functional data-section buffers

	IssueAt sim.Time
	DoneAt  sim.Time
	doneMBs int
}

// Done reports whether every microblock completed.
func (k *Kernel) Done() bool { return k.doneMBs == len(k.MBs) }

// Bytes sums all READ payloads across the kernel; it is the data volume the
// throughput metrics count.
func (k *Kernel) Bytes() int64 {
	var n int64
	for _, mb := range k.MBs {
		for _, s := range mb.Screens {
			n += s.InputBytes()
		}
	}
	return n
}

// FromKDT instantiates a runtime kernel from a decoded description table.
func FromKDT(t *kdt.Table, appIdx, kernelIdx int) *Kernel {
	k := &Kernel{Name: t.Name, ID: kernelIdx, App: appIdx, Sections: make(map[uint8][]byte)}
	for mi, mb := range t.Microblocks {
		rm := &Microblock{}
		for si, scr := range mb.Screens {
			rm.Screens = append(rm.Screens, &Screen{
				Ops: scr.Ops, App: appIdx, Kernel: kernelIdx, MB: mi, Idx: si,
			})
		}
		k.MBs = append(k.MBs, rm)
	}
	return k
}

// App is a user application carrying one or more kernels.
type App struct {
	Name    string
	ID      int
	Kernels []*Kernel

	DoneAt  sim.Time
	doneKs  int
	arrival sim.Time
}

// Done reports whether every kernel completed.
func (a *App) Done() bool { return a.doneKs == len(a.Kernels) }

// Policy selects the dependency-resolution rule the chain applies when
// enumerating dispatchable screens.
type Policy int

// InOrder admits only each app's oldest incomplete kernel (IntraIo);
// OutOfOrder admits every kernel whose predecessor microblock completed
// (IntraO3 borrows screens across kernel and app boundaries).
const (
	InOrder Policy = iota
	OutOfOrder
)

// Chain is the multi-app execution chain (paper Fig. 8): the root holds one
// node list per application; each node carries per-microblock screen status,
// and node order encodes the data dependencies among microblocks.
type Chain struct {
	Apps []*App
}

// AddApp appends an application arriving at time at.
func (c *Chain) AddApp(a *App, at sim.Time) {
	a.arrival = at
	for _, k := range a.Kernels {
		k.IssueAt = at
	}
	c.Apps = append(c.Apps, a)
}

// AllDone reports whether every app completed.
func (c *Chain) AllDone() bool {
	for _, a := range c.Apps {
		if !a.Done() {
			return false
		}
	}
	return true
}

// Kernels returns every kernel in arrival order.
func (c *Chain) Kernels() []*Kernel {
	var out []*Kernel
	for _, a := range c.Apps {
		out = append(out, a.Kernels...)
	}
	return out
}

// frontMB returns the kernel's oldest incomplete microblock if its
// predecessor completed, else nil.
func frontMB(k *Kernel) *Microblock {
	for _, mb := range k.MBs {
		if !mb.Done() {
			return mb
		}
	}
	return nil
}

// Ready appends to dst the dispatchable screens under the policy, ordered by
// (app arrival, kernel index, microblock index, screen index), and returns
// the extended slice. A screen is dispatchable when it is pending and every
// screen of the kernel's previous microblock has completed.
func (c *Chain) Ready(policy Policy, dst []*Screen) []*Screen {
	for _, a := range c.Apps {
		for _, k := range a.Kernels {
			if k.Done() {
				continue
			}
			mb := frontMB(k)
			if mb != nil {
				for _, s := range mb.Screens {
					if s.Status == Pending {
						dst = append(dst, s)
					}
				}
			}
			if policy == InOrder {
				break // only the app's oldest incomplete kernel
			}
		}
	}
	return dst
}

// MarkRunning transitions a screen to Running on the given LWP.
func (c *Chain) MarkRunning(s *Screen, lwpID int, at sim.Time) {
	if s.Status != Pending {
		panic(fmt.Sprintf("kernel: %s dispatched twice", s.Ref()))
	}
	s.Status = Running
	s.LWP = lwpID
	s.Start = at
}

// Completion flags returned by MarkDone.
type Completion struct {
	MBDone     bool
	KernelDone bool
	AppDone    bool
}

// MarkDone transitions a screen to Done and updates the dependency chain.
func (c *Chain) MarkDone(s *Screen, at sim.Time) Completion {
	if s.Status != Running {
		panic(fmt.Sprintf("kernel: %s completed while %d", s.Ref(), s.Status))
	}
	s.Status = Done
	s.End = at
	a := c.Apps[s.App]
	k := a.Kernels[s.Kernel]
	mb := k.MBs[s.MB]
	mb.done++
	var comp Completion
	if mb.Done() {
		comp.MBDone = true
		k.doneMBs++
		if k.Done() {
			comp.KernelDone = true
			k.DoneAt = at
			a.doneKs++
			if a.Done() {
				comp.AppDone = true
				a.DoneAt = at
			}
		}
	}
	return comp
}

// BuiltinFunc is a registered compute function invoked by EXEC ops during
// functional runs. The context exposes the kernel's data sections and the
// screen's partition coordinates.
type BuiltinFunc func(*ExecCtx) error

// ExecCtx is the environment an EXEC op runs in.
type ExecCtx struct {
	Sections map[uint8][]byte
	Arg      uint32
	Screen   int // this screen's index within its microblock
	Screens  int // total screens in the microblock
}

var builtins = map[uint16]struct {
	name string
	fn   BuiltinFunc
}{}

// RegisterBuiltin installs fn under id. Id 0 is reserved; duplicate
// registrations panic, matching the once-at-init usage pattern.
func RegisterBuiltin(id uint16, name string, fn BuiltinFunc) {
	if id == 0 {
		panic("kernel: builtin id 0 is reserved")
	}
	if _, dup := builtins[id]; dup {
		panic(fmt.Sprintf("kernel: duplicate builtin id %d (%s)", id, name))
	}
	builtins[id] = struct {
		name string
		fn   BuiltinFunc
	}{name, fn}
}

// Builtin looks up a registered function.
func Builtin(id uint16) (BuiltinFunc, string, bool) {
	b, ok := builtins[id]
	return b.fn, b.name, ok
}

// F32ToBytes serializes a float32 slice little-endian, the layout data
// sections use on flash.
func F32ToBytes(src []float32) []byte {
	out := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// BytesToF32 deserializes a little-endian float32 buffer. The byte length
// must be a multiple of four.
func BytesToF32(src []byte) []float32 {
	if len(src)%4 != 0 {
		panic(fmt.Sprintf("kernel: buffer length %d not float32-aligned", len(src)))
	}
	out := make([]float32, len(src)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return out
}
