package flashabacus

import (
	"context"
	"errors"
	"testing"
)

func TestQuickstartPath(t *testing.T) {
	b, err := Polybench("ATAX", 128)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(context.Background(), IntraO3, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.ThroughputMBps() <= 0 || r.Makespan <= 0 {
		t.Errorf("degenerate result: %s", r)
	}
}

func TestAllSystemsRunMix(t *testing.T) {
	for _, sys := range Systems {
		b, err := Mix(1, 256)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(context.Background(), sys, b); err != nil {
			t.Errorf("%v: %v", sys, err)
		}
	}
}

func TestBigdataFacade(t *testing.T) {
	for _, name := range BigdataNames() {
		b, err := Bigdata(name, 256)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(context.Background(), InterDy, b); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSeriesFacade(t *testing.T) {
	b, _ := Polybench("GEMM", 64)
	r, err := RunWithSeries(context.Background(), IntraO3, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FUSeries) == 0 {
		t.Error("no series collected")
	}
}

func TestRunCancelled(t *testing.T) {
	b, err := Polybench("ATAX", 256)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, IntraO3, b); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestBadWorkloadNames(t *testing.T) {
	if _, err := Polybench("NOPE", 1); err == nil {
		t.Error("unknown polybench accepted")
	}
	if _, err := Mix(99, 1); err == nil {
		t.Error("unknown mix accepted")
	}
	if _, err := Bigdata("NOPE", 1); err == nil {
		t.Error("unknown bigdata accepted")
	}
}
