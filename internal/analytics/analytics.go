// Package analytics implements the five graph/bigdata applications of the
// paper's §5.6 extended evaluation — k-nearest neighbor (nn), graph
// traversal (bfs), DNA sequence alignment (nw), grid traversal (path), and
// mapreduce wordcount (wc) — as real Go builtins with functional kernel
// description tables, mirroring internal/polybench for the Rodinia/Mars
// workloads.
package analytics

import (
	"fmt"
	"math"

	"repro/internal/kdt"
	"repro/internal/kernel"
)

// Builtin ids (200 + index).
const (
	BuiltinBFS uint16 = 200 + iota
	BuiltinWC
	BuiltinNN
	BuiltinNW
	BuiltinPath
)

func init() {
	kernel.RegisterBuiltin(BuiltinBFS, "bfs", wrap(bfsRun))
	kernel.RegisterBuiltin(BuiltinWC, "wc", wrap(wcRun))
	kernel.RegisterBuiltin(BuiltinNN, "nn", wrap(nnRun))
	kernel.RegisterBuiltin(BuiltinNW, "nw", wrap(nwRun))
	kernel.RegisterBuiltin(BuiltinPath, "path", wrap(pathRun))
}

type runFunc func(arg uint32, in []byte) ([]byte, error)

func wrap(fn runFunc) kernel.BuiltinFunc {
	return func(ctx *kernel.ExecCtx) error {
		in, ok := ctx.Sections[0]
		if !ok {
			return fmt.Errorf("analytics: input section missing")
		}
		out, err := fn(ctx.Arg, in)
		if err != nil {
			return err
		}
		ctx.Sections[1] = out
		return nil
	}
}

// --- bfs ------------------------------------------------------------------

// bfsRun performs breadth-first search from vertex 0 over an n-vertex
// adjacency matrix (row-major bytes, nonzero = edge) and returns per-vertex
// levels as float32 (-1 for unreachable).
func bfsRun(arg uint32, in []byte) ([]byte, error) {
	n := int(arg)
	if n <= 0 || len(in) < n*n {
		return nil, fmt.Errorf("analytics: bfs input %d bytes for n=%d", len(in), n)
	}
	level := make([]float32, n)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := 0; u < n; u++ {
			if in[v*n+u] != 0 && level[u] < 0 {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return kernel.F32ToBytes(level), nil
}

// --- wc -------------------------------------------------------------------

// wcBuckets is the reduce-side hash-bucket count of the wordcount model.
const wcBuckets = 64

// wcRun counts whitespace-separated words, reducing them into hash buckets
// (the mapreduce shuffle stage collapsed), returned as float32 counts.
func wcRun(_ uint32, in []byte) ([]byte, error) {
	counts := make([]float32, wcBuckets)
	var h uint32
	inWord := false
	for _, c := range in {
		if c == ' ' || c == '\n' || c == '\t' || c == 0 {
			if inWord {
				counts[h%wcBuckets]++
				inWord = false
				h = 2166136261
			}
			continue
		}
		if !inWord {
			inWord = true
			h = 2166136261
		}
		h = (h ^ uint32(c)) * 16777619
	}
	if inWord {
		counts[h%wcBuckets]++
	}
	return kernel.F32ToBytes(counts), nil
}

// --- nn -------------------------------------------------------------------

// nnDim is the point dimensionality of the k-nearest-neighbor model.
const nnDim = 4

// nnRun computes distances from a query (the last point) to m points and
// returns the k=8 smallest distances in ascending order.
func nnRun(arg uint32, in []byte) ([]byte, error) {
	m := int(arg)
	vals := kernel.BytesToF32(in)
	if m <= 0 || len(vals) < (m+1)*nnDim {
		return nil, fmt.Errorf("analytics: nn input %d floats for m=%d", len(vals), m)
	}
	query := vals[m*nnDim : (m+1)*nnDim]
	dists := make([]float32, m)
	for i := 0; i < m; i++ {
		var s float64
		for d := 0; d < nnDim; d++ {
			diff := float64(vals[i*nnDim+d] - query[d])
			s += diff * diff
		}
		dists[i] = float32(math.Sqrt(s))
	}
	k := 8
	if k > m {
		k = m
	}
	// Selection of the k smallest, in order.
	out := make([]float32, k)
	used := make([]bool, m)
	for j := 0; j < k; j++ {
		best := -1
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			if best < 0 || dists[i] < dists[best] {
				best = i
			}
		}
		used[best] = true
		out[j] = dists[best]
	}
	return kernel.F32ToBytes(out), nil
}

// --- nw -------------------------------------------------------------------

// nwRun scores a Needleman-Wunsch global alignment of two length-n
// sequences (bytes 0..3), returning the final DP row as float32 — its last
// element is the alignment score.
func nwRun(arg uint32, in []byte) ([]byte, error) {
	n := int(arg)
	if n <= 0 || len(in) < 2*n {
		return nil, fmt.Errorf("analytics: nw input %d bytes for n=%d", len(in), n)
	}
	const (
		match    = 1
		mismatch = -1
		gap      = -2
	)
	a, b := in[:n], in[n:2*n]
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = int32(j) * gap
	}
	for i := 1; i <= n; i++ {
		cur[0] = int32(i) * gap
		for j := 1; j <= n; j++ {
			sub := prev[j-1]
			if a[i-1] == b[j-1] {
				sub += match
			} else {
				sub += mismatch
			}
			best := sub
			if v := prev[j] + gap; v > best {
				best = v
			}
			if v := cur[j-1] + gap; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	out := make([]float32, n+1)
	for j := range prev {
		out[j] = float32(prev[j])
	}
	return kernel.F32ToBytes(out), nil
}

// --- path -----------------------------------------------------------------

// pathRun solves the Rodinia pathfinder recurrence on a rows×cols weight
// grid (float32): each step moves down to the nearest of the three
// neighbors. Arg packs rows<<16 | cols. The result is the final cost row.
func pathRun(arg uint32, in []byte) ([]byte, error) {
	rows := int(arg >> 16)
	cols := int(arg & 0xFFFF)
	grid := kernel.BytesToF32(in)
	if rows <= 0 || cols <= 0 || len(grid) < rows*cols {
		return nil, fmt.Errorf("analytics: path input %d floats for %dx%d", len(grid), rows, cols)
	}
	cost := append([]float32(nil), grid[:cols]...)
	next := make([]float32, cols)
	for r := 1; r < rows; r++ {
		for c := 0; c < cols; c++ {
			best := cost[c]
			if c > 0 && cost[c-1] < best {
				best = cost[c-1]
			}
			if c < cols-1 && cost[c+1] < best {
				best = cost[c+1]
			}
			next[c] = grid[r*cols+c] + best
		}
		cost, next = next, cost
	}
	return kernel.F32ToBytes(cost), nil
}

// --- builders ---------------------------------------------------------------

// spec ties a name to its builtin, input generator, and table parameters.
type spec struct {
	id    uint16
	arg   func(n int) uint32
	input func(n int) []byte
	outSz func(n int) int64 // output bytes
}

var specs = map[string]spec{
	"bfs": {BuiltinBFS, func(n int) uint32 { return uint32(n) }, genGraph,
		func(n int) int64 { return int64(4 * n) }},
	"wc": {BuiltinWC, func(n int) uint32 { return uint32(n) }, genText,
		func(n int) int64 { return 4 * wcBuckets }},
	"nn": {BuiltinNN, func(n int) uint32 { return uint32(n) }, genPoints,
		func(n int) int64 { return 4 * 8 }},
	"nw": {BuiltinNW, func(n int) uint32 { return uint32(n) }, genSeqs,
		func(n int) int64 { return int64(4 * (n + 1)) }},
	"path": {BuiltinPath, func(n int) uint32 { return uint32(n)<<16 | uint32(n) }, genGrid,
		func(n int) int64 { return int64(4 * n) }},
}

// Names lists the applications in the paper's Fig. 16 order.
func Names() []string { return []string{"bfs", "wc", "nn", "nw", "path"} }

func lcg(seed string) func() uint64 {
	var s uint64 = 88172645463325252
	for _, c := range seed {
		s = s*131 + uint64(c)
	}
	return func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s
	}
}

func genGraph(n int) []byte {
	r := lcg("bfs")
	out := make([]byte, n*n)
	for i := 0; i < n; i++ {
		// A ring keeps the graph connected; extra random edges add fanout.
		out[i*n+(i+1)%n] = 1
		out[((i+1)%n)*n+i] = 1
		for e := 0; e < 3; e++ {
			j := int(r()>>33) % n
			if j != i {
				out[i*n+j] = 1
				out[j*n+i] = 1
			}
		}
	}
	return out
}

func genText(n int) []byte {
	r := lcg("wc")
	out := make([]byte, n)
	for i := range out {
		v := r() >> 33
		if v%6 == 0 {
			out[i] = ' '
		} else {
			out[i] = byte('a' + v%26)
		}
	}
	return out
}

func genPoints(m int) []byte {
	r := lcg("nn")
	vals := make([]float32, (m+1)*nnDim)
	for i := range vals {
		vals[i] = float32(r()>>40) / float32(1<<24)
	}
	return kernel.F32ToBytes(vals)
}

func genSeqs(n int) []byte {
	r := lcg("nw")
	out := make([]byte, 2*n)
	for i := range out {
		out[i] = byte(r() >> 33 & 3)
	}
	return out
}

func genGrid(n int) []byte {
	r := lcg("path")
	vals := make([]float32, n*n)
	for i := range vals {
		vals[i] = float32(r()>>40) / float32(1<<24) * 10
	}
	return kernel.F32ToBytes(vals)
}

// Input returns the deterministic input payload for an application at
// problem size n.
func Input(name string, n int) ([]byte, error) {
	s, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("analytics: unknown application %q", name)
	}
	return s.input(n), nil
}

// Reference runs the application directly and returns its output bytes.
func Reference(name string, n int, in []byte) ([]byte, error) {
	s, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("analytics: unknown application %q", name)
	}
	fn := map[uint16]runFunc{
		BuiltinBFS: bfsRun, BuiltinWC: wcRun, BuiltinNN: nnRun,
		BuiltinNW: nwRun, BuiltinPath: pathRun,
	}[s.id]
	return fn(s.arg(n), in)
}

// App builds a functional kernel description table for an application at
// problem size n. It returns the table, input payload, and output size.
func App(name string, n int, inAddr, outAddr int64) (*kdt.Table, []byte, int64, error) {
	s, ok := specs[name]
	if !ok {
		return nil, nil, 0, fmt.Errorf("analytics: unknown application %q", name)
	}
	in := s.input(n)
	outBytes := s.outSz(n)
	instr := int64(n) * int64(n)
	if instr < 1000 {
		instr = 1000
	}
	tab := &kdt.Table{
		Name:     name,
		Sections: kdt.DefaultSections(0, int64(len(in))),
		Microblocks: []kdt.Microblock{{Screens: []kdt.Screen{{Ops: []kdt.Op{
			{Kind: kdt.OpRead, Section: 0, FlashAddr: inAddr, Bytes: int64(len(in))},
			{Kind: kdt.OpCompute, Instr: instr, MulMilli: 50, LdStMilli: 420},
			{Kind: kdt.OpExec, Section: 0, Builtin: s.id, Arg: s.arg(n)},
			{Kind: kdt.OpWrite, Section: 1, FlashAddr: outAddr, Bytes: outBytes},
		}}}}},
	}
	tab.Sections[0].Size = tab.TextSize()
	return tab, in, outBytes, nil
}
