// Package sim implements the discrete-event core of the FlashAbacus
// simulator: an event engine plus two analytic contention primitives, the
// serially-reusable Resource and the bandwidth-limited Pipe.
//
// The engine is single-goroutine and deterministic: events scheduled for the
// same timestamp fire in scheduling order. Hardware models reserve time on
// Resources and Pipes analytically — a reservation immediately returns the
// interval the work will occupy — so fine-grained contention (flash channels,
// the Flashvisor LWP, the host storage stack) never needs callback chains.
package sim

import (
	"fmt"

	"repro/internal/units"
)

// Time and Duration re-export the shared simulated-time types.
type (
	Time     = units.Time
	Duration = units.Duration
)

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before orders events by (at, seq): time first, then scheduling order, which
// is the documented same-timestamp FIFO guarantee.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Engine is a discrete-event simulation loop.
// The zero value is ready to use.
//
// The pending queue is a concrete-typed 4-ary min-heap: compared to the
// earlier container/heap implementation, pushes and pops move event values
// directly in the backing slice (no interface{} boxing, so steady-state
// scheduling does not allocate) and the shallower tree roughly halves the
// sift depth for the queue sizes a device run reaches.
type Engine struct {
	now    Time
	seq    uint64
	events []event // 4-ary min-heap ordered by (at, seq)
	count  uint64  // total events executed
}

// heapArity is the fan-out of the event heap. Children of node i live at
// heapArity*i+1 .. heapArity*i+heapArity; the parent of node i is
// (i-1)/heapArity.
const heapArity = 4

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.count }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule enqueues fn to run at the absolute time at. Scheduling in the
// past is a model bug, so it panics rather than silently reordering time.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	e.seq++
	e.events = append(e.events, event{at: at, seq: e.seq, fn: fn})
	// Common fast path: events usually land at or after their parent (the
	// device mostly schedules completions ahead of the frontier), so the
	// sift-up below terminates after a single comparison and the push costs
	// one append with no allocation.
	e.siftUp(len(e.events) - 1)
}

// After enqueues fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

func (e *Engine) siftUp(i int) {
	ev := e.events[i]
	for i > 0 {
		p := (i - 1) / heapArity
		if !ev.before(&e.events[p]) {
			break
		}
		e.events[i] = e.events[p]
		i = p
	}
	e.events[i] = ev
}

// siftDown re-heapifies from the root after a pop replaced it with the last
// element.
func (e *Engine) siftDown() {
	n := len(e.events)
	ev := e.events[0]
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		// Pick the smallest of up to heapArity children.
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.events[c].before(&e.events[min]) {
				min = c
			}
		}
		if !e.events[min].before(&ev) {
			break
		}
		e.events[i] = e.events[min]
		i = min
	}
	e.events[i] = ev
}

// Step executes the earliest pending event and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events[0]
	n := len(e.events) - 1
	if n > 0 {
		e.events[0] = e.events[n]
	}
	e.events[n] = event{} // drop the fn reference for the GC
	e.events = e.events[:n]
	if n > 1 {
		e.siftDown()
	}
	e.now = ev.at
	e.count++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline if it has not already passed it.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
