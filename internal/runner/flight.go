package runner

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
)

// computeSafe runs compute, converting a panic into a *PanicError — a
// panicking compute must still settle the flight, or every waiter on the
// slot would block until its context died.
func computeSafe[T any](ctx context.Context, compute func(context.Context) (T, error)) (val T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return compute(ctx)
}

// Flight is one single-flight cache slot: the first requester computes the
// value, everyone else waits on ready. Slots live in caller-owned maps
// guarded by a caller-owned mutex; Await implements the protocol.
type Flight[T any] struct {
	ready chan struct{}
	val   T
	err   error
}

// Done reports whether the flight's computation has finished (successfully
// or not). Callers holding the mutex that guards the flight's slot can use
// it to distinguish settled entries from in-flight ones — e.g. a bounded
// cache must not evict a flight other goroutines are still awaiting, or the
// single-flight guarantee silently degrades to duplicate builds.
func (f *Flight[T]) Done() bool {
	select {
	case <-f.ready:
		return true
	default:
		return false
	}
}

// Await implements the single-flight protocol shared by the experiment
// Suite's cell cache and the cluster image/probe caches. get and set run
// under mu (set(nil) evicts the slot); compute runs outside the lock. A
// flight that failed only because its starter's context was cancelled is
// evicted, and waiters with live contexts take another lap and compute it
// themselves rather than inheriting a cancellation they never asked for.
func Await[T any](ctx context.Context, mu *sync.Mutex,
	get func() *Flight[T], set func(*Flight[T]),
	compute func(context.Context) (T, error)) (T, error) {
	for {
		mu.Lock()
		f := get()
		if f == nil {
			f = &Flight[T]{ready: make(chan struct{})}
			set(f)
			mu.Unlock()
			f.val, f.err = computeSafe(ctx, compute)
			var pe *PanicError
			if f.err != nil && (IsCancellation(f.err) || errors.As(f.err, &pe)) {
				// Evict before close so retrying waiters find the slot
				// empty. Cancellations evict so a live-context waiter can
				// recompute; panics evict so one wedge-inducing input does
				// not poison the cell forever — but unlike a cancellation,
				// the panic error IS delivered to current waiters.
				mu.Lock()
				set(nil)
				mu.Unlock()
			}
			close(f.ready)
			return f.val, f.err
		}
		mu.Unlock()
		// Prefer a finished flight over noticing our own cancellation:
		// when both channels are ready the cached result must win, or a
		// cancelled parallel run would drop tables a sequential run had
		// already printed.
		select {
		case <-f.ready:
		default:
			select {
			case <-f.ready:
			case <-ctx.Done():
				var zero T
				return zero, ctx.Err()
			}
		}
		if f.err != nil && IsCancellation(f.err) && ctx.Err() == nil {
			continue // starter was cancelled, not us: recompute
		}
		return f.val, f.err
	}
}
