// Package workload reproduces the paper's evaluation inputs: the fourteen
// PolyBench-derived applications of Table 2 with their measured instruction
// characteristics, the fourteen heterogeneous mixes MX1–MX14, the five
// graph/bigdata applications of §5.6, and the serial-fraction sensitivity
// kernels behind Fig. 3. Each descriptor is synthesized into kernel
// description tables whose READ/COMPUTE/WRITE ops carry the measured sizes
// and mixes.
package workload

import (
	"fmt"

	"repro/internal/kdt"
	"repro/internal/units"
)

// Spec is one application's Table 2 row plus the modelling parameters the
// table does not publish (multiply fraction, output volume).
type Spec struct {
	Name     string
	Desc     string
	MBlocks  int     // microblocks per kernel
	SerialMB int     // microblocks with no screens
	InputMB  int64   // input data per instance, MB
	LdStPct  float64 // load/store instruction ratio, %
	BKI      float64 // bytes processed per kilo-instruction
	MulPct   float64 // multiply instruction ratio, % (modelled)
	OutFrac  float64 // output bytes / input bytes (modelled)
}

// DataIntensive classifies per §5.1: high-B/KI workloads move more bytes
// per instruction than the backbone can hide.
func (s Spec) DataIntensive() bool { return s.BKI >= 20 }

// InputBytes returns the instance input size.
func (s Spec) InputBytes() int64 { return s.InputMB * units.MB }

// Instructions returns the instance instruction count implied by B/KI.
func (s Spec) Instructions() int64 {
	return int64(float64(s.InputBytes()) * 1000 / s.BKI)
}

// specs is Table 2. Multiply fractions and output ratios are modelled:
// matrix products multiply-heavy, stencils lighter; outputs are vectors for
// the vector kernels and matrices for the matrix producers.
var specs = []Spec{
	{"ATAX", "Matrix Transpose & Multiplication", 2, 1, 640, 45.61, 68.86, 15, 0.02},
	{"BICG", "BiCG Sub Kernel", 2, 1, 640, 46.00, 72.30, 15, 0.02},
	{"2DCON", "2-Dimension Convolution", 1, 0, 640, 23.96, 35.59, 10, 0.50},
	{"MVT", "Matrix Vector Product & Transpose", 1, 0, 640, 45.10, 72.05, 15, 0.02},
	{"ADI", "Alternating Direction Implicit solver", 3, 1, 1920, 23.96, 35.59, 12, 0.30},
	{"FDTD", "2-D Finite Difference Time Domain", 3, 1, 1920, 27.27, 38.52, 12, 0.30},
	{"GESUM", "Scalar, Vector & Matrix Multiplication", 1, 0, 640, 48.08, 72.13, 15, 0.02},
	{"SYRK", "Symmetric rank-k operations", 1, 0, 1280, 28.21, 5.29, 25, 0.50},
	{"3MM", "3-Matrix Multiplications", 3, 1, 2560, 33.68, 2.48, 25, 0.33},
	{"COVAR", "Covariance Computation", 3, 1, 640, 34.33, 2.86, 20, 0.50},
	{"GEMM", "Matrix-Multiply", 1, 0, 192, 30.77, 5.29, 25, 0.33},
	{"2MM", "2-Matrix Multiplications", 2, 1, 2560, 33.33, 3.76, 25, 0.33},
	{"SYR2K", "Symmetric rank-2k operations", 1, 0, 1280, 30.19, 1.85, 25, 0.50},
	{"CORR", "Correlation Computation", 4, 1, 640, 33.04, 2.79, 20, 0.50},
}

// bigdata models the §5.6 graph/bigdata applications. The paper publishes
// no Table 2 row for them, only that all five are data-intensive, that bfs
// and nn contain serial microblocks, and that nw and path do not; sizes and
// mixes are modelled accordingly.
var bigdata = []Spec{
	{"bfs", "graph traversal", 3, 1, 1024, 45, 40, 5, 0.05},
	{"wc", "mapreduce wordcount", 2, 0, 1536, 40, 60, 5, 0.02},
	{"nn", "k-nearest neighbor", 2, 1, 1024, 38, 45, 10, 0.05},
	{"nw", "DNA sequence alignment", 2, 0, 1280, 42, 35, 8, 0.10},
	{"path", "grid traversal", 2, 0, 1280, 40, 50, 5, 0.05},
}

// Names returns the Table 2 application names in order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// BigdataNames returns the §5.6 application names in the paper's order.
func BigdataNames() []string { return []string{"bfs", "wc", "nn", "nw", "path"} }

// Lookup returns the spec for a Table 2 or §5.6 application.
func Lookup(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range bigdata {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown application %q", name)
}

// Specs returns a copy of Table 2.
func Specs() []Spec { return append([]Spec(nil), specs...) }

// mixes reconstructs the right half of Table 2 (typographically corrupted
// in the source): each MX combines six applications; the per-application
// membership counts match the dot counts in the table, and MX1 pairs the
// four data-intensive kernels Fig. 12b names with two compute-intensive
// ones. A unit test pins both the row counts and the six-per-column rule.
var mixes = [][]string{
	{"ATAX", "BICG", "2DCON", "MVT", "GEMM", "2MM"},   // MX1
	{"ATAX", "BICG", "MVT", "ADI", "FDTD", "GESUM"},   // MX2
	{"ATAX", "BICG", "MVT", "ADI", "SYRK", "COVAR"},   // MX3
	{"ATAX", "BICG", "MVT", "ADI", "3MM", "GEMM"},     // MX4
	{"2DCON", "MVT", "FDTD", "GESUM", "2MM", "CORR"},  // MX5
	{"2DCON", "MVT", "ADI", "GESUM", "SYRK", "GEMM"},  // MX6
	{"MVT", "ADI", "FDTD", "GESUM", "COVAR", "SYR2K"}, // MX7
	{"2DCON", "MVT", "FDTD", "GEMM", "2MM", "3MM"},    // MX8
	{"MVT", "ADI", "FDTD", "GESUM", "SYRK", "CORR"},   // MX9
	{"2DCON", "ADI", "FDTD", "GEMM", "2MM", "COVAR"},  // MX10
	{"ADI", "GESUM", "GEMM", "2MM", "SYR2K", "CORR"},  // MX11
	{"ADI", "FDTD", "GESUM", "GEMM", "2MM", "COVAR"},  // MX12
	{"FDTD", "GESUM", "SYRK", "3MM", "GEMM", "SYR2K"}, // MX13
	{"SYRK", "3MM", "COVAR", "2MM", "SYR2K", "CORR"},  // MX14
}

// MixCount is the number of heterogeneous workloads.
const MixCount = 14

// MixMembers returns the applications in MXn (1-based).
func MixMembers(n int) ([]string, error) {
	if n < 1 || n > MixCount {
		return nil, fmt.Errorf("workload: mix MX%d outside [1,%d]", n, MixCount)
	}
	return append([]string(nil), mixes[n-1]...), nil
}

// Range is a populated input region.
type Range struct {
	Addr  int64
	Bytes int64
}

// App is one offloadable application bundle.
type App struct {
	Name   string
	Tables []*kdt.Table
}

// Bundle is a ready-to-run workload: apps to offload and input ranges to
// populate beforehand.
type Bundle struct {
	Name     string
	Apps     []App
	Populate []Range
	// Bytes is the total input volume the kernels read (the throughput
	// numerator).
	Bytes int64
	// Key identifies the bundle's exact content for caching: two bundles
	// with equal non-empty keys were synthesized from the same descriptor
	// at the same options, so device images and probe results built for
	// one are valid for the other. Hand-assembled bundles leave it empty,
	// which disables cross-run caching for them.
	Key string
}

// Options tunes synthesis.
type Options struct {
	// Scale divides the Table 2 input sizes (1 = paper scale). Larger
	// scales shrink runs for tests and benches.
	Scale int64
	// ScreensPerMB is the screen count of each parallel microblock.
	ScreensPerMB int
}

// DefaultOptions returns paper-scale synthesis with 8-way screens.
func DefaultOptions() Options { return Options{Scale: 1, ScreensPerMB: 8} }

func (o Options) normalize() (Options, error) {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.ScreensPerMB == 0 {
		o.ScreensPerMB = 8
	}
	if o.ScreensPerMB < 1 || o.ScreensPerMB > 64 {
		return o, fmt.Errorf("workload: screens per microblock %d outside [1,64]", o.ScreensPerMB)
	}
	return o, nil
}

// groupAlign rounds a size up to the 64 KB page-group boundary so shared
// input regions never alias in the FTL.
const groupSize = 64 * units.KB

func groupAlign(n int64) int64 { return (n + groupSize - 1) / groupSize * groupSize }

// layout assigns flash addresses: inputs grow from zero, outputs from
// outputBase upward. Both regions must fit the ~29.5 GiB logical space the
// default geometry exposes after over-provisioning and GC slack.
type layout struct {
	inCursor  int64
	outCursor int64
}

// outputBase is where output regions start. The worst-case paper-scale
// bundle (MX14: four instances each of six large-output applications) packs
// ~8.8 GiB of shared inputs below it and ~14.2 GiB of outputs above it, so
// 12 GiB keeps both inside the logical space at every scale — the previous
// 24 GiB base pushed low-scale mix outputs past the logical end.
// A regression test in workload_layout_test.go pins both bounds.
const outputBase = 12 * units.GB

func newLayout() *layout { return &layout{outCursor: outputBase} }

func (l *layout) input(bytes int64) int64 {
	a := l.inCursor
	l.inCursor += groupAlign(bytes)
	return a
}

func (l *layout) output(bytes int64) int64 {
	a := l.outCursor
	l.outCursor += groupAlign(bytes)
	return a
}

// synthesize builds one kernel instance's description table. Every instance
// of an application shares the input region (the instances process the same
// dataset, which also exercises shared read locks); each instance writes its
// own output region.
func synthesize(s Spec, o Options, inAddr int64, l *layout) *kdt.Table {
	in := s.InputBytes() / o.Scale
	if in < groupSize {
		in = groupSize
	}
	instr := int64(float64(in) * 1000 / s.BKI)
	out := groupAlign(int64(float64(in) * s.OutFrac))
	if out < groupSize {
		out = groupSize
	}
	outAddr := l.output(out)

	mul := uint16(s.MulPct * 10)
	ldst := uint16(s.LdStPct * 10)
	// Serial microblocks are the short sequential prologues of each kernel
	// (Fig. 6's m0 converts a 1-D vector); they carry a minority share of
	// the instructions, with the bulk in the parallelizable stages.
	const serialShare = 0.15
	serialMBs, parMBs := int64(s.SerialMB), int64(s.MBlocks-s.SerialMB)
	serialInstr, parInstr := int64(0), instr
	serialIn, parIn := int64(0), in
	if serialMBs > 0 && parMBs > 0 {
		serialInstr = int64(float64(instr) * serialShare)
		parInstr = instr - serialInstr
		serialIn = int64(float64(in) * serialShare)
		parIn = in - serialIn
	} else if parMBs == 0 {
		serialInstr, parInstr = instr, 0
		serialIn, parIn = in, 0
	}

	tab := &kdt.Table{Name: s.Name, Sections: kdt.DefaultSections(0, in)}
	inOff := int64(0)
	for m := 0; m < s.MBlocks; m++ {
		serial := m < s.SerialMB // serial microblocks come first (Fig. 6's m0)
		screens := o.ScreensPerMB
		perMBIn, perMBInstr := parIn/maxI64(parMBs, 1), parInstr/maxI64(parMBs, 1)
		if serial {
			screens = 1
			perMBIn, perMBInstr = serialIn/serialMBs, serialInstr/serialMBs
		}
		if perMBIn < 1 {
			perMBIn = 1
		}
		if perMBInstr < 1 {
			perMBInstr = 1
		}
		mb := kdt.Microblock{}
		perScrIn := perMBIn / int64(screens)
		perScrInstr := perMBInstr / int64(screens)
		if perScrIn < 1 {
			perScrIn = 1
		}
		if perScrInstr < 1 {
			perScrInstr = 1
		}
		for sc := 0; sc < screens; sc++ {
			ops := []kdt.Op{
				{Kind: kdt.OpRead, Section: 1, FlashAddr: inAddr + inOff + int64(sc)*perScrIn, Bytes: perScrIn},
				{Kind: kdt.OpCompute, Instr: perScrInstr, MulMilli: mul, LdStMilli: ldst},
			}
			// The last microblock writes the output, split across its
			// screens.
			if m == s.MBlocks-1 {
				perScrOut := out / int64(screens)
				if perScrOut < 1 {
					perScrOut = 1
				}
				ops = append(ops, kdt.Op{
					Kind: kdt.OpWrite, Section: 1,
					FlashAddr: outAddr + int64(sc)*perScrOut, Bytes: perScrOut,
				})
			}
			mb.Screens = append(mb.Screens, kdt.Screen{Ops: ops})
		}
		inOff += perMBIn
		if inOff > in {
			inOff = 0 // wrap defensively; reads must stay inside the input
		}
		tab.Microblocks = append(tab.Microblocks, mb)
	}
	tab.Sections[0].Size = tab.TextSize()
	return tab
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Homogeneous builds the §5.1 homogeneous workload for one application:
// six kernel instances issued as three applications of two kernels each
// (the paper issues "6 instances from each kernel"; the 3×2 grouping
// reconstructs the reported InterSt/InterDy gap — see DESIGN.md).
func Homogeneous(name string, o Options) (*Bundle, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	s, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	l := newLayout()
	in := s.InputBytes() / o.Scale
	if in < groupSize {
		in = groupSize
	}
	inAddr := l.input(in)
	b := &Bundle{
		Name:     name,
		Key:      fmt.Sprintf("homog/%s@s%d/m%d", name, o.Scale, o.ScreensPerMB),
		Populate: []Range{{Addr: inAddr, Bytes: in}},
	}
	for a := 0; a < 3; a++ {
		app := App{Name: fmt.Sprintf("%s-%d", name, a)}
		for k := 0; k < 2; k++ {
			tab := synthesize(s, o, inAddr, l)
			app.Tables = append(app.Tables, tab)
			b.Bytes += bundleReadBytes(tab)
		}
		b.Apps = append(b.Apps, app)
	}
	return b, nil
}

// Mix builds heterogeneous workload MXn: six applications, four kernel
// instances each (24 instances, §5.1).
func Mix(n int, o Options) (*Bundle, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	members, err := MixMembers(n)
	if err != nil {
		return nil, err
	}
	l := newLayout()
	b := &Bundle{
		Name: fmt.Sprintf("MX%d", n),
		Key:  fmt.Sprintf("mix/%d@s%d/m%d", n, o.Scale, o.ScreensPerMB),
	}
	for _, name := range members {
		s, err := Lookup(name)
		if err != nil {
			return nil, err
		}
		in := s.InputBytes() / o.Scale
		if in < groupSize {
			in = groupSize
		}
		inAddr := l.input(in)
		b.Populate = append(b.Populate, Range{Addr: inAddr, Bytes: in})
		app := App{Name: name}
		for k := 0; k < 4; k++ {
			tab := synthesize(s, o, inAddr, l)
			app.Tables = append(app.Tables, tab)
			b.Bytes += bundleReadBytes(tab)
		}
		b.Apps = append(b.Apps, app)
	}
	return b, nil
}

func bundleReadBytes(t *kdt.Table) int64 {
	var n int64
	for _, mb := range t.Microblocks {
		for _, s := range mb.Screens {
			for _, op := range s.Ops {
				if op.Kind == kdt.OpRead {
					n += op.Bytes
				}
			}
		}
	}
	return n
}

// Sensitivity kernel constants: total instruction budget at paper scale and
// the B/KI that calibrates Fig. 3's ~4.5 GB/s eight-core ceiling.
const (
	sensitivityInstr = int64(8e9)
	sensitivityBKI   = 127.0
)

// SensitivityNominal returns the nominal processed bytes of the Fig. 3
// kernel at the given options — the Sensitivity return value — without
// synthesizing the bundle, so figure assembly can normalize cached runs.
func SensitivityNominal(o Options) (int64, error) {
	o, err := o.normalize()
	if err != nil {
		return 0, err
	}
	return int64(float64(sensitivityInstr/o.Scale) * sensitivityBKI / 1000), nil
}

// Sensitivity builds the Fig. 3b/3c synthetic kernel: a compute stream in
// which serialPct percent of the instructions sit in serial microblocks and
// the rest split across `screens`-way parallel microblocks. It returns the
// bundle and the nominal processed bytes (at 127 B/KI, which calibrates the
// figure's ~4.5 GB/s eight-core ceiling).
func Sensitivity(serialPct int, screens int, o Options) (*Bundle, int64, error) {
	if serialPct < 0 || serialPct > 100 {
		return nil, 0, fmt.Errorf("workload: serial percentage %d outside [0,100]", serialPct)
	}
	if screens < 1 {
		return nil, 0, fmt.Errorf("workload: %d screens", screens)
	}
	o, err := o.normalize()
	if err != nil {
		return nil, 0, err
	}
	instr := sensitivityInstr / o.Scale
	nominalBytes := int64(float64(instr) * sensitivityBKI / 1000)

	tab := &kdt.Table{Name: fmt.Sprintf("serial%d", serialPct), Sections: kdt.DefaultSections(0, 0)}
	mix := kdt.Op{Kind: kdt.OpCompute, MulMilli: 150, LdStMilli: 300}
	serialInstr := instr * int64(serialPct) / 100
	parInstr := instr - serialInstr
	// Ten alternating stages keep dependency chains realistic.
	const stages = 5
	for st := 0; st < stages; st++ {
		if serialInstr > 0 {
			op := mix
			op.Instr = serialInstr / stages
			if op.Instr < 1 {
				op.Instr = 1
			}
			tab.Microblocks = append(tab.Microblocks, kdt.Microblock{
				Screens: []kdt.Screen{{Ops: []kdt.Op{op}}},
			})
		}
		if parInstr > 0 {
			mb := kdt.Microblock{}
			per := parInstr / stages / int64(screens)
			if per < 1 {
				per = 1
			}
			for sc := 0; sc < screens; sc++ {
				op := mix
				op.Instr = per
				mb.Screens = append(mb.Screens, kdt.Screen{Ops: []kdt.Op{op}})
			}
			tab.Microblocks = append(tab.Microblocks, mb)
		}
	}
	b := &Bundle{
		Name: tab.Name,
		Key:  fmt.Sprintf("sens/%d/%d@s%d", serialPct, screens, o.Scale),
		Apps: []App{{Name: tab.Name, Tables: []*kdt.Table{tab}}},
	}
	return b, nominalBytes, nil
}
