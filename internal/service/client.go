// A small typed client for the abacusd API, used by the test harness,
// the CI smoke client, and the examples.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to one abacusd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport (default http.DefaultClient). Point it
	// at httptest or a custom transport in tests.
	HTTPClient *http.Client
	// Name, when set, travels as the X-Abacus-Client fairness identity
	// on every submit that does not name its own client.
	Name string
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// do issues a request and decodes a JSON body into out (when non-nil),
// turning non-2xx responses into errors carrying the server's message.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Name != "" {
		req.Header.Set("X-Abacus-Client", c.Name)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return c.apiErr(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// StatusError is a non-2xx API response: the HTTP status code plus the
// server's error message. Callers branch on Code — 429 means shed,
// retry later.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("abacusd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

func (c *Client) apiErr(resp *http.Response) error {
	var ae apiError
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &ae) != nil || ae.Error == "" {
		ae.Error = strings.TrimSpace(string(body))
	}
	return &StatusError{Code: resp.StatusCode, Message: ae.Error}
}

// Submit enqueues a job and returns its accepted status. A full queue
// surfaces as a *StatusError with Code 429.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	err = c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(body), &st)
	return st, err
}

// Status polls a job.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List returns the retained jobs in submission order.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var sts []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &sts)
	return sts, err
}

// Cancel requests cancellation and returns the job's resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Experiments lists the experiment ids the server renders.
func (c *Client) Experiments(ctx context.Context) ([]string, error) {
	var ids []string
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &ids)
	return ids, err
}

// Result fetches a finished job's rendered bytes, blocking server-side
// until the job is terminal. A failed or cancelled job returns a
// *StatusError with Code 409 carrying the job's error.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/result?wait=1"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusConflict {
			var st JobStatus
			if json.NewDecoder(resp.Body).Decode(&st) == nil {
				return nil, &StatusError{Code: resp.StatusCode,
					Message: fmt.Sprintf("job %s %s: %s", id, st.State, st.Error)}
			}
		}
		return nil, c.apiErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// Stream copies the job's output to w as the server renders it and
// returns the job's final state (from the response trailer) once the
// stream ends.
func (c *Client) Stream(ctx context.Context, id string, w io.Writer) (JobState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/stream"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", c.apiErr(resp)
	}
	if _, err := io.Copy(w, resp.Body); err != nil {
		return "", err
	}
	state := JobState(resp.Trailer.Get("X-Abacus-Job-State"))
	if state == "" {
		// Trailer missing (e.g. an intermediary stripped it): fall back
		// to a status poll.
		st, err := c.Status(ctx, id)
		if err != nil {
			return "", err
		}
		return st.State, nil
	}
	if state != StateDone {
		return state, fmt.Errorf("job %s %s: %s", id, state, resp.Trailer.Get("X-Abacus-Job-Error"))
	}
	return state, nil
}

// Metrics fetches one /metrics scrape.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", c.apiErr(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
