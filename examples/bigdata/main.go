// Bigdata: the §5.6 extended evaluation — graph traversal, wordcount,
// k-nearest neighbor, sequence alignment, and grid traversal — across the
// conventional baseline and the FlashAbacus schedulers (paper Fig. 16).
package main

import (
	"context"
	"fmt"
	"log"

	flashabacus "repro"
)

func main() {
	fmt.Printf("%-6s", "app")
	for _, sys := range flashabacus.Systems {
		fmt.Printf("  %10s", sys)
	}
	fmt.Println("  (MB/s)")
	for _, app := range flashabacus.BigdataNames() {
		fmt.Printf("%-6s", app)
		for _, sys := range flashabacus.Systems {
			bundle, err := flashabacus.Bigdata(app, 32)
			if err != nil {
				log.Fatal(err)
			}
			r, err := flashabacus.Run(context.Background(), sys, bundle)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %10.1f", r.ThroughputMBps())
		}
		fmt.Println()
	}
}
