package flashvisor

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// oracleHold mirrors lockHold for the brute-force oracle.
type oracleHold struct {
	start, end int64
	mode       LockMode
	release    sim.Time
}

func oracleGrant(holds []oracleHold, at sim.Time, s, e int64, m LockMode) sim.Time {
	grant := at
	for _, h := range holds {
		if h.start < e && h.end > s && h.release > at {
			if m == LockRead && h.mode == LockRead {
				continue
			}
			if h.release > grant {
				grant = h.release
			}
		}
	}
	return grant
}

// TestRangeLockAgainstOracle drives the interval-tree lock manager and a
// brute-force list with identical random traffic and requires identical
// grant times throughout.
func TestRangeLockAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var l RangeLocks
	var oracle []oracleHold
	now := sim.Time(0)
	for step := 0; step < 4000; step++ {
		now += sim.Time(rng.Intn(50))
		s := int64(rng.Intn(500))
		e := s + 1 + int64(rng.Intn(60))
		m := LockMode(rng.Intn(2))
		grant := l.Grant(now, s, e, m)
		want := oracleGrant(oracle, now, s, e, m)
		if grant != want {
			t.Fatalf("step %d: grant(%d,[%d,%d),%v) = %d, oracle %d",
				step, now, s, e, m, grant, want)
		}
		release := grant + sim.Time(1+rng.Intn(200))
		l.Hold(s, e, m, step, release)
		oracle = append(oracle, oracleHold{s, e, m, release})
		// Occasionally prune the oracle the way lazy pruning would.
		if step%64 == 0 {
			kept := oracle[:0]
			for _, h := range oracle {
				if h.release > now {
					kept = append(kept, h)
				}
			}
			oracle = kept
		}
	}
}

// TestRangeLockGrantMonotonicInTime: asking later never yields an earlier
// grant for the same range.
func TestRangeLockGrantMonotonicInTime(t *testing.T) {
	var l RangeLocks
	l.Hold(0, 100, LockWrite, 1, 1000)
	g1 := l.Grant(10, 0, 100, LockWrite)
	g2 := l.Grant(20, 0, 100, LockWrite)
	if g2 < g1 {
		t.Errorf("later request granted earlier: %d then %d", g1, g2)
	}
}

func BenchmarkRangeLockGrantHold(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var l RangeLocks
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i * 10)
		s := int64(rng.Intn(1 << 20))
		e := s + 1024
		g := l.Grant(now, s, e, LockMode(i%2))
		l.Hold(s, e, LockMode(i%2), i, g+500)
	}
}
