package workload

import (
	"testing"

	"repro/internal/kdt"
	"repro/internal/units"
)

func TestTable2RowsPresent(t *testing.T) {
	names := Names()
	if len(names) != 14 {
		t.Fatalf("Table 2 has %d applications, want 14", len(names))
	}
	want := map[string]struct {
		mblk, serial int
		inMB         int64
	}{
		"ATAX": {2, 1, 640}, "BICG": {2, 1, 640}, "2DCON": {1, 0, 640},
		"MVT": {1, 0, 640}, "ADI": {3, 1, 1920}, "FDTD": {3, 1, 1920},
		"GESUM": {1, 0, 640}, "SYRK": {1, 0, 1280}, "3MM": {3, 1, 2560},
		"COVAR": {3, 1, 640}, "GEMM": {1, 0, 192}, "2MM": {2, 1, 2560},
		"SYR2K": {1, 0, 1280}, "CORR": {4, 1, 640},
	}
	for name, w := range want {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.MBlocks != w.mblk || s.SerialMB != w.serial || s.InputMB != w.inMB {
			t.Errorf("%s = {%d,%d,%d}, want {%d,%d,%d}",
				name, s.MBlocks, s.SerialMB, s.InputMB, w.mblk, w.serial, w.inMB)
		}
	}
}

func TestDataIntensiveSplitMatchesFig10(t *testing.T) {
	data := map[string]bool{"ATAX": true, "BICG": true, "2DCON": true, "MVT": true,
		"GESUM": true, "ADI": true, "FDTD": true}
	for _, s := range Specs() {
		if got := s.DataIntensive(); got != data[s.Name] {
			t.Errorf("%s data-intensive = %v, want %v", s.Name, got, data[s.Name])
		}
	}
}

func TestInstructionsFromBKI(t *testing.T) {
	s, _ := Lookup("ATAX")
	// 640 MB at 68.86 B/KI ≈ 9.75e9 instructions.
	got := s.Instructions()
	if got < 9e9 || got > 11e9 {
		t.Errorf("ATAX instructions = %d, want ~9.7e9", got)
	}
}

func TestMixTableInvariants(t *testing.T) {
	// Every mix has exactly six distinct members; per-application counts
	// match the dot counts recoverable from Table 2.
	counts := map[string]int{}
	for n := 1; n <= MixCount; n++ {
		members, err := MixMembers(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(members) != 6 {
			t.Errorf("MX%d has %d members, want 6", n, len(members))
		}
		seen := map[string]bool{}
		for _, m := range members {
			if seen[m] {
				t.Errorf("MX%d repeats %s", n, m)
			}
			seen[m] = true
			if _, err := Lookup(m); err != nil {
				t.Errorf("MX%d references unknown %s", n, m)
			}
			counts[m]++
		}
	}
	wantCounts := map[string]int{
		"ATAX": 4, "BICG": 4, "2DCON": 5, "MVT": 9, "ADI": 9, "FDTD": 8,
		"GESUM": 8, "SYRK": 5, "3MM": 4, "COVAR": 5, "GEMM": 8, "2MM": 7,
		"SYR2K": 4, "CORR": 4,
	}
	for name, want := range wantCounts {
		if counts[name] != want {
			t.Errorf("%s appears in %d mixes, want %d", name, counts[name], want)
		}
	}
}

func TestMixMembersBounds(t *testing.T) {
	if _, err := MixMembers(0); err == nil {
		t.Error("MX0 accepted")
	}
	if _, err := MixMembers(15); err == nil {
		t.Error("MX15 accepted")
	}
}

func TestMX1MatchesFig12b(t *testing.T) {
	members, _ := MixMembers(1)
	// Fig. 12b: the first four kernels of MX1 are data-intensive, the last
	// two computation-intensive.
	for i, m := range members {
		s, _ := Lookup(m)
		if i < 4 && !s.DataIntensive() {
			t.Errorf("MX1 member %d (%s) should be data-intensive", i, m)
		}
		if i >= 4 && s.DataIntensive() {
			t.Errorf("MX1 member %d (%s) should be compute-intensive", i, m)
		}
	}
}

func TestHomogeneousShape(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 64
	b, err := Homogeneous("ATAX", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Apps) != 3 {
		t.Errorf("apps = %d, want 3", len(b.Apps))
	}
	total := 0
	for _, a := range b.Apps {
		total += len(a.Tables)
	}
	if total != 6 {
		t.Errorf("instances = %d, want 6", total)
	}
	if len(b.Populate) != 1 {
		t.Errorf("populate ranges = %d, want 1 (instances share input)", len(b.Populate))
	}
	if b.Bytes <= 0 {
		t.Error("no read bytes")
	}
}

func TestSynthesizedTablesValidateAndMatchSpec(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 64
	for _, name := range append(Names(), BigdataNames()...) {
		b, err := Homogeneous(name, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, _ := Lookup(name)
		tab := b.Apps[0].Tables[0]
		if err := tab.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(tab.Microblocks) != s.MBlocks {
			t.Errorf("%s: %d microblocks, want %d", name, len(tab.Microblocks), s.MBlocks)
		}
		serial := 0
		for _, mb := range tab.Microblocks {
			if mb.Serial() {
				serial++
			}
		}
		if serial != s.SerialMB {
			t.Errorf("%s: %d serial microblocks, want %d", name, serial, s.SerialMB)
		}
		// Encode/decode round trip must hold for synthesized tables.
		blob, err := tab.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if _, err := kdt.Decode(blob); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
	}
}

func TestScaleDividesInput(t *testing.T) {
	big, _ := Homogeneous("ATAX", Options{Scale: 1, ScreensPerMB: 8})
	small, _ := Homogeneous("ATAX", Options{Scale: 64, ScreensPerMB: 8})
	if small.Bytes*32 > big.Bytes {
		t.Errorf("scale 64 bytes %d not well below scale 1 bytes %d", small.Bytes, big.Bytes)
	}
}

func TestMixBundleShape(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 64
	b, err := Mix(1, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Apps) != 6 {
		t.Errorf("apps = %d, want 6", len(b.Apps))
	}
	for _, a := range b.Apps {
		if len(a.Tables) != 4 {
			t.Errorf("%s instances = %d, want 4", a.Name, len(a.Tables))
		}
	}
	if len(b.Populate) != 6 {
		t.Errorf("populate ranges = %d, want 6", len(b.Populate))
	}
}

func TestPopulateRangesAreGroupAlignedAndDisjoint(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 16
	for n := 1; n <= MixCount; n++ {
		b, err := Mix(n, o)
		if err != nil {
			t.Fatal(err)
		}
		var prevEnd int64
		for _, r := range b.Populate {
			if r.Addr%groupSize != 0 {
				t.Errorf("MX%d: input at %d not group aligned", n, r.Addr)
			}
			if r.Addr < prevEnd {
				t.Errorf("MX%d: overlapping input regions", n)
			}
			prevEnd = r.Addr + r.Bytes
		}
	}
}

func TestFullScaleMixFitsLogicalSpace(t *testing.T) {
	// The largest mix at paper scale must fit the 32 GB backbone's logical
	// space (inputs shared across instances; outputs above 24 GB).
	for n := 1; n <= MixCount; n++ {
		b, err := Mix(n, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var inputs int64
		for _, r := range b.Populate {
			inputs += r.Bytes
		}
		if inputs > 20*units.GB {
			t.Errorf("MX%d inputs = %s exceed the input region", n, units.FormatBytes(inputs))
		}
	}
}

func TestSensitivitySerialFraction(t *testing.T) {
	b, nominal, err := Sensitivity(30, 8, Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if nominal <= 0 {
		t.Error("no nominal bytes")
	}
	tab := b.Apps[0].Tables[0]
	var serialInstr, totalInstr int64
	for _, mb := range tab.Microblocks {
		for _, s := range mb.Screens {
			for _, op := range s.Ops {
				if op.Kind == kdt.OpCompute {
					totalInstr += op.Instr
					if mb.Serial() {
						serialInstr += op.Instr
					}
				}
			}
		}
	}
	frac := float64(serialInstr) / float64(totalInstr)
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("serial instruction fraction = %.2f, want ~0.30", frac)
	}
}

func TestSensitivityEdges(t *testing.T) {
	if _, _, err := Sensitivity(-1, 8, DefaultOptions()); err == nil {
		t.Error("negative serial accepted")
	}
	if _, _, err := Sensitivity(101, 8, DefaultOptions()); err == nil {
		t.Error("over-100 serial accepted")
	}
	if _, _, err := Sensitivity(50, 0, DefaultOptions()); err == nil {
		t.Error("zero screens accepted")
	}
	// Pure extremes still build valid tables.
	for _, pct := range []int{0, 100} {
		b, _, err := Sensitivity(pct, 4, Options{Scale: 16})
		if err != nil {
			t.Fatalf("serial %d%%: %v", pct, err)
		}
		if err := b.Apps[0].Tables[0].Validate(); err != nil {
			t.Errorf("serial %d%%: %v", pct, err)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Homogeneous("ATAX", Options{ScreensPerMB: 100}); err == nil {
		t.Error("absurd screen count accepted")
	}
	if _, err := Homogeneous("NOPE", DefaultOptions()); err == nil {
		t.Error("unknown app accepted")
	}
}
