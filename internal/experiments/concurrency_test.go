package experiments

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestPrewarmParallelMatchesSequential is the engine's determinism
// guarantee: a parallel Prewarm must yield figures byte-identical to a
// sequential run, because results are keyed by cell, never by completion
// order.
func TestPrewarmParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	jobs := CellsFor([]string{"fig12"})
	if len(jobs) != 10 {
		t.Fatalf("fig12 needs %d cells, want 10", len(jobs))
	}

	render := func(workers int) string {
		s := NewSuite(256)
		s.Workers = workers
		if err := s.Prewarm(ctx, jobs); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		tbl, err := s.Fig12(ctx)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tbl.String()
	}

	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("parallel Fig 12 differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestSuiteSingleFlight asserts each (workload, system) cell simulates
// exactly once even when many goroutines race for it: every caller must
// get the same *stats.Result back.
func TestSuiteSingleFlight(t *testing.T) {
	s := NewSuite(512)
	const callers = 8
	results := make([]interface{}, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			r, err := s.Homogeneous(context.Background(), "ATAX", core.IntraO3)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result instance — cell simulated more than once", i)
		}
	}
}

func TestPrewarmCancelledThenRetries(t *testing.T) {
	s := NewSuite(512)
	jobs := []Job{{Kind: KindHomogeneous, Name: "ATAX", Sys: core.SIMD}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Prewarm(ctx, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation must not poison the cache: a live context succeeds.
	if err := s.Prewarm(context.Background(), jobs); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
}

func TestPrewarmFirstErrorWins(t *testing.T) {
	s := NewSuite(512)
	s.Workers = 4
	jobs := []Job{
		{Kind: KindHomogeneous, Name: "NO-SUCH-APP", Sys: core.SIMD},
		{Kind: KindHomogeneous, Name: "ATAX", Sys: core.SIMD},
		{Kind: KindHeterogeneous, Mix: 1, Sys: core.IntraO3},
	}
	err := s.Prewarm(context.Background(), jobs)
	if err == nil || !strings.Contains(err.Error(), "NO-SUCH-APP") {
		t.Fatalf("err = %v, want the bad job's own error", err)
	}
}

func TestCellsForDedupAndDeterminism(t *testing.T) {
	// fig10a and fig11a consume the identical cell set; the union must not
	// double it.
	once := CellsFor([]string{"fig10a"})
	both := CellsFor([]string{"fig10a", "fig11a"})
	if len(once) == 0 || len(once) != len(both) {
		t.Fatalf("dedup failed: %d cells alone vs %d unioned", len(once), len(both))
	}
	all := CellsFor(CachedExperimentIDs)
	seen := map[Job]bool{}
	for _, j := range all {
		if seen[j] {
			t.Fatalf("duplicate cell %s in CellsFor output", j)
		}
		seen[j] = true
	}
	again := CellsFor(CachedExperimentIDs)
	if len(again) != len(all) {
		t.Fatal("CellsFor not deterministic across calls")
	}
	for i := range all {
		if all[i] != again[i] {
			t.Fatalf("CellsFor order differs at %d: %s vs %s", i, all[i], again[i])
		}
	}
	for _, id := range []string{"t1", "t2", "mixes", "bogus"} {
		if c := Cells(id); c != nil {
			t.Errorf("Cells(%q) = %d jobs, want none", id, len(c))
		}
	}
	// The sweep and series experiments are ordinary cells now: one Prewarm
	// list covers a full reproduction with no special-case warm phases.
	if c := Cells("fig3b"); len(c) != 48 {
		t.Errorf("Cells(fig3b) = %d jobs, want 48", len(c))
	}
	if c := Cells("fig3c"); len(c) != 48 {
		t.Errorf("Cells(fig3c) = %d jobs, want 48", len(c))
	}
	if c := Cells("fig15"); len(c) != 2 {
		t.Errorf("Cells(fig15) = %d jobs, want 2", len(c))
	}
}

func TestFig3PointsSharedAcrossCallers(t *testing.T) {
	s := NewSuite(1024)
	ctx := context.Background()
	p1, err := s.Fig3Points(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Fig3Points(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) == 0 || &p1[0] != &p2[0] {
		t.Error("Fig3Points recomputed instead of serving the cached sweep")
	}
}
