package polybench

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/kdt"
	"repro/internal/kernel"
	"repro/internal/units"
)

const n = 16

func approx(a, b, tol float32) bool {
	return float32(math.Abs(float64(a-b))) <= tol*(1+float32(math.Abs(float64(b))))
}

func run(t *testing.T, name string) ([]float32, []float32) {
	t.Helper()
	in, err := Input(name, n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Reference(name, n, in)
	if err != nil {
		t.Fatal(err)
	}
	return in, out
}

func TestATAXAgainstNaive(t *testing.T) {
	in, out := run(t, "ATAX")
	a, x := in[:n*n], in[n*n:]
	for j := 0; j < n; j++ {
		var want float32
		for i := 0; i < n; i++ {
			var ax float32
			for k := 0; k < n; k++ {
				ax += a[i*n+k] * x[k]
			}
			want += a[i*n+j] * ax
		}
		if !approx(out[j], want, 1e-4) {
			t.Fatalf("y[%d] = %v, want %v", j, out[j], want)
		}
	}
}

func TestBICGAgainstNaive(t *testing.T) {
	in, out := run(t, "BICG")
	a, p, r := in[:n*n], in[n*n:n*n+n], in[n*n+n:]
	for j := 0; j < n; j++ {
		var s float32
		for i := 0; i < n; i++ {
			s += a[i*n+j] * r[i]
		}
		if !approx(out[j], s, 1e-4) {
			t.Fatalf("s[%d] = %v, want %v", j, out[j], s)
		}
	}
	for i := 0; i < n; i++ {
		var q float32
		for j := 0; j < n; j++ {
			q += a[i*n+j] * p[j]
		}
		if !approx(out[n+i], q, 1e-4) {
			t.Fatalf("q[%d] = %v, want %v", i, out[n+i], q)
		}
	}
}

func TestGEMMAgainstNaive(t *testing.T) {
	in, out := run(t, "GEMM")
	a, b, c := in[:n*n], in[n*n:2*n*n], in[2*n*n:]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			want := alpha*s + beta*c[i*n+j]
			if !approx(out[i*n+j], want, 1e-4) {
				t.Fatalf("C[%d,%d] = %v, want %v", i, j, out[i*n+j], want)
			}
		}
	}
}

func TestMVTAgainstNaive(t *testing.T) {
	in, out := run(t, "MVT")
	a := in[:n*n]
	x1, x2 := in[n*n:n*n+n], in[n*n+n:n*n+2*n]
	y1, y2 := in[n*n+2*n:n*n+3*n], in[n*n+3*n:]
	for i := 0; i < n; i++ {
		w1, w2 := x1[i], x2[i]
		for j := 0; j < n; j++ {
			w1 += a[i*n+j] * y1[j]
			w2 += a[j*n+i] * y2[j]
		}
		if !approx(out[i], w1, 1e-4) || !approx(out[n+i], w2, 1e-4) {
			t.Fatalf("mvt row %d mismatch", i)
		}
	}
}

func TestGESUMAgainstNaive(t *testing.T) {
	in, out := run(t, "GESUM")
	a, b, x := in[:n*n], in[n*n:2*n*n], in[2*n*n:]
	for i := 0; i < n; i++ {
		var sa, sb float32
		for j := 0; j < n; j++ {
			sa += a[i*n+j] * x[j]
			sb += b[i*n+j] * x[j]
		}
		if !approx(out[i], alpha*sa+beta*sb, 1e-4) {
			t.Fatalf("y[%d] mismatch", i)
		}
	}
}

func TestConv2DProperties(t *testing.T) {
	_, out := run(t, "2DCON")
	// Borders are untouched (zero).
	for i := 0; i < n; i++ {
		if out[i] != 0 || out[(n-1)*n+i] != 0 || out[i*n] != 0 || out[i*n+n-1] != 0 {
			t.Fatal("convolution wrote the border")
		}
	}
	// A constant field convolves to constant × Σcoeff = 0.5.
	in := make([]float32, n*n)
	for i := range in {
		in[i] = 1
	}
	res := make([]float32, n*n)
	conv2d(n, in, res)
	if !approx(res[5*n+5], 0.5, 1e-4) {
		t.Errorf("constant-field response = %v, want 0.5 (coefficient sum)", res[5*n+5])
	}
}

func TestSYRKSymmetric(t *testing.T) {
	in, out := run(t, "SYRK")
	// α·A·Aᵀ is symmetric; β·C breaks it only by C's asymmetry. Use C=0.
	copyIn := append([]float32(nil), in...)
	for i := n * n; i < 2*n*n; i++ {
		copyIn[i] = 0
	}
	res := make([]float32, n*n)
	syrk(n, copyIn, res)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if !approx(res[i*n+j], res[j*n+i], 1e-4) {
				t.Fatalf("syrk output not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Diagonal of A·Aᵀ is a sum of squares: positive.
	for i := 0; i < n; i++ {
		if res[i*n+i] <= 0 {
			t.Fatal("syrk diagonal not positive")
		}
	}
	_ = out
}

func TestSYR2KSymmetricWithSymmetricC(t *testing.T) {
	in, _ := run(t, "SYR2K")
	cp := append([]float32(nil), in...)
	for i := 0; i < n; i++ { // symmetrize C
		for j := 0; j < n; j++ {
			cp[2*n*n+i*n+j] = cp[2*n*n+j*n+i]
		}
	}
	res := make([]float32, n*n)
	syr2k(n, cp, res)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if !approx(res[i*n+j], res[j*n+i], 1e-3) {
				t.Fatalf("syr2k not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestCORRDiagonalIsOne(t *testing.T) {
	_, out := run(t, "CORR")
	for i := 0; i < n; i++ {
		if !approx(out[i*n+i], 1, 1e-3) {
			t.Fatalf("corr[%d,%d] = %v, want 1", i, i, out[i*n+i])
		}
	}
	for i := 0; i < n*n; i++ {
		if out[i] > 1.01 || out[i] < -1.01 {
			t.Fatalf("correlation %v outside [-1,1]", out[i])
		}
	}
}

func TestCOVARSymmetric(t *testing.T) {
	_, out := run(t, "COVAR")
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if !approx(out[i*n+j], out[j*n+i], 1e-4) {
				t.Fatalf("covariance not symmetric at (%d,%d)", i, j)
			}
		}
		if out[i*n+i] < 0 {
			t.Fatal("negative variance")
		}
	}
}

func Test3MMMatchesComposedGEMMs(t *testing.T) {
	in, out := run(t, "3MM")
	a, b, c, d := in[:n*n], in[n*n:2*n*n], in[2*n*n:3*n*n], in[3*n*n:]
	e := make([]float32, n*n)
	f := make([]float32, n*n)
	g := make([]float32, n*n)
	matmul(n, a, b, e)
	matmul(n, c, d, f)
	matmul(n, e, f, g)
	for i := range g {
		if !approx(out[i], g[i], 1e-3) {
			t.Fatalf("3mm[%d] = %v, want %v", i, out[i], g[i])
		}
	}
}

func Test2MMMatchesComposition(t *testing.T) {
	in, out := run(t, "2MM")
	a, b, c, d := in[:n*n], in[n*n:2*n*n], in[2*n*n:3*n*n], in[3*n*n:]
	tmp := make([]float32, n*n)
	matmul(n, a, b, tmp)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for k := 0; k < n; k++ {
				s += tmp[i*n+k] * c[k*n+j]
			}
			want := alpha*s + beta*d[i*n+j]
			if !approx(out[i*n+j], want, 1e-3) {
				t.Fatalf("2mm (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestADIAndFDTDProduceFiniteNonTrivialOutput(t *testing.T) {
	for _, name := range []string{"ADI", "FDTD"} {
		_, out := run(t, name)
		var nonzero int
		for _, v := range out {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s produced non-finite value", name)
			}
			if v != 0 {
				nonzero++
			}
		}
		if nonzero < len(out)/4 {
			t.Errorf("%s output mostly zero (%d/%d)", name, nonzero, len(out))
		}
	}
}

func TestInputsDeterministic(t *testing.T) {
	a, _ := Input("GEMM", 8)
	b, _ := Input("GEMM", 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("inputs not deterministic")
		}
	}
	c, _ := Input("ATAX", 8)
	if a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Error("different kernels share input streams")
	}
}

func TestUnknownKernel(t *testing.T) {
	if _, err := Input("NOPE", 4); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := Reference("NOPE", 4, nil); err == nil {
		t.Error("unknown reference accepted")
	}
	if _, _, _, err := App("NOPE", 4, 0, 0); err == nil {
		t.Error("unknown app accepted")
	}
}

// TestEveryKernelThroughDevice runs each functional kernel end to end on an
// IntraO3 device and compares the flash output with the direct reference.
func TestEveryKernelThroughDevice(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := core.DefaultConfig(core.IntraO3)
			cfg.Functional = true
			d, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			outAddr := int64(1 * units.GB)
			tab, input, outBytes, err := App(name, n, 0, outAddr)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.PopulateInput(0, int64(len(input)), input); err != nil {
				t.Fatal(err)
			}
			if err := d.OffloadApp(name, []*kdt.Table{tab}); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			got, err := d.Visor().ReadBytes(outAddr, outBytes)
			if err != nil {
				t.Fatal(err)
			}
			in := kernel.BytesToF32(input)
			want, _ := Reference(name, n, in)
			gotF := kernel.BytesToF32(got)
			for i := range want {
				if !approx(gotF[i], want[i], 1e-4) {
					t.Fatalf("flash output[%d] = %v, want %v", i, gotF[i], want[i])
				}
			}
		})
	}
}

// TestPartitionedGEMMThroughDevice verifies the multi-screen functional
// path: four screens compute row bands on different LWPs and the assembled
// flash region matches whole-matrix GEMM.
func TestPartitionedGEMMThroughDevice(t *testing.T) {
	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Functional = true
	d, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	outAddr := int64(1 * units.GB)
	tab, input, outBytes, err := PartitionedGEMM(n, 4, 0, outAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PopulateInput(0, int64(len(input)), input); err != nil {
		t.Fatal(err)
	}
	if err := d.OffloadApp("gemm-part", []*kdt.Table{tab}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := d.Visor().ReadBytes(outAddr, outBytes)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Reference("GEMM", n, kernel.BytesToF32(input))
	gotF := kernel.BytesToF32(got)
	for i := range want {
		if !approx(gotF[i], want[i], 1e-4) {
			t.Fatalf("partitioned output[%d] = %v, want %v", i, gotF[i], want[i])
		}
	}
}

func TestPartitionedGEMMValidation(t *testing.T) {
	if _, _, _, err := PartitionedGEMM(4, 8, 0, 0); err == nil {
		t.Error("more screens than rows accepted")
	}
}
