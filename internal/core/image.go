package core

import (
	"errors"
	"fmt"

	"repro/internal/flash"
	"repro/internal/flashvisor"
)

// ErrUnforkable marks device state an Image cannot capture. Populating a
// pathological bundle (overlapping ranges, or more data than the free pool
// absorbs) can trigger foreground reclaims during setup — visor stats,
// erase counts, and die-timing reservations the image does not carry.
// Snapshot refuses such devices; callers fall back to the plain lifecycle,
// which remains byte-identical by construction.
var ErrUnforkable = errors.New("core: device state not capturable in an image")

// BuildKey identifies the device state a populated image captures: two
// configurations with equal BuildKeys populate to byte-identical device
// state, so one image serves both. The key deliberately excludes every
// run-time knob — scheduler, worker count, cost model, timings, power
// rates, series collection — because none of them shape the formatted FTL,
// the flash payload layer, or the host store:
//
//   - FlashAbacus selects which store Populate routes to (Flashvisor's
//     backbone vs the host SSD model);
//   - Functional selects whether payloads are retained at all;
//   - Geo and OverProvision shape the formatted FTL.
type BuildKey struct {
	FlashAbacus   bool
	Functional    bool
	Geo           flash.Geometry
	OverProvision float64
}

// BuildKey derives the image-compatibility key of a configuration.
func (c Config) BuildKey() BuildKey {
	return BuildKey{
		FlashAbacus:   c.System.IsFlashAbacus(),
		Functional:    c.Functional,
		Geo:           c.Flash,
		OverProvision: c.Visor.OverProvision,
	}
}

// Image is an immutable snapshot of a device taken after format, populate,
// and (optionally) offload, but before Run: the FTL mapping tables, the
// functional flash payloads and host-store payloads, and the offloaded
// kernel set. Fork builds a fresh runnable device from it copy-on-write —
// the mapping-table segments and payload buffers stay shared until a fork
// first writes them — so a suite cell, cluster card, or work-steal probe
// starts in O(dirty state) instead of rebuilding the device lifecycle.
//
// An Image is safe for concurrent Forks from multiple goroutines.
type Image struct {
	cfg       Config
	key       BuildKey
	ftl       *flashvisor.FTLImage
	flashBase map[flash.PhysGroup][]byte
	hostBase  map[int64][]byte
	apps      []offloadedApp
}

// Snapshot captures the device's pre-run state as an immutable image. The
// device stays fully usable — its mutable layers switch to copy-on-write
// over the frozen state — but a device that already ran cannot be
// snapshotted: its timing and mapping state reflect the run.
func (d *Device) Snapshot() (*Image, error) {
	if d.ran {
		return nil, fmt.Errorf("core: snapshot after run")
	}
	// Any foreground reclaim during populate left side effects beyond the
	// FTL and payload stores (visor counters, erase counts, die-timing
	// frontiers); a fork would silently drop them from the run's Result.
	if st := d.visor.Stats(); st != (flashvisor.Stats{}) || d.visor.Controller().BB.TotalErases() != 0 {
		return nil, fmt.Errorf("%w: populate triggered device-side reclaims", ErrUnforkable)
	}
	return &Image{
		cfg:       d.Cfg,
		key:       d.Cfg.BuildKey(),
		ftl:       d.visor.FTL.Snapshot(),
		flashBase: d.visor.Controller().BB.SnapshotStore(),
		hostBase:  d.hostm.SnapshotStore(),
		apps:      append([]offloadedApp(nil), d.offloaded...),
	}, nil
}

// Config returns the configuration the image was built with.
func (img *Image) Config() Config { return img.cfg }

// Apps returns the number of offloaded applications captured in the image.
func (img *Image) Apps() int { return len(img.apps) }

// Fork builds a fresh, runnable device from the image under cfg. The
// configuration may differ from the image's in any run-time knob (system
// governor within the same storage class, worker count, cost model, series
// collection, ...) but must agree on the BuildKey — the fields that shaped
// the captured state. The forked device is byte-for-byte indistinguishable
// from one freshly built, populated, and offloaded the long way.
func (img *Image) Fork(cfg Config) (*Device, error) {
	if k := cfg.BuildKey(); k != img.key {
		return nil, fmt.Errorf("core: fork config build key %+v does not match image %+v", k, img.key)
	}
	d, err := build(cfg, img)
	if err != nil {
		return nil, err
	}
	for _, rec := range img.apps {
		if err := d.offloadDecoded(rec); err != nil {
			return nil, err
		}
	}
	return d, nil
}
