package cluster_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func bundle(t *testing.T, scale int64) *workload.Bundle {
	t.Helper()
	o := workload.DefaultOptions()
	o.Scale = scale
	b, err := workload.Mix(1, o)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func homogeneous(t *testing.T, name string, scale int64) *workload.Bundle {
	t.Helper()
	o := workload.DefaultOptions()
	o.Scale = scale
	b, err := workload.Homogeneous(name, o)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A one-card cluster must be the single-device path exactly: same result,
// field for field, as experiments.RunBundle.
func TestSingleDeviceIdentity(t *testing.T) {
	b := homogeneous(t, "ATAX", 256)
	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Devices = 1
	for _, p := range cluster.Policies {
		got, err := cluster.Run(context.Background(), cfg, b, cluster.Options{Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		want, err := experiments.RunBundle(context.Background(), core.IntraO3, homogeneous(t, "ATAX", 256), false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: devices=1 cluster result differs from RunBundle:\n got %+v\nwant %+v", p, got, want)
		}
	}
}

// Sharding must conserve the workload: every kernel instance completes
// exactly once and the throughput numerator (input bytes) is unchanged.
func TestShardingConservesWork(t *testing.T) {
	single, err := experiments.RunBundle(context.Background(), core.IntraO3, bundle(t, 256), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cluster.Policies {
		for _, devices := range []int{2, 3, 4, 8} {
			cfg := core.DefaultConfig(core.IntraO3)
			cfg.Devices = devices
			r, err := cluster.Run(context.Background(), cfg, bundle(t, 256), cluster.Options{Policy: p})
			if err != nil {
				t.Fatalf("%s x%d: %v", p, devices, err)
			}
			if r.Bytes != single.Bytes {
				t.Errorf("%s x%d: bytes %d, single device %d", p, devices, r.Bytes, single.Bytes)
			}
			if len(r.KernelLatencies) != len(single.KernelLatencies) {
				t.Errorf("%s x%d: %d kernels completed, want %d",
					p, devices, len(r.KernelLatencies), len(single.KernelLatencies))
			}
			if r.Makespan <= 0 {
				t.Errorf("%s x%d: non-positive makespan", p, devices)
			}
			if r.WorkerUtil <= 0 || r.WorkerUtil > 1 {
				t.Errorf("%s x%d: utilization %v outside (0,1]", p, devices, r.WorkerUtil)
			}
			if r.Energy.Total() <= single.Energy.Total()/2 {
				t.Errorf("%s x%d: cluster energy %v implausibly low vs single %v",
					p, devices, r.Energy.Total(), single.Energy.Total())
			}
			if r.System != "IntraO3" || r.Workload != "MX1" {
				t.Errorf("%s x%d: labels %s/%s", p, devices, r.Workload, r.System)
			}
		}
	}
}

// More cards than applications: the spare cards stay idle and the run still
// completes with the full workload accounted for.
func TestIdleCards(t *testing.T) {
	b := homogeneous(t, "GEMM", 256) // three applications
	cfg := core.DefaultConfig(core.InterDy)
	cfg.Devices = 8
	r, err := cluster.Run(context.Background(), cfg, b, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.KernelLatencies) != 6 {
		t.Errorf("%d kernels completed, want 6", len(r.KernelLatencies))
	}
}

// Aggregate throughput must not degrade as cards are added (the scaling
// cells' acceptance property, pinned here at the test scale).
func TestThroughputMonotonic(t *testing.T) {
	for _, p := range cluster.Policies {
		prev := 0.0
		for _, devices := range []int{1, 2, 4, 8} {
			cfg := core.DefaultConfig(core.IntraO3)
			cfg.Devices = devices
			r, err := cluster.Run(context.Background(), cfg, homogeneous(t, "ATAX", 256), cluster.Options{Policy: p})
			if err != nil {
				t.Fatal(err)
			}
			if tput := r.ThroughputMBps(); tput < prev {
				t.Errorf("%s: throughput dropped from %.1f to %.1f MB/s at %d devices",
					p, prev, tput, devices)
			} else {
				prev = tput
			}
		}
	}
}

func TestConfigRejectsBadDevices(t *testing.T) {
	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Devices = core.MaxDevices + 1
	if _, err := cluster.Run(context.Background(), cfg, bundle(t, 256), cluster.Options{}); err == nil {
		t.Error("devices beyond the cap accepted")
	}
	cfg.Devices = -1
	if _, err := cluster.Run(context.Background(), cfg, bundle(t, 256), cluster.Options{}); err == nil {
		t.Error("negative devices accepted")
	}
}

func TestBadPolicyAndHost(t *testing.T) {
	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Devices = 2
	if _, err := cluster.Run(context.Background(), cfg, bundle(t, 256),
		cluster.Options{Policy: cluster.Policy(99)}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := cluster.Run(context.Background(), cfg, bundle(t, 256),
		cluster.Options{Host: cluster.HostConfig{BW: -1}}); err == nil {
		t.Error("negative host bandwidth accepted")
	}
	if _, err := cluster.Run(context.Background(), cfg, bundle(t, 256),
		cluster.Options{Host: cluster.HostConfig{BW: 1, DispatchLatency: -1}}); err == nil {
		t.Error("negative dispatch latency accepted")
	}
	if err := cluster.DefaultHost().Validate(); err != nil {
		t.Errorf("default host invalid: %v", err)
	}
}

func TestEmptyBundle(t *testing.T) {
	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Devices = 2
	if _, err := cluster.Run(context.Background(), cfg, &workload.Bundle{Name: "empty"}, cluster.Options{}); err == nil {
		t.Error("empty bundle accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if cluster.RoundRobin.String() != "rr" || cluster.WorkSteal.String() != "steal" {
		t.Errorf("policy names: %s, %s", cluster.RoundRobin, cluster.WorkSteal)
	}
	if cluster.Policy(7).String() == "" {
		t.Error("unknown policy has empty name")
	}
}

// A context cancelled before dispatch must surface immediately.
func TestPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Devices = 4
	if _, err := cluster.Run(ctx, cfg, bundle(t, 256), cluster.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// Cancelling a cluster run while cards are mid-kernel must return promptly
// with the context's error and leak no goroutines. Workers is throttled so
// the paper-scale probe phase is reliably still in flight when the cancel
// lands.
func TestCancelMidDispatchNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Devices = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := cluster.Run(ctx, cfg, bundle(t, 1), cluster.Options{Policy: cluster.WorkSteal, Workers: 2})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let cards get mid-kernel
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cluster run did not return promptly after cancel")
	}

	// The runner pool's workers exit before Run returns; give the runtime a
	// moment to reap them, then require the goroutine count back at baseline.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
