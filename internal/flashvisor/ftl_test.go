package flashvisor

import (
	"math/rand"
	"testing"

	"repro/internal/flash"
	"repro/internal/units"
)

// smallGeo returns a shrunken geometry so GC tests fill the device fast:
// 4 channels × 1 package × 1 die × 2 planes, 8 blocks of 8 pages.
func smallGeo() flash.Geometry {
	return flash.Geometry{
		Channels:      4,
		PackagesPerCh: 1,
		DiesPerPkg:    1,
		PlanesPerDie:  2,
		PageSize:      8 * units.KB,
		PagesPerBlock: 8,
		BlocksPerDie:  8,
		MetaPages:     2,
	}
}

func TestNewFTLValidation(t *testing.T) {
	if _, err := NewFTL(smallGeo(), 0.001); err == nil {
		t.Error("tiny over-provisioning accepted")
	}
	if _, err := NewFTL(smallGeo(), 0.9); err == nil {
		t.Error("huge over-provisioning accepted")
	}
	bad := smallGeo()
	bad.Channels = 0
	if _, err := NewFTL(bad, 0.1); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestFTLDefaultMappingFitsScratchpad(t *testing.T) {
	f, err := NewFTL(flash.DefaultGeometry(), 0.07)
	if err != nil {
		t.Fatal(err)
	}
	if f.MappingBytes() > 2*units.MB {
		t.Errorf("mapping table = %s, paper says 2MB suffices", units.FormatBytes(f.MappingBytes()))
	}
	if f.LogicalBytes() >= flash.DefaultGeometry().Capacity() {
		t.Error("logical space should be smaller than raw capacity")
	}
}

func TestAllocSkipsMetaPagesAndRotates(t *testing.T) {
	geo := smallGeo()
	f, err := NewFTL(geo, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pg, rolled, err := f.Alloc(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rolled {
		t.Error("first allocation should open a super block")
	}
	a := geo.Decompose(pg)
	if a.Page != geo.MetaPages {
		t.Errorf("first data page = %d, want %d (after metadata)", a.Page, geo.MetaPages)
	}
	// Exhaust the active super block; next alloc must roll to a new one.
	perSB := geo.DataGroupsPerSuperBlock()
	for i := 1; i < perSB; i++ {
		if _, r, err := f.Alloc(false); err != nil || r {
			t.Fatalf("alloc %d: rolled=%v err=%v", i, r, err)
		}
	}
	_, rolled, err = f.Alloc(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rolled {
		t.Error("expected rollover after filling the super block")
	}
}

func TestAllocHonorsGCReserve(t *testing.T) {
	geo := smallGeo()
	f, _ := NewFTL(geo, 0.1)
	// Consume everything a host write may take.
	n := 0
	for {
		_, _, err := f.Alloc(false)
		if err == ErrNoSpace {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if f.FreeSuperBlocks() != gcReserve {
		t.Errorf("free pool = %d, want the %d-block GC reserve", f.FreeSuperBlocks(), gcReserve)
	}
	// GC allocations may still proceed.
	if _, _, err := f.Alloc(true); err != nil {
		t.Errorf("GC alloc failed with reserve available: %v", err)
	}
}

func TestCommitInvalidatesOldMapping(t *testing.T) {
	f, _ := NewFTL(smallGeo(), 0.1)
	pg1, _, _ := f.Alloc(false)
	if err := f.Commit(5, pg1); err != nil {
		t.Fatal(err)
	}
	sb1 := f.geo.SuperBlockOf(pg1)
	if f.ValidCount(sb1) != 1 {
		t.Fatalf("valid count = %d", f.ValidCount(sb1))
	}
	pg2, _, _ := f.Alloc(false)
	f.Commit(5, pg2)
	if got, _ := f.Lookup(5); got != pg2 {
		t.Errorf("lookup = %d, want %d", got, pg2)
	}
	var total int
	for sb := 0; sb < f.geo.SuperBlocks(); sb++ {
		total += f.ValidCount(flash.SuperBlock(sb))
	}
	if total != 1 {
		t.Errorf("total valid = %d, want 1 (old mapping invalidated)", total)
	}
	if err := f.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestCommitRejectsOutOfRange(t *testing.T) {
	f, _ := NewFTL(smallGeo(), 0.1)
	pg, _, _ := f.Alloc(false)
	if err := f.Commit(f.LogicalGroups(), pg); err == nil {
		t.Error("out-of-range logical group accepted")
	}
	if err := f.Commit(-1, pg); err == nil {
		t.Error("negative logical group accepted")
	}
}

func TestLookupUnmapped(t *testing.T) {
	f, _ := NewFTL(smallGeo(), 0.1)
	if _, ok := f.Lookup(3); ok {
		t.Error("unmapped group reported mapped")
	}
	if _, ok := f.Lookup(-1); ok {
		t.Error("negative group reported mapped")
	}
	if _, ok := f.Lookup(f.LogicalGroups()); ok {
		t.Error("past-end group reported mapped")
	}
}

func TestVictimRoundRobinIsFIFO(t *testing.T) {
	geo := smallGeo()
	f, _ := NewFTL(geo, 0.1)
	perSB := geo.DataGroupsPerSuperBlock()
	// Fill three super blocks.
	for i := 0; i < 3*perSB+1; i++ {
		f.Alloc(false)
	}
	first, ok := f.VictimRoundRobin()
	if !ok {
		t.Fatal("no victim")
	}
	second, _ := f.VictimRoundRobin()
	if first == second {
		t.Error("round robin repeated a victim")
	}
	if first != 0 {
		t.Errorf("first victim = %d, want the first filled super block", first)
	}
}

func TestVictimGreedyPicksFewestValid(t *testing.T) {
	geo := smallGeo()
	f, _ := NewFTL(geo, 0.1)
	perSB := geo.DataGroupsPerSuperBlock()
	// Fill SB0 with valid data, SB1 with mostly-invalidated data.
	for i := 0; i < perSB; i++ {
		pg, _, _ := f.Alloc(false)
		f.Commit(int64(i), pg)
	}
	for i := 0; i < perSB; i++ {
		pg, _, _ := f.Alloc(false)
		f.Commit(int64(100+i), pg)
	}
	// Overwrite the second batch: SB1 groups go invalid.
	for i := 0; i < perSB; i++ {
		pg, _, _ := f.Alloc(false)
		f.Commit(int64(100+i), pg)
	}
	sb, ok := f.VictimGreedy()
	if !ok {
		t.Fatal("no victim")
	}
	if f.ValidCount(sb) != 0 {
		t.Errorf("greedy picked super block with %d valid groups", f.ValidCount(sb))
	}
}

func TestRetargetAndRelease(t *testing.T) {
	f, _ := NewFTL(smallGeo(), 0.1)
	pg, _, _ := f.Alloc(false)
	f.Commit(7, pg)
	dst, _, _ := f.Alloc(true)
	f.Retarget(7, dst)
	if got, _ := f.Lookup(7); got != dst {
		t.Errorf("lookup after retarget = %d, want %d", got, dst)
	}
	if err := f.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestReleaseWithValidPanics(t *testing.T) {
	f, _ := NewFTL(smallGeo(), 0.1)
	pg, _, _ := f.Alloc(false)
	f.Commit(0, pg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Release(f.geo.SuperBlockOf(pg))
}

func TestFTLConsistencyUnderRandomChurn(t *testing.T) {
	geo := smallGeo()
	f, _ := NewFTL(geo, 0.15)
	rng := rand.New(rand.NewSource(11))
	logical := f.LogicalGroups()
	writes := 0
	for step := 0; step < 2000; step++ {
		lg := rng.Int63n(logical)
		pg, _, err := f.Alloc(false)
		if err == ErrNoSpace {
			// Reclaim by hand until a host alloc can proceed: a
			// fully-valid round-robin victim nets zero space.
			for !f.CanAllocHost() {
				sb, ok := f.VictimRoundRobin()
				if !ok {
					t.Fatal("no space and no victims")
				}
				for _, pair := range f.ValidGroups(sb) {
					dst, _, err := f.Alloc(true)
					if err != nil {
						t.Fatalf("step %d: migration alloc: %v", step, err)
					}
					f.Retarget(pair.Logical, dst)
				}
				f.Release(sb)
			}
			pg, _, err = f.Alloc(false)
			if err != nil {
				t.Fatalf("step %d: alloc after reclaim: %v", step, err)
			}
		}
		if err := f.Commit(lg, pg); err != nil {
			t.Fatal(err)
		}
		writes++
		if step%200 == 0 {
			if err := f.CheckConsistency(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if writes != 2000 {
		t.Errorf("completed %d writes, want 2000", writes)
	}
}
