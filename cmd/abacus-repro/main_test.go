package main

import (
	"testing"

	"repro/internal/experiments"
)

// TestExperimentRegistriesAgree pins the three id registries to each
// other: every cached-cell id must name a real experiment, and every
// experiment whose device runs flow through the Suite cache must appear
// in CachedExperimentIDs — otherwise Prewarm, the engine benchmarks, and
// the determinism tests silently skip its cells.
func TestExperimentRegistriesAgree(t *testing.T) {
	known := map[string]bool{}
	for _, id := range ids() {
		known[id] = true
	}
	cached := map[string]bool{}
	for _, id := range experiments.CachedExperimentIDs {
		cached[id] = true
		if !known[id] {
			t.Errorf("CachedExperimentIDs lists %q, which is not an experiment id", id)
		}
	}
	for _, id := range ids() {
		if hasCells := experiments.Cells(id) != nil; hasCells != cached[id] {
			t.Errorf("experiment %q: uses cache=%v but in CachedExperimentIDs=%v — registries drifted",
				id, hasCells, cached[id])
		}
	}
}
