package flashvisor

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/flashctrl"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config tunes the Flashvisor LWP.
type Config struct {
	// PerGroupCost is the Flashvisor processing time per page-group
	// request: message parse, scratchpad table walk, and request issue.
	PerGroupCost units.Duration
	// OverProvision is the physical capacity fraction withheld from the
	// logical space.
	OverProvision float64
	// JournalOnRollover charges the metadata-page programs (the first two
	// pages of each block, paper §4.3) when the log head enters a fresh
	// super block.
	JournalOnRollover bool
	// GlobalLock degrades the range-lock tree to one device-wide lock;
	// it exists for the protection ablation.
	GlobalLock bool
}

// DefaultConfig returns the prototype-calibrated parameters.
func DefaultConfig() Config {
	return Config{
		PerGroupCost:      600, // ~600 ns: queue pop, table walk in scratchpad, issue
		OverProvision:     0.07,
		JournalOnRollover: true,
	}
}

// Stats counts Flashvisor activity for reports and tests.
type Stats struct {
	ReadGroups    int64
	WriteGroups   int64
	FGReclaims    int64
	Migrated      int64
	JournalWrites int64
	UnmappedReads int64
}

// Visor is the Flashvisor LWP: every flash-backbone request from every
// kernel funnels through its message queue, its occupancy resource, and its
// range locks — there is no direct datapath from worker LWPs to the FPGA
// controllers (paper §4.3 "Protection and access control").
type Visor struct {
	Cfg  Config
	Geo  flash.Geometry
	FTL  *FTL
	Lock RangeLocks

	ctrl *flashctrl.Complex
	ddr  *mem.Memory
	spad *mem.Memory
	inq  *noc.MsgQueue
	cpu  *sim.Resource

	journalCursor int64
	stats         Stats

	// Reused hot-path scratch: composeBuf backs the read-modify-write of
	// functional sub-group writes; migrateScratch collects a GC victim's
	// valid groups. Both live for the Visor's lifetime so the per-screen
	// and per-reclaim paths stay allocation-free.
	composeBuf     []byte
	migrateScratch []MigratePair
}

// New wires a Visor over the controller complex and memories.
func New(cfg Config, ctrl *flashctrl.Complex, ddr, spad *mem.Memory, net *noc.Network) (*Visor, error) {
	ftl, err := NewFTL(ctrl.BB.Geo, cfg.OverProvision)
	if err != nil {
		return nil, err
	}
	return wireVisor(cfg, ctrl, ddr, spad, net, ftl)
}

// NewFromImage wires a Visor whose FTL forks a snapshotted image instead of
// formatting from scratch — the device-fork path. The image must have been
// captured at the same geometry the controller complex runs.
func NewFromImage(cfg Config, ctrl *flashctrl.Complex, ddr, spad *mem.Memory, net *noc.Network, img *FTLImage) (*Visor, error) {
	if img.Geometry() != ctrl.BB.Geo {
		return nil, fmt.Errorf("flashvisor: image geometry %+v does not match backbone %+v", img.Geometry(), ctrl.BB.Geo)
	}
	return wireVisor(cfg, ctrl, ddr, spad, net, NewFTLFromImage(img))
}

func wireVisor(cfg Config, ctrl *flashctrl.Complex, ddr, spad *mem.Memory, net *noc.Network, ftl *FTL) (*Visor, error) {
	if cfg.PerGroupCost <= 0 {
		return nil, fmt.Errorf("flashvisor: non-positive per-group cost")
	}
	if ftl.MappingBytes() > spad.Cfg.Size {
		return nil, fmt.Errorf("flashvisor: mapping table (%s) does not fit scratchpad (%s)",
			units.FormatBytes(ftl.MappingBytes()), units.FormatBytes(spad.Cfg.Size))
	}
	return &Visor{
		Cfg:  cfg,
		Geo:  ctrl.BB.Geo,
		FTL:  ftl,
		ctrl: ctrl,
		ddr:  ddr,
		spad: spad,
		inq:  net.NewQueue("flashvisor-inq"),
		cpu:  sim.NewResource("flashvisor-lwp"),
	}, nil
}

// Stats returns a copy of the activity counters.
func (v *Visor) Stats() Stats { return v.stats }

// CPUBusy returns the Flashvisor LWP occupancy (for energy accounting:
// InterSt keeps this core powered for its whole run, §5.3).
func (v *Visor) CPUBusy() units.Duration { return v.cpu.Busy() }

// QueueMessages returns how many requests crossed the hardware queue.
func (v *Visor) QueueMessages() int64 { return v.inq.Sent() }

// groupRange converts a byte range into logical page groups.
func (v *Visor) groupRange(addr, bytes int64) (lo, hi int64) {
	gs := v.Geo.GroupSize()
	lo = addr / gs
	hi = (addr + bytes + gs - 1) / gs
	return lo, hi
}

func (v *Visor) lockRange(lo, hi int64) (int64, int64) {
	if v.Cfg.GlobalLock {
		return 0, v.FTL.LogicalGroups()
	}
	return lo, hi
}

// StartupLatency approximates the first-group latency of a streaming read:
// queue delivery, one translation, one device read. The overlap execution
// model charges it before compute/IO streaming begins.
func (v *Visor) StartupLatency() units.Duration {
	return 2*units.Microsecond + v.Cfg.PerGroupCost + v.ctrl.Cfg.TagService +
		v.ctrl.BB.Tim.ReadPage + v.ctrl.BB.Tim.ChannelBW.DurationFor(2*v.Geo.PageSize)
}

// MapRead maps a kernel data section [addr, addr+bytes) for reading: the
// kernel passes a queue message, Flashvisor checks the range lock,
// translates each group, and issues device reads; the data lands in DDR3L.
// It returns the completion time and, for functional backbones, the bytes.
func (v *Visor) MapRead(at sim.Time, owner int, addr, bytes int64) (sim.Time, []byte, error) {
	return v.MapReadInto(at, owner, addr, bytes, nil)
}

// MapReadInto is MapRead with a caller-provided destination buffer: when the
// backbone is functional and dst has capacity for the section, the payload
// lands in dst instead of a fresh allocation (the per-screen reuse path).
//
// Physically contiguous runs of groups — the common case after sequential
// population — are processed as batches: the whole run's translation work is
// charged to the Flashvisor LWP and scratchpad as one analytic reservation
// each, and crosses into the controller complex once. The per-resource
// request sequence is identical to the per-group loop, so timing is
// bit-for-bit unchanged; only the bookkeeping cost shrinks.
func (v *Visor) MapReadInto(at sim.Time, owner int, addr, bytes int64, dst []byte) (sim.Time, []byte, error) {
	if bytes <= 0 {
		return at, nil, fmt.Errorf("flashvisor: non-positive read size %d", bytes)
	}
	lo, hi := v.groupRange(addr, bytes)
	if hi > v.FTL.LogicalGroups() {
		return at, nil, fmt.Errorf("flashvisor: read [%d,%d) beyond logical space", lo, hi)
	}
	deliver := v.inq.Send(at)
	llo, lhi := v.lockRange(lo, hi)
	grant := v.Lock.Grant(deliver, llo, lhi, LockRead)

	var data []byte
	functional := v.ctrl.BB.Functional
	if functional {
		if int64(cap(dst)) >= bytes {
			data = dst[:bytes]
			clear(data)
		} else {
			data = make([]byte, bytes)
		}
	}
	done := grant
	gs := v.Geo.GroupSize()
	cost := v.Cfg.PerGroupCost
	for lg := lo; lg < hi; {
		pg, ok := v.FTL.Lookup(lg)
		if !ok {
			// Charge the failed translation exactly as the per-group loop
			// did — queue pop and table walk happen before the miss.
			_, issued := v.cpu.Reserve(grant, cost)
			v.spad.Access(issued, 4)
			v.stats.UnmappedReads++
			return at, nil, fmt.Errorf("flashvisor: kernel %d read of unmapped group %d", owner, lg)
		}
		// Extend the physically contiguous run starting at (lg, pg).
		n := int64(1)
		for lg+n < hi {
			next, ok := v.FTL.Lookup(lg + n)
			if !ok || next != pg+flash.PhysGroup(n) {
				break
			}
			n++
		}
		runStart, _ := v.cpu.ReserveN(grant, cost, int(n))
		first := runStart + cost // issue time of the run's first group
		v.spad.AccessUniform(first, cost, int(n), 4)
		base := lg
		v.ctrl.ReadGroupsSeq(first, cost, pg, int(n), func(i int, ready sim.Time) {
			landed := v.ddr.Access(ready, gs)
			if landed > done {
				done = landed
			}
			if functional {
				copyGroupOut(data, addr, bytes, base+int64(i), gs, v.ctrl.BB.Load(pg+flash.PhysGroup(i)))
			}
		})
		v.stats.ReadGroups += n
		lg += n
	}
	v.Lock.Hold(llo, lhi, LockRead, owner, done)
	return done, data, nil
}

// MapWrite maps a kernel data section for writing: groups are allocated at
// the log head, mappings commit, and the payload is absorbed by the DDR3L
// write buffer while the device programs proceed behind it. The returned
// time is when the kernel may reuse its buffer (DDR3L-visible), not when
// the TLC programs finish; PersistedUntil exposes the drain point.
func (v *Visor) MapWrite(at sim.Time, owner int, addr, bytes int64, data []byte) (sim.Time, error) {
	if bytes <= 0 {
		return at, fmt.Errorf("flashvisor: non-positive write size %d", bytes)
	}
	lo, hi := v.groupRange(addr, bytes)
	if hi > v.FTL.LogicalGroups() {
		return at, fmt.Errorf("flashvisor: write [%d,%d) beyond logical space", lo, hi)
	}
	deliver := v.inq.Send(at)
	llo, lhi := v.lockRange(lo, hi)
	grant := v.Lock.Grant(deliver, llo, lhi, LockWrite)

	done := grant
	gs := v.Geo.GroupSize()
	cost := v.Cfg.PerGroupCost
	functional := v.ctrl.BB.Functional
	for lg := lo; lg < hi; {
		// Fast path: while the log head can absorb a run of allocations
		// with no rollover (hence no journal) and no reclaim, the run's
		// translation work batches into one LWP and one scratchpad
		// reservation, exactly like the read path.
		if n := int64(v.FTL.AllocRunLen(int(hi - lg))); n > 0 {
			runStart, _ := v.cpu.ReserveN(grant, cost, int(n))
			first := runStart + cost
			v.spad.AccessUniform(first, cost, int(n), 4)
			for i := int64(0); i < n; i++ {
				issued := first + sim.Duration(i)*cost
				var payload []byte
				if functional {
					payload = v.composeGroup(lg+i, addr, bytes, data)
				}
				pg, rolled, err := v.FTL.Alloc(false)
				if err != nil || rolled {
					return at, fmt.Errorf("flashvisor: allocation run diverged at group %d (rolled=%v, err=%v)", lg+i, rolled, err)
				}
				if err := v.FTL.Commit(lg+i, pg); err != nil {
					return at, err
				}
				buffered := v.ddr.Access(issued, gs)
				v.ctrl.ProgramGroupBuffered(buffered, pg) // drains behind reads
				if buffered > done {
					done = buffered
				}
				v.stats.WriteGroups++
				if payload != nil {
					v.ctrl.BB.Store(pg, payload)
				}
			}
			lg += n
			continue
		}
		// Slow path: the next allocation rolls the log head over or needs
		// a foreground reclaim; process this one group at full fidelity.
		_, issued := v.cpu.Reserve(grant, cost)
		v.spad.Access(issued, 4)
		// Partial-group writes must preserve the untouched bytes of the
		// old version, so capture it before the mapping moves.
		var payload []byte
		if functional {
			payload = v.composeGroup(lg, addr, bytes, data)
		}
		pg, rolled, err := v.FTL.Alloc(false)
		if err == ErrNoSpace {
			reclaimed, rerr := v.ReclaimForeground(issued)
			if rerr != nil {
				return at, rerr
			}
			issued = reclaimed
			pg, rolled, err = v.FTL.Alloc(false)
		}
		if err != nil {
			return at, err
		}
		if rolled && v.Cfg.JournalOnRollover {
			v.journalActive(issued, pg)
		}
		if err := v.FTL.Commit(lg, pg); err != nil {
			return at, err
		}
		buffered := v.ddr.Access(issued, gs)
		v.ctrl.ProgramGroupBuffered(buffered, pg) // drains behind reads
		if buffered > done {
			done = buffered
		}
		v.stats.WriteGroups++
		if payload != nil {
			v.ctrl.BB.Store(pg, payload)
		}
		lg++
	}
	v.Lock.Hold(llo, lhi, LockWrite, owner, done)
	return done, nil
}

// journalActive charges the metadata-page programs for the freshly opened
// super block (the one holding pg): the block's page-table entries persist
// in its first pages.
func (v *Visor) journalActive(at sim.Time, pg flash.PhysGroup) {
	sb := v.FTL.ActiveSuperBlock(pg)
	meta, step := v.Geo.GroupSpan(sb)
	for p := 0; p < v.Geo.MetaPages; p++ {
		v.ctrl.ProgramGroup(at, meta)
		v.stats.JournalWrites++
		meta += flash.PhysGroup(step)
	}
}

// JournalSnapshot charges the device-side work for a metadata snapshot dump
// of the given size (Storengine's periodic scratchpad journal): a scratchpad
// read plus programs into the reserved metadata pages, rotating across super
// blocks so consecutive snapshots spread over die rows. It returns the
// completion time.
func (v *Visor) JournalSnapshot(at sim.Time, bytes int64) sim.Time {
	if bytes <= 0 {
		return at
	}
	groups := units.CeilDiv(bytes, v.Geo.GroupSize())
	v.spad.Access(at, bytes)
	t := at
	for i := int64(0); i < groups; i++ {
		sb := flash.SuperBlock(v.journalCursor % int64(v.Geo.SuperBlocks()))
		page := int(v.journalCursor) % v.Geo.MetaPages
		v.journalCursor++
		row := int(sb) / v.Geo.BlocksPerDie
		block := int(sb) % v.Geo.BlocksPerDie
		pg := v.Geo.Compose(flash.GroupAddr{DieRow: row, Block: block, Page: page})
		t = v.ctrl.ProgramGroup(t, pg)
		v.stats.JournalWrites++
	}
	return t
}

// ReclaimForeground performs the on-demand reclaim Flashvisor issues when
// the log head runs out of groups (§4.3 "Flashvisor generates a request to
// reclaim a physical block"). Round-robin victims can be fully valid and net
// zero space, so it loops until a host allocation can proceed — this
// blocking, on-Flashvisor-time work is exactly the overhead Storengine
// exists to hide.
func (v *Visor) ReclaimForeground(at sim.Time) (sim.Time, error) {
	t := at
	for i := 0; !v.FTL.CanAllocHost(); i++ {
		if i > 2*v.Geo.SuperBlocks()+2 {
			return at, fmt.Errorf("flashvisor: reclaim loop freed no space after %d victims", i)
		}
		done, err := v.Reclaim(t, v.cpu, false)
		if err != nil {
			return at, err
		}
		v.stats.FGReclaims++
		t = done
	}
	return t, nil
}

// Reclaim migrates one victim super block and returns when the erase
// completes. The work is charged to the given LWP resource (Flashvisor in
// the foreground path, Storengine in the background path). greedy selects
// the ablation victim policy.
func (v *Visor) Reclaim(at sim.Time, lwpRes *sim.Resource, greedy bool) (sim.Time, error) {
	var (
		sb flash.SuperBlock
		ok bool
	)
	if greedy {
		sb, ok = v.FTL.VictimGreedy()
	} else {
		sb, ok = v.FTL.VictimRoundRobin()
	}
	if !ok {
		return at, fmt.Errorf("flashvisor: no reclaimable super blocks")
	}
	t := at
	v.migrateScratch = v.FTL.AppendValidGroups(v.migrateScratch[:0], sb)
	for _, pair := range v.migrateScratch {
		// Lock the logical group against kernel access during the move.
		grant := v.Lock.Grant(t, pair.Logical, pair.Logical+1, LockWrite)
		_, issued := lwpRes.Reserve(grant, v.Cfg.PerGroupCost)
		dst, _, err := v.FTL.Alloc(true)
		if err != nil {
			return at, fmt.Errorf("flashvisor: reclaim has nowhere to migrate: %w", err)
		}
		moved := v.ctrl.MigrateGroup(issued, pair.Phys, dst)
		v.FTL.Retarget(pair.Logical, dst)
		v.Lock.Hold(pair.Logical, pair.Logical+1, LockWrite, -1, moved)
		v.stats.Migrated++
		t = moved
	}
	erased := v.ctrl.EraseSuper(t, sb)
	v.FTL.Release(sb)
	return erased, nil
}

// Populate installs input data at a logical byte address without consuming
// simulated time — the experiment-setup equivalent of the factory image the
// paper's testbed flashes before each run. Payloads are stored when the
// backbone is functional; data may be nil for timing-only population.
func (v *Visor) Populate(addr, bytes int64, data []byte) error {
	if bytes <= 0 {
		return fmt.Errorf("flashvisor: non-positive populate size %d", bytes)
	}
	lo, hi := v.groupRange(addr, bytes)
	if hi > v.FTL.LogicalGroups() {
		return fmt.Errorf("flashvisor: populate [%d,%d) beyond logical space (%d groups)",
			lo, hi, v.FTL.LogicalGroups())
	}
	for lg := lo; lg < hi; lg++ {
		var payload []byte
		if v.ctrl.BB.Functional && data != nil {
			payload = v.composeGroup(lg, addr, bytes, data)
		}
		pg, _, err := v.FTL.Alloc(false)
		if err == ErrNoSpace {
			if _, err = v.ReclaimForeground(0); err != nil {
				return err
			}
			pg, _, err = v.FTL.Alloc(false)
		}
		if err != nil {
			return err
		}
		if err := v.FTL.Commit(lg, pg); err != nil {
			return err
		}
		if payload != nil {
			v.ctrl.BB.Store(pg, payload)
		}
	}
	return nil
}

// composeGroup builds the full 64 KB payload of logical group lg after
// overlaying the byte range [addr, addr+bytes) from data (nil data writes
// zeros): the read-modify-write a sub-group write needs to keep the rest of
// the group intact. The returned buffer is the Visor's reusable scratch —
// valid until the next composeGroup call; Backbone.Store copies it.
func (v *Visor) composeGroup(lg int64, addr, bytes int64, data []byte) []byte {
	gs := v.Geo.GroupSize()
	if int64(cap(v.composeBuf)) < gs {
		v.composeBuf = make([]byte, gs)
	}
	buf := v.composeBuf[:gs]
	clear(buf)
	if old, ok := v.FTL.Lookup(lg); ok {
		copy(buf, v.ctrl.BB.Load(old))
	}
	gStart := lg * gs
	lo, hi := gStart, gStart+gs
	if addr > lo {
		lo = addr
	}
	if addr+bytes < hi {
		hi = addr + bytes
	}
	if hi > lo && data != nil && addr+int64(len(data)) >= hi {
		copy(buf[lo-gStart:hi-gStart], data[lo-addr:hi-addr])
	}
	return buf
}

// ReadBytes fetches functional payload bytes for [addr, addr+bytes) without
// consuming simulated time; tests use it to verify data integrity across
// garbage collection.
func (v *Visor) ReadBytes(addr, bytes int64) ([]byte, error) {
	lo, hi := v.groupRange(addr, bytes)
	out := make([]byte, bytes)
	for lg := lo; lg < hi; lg++ {
		pg, ok := v.FTL.Lookup(lg)
		if !ok {
			return nil, fmt.Errorf("flashvisor: unmapped group %d", lg)
		}
		copyGroupOut(out, addr, bytes, lg, v.Geo.GroupSize(), v.ctrl.BB.Load(pg))
	}
	return out, nil
}

// PersistedUntil returns when all background device work drains.
func (v *Visor) PersistedUntil() sim.Time { return v.ctrl.BB.BusyUntil() }

// Controller exposes the FPGA complex for device-level accounting.
func (v *Visor) Controller() *flashctrl.Complex { return v.ctrl }

// copyGroupOut copies the part of logical group lg that intersects the byte
// range [addr, addr+bytes) from payload into dst (dst covers the range).
func copyGroupOut(dst []byte, addr, bytes, lg, gs int64, payload []byte) {
	if payload == nil {
		return
	}
	gStart := lg * gs
	lo, hi := gStart, gStart+int64(len(payload))
	if addr > lo {
		lo = addr
	}
	if addr+bytes < hi {
		hi = addr + bytes
	}
	if hi <= lo {
		return
	}
	copy(dst[lo-addr:hi-addr], payload[lo-gStart:hi-gStart])
}
