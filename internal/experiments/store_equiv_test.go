package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/imagestore"
)

// TestStoreLoadedEquivalenceAcrossKinds is the acceptance property of the
// persistent image store: for every experiment kind, a cell computed in a
// "second process" — a fresh suite whose images all decode from a store a
// previous suite filled, never from a build — is deep-equal to the same
// cell computed with the full per-device lifecycle.
func TestStoreLoadedEquivalenceAcrossKinds(t *testing.T) {
	const scale = 1024
	jobs := []Job{
		{Kind: KindHomogeneous, Name: "ATAX", Sys: core.IntraO3},
		{Kind: KindHomogeneous, Name: "ATAX", Sys: core.SIMD},
		{Kind: KindHeterogeneous, Mix: 1, Sys: core.InterDy},
		{Kind: KindBigdata, Name: "bfs", Sys: core.InterSt},
		{Kind: KindSensitivity, Cores: 4, Pct: 20, Sys: core.SIMD},
		{Kind: KindSeries, Mix: 1, Sys: core.IntraO3},
		{Kind: KindCluster, Name: "ATAX", Devices: 2, Policy: cluster.RoundRobin, Sys: core.IntraO3},
		{Kind: KindCluster, Mix: 1, Devices: 2, Policy: cluster.WorkSteal, Sys: core.IntraO3},
		{Kind: KindTopology, Mix: 1, Topo: "2sw-skew", Devices: 2, Policy: cluster.WorkSteal, Sys: core.IntraO3},
	}
	st := imagestore.NewMemStore()

	// First process: run everything once, filling the store.
	filler := NewSuite(scale)
	filler.Workers = 1
	filler.SetImageStore(st)
	for _, j := range jobs {
		if _, err := filler.Run(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	filler.FlushImages()
	if fs := filler.ImageStats(); fs.StorePuts == 0 {
		t.Fatalf("first process filled nothing: %+v", fs)
	}

	// Second process: fresh suite and cache, same store. Every image it
	// needs is in the store, so every cell runs on decoded images.
	s := NewSuite(scale)
	s.Workers = 1
	s.SetImageStore(st)
	for _, j := range jobs {
		j := j
		t.Run(j.String(), func(t *testing.T) {
			got, err := s.Run(context.Background(), j)
			if err != nil {
				t.Fatal(err)
			}
			want := uncached(t, s, j)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("store-loaded result diverged from lifecycle result:\nstore: %+v\nfresh: %+v", got, want)
			}
		})
	}
	ss := s.ImageStats()
	if ss.StoreHits == 0 {
		t.Fatalf("second process never hit the store: %+v", ss)
	}
	if ss.StoreMisses != 0 {
		t.Errorf("second process missed the store %d times — first process under-filled (stats %+v)", ss.StoreMisses, ss)
	}
}
