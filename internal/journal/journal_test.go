package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testRecords is a spread of shapes: every kind, empty and non-empty
// payloads, binary bytes in the output.
func testRecords() []Record {
	return []Record{
		{Kind: Accepted, ID: "j000001", Client: "alice", Key: "k-1",
			Request: []byte(`{"experiment":"fig10a","scale":256}`), UnixMilli: 1},
		{Kind: Dispatched, ID: "j000001", Client: "alice", UnixMilli: 2},
		{Kind: Done, ID: "j000001", Client: "alice",
			Output: []byte{0, 1, 2, 0xff, '\n', 0xfe}, UnixMilli: 3},
		{Kind: Accepted, ID: "j000002", Client: "bob", Request: []byte(`{}`), UnixMilli: 4},
		{Kind: Failed, ID: "j000002", Client: "bob", Error: "deadline exceeded", UnixMilli: 5},
		{Kind: Cancelled, ID: "j000003", Error: "cancelled by client", UnixMilli: 6},
	}
}

func replayAll(t *testing.T, dir string) ([]Record, ReplayStats) {
	t.Helper()
	var got []Record
	rs, err := Replay(dir, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, rs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := j.Stats()
	if st.Appends != int64(len(recs)) || st.Fsyncs < int64(len(recs)) {
		t.Fatalf("stats = %+v, want %d appends and at least as many fsyncs", st, len(recs))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, rs := replayAll(t, dir)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed %d records != appended:\n got %+v\nwant %+v", len(got), got, recs)
	}
	if rs.Torn || rs.Records != len(recs) {
		t.Fatalf("replay stats = %+v", rs)
	}
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	got, rs := replayAll(t, filepath.Join(t.TempDir(), "nope"))
	if len(got) != 0 || rs.Torn {
		t.Fatalf("got %v, %+v", got, rs)
	}
}

// TestPrefixTruncationProperty pins the replay contract: truncating a
// valid journal at ANY byte offset replays a clean prefix of the
// appended records — exactly those whose frames fit entirely inside the
// prefix — without panicking, and loses at most the record spanning the
// cut.
func TestPrefixTruncationProperty(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	// frameEnd[i] = byte offset after record i's frame.
	var frameEnds []int64
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
		frameEnds = append(frameEnds, j.Stats().Bytes)
	}
	j.Close()
	full, err := os.ReadFile(filepath.Join(dir, "00000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut++ {
		tdir := filepath.Join(t.TempDir(), "cut")
		os.MkdirAll(tdir, 0o755)
		if err := os.WriteFile(filepath.Join(tdir, "00000001.wal"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, end := range frameEnds {
			if end <= int64(cut) {
				want++
			}
		}
		got, rs := replayAll(t, tdir)
		if len(got) != want {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), want)
		}
		if want > 0 && !reflect.DeepEqual(got, recs[:want]) {
			t.Fatalf("cut at %d: replayed records are not the appended prefix", cut)
		}
		// A cut is clean only on a frame boundary (or exactly the header):
		// anything else leaves a partial frame behind.
		clean := cut == headerLen
		for _, end := range frameEnds {
			if int64(cut) == end {
				clean = true
			}
		}
		if wantTorn := !clean; rs.Torn != wantTorn {
			t.Fatalf("cut at %d: torn = %v, want %v", cut, rs.Torn, wantTorn)
		}
	}
}

// TestOpenTruncatesTornTail: a torn final record is discarded at Open,
// and appends after the reopen are replayable — the tail never chains
// onto garbage.
func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, r := range recs[:3] {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.TearTail(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	got, rs := replayAll(t, dir)
	if len(got) != 3 || !rs.Torn {
		t.Fatalf("pre-reopen replay: %d records, torn %v", len(got), rs.Torn)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Stats().TruncatedBytes == 0 {
		t.Fatal("Open did not report truncating the torn tail")
	}
	for _, r := range recs[3:] {
		if err := j2.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j2.Close()
	got, rs = replayAll(t, dir)
	if rs.Torn {
		t.Fatal("replay still torn after reopen truncated the tail")
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed %d records, want all %d appended around the tear", len(got), len(recs))
	}
}

// TestOpenRecoversCorruptHeader: a smashed active-segment header is
// rewritten fresh instead of wedging Open or poisoning replay.
func TestOpenRecoversCorruptHeader(t *testing.T) {
	dir := t.TempDir()
	seg := filepath.Join(dir, "00000001.wal")
	if err := os.WriteFile(seg, []byte("not a journal segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open over corrupt header: %v", err)
	}
	if j.Stats().TruncatedBytes == 0 {
		t.Fatal("corrupt header not counted as truncated bytes")
	}
	if err := j.Append(testRecords()[0]); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got, rs := replayAll(t, dir)
	if len(got) != 1 || rs.Torn {
		t.Fatalf("replay after header recovery: %d records, torn %v", len(got), rs.Torn)
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 128, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < 32; i++ {
		r := Record{Kind: Accepted, ID: fmt.Sprintf("j%06d", i+1), Client: "c",
			Request: bytes.Repeat([]byte("x"), 40), UnixMilli: int64(i)}
		recs = append(recs, r)
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotations, stats = %+v", st)
	}
	j.Close()
	got, rs := replayAll(t, dir)
	if rs.Segments != st.Segments {
		t.Fatalf("replayed %d segments, want %d", rs.Segments, st.Segments)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("cross-segment replay lost or reordered records (%d/%d)", len(got), len(recs))
	}
}

func TestCompactReplacesHistory(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 128, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := j.Append(Record{Kind: Accepted, ID: fmt.Sprintf("j%06d", i+1),
			Request: bytes.Repeat([]byte("y"), 40)}); err != nil {
			t.Fatal(err)
		}
	}
	// Stash one pre-compaction segment to resurrect below.
	stashed := filepath.Join(dir, "00000001.wal")
	old, err := os.ReadFile(stashed)
	if err != nil {
		t.Fatal(err)
	}

	live := []Record{
		{Kind: Accepted, ID: "j000031", Request: []byte(`{}`)},
		{Kind: Done, ID: "j000031", Output: []byte("table\n")},
	}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Compactions != 1 || st.Segments != 1 {
		t.Fatalf("post-compact stats = %+v", st)
	}
	// Appends continue into the base segment and replay after it.
	tail := Record{Kind: Cancelled, ID: "j000032", Error: "x"}
	if err := j.Append(tail); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got, _ := replayAll(t, dir)
	if want := append(append([]Record(nil), live...), tail); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after compact = %+v, want %+v", got, want)
	}

	// A crash between the base rename and the old-segment unlinks leaves
	// dead low-numbered segments behind; replay must ignore them (the
	// base resets history) and Open must clean them up.
	if err := os.WriteFile(stashed, old, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = replayAll(t, dir)
	if want := append(append([]Record(nil), live...), tail); !reflect.DeepEqual(got, want) {
		t.Fatalf("resurrected pre-base segment leaked into replay: %d records", len(got))
	}
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if _, err := os.Stat(stashed); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Open left the dead pre-base segment on disk")
	}
}

func TestHooks(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	boom := errors.New("boom")
	var seen []int64
	j.SetHooks(
		func(frame []byte) error {
			if len(seen) >= 2 {
				return boom
			}
			return nil
		},
		func(n int64) { seen = append(seen, n) },
	)
	r := testRecords()[0]
	if err := j.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(r); !errors.Is(err, boom) {
		t.Fatalf("hooked append err = %v, want boom", err)
	}
	if !reflect.DeepEqual(seen, []int64{1, 2}) {
		t.Fatalf("after-append counts = %v", seen)
	}
	st := j.Stats()
	if st.Appends != 2 || st.AppendErrors != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The failed append left no bytes behind: replay sees two records.
	got, rs := replayAll(t, dir)
	if len(got) != 2 || rs.Torn {
		t.Fatalf("replay after failed append: %d records, torn %v", len(got), rs.Torn)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(testRecords()[0]); err == nil {
		t.Fatal("append after close succeeded")
	}
}
