package cluster_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
)

// Dispatching over any preset topology must conserve the workload — every
// kernel instance completes exactly once, input bytes are unchanged — and
// label every switch's card pool in the aggregate.
func TestTopologyConservesWorkAndLabelsSwitches(t *testing.T) {
	single, err := experiments.RunBundle(context.Background(), core.IntraO3, bundle(t, 256), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, preset := range cluster.PresetNames {
		topo, err := cluster.Preset(preset, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range cluster.Policies {
			cfg := core.DefaultConfig(core.IntraO3)
			r, err := cluster.Run(context.Background(), cfg, bundle(t, 256),
				cluster.Options{Policy: p, Topology: topo})
			if err != nil {
				t.Fatalf("%s/%s: %v", preset, p, err)
			}
			if r.Bytes != single.Bytes {
				t.Errorf("%s/%s: bytes %d, single device %d", preset, p, r.Bytes, single.Bytes)
			}
			if len(r.KernelLatencies) != len(single.KernelLatencies) {
				t.Errorf("%s/%s: %d kernels completed, want %d",
					preset, p, len(r.KernelLatencies), len(single.KernelLatencies))
			}
			if r.WorkerUtil <= 0 || r.WorkerUtil > 1 {
				t.Errorf("%s/%s: utilization %v outside (0,1]", preset, p, r.WorkerUtil)
			}
			cards := 0
			for _, su := range r.SwitchUtils {
				cards += su.Cards
				if su.Util < 0 || su.Util > 1 {
					t.Errorf("%s/%s: switch %s utilization %v outside [0,1]", preset, p, su.Switch, su.Util)
				}
			}
			if cards != topo.Cards() {
				t.Errorf("%s/%s: switch card counts sum to %d, want %d", preset, p, cards, topo.Cards())
			}
			if want := len(topo.Switches); len(r.SwitchUtils) != want {
				t.Errorf("%s/%s: %d switch rows, want %d", preset, p, len(r.SwitchUtils), want)
			}
		}
	}
}

// The implicit single-switch path must not grow per-switch rows: the
// classic -devices aggregate stays shaped exactly as before topologies.
func TestImplicitTopologyHasNoSwitchRows(t *testing.T) {
	cfg := core.DefaultConfig(core.IntraO3)
	cfg.Devices = 4
	r, err := cluster.Run(context.Background(), cfg, bundle(t, 256), cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.SwitchUtils != nil {
		t.Errorf("implicit topology grew switch rows: %+v", r.SwitchUtils)
	}
}

// Topology runs are deterministic in simulated time whatever the wall-clock
// worker count — the property the -jobs byte-identity rests on.
func TestTopologyDeterministicAcrossWorkers(t *testing.T) {
	topo, err := cluster.Preset("2sw-skew", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cluster.Policies {
		var prev interface{}
		for _, workers := range []int{1, 4} {
			cfg := core.DefaultConfig(core.IntraO3)
			r, err := cluster.Run(context.Background(), cfg, bundle(t, 256),
				cluster.Options{Policy: p, Topology: topo, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if prev != nil && !reflect.DeepEqual(prev, r) {
				t.Errorf("%s: result differs between 1 and 4 workers", p)
			}
			prev = r
		}
	}
}

// An invalid topology must be rejected before any card simulates.
func TestTopologyRunRejectsInvalid(t *testing.T) {
	cfg := core.DefaultConfig(core.IntraO3)
	bad := cluster.Topology{Switches: []cluster.Switch{
		{Cards: []core.CardSkew{{Channels: 3}}},
	}}
	if _, err := cluster.Run(context.Background(), cfg, bundle(t, 256),
		cluster.Options{Topology: bad}); err == nil {
		t.Error("non-pow2 skew accepted")
	}
}

// Cancelling a work-stealing run mid-claim on a two-switch skewed topology
// must surface ctx.Err() promptly, leak no goroutines, and leave no state
// behind that poisons a later run (the suite is reusable after a cancel).
// Run under -race in CI, this also guards the dispatcher's concurrency.
func TestTopologyCancelMidClaimNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	topo, err := cluster.Preset("2sw-skew", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.IntraO3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		// Paper scale + two wall-clock workers: the per-class probe phase
		// is reliably still in flight when the cancel lands.
		_, err := cluster.Run(ctx, cfg, bundle(t, 1),
			cluster.Options{Policy: cluster.WorkSteal, Topology: topo, Workers: 2})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let probes get mid-kernel
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("topology run did not return promptly after cancel")
	}

	// A fresh small run on the same topology must still succeed: the cancel
	// released every range-lock hold and simulation resource with it.
	if _, err := cluster.Run(context.Background(), cfg, bundle(t, 256),
		cluster.Options{Policy: cluster.WorkSteal, Topology: topo}); err != nil {
		t.Errorf("run after cancel failed: %v", err)
	}

	// The runner pool's workers exit before Run returns; give the runtime a
	// moment to reap them, then require the goroutine count back at baseline.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
