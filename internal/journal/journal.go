// Package journal is the durable write-ahead log under the serving
// layer: an append-only, CRC-framed record stream that survives being
// killed at any byte.
//
// The format follows the imagestore codec discipline — versioned,
// little-endian, checksummed end to end:
//
//	segment header (16 B): magic "FAJL" · u16 version · u8 type · u8 0 ·
//	                       u32 crc32c(first 8 bytes) · u32 0
//	record frame:          u32 bodyLen · u32 crc32c(body) · body
//	record body:           u8 kind · u64 unixMilli ·
//	                       6 × (u32 len · bytes): id, client, key,
//	                       error, request, output
//
// A journal is a directory of numbered segments ("00000001.wal", ...).
// Appends go to the highest-numbered segment and are fsynced before they
// are acknowledged; past SegmentBytes the writer rotates to a fresh
// segment. Compact atomically replaces the whole directory's history
// with a snapshot: the snapshot is written to a temp file, fsynced,
// renamed into place as a *base* segment (type 1), the directory is
// fsynced, and only then are the older segments unlinked — a crash at
// any point leaves either the old history or the new base, never
// neither. Replay starts at the newest base segment, so a crash between
// rename and unlink merely leaves dead files that the next Open removes.
//
// Replay is truncation-tolerant by construction: a torn tail — a
// partial frame from a writer killed mid-append, or a frame whose CRC
// does not match — ends replay at the last complete record. Open runs
// the same scan and truncates the torn bytes away so new appends never
// chain onto garbage. Replay never panics on hostile input; every
// allocation is bounded by the frame length limit before it is made.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	magic      = "FAJL"
	version    = 1
	headerLen  = 16
	frameLen   = 8 // bodyLen + crc
	segLog     = 0
	segBase    = 1
	segPattern = "%08d.wal"

	// maxBody bounds one record body (and with it every allocation the
	// decoder makes): larger than any journaled result, far smaller than
	// what a flipped length field could demand.
	maxBody = 1 << 27
)

// DefaultSegmentBytes is the rotation threshold when Options names none.
const DefaultSegmentBytes = 4 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var errClosed = errors.New("journal: closed")

// Kind is a record's lifecycle transition.
type Kind uint8

const (
	Accepted Kind = iota + 1
	Dispatched
	Done
	Failed
	Cancelled
)

func (k Kind) String() string {
	switch k {
	case Accepted:
		return "accepted"
	case Dispatched:
		return "dispatched"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Terminal reports whether the kind ends a job's lifecycle.
func (k Kind) Terminal() bool { return k == Done || k == Failed || k == Cancelled }

func (k Kind) valid() bool { return k >= Accepted && k <= Cancelled }

// Record is one journaled lifecycle transition.
type Record struct {
	Kind Kind
	// ID is the job the record concerns; Client its fairness identity.
	ID, Client string
	// Key is the client-supplied idempotency key (Accepted records).
	Key string
	// Error carries the failure or cancellation reason.
	Error string
	// Request is the JSON-encoded job request (Accepted records).
	Request []byte
	// Output is the job's rendered result bytes (Done records).
	Output []byte
	// UnixMilli timestamps the transition; informational only.
	UnixMilli int64
}

// Options shapes an opened journal; the zero value is usable.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// bound (default DefaultSegmentBytes).
	SegmentBytes int64
	// NoSync skips the per-append fsync. Only tests and benchmarks that
	// do not care about durability should set it.
	NoSync bool
}

// Stats is a snapshot of a journal's counters.
type Stats struct {
	Appends      int64 // records durably appended
	AppendErrors int64 // appends that failed (hook, write, or fsync)
	Fsyncs       int64 // fsync calls issued (appends, rotations, compactions)
	Rotations    int64 // segment rotations
	Compactions  int64 // successful Compact calls
	Segments     int   // live segment files
	Bytes        int64 // total bytes across live segments
	// TruncatedBytes counts torn-tail bytes Open discarded.
	TruncatedBytes int64
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	Records  int   // records delivered
	Segments int   // segments read
	Torn     bool  // replay ended at a torn or corrupt frame
	Dropped  int64 // bytes after the torn point, lost
}

// Journal is an open, appendable journal directory.
type Journal struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	seg     int   // active (highest) segment index
	lowSeg  int   // lowest live segment index
	size    int64 // active segment size
	total   int64 // bytes across live segments other than the active one
	segSize map[int]int64
	opts    Options
	stats   Stats

	// before and after intercept appends for deterministic fault
	// injection (see SetHooks).
	before func(frame []byte) error
	after  func(appends int64)
}

// Open opens (creating if needed) the journal rooted at dir, removes
// debris from crashed compactions, and truncates any torn tail off the
// active segment so appends continue from the last durable record.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, segSize: map[int]int64{}}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// Finish a crashed compaction: everything below the newest base
	// segment is dead history, and stale temp files are abandoned writes.
	start := 0
	for i, s := range segs {
		if s.base {
			start = i
		}
	}
	for _, s := range segs[:start] {
		os.Remove(s.path)
	}
	segs = segs[start:]
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}

	if len(segs) == 0 {
		j.seg, j.lowSeg = 1, 1
		if err := j.createSegmentLocked(1, segLog); err != nil {
			return nil, err
		}
		return j, nil
	}

	j.lowSeg = segs[0].idx
	for _, s := range segs[:len(segs)-1] {
		j.segSize[s.idx] = s.size
		j.total += s.size
	}
	active := segs[len(segs)-1]
	j.seg = active.idx
	valid, err := scanValidPrefix(active.path)
	if err != nil {
		return nil, err
	}
	if valid < headerLen {
		// The active segment's own header is corrupt: it holds no
		// recoverable records, so rewrite it fresh in place.
		j.stats.TruncatedBytes += active.size
		if err := j.createSegmentLocked(active.idx, segLog); err != nil {
			return nil, err
		}
		return j, nil
	}
	if valid < active.size {
		j.stats.TruncatedBytes += active.size - valid
		if err := os.Truncate(active.path, valid); err != nil {
			return nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.size = valid
	return j, nil
}

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// SetHooks installs fault-injection seams: before runs with the framed
// bytes ahead of every append (a non-nil error fails the append without
// touching the file); after runs — outside the journal's lock — once a
// record is durably on disk, with the running append count. Either may
// be nil. The chaos harness uses these for failing/slow journal I/O and
// kill-at-N-appends.
func (j *Journal) SetHooks(before func(frame []byte) error, after func(appends int64)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.before, j.after = before, after
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.Segments = j.seg - j.lowSeg + 1
	st.Bytes = j.total + j.size
	return st
}

// Append frames, writes, and fsyncs one record to the active segment,
// rotating past the segment bound. The record is durable when Append
// returns nil.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return errClosed
	}
	body := encodeRecord(r)
	frame := make([]byte, 0, frameLen+len(body))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(body)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(body, castagnoli))
	frame = append(frame, body...)
	if j.before != nil {
		if err := j.before(frame); err != nil {
			j.stats.AppendErrors++
			j.mu.Unlock()
			return err
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		// A partial frame may be on disk; truncate back so a later append
		// cannot chain onto it (replay would drop everything after).
		j.f.Truncate(j.size)
		j.stats.AppendErrors++
		j.mu.Unlock()
		return fmt.Errorf("journal: append: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			j.stats.AppendErrors++
			j.mu.Unlock()
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.stats.Fsyncs++
	}
	j.size += int64(len(frame))
	j.stats.Appends++
	n := j.stats.Appends
	if j.size > j.opts.SegmentBytes {
		j.rotateLocked() // best effort: a failed rotation keeps appending to the oversized segment
	}
	after := j.after
	j.mu.Unlock()
	if after != nil {
		after(n)
	}
	return nil
}

// rotateLocked opens the next-numbered log segment as the append target.
func (j *Journal) rotateLocked() error {
	if err := j.createSegmentLocked(j.seg+1, segLog); err != nil {
		return err
	}
	j.stats.Rotations++
	return nil
}

// createSegmentLocked writes a fresh segment header for index idx and
// makes it the active append target. Any previous active file is closed;
// its size moves into the history total (unless idx reuses its slot).
func (j *Journal) createSegmentLocked(idx, typ int) error {
	if j.f != nil {
		j.f.Close()
		if idx != j.seg {
			j.segSize[j.seg] = j.size
			j.total += j.size
		}
	}
	path := j.segPath(idx)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	hdr := segmentHeader(typ)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if !j.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("journal: %w", err)
		}
		j.stats.Fsyncs++
		if err := syncDir(j.dir); err != nil {
			f.Close()
			return err
		}
		j.stats.Fsyncs++
	}
	j.f = f
	j.seg = idx
	j.size = int64(len(hdr))
	return nil
}

// Compact atomically replaces the journal's whole history with the live
// records: they are written to a temp file, fsynced, renamed into place
// as a base segment, and only after the directory fsync are the older
// segments unlinked. Replay of a compacted journal starts at the base
// segment, so a crash anywhere in Compact leaves a replayable journal.
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errClosed
	}
	newIdx := j.seg + 1
	buf := segmentHeader(segBase)
	for _, r := range live {
		body := encodeRecord(r)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, castagnoli))
		buf = append(buf, body...)
	}
	tmp := j.segPath(newIdx) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	_, werr := f.Write(buf)
	if werr == nil && !j.opts.NoSync {
		werr = f.Sync()
		j.stats.Fsyncs++
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, j.segPath(newIdx))
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compact: %w", werr)
	}
	if !j.opts.NoSync {
		if err := syncDir(j.dir); err != nil {
			return err
		}
		j.stats.Fsyncs++
	}
	// The base is durable; everything before it is now dead history.
	j.f.Close()
	for idx := j.lowSeg; idx <= j.seg; idx++ {
		os.Remove(j.segPath(idx))
	}
	f, err = os.OpenFile(j.segPath(newIdx), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	j.f = f
	j.seg, j.lowSeg = newIdx, newIdx
	j.size = int64(len(buf))
	j.total = 0
	j.segSize = map[int]int64{}
	j.stats.Compactions++
	return nil
}

// TearTail appends a deliberately torn record — a valid frame header
// promising more bytes than follow — and syncs it. It exists for the
// chaos harness: a restart must shrug off exactly this shape of tail.
// The journal must not be appended to afterwards (the torn bytes would
// hide every later record from replay); tear, then die.
func (j *Journal) TearTail() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errClosed
	}
	body := encodeRecord(Record{Kind: Failed, ID: "torn-by-chaos", Error: "deliberately torn final record"})
	frame := make([]byte, 0, frameLen+len(body))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(body)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(body, castagnoli))
	frame = append(frame, body...)
	if _, err := j.f.Write(frame[:frameLen+len(body)/2]); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the active segment. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

func (j *Journal) segPath(idx int) string {
	return filepath.Join(j.dir, fmt.Sprintf(segPattern, idx))
}

// Replay reads every record of the journal at dir, in append order,
// starting at the newest base segment. A torn or corrupt frame ends the
// replay at the last complete record (Torn and Dropped report it); a
// missing directory is an empty journal. fn's error aborts the replay
// and is returned as-is.
func Replay(dir string, fn func(Record) error) (ReplayStats, error) {
	var rs ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return rs, nil
		}
		return rs, err
	}
	start := 0
	for i, s := range segs {
		if s.base {
			start = i
		}
	}
	for _, seg := range segs[start:] {
		rs.Segments++
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return rs, fmt.Errorf("journal: %w", err)
		}
		valid, torn, err := scanFrames(b, func(r Record) error {
			rs.Records++
			return fn(r)
		})
		if err != nil {
			return rs, err
		}
		if torn {
			// Records after a torn point — in this segment or a later one —
			// cannot be trusted to be complete; stop here.
			rs.Torn = true
			rs.Dropped = int64(len(b)) - valid
			for _, later := range segs[start:] {
				if later.idx > seg.idx {
					rs.Dropped += later.size
				}
			}
			return rs, nil
		}
	}
	return rs, nil
}

// segment is one journal file found on disk.
type segment struct {
	idx  int
	path string
	size int64
	base bool
}

// listSegments returns dir's segment files in ascending index order,
// with each one's header type. A file whose header is unreadable counts
// as a log segment (its replay will stop at offset 0).
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".wal") || e.IsDir() {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(name, ".wal"))
		if err != nil || idx < 1 {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s := segment{idx: idx, path: filepath.Join(dir, name), size: info.Size()}
		if hdr := readHeader(s.path); hdr == segBase {
			s.base = true
		}
		segs = append(segs, s)
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].idx < segs[k].idx })
	return segs, nil
}

// segmentHeader builds a 16-byte segment header of the given type.
func segmentHeader(typ int) []byte {
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, version)
	hdr = append(hdr, byte(typ), 0)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr[:8], castagnoli))
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)
	return hdr
}

// checkHeader validates a segment header, returning its type.
func checkHeader(b []byte) (typ int, ok bool) {
	if len(b) < headerLen || string(b[:4]) != magic {
		return 0, false
	}
	if binary.LittleEndian.Uint16(b[4:6]) != version {
		return 0, false
	}
	typ = int(b[6])
	if typ != segLog && typ != segBase || b[7] != 0 {
		return 0, false
	}
	if binary.LittleEndian.Uint32(b[8:12]) != crc32.Checksum(b[:8], castagnoli) {
		return 0, false
	}
	return typ, true
}

// readHeader reports the segment type of the file at path, or -1.
func readHeader(path string) int {
	f, err := os.Open(path)
	if err != nil {
		return -1
	}
	defer f.Close()
	hdr := make([]byte, headerLen)
	if _, err := f.Read(hdr); err != nil {
		return -1
	}
	typ, ok := checkHeader(hdr)
	if !ok {
		return -1
	}
	return typ
}

// scanFrames walks the frames after the header, calling fn per decoded
// record. It returns the byte offset after the last valid frame, whether
// the scan stopped at a torn/corrupt frame, and fn's error if any.
func scanFrames(b []byte, fn func(Record) error) (valid int64, torn bool, err error) {
	if _, ok := checkHeader(b); !ok {
		return 0, true, nil
	}
	off := int64(headerLen)
	for {
		rest := b[off:]
		if len(rest) == 0 {
			return off, false, nil
		}
		if len(rest) < frameLen {
			return off, true, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest[:4]))
		if n > maxBody || frameLen+n > int64(len(rest)) {
			return off, true, nil
		}
		body := rest[frameLen : frameLen+n]
		if binary.LittleEndian.Uint32(rest[4:8]) != crc32.Checksum(body, castagnoli) {
			return off, true, nil
		}
		rec, derr := decodeRecord(body)
		if derr != nil {
			// CRC-valid but structurally bad: written by a different
			// version or deliberately corrupted — stop, like a torn tail.
			return off, true, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, false, err
			}
		}
		off += frameLen + n
	}
}

// scanValidPrefix returns the length of the valid prefix of the segment
// at path: header plus every complete frame.
func scanValidPrefix(path string) (int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	valid, _, _ := scanFrames(b, nil)
	return valid, nil
}

var errCorruptRecord = errors.New("journal: corrupt record")

// encodeRecord serializes a record body (without framing).
func encodeRecord(r Record) []byte {
	n := 9 + 6*4 + len(r.ID) + len(r.Client) + len(r.Key) + len(r.Error) + len(r.Request) + len(r.Output)
	b := make([]byte, 0, n)
	b = append(b, byte(r.Kind))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.UnixMilli))
	for _, s := range [6][]byte{[]byte(r.ID), []byte(r.Client), []byte(r.Key), []byte(r.Error), r.Request, r.Output} {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	return b
}

// decodeRecord parses a record body. Field lengths are validated against
// the remaining bytes before any allocation, so a hostile body cannot
// demand more memory than its own size.
func decodeRecord(body []byte) (Record, error) {
	var r Record
	if len(body) < 9 {
		return r, errCorruptRecord
	}
	r.Kind = Kind(body[0])
	if !r.Kind.valid() {
		return r, errCorruptRecord
	}
	r.UnixMilli = int64(binary.LittleEndian.Uint64(body[1:9]))
	rest := body[9:]
	var fields [6][]byte
	for i := range fields {
		if len(rest) < 4 {
			return r, errCorruptRecord
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return r, errCorruptRecord
		}
		fields[i] = rest[:n]
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return r, errCorruptRecord
	}
	r.ID = string(fields[0])
	r.Client = string(fields[1])
	r.Key = string(fields[2])
	r.Error = string(fields[3])
	// Copy the payloads: records must not alias the replay read buffer.
	if len(fields[4]) > 0 {
		r.Request = append([]byte(nil), fields[4]...)
	}
	if len(fields[5]) > 0 {
		r.Output = append([]byte(nil), fields[5]...)
	}
	return r, nil
}

// syncDir fsyncs a directory, making renames and unlinks in it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync %s: %w", dir, err)
	}
	return nil
}
